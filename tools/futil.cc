/**
 * @file
 * futil: command-line driver for the Calyx compiler (the artifact's
 * `futil` binary). Reads a textual Calyx program, runs a configurable
 * pass pipeline, and emits the result through a registered backend, or
 * simulates the design.
 *
 * Usage:
 *   futil [options] file.futil
 *     -b <backend>           backend by registry name (default calyx);
 *                            unknown names are a hard error with a
 *                            did-you-mean suggestion
 *     -o <file>              write the emitted artifact to <file>
 *                            (default stdout)
 *     -p <spec>              pipeline spec: comma-separated pass and
 *                            alias names; '-pass' disables a pass,
 *                            'pass[key=val,...]' sets per-pass options
 *                            (default 'default'; repeatable — later
 *                            specs append in order)
 *     -d <pass>              disable a pass (same as appending '-pass')
 *     -x pass[key=val,...]   set options on a pass already in the
 *                            pipeline
 *     --list-passes          list registered passes and aliases, exit
 *     --list-backends        list registered backends, exit
 *     --emit-stats           print emitted line/byte counts and, after
 *                            control lowering, per-component FSM
 *                            statistics (states, registers, encoding,
 *                            seed-equivalent registers, lowering wall
 *                            time) on stderr
 *     --dump-fsm             print the FSM machines built by control
 *                            lowering (states, actions, transitions)
 *                            instead of emitting a backend artifact
 *     --pass-timings         print per-pass wall time and stats deltas
 *     --pass-timings=json    same, as the JSON report envelope on stdout
 *                            (docs/observability.md)
 *     --dump-ir-after <pass> print the IR after the named pass (stderr)
 *     --verify               run the well-formed checker between passes
 *     --no-compile           emit the program without lowering control
 *     --sim                  compile, simulate, report the cycle count
 *     --sim-engine=<e>       combinational engine: levelized (default),
 *                            jacobi (the reference fixed-point), or
 *                            compiled (codegen + JIT via the host CXX)
 *     --batch <N>            batched simulation of N stimulus sets
 *                            (sim/batch.h lane planes); stimuli come
 *                            from --stimuli or default to N copies of
 *                            the zero-initialized design
 *     --stimuli <file>       JSON stimulus batch ({"batch": [...]},
 *                            serve/protocol.h schema) for --batch
 *     --threads <N>          worker threads: partitioned single-
 *                            stimulus simulation, batched simulation,
 *                            and parallel per-component pass execution
 *     --lane-tile <N>        lanes per tile (fixed compiled lane
 *                            width; default 16)
 *     --serve                stimulus-stream service: read
 *                            length-prefixed JSON requests on stdin,
 *                            answer on stdout, keep the JIT module
 *                            resident (serve/server.h)
 *     --trace <file>         simulate and write a VCD waveform trace
 *     --trace-scope=<s>      trace scope: top, state, or all (default)
 *     --profile <file>       simulate and write the profile report
 *                            (JSON envelope: compile + sim sections)
 *     --profile-summary      simulate and print the profile table
 *     --area                 print the area estimate
 *     --stats                print cells/groups/control statistics
 *
 * Example:
 *   futil -b firrtl -o design.fir -p all,-collapse-control \
 *         --emit-stats file.futil
 */
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <algorithm>

#include <chrono>

#include "cache/compile_cache.h"
#include "emit/backend.h"
#include "estimate/area.h"
#include "ir/fsm.h"
#include "ir/parser.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/vcd.h"
#include "passes/pipeline.h"
#include "passes/registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/batch.h"
#include "sim/cycle_sim.h"
#include "sim/interp.h"
#include "support/error.h"
#include "support/text.h"

namespace {

/** "jacobi, levelized, or compiled" from the engine registry. */
std::string
engineList()
{
    const auto &infos = calyx::sim::engineInfos();
    std::string s;
    for (size_t i = 0; i < infos.size(); ++i) {
        if (i > 0)
            s += i + 1 == infos.size() ? ", or " : ", ";
        s += infos[i].name;
    }
    return s;
}

int
usage()
{
    std::cerr
        << "usage: futil [options] file.futil\n"
           "  -b <backend>           backend by name (default calyx);\n"
           "                         see --list-backends\n"
           "  -o <file>              write emitted output to <file>\n"
           "  -p <spec>              pipeline spec: comma-separated pass\n"
           "                         and alias names; '-pass' disables,\n"
           "                         'pass[key=val,...]' sets options\n"
           "                         (default 'default'; repeatable)\n"
           "  -d <pass>              disable a pass\n"
           "  -x pass[key=val,...]   set options on a pipeline pass\n"
           "  --list-passes          list passes and aliases, then exit\n"
           "  --list-backends        list backends, then exit\n"
           "  --emit-stats           print emitted line/byte counts and\n"
           "                         FSM lowering statistics\n"
           "  --dump-fsm             print lowered FSM machines\n"
           "  --pass-timings         print per-pass time + stats deltas\n"
           "  --pass-timings=json    same, as a JSON report envelope\n"
           "  --dump-ir-after <pass> print IR after the named pass\n"
           "  --verify               run well-formed checker per pass\n"
           "  --no-compile           emit without lowering control\n"
           "  --sim                  simulate and report cycles\n"
           "  --sim-engine=<e>       "
        << engineList()
        << " (default levelized)\n"
           "  --batch <N>            batched simulation of N stimuli\n"
           "  --stimuli <file>       JSON stimulus batch for --batch\n"
           "  --threads <N>          worker threads: partitioned --sim,\n"
           "                         batch lanes, and per-component\n"
           "                         passes (default 1)\n"
           "  --lane-tile <N>        lanes per batch tile (default 16)\n"
           "  --serve                stimulus-stream service on\n"
           "                         stdin/stdout (length-prefixed JSON)\n"
           "  --trace <file>         simulate, write a VCD trace\n"
           "  --trace-scope=<s>      top, state, or all (default all)\n"
           "  --profile <file>       simulate, write the JSON profile\n"
           "  --profile-summary      simulate, print the profile table\n"
           "  --area                 print the area estimate\n"
           "  --stats                print cells/groups/control stats\n";
    return 2;
}

int
listPasses()
{
    auto &registry = calyx::passes::PassRegistry::instance();
    std::cout << "passes:\n";
    for (const std::string &name : registry.passNames()) {
        const auto *entry = registry.findPass(name);
        std::string aliases;
        for (const std::string &a : registry.aliasesOf(name))
            aliases += (aliases.empty() ? "" : ", ") + a;
        std::printf("  %-20s %s%s\n", name.c_str(),
                    entry->description.c_str(),
                    aliases.empty() ? "" : ("  [" + aliases + "]").c_str());
    }
    std::cout << "\naliases:\n";
    for (const std::string &name : registry.aliasNames()) {
        std::string desc = registry.aliasDescription(name);
        std::printf("  %-10s -> %s\n", name.c_str(),
                    registry.aliasExpansion(name).c_str());
        if (!desc.empty())
            std::printf("  %-10s    (%s)\n", "", desc.c_str());
    }
    return 0;
}

int
listBackends()
{
    auto &registry = calyx::emit::BackendRegistry::instance();
    std::cout << "backends:\n";
    for (const std::string &name : registry.names()) {
        const auto *entry = registry.find(name);
        std::printf("  %-14s %-7s %s%s\n", name.c_str(),
                    entry->fileExtension.c_str(),
                    entry->description.c_str(),
                    entry->requiresLowered ? "" : "  [any stage]");
    }
    return 0;
}

void
printTimings(const std::vector<calyx::passes::PassRunInfo> &infos)
{
    std::printf("%-20s %10s %8s %8s %9s\n", "pass", "time(ms)", "d-cells",
                "d-groups", "d-control");
    double total = 0;
    for (const auto &info : infos) {
        total += info.seconds;
        std::printf("%-20s %10.3f %+8d %+8d %+9d\n", info.pass.c_str(),
                    info.seconds * 1e3, info.after.cells - info.before.cells,
                    info.after.groups - info.before.groups,
                    info.after.controlStatements -
                        info.before.controlStatements);
    }
    std::printf("%-20s %10.3f\n", "total", total * 1e3);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string backend = "calyx";
    std::string file;
    std::string output;
    std::string spec_text;
    std::vector<std::string> disables;
    std::vector<std::string> overrides;
    bool compile = true, simulate = false, area = false, stats = false;
    bool emit_stats = false, dump_fsm = false;
    calyx::sim::Engine sim_engine = calyx::sim::Engine::Levelized;
    bool engine_set = false;
    bool serve = false;
    uint64_t batch = 0; ///< 0 = scalar simulation.
    unsigned threads = 1;
    uint32_t lane_tile = 0; ///< 0 = BatchOptions default.
    std::string stimuli_file;
    calyx::passes::RunOptions run_options;
    bool timings = false, timings_json = false;
    std::string trace_file, profile_file;
    bool profile_summary = false;
    calyx::obs::VcdScope trace_scope = calyx::obs::VcdScope::All;

    auto append_spec = [&spec_text](const std::string &item) {
        if (!spec_text.empty())
            spec_text += ",";
        spec_text += item;
    };

    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "-b") {
            if (++i >= args.size())
                return usage();
            backend = args[i];
        } else if (a == "-o") {
            if (++i >= args.size())
                return usage();
            output = args[i];
        } else if (a == "-p") {
            if (++i >= args.size())
                return usage();
            append_spec(args[i]);
        } else if (a == "-d") {
            if (++i >= args.size())
                return usage();
            disables.push_back(args[i]);
        } else if (a == "-x") {
            if (++i >= args.size())
                return usage();
            overrides.push_back(args[i]);
        } else if (a == "--list-passes") {
            return listPasses();
        } else if (a == "--list-backends") {
            return listBackends();
        } else if (a == "--emit-stats") {
            emit_stats = true;
        } else if (a == "--dump-fsm") {
            dump_fsm = true;
        } else if (a == "--pass-timings") {
            timings = true;
        } else if (a == "--pass-timings=json") {
            timings = true;
            timings_json = true;
        } else if (a == "--trace") {
            if (++i >= args.size())
                return usage();
            trace_file = args[i];
            simulate = true;
        } else if (a.rfind("--trace-scope=", 0) == 0) {
            try {
                trace_scope = calyx::obs::parseVcdScope(
                    a.substr(std::string("--trace-scope=").size()));
            } catch (const calyx::Error &e) {
                std::cerr << "error: " << e.what() << "\n";
                return 2;
            }
        } else if (a == "--profile") {
            if (++i >= args.size())
                return usage();
            profile_file = args[i];
            simulate = true;
        } else if (a == "--profile-summary") {
            profile_summary = true;
            simulate = true;
        } else if (a == "--dump-ir-after") {
            if (++i >= args.size())
                return usage();
            run_options.dumpIrAfter = args[i];
        } else if (a == "--verify") {
            run_options.verify = true;
        } else if (a == "--no-compile") {
            compile = false;
        } else if (a == "--sim") {
            simulate = true;
        } else if (a.rfind("--sim-engine=", 0) == 0) {
            try {
                sim_engine = calyx::sim::parseEngine(
                    a.substr(std::string("--sim-engine=").size()));
                engine_set = true;
            } catch (const calyx::Error &e) {
                std::cerr << "error: " << e.what() << "\n";
                return 2;
            }
        } else if (a == "--sim-engine") {
            if (++i >= args.size())
                return usage();
            try {
                sim_engine = calyx::sim::parseEngine(args[i]);
                engine_set = true;
            } catch (const calyx::Error &e) {
                std::cerr << "error: " << e.what() << "\n";
                return 2;
            }
        } else if (a == "--serve") {
            serve = true;
        } else if (a == "--batch") {
            if (++i >= args.size())
                return usage();
            batch = std::strtoull(args[i].c_str(), nullptr, 10);
            if (batch == 0) {
                std::cerr << "error: --batch wants a positive count\n";
                return 2;
            }
        } else if (a == "--stimuli") {
            if (++i >= args.size())
                return usage();
            stimuli_file = args[i];
        } else if (a == "--threads") {
            if (++i >= args.size())
                return usage();
            threads = static_cast<unsigned>(
                std::strtoul(args[i].c_str(), nullptr, 10));
            if (threads == 0) {
                std::cerr << "error: --threads wants a positive count\n";
                return 2;
            }
        } else if (a == "--lane-tile") {
            if (++i >= args.size())
                return usage();
            lane_tile = static_cast<uint32_t>(
                std::strtoul(args[i].c_str(), nullptr, 10));
            if (lane_tile == 0) {
                std::cerr << "error: --lane-tile wants a positive "
                             "count\n";
                return 2;
            }
        } else if (a == "--area") {
            area = true;
        } else if (a == "--stats") {
            stats = true;
        } else if (!a.empty() && a[0] == '-') {
            return usage();
        } else {
            file = a;
        }
    }
    if (file.empty())
        return usage();

    std::ifstream in(file);
    if (!in) {
        std::cerr << "cannot open " << file << "\n";
        return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    bool batched = batch > 0 || !stimuli_file.empty();
    try {
        // Flag conflicts are hard errors before any compilation work:
        // observers hook one scalar trajectory and have no meaning
        // over lane planes (docs/observability.md).
        if (serve || batched) {
            const std::string mode = serve ? "--serve" : "--batch";
            if (!trace_file.empty())
                calyx::serve::rejectObserverFlag("--trace", mode);
            if (!profile_file.empty() || profile_summary)
                calyx::serve::rejectObserverFlag("--profile", mode);
            if (serve && batched)
                calyx::fatal("--serve reads stimulus batches from "
                             "stdin; drop --batch/--stimuli");
        }

        // Resolve the backend up front so `futil -b nonsense` is a hard
        // error before any compilation work happens.
        std::unique_ptr<calyx::emit::Backend> emitter =
            calyx::emit::BackendRegistry::instance().create(backend);

        if (spec_text.empty())
            spec_text = "default";
        // Disables go last so `-d pass` works no matter where it
        // appears relative to -p on the command line.
        for (const std::string &d : disables)
            append_spec("-" + d);
        calyx::passes::PipelineSpec spec =
            calyx::passes::parsePipelineSpec(spec_text);
        for (const std::string &item : overrides)
            calyx::passes::applyPassOptions(spec, item);
        if (!run_options.dumpIrAfter.empty()) {
            if (!calyx::passes::PassRegistry::instance().hasPass(
                    run_options.dumpIrAfter))
                calyx::fatal("--dump-ir-after: unknown pass '",
                             run_options.dumpIrAfter, "'");
            bool scheduled = false;
            for (const auto &inv : spec.passes)
                scheduled |= inv.name == run_options.dumpIrAfter;
            if (!scheduled)
                calyx::fatal("--dump-ir-after: pass '",
                             run_options.dumpIrAfter,
                             "' is not in the pipeline '", spec.str(),
                             "'");
        }
        // The profile envelope embeds the compile section, so collect
        // stats whenever either consumer wants them.
        run_options.collectStats = timings || !profile_file.empty();
        run_options.threads = threads;

        calyx::Context ctx =
            calyx::Parser::parseProgram(buffer.str());
        if (stats) {
            auto s = calyx::passes::gatherStats(ctx);
            std::cout << "cells: " << s.cells << "\ngroups: " << s.groups
                      << "\ncontrol statements: " << s.controlStatements
                      << "\n";
        }
        std::vector<calyx::passes::PassRunInfo> pass_infos;
        if (compile) {
            pass_infos =
                calyx::passes::runPipeline(ctx, spec, run_options);
            if (timings) {
                if (timings_json) {
                    calyx::json::Value env =
                        calyx::obs::reportEnvelope(file);
                    env.set("compile", calyx::obs::passTimingsJson(
                                           spec.str(), pass_infos));
                    env.write(std::cout);
                    std::cout << "\n";
                } else {
                    printTimings(pass_infos);
                }
            }
        }
        if (emit_stats) {
            // Deterministic order: components sorted by name, not the
            // registration/hash order the context happens to hold.
            std::vector<const calyx::Component *> stat_comps;
            for (const auto &comp : ctx.components())
                stat_comps.push_back(comp.get());
            std::sort(stat_comps.begin(), stat_comps.end(),
                      [](const calyx::Component *a,
                         const calyx::Component *b) {
                          return a->name().str() < b->name().str();
                      });
            for (const calyx::Component *comp : stat_comps) {
                calyx::FsmStats fs = calyx::fsmStats(*comp);
                if (fs.machines == 0)
                    continue;
                const char *enc = "binary";
                for (const auto &m : comp->fsms())
                    if (m->encoding() == calyx::FsmEncoding::OneHot)
                        enc = "one-hot";
                std::fprintf(
                    stderr,
                    "fsm[%s]: machines=%d states=%d codes=%lld "
                    "transitions=%lld counter-states=%lld registers=%d "
                    "helpers=%d control-registers=%d seed-registers=%d "
                    "encoding=%s lowering=%.3fms\n",
                    comp->name().str().c_str(), fs.machines, fs.states,
                    static_cast<long long>(fs.codes),
                    static_cast<long long>(fs.transitions),
                    static_cast<long long>(fs.counterStates),
                    fs.registers, fs.helperRegisters,
                    fs.controlRegisters, fs.seedRegisters, enc,
                    fs.loweringSeconds * 1e3);
            }
        }
        if (dump_fsm) {
            for (const auto &comp : ctx.components()) {
                if (comp->fsms().empty())
                    continue;
                std::cout << "component " << comp->name().str() << ":\n";
                for (const auto &m : comp->fsms())
                    std::cout << m->str();
            }
        }
        if (area) {
            calyx::estimate::AreaEstimator est(ctx);
            auto a = est.estimateProgram();
            std::cout << "LUTs: " << a.luts << "\nFFs: " << a.ffs
                      << "\nDSPs: " << a.dsps
                      << "\nregisters: " << a.registers << "\n";
        }
        if (serve) {
            calyx::sim::SimProgram sp(ctx, ctx.entrypoint());
            calyx::serve::ServeOptions so;
            // A resident service wants the resident-module engine
            // unless the user explicitly asked for another one.
            so.engine = engine_set ? sim_engine
                                   : calyx::sim::Engine::Compiled;
            so.threads = threads;
            so.laneTile = lane_tile;
            so.file = file;
            // Opt into the persistent compile-cache tier the same way
            // the cppsim module cache does: via environment.
            if (const char *dir = std::getenv("CALYX_COMPILE_CACHE");
                dir && *dir)
                so.compileCache.diskDir =
                    calyx::cache::compileCacheDir();
            calyx::serve::ServeStats st =
                calyx::serve::serve(sp, std::cin, std::cout, so);
            std::cerr << "serve: " << st.requests << " requests ("
                      << st.runs << " runs, " << st.stimuli
                      << " stimuli, " << st.compiles << " compiles, "
                      << st.errors << " rejected)\n";
        }
        if (batched) {
            calyx::sim::SimProgram sp(ctx, ctx.entrypoint());
            calyx::sim::BatchOptions bo;
            bo.engine = engine_set ? sim_engine
                                   : calyx::sim::Engine::Compiled;
            bo.threads = threads;
            if (lane_tile)
                bo.laneTile = lane_tile;

            std::vector<calyx::sim::Stimulus> stimuli;
            if (!stimuli_file.empty()) {
                std::ifstream sin(stimuli_file);
                if (!sin)
                    calyx::fatal("cannot open ", stimuli_file);
                std::stringstream sbuf;
                sbuf << sin.rdbuf();
                calyx::json::Value doc = calyx::json::parse(sbuf.str());
                const calyx::json::Value *arr =
                    doc.kind() == calyx::json::Value::Kind::Obj
                        ? doc.find("batch")
                        : &doc;
                if (!arr)
                    calyx::fatal(stimuli_file,
                                 ": no 'batch' array in stimulus file");
                stimuli = calyx::serve::parseStimuli(*arr);
                if (stimuli.empty())
                    calyx::fatal(stimuli_file, ": empty stimulus batch");
                // --batch N with a shorter file cycles the stimuli.
                if (batch == 0)
                    batch = stimuli.size();
                size_t given = stimuli.size();
                stimuli.reserve(batch);
                for (size_t s = given; s < batch; ++s)
                    stimuli.push_back(stimuli[s % given]);
                stimuli.resize(batch);
            } else {
                stimuli.assign(batch, calyx::sim::Stimulus{});
            }

            calyx::sim::BatchRunner runner(sp, bo);
            auto t0 = std::chrono::steady_clock::now();
            std::vector<calyx::sim::LaneResult> lanes =
                runner.run(stimuli);
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
            uint64_t lo = lanes.front().cycles, hi = lo;
            for (const auto &lane : lanes) {
                lo = std::min(lo, lane.cycles);
                hi = std::max(hi, lane.cycles);
            }
            std::cout << "batch: " << lanes.size() << " stimuli, "
                      << "cycles: " << lo;
            if (hi != lo)
                std::cout << ".." << hi;
            std::cout << ", " << std::fixed << std::setprecision(1)
                      << (secs > 0 ? double(lanes.size()) / secs : 0.0)
                      << " stimuli/s ("
                      << calyx::sim::engineName(bo.engine) << ", tile "
                      << bo.laneTile << ", " << bo.threads
                      << (bo.threads == 1 ? " thread)" : " threads)")
                      << "\n";
        }
        if (simulate) {
            calyx::sim::SimProgram sp(ctx, ctx.entrypoint());

            std::ofstream trace_out;
            std::unique_ptr<calyx::obs::VcdWriter> vcd;
            if (!trace_file.empty()) {
                trace_out.open(trace_file);
                if (!trace_out)
                    calyx::fatal("cannot write ", trace_file);
                vcd = std::make_unique<calyx::obs::VcdWriter>(
                    sp, trace_out, trace_scope);
            }
            std::unique_ptr<calyx::obs::Profiler> profiler;
            if (!profile_file.empty() || profile_summary)
                profiler = std::make_unique<calyx::obs::Profiler>(sp);

            auto attach = [&](calyx::sim::SimState &state) {
                if (vcd)
                    state.addObserver(vcd.get());
                if (profiler)
                    state.addObserver(profiler.get());
            };

            // Programs that still have groups (--no-compile, partial
            // pipelines) run under the control interpreter; lowered
            // ones under the cycle simulator.
            uint64_t cycles;
            if (sp.hasGroups()) {
                calyx::sim::Interp interp(sp, sim_engine);
                interp.state().setThreads(threads);
                attach(interp.state());
                cycles = interp.run();
            } else {
                calyx::sim::CycleSim cs(sp, sim_engine);
                cs.state().setThreads(threads);
                attach(cs.state());
                cycles = cs.run();
            }
            std::cout << "cycles: " << cycles << "\n";

            if (profiler && profile_summary)
                profiler->printSummary(std::cout);
            if (profiler && !profile_file.empty()) {
                calyx::json::Value env = calyx::obs::reportEnvelope(file);
                if (!pass_infos.empty())
                    env.set("compile", calyx::obs::passTimingsJson(
                                           spec.str(), pass_infos));
                calyx::json::Value sim_obj = calyx::json::Value::object();
                sim_obj.set("engine", calyx::json::Value::str(
                                          calyx::sim::engineName(
                                              sim_engine)));
                sim_obj.set("profile", profiler->report());
                env.set("sim", std::move(sim_obj));
                std::ofstream out(profile_file);
                if (!out)
                    calyx::fatal("cannot write ", profile_file);
                env.write(out);
                out << "\n";
            }
        }
        bool emits = !output.empty() ||
                     (!simulate && !area && !stats && !timings &&
                      !dump_fsm && !serve && !batched);
        if (emits) {
            if (output.empty() && !emit_stats) {
                emitter->emit(ctx, std::cout); // stream large artifacts
            } else {
                // -o materializes first so a failing backend cannot
                // leave a truncated artifact behind; --emit-stats needs
                // the whole text anyway.
                std::string text = emitter->emitString(ctx);
                if (output.empty()) {
                    std::cout << text;
                } else {
                    std::ofstream out(output);
                    if (!out)
                        calyx::fatal("cannot write ", output);
                    out << text;
                }
                if (emit_stats) {
                    std::fprintf(stderr, "%s: %d lines, %zu bytes%s%s\n",
                                 backend.c_str(), calyx::countLines(text),
                                 text.size(),
                                 output.empty() ? "" : " -> ",
                                 output.c_str());
                }
            }
        }
    } catch (const calyx::Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
