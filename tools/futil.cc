/**
 * @file
 * futil: command-line driver for the Calyx compiler (the artifact's
 * `futil` binary). Reads a textual Calyx program, runs the compilation
 * pipeline, and emits Calyx or SystemVerilog, or simulates the design.
 *
 * Usage:
 *   futil [options] file.futil
 *     -b calyx|verilog   backend (default calyx)
 *     -p <pass>          enable optimization: resource-sharing,
 *                        register-sharing, static, all
 *     --no-compile       print the program without lowering control
 *     --sim              compile, simulate, and report the cycle count
 *     --area             print the area estimate
 *     --stats            print cells/groups/control statistics
 */
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/verilog.h"
#include "estimate/area.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/pipeline.h"
#include "sim/cycle_sim.h"
#include "support/error.h"

namespace {

int
usage()
{
    std::cerr << "usage: futil [-b calyx|verilog] [-p <pass>] "
                 "[--no-compile] [--sim] [--area] [--stats] file.futil\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string backend = "calyx";
    std::string file;
    bool compile = true, simulate = false, area = false, stats = false;
    calyx::passes::CompileOptions options;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "-b") {
            if (++i >= args.size())
                return usage();
            backend = args[i];
        } else if (a == "-p") {
            if (++i >= args.size())
                return usage();
            const std::string &pass = args[i];
            if (pass == "resource-sharing") {
                options.resourceSharing = true;
            } else if (pass == "register-sharing") {
                options.registerSharing = true;
            } else if (pass == "static") {
                options.sensitive = true;
            } else if (pass == "all") {
                options.resourceSharing = true;
                options.registerSharing = true;
                options.sensitive = true;
            } else {
                std::cerr << "unknown pass: " << pass << "\n";
                return 2;
            }
        } else if (a == "--no-compile") {
            compile = false;
        } else if (a == "--sim") {
            simulate = true;
        } else if (a == "--area") {
            area = true;
        } else if (a == "--stats") {
            stats = true;
        } else if (!a.empty() && a[0] == '-') {
            return usage();
        } else {
            file = a;
        }
    }
    if (file.empty())
        return usage();

    std::ifstream in(file);
    if (!in) {
        std::cerr << "cannot open " << file << "\n";
        return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    try {
        calyx::Context ctx =
            calyx::Parser::parseProgram(buffer.str());
        if (stats) {
            auto s = calyx::passes::gatherStats(ctx);
            std::cout << "cells: " << s.cells << "\ngroups: " << s.groups
                      << "\ncontrol statements: " << s.controlStatements
                      << "\n";
        }
        if (compile)
            calyx::passes::compile(ctx, options);
        if (area) {
            calyx::estimate::AreaEstimator est(ctx);
            auto a = est.estimateProgram();
            std::cout << "LUTs: " << a.luts << "\nFFs: " << a.ffs
                      << "\nDSPs: " << a.dsps
                      << "\nregisters: " << a.registers << "\n";
        }
        if (simulate) {
            calyx::sim::SimProgram sp(ctx, ctx.entrypoint());
            calyx::sim::CycleSim cs(sp);
            std::cout << "cycles: " << cs.run() << "\n";
        }
        if (!simulate && !area && !stats) {
            if (backend == "verilog") {
                calyx::backend::VerilogBackend::emit(ctx, std::cout);
            } else {
                calyx::Printer::print(ctx, std::cout);
            }
        }
    } catch (const calyx::Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
