/**
 * @file
 * obscheck: validator for the observability artifacts futil emits
 * (docs/observability.md), run by scripts/obs_smoke.sh and CI.
 *
 * Usage:
 *   obscheck vcd <file.vcd>       structural VCD checks: required
 *                                 header sections, balanced scopes, at
 *                                 least one $var, value changes only
 *                                 after $enddefinitions and only for
 *                                 declared identifier codes, strictly
 *                                 increasing timestamps
 *   obscheck profile <file.json>  parse the JSON report envelope and
 *                                 check the schema fields the profiler
 *                                 guarantees
 *
 * Exits 0 when the artifact validates, 1 with a diagnostic otherwise.
 */
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "support/error.h"
#include "support/json.h"

namespace {

int
fail(const std::string &msg)
{
    std::cerr << "obscheck: " << msg << "\n";
    return 1;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        calyx::fatal("cannot open ", path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int
checkVcd(const std::string &path)
{
    std::istringstream in(readFile(path));
    bool saw_timescale = false, saw_enddefs = false;
    int scope_depth = 0;
    size_t var_count = 0;
    std::unordered_set<std::string> codes;
    bool have_time = false;
    unsigned long long last_time = 0;
    size_t lineno = 0;
    std::string line;

    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string tok;
        ls >> tok;
        auto at = [&] { return path + ":" + std::to_string(lineno); };

        if (tok == "$timescale" || tok == "$date" || tok == "$version") {
            if (tok == "$timescale")
                saw_timescale = true;
            // Multi-line section: skip the body up to its $end (which
            // may share the directive's line).
            while (line.find("$end") == std::string::npos &&
                   std::getline(in, line))
                ++lineno;
        } else if (tok == "$scope") {
            if (saw_enddefs)
                return fail(at() + ": $scope after $enddefinitions");
            ++scope_depth;
        } else if (tok == "$upscope") {
            if (--scope_depth < 0)
                return fail(at() + ": unbalanced $upscope");
        } else if (tok == "$var") {
            if (saw_enddefs)
                return fail(at() + ": $var after $enddefinitions");
            // $var wire <width> <code> <name> ... $end
            std::string kind, width, code;
            ls >> kind >> width >> code;
            if (code.empty())
                return fail(at() + ": malformed $var");
            codes.insert(code);
            ++var_count;
        } else if (tok == "$enddefinitions") {
            if (scope_depth != 0)
                return fail(at() + ": unbalanced scopes at "
                                   "$enddefinitions");
            saw_enddefs = true;
        } else if (tok[0] == '#') {
            if (!saw_enddefs)
                return fail(at() + ": timestamp before $enddefinitions");
            unsigned long long t =
                std::stoull(tok.substr(1), nullptr, 10);
            if (have_time && t <= last_time)
                return fail(at() + ": non-monotonic timestamp #" +
                            std::to_string(t) + " after #" +
                            std::to_string(last_time));
            last_time = t;
            have_time = true;
        } else if (tok[0] == '0' || tok[0] == '1') {
            if (!saw_enddefs)
                return fail(at() +
                            ": value change before $enddefinitions");
            std::string code = tok.substr(1);
            if (!codes.count(code))
                return fail(at() + ": value change for undeclared id '" +
                            code + "'");
        } else if (tok[0] == 'b') {
            if (!saw_enddefs)
                return fail(at() +
                            ": value change before $enddefinitions");
            std::string code;
            ls >> code;
            if (!codes.count(code))
                return fail(at() + ": value change for undeclared id '" +
                            code + "'");
        }
        // $date/$version/$dumpvars/$end bodies pass through unchecked.
    }

    if (!saw_timescale)
        return fail(path + ": missing $timescale");
    if (!saw_enddefs)
        return fail(path + ": missing $enddefinitions");
    if (var_count == 0)
        return fail(path + ": no $var declarations");
    if (!have_time)
        return fail(path + ": no timestamps");
    return 0;
}

int
checkProfile(const std::string &path)
{
    calyx::json::Value doc = calyx::json::parse(readFile(path));
    if (doc.kind() != calyx::json::Value::Kind::Obj)
        return fail(path + ": envelope is not an object");
    if (doc.at("version").asNum() != 1)
        return fail(path + ": unknown envelope version");
    doc.at("file").asStr();

    const calyx::json::Value *sim = doc.find("sim");
    if (!sim)
        return fail(path + ": envelope has no sim section");
    sim->at("engine").asStr();
    const calyx::json::Value &profile = sim->at("profile");
    uint64_t cycles = profile.at("cycles").asNum();
    uint64_t attributed = profile.at("attributed_cycles").asNum();
    if (attributed > cycles)
        return fail(path + ": attributed_cycles exceeds cycles");
    profile.at("attributed_pct").asReal();
    for (const auto &g : profile.at("groups").items()) {
        g.at("name").asStr();
        g.at("cycles").asNum();
    }
    for (const auto &m : profile.at("machines").items()) {
        m.at("name").asStr();
        m.at("register").asStr();
        m.at("encoding").asStr();
        m.at("unattributed_cycles").asNum();
        for (const auto &s : m.at("states").items()) {
            s.at("name").asStr();
            s.at("cycles").asNum();
        }
    }
    for (const auto &mem : profile.at("memories").items()) {
        mem.at("name").asStr();
        mem.at("read_cycles").asNum();
        mem.at("write_cycles").asNum();
    }
    const calyx::json::Value &eng = profile.at("engine");
    eng.at("comb_evals_total").asNum();
    eng.at("comb_evals_max").asNum();
    eng.at("comb_evals_avg").asReal();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr << "usage: obscheck vcd <file.vcd> | obscheck profile "
                     "<file.json>\n";
        return 2;
    }
    std::string mode = argv[1], path = argv[2];
    try {
        if (mode == "vcd")
            return checkVcd(path);
        if (mode == "profile")
            return checkProfile(path);
    } catch (const calyx::Error &e) {
        return fail(path + ": " + e.what());
    } catch (const std::exception &e) {
        return fail(path + ": " + e.what());
    }
    std::cerr << "obscheck: unknown mode '" << mode << "'\n";
    return 2;
}
