/**
 * @file
 * §7.4 compilation statistics: compile time for the largest PolyBench
 * design (gemver), and the size of the largest design overall — the
 * 8x8 systolic array (paper: 241 cells, 224 groups, 1,744 control
 * statements, 8,906 lines of SystemVerilog generated in 0.7 s; gemver
 * compiles in 0.06 s vs 26.1 s for Vivado HLS). Uses google-benchmark
 * for the timing measurements.
 */
#include <benchmark/benchmark.h>

#include <cstdio>

#include "emit/backend.h"
#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "frontends/systolic/systolic.h"
#include "passes/pipeline.h"
#include "support/text.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

void
BM_CompileGemver(benchmark::State &state)
{
    const auto &k = workloads::kernel("gemver");
    dahlia::Program prog = dahlia::parse(k.source);
    for (auto _ : state) {
        std::string sv = workloads::emitDesign(prog, "all", "verilog");
        benchmark::DoNotOptimize(sv);
    }
}
BENCHMARK(BM_CompileGemver)->Unit(benchmark::kMillisecond);

void
BM_CompileSystolic8x8(benchmark::State &state)
{
    for (auto _ : state) {
        Context ctx;
        systolic::Config cfg;
        cfg.rows = cfg.cols = cfg.inner = 8;
        systolic::generate(ctx, cfg);
        passes::runPipeline(ctx,
                            "all,-resource-sharing,-register-sharing");
        std::string sv =
            emit::BackendRegistry::instance().create("verilog")->emitString(
                ctx);
        benchmark::DoNotOptimize(sv);
    }
}
BENCHMARK(BM_CompileSystolic8x8)->Unit(benchmark::kMillisecond);

void
printDesignStats()
{
    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = 8;
    systolic::generate(ctx, cfg);
    passes::DesignStats stats = passes::gatherStats(ctx);

    passes::runPipeline(ctx, "all,-resource-sharing,-register-sharing");
    std::string sv =
        emit::BackendRegistry::instance().create("verilog")->emitString(ctx);

    std::printf("=== §7.4 design statistics: 8x8 systolic array ===\n");
    std::printf("(paper-reported values in brackets)\n");
    std::printf("  cells:              %d [241]\n", stats.cells);
    std::printf("  groups:             %d [224]\n", stats.groups);
    std::printf("  control statements: %d [1,744]\n",
                stats.controlStatements);
    std::printf("  SystemVerilog LOC:  %d [8,906]\n",
                countLines(sv));
    std::printf("(compile times measured by the benchmarks below; "
                "paper: gemver 0.06 s vs 26.1 s Vivado HLS, systolic "
                "0.7 s)\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    printDesignStats();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
