/**
 * @file
 * Figure 8 (paper §7.2): cycle slowdown (8a) and LUT increase (8b) of
 * Dahlia-generated Calyx designs over the HLS baseline for all 19
 * PolyBench linear-algebra kernels, plus the 11 unrolled variants the
 * type system permits. Calyx designs are compiled with all
 * optimizations on (resource sharing, register sharing, Sensitive),
 * matching the paper's setup. Values > 1 mean Calyx is slower/larger.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "frontends/dahlia/parser.h"
#include "hls/scheduler.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

double
geomean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += std::log(x);
    return v.empty() ? 0.0 : std::exp(s / static_cast<double>(v.size()));
}

struct Measured
{
    double slowdown = 0;
    double lutFactor = 0;
};

/// Simulator wall-clock accumulated across every kernel, for the
/// cycles/sec summary (ISSUE 3: measure, don't assert).
uint64_t totalSimCycles = 0;
double totalSimSeconds = 0;
constexpr sim::Engine simEngine = sim::Engine::Levelized;

Measured
measure(const std::string &kernel_name, const std::string &source)
{
    dahlia::Program prog = dahlia::parse(source);
    workloads::MemState inputs =
        workloads::makeInputs(kernel_name, prog);

    auto hw = workloads::runOnHardware(
        prog, passes::parsePipelineSpec("all"), inputs, nullptr, {},
        simEngine);
    hls::HlsReport h = hls::scheduleProgram(prog);
    totalSimCycles += hw.cycles;
    totalSimSeconds += hw.simSeconds;

    Measured m;
    m.slowdown = static_cast<double>(hw.cycles) /
                 static_cast<double>(h.cycles);
    m.lutFactor = hw.area.luts / h.luts;
    return m;
}

} // namespace

int
main()
{
    std::printf("=== Figure 8: Dahlia-generated Calyx vs Vivado-HLS "
                "stand-in, PolyBench ===\n\n");
    std::printf("%-12s %5s | %15s %14s | %15s %14s\n", "kernel", "label",
                "cycle-slowdown", "lut-increase", "unrolled-slowdn",
                "unrolled-luts");

    std::vector<double> slow, luts, uslow, uluts;
    for (const auto &k : workloads::kernels()) {
        Measured base = measure(k.name, k.source);
        slow.push_back(base.slowdown);
        luts.push_back(base.lutFactor);
        if (!k.unrolledSource.empty()) {
            Measured unrolled = measure(k.name, k.unrolledSource);
            uslow.push_back(unrolled.slowdown);
            uluts.push_back(unrolled.lutFactor);
            std::printf("%-12s %5s | %15.2f %14.2f | %15.2f %14.2f\n",
                        k.name.c_str(), k.label.c_str(), base.slowdown,
                        base.lutFactor, unrolled.slowdown,
                        unrolled.lutFactor);
        } else {
            std::printf("%-12s %5s | %15.2f %14.2f | %15s %14s\n",
                        k.name.c_str(), k.label.c_str(), base.slowdown,
                        base.lutFactor, "-", "-");
        }
    }

    std::printf("\nGeomeans (paper-reported values in brackets):\n");
    std::printf("  cycle slowdown:          %.2fx [3.1x]\n",
                geomean(slow));
    std::printf("  LUT increase:            %.2fx [1.2x]\n",
                geomean(luts));
    std::printf("  unrolled cycle slowdown: %.2fx [2.3x] over %zu "
                "kernels [11]\n",
                geomean(uslow), uslow.size());
    std::printf("  unrolled LUT increase:   %.2fx [2.2x]\n",
                geomean(uluts));
    std::printf("\nsimulator throughput (%s engine): %llu cycles "
                "in %.3fs = %.0f cycles/sec\n",
                sim::engineName(simEngine),
                static_cast<unsigned long long>(totalSimCycles),
                totalSimSeconds,
                totalSimSeconds > 0
                    ? static_cast<double>(totalSimCycles) / totalSimSeconds
                    : 0.0);
    return 0;
}
