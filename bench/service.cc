/**
 * @file
 * Compile-service benchmark (ISSUE 9): requests/sec through the
 * content-addressed compile cache on a mutated PolyBench stream, and
 * parallel per-component pass execution against serial. The workload
 * is one multi-component program — several PolyBench kernels compiled
 * from Dahlia, renamed, and invoked from a fresh `main` — mutated per
 * request by editing one kernel's constant, the request shape of
 * generated frontends and compile-in-the-loop tooling.
 *
 * Sections written to BENCH_service.json:
 *   cold         every request compiles from scratch (cache disabled)
 *   warm         the same variant set revisited: raw-text tier hits
 *   incremental  every request mints a never-seen variant of one
 *                kernel: the per-component tier recompiles only the
 *                edited kernel's dependency cone
 *   parallel     `-p all` wall time, 1 thread vs all hardware threads,
 *                through the pass manager's wavefront dispatch
 *
 * Usage:
 *   bench_service [--small] [--check] [--reps N] [--out FILE]
 *                 [--threads N]
 *     --small    CI smoke configuration (2 kernels, short streams)
 *     --check    exit non-zero unless warm rps >= cold rps, warm is
 *                >= 5x cold, every cached/incremental/parallel
 *                artifact is byte-identical to a cold serial compile,
 *                and (on hosts with >= 2 cores) parallel `-p all` is
 *                >= 1.5x serial on the multi-component workload — the
 *                parallel speedup gate auto-skips on 1-core hosts
 *     --reps N   stream length multiplier (default 3)
 *     --threads  worker threads for the parallel section (default:
 *                hardware concurrency)
 *     --out      output path (default BENCH_service.json)
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cache/compile_cache.h"
#include "emit/backend.h"
#include "frontends/dahlia/checker.h"
#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/pipeline_spec.h"
#include "support/error.h"
#include "support/json.h"
#include "support/pool.h"
#include "support/time.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

constexpr const char *kPipeline = "all";

/** One PolyBench kernel as a renamed Calyx component text. */
struct KernelText
{
    std::string name;
    std::string text;      ///< `component <name>() -> () { ... }`
    size_t constPos = 0;   ///< Offset of a mutable `32'd` constant.
    size_t constLen = 0;   ///< Digit count at constPos (0 = none).
};

KernelText
kernelText(const workloads::Kernel &k)
{
    dahlia::Program program = dahlia::parse(k.source);
    dahlia::check(program);
    Context ctx = dahlia::compileDahlia(program);
    KernelText kt;
    kt.name = "poly_" + k.name;
    kt.text = Printer::toString(ctx.main());
    const std::string from = "component main";
    size_t at = kt.text.find(from);
    if (at == std::string::npos)
        fatal("kernel ", k.name, ": no 'component main' to rename");
    kt.text.replace(at, from.size(), "component " + kt.name);
    // A mutable constant: the digits of the first `32'd<n>` literal.
    size_t c = kt.text.find("32'd");
    if (c != std::string::npos) {
        kt.constPos = c + 4;
        size_t end = kt.constPos;
        while (end < kt.text.size() && isdigit(kt.text[end]))
            ++end;
        kt.constLen = end - kt.constPos;
    }
    return kt;
}

/** The kernel text with its constant replaced by `value`; the base
 * text when the kernel has no constant to edit. */
std::string
mutated(const KernelText &kt, uint64_t value)
{
    if (kt.constLen == 0)
        return kt.text;
    std::string t = kt.text;
    t.replace(kt.constPos, kt.constLen, std::to_string(value));
    return t;
}

/** Whole-program source: every kernel component plus a main that
 * invokes each one in sequence. `edit` (when >= 0) selects the kernel
 * whose constant becomes `value`. */
std::string
assembleProgram(const std::vector<KernelText> &kernels, int edit,
                uint64_t value)
{
    std::string src;
    for (size_t i = 0; i < kernels.size(); ++i)
        src += (static_cast<int>(i) == edit ? mutated(kernels[i], value)
                                            : kernels[i].text) +
               "\n";
    std::string cells, wires, control;
    for (size_t i = 0; i < kernels.size(); ++i) {
        std::string cell = "k" + std::to_string(i);
        cells += "    " + cell + " = " + kernels[i].name + "();\n";
        wires += "    group call" + std::to_string(i) + " { " + cell +
                 ".go = 1'd1; call" + std::to_string(i) + "[done] = " +
                 cell + ".done; }\n";
        control += " call" + std::to_string(i) + ";";
    }
    src += "component main() -> () {\n  cells {\n" + cells +
           "  }\n  wires {\n" + wires + "  }\n  control { seq {" +
           control + " } }\n}\n";
    return src;
}

/** Cold reference: fresh pipeline + calyx emit, no cache anywhere. */
std::string
coldArtifact(const std::string &src)
{
    Context ctx = Parser::parseProgram(src);
    passes::runPipeline(ctx, kPipeline);
    return emit::BackendRegistry::instance().create("calyx")->emitString(
        ctx);
}

struct StreamResult
{
    uint64_t requests = 0;
    double seconds = 0;
    uint64_t componentsFromCache = 0;
    uint64_t rawHits = 0;
    bool artifactsIdentical = true;

    double rps() const { return seconds > 0 ? requests / seconds : 0; }
};

/** Run `sources` through one service, checking every artifact against
 * the cold reference in `expected` (same indexing). */
StreamResult
runStream(cache::CompileService &svc,
          const std::vector<const std::string *> &sources,
          const std::vector<const std::string *> &expected)
{
    StreamResult r;
    for (size_t i = 0; i < sources.size(); ++i) {
        cache::CompileRequest req;
        req.source = *sources[i];
        req.pipeline = kPipeline;
        double t0 = nowSeconds();
        cache::CompileResult res = svc.compile(req);
        r.seconds += nowSeconds() - t0;
        ++r.requests;
        r.componentsFromCache += res.componentsFromCache;
        r.rawHits += res.rawTextHit ? 1 : 0;
        if (res.artifact != *expected[i])
            r.artifactsIdentical = false;
    }
    return r;
}

json::Value
streamJson(const char *name, const StreamResult &r)
{
    json::Value s = json::Value::object();
    s.set("name", json::Value::str(name));
    s.set("requests", json::Value::number(r.requests));
    s.set("micros", json::Value::number(
                        static_cast<uint64_t>(r.seconds * 1e6 + 0.5)));
    s.set("requests_per_sec",
          json::Value::number(static_cast<uint64_t>(r.rps() + 0.5)));
    s.set("components_from_cache",
          json::Value::number(r.componentsFromCache));
    s.set("raw_text_hits", json::Value::number(r.rawHits));
    s.set("artifacts_identical",
          json::Value::boolean(r.artifactsIdentical));
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    bool small = false, check = false;
    int reps = 3;
    std::string out_path = "BENCH_service.json";
    unsigned threads = WorkPool::defaultThreads();
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--small")) {
            small = true;
        } else if (!std::strcmp(argv[i], "--check")) {
            check = true;
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_service [--small] [--check] "
                         "[--reps N] [--threads N] [--out FILE]\n");
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;

    bool ok = true;
    json::Value doc = json::Value::object();
    try {
        // The workload: kernels with a mutable constant, so every
        // variant is a real source edit.
        std::vector<KernelText> kernels;
        for (const auto &k : workloads::kernels()) {
            if (small && k.name != "gemm" && k.name != "atax")
                continue;
            KernelText kt = kernelText(k);
            if (kt.constLen)
                kernels.push_back(std::move(kt));
            if (kernels.size() == (small ? 2u : 6u))
                break;
        }
        if (kernels.size() < 2)
            fatal("need at least two mutable PolyBench kernels");

        // Variant set: variant v edits kernel (v mod K). Cold
        // references are computed once, outside every timed region.
        const size_t variants = kernels.size() * 2;
        std::vector<std::string> sources;
        std::vector<std::string> references;
        for (size_t v = 0; v < variants; ++v) {
            sources.push_back(assembleProgram(
                kernels, static_cast<int>(v % kernels.size()), 100 + v));
            references.push_back(coldArtifact(sources.back()));
        }
        std::vector<const std::string *> stream, expected;
        for (int r = 0; r < reps; ++r) {
            for (size_t v = 0; v < variants; ++v) {
                stream.push_back(&sources[v]);
                expected.push_back(&references[v]);
            }
        }

        // Cold: the cache is disabled, every request runs the whole
        // pipeline. This is the baseline a non-resident compiler pays.
        cache::CompileCache::Config cold_cfg;
        cold_cfg.enabled = false;
        cache::CompileService cold_svc(cold_cfg);
        StreamResult cold = runStream(cold_svc, stream, expected);

        // Warm: same stream against a primed cache — one untimed lap
        // fills it, then every timed request is a raw-text hit. This
        // is the steady state a resident service reaches after first
        // contact with a variant set.
        cache::CompileService warm_svc((cache::CompileCache::Config()));
        for (size_t v = 0; v < variants; ++v) {
            cache::CompileRequest req;
            req.source = sources[v];
            req.pipeline = kPipeline;
            warm_svc.compile(req);
        }
        StreamResult warm = runStream(warm_svc, stream, expected);

        // Incremental: every request is a never-seen variant editing
        // one kernel, so only that kernel's dependency cone (itself +
        // main) re-runs passes; the other kernels come from the
        // per-component tier.
        std::vector<std::string> inc_sources;
        std::vector<std::string> inc_refs;
        const size_t inc_n = variants;
        for (size_t v = 0; v < inc_n; ++v) {
            inc_sources.push_back(assembleProgram(
                kernels, static_cast<int>(v % kernels.size()),
                1000 + v));
            inc_refs.push_back(coldArtifact(inc_sources.back()));
        }
        std::vector<const std::string *> inc_stream, inc_expected;
        for (size_t v = 0; v < inc_n; ++v) {
            inc_stream.push_back(&inc_sources[v]);
            inc_expected.push_back(&inc_refs[v]);
        }
        cache::CompileService inc_svc((cache::CompileCache::Config()));
        StreamResult inc = runStream(inc_svc, inc_stream, inc_expected);

        // Parallel: `-p all` through the wavefront dispatcher, serial
        // vs `threads` workers, on the same multi-component program.
        const std::string &par_src = sources[0];
        double serial_s = 0, parallel_s = 0;
        std::string serial_text, parallel_text;
        for (int r = 0; r < reps; ++r) {
            {
                Context ctx = Parser::parseProgram(par_src);
                double t0 = nowSeconds();
                passes::runPipeline(ctx, kPipeline);
                serial_s += nowSeconds() - t0;
                serial_text = Printer::toString(ctx);
            }
            {
                Context ctx = Parser::parseProgram(par_src);
                passes::RunOptions opts;
                opts.threads = threads;
                double t0 = nowSeconds();
                passes::runPipeline(ctx, kPipeline, opts);
                parallel_s += nowSeconds() - t0;
                parallel_text = Printer::toString(ctx);
            }
        }
        bool parallel_identical = serial_text == parallel_text;
        double parallel_speedup =
            parallel_s > 0 ? serial_s / parallel_s : 0;
        unsigned hw = WorkPool::defaultThreads();

        std::fprintf(stderr,
                     "bench_service: cold %.0f rps, warm %.0f rps "
                     "(%.1fx), incremental %.0f rps, parallel %ut "
                     "%.2fx\n",
                     cold.rps(), warm.rps(),
                     cold.rps() > 0 ? warm.rps() / cold.rps() : 0,
                     inc.rps(), threads, parallel_speedup);

        doc.set("version", json::Value::number(1u));
        doc.set("pipeline", json::Value::str(
                                cache::normalizePipelineSpec(kPipeline)));
        doc.set("kernels",
                json::Value::number(
                    static_cast<uint64_t>(kernels.size())));
        doc.set("variants",
                json::Value::number(static_cast<uint64_t>(variants)));
        json::Value streams = json::Value::array();
        streams.push(streamJson("cold", cold));
        streams.push(streamJson("warm", warm));
        streams.push(streamJson("incremental", inc));
        doc.set("streams", std::move(streams));
        json::Value par = json::Value::object();
        par.set("threads", json::Value::number(threads));
        par.set("hardware_threads", json::Value::number(hw));
        par.set("serial_micros",
                json::Value::number(
                    static_cast<uint64_t>(serial_s * 1e6 + 0.5)));
        par.set("parallel_micros",
                json::Value::number(
                    static_cast<uint64_t>(parallel_s * 1e6 + 0.5)));
        par.set("speedup_x100",
                json::Value::number(static_cast<uint64_t>(
                    parallel_speedup * 100 + 0.5)));
        par.set("artifacts_identical",
                json::Value::boolean(parallel_identical));
        doc.set("parallel", std::move(par));

        if (check) {
            auto gate = [&ok](bool cond, const char *what) {
                if (!cond) {
                    std::fprintf(stderr, "bench_service: CHECK FAILED: %s\n",
                                 what);
                    ok = false;
                }
            };
            gate(cold.artifactsIdentical && warm.artifactsIdentical &&
                     inc.artifactsIdentical,
                 "cached artifacts byte-identical to cold compiles");
            gate(parallel_identical,
                 "parallel -p all byte-identical to serial");
            gate(warm.rps() >= cold.rps(),
                 "warm throughput >= cold throughput");
            gate(warm.rps() >= 5 * cold.rps(),
                 "warm throughput >= 5x cold throughput");
            gate(inc.componentsFromCache > 0,
                 "incremental stream reuses cached components");
            if (hw >= 2 && threads >= 2) {
                gate(parallel_speedup >= 1.5,
                     "parallel -p all >= 1.5x serial");
            } else {
                std::fprintf(stderr,
                             "bench_service: %u hardware thread(s); "
                             "skipping the parallel speedup gate\n",
                             hw);
            }
        }
    } catch (const Error &e) {
        std::fprintf(stderr, "bench_service: %s\n", e.what());
        return 1;
    }

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "bench_service: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    doc.write(out);
    out << "\n";
    std::fprintf(stderr, "bench_service: wrote %s\n", out_path.c_str());
    return ok ? 0 : 1;
}
