/**
 * @file
 * Figure 9b (paper §7.3): decrease in register count from the
 * register-sharing pass (live-range analysis, §5.2) for every
 * PolyBench kernel. The paper reports a 12% average reduction with
 * opportunities found in every benchmark.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "frontends/dahlia/parser.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

int
registersFor(const dahlia::Program &prog,
             const workloads::MemState &inputs, bool share)
{
    auto hw = workloads::runOnHardware(
        prog, share ? "all,-resource-sharing,-static" : "default", inputs);
    return hw.area.registers;
}

double
geomean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace

int
main()
{
    std::printf("=== Figure 9b: register decrease factor from register "
                "sharing ===\n\n");
    std::printf("%-12s %5s %10s %10s %10s\n", "kernel", "label",
                "baseline", "shared", "decrease");

    std::vector<double> factors;
    int with_opportunities = 0;
    for (const auto &k : workloads::kernels()) {
        dahlia::Program prog = dahlia::parse(k.source);
        workloads::MemState inputs =
            workloads::makeInputs(k.name, prog);
        int base = registersFor(prog, inputs, false);
        int shared = registersFor(prog, inputs, true);
        double factor =
            static_cast<double>(base) / static_cast<double>(shared);
        factors.push_back(factor);
        if (shared < base)
            ++with_opportunities;
        std::printf("%-12s %5s %10d %10d %9.3fx\n", k.name.c_str(),
                    k.label.c_str(), base, shared, factor);
    }
    std::printf("\nGeomean decrease: %.3fx [paper: ~1.14x, i.e. 12%% "
                "fewer]\n",
                geomean(factors));
    std::printf("Kernels with sharing opportunities: %d/19 [paper: every "
                "benchmark]\n",
                with_opportunities);
    return 0;
}
