/**
 * @file
 * Cross-engine simulator benchmark: times every registered simulation
 * engine (sim::engineInfos() — jacobi, levelized, compiled, and
 * whatever arrives next) on the fig7 (systolic matmul) and fig8
 * (PolyBench) workloads, verifies that all engines agree on cycle
 * counts and architectural state, and writes the measurements to
 * BENCH_sim.json.
 *
 * Methodology: one SimProgram per workload is shared by every engine
 * and every repetition, so the one-time costs each engine hides behind
 * it (the levelized schedule build, the compiled engine's codegen +
 * host-compiler invocation) are paid in an untimed warmup run and the
 * timed repetitions measure steady-state simulation throughput.
 * Memories are re-seeded before each repetition, outside the timed
 * region.
 *
 * Usage:
 *   bench_sim_engines [--small] [--check] [--reps N] [--out FILE]
 *     --small   CI smoke configuration (fewer/smaller workloads)
 *     --check   exit non-zero if compiled is slower than levelized on
 *               any workload (the tiny configurations legitimately let
 *               jacobi beat levelized, so that pair is not gated)
 *     --reps N  timing repetitions per engine (default 3)
 *     --out     output path (default BENCH_sim.json)
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "frontends/systolic/systolic.h"
#include "passes/pipeline.h"
#include "sim/compiled.h"
#include "sim/cycle_sim.h"
#include "support/error.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

/** Jacobi re-evaluates the whole netlist to a fixed point every cycle;
 * past this systolic dimension a single run takes minutes. */
constexpr int jacobiMaxDim = 8;

/** Single-repetition threshold: one timed run of a dim>=32 array is
 * seconds-to-minutes on the slower engines already. */
constexpr int singleRepDim = 32;

struct EngineRun
{
    bool ran = false;
    uint64_t cycles = 0;
    double seconds = 0; ///< Total across all repetitions.
    int reps = 0;
};

struct WorkloadResult
{
    std::string name;
    uint64_t cycles = 0;
    std::vector<EngineRun> runs; ///< Indexed like sim::engineInfos().

    double
    cps(size_t e) const
    {
        const EngineRun &r = runs[e];
        return r.ran && r.seconds > 0
                   ? static_cast<double>(r.cycles) * r.reps / r.seconds
                   : 0.0;
    }

    /** cps(num)/cps(den), or 0 when either engine did not run. */
    double
    speedup(size_t num, size_t den) const
    {
        double n = cps(num), d = cps(den);
        return n > 0 && d > 0 ? n / d : 0.0;
    }
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

size_t
engineIndex(sim::Engine e)
{
    const auto &infos = sim::engineInfos();
    for (size_t i = 0; i < infos.size(); ++i) {
        if (infos[i].engine == e)
            return i;
    }
    fatal("bench: engine not registered");
}

/**
 * Time every usable engine on one prepared SimProgram. `seed` re-pokes
 * input memories (untimed, once per repetition); `state` snapshots
 * whatever the workload compares for cross-engine equivalence.
 */
WorkloadResult
benchProgram(const std::string &name, sim::SimProgram &sp, int reps,
             const std::function<void()> &seed,
             const std::function<std::vector<std::vector<uint64_t>>()>
                 &state,
             const std::function<bool(sim::Engine)> &skip)
{
    WorkloadResult r;
    r.name = name;
    r.runs.assign(sim::engineInfos().size(), {});

    bool have_baseline = false;
    std::vector<std::vector<uint64_t>> baseline;
    for (size_t e = 0; e < sim::engineInfos().size(); ++e) {
        sim::Engine engine = sim::engineInfos()[e].engine;
        if (skip(engine))
            continue;
        EngineRun &run = r.runs[e];
        run.reps = reps;

        // Untimed warmup: absorbs the engine's one-time costs and
        // doubles as the cross-engine equivalence check.
        seed();
        sim::CycleSim warm(sp, engine);
        run.cycles = warm.run();
        if (r.cycles == 0)
            r.cycles = run.cycles;
        if (run.cycles != r.cycles) {
            fatal(name, ": engine cycle mismatch (",
                  sim::engineName(engine), "=", run.cycles, ", expected ",
                  r.cycles, ")");
        }
        std::vector<std::vector<uint64_t>> got = state();
        if (!have_baseline) {
            baseline = std::move(got);
            have_baseline = true;
        } else if (got != baseline) {
            fatal(name, ": architectural state mismatch on ",
                  sim::engineName(engine));
        }

        for (int i = 0; i < reps; ++i) {
            seed();
            sim::CycleSim cs(sp, engine);
            double start = now();
            cs.run();
            run.seconds += now() - start;
        }
        run.ran = true;
    }
    return r;
}

WorkloadResult
benchSystolic(int dim, int reps, const std::function<bool(sim::Engine)> &skip)
{
    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = dim;
    systolic::generate(ctx, cfg);
    passes::runPipeline(ctx, "all,-resource-sharing,-register-sharing");
    sim::SimProgram sp(ctx, "main");

    auto seed = [&sp, dim] {
        for (int i = 0; i < dim; ++i) {
            auto *l = sp.findModel(systolic::leftMemName(i))->memory();
            auto *t = sp.findModel(systolic::topMemName(i))->memory();
            for (int k = 0; k < dim; ++k) {
                (*l)[k] = i + k + 1;
                (*t)[k] = 2 * i + k + 1;
            }
        }
    };
    auto state = [&sp] { return sim::archState(sp); };
    auto skip_dim = [&](sim::Engine e) {
        return skip(e) ||
               (e == sim::Engine::Jacobi && dim > jacobiMaxDim);
    };
    std::string name =
        "systolic_" + std::to_string(dim) + "x" + std::to_string(dim);
    return benchProgram(name, sp, dim >= singleRepDim ? 1 : reps, seed,
                        state, skip_dim);
}

WorkloadResult
benchKernel(const std::string &name, int reps,
            const std::function<bool(sim::Engine)> &skip)
{
    const workloads::Kernel &k = workloads::kernel(name);
    dahlia::Program prog = dahlia::parse(k.source);
    workloads::MemState inputs = workloads::makeInputs(name, prog);

    Context ctx = dahlia::compileDahlia(prog);
    passes::runPipeline(ctx, passes::parsePipelineSpec("all"));
    sim::SimProgram sp(ctx, "main");

    auto seed = [&] { workloads::pokeInputs(sp, prog, inputs); };
    auto state = [&] {
        std::vector<std::vector<uint64_t>> flat;
        for (auto &[mem, data] : workloads::readMemories(sp, prog))
            flat.push_back(data);
        return flat;
    };
    return benchProgram(name, sp, reps, seed, state, skip);
}

void
writeJson(const std::string &path,
          const std::vector<WorkloadResult> &results,
          double geo_lev_jac, double geo_comp_lev)
{
    size_t jac = engineIndex(sim::Engine::Jacobi);
    size_t lev = engineIndex(sim::Engine::Levelized);
    size_t comp = engineIndex(sim::Engine::Compiled);

    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path);
    out << "{\n  \"workloads\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"cycles\": %llu,\n",
                      r.name.c_str(),
                      static_cast<unsigned long long>(r.cycles));
        out << buf;
        out << "     \"engines\": {";
        bool first = true;
        for (size_t e = 0; e < sim::engineInfos().size(); ++e) {
            if (!r.runs[e].ran)
                continue;
            std::snprintf(buf, sizeof buf,
                          "%s\"%s\": {\"reps\": %d, \"seconds\": %.6f, "
                          "\"cycles_per_sec\": %.0f}",
                          first ? "" : ", ", sim::engineInfos()[e].name,
                          r.runs[e].reps, r.runs[e].seconds, r.cps(e));
            out << buf;
            first = false;
        }
        out << "},\n";
        std::snprintf(buf, sizeof buf,
                      "     \"speedup_levelized_vs_jacobi\": %.2f, "
                      "\"speedup_compiled_vs_levelized\": %.2f}%s\n",
                      r.speedup(lev, jac), r.speedup(comp, lev),
                      i + 1 < results.size() ? "," : "");
        out << buf;
    }
    char tail[160];
    std::snprintf(tail, sizeof tail,
                  "  ],\n  \"geomean_levelized_vs_jacobi\": %.2f,\n"
                  "  \"geomean_compiled_vs_levelized\": %.2f\n}\n",
                  geo_lev_jac, geo_comp_lev);
    out << tail;
}

/** Geomean of per-workload speedups, over workloads where both ran. */
double
geomean(const std::vector<WorkloadResult> &results, size_t num, size_t den)
{
    double log_sum = 0;
    int n = 0;
    for (const WorkloadResult &r : results) {
        double s = r.speedup(num, den);
        if (s > 0) {
            log_sum += std::log(s);
            ++n;
        }
    }
    return n > 0 ? std::exp(log_sum / n) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool small = false, check = false;
    int reps = 3;
    std::string out_path = "BENCH_sim.json";

    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--small") {
            small = true;
        } else if (args[i] == "--check") {
            check = true;
        } else if (args[i] == "--reps" && i + 1 < args.size()) {
            reps = std::max(1, std::atoi(args[++i].c_str()));
        } else if (args[i] == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_sim_engines [--small] [--check] "
                         "[--reps N] [--out FILE]\n");
            return 2;
        }
    }

    // Engines come from the registry; nothing below hard-codes the set.
    const auto &engines = sim::engineInfos();
    std::string no_compiled = sim::compiledEngineUnavailableReason();
    auto skip = [&](sim::Engine e) {
        return e == sim::Engine::Compiled && !no_compiled.empty();
    };
    if (!no_compiled.empty())
        std::printf("note: skipping compiled engine: %s\n",
                    no_compiled.c_str());

    std::vector<int> dims = small ? std::vector<int>{2, 4}
                                  : std::vector<int>{2, 4, 6, 8, 32, 64};
    std::vector<std::string> kernels =
        small ? std::vector<std::string>{"gemm", "atax"}
              : std::vector<std::string>{"gemm", "atax", "mvt", "bicg"};

    std::printf("=== simulation engines:");
    for (const auto &info : engines)
        std::printf(" %s", info.name);
    std::printf(" ===\n");
    std::printf("%-14s %12s |", "workload", "cycles");
    for (const auto &info : engines)
        std::printf(" %13s", (std::string(info.name) + " c/s").c_str());
    std::printf("\n");

    std::vector<WorkloadResult> results;
    try {
        for (int dim : dims)
            results.push_back(benchSystolic(dim, reps, skip));
        for (const std::string &k : kernels)
            results.push_back(benchKernel(k, reps, skip));
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    size_t jac = engineIndex(sim::Engine::Jacobi);
    size_t lev = engineIndex(sim::Engine::Levelized);
    size_t comp = engineIndex(sim::Engine::Compiled);
    bool regression = false;
    for (const WorkloadResult &r : results) {
        std::printf("%-14s %12llu |", r.name.c_str(),
                    static_cast<unsigned long long>(r.cycles));
        for (size_t e = 0; e < engines.size(); ++e) {
            if (r.runs[e].ran)
                std::printf(" %13.0f", r.cps(e));
            else
                std::printf(" %13s", "-");
        }
        std::printf("\n");
        double cl = r.speedup(comp, lev);
        if (cl > 0 && cl < 1.0)
            regression = true;
    }
    double geo_lj = geomean(results, lev, jac);
    double geo_cl = geomean(results, comp, lev);
    std::printf("geomean speedup: levelized/jacobi %.2fx, "
                "compiled/levelized %.2fx\n",
                geo_lj, geo_cl);

    try {
        writeJson(out_path, results, geo_lj, geo_cl);
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());

    if (check && regression) {
        std::fprintf(stderr,
                     "FAIL: an engine is slower than its predecessor on "
                     "at least one workload\n");
        return 1;
    }
    return 0;
}
