/**
 * @file
 * Cross-engine simulator benchmark: times every registered simulation
 * engine (sim::engineInfos() — jacobi, levelized, compiled, and
 * whatever arrives next) on the fig7 (systolic matmul) and fig8
 * (PolyBench) workloads, verifies that all engines agree on cycle
 * counts and architectural state, and writes the measurements to
 * BENCH_sim.json.
 *
 * Methodology: one SimProgram per workload is shared by every engine
 * and every repetition, so the one-time costs each engine hides behind
 * it (the levelized schedule build, the compiled engine's codegen +
 * host-compiler invocation) are paid in an untimed warmup run and the
 * timed repetitions measure steady-state simulation throughput.
 * Memories are re-seeded before each repetition, outside the timed
 * region. Reported cycles_per_sec is best-of-reps (fastest single
 * repetition): scheduler noise on a shared host only ever adds time,
 * so the minimum is the estimate stable enough to gate on.
 *
 * Each workload also times a levelized run with a no-op SimObserver
 * attached (the "observed" row), so BENCH_sim.json records the cost of
 * leaving tracing on — and, by comparison with the plain levelized
 * row, that the tracing-off path carries no residual overhead.
 * Observed and plain repetitions interleave pairwise so the overhead
 * quotient compares runs taken under the same host conditions.
 *
 * Batched throughput (sim/batch.h) is measured per workload as
 * stimuli/sec at batch sizes 1/64/4096 for each engine and thread
 * count (see benchBatched), written as the per-workload "batched"
 * rows in BENCH_sim.json.
 *
 * Partitioned single-stimulus scaling (sim/partition.h,
 * SimState::setThreads) is measured on the systolic 4/16/32 dims at
 * threads 1/2/4 (benchPartitioned), written as the "partitioned" rows;
 * --check holds compiled 4-thread systolic_16x16 to >= 1.5x its
 * single-thread row on hosts with >= 4 cores (checkPartitioned).
 *
 * Usage:
 *   bench_sim_engines [--small] [--check] [--reps N] [--out FILE]
 *                     [--max-dim N] [--baseline FILE]
 *     --small     CI smoke configuration (fewer/smaller workloads)
 *     --check     exit non-zero if compiled is slower than levelized on
 *                 any workload (the tiny configurations legitimately
 *                 let jacobi beat levelized, so that pair is not
 *                 gated), if levelized throughput regressed > 5%
 *                 against the recorded baseline, or if a batched gate
 *                 fails (checkBatched: compiled batch-4096 >= 8x
 *                 batch-1 on gemm; levelized N-thread batch-64 >= 2x
 *                 single-thread on systolic_8x8 when the host has >= 2
 *                 cores)
 *     --reps N    timing repetitions per engine (default 3)
 *     --out       output path (default BENCH_sim.json)
 *     --max-dim N skip systolic configurations larger than NxN
 *     --baseline  baseline for --check
 *                 (default bench/baselines/sim_pr6.json)
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "frontends/systolic/systolic.h"
#include "obs/observer.h"
#include "passes/pipeline.h"
#include "sim/batch.h"
#include "sim/compiled.h"
#include "sim/cycle_sim.h"
#include "support/error.h"
#include "support/json.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

/** Jacobi re-evaluates the whole netlist to a fixed point every cycle;
 * past this systolic dimension a single run takes minutes. */
constexpr int jacobiMaxDim = 8;

/** Single-repetition threshold: one timed run of a dim>=32 array is
 * seconds-to-minutes on the slower engines already. */
constexpr int singleRepDim = 32;

struct EngineRun
{
    bool ran = false;
    uint64_t cycles = 0;
    double seconds = 0; ///< Total across all repetitions.
    double best = 0;    ///< Fastest single repetition.
    int reps = 0;

    /**
     * Throughput from the fastest repetition: scheduler jitter on a
     * shared host only ever adds time, so min-of-reps is the stable
     * estimate of what the engine can do (total/seconds swings >10%
     * run to run there, which no 5%-tolerance gate survives).
     */
    double
    cps() const
    {
        return ran && best > 0 ? static_cast<double>(cycles) / best
                               : 0.0;
    }
};

/** One partitioned single-stimulus measurement (sim/partition.h):
 * cycles/sec for one (engine, thread count) cell with the macro-task
 * plan active, best-of-reps like EngineRun. The threads-1 row runs the
 * classic scalar path and anchors the scaling comparison. */
struct PartRow
{
    std::string engine;
    unsigned threads = 1;
    int reps = 0;
    uint64_t cycles = 0;
    double best = 0; ///< Fastest single repetition, seconds.

    double
    cps() const
    {
        return best > 0 ? static_cast<double>(cycles) / best : 0.0;
    }
};

/** One batched-throughput measurement: stimuli/sec for one (engine,
 * batch size, thread count) cell, best-of-reps like EngineRun. */
struct BatchRow
{
    std::string engine;
    uint32_t batchSize = 0;
    unsigned threads = 1;
    uint32_t laneTile = 0;
    int reps = 0;
    double best = 0; ///< Fastest single repetition, seconds.

    double
    stimPerSec() const
    {
        return best > 0 ? static_cast<double>(batchSize) / best : 0.0;
    }
};

struct WorkloadResult
{
    std::string name;
    uint64_t cycles = 0;
    std::vector<EngineRun> runs; ///< Indexed like sim::engineInfos().
    EngineRun observed; ///< Levelized with a no-op observer attached.
    std::vector<BatchRow> batched; ///< sim/batch.h throughput rows.
    std::vector<PartRow> partitioned; ///< sim/partition.h scaling rows.

    /** cycles/sec of the partitioned (engine, threads) row, or 0. */
    double
    partCps(const std::string &engine, unsigned threads) const
    {
        for (const PartRow &row : partitioned) {
            if (row.engine == engine && row.threads == threads)
                return row.cps();
        }
        return 0.0;
    }

    /** stimuli/sec of the (engine, batch, threads) row, or 0. */
    double
    batchStimPerSec(const std::string &engine, uint32_t batch,
                    unsigned threads) const
    {
        for (const BatchRow &row : batched) {
            if (row.engine == engine && row.batchSize == batch &&
                row.threads == threads)
                return row.stimPerSec();
        }
        return 0.0;
    }

    double
    observedCps() const
    {
        return observed.cps();
    }

    double
    cps(size_t e) const
    {
        return runs[e].cps();
    }

    /** cps(num)/cps(den), or 0 when either engine did not run. */
    double
    speedup(size_t num, size_t den) const
    {
        double n = cps(num), d = cps(den);
        return n > 0 && d > 0 ? n / d : 0.0;
    }
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

size_t
engineIndex(sim::Engine e)
{
    const auto &infos = sim::engineInfos();
    for (size_t i = 0; i < infos.size(); ++i) {
        if (infos[i].engine == e)
            return i;
    }
    fatal("bench: engine not registered");
}

/**
 * Time every usable engine on one prepared SimProgram. `seed` re-pokes
 * input memories (untimed, once per repetition); `state` snapshots
 * whatever the workload compares for cross-engine equivalence.
 */
WorkloadResult
benchProgram(const std::string &name, sim::SimProgram &sp, int reps,
             const std::function<void()> &seed,
             const std::function<std::vector<std::vector<uint64_t>>()>
                 &state,
             const std::function<bool(sim::Engine)> &skip)
{
    WorkloadResult r;
    r.name = name;
    r.runs.assign(sim::engineInfos().size(), {});

    bool have_baseline = false;
    std::vector<std::vector<uint64_t>> baseline;
    for (size_t e = 0; e < sim::engineInfos().size(); ++e) {
        sim::Engine engine = sim::engineInfos()[e].engine;
        if (skip(engine))
            continue;
        EngineRun &run = r.runs[e];
        run.reps = reps;

        // Untimed warmup: absorbs the engine's one-time costs and
        // doubles as the cross-engine equivalence check.
        seed();
        sim::CycleSim warm(sp, engine);
        run.cycles = warm.run();
        if (r.cycles == 0)
            r.cycles = run.cycles;
        if (run.cycles != r.cycles) {
            fatal(name, ": engine cycle mismatch (",
                  sim::engineName(engine), "=", run.cycles, ", expected ",
                  r.cycles, ")");
        }
        std::vector<std::vector<uint64_t>> got = state();
        if (!have_baseline) {
            baseline = std::move(got);
            have_baseline = true;
        } else if (got != baseline) {
            fatal(name, ": architectural state mismatch on ",
                  sim::engineName(engine));
        }

        // The observability cost row rides along with the levelized
        // reps: the same run with a do-nothing observer attached, so
        // BENCH_sim.json records what leaving a probe on costs (and
        // that off costs nothing — the plain reps never touch the
        // notification path). Observed and plain repetitions
        // interleave within one loop: back-to-back pairs see the same
        // host conditions, so the overhead quotient of the two bests
        // compares like with like instead of folding in whatever the
        // machine did between two separate measurement loops (the
        // separated form charged one workload +67% "overhead" that
        // was nothing but scheduler drift).
        struct NoopObserver : obs::SimObserver
        {
            void
            cycleSettled(uint64_t, const uint64_t *) override
            {
            }
        } noop;
        bool observe = engine == sim::Engine::Levelized;
        if (observe) {
            r.observed.cycles = run.cycles;
            r.observed.reps = reps;
        }
        for (int i = 0; i < reps; ++i) {
            seed();
            sim::CycleSim cs(sp, engine);
            double start = now();
            cs.run();
            double dt = now() - start;
            run.seconds += dt;
            if (run.best == 0 || dt < run.best)
                run.best = dt;
            if (!observe)
                continue;
            seed();
            sim::CycleSim ocs(sp, engine);
            ocs.state().addObserver(&noop);
            start = now();
            ocs.run();
            dt = now() - start;
            r.observed.seconds += dt;
            if (r.observed.best == 0 || dt < r.observed.best)
                r.observed.best = dt;
        }
        run.ran = true;
        if (observe)
            r.observed.ran = true;
    }
    return r;
}

/**
 * Batched-throughput rows (sim/batch.h): stimuli/sec per engine, batch
 * size, and thread count, appended to `r.batched`. One resident
 * BatchRunner per (engine, threads) pays schedule/JIT setup once —
 * exactly the `futil --serve` usage the rows are meant to predict.
 * Batch sizes: 1/64/4096 on the compiled engine (the --check gate
 * holds 4096 to >= 8x the batch-1 rate on gemm, i.e. batching must
 * amortize the fixed lane width); the levelized interpreter stops at
 * 64 — its per-stimulus cost makes a 4096 batch minutes long without
 * saying anything new. Thread counts: 1, plus the host's hardware
 * concurrency when it is >= 2.
 */
void
benchBatched(WorkloadResult &r, sim::SimProgram &sp,
             const sim::Stimulus &stim, int reps,
             const std::function<bool(sim::Engine)> &skip)
{
    unsigned hw = std::thread::hardware_concurrency();
    std::vector<unsigned> threadCfgs{1};
    if (hw >= 2)
        threadCfgs.push_back(hw);
    struct Cfg
    {
        sim::Engine e;
        std::vector<uint32_t> batches;
    };
    const std::vector<Cfg> cfgs = {
        {sim::Engine::Compiled, {1, 64, 4096}},
        {sim::Engine::Levelized, {1, 64}},
    };
    for (const Cfg &cfg : cfgs) {
        if (skip(cfg.e))
            continue;
        for (unsigned th : threadCfgs) {
            sim::BatchOptions bo;
            bo.engine = cfg.e;
            bo.threads = th;
            sim::BatchRunner runner(sp, bo);
            {
                // Untimed warmup: JIT load, pool spin-up, allocator.
                std::vector<sim::Stimulus> warm(1, stim);
                runner.run(warm);
            }
            for (uint32_t b : cfg.batches) {
                std::vector<sim::Stimulus> batchVec(b, stim);
                BatchRow row;
                row.engine = sim::engineName(cfg.e);
                row.batchSize = b;
                row.threads = th;
                row.laneTile = runner.options().laneTile;
                row.reps = b >= 4096 ? std::min(reps, 2) : reps;
                for (int i = 0; i < row.reps; ++i) {
                    double start = now();
                    runner.run(batchVec);
                    double dt = now() - start;
                    if (row.best == 0 || dt < row.best)
                        row.best = dt;
                }
                r.batched.push_back(std::move(row));
            }
        }
    }
}

/**
 * Partitioned single-stimulus scaling rows (sim/partition.h): one run
 * per (engine, thread count) with SimState::setThreads() active, for
 * threads 1/2/4 capped at the host's concurrency. Cycle counts are held
 * to the workload's agreed count — the rows double as a bit-identity
 * smoke for the partitioned path. The --check gate over these rows is
 * checkPartitioned().
 */
void
benchPartitioned(WorkloadResult &r, sim::SimProgram &sp,
                 const std::function<void()> &seed, int reps,
                 const std::function<bool(sim::Engine)> &skip)
{
    unsigned hw = std::thread::hardware_concurrency();
    for (sim::Engine e : {sim::Engine::Levelized, sim::Engine::Compiled}) {
        if (skip(e))
            continue;
        for (unsigned th : {1u, 2u, 4u}) {
            if (th > 1 && th > hw)
                continue;
            PartRow row;
            row.engine = sim::engineName(e);
            row.threads = th;
            row.reps = reps;

            // Untimed warmup: partition plan build, (compiled) the
            // partitioned module's JIT, pool spin-up — plus the
            // identity check against the engines' agreed cycle count.
            seed();
            sim::CycleSim warm(sp, e);
            warm.state().setThreads(th);
            row.cycles = warm.run();
            if (r.cycles != 0 && row.cycles != r.cycles) {
                fatal(r.name, ": partitioned cycle mismatch (",
                      row.engine, " x", th, "=", row.cycles,
                      ", expected ", r.cycles, ")");
            }

            for (int i = 0; i < reps; ++i) {
                seed();
                sim::CycleSim cs(sp, e);
                cs.state().setThreads(th);
                double start = now();
                cs.run();
                double dt = now() - start;
                if (row.best == 0 || dt < row.best)
                    row.best = dt;
            }
            r.partitioned.push_back(std::move(row));
        }
    }
}

WorkloadResult
benchSystolic(int dim, int reps, const std::function<bool(sim::Engine)> &skip)
{
    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = dim;
    systolic::generate(ctx, cfg);
    passes::runPipeline(ctx, "all,-resource-sharing,-register-sharing");
    sim::SimProgram sp(ctx, "main");

    auto seed = [&sp, dim] {
        for (int i = 0; i < dim; ++i) {
            auto *l = sp.findModel(systolic::leftMemName(i))->memory();
            auto *t = sp.findModel(systolic::topMemName(i))->memory();
            for (int k = 0; k < dim; ++k) {
                (*l)[k] = i + k + 1;
                (*t)[k] = 2 * i + k + 1;
            }
        }
    };
    auto state = [&sp] { return sim::archState(sp); };
    auto skip_dim = [&](sim::Engine e) {
        return skip(e) ||
               (e == sim::Engine::Jacobi && dim > jacobiMaxDim);
    };
    std::string name =
        "systolic_" + std::to_string(dim) + "x" + std::to_string(dim);
    WorkloadResult r = benchProgram(
        name, sp, dim >= singleRepDim ? 1 : reps, seed, state, skip_dim);
    if (dim <= jacobiMaxDim) {
        // Batched rows for the tractable dims only (the gate workload
        // is systolic_8x8; a 64x64 batch of 64 is hours of levelized).
        sim::Stimulus stim;
        for (int i = 0; i < dim; ++i) {
            std::vector<uint64_t> l(dim), t(dim);
            for (int k = 0; k < dim; ++k) {
                l[k] = i + k + 1;
                t[k] = 2 * i + k + 1;
            }
            stim.mems.emplace_back(systolic::leftMemName(i),
                                   std::move(l));
            stim.mems.emplace_back(systolic::topMemName(i), std::move(t));
        }
        benchBatched(r, sp, stim, reps, skip_dim);
    }
    // Partitioned scaling rows on the gate dims (16/32) and on the
    // small-mode 4x4 so the CI smoke exercises the partitioned path.
    if (dim == 4 || dim == 16 || dim == 32) {
        benchPartitioned(r, sp, seed, dim >= singleRepDim ? 1 : reps,
                         skip_dim);
    }
    return r;
}

WorkloadResult
benchKernel(const std::string &name, int reps,
            const std::function<bool(sim::Engine)> &skip)
{
    const workloads::Kernel &k = workloads::kernel(name);
    dahlia::Program prog = dahlia::parse(k.source);
    workloads::MemState inputs = workloads::makeInputs(name, prog);

    Context ctx = dahlia::compileDahlia(prog);
    passes::runPipeline(ctx, passes::parsePipelineSpec("all"));
    sim::SimProgram sp(ctx, "main");

    auto seed = [&] { workloads::pokeInputs(sp, prog, inputs); };
    auto state = [&] {
        std::vector<std::vector<uint64_t>> flat;
        for (auto &[mem, data] : workloads::readMemories(sp, prog))
            flat.push_back(data);
        return flat;
    };
    WorkloadResult r = benchProgram(name, sp, reps, seed, state, skip);
    benchBatched(r, sp, workloads::makeStimulus(prog, inputs), reps,
                 skip);
    return r;
}

void
writeJson(const std::string &path,
          const std::vector<WorkloadResult> &results,
          double geo_lev_jac, double geo_comp_lev)
{
    size_t jac = engineIndex(sim::Engine::Jacobi);
    size_t lev = engineIndex(sim::Engine::Levelized);
    size_t comp = engineIndex(sim::Engine::Compiled);

    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path);
    out << "{\n  \"workloads\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"cycles\": %llu,\n",
                      r.name.c_str(),
                      static_cast<unsigned long long>(r.cycles));
        out << buf;
        out << "     \"engines\": {";
        bool first = true;
        for (size_t e = 0; e < sim::engineInfos().size(); ++e) {
            if (!r.runs[e].ran)
                continue;
            std::snprintf(buf, sizeof buf,
                          "%s\"%s\": {\"reps\": %d, \"seconds\": %.6f, "
                          "\"cycles_per_sec\": %.0f}",
                          first ? "" : ", ", sim::engineInfos()[e].name,
                          r.runs[e].reps, r.runs[e].seconds, r.cps(e));
            out << buf;
            first = false;
        }
        out << "},\n";
        if (r.observed.ran) {
            double plain = r.cps(lev), obs_cps = r.observedCps();
            double overhead =
                plain > 0 && obs_cps > 0 ? (plain / obs_cps - 1) * 100
                                         : 0.0;
            std::snprintf(buf, sizeof buf,
                          "     \"observed_levelized\": {\"reps\": %d, "
                          "\"seconds\": %.6f, \"cycles_per_sec\": %.0f, "
                          "\"overhead_pct\": %.1f},\n",
                          r.observed.reps, r.observed.seconds, obs_cps,
                          overhead);
            out << buf;
        }
        if (!r.batched.empty()) {
            out << "     \"batched\": [\n";
            for (size_t b = 0; b < r.batched.size(); ++b) {
                const BatchRow &row = r.batched[b];
                std::snprintf(
                    buf, sizeof buf,
                    "       {\"engine\": \"%s\", \"batch\": %u, "
                    "\"threads\": %u, \"lane_tile\": %u, \"reps\": %d, "
                    "\"best_seconds\": %.6f, "
                    "\"stimuli_per_sec\": %.1f}%s\n",
                    row.engine.c_str(), row.batchSize, row.threads,
                    row.laneTile, row.reps, row.best, row.stimPerSec(),
                    b + 1 < r.batched.size() ? "," : "");
                out << buf;
            }
            out << "     ],\n";
        }
        if (!r.partitioned.empty()) {
            out << "     \"partitioned\": [\n";
            for (size_t p = 0; p < r.partitioned.size(); ++p) {
                const PartRow &row = r.partitioned[p];
                std::snprintf(
                    buf, sizeof buf,
                    "       {\"engine\": \"%s\", \"threads\": %u, "
                    "\"reps\": %d, \"best_seconds\": %.6f, "
                    "\"cycles_per_sec\": %.0f}%s\n",
                    row.engine.c_str(), row.threads, row.reps, row.best,
                    row.cps(), p + 1 < r.partitioned.size() ? "," : "");
                out << buf;
            }
            out << "     ],\n";
        }
        std::snprintf(buf, sizeof buf,
                      "     \"speedup_levelized_vs_jacobi\": %.2f, "
                      "\"speedup_compiled_vs_levelized\": %.2f}%s\n",
                      r.speedup(lev, jac), r.speedup(comp, lev),
                      i + 1 < results.size() ? "," : "");
        out << buf;
    }
    char tail[160];
    std::snprintf(tail, sizeof tail,
                  "  ],\n  \"geomean_levelized_vs_jacobi\": %.2f,\n"
                  "  \"geomean_compiled_vs_levelized\": %.2f\n}\n",
                  geo_lev_jac, geo_comp_lev);
    out << tail;
}

/**
 * --check against the recorded baseline: current levelized throughput
 * may not drop more than 5% below the baseline's on any workload the
 * baseline timed long enough to trust (>= 100 ms total; shorter
 * measurements jitter past the tolerance on a loaded host). Returns
 * the number of regressions; a missing baseline file is a note, not a
 * failure (fresh clones have no recorded numbers to hold them to).
 */
int
checkBaseline(const std::string &path,
              const std::vector<WorkloadResult> &results, size_t lev)
{
    std::ifstream in(path);
    if (!in) {
        std::printf("note: no baseline at %s; skipping throughput "
                    "check\n",
                    path.c_str());
        return 0;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    json::Value doc = json::parse(ss.str());

    int regressions = 0;
    for (const auto &w : doc.at("workloads").items()) {
        const json::Value *base_lev = w.at("engines").find("levelized");
        if (!base_lev || base_lev->at("seconds").asReal() < 0.1)
            continue;
        double base_cps = base_lev->at("cycles_per_sec").asReal();
        for (const WorkloadResult &r : results) {
            if (r.name != w.at("name").asStr() || !r.runs[lev].ran)
                continue;
            double cps = r.cps(lev);
            if (cps < 0.95 * base_cps) {
                std::fprintf(stderr,
                             "FAIL %s: levelized %.0f c/s is more than "
                             "5%% below baseline %.0f c/s\n",
                             r.name.c_str(), cps, base_cps);
                ++regressions;
            }
        }
    }
    return regressions;
}

/**
 * --check gates on the batched rows. Two assertions:
 *
 *  1. Batching amortizes: on gemm, the compiled engine's batch-4096
 *     stimuli/sec must be >= 8x its batch-1 rate (single thread).
 *     Batch-1 pays a full fixed-width tile pass per stimulus
 *     (BatchOptions::laneTile), so this holds the lane machinery to
 *     actually filling its width.
 *  2. Threads scale: on systolic_8x8, levelized batch-64 with all
 *     hardware threads must be >= 2x the single-thread rate. Skipped
 *     (with a note) on single-core hosts, where no multi-thread rows
 *     exist to compare.
 *
 * Returns the number of failed gates.
 */
int
checkBatched(const std::vector<WorkloadResult> &results)
{
    int failures = 0;
    unsigned hw = std::thread::hardware_concurrency();
    for (const WorkloadResult &r : results) {
        if (r.name == "gemm") {
            double b1 = r.batchStimPerSec("compiled", 1, 1);
            double b4096 = r.batchStimPerSec("compiled", 4096, 1);
            if (b1 > 0 && b4096 > 0 && b4096 < 8.0 * b1) {
                std::fprintf(stderr,
                             "FAIL gemm: compiled batch-4096 %.1f "
                             "stimuli/s is under 8x batch-1 %.1f\n",
                             b4096, b1);
                ++failures;
            }
        }
        if (r.name == "systolic_8x8" && hw >= 2) {
            double t1 = r.batchStimPerSec("levelized", 64, 1);
            double tn = r.batchStimPerSec("levelized", 64, hw);
            if (t1 > 0 && tn > 0 && tn < 2.0 * t1) {
                std::fprintf(stderr,
                             "FAIL systolic_8x8: levelized batch-64 "
                             "with %u threads %.1f stimuli/s is under "
                             "2x single-thread %.1f\n",
                             hw, tn, t1);
                ++failures;
            }
        }
    }
    if (hw < 2)
        std::printf("note: single-core host; thread-scaling gate "
                    "skipped\n");
    return failures;
}

/**
 * --check gate on the partitioned single-stimulus rows: on
 * systolic_16x16 the compiled engine at 4 threads must deliver >= 1.5x
 * the cycles/sec of its single-thread row. Auto-skipped (with a note)
 * on hosts with fewer than 4 cores, where the 4-thread row either does
 * not exist or times oversubscribed spinning rather than scaling; also
 * vacuous when the workload or the compiled engine did not run (--small
 * stops at 4x4, toolchain-free hosts skip compiled).
 */
int
checkPartitioned(const std::vector<WorkloadResult> &results)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw < 4) {
        std::printf("note: host has %u core(s); partitioned-scaling "
                    "gate needs 4, skipped\n",
                    hw);
        return 0;
    }
    int failures = 0;
    for (const WorkloadResult &r : results) {
        if (r.name != "systolic_16x16")
            continue;
        double t1 = r.partCps("compiled", 1);
        double t4 = r.partCps("compiled", 4);
        if (t1 > 0 && t4 > 0 && t4 < 1.5 * t1) {
            std::fprintf(stderr,
                         "FAIL systolic_16x16: compiled partitioned "
                         "4-thread %.0f c/s is under 1.5x single-thread "
                         "%.0f c/s\n",
                         t4, t1);
            ++failures;
        }
    }
    return failures;
}

/** Geomean of per-workload speedups, over workloads where both ran. */
double
geomean(const std::vector<WorkloadResult> &results, size_t num, size_t den)
{
    double log_sum = 0;
    int n = 0;
    for (const WorkloadResult &r : results) {
        double s = r.speedup(num, den);
        if (s > 0) {
            log_sum += std::log(s);
            ++n;
        }
    }
    return n > 0 ? std::exp(log_sum / n) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool small = false, check = false;
    int reps = 3;
    int max_dim = 0;
    std::string out_path = "BENCH_sim.json";
    std::string baseline_path = "bench/baselines/sim_pr6.json";

    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--small") {
            small = true;
        } else if (args[i] == "--check") {
            check = true;
        } else if (args[i] == "--reps" && i + 1 < args.size()) {
            reps = std::max(1, std::atoi(args[++i].c_str()));
        } else if (args[i] == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else if (args[i] == "--max-dim" && i + 1 < args.size()) {
            max_dim = std::atoi(args[++i].c_str());
        } else if (args[i] == "--baseline" && i + 1 < args.size()) {
            baseline_path = args[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_sim_engines [--small] [--check] "
                         "[--reps N] [--out FILE] [--max-dim N] "
                         "[--baseline FILE]\n");
            return 2;
        }
    }

    // Engines come from the registry; nothing below hard-codes the set.
    const auto &engines = sim::engineInfos();
    std::string no_compiled = sim::compiledEngineUnavailableReason();
    auto skip = [&](sim::Engine e) {
        return e == sim::Engine::Compiled && !no_compiled.empty();
    };
    if (!no_compiled.empty())
        std::printf("note: skipping compiled engine: %s\n",
                    no_compiled.c_str());

    std::vector<int> dims = small
                                ? std::vector<int>{2, 4}
                                : std::vector<int>{2, 4, 6, 8, 16, 32, 64};
    if (max_dim > 0)
        std::erase_if(dims, [max_dim](int d) { return d > max_dim; });
    std::vector<std::string> kernels =
        small ? std::vector<std::string>{"gemm", "atax"}
              : std::vector<std::string>{"gemm", "atax", "mvt", "bicg"};

    std::printf("=== simulation engines:");
    for (const auto &info : engines)
        std::printf(" %s", info.name);
    std::printf(" ===\n");
    std::printf("%-14s %12s |", "workload", "cycles");
    for (const auto &info : engines)
        std::printf(" %13s", (std::string(info.name) + " c/s").c_str());
    std::printf("\n");

    std::vector<WorkloadResult> results;
    try {
        for (int dim : dims)
            results.push_back(benchSystolic(dim, reps, skip));
        for (const std::string &k : kernels)
            results.push_back(benchKernel(k, reps, skip));
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    size_t jac = engineIndex(sim::Engine::Jacobi);
    size_t lev = engineIndex(sim::Engine::Levelized);
    size_t comp = engineIndex(sim::Engine::Compiled);
    bool regression = false;
    for (const WorkloadResult &r : results) {
        std::printf("%-14s %12llu |", r.name.c_str(),
                    static_cast<unsigned long long>(r.cycles));
        for (size_t e = 0; e < engines.size(); ++e) {
            if (r.runs[e].ran)
                std::printf(" %13.0f", r.cps(e));
            else
                std::printf(" %13s", "-");
        }
        std::printf("\n");
        for (const auto &row : r.batched) {
            std::printf("  batched %-9s batch %4u x%u thread%s "
                        "(tile %2u): %10.1f stimuli/s\n",
                        row.engine.c_str(), row.batchSize, row.threads,
                        row.threads == 1 ? " " : "s", row.laneTile,
                        row.stimPerSec());
        }
        for (const auto &row : r.partitioned) {
            std::printf("  partitioned %-9s x%u thread%s: "
                        "%12.0f cycles/s\n",
                        row.engine.c_str(), row.threads,
                        row.threads == 1 ? " " : "s", row.cps());
        }
        double cl = r.speedup(comp, lev);
        if (cl > 0 && cl < 1.0)
            regression = true;
    }
    double geo_lj = geomean(results, lev, jac);
    double geo_cl = geomean(results, comp, lev);
    std::printf("geomean speedup: levelized/jacobi %.2fx, "
                "compiled/levelized %.2fx\n",
                geo_lj, geo_cl);

    double overhead_sum = 0;
    int overhead_n = 0;
    for (const WorkloadResult &r : results) {
        double plain = r.cps(lev), obs_cps = r.observedCps();
        if (plain > 0 && obs_cps > 0) {
            overhead_sum += (plain / obs_cps - 1) * 100;
            ++overhead_n;
        }
    }
    if (overhead_n > 0)
        std::printf("no-op observer overhead (levelized): %.1f%% mean "
                    "over %d workloads\n",
                    overhead_sum / overhead_n, overhead_n);

    try {
        writeJson(out_path, results, geo_lj, geo_cl);
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());

    int failures = 0;
    if (check && regression) {
        std::fprintf(stderr,
                     "FAIL: an engine is slower than its predecessor on "
                     "at least one workload\n");
        ++failures;
    }
    if (check) {
        try {
            failures += checkBaseline(baseline_path, results, lev);
        } catch (const Error &e) {
            std::fprintf(stderr, "error: bad baseline %s: %s\n",
                         baseline_path.c_str(), e.what());
            ++failures;
        }
        failures += checkBatched(results);
        failures += checkPartitioned(results);
    }
    return failures > 0 ? 1 : 0;
}
