/**
 * @file
 * Cross-engine simulator benchmark: times every registered simulation
 * engine (sim::engineInfos() — jacobi, levelized, compiled, and
 * whatever arrives next) on the fig7 (systolic matmul) and fig8
 * (PolyBench) workloads, verifies that all engines agree on cycle
 * counts and architectural state, and writes the measurements to
 * BENCH_sim.json.
 *
 * Methodology: one SimProgram per workload is shared by every engine
 * and every repetition, so the one-time costs each engine hides behind
 * it (the levelized schedule build, the compiled engine's codegen +
 * host-compiler invocation) are paid in an untimed warmup run and the
 * timed repetitions measure steady-state simulation throughput.
 * Memories are re-seeded before each repetition, outside the timed
 * region. Reported cycles_per_sec is best-of-reps (fastest single
 * repetition): scheduler noise on a shared host only ever adds time,
 * so the minimum is the estimate stable enough to gate on.
 *
 * Each workload also times a levelized run with a no-op SimObserver
 * attached (the "observed" row), so BENCH_sim.json records the cost of
 * leaving tracing on — and, by comparison with the plain levelized
 * row, that the tracing-off path carries no residual overhead.
 *
 * Usage:
 *   bench_sim_engines [--small] [--check] [--reps N] [--out FILE]
 *                     [--max-dim N] [--baseline FILE]
 *     --small     CI smoke configuration (fewer/smaller workloads)
 *     --check     exit non-zero if compiled is slower than levelized on
 *                 any workload (the tiny configurations legitimately
 *                 let jacobi beat levelized, so that pair is not
 *                 gated), or if levelized throughput regressed > 5%
 *                 against the recorded baseline
 *     --reps N    timing repetitions per engine (default 3)
 *     --out       output path (default BENCH_sim.json)
 *     --max-dim N skip systolic configurations larger than NxN
 *     --baseline  baseline for --check
 *                 (default bench/baselines/sim_pr6.json)
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "frontends/systolic/systolic.h"
#include "obs/observer.h"
#include "passes/pipeline.h"
#include "sim/compiled.h"
#include "sim/cycle_sim.h"
#include "support/error.h"
#include "support/json.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

/** Jacobi re-evaluates the whole netlist to a fixed point every cycle;
 * past this systolic dimension a single run takes minutes. */
constexpr int jacobiMaxDim = 8;

/** Single-repetition threshold: one timed run of a dim>=32 array is
 * seconds-to-minutes on the slower engines already. */
constexpr int singleRepDim = 32;

struct EngineRun
{
    bool ran = false;
    uint64_t cycles = 0;
    double seconds = 0; ///< Total across all repetitions.
    double best = 0;    ///< Fastest single repetition.
    int reps = 0;

    /**
     * Throughput from the fastest repetition: scheduler jitter on a
     * shared host only ever adds time, so min-of-reps is the stable
     * estimate of what the engine can do (total/seconds swings >10%
     * run to run there, which no 5%-tolerance gate survives).
     */
    double
    cps() const
    {
        return ran && best > 0 ? static_cast<double>(cycles) / best
                               : 0.0;
    }
};

struct WorkloadResult
{
    std::string name;
    uint64_t cycles = 0;
    std::vector<EngineRun> runs; ///< Indexed like sim::engineInfos().
    EngineRun observed; ///< Levelized with a no-op observer attached.

    double
    observedCps() const
    {
        return observed.cps();
    }

    double
    cps(size_t e) const
    {
        return runs[e].cps();
    }

    /** cps(num)/cps(den), or 0 when either engine did not run. */
    double
    speedup(size_t num, size_t den) const
    {
        double n = cps(num), d = cps(den);
        return n > 0 && d > 0 ? n / d : 0.0;
    }
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

size_t
engineIndex(sim::Engine e)
{
    const auto &infos = sim::engineInfos();
    for (size_t i = 0; i < infos.size(); ++i) {
        if (infos[i].engine == e)
            return i;
    }
    fatal("bench: engine not registered");
}

/**
 * Time every usable engine on one prepared SimProgram. `seed` re-pokes
 * input memories (untimed, once per repetition); `state` snapshots
 * whatever the workload compares for cross-engine equivalence.
 */
WorkloadResult
benchProgram(const std::string &name, sim::SimProgram &sp, int reps,
             const std::function<void()> &seed,
             const std::function<std::vector<std::vector<uint64_t>>()>
                 &state,
             const std::function<bool(sim::Engine)> &skip)
{
    WorkloadResult r;
    r.name = name;
    r.runs.assign(sim::engineInfos().size(), {});

    bool have_baseline = false;
    std::vector<std::vector<uint64_t>> baseline;
    for (size_t e = 0; e < sim::engineInfos().size(); ++e) {
        sim::Engine engine = sim::engineInfos()[e].engine;
        if (skip(engine))
            continue;
        EngineRun &run = r.runs[e];
        run.reps = reps;

        // Untimed warmup: absorbs the engine's one-time costs and
        // doubles as the cross-engine equivalence check.
        seed();
        sim::CycleSim warm(sp, engine);
        run.cycles = warm.run();
        if (r.cycles == 0)
            r.cycles = run.cycles;
        if (run.cycles != r.cycles) {
            fatal(name, ": engine cycle mismatch (",
                  sim::engineName(engine), "=", run.cycles, ", expected ",
                  r.cycles, ")");
        }
        std::vector<std::vector<uint64_t>> got = state();
        if (!have_baseline) {
            baseline = std::move(got);
            have_baseline = true;
        } else if (got != baseline) {
            fatal(name, ": architectural state mismatch on ",
                  sim::engineName(engine));
        }

        for (int i = 0; i < reps; ++i) {
            seed();
            sim::CycleSim cs(sp, engine);
            double start = now();
            cs.run();
            double dt = now() - start;
            run.seconds += dt;
            if (run.best == 0 || dt < run.best)
                run.best = dt;
        }
        run.ran = true;

        // The observability cost row: the same levelized run with a
        // do-nothing observer attached, so BENCH_sim.json records what
        // leaving a probe on costs (and that off costs nothing — the
        // plain row above never touches the notification path).
        if (engine == sim::Engine::Levelized) {
            struct NoopObserver : obs::SimObserver
            {
                void
                cycleSettled(uint64_t, const uint64_t *) override
                {
                }
            } noop;
            r.observed.cycles = run.cycles;
            r.observed.reps = reps;
            for (int i = 0; i < reps; ++i) {
                seed();
                sim::CycleSim cs(sp, engine);
                cs.state().addObserver(&noop);
                double start = now();
                cs.run();
                double dt = now() - start;
                r.observed.seconds += dt;
                if (r.observed.best == 0 || dt < r.observed.best)
                    r.observed.best = dt;
            }
            r.observed.ran = true;
        }
    }
    return r;
}

WorkloadResult
benchSystolic(int dim, int reps, const std::function<bool(sim::Engine)> &skip)
{
    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = dim;
    systolic::generate(ctx, cfg);
    passes::runPipeline(ctx, "all,-resource-sharing,-register-sharing");
    sim::SimProgram sp(ctx, "main");

    auto seed = [&sp, dim] {
        for (int i = 0; i < dim; ++i) {
            auto *l = sp.findModel(systolic::leftMemName(i))->memory();
            auto *t = sp.findModel(systolic::topMemName(i))->memory();
            for (int k = 0; k < dim; ++k) {
                (*l)[k] = i + k + 1;
                (*t)[k] = 2 * i + k + 1;
            }
        }
    };
    auto state = [&sp] { return sim::archState(sp); };
    auto skip_dim = [&](sim::Engine e) {
        return skip(e) ||
               (e == sim::Engine::Jacobi && dim > jacobiMaxDim);
    };
    std::string name =
        "systolic_" + std::to_string(dim) + "x" + std::to_string(dim);
    return benchProgram(name, sp, dim >= singleRepDim ? 1 : reps, seed,
                        state, skip_dim);
}

WorkloadResult
benchKernel(const std::string &name, int reps,
            const std::function<bool(sim::Engine)> &skip)
{
    const workloads::Kernel &k = workloads::kernel(name);
    dahlia::Program prog = dahlia::parse(k.source);
    workloads::MemState inputs = workloads::makeInputs(name, prog);

    Context ctx = dahlia::compileDahlia(prog);
    passes::runPipeline(ctx, passes::parsePipelineSpec("all"));
    sim::SimProgram sp(ctx, "main");

    auto seed = [&] { workloads::pokeInputs(sp, prog, inputs); };
    auto state = [&] {
        std::vector<std::vector<uint64_t>> flat;
        for (auto &[mem, data] : workloads::readMemories(sp, prog))
            flat.push_back(data);
        return flat;
    };
    return benchProgram(name, sp, reps, seed, state, skip);
}

void
writeJson(const std::string &path,
          const std::vector<WorkloadResult> &results,
          double geo_lev_jac, double geo_comp_lev)
{
    size_t jac = engineIndex(sim::Engine::Jacobi);
    size_t lev = engineIndex(sim::Engine::Levelized);
    size_t comp = engineIndex(sim::Engine::Compiled);

    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path);
    out << "{\n  \"workloads\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"cycles\": %llu,\n",
                      r.name.c_str(),
                      static_cast<unsigned long long>(r.cycles));
        out << buf;
        out << "     \"engines\": {";
        bool first = true;
        for (size_t e = 0; e < sim::engineInfos().size(); ++e) {
            if (!r.runs[e].ran)
                continue;
            std::snprintf(buf, sizeof buf,
                          "%s\"%s\": {\"reps\": %d, \"seconds\": %.6f, "
                          "\"cycles_per_sec\": %.0f}",
                          first ? "" : ", ", sim::engineInfos()[e].name,
                          r.runs[e].reps, r.runs[e].seconds, r.cps(e));
            out << buf;
            first = false;
        }
        out << "},\n";
        if (r.observed.ran) {
            double plain = r.cps(lev), obs_cps = r.observedCps();
            double overhead =
                plain > 0 && obs_cps > 0 ? (plain / obs_cps - 1) * 100
                                         : 0.0;
            std::snprintf(buf, sizeof buf,
                          "     \"observed_levelized\": {\"reps\": %d, "
                          "\"seconds\": %.6f, \"cycles_per_sec\": %.0f, "
                          "\"overhead_pct\": %.1f},\n",
                          r.observed.reps, r.observed.seconds, obs_cps,
                          overhead);
            out << buf;
        }
        std::snprintf(buf, sizeof buf,
                      "     \"speedup_levelized_vs_jacobi\": %.2f, "
                      "\"speedup_compiled_vs_levelized\": %.2f}%s\n",
                      r.speedup(lev, jac), r.speedup(comp, lev),
                      i + 1 < results.size() ? "," : "");
        out << buf;
    }
    char tail[160];
    std::snprintf(tail, sizeof tail,
                  "  ],\n  \"geomean_levelized_vs_jacobi\": %.2f,\n"
                  "  \"geomean_compiled_vs_levelized\": %.2f\n}\n",
                  geo_lev_jac, geo_comp_lev);
    out << tail;
}

/**
 * --check against the recorded baseline: current levelized throughput
 * may not drop more than 5% below the baseline's on any workload the
 * baseline timed long enough to trust (>= 100 ms total; shorter
 * measurements jitter past the tolerance on a loaded host). Returns
 * the number of regressions; a missing baseline file is a note, not a
 * failure (fresh clones have no recorded numbers to hold them to).
 */
int
checkBaseline(const std::string &path,
              const std::vector<WorkloadResult> &results, size_t lev)
{
    std::ifstream in(path);
    if (!in) {
        std::printf("note: no baseline at %s; skipping throughput "
                    "check\n",
                    path.c_str());
        return 0;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    json::Value doc = json::parse(ss.str());

    int regressions = 0;
    for (const auto &w : doc.at("workloads").items()) {
        const json::Value *base_lev = w.at("engines").find("levelized");
        if (!base_lev || base_lev->at("seconds").asReal() < 0.1)
            continue;
        double base_cps = base_lev->at("cycles_per_sec").asReal();
        for (const WorkloadResult &r : results) {
            if (r.name != w.at("name").asStr() || !r.runs[lev].ran)
                continue;
            double cps = r.cps(lev);
            if (cps < 0.95 * base_cps) {
                std::fprintf(stderr,
                             "FAIL %s: levelized %.0f c/s is more than "
                             "5%% below baseline %.0f c/s\n",
                             r.name.c_str(), cps, base_cps);
                ++regressions;
            }
        }
    }
    return regressions;
}

/** Geomean of per-workload speedups, over workloads where both ran. */
double
geomean(const std::vector<WorkloadResult> &results, size_t num, size_t den)
{
    double log_sum = 0;
    int n = 0;
    for (const WorkloadResult &r : results) {
        double s = r.speedup(num, den);
        if (s > 0) {
            log_sum += std::log(s);
            ++n;
        }
    }
    return n > 0 ? std::exp(log_sum / n) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool small = false, check = false;
    int reps = 3;
    int max_dim = 0;
    std::string out_path = "BENCH_sim.json";
    std::string baseline_path = "bench/baselines/sim_pr6.json";

    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--small") {
            small = true;
        } else if (args[i] == "--check") {
            check = true;
        } else if (args[i] == "--reps" && i + 1 < args.size()) {
            reps = std::max(1, std::atoi(args[++i].c_str()));
        } else if (args[i] == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else if (args[i] == "--max-dim" && i + 1 < args.size()) {
            max_dim = std::atoi(args[++i].c_str());
        } else if (args[i] == "--baseline" && i + 1 < args.size()) {
            baseline_path = args[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_sim_engines [--small] [--check] "
                         "[--reps N] [--out FILE] [--max-dim N] "
                         "[--baseline FILE]\n");
            return 2;
        }
    }

    // Engines come from the registry; nothing below hard-codes the set.
    const auto &engines = sim::engineInfos();
    std::string no_compiled = sim::compiledEngineUnavailableReason();
    auto skip = [&](sim::Engine e) {
        return e == sim::Engine::Compiled && !no_compiled.empty();
    };
    if (!no_compiled.empty())
        std::printf("note: skipping compiled engine: %s\n",
                    no_compiled.c_str());

    std::vector<int> dims = small ? std::vector<int>{2, 4}
                                  : std::vector<int>{2, 4, 6, 8, 32, 64};
    if (max_dim > 0)
        std::erase_if(dims, [max_dim](int d) { return d > max_dim; });
    std::vector<std::string> kernels =
        small ? std::vector<std::string>{"gemm", "atax"}
              : std::vector<std::string>{"gemm", "atax", "mvt", "bicg"};

    std::printf("=== simulation engines:");
    for (const auto &info : engines)
        std::printf(" %s", info.name);
    std::printf(" ===\n");
    std::printf("%-14s %12s |", "workload", "cycles");
    for (const auto &info : engines)
        std::printf(" %13s", (std::string(info.name) + " c/s").c_str());
    std::printf("\n");

    std::vector<WorkloadResult> results;
    try {
        for (int dim : dims)
            results.push_back(benchSystolic(dim, reps, skip));
        for (const std::string &k : kernels)
            results.push_back(benchKernel(k, reps, skip));
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    size_t jac = engineIndex(sim::Engine::Jacobi);
    size_t lev = engineIndex(sim::Engine::Levelized);
    size_t comp = engineIndex(sim::Engine::Compiled);
    bool regression = false;
    for (const WorkloadResult &r : results) {
        std::printf("%-14s %12llu |", r.name.c_str(),
                    static_cast<unsigned long long>(r.cycles));
        for (size_t e = 0; e < engines.size(); ++e) {
            if (r.runs[e].ran)
                std::printf(" %13.0f", r.cps(e));
            else
                std::printf(" %13s", "-");
        }
        std::printf("\n");
        double cl = r.speedup(comp, lev);
        if (cl > 0 && cl < 1.0)
            regression = true;
    }
    double geo_lj = geomean(results, lev, jac);
    double geo_cl = geomean(results, comp, lev);
    std::printf("geomean speedup: levelized/jacobi %.2fx, "
                "compiled/levelized %.2fx\n",
                geo_lj, geo_cl);

    double overhead_sum = 0;
    int overhead_n = 0;
    for (const WorkloadResult &r : results) {
        double plain = r.cps(lev), obs_cps = r.observedCps();
        if (plain > 0 && obs_cps > 0) {
            overhead_sum += (plain / obs_cps - 1) * 100;
            ++overhead_n;
        }
    }
    if (overhead_n > 0)
        std::printf("no-op observer overhead (levelized): %.1f%% mean "
                    "over %d workloads\n",
                    overhead_sum / overhead_n, overhead_n);

    try {
        writeJson(out_path, results, geo_lj, geo_cl);
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());

    int failures = 0;
    if (check && regression) {
        std::fprintf(stderr,
                     "FAIL: an engine is slower than its predecessor on "
                     "at least one workload\n");
        ++failures;
    }
    if (check) {
        try {
            failures += checkBaseline(baseline_path, results, lev);
        } catch (const Error &e) {
            std::fprintf(stderr, "error: bad baseline %s: %s\n",
                         baseline_path.c_str(), e.what());
            ++failures;
        }
    }
    return failures > 0 ? 1 : 0;
}
