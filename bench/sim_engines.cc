/**
 * @file
 * Cross-engine simulator benchmark (ISSUE 3): times the Jacobi
 * fixed-point oracle against the levelized event-driven engine on the
 * fig7 (systolic matmul) and fig8 (PolyBench) workloads, verifies that
 * both engines agree on cycle counts and architectural state, and
 * writes the measurements to BENCH_sim.json.
 *
 * Usage:
 *   bench_sim_engines [--small] [--check] [--reps N] [--out FILE]
 *     --small   CI smoke configuration (fewer/smaller workloads)
 *     --check   exit non-zero if the levelized engine is slower than
 *               Jacobi on any workload
 *     --reps N  timing repetitions per engine (default 3)
 *     --out     output path (default BENCH_sim.json)
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "frontends/dahlia/parser.h"
#include "frontends/systolic/systolic.h"
#include "passes/pipeline.h"
#include "sim/cycle_sim.h"
#include "support/error.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

struct EngineRun
{
    uint64_t cycles = 0;
    double seconds = 0; ///< Total across all repetitions.
};

struct WorkloadResult
{
    std::string name;
    int reps = 0;
    EngineRun jacobi, levelized;

    double
    speedup() const
    {
        return levelized.seconds > 0 ? jacobi.seconds / levelized.seconds
                                     : 0.0;
    }
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One timed systolic run; returns cycles and appends wall time. */
uint64_t
runSystolicOnce(const Context &ctx, int dim, sim::Engine engine,
                double *seconds, std::vector<std::vector<uint64_t>> *state)
{
    sim::SimProgram sp(ctx, "main");
    for (int i = 0; i < dim; ++i) {
        auto *l = sp.findModel(systolic::leftMemName(i))->memory();
        auto *t = sp.findModel(systolic::topMemName(i))->memory();
        for (int k = 0; k < dim; ++k) {
            (*l)[k] = i + k + 1;
            (*t)[k] = 2 * i + k + 1;
        }
    }
    // Note: the lazy schedule build lands inside the timed region, the
    // same rule the kernel workloads measure under.
    sim::CycleSim cs(sp, engine);
    double start = now();
    uint64_t cycles = cs.run();
    *seconds += now() - start;
    if (state)
        *state = sim::archState(sp);
    return cycles;
}

WorkloadResult
benchSystolic(int dim, int reps)
{
    WorkloadResult r;
    r.name = "systolic_" + std::to_string(dim) + "x" + std::to_string(dim);
    r.reps = reps;

    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = dim;
    systolic::generate(ctx, cfg);
    passes::runPipeline(ctx, "all,-resource-sharing,-register-sharing");

    std::vector<std::vector<uint64_t>> jacobiState, levelState;
    for (int i = 0; i < reps; ++i) {
        r.jacobi.cycles = runSystolicOnce(ctx, dim, sim::Engine::Jacobi,
                                          &r.jacobi.seconds,
                                          i == 0 ? &jacobiState : nullptr);
        r.levelized.cycles = runSystolicOnce(
            ctx, dim, sim::Engine::Levelized, &r.levelized.seconds,
            i == 0 ? &levelState : nullptr);
    }
    if (r.jacobi.cycles != r.levelized.cycles) {
        fatal(r.name, ": engine cycle mismatch (jacobi=", r.jacobi.cycles,
              ", levelized=", r.levelized.cycles, ")");
    }
    if (jacobiState != levelState)
        fatal(r.name, ": engine architectural state mismatch");
    return r;
}

WorkloadResult
benchKernel(const std::string &name, int reps)
{
    WorkloadResult r;
    r.name = name;
    r.reps = reps;

    const workloads::Kernel &k = workloads::kernel(name);
    dahlia::Program prog = dahlia::parse(k.source);
    workloads::MemState inputs = workloads::makeInputs(name, prog);
    passes::PipelineSpec spec = passes::parsePipelineSpec("all");

    workloads::MemState jacobiMems, levelMems;
    for (int i = 0; i < reps; ++i) {
        auto hj = workloads::runOnHardware(prog, spec, inputs, &jacobiMems,
                                           {}, sim::Engine::Jacobi);
        auto hl = workloads::runOnHardware(prog, spec, inputs, &levelMems,
                                           {}, sim::Engine::Levelized);
        r.jacobi.cycles = hj.cycles;
        r.jacobi.seconds += hj.simSeconds;
        r.levelized.cycles = hl.cycles;
        r.levelized.seconds += hl.simSeconds;
    }
    if (r.jacobi.cycles != r.levelized.cycles) {
        fatal(r.name, ": engine cycle mismatch (jacobi=", r.jacobi.cycles,
              ", levelized=", r.levelized.cycles, ")");
    }
    if (jacobiMems != levelMems)
        fatal(r.name, ": engine final memory state mismatch");
    return r;
}

double
cps(const WorkloadResult &r, const EngineRun &e)
{
    return e.seconds > 0
               ? static_cast<double>(e.cycles) * r.reps / e.seconds
               : 0.0;
}

void
writeJson(const std::string &path,
          const std::vector<WorkloadResult> &results, double geomean)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path);
    out << "{\n  \"workloads\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "    {\"name\": \"%s\", \"cycles\": %llu, \"reps\": %d,\n"
            "     \"jacobi\": {\"seconds\": %.6f, \"cycles_per_sec\": "
            "%.0f},\n"
            "     \"levelized\": {\"seconds\": %.6f, \"cycles_per_sec\": "
            "%.0f},\n"
            "     \"speedup\": %.2f}%s\n",
            r.name.c_str(),
            static_cast<unsigned long long>(r.levelized.cycles), r.reps,
            r.jacobi.seconds, cps(r, r.jacobi), r.levelized.seconds,
            cps(r, r.levelized), r.speedup(),
            i + 1 < results.size() ? "," : "");
        out << buf;
    }
    char tail[96];
    std::snprintf(tail, sizeof tail,
                  "  ],\n  \"geomean_speedup\": %.2f\n}\n", geomean);
    out << tail;
}

} // namespace

int
main(int argc, char **argv)
{
    bool small = false, check = false;
    int reps = 3;
    std::string out_path = "BENCH_sim.json";

    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--small") {
            small = true;
        } else if (args[i] == "--check") {
            check = true;
        } else if (args[i] == "--reps" && i + 1 < args.size()) {
            reps = std::max(1, std::atoi(args[++i].c_str()));
        } else if (args[i] == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_sim_engines [--small] [--check] "
                         "[--reps N] [--out FILE]\n");
            return 2;
        }
    }

    std::vector<int> dims = small ? std::vector<int>{2, 4}
                                  : std::vector<int>{2, 4, 6, 8};
    std::vector<std::string> kernels =
        small ? std::vector<std::string>{"gemm", "atax"}
              : std::vector<std::string>{"gemm", "atax", "mvt", "bicg"};

    std::printf("=== simulation engines: jacobi vs levelized ===\n");
    std::printf("%-14s %12s | %14s %14s | %8s\n", "workload", "cycles",
                "jacobi c/s", "levelized c/s", "speedup");

    std::vector<WorkloadResult> results;
    try {
        for (int dim : dims)
            results.push_back(benchSystolic(dim, reps));
        for (const std::string &k : kernels)
            results.push_back(benchKernel(k, reps));
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    double log_sum = 0;
    bool regression = false;
    for (const WorkloadResult &r : results) {
        std::printf("%-14s %12llu | %14.0f %14.0f | %7.2fx\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.levelized.cycles),
                    cps(r, r.jacobi), cps(r, r.levelized), r.speedup());
        log_sum += std::log(r.speedup());
        if (r.speedup() < 1.0)
            regression = true;
    }
    double geomean =
        results.empty()
            ? 0.0
            : std::exp(log_sum / static_cast<double>(results.size()));
    std::printf("geomean speedup: %.2fx\n", geomean);

    try {
        writeJson(out_path, results, geomean);
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());

    if (check && regression) {
        std::fprintf(stderr,
                     "FAIL: levelized engine slower than jacobi on at "
                     "least one workload\n");
        return 1;
    }
    return 0;
}
