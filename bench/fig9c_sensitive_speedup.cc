/**
 * @file
 * Figure 9c (paper §7.3 / §4.4): simulated cycle speedup from enabling
 * the latency-sensitive compilation pass (Sensitive) on every PolyBench
 * kernel. The paper reports a 1.43x average speedup with no significant
 * resource change.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "frontends/dahlia/parser.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

double
geomean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace

int
main()
{
    std::printf("=== Figure 9c: speedup from latency-sensitive "
                "compilation ===\n\n");
    std::printf("%-12s %5s %14s %14s %10s %12s\n", "kernel", "label",
                "insensitive", "sensitive", "speedup", "lut-ratio");

    std::vector<double> speedups, lut_ratios;
    for (const auto &k : workloads::kernels()) {
        dahlia::Program prog = dahlia::parse(k.source);
        workloads::MemState inputs =
            workloads::makeInputs(k.name, prog);

        auto base = workloads::runOnHardware(prog, "default", inputs);
        auto fast = workloads::runOnHardware(
            prog, "all,-resource-sharing,-register-sharing", inputs);

        double speedup = static_cast<double>(base.cycles) /
                         static_cast<double>(fast.cycles);
        double lut_ratio = fast.area.luts / base.area.luts;
        speedups.push_back(speedup);
        lut_ratios.push_back(lut_ratio);
        std::printf("%-12s %5s %14llu %14llu %9.2fx %11.3fx\n",
                    k.name.c_str(), k.label.c_str(),
                    static_cast<unsigned long long>(base.cycles),
                    static_cast<unsigned long long>(fast.cycles), speedup,
                    lut_ratio);
    }
    std::printf("\nGeomean speedup: %.2fx [paper: 1.43x]\n",
                geomean(speedups));
    std::printf("Geomean LUT ratio: %.3fx [paper: no significant "
                "change]\n",
                geomean(lut_ratios));
    return 0;
}
