/**
 * @file
 * Compile-time benchmark (ISSUE 4): times the full `-p all` pipeline on
 * scaled designs — 8x8 up to 32x32 systolic arrays plus the PolyBench
 * suite — and writes per-pass and end-to-end wall time to
 * BENCH_compile.json. With --baseline FILE, per-workload "before"
 * timings from a previous run (e.g. the string-keyed seed, committed at
 * bench/baselines/compile_seed.json) are merged in so the JSON records
 * before/after side by side.
 *
 * Each workload also records its FSM lowering statistics (ISSUE 5):
 * machine/state/counter-state counts, FSM and seed-equivalent register
 * counts, and control-lowering wall time, under the "fsm" key.
 *
 * Usage:
 *   bench_compile_time [--small] [--check] [--reps N] [--out FILE]
 *                      [--baseline FILE]
 *     --small     CI smoke configuration (8x8/16x16 systolic, two
 *                 PolyBench kernels, a 6-loop control-heavy design)
 *     --check     exit non-zero unless every timing is nonzero, the
 *                 systolic timings grow monotonically with array size,
 *                 and the flat control lowering mints no more control
 *                 registers than the seed's per-node expansion
 *     --reps N    timing repetitions per workload (default 3)
 *     --out       output path (default BENCH_compile.json)
 *     --baseline  JSON from a previous run to embed as "before"
 *
 * All times are stored as integer microseconds (the JSON layer is
 * integer-only); generation/parsing happens outside the timed region,
 * the pipeline run (including IR traversals and pass bookkeeping) is
 * inside it.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "frontends/dahlia/checker.h"
#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "frontends/systolic/systolic.h"
#include "ir/builder.h"
#include "ir/fsm.h"
#include "passes/pipeline_spec.h"
#include "support/error.h"
#include "support/json.h"
#include "support/time.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

constexpr const char *kPipeline = "all";

uint64_t
toMicros(double seconds)
{
    double us = seconds * 1e6;
    return us <= 0 ? 0 : static_cast<uint64_t>(us + 0.5);
}

struct WorkloadResult
{
    std::string name;
    std::string kind; ///< "systolic" or "polybench"
    uint64_t size = 0; ///< systolic dimension; 0 for polybench
    int reps = 0;
    double endToEndSeconds = 0; ///< Sum across reps.
    /** Per-pass wall time summed across reps, in pipeline order. */
    std::vector<std::pair<std::string, double>> perPass;
    /** FSM lowering statistics of the last compiled context (state,
     * register, and seed-register counts are deterministic across
     * reps; the lowering time is that compile's wall time). */
    FsmStats fsm;

    void
    accumulate(const std::vector<passes::PassRunInfo> &infos)
    {
        if (perPass.empty()) {
            for (const auto &info : infos)
                perPass.emplace_back(info.pass, 0.0);
        }
        for (size_t i = 0; i < infos.size() && i < perPass.size(); ++i)
            perPass[i].second += infos[i].seconds;
    }
};

/** Time `reps` fresh compiles; `make` rebuilds the Context each time. */
template <typename MakeContext>
WorkloadResult
benchWorkload(const std::string &name, const std::string &kind,
              uint64_t size, int reps, const MakeContext &make)
{
    WorkloadResult r;
    r.name = name;
    r.kind = kind;
    r.size = size;
    r.reps = reps;
    for (int i = 0; i < reps; ++i) {
        Context ctx = make();
        double start = nowSeconds();
        auto infos = passes::runPipeline(ctx, kPipeline);
        r.endToEndSeconds += nowSeconds() - start;
        r.accumulate(infos);
        if (i == reps - 1) {
            r.fsm = FsmStats{};
            for (const auto &comp : ctx.components()) {
                FsmStats s = fsmStats(*comp);
                r.fsm.machines += s.machines;
                r.fsm.states += s.states;
                r.fsm.codes += s.codes;
                r.fsm.transitions += s.transitions;
                r.fsm.counterStates += s.counterStates;
                r.fsm.registers += s.registers;
                r.fsm.helperRegisters += s.helperRegisters;
                r.fsm.controlRegisters += s.controlRegisters;
                r.fsm.seedRegisters += s.seedRegisters;
                r.fsm.loweringSeconds += s.loweringSeconds;
            }
        }
    }
    return r;
}

/**
 * Control-heavy design (ISSUE 5): deeply nested seq / while / if / par
 * over simple register writes — the shape the flat FSM lowering exists
 * for. Deterministic, so the --check assertions (flat lowering uses no
 * more control registers than the seed's per-node expansion) are
 * stable in CI.
 */
WorkloadResult
benchControlHeavy(int loops, int reps)
{
    std::string name = "control_heavy_" + std::to_string(loops);
    return benchWorkload(name, "control", static_cast<uint64_t>(loops),
                         reps, [loops]() {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("x", 16);
        b.reg("y", 16);
        b.add("ax", 16);
        int groups = 0;
        auto writeGroup = [&](const std::string &dst) {
            std::string g = "w" + std::to_string(groups++);
            b.regWriteGroup(g, dst, constant(groups % 100, 16));
            return g;
        };
        std::vector<ControlPtr> top;
        for (int l = 0; l < loops; ++l) {
            std::string id = std::to_string(l);
            b.reg("i" + id, 8);
            b.add("ia" + id, 8);
            b.cell("lt" + id, "std_lt", {8});
            b.regWriteGroup("init" + id, "i" + id, constant(0, 8));
            Group &cond = b.group("cond" + id);
            cond.add(cellPort("lt" + id, "left"),
                     cellPort("i" + id, "out"));
            cond.add(cellPort("lt" + id, "right"), constant(3, 8));
            cond.add(cond.doneHole(), constant(1, 1));
            Group &bump = b.group("bump" + id);
            bump.add(cellPort("ia" + id, "left"),
                     cellPort("i" + id, "out"));
            bump.add(cellPort("ia" + id, "right"), constant(1, 8));
            bump.add(cellPort("i" + id, "in"),
                     cellPort("ia" + id, "out"));
            bump.add(cellPort("i" + id, "write_en"), constant(1, 1));
            bump.add(bump.doneHole(), cellPort("i" + id, "done"));

            // Body: 3-level nested seq + if + par under the loop.
            std::vector<ControlPtr> inner2;
            inner2.push_back(ComponentBuilder::enable(writeGroup("x")));
            inner2.push_back(ComponentBuilder::enable(writeGroup("x")));
            std::vector<ControlPtr> inner1;
            inner1.push_back(ComponentBuilder::enable(writeGroup("x")));
            inner1.push_back(ComponentBuilder::seq(std::move(inner2)));
            std::vector<ControlPtr> arms;
            arms.push_back(ComponentBuilder::enable(writeGroup("x")));
            arms.push_back(ComponentBuilder::enable(writeGroup("y")));
            std::vector<ControlPtr> body;
            body.push_back(ComponentBuilder::seq(std::move(inner1)));
            body.push_back(ComponentBuilder::ifStmt(
                cellPort("lt" + id, "out"), "cond" + id,
                ComponentBuilder::enable(writeGroup("x")),
                ComponentBuilder::enable(writeGroup("y"))));
            body.push_back(ComponentBuilder::par(std::move(arms)));
            body.push_back(ComponentBuilder::enable("bump" + id));
            top.push_back(ComponentBuilder::enable("init" + id));
            top.push_back(ComponentBuilder::whileStmt(
                cellPort("lt" + id, "out"), "cond" + id,
                ComponentBuilder::seq(std::move(body))));
        }
        b.component().setControl(ComponentBuilder::seq(std::move(top)));
        return ctx;
    });
}

WorkloadResult
benchSystolic(int dim, int reps)
{
    std::string name =
        "systolic_" + std::to_string(dim) + "x" + std::to_string(dim);
    return benchWorkload(name, "systolic", static_cast<uint64_t>(dim), reps,
                         [dim]() {
                             Context ctx;
                             systolic::Config cfg;
                             cfg.rows = cfg.cols = cfg.inner = dim;
                             systolic::generate(ctx, cfg);
                             return ctx;
                         });
}

WorkloadResult
benchPolybench(const workloads::Kernel &k, int reps)
{
    dahlia::Program program = dahlia::parse(k.source);
    dahlia::check(program);
    return benchWorkload("polybench_" + k.name, "polybench", 0, reps,
                         [&program]() {
                             return dahlia::compileDahlia(program);
                         });
}

json::Value
toJson(const WorkloadResult &r, const json::Value *baseline)
{
    json::Value w = json::Value::object();
    w.set("name", json::Value::str(r.name));
    w.set("kind", json::Value::str(r.kind));
    if (r.size)
        w.set("size", json::Value::number(r.size));
    w.set("reps", json::Value::number(static_cast<uint64_t>(r.reps)));
    // All times are per-compile means, so runs with different rep
    // counts (e.g. the slow string-keyed baseline at --reps 1) compare
    // directly.
    w.set("end_to_end_us",
          json::Value::number(toMicros(r.endToEndSeconds / r.reps)));
    json::Value per_pass = json::Value::object();
    for (const auto &[pass, seconds] : r.perPass)
        per_pass.set(pass, json::Value::number(toMicros(seconds / r.reps)));
    w.set("per_pass_us", std::move(per_pass));

    // FSM lowering record (ISSUE 5): schedule size, register footprint
    // vs the seed's per-node expansion, and control-lowering wall time.
    json::Value fsm = json::Value::object();
    fsm.set("machines",
            json::Value::number(static_cast<uint64_t>(r.fsm.machines)));
    fsm.set("states",
            json::Value::number(static_cast<uint64_t>(r.fsm.states)));
    fsm.set("counter_states", json::Value::number(static_cast<uint64_t>(
                                  r.fsm.counterStates)));
    fsm.set("registers",
            json::Value::number(static_cast<uint64_t>(r.fsm.registers)));
    fsm.set("control_registers", json::Value::number(static_cast<uint64_t>(
                                     r.fsm.controlRegisters)));
    fsm.set("seed_registers", json::Value::number(static_cast<uint64_t>(
                                  r.fsm.seedRegisters)));
    fsm.set("control_lowering_us",
            json::Value::number(toMicros(r.fsm.loweringSeconds)));
    w.set("fsm", std::move(fsm));

    if (baseline) {
        // Baselines come from this same writer, so end_to_end_us is
        // already a per-compile mean regardless of the rep count.
        uint64_t before = baseline->at("end_to_end_us").asNum();
        w.set("baseline_end_to_end_us", json::Value::number(before));
        uint64_t after = toMicros(r.endToEndSeconds / r.reps);
        if (after > 0) {
            // Integer-only JSON: speedup in percent (150 = 1.5x).
            w.set("speedup_vs_baseline_pct",
                  json::Value::number(before * 100 / after));
        }
        if (const json::Value *bp = baseline->find("per_pass_us"))
            w.set("baseline_per_pass_us", *bp);
    }
    return w;
}

/** Workload entry with the given name in a bench JSON, or nullptr. */
const json::Value *
findWorkload(const json::Value &doc, const std::string &name)
{
    const json::Value *list = doc.find("workloads");
    if (!list || list->kind() != json::Value::Kind::Arr)
        return nullptr;
    for (const auto &w : list->items()) {
        if (const json::Value *n = w.find("name")) {
            if (n->kind() == json::Value::Kind::Str && n->asStr() == name)
                return &w;
        }
    }
    return nullptr;
}

int
check(const std::vector<WorkloadResult> &results)
{
    int failures = 0;
    uint64_t prevSystolic = 0;
    for (const auto &r : results) {
        uint64_t us = toMicros(r.endToEndSeconds / r.reps);
        if (us == 0) {
            std::fprintf(stderr, "bench_compile: %s reported zero time\n",
                         r.name.c_str());
            ++failures;
        }
        if (r.kind == "systolic") {
            // Larger arrays must not compile faster: timings are summed
            // over reps, so noise would have to exceed the size scaling
            // to break this.
            if (us < prevSystolic) {
                std::fprintf(stderr,
                             "bench_compile: %s (%llu us) faster than "
                             "smaller systolic design (%llu us)\n",
                             r.name.c_str(),
                             static_cast<unsigned long long>(us),
                             static_cast<unsigned long long>(prevSystolic));
                ++failures;
            }
            prevSystolic = us;
        }
        // The flat lowering must never mint more control-state
        // registers than the seed's per-node expansion would have.
        if (r.fsm.machines > 0 &&
            r.fsm.controlRegisters > r.fsm.seedRegisters) {
            std::fprintf(stderr,
                         "bench_compile: %s: flat lowering minted %d "
                         "control registers, seed lowering only %d\n",
                         r.name.c_str(), r.fsm.controlRegisters,
                         r.fsm.seedRegisters);
            ++failures;
        }
        if (r.kind == "control" && r.fsm.machines == 0) {
            std::fprintf(stderr,
                         "bench_compile: %s: control-heavy design "
                         "produced no FSM machines\n",
                         r.name.c_str());
            ++failures;
        }
    }
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    bool small = false, doCheck = false;
    int reps = 3;
    std::string out = "BENCH_compile.json";
    std::string baselinePath;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--small") {
            small = true;
        } else if (arg == "--check") {
            doCheck = true;
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;

    json::Value baseline;
    if (!baselinePath.empty()) {
        std::ifstream in(baselinePath);
        if (!in) {
            std::fprintf(stderr, "bench_compile: cannot read baseline %s\n",
                         baselinePath.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        baseline = json::parse(ss.str());
    }

    std::vector<WorkloadResult> results;
    try {
        std::vector<int> dims = small ? std::vector<int>{8, 16}
                                      : std::vector<int>{8, 16, 32};
        for (int dim : dims) {
            results.push_back(benchSystolic(dim, reps));
            std::fprintf(stderr, "bench_compile: %s %.3fs\n",
                         results.back().name.c_str(),
                         results.back().endToEndSeconds);
        }
        for (const auto &k : workloads::kernels()) {
            if (small && k.name != "gemm" && k.name != "atax")
                continue;
            results.push_back(benchPolybench(k, reps));
            std::fprintf(stderr, "bench_compile: %s %.3fs\n",
                         results.back().name.c_str(),
                         results.back().endToEndSeconds);
        }
        // Control-heavy design: exercises the FSM lowering itself.
        results.push_back(benchControlHeavy(small ? 6 : 24, reps));
        std::fprintf(stderr, "bench_compile: %s %.3fs\n",
                     results.back().name.c_str(),
                     results.back().endToEndSeconds);
    } catch (const Error &e) {
        std::fprintf(stderr, "bench_compile: %s\n", e.what());
        return 1;
    }

    json::Value doc = json::Value::object();
    doc.set("schema", json::Value::str("calyx-compile-bench-v1"));
    doc.set("pipeline", json::Value::str(kPipeline));
    doc.set("reps", json::Value::number(static_cast<uint64_t>(reps)));
    doc.set("unit", json::Value::str("microseconds"));
    json::Value list = json::Value::array();
    for (const auto &r : results) {
        const json::Value *base = baselinePath.empty()
                                      ? nullptr
                                      : findWorkload(baseline, r.name);
        list.push(toJson(r, base));
    }
    doc.set("workloads", std::move(list));

    std::ofstream os(out);
    doc.write(os);
    os << "\n";
    if (!os) {
        std::fprintf(stderr, "bench_compile: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::fprintf(stderr, "bench_compile: wrote %s\n", out.c_str());

    return doCheck ? (check(results) ? 1 : 0) : 0;
}
