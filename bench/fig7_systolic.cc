/**
 * @file
 * Figure 7 (paper §7.1): cycle counts (7a) and LUT usage (7b) of
 * matrix-multiply systolic arrays from 2x2 to 8x8, comparing
 * latency-sensitive Calyx, latency-insensitive Calyx, and the HLS
 * baseline (a straightforward matmul kernel through the Vivado HLS
 * stand-in model; its memory-port-bound "unrolled" design degenerates
 * to sequential throughput, which the sequential schedule captures).
 *
 * Also reports §7.1's headline ratios: systolic-vs-HLS speedup/area and
 * the Sensitive pass's speedup, with latencies fully inferred (§5.3).
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "estimate/area.h"
#include "frontends/dahlia/parser.h"
#include "frontends/systolic/systolic.h"
#include "hls/scheduler.h"
#include "passes/pipeline.h"
#include "sim/cycle_sim.h"

using namespace calyx;

namespace {

struct Row
{
    int dim;
    uint64_t sensitive, insensitive, hls;
    double lutSensitive, lutInsensitive, lutHls;
};

/// Simulator wall-clock accumulated across every runSystolic() call,
/// for the cycles/sec summary (ISSUE 3: measure, don't assert).
uint64_t totalSimCycles = 0;
double totalSimSeconds = 0;
constexpr sim::Engine simEngine = sim::Engine::Levelized;

uint64_t
runSystolic(int dim, bool sensitive, double *luts)
{
    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = dim;
    systolic::generate(ctx, cfg);
    passes::runPipeline(ctx, sensitive
                                 ? "all,-resource-sharing,-register-sharing"
                                 : "default");

    estimate::AreaEstimator est(ctx);
    *luts = est.estimateProgram().luts;

    sim::SimProgram sp(ctx, "main");
    for (int i = 0; i < dim; ++i) {
        auto *l = sp.findModel(systolic::leftMemName(i))->memory();
        auto *t = sp.findModel(systolic::topMemName(i))->memory();
        for (int k = 0; k < dim; ++k) {
            (*l)[k] = i + k + 1;
            (*t)[k] = 2 * i + k + 1;
        }
    }
    sim::CycleSim cs(sp, simEngine);
    auto start = std::chrono::steady_clock::now();
    uint64_t cycles = cs.run();
    totalSimSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    totalSimCycles += cycles;
    return cycles;
}

/**
 * HLS matmul baseline for one dimension. The paper's baseline fully
 * unrolls the two outer loops: the resulting design instantiates one
 * MAC per output but is memory-port bound, so its *throughput* matches
 * the sequential schedule while its *resources* match the unrolled
 * binding. We therefore take cycles from the plain loop nest and area
 * from the outer-unrolled variant (DESIGN.md §1).
 */
hls::HlsReport
runHls(int dim)
{
    std::string n = std::to_string(dim);
    auto source = [&n](const std::string &unroll) {
        return "decl A: ubit<32>[" + n + "][" + n + "];\n" +
               "decl B: ubit<32>[" + n + "][" + n + "];\n" +
               "decl C: ubit<32>[" + n + "][" + n + "];\n" +
               "for (let i: ubit<6> = 0.." + n + ")" + unroll + " {\n" +
               "  for (let j: ubit<6> = 0.." + n + ")" + unroll +
               " {\n" +
               "    let acc: ubit<32> = 0;\n" +
               "    ---\n" +
               "    for (let k: ubit<6> = 0.." + n + ") {\n" +
               "      acc := acc + A[i][k] * B[k][j];\n" +
               "    }\n" +
               "    ---\n" +
               "    C[i][j] := acc;\n" +
               "  }\n" +
               "}\n";
    };
    dahlia::Program sequential = dahlia::parse(source(""));
    dahlia::Program unrolled =
        dahlia::parse(source(" unroll " + n));
    hls::HlsReport report = hls::scheduleProgram(sequential);
    hls::HlsReport bound = hls::scheduleProgram(unrolled);
    report.luts = bound.luts;
    report.ffs = bound.ffs;
    report.dsps = bound.dsps;
    return report;
}

double
geomean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace

int
main()
{
    std::printf("=== Figure 7: systolic arrays vs HLS (matmul) ===\n\n");
    std::printf("Figure 7a: absolute cycle counts\n");
    std::printf("%-8s %18s %20s %8s\n", "size", "calyx-sensitive",
                "calyx-insensitive", "hls");

    std::vector<Row> rows;
    for (int dim : {2, 4, 6, 8}) {
        Row r;
        r.dim = dim;
        r.sensitive = runSystolic(dim, true, &r.lutSensitive);
        r.insensitive = runSystolic(dim, false, &r.lutInsensitive);
        hls::HlsReport h = runHls(dim);
        r.hls = h.cycles;
        r.lutHls = h.luts;
        rows.push_back(r);
        std::printf("%dx%d %20llu %20llu %8llu\n", dim, dim,
                    static_cast<unsigned long long>(r.sensitive),
                    static_cast<unsigned long long>(r.insensitive),
                    static_cast<unsigned long long>(r.hls));
    }

    std::printf("\nFigure 7b: absolute LUT usage (estimated)\n");
    std::printf("%-8s %18s %20s %8s\n", "size", "calyx-sensitive",
                "calyx-insensitive", "hls");
    for (const auto &r : rows) {
        std::printf("%dx%d %20.0f %20.0f %8.0f\n", r.dim, r.dim,
                    r.lutSensitive, r.lutInsensitive, r.lutHls);
    }

    std::vector<double> speedups, lut_factors, static_speedups,
        static_shrink;
    for (const auto &r : rows) {
        speedups.push_back(static_cast<double>(r.hls) /
                           static_cast<double>(r.sensitive));
        lut_factors.push_back(r.lutSensitive / r.lutHls);
        static_speedups.push_back(static_cast<double>(r.insensitive) /
                                  static_cast<double>(r.sensitive));
        static_shrink.push_back(r.lutInsensitive / r.lutSensitive);
    }
    const Row &last = rows.back();
    std::printf("\n§7.1 summary (paper-reported values in brackets)\n");
    std::printf("  systolic speedup over HLS, geomean: %.2fx [4.6x]\n",
                geomean(speedups));
    std::printf("  systolic LUT factor vs HLS, geomean: %.2fx [1.11x]\n",
                geomean(lut_factors));
    std::printf("  largest size: %.2fx faster [10.78x], %.2fx LUTs "
                "[1.3x]\n",
                static_cast<double>(last.hls) /
                    static_cast<double>(last.sensitive),
                last.lutSensitive / last.lutHls);
    std::printf("  Sensitive speedup (inferred latencies), geomean: "
                "%.2fx [1.9x]\n",
                geomean(static_speedups));
    std::printf("  Sensitive area ratio (insens/sens), geomean: %.2fx "
                "[1.1x]\n",
                geomean(static_shrink));
    std::printf("\nsimulator throughput (%s engine): %llu cycles in "
                "%.3fs = %.0f cycles/sec\n",
                sim::engineName(simEngine),
                static_cast<unsigned long long>(totalSimCycles),
                totalSimSeconds,
                totalSimSeconds > 0
                    ? static_cast<double>(totalSimCycles) / totalSimSeconds
                    : 0.0);
    return 0;
}
