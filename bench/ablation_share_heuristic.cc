/**
 * @file
 * Ablation for the §9 future-work item implemented in this repository:
 * a cost-model threshold for resource sharing. The paper observes
 * (Figure 9a) that sharing *increases* LUTs because of the added
 * multiplexers and proposes heuristics as future work. This bench
 * sweeps the profitability threshold over the PolyBench suite and
 * shows the heuristic recovering the loss while still sharing wide
 * units.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "frontends/dahlia/parser.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

double
geomean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace

int
main()
{
    std::printf("=== Ablation: resource-sharing cost threshold (§9) "
                "===\n\n");
    std::printf("LUT factor vs no sharing (geomean over all 19 "
                "kernels):\n");
    std::printf("%-22s %12s\n", "threshold (bits)", "lut-factor");

    for (Width threshold : {0u, 8u, 16u, 33u}) {
        std::vector<double> factors;
        for (const auto &k : workloads::kernels()) {
            dahlia::Program prog = dahlia::parse(k.source);
            workloads::MemState inputs =
                workloads::makeInputs(k.name, prog);
            double base =
                workloads::runOnHardware(prog, "default", inputs)
                    .area.luts;
            passes::PipelineSpec spec = passes::parsePipelineSpec(
                "all,-register-sharing,-static");
            passes::applyPassOptions(
                spec, "resource-sharing[min-width=" +
                          std::to_string(threshold) + "]");
            double shared =
                workloads::runOnHardware(prog, spec, inputs).area.luts;
            factors.push_back(shared / base);
        }
        if (threshold == 0) {
            std::printf("%-22s %11.3fx   (the paper's configuration)\n",
                        "0 (share everything)", geomean(factors));
        } else if (threshold == 33) {
            std::printf("%-22s %11.3fx   (sharing disabled: datapath "
                        "is 32-bit)\n",
                        "33 (share nothing)", geomean(factors));
        } else {
            std::printf("%-22u %11.3fx\n", threshold, geomean(factors));
        }
    }
    std::printf("\nExpected shape: factor > 1 at threshold 0 (muxes "
                "outweigh small savings,\nFigure 9a), approaching 1 as "
                "the threshold filters unprofitable merges.\n");
    return 0;
}
