/**
 * @file
 * Figure 9a (paper §7.3): LUT change from resource sharing, register
 * sharing, and both, for every PolyBench kernel, normalized against a
 * baseline with both passes disabled. The paper's finding: sharing
 * functional units also instantiates multiplexers, so LUTs can go *up*
 * (+3% resource sharing, +11% register sharing on average).
 */
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "frontends/dahlia/parser.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

using namespace calyx;

namespace {

double
lutsFor(const dahlia::Program &prog, const workloads::MemState &inputs,
        bool resource, bool registers)
{
    std::string spec = "all,-static";
    if (!resource)
        spec += ",-resource-sharing";
    if (!registers)
        spec += ",-register-sharing";
    auto hw = workloads::runOnHardware(prog, spec, inputs);
    return hw.area.luts;
}

double
geomean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace

int
main()
{
    std::printf("=== Figure 9a: LUT increase factor from sharing "
                "passes ===\n\n");
    std::printf("%-12s %5s %18s %18s %14s\n", "kernel", "label",
                "resource-sharing", "register-sharing", "both");

    std::vector<double> rs, gs, both;
    for (const auto &k : workloads::kernels()) {
        dahlia::Program prog = dahlia::parse(k.source);
        workloads::MemState inputs =
            workloads::makeInputs(k.name, prog);
        double base = lutsFor(prog, inputs, false, false);
        double r = lutsFor(prog, inputs, true, false) / base;
        double g = lutsFor(prog, inputs, false, true) / base;
        double b = lutsFor(prog, inputs, true, true) / base;
        rs.push_back(r);
        gs.push_back(g);
        both.push_back(b);
        std::printf("%-12s %5s %18.3f %18.3f %14.3f\n", k.name.c_str(),
                    k.label.c_str(), r, g, b);
    }
    std::printf("\nGeomeans (paper-reported values in brackets):\n");
    std::printf("  resource sharing: %.3fx [~1.03x]\n", geomean(rs));
    std::printf("  register sharing: %.3fx [~1.11x]\n", geomean(gs));
    std::printf("  both:             %.3fx\n", geomean(both));
    return 0;
}
