#!/usr/bin/env bash
# Observability smoke test: run `futil --trace --profile` over every
# textual example under the jacobi and levelized engines (plus the
# compiled engine when a host C++ compiler exists), validate every
# artifact with obscheck, and check the headline cross-engine property:
# the VCD trace of one design is byte-identical no matter which engine
# produced the cycle values.
#
# Usage: scripts/obs_smoke.sh [path/to/futil] [path/to/obscheck]
set -u

futil="${1:-build/futil}"
obscheck="${2:-build/obscheck}"
for bin in "$futil" "$obscheck"; do
    if [ ! -x "$bin" ]; then
        echo "obs_smoke: binary not found at '$bin'" >&2
        exit 1
    fi
done

examples=$(ls examples/*.futil 2>/dev/null)
if [ -z "$examples" ]; then
    echo "obs_smoke: no examples/*.futil inputs found" >&2
    exit 1
fi

# Engine list mirrors compiled_smoke.sh: the compiled engine is an
# optional acceleration, exercised only when a host compiler exists.
engines="jacobi levelized"
cxx="${CXX:-}"
if [ -z "$cxx" ]; then
    for c in c++ g++ clang++; do
        if command -v "$c" > /dev/null 2>&1; then
            cxx="$c"
            break
        fi
    done
fi
if [ -n "$cxx" ]; then
    engines="$engines compiled"
else
    echo "obs_smoke: no host C++ compiler; skipping the compiled engine"
fi

outdir=$(mktemp -d /tmp/calyx-obs-smoke.XXXXXX)
export CALYX_CPPSIM_CACHE="$outdir/cppsim-cache"
trap 'rm -rf "$outdir"' EXIT
failures=0

for example in $examples; do
    base=$(basename "$example" .futil)
    ref=""
    for engine in $engines; do
        vcd="$outdir/${base}_${engine}.vcd"
        prof="$outdir/${base}_${engine}.json"
        if ! "$futil" --sim --sim-engine="$engine" --trace "$vcd" \
                 --trace-scope=all --profile "$prof" "$example" \
                 > /dev/null 2>"$outdir/err"; then
            echo "FAIL $example ($engine): futil failed" >&2
            cat "$outdir/err" >&2
            failures=$((failures + 1))
            continue
        fi
        if ! "$obscheck" vcd "$vcd"; then
            echo "FAIL $example ($engine): invalid VCD" >&2
            failures=$((failures + 1))
        fi
        if ! "$obscheck" profile "$prof"; then
            echo "FAIL $example ($engine): invalid profile" >&2
            failures=$((failures + 1))
        fi
        if [ -z "$ref" ]; then
            ref="$vcd"
        elif ! cmp -s "$ref" "$vcd"; then
            echo "FAIL $example: $vcd differs from $ref" >&2
            failures=$((failures + 1))
        fi
    done
    [ -n "$ref" ] && echo "ok   $example (engines: $engines)"
done

if [ $failures -ne 0 ]; then
    echo "obs_smoke: $failures failure(s)" >&2
    exit 1
fi
echo "obs_smoke: traces and profiles validated across engines"
