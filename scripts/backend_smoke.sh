#!/usr/bin/env bash
# Backend smoke test: run `futil -b <backend>` for every registered
# backend over every textual example, failing on non-zero exit or empty
# output. Used by CI after the unit-test suite.
#
# Usage: scripts/backend_smoke.sh [path/to/futil]
set -u

futil="${1:-build/futil}"
if [ ! -x "$futil" ]; then
    echo "backend_smoke: futil binary not found at '$futil'" >&2
    exit 1
fi

# Backend names are the first token of each listing row.
backends=$("$futil" --list-backends | awk 'NR > 1 { print $1 }')
if [ -z "$backends" ]; then
    echo "backend_smoke: --list-backends reported no backends" >&2
    exit 1
fi

examples=$(ls examples/*.futil 2>/dev/null)
if [ -z "$examples" ]; then
    echo "backend_smoke: no examples/*.futil inputs found" >&2
    exit 1
fi

failures=0
for example in $examples; do
    for backend in $backends; do
        out=$("$futil" -b "$backend" "$example" 2>/tmp/backend_smoke_err)
        status=$?
        if [ $status -ne 0 ]; then
            echo "FAIL $example -b $backend: exit $status" >&2
            cat /tmp/backend_smoke_err >&2
            failures=$((failures + 1))
        elif [ -z "$out" ]; then
            echo "FAIL $example -b $backend: empty output" >&2
            failures=$((failures + 1))
        else
            echo "ok   $example -b $backend ($(printf '%s\n' "$out" | wc -l) lines)"
        fi
    done
done

# The unknown-backend path must be a hard error with a suggestion.
if "$futil" -b nonsense examples/counter.futil > /dev/null 2>&1; then
    echo "FAIL: futil -b nonsense exited zero" >&2
    failures=$((failures + 1))
else
    echo "ok   futil -b nonsense fails hard"
fi

if [ $failures -ne 0 ]; then
    echo "backend_smoke: $failures failure(s)" >&2
    exit 1
fi
echo "backend_smoke: all backends emitted non-empty output"
