#!/usr/bin/env bash
# Simulation-engine benchmark: time every registered evaluation engine
# (jacobi, levelized, compiled — the driver reads the registry, so a new
# engine shows up automatically) on the fig7 (systolic) and fig8
# (PolyBench) workloads and write BENCH_sim.json (cycles/sec per engine
# per workload, plus batched stimuli/sec rows at batch 1/64/4096 per
# engine and thread count — sim/batch.h lane planes). The driver itself
# verifies that all engines produce identical cycle counts and
# architectural state, and skips the compiled engine when the host has
# no C++ toolchain. Under --check the batched rows are gated too:
# compiled batch-4096 must be >= 8x batch-1 stimuli/sec on gemm, and
# on multi-core hosts levelized batch-64 with all threads >= 2x
# single-thread on systolic_8x8.
#
# Usage: scripts/bench_sim.sh [path/to/bench_sim_engines] [extra flags]
#   e.g. scripts/bench_sim.sh build/bench_sim_engines --small --check
#
# CI runs the --small --check configuration: small workloads, hard
# failure if the compiled engine is slower than levelized on any of
# them. Set CALYX_CPPSIM_CACHE to persist the compiled engine's JIT
# cache across runs (CI restores it between jobs).
set -u

bench="${1:-build/bench_sim_engines}"
shift 2>/dev/null || true
if [ ! -x "$bench" ]; then
    echo "bench_sim: bench binary not found at '$bench'" >&2
    exit 1
fi

# A caller-supplied --out wins (the driver takes the last --out given);
# track it so the output check validates the right file.
out="BENCH_sim.json"
prev=""
for arg in "$@"; do
    if [ "$prev" = "--out" ]; then
        out="$arg"
    fi
    prev="$arg"
done

"$bench" --out "$out" "$@"
status=$?
if [ $status -ne 0 ]; then
    echo "bench_sim: driver failed (exit $status)" >&2
    exit $status
fi

if [ ! -s "$out" ]; then
    echo "bench_sim: $out missing or empty" >&2
    exit 1
fi
echo "bench_sim: wrote $out"
