#!/usr/bin/env bash
# Compile-service benchmark: requests/sec through the content-addressed
# compile cache (src/cache/) on a mutated PolyBench stream, plus
# parallel per-component pass execution against serial, written to
# BENCH_service.json. The driver itself verifies that every cached,
# incremental, and parallel artifact is byte-identical to a cold serial
# compile. Under --check the throughput gates are enforced too: warm
# must beat cold (and be >= 5x), and on multi-core hosts parallel
# `-p all` must be >= 1.5x serial on the multi-component workload —
# that gate auto-skips on 1-core hosts, the identity gates never skip.
#
# Usage: scripts/bench_service.sh [path/to/bench_service] [extra flags]
#   e.g. scripts/bench_service.sh build/bench_service --small --check
#
# CI runs the --small --check configuration: two kernels, short
# streams, hard failure on any identity or throughput gate.
set -u

bench="${1:-build/bench_service}"
shift 2>/dev/null || true
if [ ! -x "$bench" ]; then
    echo "bench_service: bench binary not found at '$bench'" >&2
    exit 1
fi

# A caller-supplied --out wins (the driver takes the last --out given);
# track it so the output check validates the right file.
out="BENCH_service.json"
prev=""
for arg in "$@"; do
    if [ "$prev" = "--out" ]; then
        out="$arg"
    fi
    prev="$arg"
done

"$bench" --out "$out" "$@"
status=$?
if [ $status -ne 0 ]; then
    echo "bench_service: driver failed (exit $status)" >&2
    exit $status
fi

if [ ! -s "$out" ]; then
    echo "bench_service: $out missing or empty" >&2
    exit 1
fi
echo "bench_service: wrote $out"
