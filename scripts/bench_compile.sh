#!/usr/bin/env bash
# Compile-time benchmark: time the full `-p all` pipeline on generated
# systolic arrays (8x8 up to 32x32), the PolyBench suite, and a
# control-heavy nested seq/while/if/par design, and write
# BENCH_compile.json (per-pass and end-to-end wall time, plus per-design
# FSM lowering statistics: state count, FSM register count vs the
# seed-equivalent count, and control-lowering wall time). When the
# string-keyed seed baseline (bench/baselines/compile_seed.json) is
# present, its timings are merged in as "baseline_*" fields so the JSON
# records before/after side by side.
#
# Usage: scripts/bench_compile.sh [path/to/bench_compile_time] [extra flags]
#   e.g. scripts/bench_compile.sh build/bench_compile_time --small --check
#
# CI runs the --small --check configuration: small workloads, hard
# failure unless every timing is nonzero, the systolic timings grow
# monotonically with the array size, and the flat FSM lowering mints no
# more control registers than the seed's per-node expansion.
set -u

bench="${1:-build/bench_compile_time}"
shift 2>/dev/null || true
if [ ! -x "$bench" ]; then
    echo "bench_compile: bench binary not found at '$bench'" >&2
    exit 1
fi

script_dir="$(cd "$(dirname "$0")" && pwd)"
baseline="$script_dir/../bench/baselines/compile_seed.json"

# A caller-supplied --out wins (the driver takes the last --out given);
# track it so the output check validates the right file.
out="BENCH_compile.json"
prev=""
for arg in "$@"; do
    if [ "$prev" = "--out" ]; then
        out="$arg"
    fi
    prev="$arg"
done

extra=()
if [ -f "$baseline" ]; then
    extra=(--baseline "$baseline")
fi

"$bench" --out "$out" "${extra[@]}" "$@"
status=$?
if [ $status -ne 0 ]; then
    echo "bench_compile: driver failed (exit $status)" >&2
    exit $status
fi

if [ ! -s "$out" ]; then
    echo "bench_compile: $out missing or empty" >&2
    exit 1
fi
echo "bench_compile: wrote $out"
