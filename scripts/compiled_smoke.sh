#!/usr/bin/env bash
# Compiled-engine smoke test: run `futil --sim --sim-engine=compiled`
# twice over every textual example and check that (1) the cycle counts
# match the levelized engine, and (2) the second run services every
# module from the on-disk cache — no new files may appear in the cache
# directory, proving the content-addressed digest is stable and the JIT
# is skipped.
#
# Skips (exit 0) when no host C++ compiler is available, since the
# compiled engine is an optional acceleration, not a requirement.
#
# Usage: scripts/compiled_smoke.sh [path/to/futil] [cache-dir]
set -u

futil="${1:-build/futil}"
cache="${2:-$(mktemp -d /tmp/calyx-cppsim-smoke.XXXXXX)}"
if [ ! -x "$futil" ]; then
    echo "compiled_smoke: futil binary not found at '$futil'" >&2
    exit 1
fi

# Graceful skip without a toolchain (mirrors
# sim::compiledEngineUnavailableReason()).
cxx="${CXX:-}"
if [ -z "$cxx" ]; then
    for c in c++ g++ clang++; do
        if command -v "$c" > /dev/null 2>&1; then
            cxx="$c"
            break
        fi
    done
fi
if [ -z "$cxx" ]; then
    echo "compiled_smoke: no host C++ compiler; skipping"
    exit 0
fi

examples=$(ls examples/*.futil 2>/dev/null)
if [ -z "$examples" ]; then
    echo "compiled_smoke: no examples/*.futil inputs found" >&2
    exit 1
fi

export CALYX_CPPSIM_CACHE="$cache"
failures=0

run_all() {
    # Prints "example cycles" per line; empty cycle field on failure.
    for example in $examples; do
        cycles=$("$futil" --sim --sim-engine=compiled "$example" \
                     2>/tmp/compiled_smoke_err | awk '{ print $2 }')
        if [ -z "$cycles" ]; then
            echo "FAIL $example --sim-engine=compiled" >&2
            cat /tmp/compiled_smoke_err >&2
            failures=$((failures + 1))
        fi
        echo "$example $cycles"
    done
}

# First pass: compile-and-run, comparing against the levelized engine.
first=$(run_all)
while read -r example cycles; do
    [ -z "$cycles" ] && continue
    ref=$("$futil" --sim --sim-engine=levelized "$example" \
              2>/dev/null | awk '{ print $2 }')
    if [ "$cycles" != "$ref" ]; then
        echo "FAIL $example: compiled=$cycles levelized=$ref" >&2
        failures=$((failures + 1))
    else
        echo "ok   $example ($cycles cycles)"
    fi
done <<EOF
$first
EOF

# Second pass: every module must come from cache. A cache hit adds no
# files (no new sources, objects, or temporaries).
before=$(ls "$cache" | wc -l)
second=$(run_all)
after=$(ls "$cache" | wc -l)
if [ "$first" != "$second" ]; then
    echo "FAIL: second (cached) run disagrees with the first" >&2
    failures=$((failures + 1))
fi
if [ "$after" -ne "$before" ]; then
    echo "FAIL: cached rerun changed the cache dir ($before -> $after files)" >&2
    failures=$((failures + 1))
else
    echo "ok   cached rerun added no files ($after in $cache)"
fi

if [ $failures -ne 0 ]; then
    echo "compiled_smoke: $failures failure(s)" >&2
    exit 1
fi
echo "compiled_smoke: all examples ran compiled and cached"
