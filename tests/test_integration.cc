#include <gtest/gtest.h>

#include "emit/verilog.h"
#include "estimate/area.h"
#include "helpers.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/collapse_control.h"
#include "passes/infer_latency.h"
#include "passes/resource_sharing.h"
#include "support/error.h"

namespace calyx {
namespace {

/**
 * End-to-end flows over textual IL programs, the way the futil driver
 * consumes them: parse -> pipeline -> simulate / emit.
 */
uint64_t
runText(const std::string &source, const std::string &reg,
        const passes::CompileOptions &options = {},
        uint64_t *cycles = nullptr)
{
    Context ctx = Parser::parseProgram(source);
    passes::compile(ctx, options);
    sim::SimProgram sp(ctx, ctx.entrypoint());
    sim::CycleSim cs(sp);
    uint64_t c = cs.run();
    if (cycles)
        *cycles = c;
    return *sp.findModel(reg)->registerValue();
}

const char *fig2_program = R"(
component main() -> () {
  cells { x = std_reg(32); }
  wires {
    group one { x.in = 32'd1; x.write_en = 1'd1; one[done] = x.done; }
    group two { x.in = 32'd2; x.write_en = 1'd1; two[done] = x.done; }
  }
  control { seq { one; two } }
}
)";

TEST(Integration, PaperFigure2)
{
    EXPECT_EQ(runText(fig2_program, "x"), 2u);
}

TEST(Integration, TextualWhileLoop)
{
    const char *src = R"(
component main() -> () {
  cells {
    acc = std_reg(16);
    i = std_reg(8);
    lt = std_lt(8);
    add_acc = std_add(16);
    add_i = std_add(8);
  }
  wires {
    group init { i.in = 8'd0; i.write_en = 1'd1; init[done] = i.done; }
    group cond {
      lt.left = i.out; lt.right = 8'd10; cond[done] = 1'd1;
    }
    group work {
      add_acc.left = acc.out; add_acc.right = 16'd7;
      acc.in = add_acc.out; acc.write_en = 1'd1;
      work[done] = acc.done;
    }
    group step {
      add_i.left = i.out; add_i.right = 8'd1;
      i.in = add_i.out; i.write_en = 1'd1;
      step[done] = i.done;
    }
  }
  control {
    seq { init; while lt.out with cond { seq { work; step } } }
  }
}
)";
    for (bool sensitive : {false, true}) {
        passes::CompileOptions options;
        options.sensitive = sensitive;
        EXPECT_EQ(runText(src, "acc", options), 70u);
    }
}

TEST(Integration, MultiComponentProgram)
{
    // A two-level hierarchy defined textually: main invokes a counter
    // component three times.
    const char *src = R"(
component bump3() -> () {
  cells { r = std_reg(8); a = std_add(8); }
  wires {
    group add3 {
      a.left = r.out; a.right = 8'd3;
      r.in = a.out; r.write_en = 1'd1;
      add3[done] = r.done;
    }
  }
  control { add3; }
}
component main() -> () {
  cells { b = bump3(); t = std_reg(8); }
  wires {
    group call { b.go = 1'd1; call[done] = b.done; }
    group grab {
      t.in = 8'd1; t.write_en = 1'd1; grab[done] = t.done;
    }
  }
  control { seq { call; call; grab; call } }
}
)";
    Context ctx = Parser::parseProgram(src);
    passes::runPipeline(ctx, "default");
    sim::SimProgram sp(ctx, "main");
    sim::CycleSim cs(sp);
    cs.run();
    EXPECT_EQ(*sp.findModel("b/r")->registerValue(), 9u);
}

TEST(Integration, VerifyModeCatchesNothingOnGoodPrograms)
{
    Context ctx = Parser::parseProgram(fig2_program);
    passes::CompileOptions options;
    options.verify = true;
    options.resourceSharing = true;
    options.registerSharing = true;
    options.sensitive = true;
    EXPECT_NO_THROW(passes::compile(ctx, options));
}

TEST(Integration, VerilogForTextProgram)
{
    Context ctx = Parser::parseProgram(fig2_program);
    passes::runPipeline(ctx, "default");
    std::string sv = emit::VerilogBackend().emitString(ctx);
    EXPECT_NE(sv.find("module main("), std::string::npos);
    // The two constants survive into the mux chain.
    EXPECT_NE(sv.find("32'd1"), std::string::npos);
    EXPECT_NE(sv.find("32'd2"), std::string::npos);
}

TEST(Integration, AreaForTextProgram)
{
    Context ctx = Parser::parseProgram(fig2_program);
    passes::runPipeline(ctx, "default");
    estimate::AreaEstimator est(ctx);
    auto area = est.estimateProgram();
    EXPECT_GT(area.luts, 0.0);
    EXPECT_GE(area.registers, 2); // x + the seq FSM
}

TEST(Integration, ExternPrimitiveEndToEnd)
{
    // Declare an extern alias of the sqrt interface; the simulator has
    // no model for it, so simulation must fail cleanly while printing
    // and compilation succeed (black-box RTL flow, §6.2).
    const char *src = R"(
extern "mysqrt.sv" {
  primitive my_sqrt[WIDTH](in: WIDTH, @go go: 1) ->
      (out: WIDTH, @done done: 1);
}
component main() -> () {
  cells { s = my_sqrt(32); r = std_reg(32); }
  wires {
    group run {
      s.in = 32'd49;
      s.go = !s.done ? 1'd1;
      r.in = s.done ? s.out;
      r.write_en = s.done ? 1'd1;
      run[done] = r.done;
    }
  }
  control { run; }
}
)";
    Context ctx = Parser::parseProgram(src);
    EXPECT_NO_THROW(passes::runPipeline(ctx, "default"));
    std::string sv = emit::VerilogBackend().emitString(ctx);
    EXPECT_NE(sv.find("my_sqrt"), std::string::npos);
    EXPECT_NE(sv.find("mysqrt.sv"), std::string::npos);
    // No simulation model exists for unknown externs.
    EXPECT_THROW(sim::SimProgram(ctx, "main"), Error);
}

TEST(Integration, RuntimeConflictDetectedAfterCompilation)
{
    // Two groups racing in par on the same register: the source program
    // passes static well-formedness (drivers are in different groups)
    // but the compiled design has two simultaneously active drivers,
    // which the simulator reports as the paper's undefined behaviour.
    const char *src = R"(
component main() -> () {
  cells { x = std_reg(8); }
  wires {
    group a { x.in = 8'd1; x.write_en = 1'd1; a[done] = x.done; }
    group b { x.in = 8'd2; x.write_en = 1'd1; b[done] = x.done; }
  }
  control { par { a; b } }
}
)";
    Context ctx = Parser::parseProgram(src);
    passes::runPipeline(ctx, "default");
    sim::SimProgram sp(ctx, "main");
    sim::CycleSim cs(sp);
    EXPECT_THROW(cs.run(), Error);
}

TEST(Integration, CompiledCyclesDominateInterpreter)
{
    // The interpreter models ideal zero-overhead scheduling; real FSMs
    // can only be slower or equal.
    for (uint64_t trips : {1, 3, 6}) {
        Context a = testing::counterProgram(trips, 2);
        uint64_t interp_cycles = 0;
        testing::interpReg(a, "x", &interp_cycles);
        Context b = testing::counterProgram(trips, 2);
        uint64_t compiled_cycles = 0;
        testing::compiledReg(b, "x", "default", &compiled_cycles);
        EXPECT_GE(compiled_cycles, interp_cycles) << trips;
    }
}

TEST(Integration, SensitiveNeverSlowerOnStaticPrograms)
{
    // For fully static programs the static schedule is optimal up to
    // the final handshake.
    for (int n : {2, 5, 9}) {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("x", 32);
        std::vector<ControlPtr> s;
        for (int k = 0; k < n; ++k) {
            b.regWriteGroup("w" + std::to_string(k), "x",
                            constant(k + 1, 32));
            s.push_back(
                ComponentBuilder::enable("w" + std::to_string(k)));
        }
        b.component().setControl(ComponentBuilder::seq(std::move(s)));

        uint64_t insensitive = 0, sensitive = 0;
        Context c1 = Parser::parseProgram(Printer::toString(ctx));
        testing::compiledReg(c1, "x", "default", &insensitive);
        Context c2 = Parser::parseProgram(Printer::toString(ctx));
        passes::CompileOptions opts;
        opts.sensitive = true;
        testing::compiledReg(c2, "x", opts, &sensitive);
        EXPECT_LE(sensitive, insensitive) << n;
        // Static seq of n one-cycle writes runs in n cycles + handshake.
        EXPECT_LE(sensitive, static_cast<uint64_t>(n) + 3) << n;
    }
}

TEST(Integration, PrinterStableUnderPasses)
{
    // print(parse(print(x))) == print(x) even after optimization
    // passes rewrite the program.
    Context ctx = testing::counterProgram(4, 3);
    passes::PassManager pm;
    pm.add<passes::CollapseControl>();
    pm.add<passes::InferLatency>();
    pm.add<passes::ResourceSharing>();
    pm.run(ctx);
    std::string once = Printer::toString(ctx);
    Context re = Parser::parseProgram(once);
    EXPECT_EQ(Printer::toString(re), once);
}

} // namespace
} // namespace calyx
