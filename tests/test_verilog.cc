#include <gtest/gtest.h>

#include "emit/verilog.h"
#include "helpers.h"
#include "support/error.h"
#include "support/text.h"

namespace calyx {
namespace {

using emit::VerilogBackend;
using testing::counterProgram;

TEST(Verilog, RefusesUncompiledComponents)
{
    Context ctx = counterProgram(2, 1);
    std::ostringstream os;
    EXPECT_THROW(
        VerilogBackend::emitComponent(ctx.component("main"), ctx, os),
        Error);
}

TEST(Verilog, EmitsModulePerComponent)
{
    Context ctx = counterProgram(2, 1);
    passes::runPipeline(ctx, "default");
    std::string sv = VerilogBackend().emitString(ctx);
    EXPECT_NE(sv.find("module main("), std::string::npos);
    EXPECT_NE(sv.find("module std_reg"), std::string::npos);
    EXPECT_NE(sv.find("module std_add"), std::string::npos);
    EXPECT_NE(sv.find("endmodule"), std::string::npos);
    // Instances are parameterized and clocked.
    EXPECT_NE(sv.find("std_reg #(.WIDTH(32)) x(.clk(clk)"),
              std::string::npos);
    // Guarded assignments become mux chains.
    EXPECT_NE(sv.find("assign x_in ="), std::string::npos);
}

TEST(Verilog, HierarchicalInstantiation)
{
    Context ctx;
    auto pb = ComponentBuilder::create(ctx, "pe");
    pb.reg("r", 8);
    pb.regWriteGroup("w", "r", constant(3, 8));
    pb.component().setControl(ComponentBuilder::enable("w"));
    auto mb = ComponentBuilder::create(ctx, "main");
    mb.cell("p0", "pe", {});
    Group &inv = mb.group("invoke");
    inv.add(cellPort("p0", "go"), constant(1, 1));
    inv.add(inv.doneHole(), cellPort("p0", "done"));
    mb.component().setControl(ComponentBuilder::enable("invoke"));

    passes::runPipeline(ctx, "default");
    std::string sv = VerilogBackend().emitString(ctx);
    EXPECT_NE(sv.find("module pe("), std::string::npos);
    EXPECT_NE(sv.find("pe p0(.clk(clk)"), std::string::npos);
}

TEST(Verilog, LineCounting)
{
    EXPECT_EQ(countLines(""), 0);
    EXPECT_EQ(countLines("a\nb\n"), 2);
    Context ctx = counterProgram(2, 1);
    passes::runPipeline(ctx, "default");
    std::string sv = VerilogBackend().emitString(ctx);
    EXPECT_GT(countLines(sv), 100);
}

} // namespace
} // namespace calyx
