#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "sim/env.h"
#include "support/error.h"

namespace calyx {
namespace {

TEST(SimEdge, DisjointGuardedDriversAreLegal)
{
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("f", "std_reg", {1}, ctx);
    comp.addCell("x", "std_reg", {8}, ctx);
    GuardPtr f = Guard::fromPort(cellPort("f", "out"));
    comp.continuousAssignments().emplace_back(cellPort("x", "in"),
                                              constant(1, 8), f);
    comp.continuousAssignments().emplace_back(cellPort("x", "in"),
                                              constant(2, 8),
                                              Guard::negate(f));
    sim::SimProgram sp(ctx, "main");
    sim::SimState st(sp);
    st.reset();
    st.beginCycle();
    st.activate(sp.root().continuous);
    EXPECT_NO_THROW(st.comb());
    EXPECT_EQ(st.value("x.in"), 2u); // f resets to 0
}

TEST(SimEdge, UnknownCellPathSuggestsClosest)
{
    Context ctx = testing::counterProgram(3, 2);
    passes::compile(ctx);
    sim::SimProgram prog(ctx, "main");
    try {
        prog.findModel("xx"); // actual register is "x"
        FAIL() << "expected an unknown-cell-path error";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown cell path"), std::string::npos) << msg;
        EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
    }
}

TEST(SimEdge, UnknownPortPathSuggestsClosest)
{
    Context ctx = testing::counterProgram(3, 2);
    passes::compile(ctx);
    sim::SimProgram prog(ctx, "main");
    try {
        prog.portId("x.outt");
        FAIL() << "expected an unknown-port-path error";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown port path"), std::string::npos) << msg;
        EXPECT_NE(msg.find("did you mean 'x.out'"), std::string::npos)
            << msg;
    }
}

TEST(SimEdge, OutOfBoundsReadReturnsZero)
{
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("m", "std_mem_d1", {8, 5, 3}, ctx);
    sim::SimProgram sp(ctx, "main");
    sim::SimState st(sp);
    st.reset();
    (*sp.findModel("m")->memory())[4] = 77;
    st.beginCycle();
    st.force(sp.portId("m.addr0"), 7); // size is 5
    st.comb();
    EXPECT_EQ(st.value("m.read_data"), 0u);
}

TEST(SimEdge, OutOfBoundsWriteIsAnError)
{
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("m", "std_mem_d1", {8, 5, 3}, ctx);
    sim::SimProgram sp(ctx, "main");
    sim::SimState st(sp);
    st.reset();
    st.beginCycle();
    st.force(sp.portId("m.addr0"), 6);
    st.force(sp.portId("m.write_en"), 1);
    st.force(sp.portId("m.write_data"), 1);
    st.comb();
    EXPECT_THROW(st.clock(), Error);
}

TEST(SimEdge, DualReadPortsSeeSameContents)
{
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("m", "std_mem_d1", {8, 4, 2}, ctx);
    sim::SimProgram sp(ctx, "main");
    sim::SimState st(sp);
    st.reset();
    auto *mem = sp.findModel("m")->memory();
    (*mem)[1] = 11;
    (*mem)[3] = 33;
    st.beginCycle();
    st.force(sp.portId("m.addr0"), 1);
    st.force(sp.portId("m.addr0_1"), 3);
    st.comb();
    EXPECT_EQ(st.value("m.read_data"), 11u);
    EXPECT_EQ(st.value("m.read_data_1"), 33u);
}

TEST(SimEdge, ThreeLevelHierarchy)
{
    // leaf sets a register; mid invokes leaf; main invokes mid.
    Context ctx;
    auto lb = ComponentBuilder::create(ctx, "leaf");
    lb.reg("r", 8);
    lb.regWriteGroup("w", "r", constant(9, 8));
    lb.component().setControl(ComponentBuilder::enable("w"));

    auto mb = ComponentBuilder::create(ctx, "mid");
    mb.cell("l", "leaf", {});
    Group &invoke_l = mb.group("invoke_l");
    invoke_l.add(cellPort("l", "go"), constant(1, 1));
    invoke_l.add(invoke_l.doneHole(), cellPort("l", "done"));
    mb.component().setControl(ComponentBuilder::enable("invoke_l"));

    auto tb = ComponentBuilder::create(ctx, "main");
    tb.cell("m", "mid", {});
    Group &invoke_m = tb.group("invoke_m");
    invoke_m.add(cellPort("m", "go"), constant(1, 1));
    invoke_m.add(invoke_m.doneHole(), cellPort("m", "done"));
    tb.component().setControl(ComponentBuilder::enable("invoke_m"));

    // Both engines agree on the deep register.
    {
        sim::SimProgram sp(ctx, "main");
        sim::Interp interp(sp);
        interp.run();
        EXPECT_EQ(*sp.findModel("m/l/r")->registerValue(), 9u);
    }
    passes::runPipeline(ctx, "default");
    sim::SimProgram sp(ctx, "main");
    sim::CycleSim cs(sp);
    cs.run();
    EXPECT_EQ(*sp.findModel("m/l/r")->registerValue(), 9u);
}

TEST(SimEdge, SubComponentReinvocationInLoop)
{
    // A sub-component invoked from inside a while loop must re-arm
    // between iterations (compilation-group reset, §4.3).
    Context ctx;
    auto pb = ComponentBuilder::create(ctx, "adder5");
    pb.reg("acc", 16);
    Group &bump = pb.group("bump");
    Component &pe = pb.component();
    pb.cell("a", "std_add", {16});
    bump.add(cellPort("a", "left"), cellPort("acc", "out"));
    bump.add(cellPort("a", "right"), constant(5, 16));
    bump.add(cellPort("acc", "in"), cellPort("a", "out"));
    bump.add(cellPort("acc", "write_en"), constant(1, 1));
    bump.add(bump.doneHole(), cellPort("acc", "done"));
    pe.setControl(ComponentBuilder::enable("bump"));

    Context loop_ctx = testing::counterProgram(4, 1);
    (void)loop_ctx; // structure reference only

    auto mb = ComponentBuilder::create(ctx, "main");
    mb.cell("p", "adder5", {});
    mb.reg("i", 8);
    mb.cell("lt", "std_lt", {8});
    mb.add("ai", 8);
    mb.regWriteGroup("init", "i", constant(0, 8));
    Group &cond = mb.group("cond");
    cond.add(cellPort("lt", "left"), cellPort("i", "out"));
    cond.add(cellPort("lt", "right"), constant(3, 8));
    cond.add(cond.doneHole(), constant(1, 1));
    Group &call = mb.group("call");
    call.add(cellPort("p", "go"), constant(1, 1));
    call.add(call.doneHole(), cellPort("p", "done"));
    Group &step = mb.group("step");
    step.add(cellPort("ai", "left"), cellPort("i", "out"));
    step.add(cellPort("ai", "right"), constant(1, 8));
    step.add(cellPort("i", "in"), cellPort("ai", "out"));
    step.add(cellPort("i", "write_en"), constant(1, 1));
    step.add(step.doneHole(), cellPort("i", "done"));
    std::vector<ControlPtr> body;
    body.push_back(ComponentBuilder::enable("call"));
    body.push_back(ComponentBuilder::enable("step"));
    std::vector<ControlPtr> top;
    top.push_back(ComponentBuilder::enable("init"));
    top.push_back(ComponentBuilder::whileStmt(
        cellPort("lt", "out"), "cond",
        ComponentBuilder::seq(std::move(body))));
    mb.component().setControl(ComponentBuilder::seq(std::move(top)));

    for (bool sensitive : {false, true}) {
        Context copy = Parser::parseProgram(Printer::toString(ctx));
        passes::CompileOptions opts;
        opts.sensitive = sensitive;
        passes::compile(copy, opts);
        sim::SimProgram sp(copy, "main");
        sim::CycleSim cs(sp);
        cs.run();
        EXPECT_EQ(*sp.findModel("p/acc")->registerValue(), 15u)
            << "sensitive=" << sensitive;
    }
}

TEST(SimEdge, ForcesBeatAssignments)
{
    // Interpreter-style forces take precedence over the zero default
    // but coexist with assignments to other ports.
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("x", "std_reg", {8}, ctx);
    sim::SimProgram sp(ctx, "main");
    sim::SimState st(sp);
    st.reset();
    st.beginCycle();
    st.force(sp.portId("x.in"), 42);
    st.force(sp.portId("x.write_en"), 1);
    st.comb();
    st.clock();
    EXPECT_EQ(*sp.findModel("x")->registerValue(), 42u);
}

TEST(SimEdge, DeepGuardUsesHeapScratch)
{
    // A right-leaning conjunction deeper than the inline eval stack
    // (sexprInlineDepth) used to overflow a fixed 64-slot buffer with
    // no bound check; guards now carry their compile-time max depth and
    // fall back to heap scratch.
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("f", "std_reg", {1}, ctx);
    comp.addCell("x", "std_reg", {8}, ctx);
    GuardPtr leaf = Guard::negate(Guard::fromPort(cellPort("f", "out")));
    GuardPtr chain = leaf;
    for (uint32_t i = 0; i < 2 * sim::sexprInlineDepth; ++i)
        chain = Guard::conj(leaf, chain);
    comp.continuousAssignments().emplace_back(cellPort("x", "in"),
                                              constant(7, 8), chain);

    for (sim::Engine engine :
         {sim::Engine::Jacobi, sim::Engine::Levelized}) {
        sim::SimProgram sp(ctx, "main");
        sim::SimState st(sp, engine);
        st.reset();
        st.beginCycle();
        st.activate(sp.root().continuous);
        EXPECT_NO_THROW(st.comb());
        // f resets to 0, so every !f.out conjunct is true.
        EXPECT_EQ(st.value("x.in"), 7u);
    }
}

TEST(SimEdge, PortNameLookupErrors)
{
    Context ctx;
    ctx.addComponent("main");
    sim::SimProgram sp(ctx, "main");
    EXPECT_THROW(sp.portId("nonexistent.port"), Error);
    EXPECT_THROW(sp.findModel("ghost"), Error);
}

} // namespace
} // namespace calyx
