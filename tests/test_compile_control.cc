#include <gtest/gtest.h>

#include <functional>

#include "helpers.h"
#include "ir/printer.h"
#include "passes/remove_groups.h"
#include "support/error.h"

namespace calyx {
namespace {

using testing::compiledReg;
using testing::counterProgram;
using testing::interpReg;

/** Compiled designs must reproduce the interpreter's final state. */
void
expectEquivalent(const std::function<Context()> &build,
                 const std::vector<std::string> &regs)
{
    Context a = build();
    sim::SimProgram spa(a, "main");
    sim::Interp interp(spa);
    interp.run();

    Context b = build();
    passes::runPipeline(b, "default");
    sim::SimProgram spb(b, "main");
    sim::CycleSim cs(spb);
    cs.run();

    for (const auto &r : regs) {
        EXPECT_EQ(*spa.findModel(r)->registerValue(),
                  *spb.findModel(r)->registerValue())
            << "register " << r;
    }
}

TEST(CompileControl, SeqMatchesFigure2)
{
    // Figure 2: seq { one; two } writing 1 then 2 into x.
    auto build = [] {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("x", 32);
        b.regWriteGroup("one", "x", constant(1, 32));
        b.regWriteGroup("two", "x", constant(2, 32));
        std::vector<ControlPtr> s;
        s.push_back(ComponentBuilder::enable("one"));
        s.push_back(ComponentBuilder::enable("two"));
        b.component().setControl(ComponentBuilder::seq(std::move(s)));
        return ctx;
    };
    expectEquivalent(build, {"x"});

    // Structure: an fsm register exists after compilation.
    Context ctx = build();
    passes::runPipeline(ctx, "default");
    const Component &main = ctx.component("main");
    EXPECT_NE(main.findCell("fsm0"), nullptr);
    EXPECT_TRUE(main.groups().empty());
    EXPECT_EQ(main.control().kind(), Control::Kind::Empty);
}

TEST(CompileControl, SeqOfManyChildren)
{
    auto build = [] {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("x", 32);
        b.add("a", 32);
        std::vector<ControlPtr> s;
        for (int k = 0; k < 7; ++k) {
            std::string name = "g" + std::to_string(k);
            Group &g = b.group(name);
            g.add(cellPort("a", "left"), cellPort("x", "out"));
            g.add(cellPort("a", "right"), constant(k + 1, 32));
            g.add(cellPort("x", "in"), cellPort("a", "out"));
            g.add(cellPort("x", "write_en"), constant(1, 1));
            g.add(g.doneHole(), cellPort("x", "done"));
            s.push_back(ComponentBuilder::enable(name));
        }
        b.component().setControl(ComponentBuilder::seq(std::move(s)));
        return ctx;
    };
    Context check = build();
    EXPECT_EQ(compiledReg(check, "x"), 1u + 2 + 3 + 4 + 5 + 6 + 7);
    expectEquivalent(build, {"x"});
}

TEST(CompileControl, ParChildrenWithDifferentLatencies)
{
    // One child is a 2-cycle register write; the other is a multiply
    // (multLatency + 2 cycles): the par waits for both.
    auto build = [] {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("x", 16);
        b.reg("y", 16);
        b.cell("mul", "std_mult_pipe", {16});
        b.regWriteGroup("fast", "x", constant(7, 16));
        Group &slow = b.group("slow");
        slow.add(cellPort("mul", "left"), constant(6, 16));
        slow.add(cellPort("mul", "right"), constant(9, 16));
        slow.add(cellPort("mul", "go"), constant(1, 1),
                 Guard::negate(Guard::fromPort(cellPort("mul", "done"))));
        slow.add(cellPort("y", "in"), cellPort("mul", "out"),
                 Guard::fromPort(cellPort("mul", "done")));
        slow.add(cellPort("y", "write_en"), constant(1, 1),
                 Guard::fromPort(cellPort("mul", "done")));
        slow.add(slow.doneHole(), cellPort("y", "done"));
        std::vector<ControlPtr> s;
        s.push_back(ComponentBuilder::enable("fast"));
        s.push_back(ComponentBuilder::enable("slow"));
        b.component().setControl(ComponentBuilder::par(std::move(s)));
        return ctx;
    };
    Context ctx = build();
    uint64_t cycles = 0;
    EXPECT_EQ(compiledReg(ctx, "y", "default", &cycles), 54u);
    Context ctx2 = build();
    EXPECT_EQ(compiledReg(ctx2, "x"), 7u);
    expectEquivalent(build, {"x", "y"});
}

TEST(CompileControl, WhileLoop)
{
    auto build = [] { return counterProgram(5, 3); };
    Context ctx = build();
    EXPECT_EQ(compiledReg(ctx, "x"), 15u);
    expectEquivalent(build, {"x", "i"});
}

TEST(CompileControl, WhileLoopZeroTrips)
{
    auto build = [] { return counterProgram(0, 3); };
    Context ctx = build();
    EXPECT_EQ(compiledReg(ctx, "x"), 0u);
}

TEST(CompileControl, NestedLoops)
{
    // for i in 0..3: for j in 0..4: x += 1  => x = 12.
    auto build = [] {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("x", 32);
        b.reg("i", 8);
        b.reg("j", 8);
        b.cell("lti", "std_lt", {8});
        b.cell("ltj", "std_lt", {8});
        b.add("ax", 32);
        b.add("ai", 8);
        b.add("aj", 8);

        b.regWriteGroup("init_i", "i", constant(0, 8));
        b.regWriteGroup("init_j", "j", constant(0, 8));

        Group &ci = b.group("cond_i");
        ci.add(cellPort("lti", "left"), cellPort("i", "out"));
        ci.add(cellPort("lti", "right"), constant(3, 8));
        ci.add(ci.doneHole(), constant(1, 1));
        Group &cj = b.group("cond_j");
        cj.add(cellPort("ltj", "left"), cellPort("j", "out"));
        cj.add(cellPort("ltj", "right"), constant(4, 8));
        cj.add(cj.doneHole(), constant(1, 1));

        auto incr = [&b](const std::string &name, const std::string &reg,
                         const std::string &adder) {
            Group &g = b.group(name);
            g.add(cellPort(adder, "left"), cellPort(reg, "out"));
            g.add(cellPort(adder, "right"),
                  constant(1, reg == "x" ? 32 : 8));
            g.add(cellPort(reg, "in"), cellPort(adder, "out"));
            g.add(cellPort(reg, "write_en"), constant(1, 1));
            g.add(g.doneHole(), cellPort(reg, "done"));
        };
        incr("bump_x", "x", "ax");
        incr("bump_i", "i", "ai");
        incr("bump_j", "j", "aj");

        std::vector<ControlPtr> inner_body;
        inner_body.push_back(ComponentBuilder::enable("bump_x"));
        inner_body.push_back(ComponentBuilder::enable("bump_j"));
        std::vector<ControlPtr> outer_body;
        outer_body.push_back(ComponentBuilder::enable("init_j"));
        outer_body.push_back(ComponentBuilder::whileStmt(
            cellPort("ltj", "out"), "cond_j",
            ComponentBuilder::seq(std::move(inner_body))));
        outer_body.push_back(ComponentBuilder::enable("bump_i"));
        std::vector<ControlPtr> top;
        top.push_back(ComponentBuilder::enable("init_i"));
        top.push_back(ComponentBuilder::whileStmt(
            cellPort("lti", "out"), "cond_i",
            ComponentBuilder::seq(std::move(outer_body))));
        b.component().setControl(ComponentBuilder::seq(std::move(top)));
        return ctx;
    };
    Context ctx = build();
    EXPECT_EQ(compiledReg(ctx, "x"), 12u);
    expectEquivalent(build, {"x", "i", "j"});
}

TEST(CompileControl, IfBothBranches)
{
    for (uint64_t flag : {0, 1}) {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("f", 1);
        b.reg("x", 8);
        b.regWriteGroup("set_f", "f", constant(flag, 1));
        b.regWriteGroup("then_g", "x", constant(10, 8));
        b.regWriteGroup("else_g", "x", constant(20, 8));
        std::vector<ControlPtr> s;
        s.push_back(ComponentBuilder::enable("set_f"));
        s.push_back(ComponentBuilder::ifStmt(
            cellPort("f", "out"), "",
            ComponentBuilder::enable("then_g"),
            ComponentBuilder::enable("else_g")));
        b.component().setControl(ComponentBuilder::seq(std::move(s)));
        EXPECT_EQ(compiledReg(ctx, "x"), flag ? 10u : 20u);
    }
}

TEST(CompileControl, IfInsideLoopResets)
{
    // while (i < 4) { if (i < 2) x += 1 else y += 1; i += 1 }
    // The if's compilation group must reset cc between iterations.
    auto build = [] {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("x", 8);
        b.reg("y", 8);
        b.reg("i", 8);
        b.cell("lt4", "std_lt", {8});
        b.cell("lt2", "std_lt", {8});
        b.add("ax", 8);
        b.add("ay", 8);
        b.add("ai", 8);
        b.regWriteGroup("init", "i", constant(0, 8));
        Group &c4 = b.group("cond4");
        c4.add(cellPort("lt4", "left"), cellPort("i", "out"));
        c4.add(cellPort("lt4", "right"), constant(4, 8));
        c4.add(c4.doneHole(), constant(1, 1));
        Group &c2 = b.group("cond2");
        c2.add(cellPort("lt2", "left"), cellPort("i", "out"));
        c2.add(cellPort("lt2", "right"), constant(2, 8));
        c2.add(c2.doneHole(), constant(1, 1));
        auto incr = [&b](const std::string &name, const std::string &reg,
                         const std::string &adder) {
            Group &g = b.group(name);
            g.add(cellPort(adder, "left"), cellPort(reg, "out"));
            g.add(cellPort(adder, "right"), constant(1, 8));
            g.add(cellPort(reg, "in"), cellPort(adder, "out"));
            g.add(cellPort(reg, "write_en"), constant(1, 1));
            g.add(g.doneHole(), cellPort(reg, "done"));
        };
        incr("bx", "x", "ax");
        incr("by", "y", "ay");
        incr("bi", "i", "ai");
        std::vector<ControlPtr> body;
        body.push_back(ComponentBuilder::ifStmt(
            cellPort("lt2", "out"), "cond2",
            ComponentBuilder::enable("bx"),
            ComponentBuilder::enable("by")));
        body.push_back(ComponentBuilder::enable("bi"));
        std::vector<ControlPtr> top;
        top.push_back(ComponentBuilder::enable("init"));
        top.push_back(ComponentBuilder::whileStmt(
            cellPort("lt4", "out"), "cond4",
            ComponentBuilder::seq(std::move(body))));
        b.component().setControl(ComponentBuilder::seq(std::move(top)));
        return ctx;
    };
    Context ctx = build();
    EXPECT_EQ(compiledReg(ctx, "x"), 2u);
    Context ctx2 = build();
    EXPECT_EQ(compiledReg(ctx2, "y"), 2u);
    expectEquivalent(build, {"x", "y", "i"});
}

TEST(CompileControl, ParInsideLoopResets)
{
    // while (i < 3) { par { x += 1; y += 2 }; i += 1 }
    auto build = [] {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("x", 8);
        b.reg("y", 8);
        b.reg("i", 8);
        b.cell("lt", "std_lt", {8});
        b.add("ax", 8);
        b.add("ay", 8);
        b.add("ai", 8);
        b.regWriteGroup("init", "i", constant(0, 8));
        Group &c = b.group("cond");
        c.add(cellPort("lt", "left"), cellPort("i", "out"));
        c.add(cellPort("lt", "right"), constant(3, 8));
        c.add(c.doneHole(), constant(1, 1));
        auto bump = [&b](const std::string &name, const std::string &reg,
                         const std::string &adder, uint64_t delta) {
            Group &g = b.group(name);
            g.add(cellPort(adder, "left"), cellPort(reg, "out"));
            g.add(cellPort(adder, "right"), constant(delta, 8));
            g.add(cellPort(reg, "in"), cellPort(adder, "out"));
            g.add(cellPort(reg, "write_en"), constant(1, 1));
            g.add(g.doneHole(), cellPort(reg, "done"));
        };
        bump("bx", "x", "ax", 1);
        bump("by", "y", "ay", 2);
        bump("bi", "i", "ai", 1);
        std::vector<ControlPtr> par_items;
        par_items.push_back(ComponentBuilder::enable("bx"));
        par_items.push_back(ComponentBuilder::enable("by"));
        std::vector<ControlPtr> body;
        body.push_back(ComponentBuilder::par(std::move(par_items)));
        body.push_back(ComponentBuilder::enable("bi"));
        std::vector<ControlPtr> top;
        top.push_back(ComponentBuilder::enable("init"));
        top.push_back(ComponentBuilder::whileStmt(
            cellPort("lt", "out"), "cond",
            ComponentBuilder::seq(std::move(body))));
        b.component().setControl(ComponentBuilder::seq(std::move(top)));
        return ctx;
    };
    Context ctx = build();
    EXPECT_EQ(compiledReg(ctx, "x"), 3u);
    Context ctx2 = build();
    EXPECT_EQ(compiledReg(ctx2, "y"), 6u);
    expectEquivalent(build, {"x", "y", "i"});
}

TEST(CompileControl, SameGroupTwiceInSeq)
{
    auto build = [] {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("x", 8);
        b.add("a", 8);
        Group &g = b.group("bump");
        g.add(cellPort("a", "left"), cellPort("x", "out"));
        g.add(cellPort("a", "right"), constant(5, 8));
        g.add(cellPort("x", "in"), cellPort("a", "out"));
        g.add(cellPort("x", "write_en"), constant(1, 1));
        g.add(g.doneHole(), cellPort("x", "done"));
        std::vector<ControlPtr> s;
        s.push_back(ComponentBuilder::enable("bump"));
        s.push_back(ComponentBuilder::enable("bump"));
        b.component().setControl(ComponentBuilder::seq(std::move(s)));
        return ctx;
    };
    Context ctx = build();
    EXPECT_EQ(compiledReg(ctx, "x"), 10u);
    expectEquivalent(build, {"x"});
}

TEST(CompileControl, RemoveGroupsRequiresSingleEnable)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.regWriteGroup("a", "x", constant(1, 8));
    b.regWriteGroup("bb", "x", constant(2, 8));
    std::vector<ControlPtr> s;
    s.push_back(ComponentBuilder::enable("a"));
    s.push_back(ComponentBuilder::enable("bb"));
    b.component().setControl(ComponentBuilder::seq(std::move(s)));
    // Running RemoveGroups without CompileControl must fail loudly.
    passes::PassManager pm;
    pm.add<passes::RemoveGroups>();
    EXPECT_THROW(pm.run(ctx), Error);
}

} // namespace
} // namespace calyx
