#include <gtest/gtest.h>

#include "ir/builder.h"
#include "passes/wellformed.h"
#include "support/error.h"

namespace calyx {
namespace {

using passes::WellFormed;

TEST(WellFormed, AcceptsValidProgram)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.regWriteGroup("w", "x", constant(3, 8));
    b.component().setControl(ComponentBuilder::enable("w"));
    EXPECT_NO_THROW(WellFormed().runOnContext(ctx));
}

TEST(WellFormed, RejectsWidthMismatch)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 16)); // 16 into 8
    g.add(g.doneHole(), cellPort("x", "done"));
    b.component().setControl(ComponentBuilder::enable("g"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsWriteToCellOutput)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("g");
    g.add(cellPort("x", "out"), constant(1, 8));
    g.add(g.doneHole(), cellPort("x", "done"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsReadOfCellInput)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    Group &g = b.group("g");
    g.add(cellPort("y", "in"), cellPort("x", "in"));
    g.add(g.doneHole(), cellPort("y", "done"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsDoubleUnconditionalDrivers)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 8));
    g.add(cellPort("x", "in"), constant(2, 8));
    g.add(g.doneHole(), cellPort("x", "done"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, AllowsGuardedMultipleDrivers)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("f", 1);
    GuardPtr f = Guard::fromPort(cellPort("f", "out"));
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 8), f);
    g.add(cellPort("x", "in"), constant(2, 8), Guard::negate(f));
    g.add(cellPort("x", "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort("x", "done"));
    EXPECT_NO_THROW(WellFormed().runOnContext(ctx));
}

TEST(WellFormed, RejectsUnknownGroupInControl)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.component().setControl(ComponentBuilder::enable("ghost"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsEnabledGroupWithoutDone)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 8));
    b.component().setControl(ComponentBuilder::enable("g"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsWideConditionPort)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.regWriteGroup("body", "x", constant(1, 8));
    Group &cond = b.group("cond");
    cond.add(cond.doneHole(), constant(1, 1));
    b.component().setControl(ComponentBuilder::whileStmt(
        cellPort("x", "out"), "cond", // 8-bit port
        ComponentBuilder::enable("body")));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsNonOneBitGuardLeaf)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    Group &g = b.group("g");
    g.add(cellPort("y", "in"), constant(1, 8),
          Guard::fromPort(cellPort("x", "out")));
    g.add(g.doneHole(), cellPort("y", "done"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsCmpWidthMismatch)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    Group &g = b.group("g");
    g.add(cellPort("y", "in"), constant(1, 8),
          Guard::cmp(Guard::CmpOp::Eq, cellPort("x", "out"),
                     constant(1, 4)));
    g.add(g.doneHole(), cellPort("y", "done"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, ReportsDanglingCellAfterRemoveCell)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("victim", 8);
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), cellPort("victim", "out"));
    g.add(cellPort("x", "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort("x", "done"));
    b.component().setControl(ComponentBuilder::enable("g"));
    Component &main = b.component();

    EXPECT_NO_THROW(WellFormed().runOnContext(ctx));
    main.removeCell("victim"); // silently leaves the read in g
    try {
        WellFormed().runOnContext(ctx);
        FAIL() << "expected a dangling-reference error";
    } catch (const Error &e) {
        std::string msg = e.what();
        // Component, removed entity, and the referencing site.
        EXPECT_NE(msg.find("main"), std::string::npos) << msg;
        EXPECT_NE(msg.find("dangling"), std::string::npos) << msg;
        EXPECT_NE(msg.find("victim"), std::string::npos) << msg;
        EXPECT_NE(msg.find("group 'g'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("x.in = victim.out"), std::string::npos) << msg;
    }
}

TEST(WellFormed, ReportsDanglingGroupAfterRemoveGroup)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.regWriteGroup("w", "x", constant(3, 8));
    b.component().setControl(ComponentBuilder::enable("w"));
    Component &main = b.component();

    main.removeGroup("w"); // enable in control survives
    try {
        WellFormed().runOnContext(ctx);
        FAIL() << "expected a dangling-reference error";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("main"), std::string::npos) << msg;
        EXPECT_NE(msg.find("dangling"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'w'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("enable"), std::string::npos) << msg;
    }
}

TEST(WellFormed, ReportsDanglingHoleReference)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.regWriteGroup("w", "x", constant(3, 8));
    Group &g = b.group("g");
    g.add(cellPort("x", "write_en"), constant(1, 1),
          Guard::fromPort(holePort("w", "done")));
    g.add(g.doneHole(), cellPort("x", "done"));
    b.component().setControl(ComponentBuilder::enable("g"));
    Component &main = b.component();

    main.removeGroup("w"); // g still reads w[done] in a guard
    try {
        WellFormed().runOnContext(ctx);
        FAIL() << "expected a dangling-reference error";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("dangling"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'w'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("group 'g'"), std::string::npos) << msg;
    }
}

TEST(WellFormed, DidYouMeanOnMisspelledCell)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("counter", 8);
    Group &g = b.group("g");
    g.add(cellPort("countre", "in"), constant(1, 8)); // typo
    g.add(g.doneHole(), constant(1, 1));
    b.component().setControl(ComponentBuilder::enable("g"));
    try {
        WellFormed().runOnContext(ctx);
        FAIL() << "expected an unknown-cell error";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("countre"), std::string::npos) << msg;
        EXPECT_NE(msg.find("did you mean 'counter'"), std::string::npos)
            << msg;
    }
}

TEST(WellFormed, DidYouMeanOnMisspelledCellType)
{
    Context ctx;
    Component &main = ctx.addComponent("main");
    try {
        main.addCell("r", "std_regg", {8}, ctx);
        FAIL() << "expected an unknown-type error";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("std_regg"), std::string::npos) << msg;
        EXPECT_NE(msg.find("did you mean 'std_reg'"), std::string::npos)
            << msg;
    }
}

} // namespace
} // namespace calyx
