#include <gtest/gtest.h>

#include "ir/builder.h"
#include "passes/wellformed.h"
#include "support/error.h"

namespace calyx {
namespace {

using passes::WellFormed;

TEST(WellFormed, AcceptsValidProgram)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.regWriteGroup("w", "x", constant(3, 8));
    b.component().setControl(ComponentBuilder::enable("w"));
    EXPECT_NO_THROW(WellFormed().runOnContext(ctx));
}

TEST(WellFormed, RejectsWidthMismatch)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 16)); // 16 into 8
    g.add(g.doneHole(), cellPort("x", "done"));
    b.component().setControl(ComponentBuilder::enable("g"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsWriteToCellOutput)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("g");
    g.add(cellPort("x", "out"), constant(1, 8));
    g.add(g.doneHole(), cellPort("x", "done"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsReadOfCellInput)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    Group &g = b.group("g");
    g.add(cellPort("y", "in"), cellPort("x", "in"));
    g.add(g.doneHole(), cellPort("y", "done"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsDoubleUnconditionalDrivers)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 8));
    g.add(cellPort("x", "in"), constant(2, 8));
    g.add(g.doneHole(), cellPort("x", "done"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, AllowsGuardedMultipleDrivers)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("f", 1);
    GuardPtr f = Guard::fromPort(cellPort("f", "out"));
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 8), f);
    g.add(cellPort("x", "in"), constant(2, 8), Guard::negate(f));
    g.add(cellPort("x", "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort("x", "done"));
    EXPECT_NO_THROW(WellFormed().runOnContext(ctx));
}

TEST(WellFormed, RejectsUnknownGroupInControl)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.component().setControl(ComponentBuilder::enable("ghost"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsEnabledGroupWithoutDone)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 8));
    b.component().setControl(ComponentBuilder::enable("g"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsWideConditionPort)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.regWriteGroup("body", "x", constant(1, 8));
    Group &cond = b.group("cond");
    cond.add(cond.doneHole(), constant(1, 1));
    b.component().setControl(ComponentBuilder::whileStmt(
        cellPort("x", "out"), "cond", // 8-bit port
        ComponentBuilder::enable("body")));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsNonOneBitGuardLeaf)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    Group &g = b.group("g");
    g.add(cellPort("y", "in"), constant(1, 8),
          Guard::fromPort(cellPort("x", "out")));
    g.add(g.doneHole(), cellPort("y", "done"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

TEST(WellFormed, RejectsCmpWidthMismatch)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    Group &g = b.group("g");
    g.add(cellPort("y", "in"), constant(1, 8),
          Guard::cmp(Guard::CmpOp::Eq, cellPort("x", "out"),
                     constant(1, 4)));
    g.add(g.doneHole(), cellPort("y", "done"));
    EXPECT_THROW(WellFormed().runOnContext(ctx), Error);
}

} // namespace
} // namespace calyx
