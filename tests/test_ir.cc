#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/context.h"
#include "support/error.h"

namespace calyx {
namespace {

TEST(PortRef, Printing)
{
    EXPECT_EQ(cellPort("a0", "out").str(), "a0.out");
    EXPECT_EQ(thisPort("go").str(), "go");
    EXPECT_EQ(holePort("incr", "done").str(), "incr[done]");
    EXPECT_EQ(constant(5, 32).str(), "32'd5");
}

TEST(PortRef, ConstantValidation)
{
    EXPECT_THROW(constant(2, 1), Error);
    EXPECT_THROW(constant(1, 0), Error);
    EXPECT_NO_THROW(constant(255, 8));
    EXPECT_THROW(constant(256, 8), Error);
}

TEST(Attributes, Basics)
{
    Attributes a;
    EXPECT_FALSE(a.has("static"));
    a.set("static", 4);
    EXPECT_TRUE(a.has("static"));
    EXPECT_EQ(a.get("static"), 4);
    EXPECT_EQ(a.find("missing"), std::nullopt);
    EXPECT_THROW(a.get("missing"), Error);
    a.erase("static");
    EXPECT_FALSE(a.has("static"));
}

TEST(Component, ImplicitInterfacePorts)
{
    Context ctx;
    Component &c = ctx.addComponent("main");
    EXPECT_TRUE(c.hasPort("go"));
    EXPECT_TRUE(c.hasPort("done"));
    EXPECT_EQ(c.port("go").dir, Direction::Input);
    EXPECT_EQ(c.port("done").dir, Direction::Output);
}

TEST(Component, CellsAndWidths)
{
    Context ctx;
    Component &c = ctx.addComponent("main");
    Cell &r = c.addCell("r", "std_reg", {32}, ctx);
    EXPECT_EQ(r.portWidth("in"), 32u);
    EXPECT_EQ(r.portWidth("write_en"), 1u);
    EXPECT_EQ(r.portDir("out"), Direction::Output);
    EXPECT_TRUE(r.attrs().has(Attributes::statefulAttr));
    EXPECT_EQ(c.portWidth(cellPort("r", "out")), 32u);
    EXPECT_EQ(c.portWidth(constant(3, 7)), 7u);
    EXPECT_THROW(c.addCell("r", "std_reg", {8}, ctx), Error);
    EXPECT_THROW(c.cell("missing"), Error);
}

TEST(Component, MemoryCellParameters)
{
    Context ctx;
    Component &c = ctx.addComponent("main");
    Cell &m = c.addCell("m", "std_mem_d2", {32, 4, 6, 2, 3}, ctx);
    EXPECT_EQ(m.portWidth("addr0"), 2u);
    EXPECT_EQ(m.portWidth("addr1"), 3u);
    EXPECT_EQ(m.portWidth("read_data"), 32u);
}

TEST(Component, UniqueNames)
{
    Context ctx;
    Component &c = ctx.addComponent("main");
    c.addCell("fsm0", "std_reg", {1}, ctx);
    std::string fresh = c.uniqueName("fsm");
    EXPECT_NE(fresh, "fsm0");
    EXPECT_EQ(c.findCell(fresh), nullptr);
}

TEST(Component, GroupManagement)
{
    Context ctx;
    Component &c = ctx.addComponent("main");
    Group &g = c.addGroup("a");
    g.add(g.doneHole(), constant(1, 1));
    EXPECT_TRUE(g.hasDoneWrite());
    EXPECT_EQ(c.groups().size(), 1u);
    c.removeGroup("a");
    EXPECT_EQ(c.groups().size(), 0u);
    EXPECT_EQ(c.findGroup("a"), nullptr);
}

TEST(Context, ComponentInstantiation)
{
    Context ctx;
    Component &pe = ctx.addComponent("pe");
    pe.addInput("x", 16);
    pe.addOutput("y", 16);
    Component &main = ctx.addComponent("main");
    Cell &inst = main.addCell("p0", "pe", {}, ctx);
    EXPECT_FALSE(inst.isPrimitive());
    EXPECT_EQ(inst.portWidth("x"), 16u);
    EXPECT_EQ(inst.portWidth("go"), 1u);
    EXPECT_THROW(main.addCell("p1", "pe", {32}, ctx), Error);
    EXPECT_THROW(main.addCell("p2", "nonexistent", {}, ctx), Error);
}

TEST(Context, ComponentLatencyPropagatesToInstances)
{
    Context ctx;
    Component &pe = ctx.addComponent("pe");
    pe.attrs().set(Attributes::staticAttr, 5);
    Component &main = ctx.addComponent("main");
    Cell &inst = main.addCell("p0", "pe", {}, ctx);
    EXPECT_EQ(inst.attrs().find(Attributes::staticAttr), 5);
}

TEST(Context, TopologicalOrder)
{
    Context ctx;
    Component &leaf = ctx.addComponent("leaf");
    (void)leaf;
    Component &mid = ctx.addComponent("mid");
    mid.addCell("l", "leaf", {}, ctx);
    Component &top = ctx.addComponent("top");
    top.addCell("m", "mid", {}, ctx);
    auto order = ctx.topologicalOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0]->name(), "leaf");
    EXPECT_EQ(order[1]->name(), "mid");
    EXPECT_EQ(order[2]->name(), "top");
}

TEST(Control, CloneAndCount)
{
    std::vector<ControlPtr> inner;
    inner.push_back(std::make_unique<Enable>("a"));
    inner.push_back(std::make_unique<Enable>("b"));
    auto par = std::make_unique<Par>(std::move(inner));
    std::vector<ControlPtr> outer;
    outer.push_back(std::move(par));
    outer.push_back(std::make_unique<Enable>("c"));
    Seq seq(std::move(outer));

    EXPECT_EQ(countControlStatements(seq), 5);

    ControlPtr copy = seq.clone();
    EXPECT_EQ(countControlStatements(*copy), 5);
    ASSERT_EQ(copy->kind(), Control::Kind::Seq);
    auto &cseq = cast<Seq>(*copy);
    EXPECT_EQ(cseq.stmts()[0]->kind(), Control::Kind::Par);
    EXPECT_EQ(cast<Enable>(*cseq.stmts()[1]).group(), "c");
}

TEST(Control, WalkVisitsEverything)
{
    auto w = std::make_unique<While>(
        cellPort("lt", "out"), "cond",
        std::make_unique<If>(cellPort("eq", "out"), "",
                             std::make_unique<Enable>("t"),
                             std::make_unique<Empty>()));
    int enables = 0, total = 0;
    w->walk([&](const Control &c) {
        ++total;
        if (c.kind() == Control::Kind::Enable)
            ++enables;
    });
    EXPECT_EQ(total, 4);
    EXPECT_EQ(enables, 1);
}

TEST(Builder, RegWriteGroupShape)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.regWriteGroup("set_x", "x", constant(42, 8));
    EXPECT_EQ(g.assignments().size(), 3u);
    EXPECT_TRUE(g.hasDoneWrite());
    EXPECT_EQ(g.staticLatency(), 1);
}

} // namespace
} // namespace calyx
