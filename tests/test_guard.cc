#include <gtest/gtest.h>

#include "ir/guard.h"

namespace calyx {
namespace {

GuardPtr
p(const std::string &cell)
{
    return Guard::fromPort(cellPort(cell, "out"));
}

TEST(Guard, TrueFolding)
{
    GuardPtr t = Guard::trueGuard();
    EXPECT_TRUE(Guard::conj(t, p("a"))->kind() == Guard::Kind::Port);
    EXPECT_TRUE(Guard::conj(p("a"), t)->kind() == Guard::Kind::Port);
    EXPECT_TRUE(Guard::disj(t, p("a"))->isTrue());
    EXPECT_TRUE(Guard::disj(p("a"), t)->isTrue());
}

TEST(Guard, DoubleNegation)
{
    GuardPtr g = p("a");
    EXPECT_EQ(Guard::negate(Guard::negate(g)), g);
}

TEST(Guard, Printing)
{
    GuardPtr g = Guard::conj(
        Guard::cmp(Guard::CmpOp::Eq, cellPort("fsm", "out"),
                   constant(1, 2)),
        Guard::negate(p("done")));
    EXPECT_EQ(g->str(), "fsm.out == 2'd1 & !done.out");

    GuardPtr h = Guard::disj(Guard::conj(p("a"), p("b")), p("c"));
    EXPECT_EQ(h->str(), "a.out & b.out | c.out");

    GuardPtr paren = Guard::conj(p("a"), Guard::disj(p("b"), p("c")));
    EXPECT_EQ(paren->str(), "a.out & (b.out | c.out)");

    GuardPtr notcmp = Guard::negate(
        Guard::cmp(Guard::CmpOp::Lt, cellPort("x", "out"),
                   constant(3, 4)));
    EXPECT_EQ(notcmp->str(), "!(x.out < 4'd3)");
}

TEST(Guard, StructuralEquality)
{
    GuardPtr a = Guard::conj(p("a"), p("b"));
    GuardPtr b = Guard::conj(p("a"), p("b"));
    GuardPtr c = Guard::conj(p("b"), p("a"));
    EXPECT_TRUE(Guard::equal(a, b));
    EXPECT_FALSE(Guard::equal(a, c));
    EXPECT_TRUE(Guard::equal(Guard::trueGuard(), Guard::trueGuard()));
}

TEST(Guard, PortCollection)
{
    GuardPtr g = Guard::conj(
        p("a"), Guard::cmp(Guard::CmpOp::Lt, cellPort("b", "out"),
                           constant(3, 8)));
    std::vector<std::string> seen;
    g->ports([&](const PortRef &ref) { seen.push_back(ref.parent); });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], "a");
    EXPECT_EQ(seen[1], "b");
}

TEST(Guard, RewritePorts)
{
    GuardPtr g = Guard::conj(p("a"), p("b"));
    GuardPtr r = Guard::rewritePorts(g, [](const PortRef &ref) {
        if (ref.parent == "a")
            return cellPort("z", "out");
        return ref;
    });
    EXPECT_EQ(r->str(), "z.out & b.out");
    // Untouched guards are shared, not copied.
    GuardPtr same =
        Guard::rewritePorts(g, [](const PortRef &ref) { return ref; });
    EXPECT_EQ(same, g);
}

TEST(Guard, SubstPort)
{
    PortRef hole = holePort("grp", "done");
    GuardPtr g = Guard::conj(Guard::fromPort(hole), p("a"));
    GuardPtr value = Guard::cmp(Guard::CmpOp::Eq, cellPort("fsm", "out"),
                                constant(2, 2));
    GuardPtr r = Guard::substPort(g, hole, value);
    EXPECT_EQ(r->str(), "fsm.out == 2'd2 & a.out");
}

TEST(Guard, Size)
{
    EXPECT_EQ(Guard::trueGuard()->size(), 0);
    EXPECT_EQ(p("a")->size(), 1);
    EXPECT_EQ(Guard::conj(p("a"), Guard::negate(p("b")))->size(), 4);
}

} // namespace
} // namespace calyx
