#include <gtest/gtest.h>

#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "workloads/harness.h"

namespace calyx {
namespace {

/**
 * Compile a Dahlia program in the given mode and require the hardware's
 * final memory state to equal the AST interpreter's.
 */
void
expectMatchesInterp(const std::string &src,
                    const passes::CompileOptions &options = {})
{
    dahlia::Program prog = dahlia::parse(src);
    workloads::MemState inputs = workloads::makeInputs("t", prog);
    workloads::MemState golden = workloads::runOnInterp(prog, inputs);
    workloads::MemState hw;
    workloads::runOnHardware(prog, options, inputs, &hw);
    for (const auto &[name, data] : golden)
        EXPECT_EQ(hw.at(name), data) << "memory " << name;
}

TEST(DahliaCodegen, MemoryCopy)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
decl b: ubit<32>[4];
for (let i: ubit<3> = 0..4) { b[i] := a[i]; }
)");
}

TEST(DahliaCodegen, ArithmeticChain)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
decl out: ubit<32>[4];
for (let i: ubit<3> = 0..4) {
  out[i] := (a[i] + 3) * 2 - (a[i] >> 1);
}
)");
}

TEST(DahliaCodegen, SameMemoryReadAndWrite)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
for (let i: ubit<3> = 0..4) { a[i] := a[i] + a[i]; }
)");
}

TEST(DahliaCodegen, IfElse)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[8];
decl out: ubit<32>[8];
for (let i: ubit<4> = 0..8) {
  if (a[i] > 6) { out[i] := 1; } else { out[i] := 0; }
}
)");
}

TEST(DahliaCodegen, WhileLoop)
{
    expectMatchesInterp(R"(
decl out: ubit<32>[1];
let x: ubit<32> = 1;
let n: ubit<32> = 0;
---
while (n < 10) {
  x := x + x;
  ---
  n := n + 1;
}
---
out[0] := x;
)");
}

TEST(DahliaCodegen, MultiplyDivideModulo)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
decl b: ubit<32>[4];
decl out: ubit<32>[4];
for (let i: ubit<3> = 0..4) {
  out[i] := a[i] * b[i] + a[i] / b[i] + a[i] % b[i];
}
)");
}

TEST(DahliaCodegen, Sqrt)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
decl out: ubit<32>[4];
for (let i: ubit<3> = 0..4) {
  out[i] := sqrt(a[i] * a[i] + 9);
}
)");
}

TEST(DahliaCodegen, UnorderedCompositionParallelizes)
{
    // Two independent statements: must compile to a par and still match.
    const char *src = R"(
decl a: ubit<32>[4];
decl b: ubit<32>[4];
for (let i: ubit<3> = 0..4) {
  a[i] := a[i] + 1; b[i] := b[i] + 2
}
)";
    dahlia::Program prog = dahlia::parse(src);
    Context ctx = dahlia::compileDahlia(prog);
    bool has_par = false;
    ctx.component("main").control().walk([&](const Control &c) {
        if (c.kind() == Control::Kind::Par)
            has_par = true;
    });
    EXPECT_TRUE(has_par);
    expectMatchesInterp(src);
}

TEST(DahliaCodegen, DependentUnorderedCompositionSerializes)
{
    const char *src = R"(
decl a: ubit<32>[4];
let x: ubit<32> = 0;
---
x := a[0] + 1; a[1] := x
)";
    dahlia::Program prog = dahlia::parse(src);
    Context ctx = dahlia::compileDahlia(prog);
    bool has_par = false;
    ctx.component("main").control().walk([&](const Control &c) {
        if (c.kind() == Control::Kind::Par)
            has_par = true;
    });
    EXPECT_FALSE(has_par);
    expectMatchesInterp(src);
}

TEST(DahliaCodegen, TwoDimensionalMemories)
{
    expectMatchesInterp(R"(
decl A: ubit<32>[4][4];
decl B: ubit<32>[4][4];
for (let i: ubit<3> = 0..4) {
  for (let j: ubit<3> = 0..4) {
    B[j][i] := A[i][j];
  }
}
)");
}

TEST(DahliaCodegen, UnrolledLoopWithBanking)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[8 bank 2];
decl b: ubit<32>[8 bank 2];
for (let i: ubit<4> = 0..8) unroll 2 {
  b[i] := a[i] * 3;
}
)");
}

TEST(DahliaCodegen, UnrolledReductionWithCombine)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[8 bank 2];
decl out: ubit<32>[1];
let acc: ubit<32> = 0;
---
for (let i: ubit<4> = 0..8) unroll 2 {
  let v: ubit<32> = a[i] * a[i];
} combine {
  acc := acc + v;
}
---
out[0] := acc;
)");
}

TEST(DahliaCodegen, MultSequencesUnderSensitive)
{
    passes::CompileOptions opts;
    opts.sensitive = true;
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
decl out: ubit<32>[4];
for (let i: ubit<3> = 0..4) {
  out[i] := a[i] * a[i] * 2 + 7;
}
)",
                        opts);
}

TEST(DahliaCodegen, StaticGroupsAnnotated)
{
    dahlia::Program prog = dahlia::parse(R"(
decl a: ubit<32>[4];
let x: ubit<32> = 0;
---
x := a[0] * a[1];
)");
    Context ctx = dahlia::compileDahlia(prog);
    // The multiply group carries static = multLatency + 1 (§6.2).
    bool found = false;
    for (const auto &g : ctx.component("main").groups()) {
        if (g->name().str().rfind("do_mul", 0) == 0) {
            found = true;
            EXPECT_EQ(g->staticLatency(), multLatency + 1);
        }
    }
    EXPECT_TRUE(found);
}

TEST(DahliaCodegen, SqrtGroupHasNoStaticAttribute)
{
    dahlia::Program prog = dahlia::parse(R"(
decl a: ubit<32>[4];
a[0] := sqrt(a[1]);
)");
    Context ctx = dahlia::compileDahlia(prog);
    bool found = false;
    for (const auto &g : ctx.component("main").groups()) {
        if (g->name().str().rfind("do_sqrt", 0) == 0) {
            found = true;
            EXPECT_EQ(g->staticLatency(), std::nullopt);
        }
    }
    EXPECT_TRUE(found);
}

TEST(DahliaCodegen, AllOptimizationConfigs)
{
    const char *src = R"(
decl a: ubit<32>[8];
decl out: ubit<32>[8];
for (let i: ubit<4> = 0..8) {
  let t: ubit<32> = a[i] * 2;
  ---
  let u: ubit<32> = t + 5;
  ---
  out[i] := u - 1;
}
)";
    for (bool rs : {false, true}) {
        for (bool gs : {false, true}) {
            for (bool st : {false, true}) {
                passes::CompileOptions opts;
                opts.resourceSharing = rs;
                opts.registerSharing = gs;
                opts.sensitive = st;
                expectMatchesInterp(src, opts);
            }
        }
    }
}

} // namespace
} // namespace calyx
