#include <gtest/gtest.h>

#include "emit/firrtl.h"
#include "helpers.h"
#include "ir/builder.h"
#include "support/error.h"

namespace calyx {
namespace {

using emit::FirrtlBackend;
using testing::counterProgram;

/**
 * Hand-lowered single-register design (continuous assignments only):
 * small enough that the full FIRRTL output is pinned as a golden
 * string.
 */
Context
tinyLoweredProgram()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("r", 8);
    Component &comp = b.component();
    comp.continuousAssignments().emplace_back(cellPort("r", "in"),
                                              constant(5, 8));
    comp.continuousAssignments().emplace_back(cellPort("r", "write_en"),
                                              thisPort("go"));
    comp.continuousAssignments().emplace_back(thisPort("done"),
                                              cellPort("r", "done"));
    return ctx;
}

TEST(Firrtl, GoldenTinyProgram)
{
    Context ctx = tinyLoweredProgram();
    const char *golden = R"(circuit main :
  module std_reg_8 :
    input clk : Clock
    input in : UInt<8>
    input write_en : UInt<1>
    output out : UInt<8>
    output done : UInt<1>
    reg value : UInt<8>, clk
    reg done_reg : UInt<1>, clk
    done_reg <= UInt<1>(0)
    when write_en :
      value <= in
      done_reg <= UInt<1>(1)
    out <= value
    done <= done_reg

  module main :
    input clk : Clock
    input go : UInt<1>
    output done : UInt<1>

    inst r of std_reg_8
    r.clk <= clk
    r.in is invalid
    r.write_en is invalid
    done is invalid

    r.in <= mux(UInt<1>(1), UInt<8>(5), UInt<8>(0))
    r.write_en <= mux(UInt<1>(1), go, UInt<1>(0))
    done <= mux(UInt<1>(1), r.done, UInt<1>(0))

)";
    EXPECT_EQ(FirrtlBackend().emitString(ctx), golden);
}

TEST(Firrtl, RefusesUncompiledComponents)
{
    Context ctx = counterProgram(2, 1);
    std::ostringstream os;
    EXPECT_THROW(
        FirrtlBackend::emitComponent(ctx.component("main"), ctx, os),
        Error);
}

TEST(Firrtl, CompiledCounterStructure)
{
    Context ctx = counterProgram(2, 1);
    passes::runPipeline(ctx, "default");
    std::string fir = FirrtlBackend().emitString(ctx);

    EXPECT_NE(fir.find("circuit main :\n"), std::string::npos);
    // One specialized module per (primitive, params) pair.
    EXPECT_NE(fir.find("module std_add_32 :"), std::string::npos);
    EXPECT_NE(fir.find("module std_add_8 :"), std::string::npos);
    EXPECT_NE(fir.find("module std_lt_8 :"), std::string::npos);
    EXPECT_NE(fir.find("out <= lt(left, right)"), std::string::npos);
    EXPECT_NE(fir.find("out <= tail(add(left, right), 1)"),
              std::string::npos);
    // Instances reference specializations and thread the clock.
    EXPECT_NE(fir.find("inst x of std_reg_32"), std::string::npos);
    EXPECT_NE(fir.find("x.clk <= clk"), std::string::npos);
    // Guarded assignments became mux trees (FSM guards are eq compares).
    EXPECT_NE(fir.find("mux("), std::string::npos);
    EXPECT_NE(fir.find("eq(fsm"), std::string::npos);
    // No residual group machinery.
    EXPECT_EQ(fir.find("["), std::string::npos);
}

TEST(Firrtl, MemoriesBecomeExtmoduleBlackBoxes)
{
    // Quickstart-style design with a memory: the stateful library
    // primitives black-box onto the SystemVerilog library.
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.mem1d("m", 32, 4);
    b.reg("r", 32);
    Group &load = b.group("load");
    load.add(cellPort("m", "addr0"), constant(0, 2));
    load.add(cellPort("r", "in"), cellPort("m", "read_data"));
    load.add(cellPort("r", "write_en"), constant(1, 1));
    load.add(load.doneHole(), cellPort("r", "done"));
    b.component().setControl(ComponentBuilder::enable("load"));
    passes::runPipeline(ctx, "default");

    std::string fir = FirrtlBackend().emitString(ctx);
    EXPECT_NE(fir.find("extmodule std_mem_d1_32_4_2 :"), std::string::npos);
    EXPECT_NE(fir.find("defname = std_mem_d1"), std::string::npos);
    EXPECT_NE(fir.find("parameter WIDTH = 32"), std::string::npos);
    EXPECT_NE(fir.find("parameter SIZE = 4"), std::string::npos);
    EXPECT_NE(fir.find("inst m of std_mem_d1_32_4_2"), std::string::npos);
}

TEST(Firrtl, HierarchicalInstantiation)
{
    Context ctx;
    auto pb = ComponentBuilder::create(ctx, "pe");
    pb.reg("r", 8);
    pb.regWriteGroup("w", "r", constant(3, 8));
    pb.component().setControl(ComponentBuilder::enable("w"));
    auto mb = ComponentBuilder::create(ctx, "main");
    mb.cell("p0", "pe", {});
    Group &inv = mb.group("invoke");
    inv.add(cellPort("p0", "go"), constant(1, 1));
    inv.add(inv.doneHole(), cellPort("p0", "done"));
    mb.component().setControl(ComponentBuilder::enable("invoke"));
    passes::runPipeline(ctx, "default");

    std::string fir = FirrtlBackend().emitString(ctx);
    EXPECT_NE(fir.find("module pe :"), std::string::npos);
    EXPECT_NE(fir.find("inst p0 of pe"), std::string::npos);
    EXPECT_NE(fir.find("p0.clk <= clk"), std::string::npos);
}

TEST(Firrtl, ZeroParameterExternPrimitive)
{
    // Regression: combBody must not index an empty parameter list.
    Context ctx;
    PrimitiveDef def;
    def.name = "my_prim";
    def.ports = {PrimPortSpec{"in", Direction::Input, 8, ""},
                 PrimPortSpec{"out", Direction::Output, 8, ""}};
    def.externFile = "blackbox.sv";
    ctx.primitives().add(def);
    auto b = ComponentBuilder::create(ctx, "main");
    b.cell("p", "my_prim", {});
    Component &comp = b.component();
    comp.continuousAssignments().emplace_back(cellPort("p", "in"),
                                              constant(3, 8));

    std::string fir = FirrtlBackend().emitString(ctx);
    EXPECT_NE(fir.find("extmodule my_prim :"), std::string::npos);
    EXPECT_NE(fir.find("defname = my_prim"), std::string::npos);
}

} // namespace
} // namespace calyx
