#include <gtest/gtest.h>

#include "helpers.h"
#include "passes/register_sharing.h"

namespace calyx {
namespace {

using passes::RegisterSharing;
using testing::compiledReg;

/**
 * t0 and t1 have disjoint live ranges: t0 is dead after feeding x,
 * so t1 can reuse its register.
 *   t0 = 5; x = t0 + 1; t1 = 7; y = t1 + 1
 */
Context
disjointLiveRanges()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("t0", 8);
    b.reg("t1", 8);
    // Observed outputs: marked external so the environment can read
    // them after sharing (external registers are never merged away).
    b.reg("x", 8).attrs().set(Attributes::externalAttr, 1);
    b.reg("y", 8).attrs().set(Attributes::externalAttr, 1);
    b.add("ax", 8);
    b.add("ay", 8);
    b.regWriteGroup("w_t0", "t0", constant(5, 8));
    Group &wx = b.group("w_x");
    wx.add(cellPort("ax", "left"), cellPort("t0", "out"));
    wx.add(cellPort("ax", "right"), constant(1, 8));
    wx.add(cellPort("x", "in"), cellPort("ax", "out"));
    wx.add(cellPort("x", "write_en"), constant(1, 1));
    wx.add(wx.doneHole(), cellPort("x", "done"));
    b.regWriteGroup("w_t1", "t1", constant(7, 8));
    Group &wy = b.group("w_y");
    wy.add(cellPort("ay", "left"), cellPort("t1", "out"));
    wy.add(cellPort("ay", "right"), constant(1, 8));
    wy.add(cellPort("y", "in"), cellPort("ay", "out"));
    wy.add(cellPort("y", "write_en"), constant(1, 1));
    wy.add(wy.doneHole(), cellPort("y", "done"));

    std::vector<ControlPtr> s;
    s.push_back(ComponentBuilder::enable("w_t0"));
    s.push_back(ComponentBuilder::enable("w_x"));
    s.push_back(ComponentBuilder::enable("w_t1"));
    s.push_back(ComponentBuilder::enable("w_y"));
    ctx.component("main").setControl(
        ComponentBuilder::seq(std::move(s)));
    return ctx;
}

TEST(RegisterSharing, MergesDisjointLiveRanges)
{
    Context ctx = disjointLiveRanges();
    RegisterSharing pass;
    pass.runOnContext(ctx);
    EXPECT_GE(pass.merged(), 1);
}

TEST(RegisterSharing, PreservesSemantics)
{
    Context plain = disjointLiveRanges();
    EXPECT_EQ(compiledReg(plain, "x"), 6u);
    Context p2 = disjointLiveRanges();
    EXPECT_EQ(compiledReg(p2, "y"), 8u);

    passes::CompileOptions opts;
    opts.registerSharing = true;
    Context shared = disjointLiveRanges();
    EXPECT_EQ(compiledReg(shared, "x", opts), 6u);
    Context s2 = disjointLiveRanges();
    EXPECT_EQ(compiledReg(s2, "y", opts), 8u);
}

/**
 * Overlapping live ranges: both temps are read after both are written.
 */
Context
overlappingLiveRanges()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("t0", 8);
    b.reg("t1", 8);
    b.reg("x", 8).attrs().set(Attributes::externalAttr, 1);
    b.add("a", 8);
    b.regWriteGroup("w_t0", "t0", constant(5, 8));
    b.regWriteGroup("w_t1", "t1", constant(7, 8));
    Group &sum = b.group("sum");
    sum.add(cellPort("a", "left"), cellPort("t0", "out"));
    sum.add(cellPort("a", "right"), cellPort("t1", "out"));
    sum.add(cellPort("x", "in"), cellPort("a", "out"));
    sum.add(cellPort("x", "write_en"), constant(1, 1));
    sum.add(sum.doneHole(), cellPort("x", "done"));
    std::vector<ControlPtr> s;
    s.push_back(ComponentBuilder::enable("w_t0"));
    s.push_back(ComponentBuilder::enable("w_t1"));
    s.push_back(ComponentBuilder::enable("sum"));
    ctx.component("main").setControl(
        ComponentBuilder::seq(std::move(s)));
    return ctx;
}

TEST(RegisterSharing, KeepsOverlappingLiveRangesApart)
{
    Context ctx = overlappingLiveRanges();
    RegisterSharing pass;
    pass.runOnContext(ctx);

    // t0 and t1 are simultaneously live; they must not merge. x may
    // merge with one of them (it is dead before... actually x is the
    // final output, live at exit via nothing - but x is written by the
    // last group, so def x live-out exit is empty; merging x with a
    // dead temp is legal). The critical property:
    const Component &main = ctx.component("main");
    // Count how many registers the 'sum' group reads: must still be 2
    // distinct cells.
    const Group &sum = main.group("sum");
    std::string left, right;
    for (const auto &a : sum.assignments()) {
        if (a.dst == cellPort("a", "left"))
            left = a.src.parent;
        if (a.dst == cellPort("a", "right"))
            right = a.src.parent;
    }
    EXPECT_NE(left, right);
}

TEST(RegisterSharing, OverlappingSemanticsPreserved)
{
    passes::CompileOptions opts;
    opts.registerSharing = true;
    Context ctx = overlappingLiveRanges();
    EXPECT_EQ(compiledReg(ctx, "x", opts), 12u);
}

TEST(RegisterSharing, LoopCarriedRegistersInterfere)
{
    // In counterProgram, i and x are both live across iterations: they
    // must never merge.
    Context ctx = calyx::testing::counterProgram(5, 3);
    RegisterSharing pass;
    pass.runOnContext(ctx);
    const Component &main = ctx.component("main");
    EXPECT_NE(main.findCell("x"), nullptr);
    EXPECT_NE(main.findCell("i"), nullptr);

    passes::CompileOptions opts;
    opts.registerSharing = true;
    Context ctx2 = calyx::testing::counterProgram(5, 3);
    EXPECT_EQ(compiledReg(ctx2, "x", opts), 15u);
}

TEST(RegisterSharing, ParallelWritesInterfere)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("t0", 8);
    b.reg("t1", 8);
    b.reg("x", 8).attrs().set(Attributes::externalAttr, 1);
    b.add("a", 8);
    b.regWriteGroup("w_t0", "t0", constant(5, 8));
    b.regWriteGroup("w_t1", "t1", constant(7, 8));
    Group &sum = b.group("sum");
    sum.add(cellPort("a", "left"), cellPort("t0", "out"));
    sum.add(cellPort("a", "right"), cellPort("t1", "out"));
    sum.add(cellPort("x", "in"), cellPort("a", "out"));
    sum.add(cellPort("x", "write_en"), constant(1, 1));
    sum.add(sum.doneHole(), cellPort("x", "done"));
    std::vector<ControlPtr> pars;
    pars.push_back(ComponentBuilder::enable("w_t0"));
    pars.push_back(ComponentBuilder::enable("w_t1"));
    std::vector<ControlPtr> s;
    s.push_back(ComponentBuilder::par(std::move(pars)));
    s.push_back(ComponentBuilder::enable("sum"));
    ctx.component("main").setControl(
        ComponentBuilder::seq(std::move(s)));

    passes::CompileOptions opts;
    opts.registerSharing = true;
    EXPECT_EQ(compiledReg(ctx, "x", opts), 12u);
}

} // namespace
} // namespace calyx
