#include <gtest/gtest.h>

#include "helpers.h"
#include "passes/static_pass.h"

namespace calyx {
namespace {

using passes::StaticPass;
using testing::compiledReg;
using testing::counterProgram;

/** Two static register writes in sequence. */
Context
staticSeqProgram()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    b.regWriteGroup("one", "x", constant(1, 8));
    b.regWriteGroup("two", "y", constant(2, 8));
    std::vector<ControlPtr> s;
    s.push_back(ComponentBuilder::enable("one"));
    s.push_back(ComponentBuilder::enable("two"));
    b.component().setControl(ComponentBuilder::seq(std::move(s)));
    return ctx;
}

TEST(StaticPass, LatencyComputation)
{
    Context ctx = staticSeqProgram();
    const Component &main = ctx.component("main");
    EXPECT_EQ(StaticPass::latencyOf(main.control(), main), 2);
}

TEST(StaticPass, ParLatencyIsMax)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    Group &g1 = b.regWriteGroup("one", "x", constant(1, 8));
    Group &g2 = b.regWriteGroup("two", "y", constant(2, 8));
    g1.attrs().set(Attributes::staticAttr, 3);
    g2.attrs().set(Attributes::staticAttr, 5);
    std::vector<ControlPtr> s;
    s.push_back(ComponentBuilder::enable("one"));
    s.push_back(ComponentBuilder::enable("two"));
    b.component().setControl(ComponentBuilder::par(std::move(s)));
    const Component &main = ctx.component("main");
    EXPECT_EQ(StaticPass::latencyOf(main.control(), main), 5);
}

TEST(StaticPass, WhileIsDynamic)
{
    Context ctx = counterProgram(3, 1);
    const Component &main = ctx.component("main");
    EXPECT_EQ(StaticPass::latencyOf(main.control(), main), std::nullopt);
}

TEST(StaticPass, UnannotatedGroupIsDynamic)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 8));
    g.add(cellPort("x", "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort("x", "done"));
    // regWriteGroup sets "static"; this group deliberately does not.
    b.component().setControl(ComponentBuilder::enable("g"));
    const Component &main = ctx.component("main");
    EXPECT_EQ(StaticPass::latencyOf(main.control(), main), std::nullopt);
}

TEST(StaticPass, ExactCycleCount)
{
    // A fully static program: compiled sensitively, the whole schedule
    // is one counter. Total = 2 work cycles + done handshake cycles.
    Context sensitive = staticSeqProgram();
    passes::CompileOptions opts;
    opts.sensitive = true;
    uint64_t cycles_sensitive = 0;
    EXPECT_EQ(compiledReg(sensitive, "y", opts, &cycles_sensitive), 2u);

    Context insensitive = staticSeqProgram();
    uint64_t cycles_insensitive = 0;
    EXPECT_EQ(compiledReg(insensitive, "y", "default", &cycles_insensitive), 2u);

    // The static schedule runs each write in exactly one cycle.
    EXPECT_LT(cycles_sensitive, cycles_insensitive);
    EXPECT_LE(cycles_sensitive, 4u);
}

TEST(StaticPass, LoopBodyBecomesStatic)
{
    // The while loop stays dynamic but its body compiles statically;
    // results must be identical and cycles should shrink.
    Context plain = counterProgram(6, 2);
    uint64_t plain_cycles = 0;
    EXPECT_EQ(compiledReg(plain, "x", "default", &plain_cycles), 12u);

    Context fast = counterProgram(6, 2);
    passes::CompileOptions opts;
    opts.sensitive = true;
    uint64_t fast_cycles = 0;
    EXPECT_EQ(compiledReg(fast, "x", opts, &fast_cycles), 12u);
    EXPECT_LT(fast_cycles, plain_cycles);
}

TEST(StaticPass, StaticIfSelectsBranch)
{
    for (uint64_t flag : {0, 1}) {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("f", 1);
        b.reg("x", 8);
        b.regWriteGroup("set_f", "f", constant(flag, 1));
        b.regWriteGroup("then_g", "x", constant(10, 8));
        b.regWriteGroup("else_g", "x", constant(20, 8));
        Group &cond = b.group("cond");
        cond.add(cond.doneHole(), constant(1, 1));
        cond.attrs().set(Attributes::staticAttr, 1);
        std::vector<ControlPtr> s;
        s.push_back(ComponentBuilder::enable("set_f"));
        s.push_back(ComponentBuilder::ifStmt(
            cellPort("f", "out"), "cond",
            ComponentBuilder::enable("then_g"),
            ComponentBuilder::enable("else_g")));
        b.component().setControl(ComponentBuilder::seq(std::move(s)));

        const Component &main = ctx.component("main");
        // seq(set_f, if) = 1 + (1 + max(1, 1)) = 3.
        EXPECT_EQ(StaticPass::latencyOf(main.control(), main), 3);

        passes::CompileOptions opts;
        opts.sensitive = true;
        EXPECT_EQ(compiledReg(ctx, "x", opts), flag ? 10u : 20u);
    }
}

TEST(StaticPass, MixedStaticDynamicSqrt)
{
    // sqrt has data-dependent latency: the schedule around it must mix
    // a static prefix with a dynamic sqrt group (paper §4.4's pitch).
    auto build = [] {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("x", 32);
        b.reg("r", 32);
        b.cell("sq", "std_sqrt", {32});
        b.regWriteGroup("init", "x", constant(1764, 32)); // 42^2
        Group &root = b.group("root");
        root.add(cellPort("sq", "in"), cellPort("x", "out"));
        root.add(cellPort("sq", "go"), constant(1, 1),
                 Guard::negate(Guard::fromPort(cellPort("sq", "done"))));
        root.add(cellPort("r", "in"), cellPort("sq", "out"),
                 Guard::fromPort(cellPort("sq", "done")));
        root.add(cellPort("r", "write_en"), constant(1, 1),
                 Guard::fromPort(cellPort("sq", "done")));
        root.add(root.doneHole(), cellPort("r", "done"));
        std::vector<ControlPtr> s;
        s.push_back(ComponentBuilder::enable("init"));
        s.push_back(ComponentBuilder::enable("root"));
        b.component().setControl(ComponentBuilder::seq(std::move(s)));
        return ctx;
    };
    Context ctx = build();
    passes::CompileOptions opts;
    opts.sensitive = true;
    EXPECT_EQ(compiledReg(ctx, "r", opts), 42u);
    Context ctx2 = build();
    EXPECT_EQ(compiledReg(ctx2, "r", "default"), 42u);
}

TEST(StaticPass, StaticRegionInsideLoopReArms)
{
    // The static group's counter must reset between loop iterations.
    Context ctx = counterProgram(4, 5);
    passes::CompileOptions opts;
    opts.sensitive = true;
    EXPECT_EQ(compiledReg(ctx, "x", opts), 20u);
}

} // namespace
} // namespace calyx
