#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "support/error.h"

namespace calyx {
namespace {

TEST(Parser, MinimalComponent)
{
    Context ctx = Parser::parseProgram(R"(
component main(a: 8) -> (b: 8) {
  cells { r = std_reg(8); }
  wires {
    group write {
      r.in = a;
      r.write_en = 1'd1;
      write[done] = r.done;
    }
    b = r.out;
  }
  control { write; }
}
)");
    const Component &main = ctx.component("main");
    EXPECT_TRUE(main.hasPort("a"));
    EXPECT_TRUE(main.hasPort("go"));
    ASSERT_NE(main.findCell("r"), nullptr);
    ASSERT_NE(main.findGroup("write"), nullptr);
    EXPECT_EQ(main.group("write").assignments().size(), 3u);
    EXPECT_EQ(main.continuousAssignments().size(), 1u);
    EXPECT_EQ(main.control().kind(), Control::Kind::Enable);
}

TEST(Parser, GuardsAndControl)
{
    Context ctx = Parser::parseProgram(R"(
component main() -> () {
  cells {
    r = std_reg(4);
    lt = std_lt(4);
  }
  wires {
    group a { r.in = lt.out & !r.done ? 4'd1; a[done] = r.done; }
    group b { r.in = 4'd2; r.write_en = 1'd1; b[done] = r.done; }
    group c { c[done] = 1'd1; }
  }
  control {
    seq {
      a;
      if lt.out with c { b; } else { a; }
      while lt.out with c { par { a; b; } }
    }
  }
}
)");
    const Component &main = ctx.component("main");
    const auto &seq = cast<Seq>(main.control());
    ASSERT_EQ(seq.stmts().size(), 3u);
    EXPECT_EQ(seq.stmts()[0]->kind(), Control::Kind::Enable);
    EXPECT_EQ(seq.stmts()[1]->kind(), Control::Kind::If);
    EXPECT_EQ(seq.stmts()[2]->kind(), Control::Kind::While);
    const auto &w = cast<While>(*seq.stmts()[2]);
    EXPECT_EQ(w.condGroup(), "c");
    EXPECT_EQ(w.body().kind(), Control::Kind::Par);

    // Guard structure of group a's first assignment.
    const auto &ga = main.group("a").assignments()[0];
    EXPECT_EQ(ga.guard->kind(), Guard::Kind::And);
}

TEST(Parser, Attributes)
{
    Context ctx = Parser::parseProgram(R"(
component main<"static"=3>() -> () {
  cells { r = std_reg(8); }
  wires {
    group g<"static"=1, "promote"=2> {
      r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done;
    }
  }
  control { g; }
}
)");
    const Component &main = ctx.component("main");
    EXPECT_EQ(main.staticLatency(), 3);
    EXPECT_EQ(main.group("g").staticLatency(), 1);
    EXPECT_EQ(main.group("g").attrs().get("promote"), 2);
}

TEST(Parser, ExternPrimitives)
{
    Context ctx = Parser::parseProgram(R"(
extern "sqrt.sv" {
  primitive my_sqrt[WIDTH](in: WIDTH, @go go: 1) ->
      (out: WIDTH, @done done: 1);
}
component main() -> () {
  cells { s = my_sqrt(32); }
  wires { }
  control { }
}
)");
    const PrimitiveDef &def = ctx.primitives().get("my_sqrt");
    EXPECT_EQ(def.externFile, "sqrt.sv");
    EXPECT_EQ(def.goPort, "go");
    EXPECT_EQ(def.donePort, "done");
    EXPECT_EQ(ctx.component("main").cell("s").portWidth("out"), 32u);
}

TEST(Parser, Errors)
{
    EXPECT_THROW(Parser::parseProgram("component"), Error);
    EXPECT_THROW(Parser::parseProgram("garbage"), Error);
    EXPECT_THROW(Parser::parseProgram(R"(
component main() -> () {
  cells { r = std_unknown(8); }
  wires { }
  control { }
}
)"),
                 Error);
    // Control referencing nothing still parses; wellformedness is a
    // separate pass. But syntax errors must throw:
    EXPECT_THROW(Parser::parseProgram(R"(
component main() -> () {
  cells { }
  wires { group g { x.in = ; } }
  control { }
}
)"),
                 Error);
}

TEST(Parser, RoundTripThroughPrinter)
{
    // Build a program with every construct, print, parse, print again.
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 32);
    b.reg("i", 8);
    b.cell("lt", "std_lt", {8});
    b.add("a0", 32);

    Group &init = b.regWriteGroup("init", "x", constant(0, 32));
    (void)init;
    Group &cond = b.group("cond");
    cond.add(cellPort("lt", "left"), cellPort("i", "out"));
    cond.add(cellPort("lt", "right"), constant(5, 8));
    cond.add(cond.doneHole(), constant(1, 1));
    Group &step = b.group("step");
    step.add(cellPort("a0", "left"), cellPort("x", "out"));
    step.add(cellPort("a0", "right"), constant(3, 32));
    step.add(cellPort("x", "in"), cellPort("a0", "out"),
             Guard::negate(Guard::fromPort(cellPort("lt", "out"))));
    step.add(cellPort("x", "write_en"), constant(1, 1));
    step.add(step.doneHole(), cellPort("x", "done"));

    std::vector<ControlPtr> body;
    body.push_back(ComponentBuilder::enable("step"));
    std::vector<ControlPtr> top;
    top.push_back(ComponentBuilder::enable("init"));
    top.push_back(ComponentBuilder::whileStmt(
        cellPort("lt", "out"), "cond",
        ComponentBuilder::seq(std::move(body))));
    b.component().setControl(ComponentBuilder::seq(std::move(top)));

    std::string once = Printer::toString(ctx);
    Context reparsed = Parser::parseProgram(once);
    std::string twice = Printer::toString(reparsed);
    EXPECT_EQ(once, twice);
}

TEST(Parser, CommentsAndWhitespace)
{
    Context ctx = Parser::parseProgram(R"(
// leading comment
component main() -> () { /* block
comment */
  cells { } wires { } control { }
}
)");
    EXPECT_NE(ctx.findComponent("main"), nullptr);
}

} // namespace
} // namespace calyx
