/**
 * Cross-engine equivalence suite (ISSUE 3, extended by ISSUE 6): every
 * registered evaluation engine must be observationally identical to the
 * Jacobi fixed-point oracle — same cycle counts, same final memory
 * contents, same register state — on every example program, PolyBench
 * kernels, and a systolic configuration; guarded combinational cycles
 * must settle to the same fixed point everywhere; and true
 * combinational loops must be rejected with the offending port names
 * instead of a convergence timeout.
 *
 * The engine list comes from sim::engineInfos(), so a new engine is
 * automatically swept. The compiled engine is skipped (not failed)
 * when the host has no C++ toolchain.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "frontends/dahlia/parser.h"
#include "frontends/systolic/systolic.h"
#include "helpers.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "sim/compiled.h"
#include "sim/cycle_sim.h"
#include "sim/interp.h"
#include "support/error.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

namespace calyx {
namespace {

/**
 * Engines to compare against the Jacobi oracle: every registered
 * non-Jacobi engine that can run in this environment. The compiled
 * engine drops out on hosts without a C++ toolchain.
 */
std::vector<sim::Engine>
comparisonEngines()
{
    std::vector<sim::Engine> out;
    for (const sim::EngineInfo &info : sim::engineInfos()) {
        if (info.engine == sim::Engine::Jacobi)
            continue;
        if (info.engine == sim::Engine::Compiled &&
            !sim::compiledEngineUnavailableReason().empty())
            continue;
        out.push_back(info.engine);
    }
    return out;
}

/** Cycle-simulate a compiled context with one engine. */
uint64_t
simulate(const Context &ctx, sim::Engine engine,
         std::vector<std::vector<uint64_t>> *state)
{
    sim::SimProgram sp(ctx, ctx.entrypoint());
    sim::CycleSim cs(sp, engine);
    uint64_t cycles = cs.run();
    *state = sim::archState(sp);
    return cycles;
}

void
expectEnginesAgree(const Context &ctx, const std::string &label)
{
    std::vector<std::vector<uint64_t>> jacobi_state;
    uint64_t jacobi = simulate(ctx, sim::Engine::Jacobi, &jacobi_state);
    for (sim::Engine engine : comparisonEngines()) {
        std::vector<std::vector<uint64_t>> state;
        uint64_t cycles = simulate(ctx, engine, &state);
        EXPECT_EQ(jacobi, cycles)
            << label << ": cycle count mismatch ("
            << sim::engineName(engine) << " vs jacobi)";
        EXPECT_EQ(jacobi_state, state)
            << label << ": architectural state mismatch ("
            << sim::engineName(engine) << " vs jacobi)";
    }
}

TEST(EngineEquivalence, AllExamplePrograms)
{
    namespace fs = std::filesystem;
    int found = 0;
    for (const auto &entry : fs::directory_iterator(CALYX_EXAMPLES_DIR)) {
        if (entry.path().extension() != ".futil")
            continue;
        ++found;
        std::ifstream in(entry.path());
        ASSERT_TRUE(in) << entry.path();
        std::stringstream buffer;
        buffer << in.rdbuf();
        Context ctx = Parser::parseProgram(buffer.str());
        passes::runPipeline(ctx, "all");
        expectEnginesAgree(ctx, entry.path().filename().string());
    }
    EXPECT_GE(found, 2) << "expected at least two examples/*.futil";
}

TEST(EngineEquivalence, PolybenchKernels)
{
    for (const std::string &name : {"gemm", "atax"}) {
        const workloads::Kernel &k = workloads::kernel(name);
        dahlia::Program prog = dahlia::parse(k.source);
        workloads::MemState inputs = workloads::makeInputs(name, prog);
        passes::PipelineSpec spec = passes::parsePipelineSpec("all");

        workloads::MemState jacobi_mems;
        auto hj = workloads::runOnHardware(prog, spec, inputs,
                                           &jacobi_mems, {},
                                           sim::Engine::Jacobi);
        for (sim::Engine engine : comparisonEngines()) {
            workloads::MemState mems;
            auto h = workloads::runOnHardware(prog, spec, inputs, &mems,
                                              {}, engine);
            EXPECT_EQ(hj.cycles, h.cycles)
                << name << " (" << sim::engineName(engine) << ")";
            EXPECT_EQ(jacobi_mems, mems)
                << name << " (" << sim::engineName(engine) << ")";
        }
    }
}

TEST(EngineEquivalence, SystolicConfiguration)
{
    const int dim = 3;
    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = dim;
    systolic::generate(ctx, cfg);
    passes::runPipeline(ctx, "all,-resource-sharing,-register-sharing");

    auto run = [&](sim::Engine engine, uint64_t *cycles) {
        sim::SimProgram sp(ctx, "main");
        for (int r = 0; r < dim; ++r) {
            auto *l = sp.findModel(systolic::leftMemName(r))->memory();
            auto *t = sp.findModel(systolic::topMemName(r))->memory();
            for (int k = 0; k < dim; ++k) {
                (*l)[k] = r + k + 1;
                (*t)[k] = 2 * r + k + 1;
            }
        }
        sim::CycleSim cs(sp, engine);
        *cycles = cs.run();
        return sim::archState(sp);
    };

    uint64_t jacobi_cycles;
    auto jacobi_state = run(sim::Engine::Jacobi, &jacobi_cycles);
    for (sim::Engine engine : comparisonEngines()) {
        uint64_t cycles;
        auto state = run(engine, &cycles);
        EXPECT_EQ(jacobi_cycles, cycles) << sim::engineName(engine);
        EXPECT_EQ(jacobi_state, state) << sim::engineName(engine);
    }
}

TEST(EngineEquivalence, InterpreterCrossEngine)
{
    uint64_t cycles[2], regs[2];
    int i = 0;
    for (sim::Engine engine :
         {sim::Engine::Jacobi, sim::Engine::Levelized}) {
        Context ctx = testing::counterProgram(5, 3);
        sim::SimProgram sp(ctx, "main");
        sim::Interp interp(sp, engine);
        cycles[i] = interp.run();
        regs[i] = *sp.findModel("x")->registerValue();
        EXPECT_EQ(regs[i], 15u) << sim::engineName(engine);
        ++i;
    }
    // The ideal interpreter schedule is engine-independent.
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(regs[0], regs[1]);
}

TEST(EngineEquivalence, InterpreterRejectsCompiledEngine)
{
    // The control interpreter activates per-group sets and forces group
    // holes; the generated module hard-codes the continuous set, so the
    // combination is rejected up front regardless of toolchain.
    Context ctx = testing::counterProgram(2, 1);
    sim::SimProgram sp(ctx, "main");
    try {
        sim::Interp interp(sp, sim::Engine::Compiled);
        FAIL() << "interpreter accepted the compiled engine";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("compiled"),
                  std::string::npos)
            << e.what();
    }
}

TEST(EngineEquivalence, GuardedCycleSettlesEverywhere)
{
    // w1.in <- w2.out is guarded on sel.out (held at 0), w2.in <- w1.out
    // is unconditional, and a constant drives w1.in when the guard is
    // off: a structural combinational cycle that every engine must
    // accept and settle by fixed point rather than reject. The Jacobi
    // oracle iterates globally, the levelized engine runs the SCC's
    // local Gauss-Seidel loop, and the compiled module emits the SCC as
    // a bounded fixed-point loop — all must land on w2.out == 5.
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("sel", "std_wire", {1}, ctx);
    comp.addCell("w1", "std_wire", {8}, ctx);
    comp.addCell("w2", "std_wire", {8}, ctx);
    auto &assigns = comp.continuousAssignments();
    assigns.emplace_back(cellPort("sel", "in"), constant(0, 1));
    GuardPtr on = Guard::fromPort(cellPort("sel", "out"));
    assigns.emplace_back(cellPort("w1", "in"), cellPort("w2", "out"), on);
    assigns.emplace_back(cellPort("w1", "in"), constant(5, 8),
                         Guard::negate(on));
    assigns.emplace_back(cellPort("w2", "in"), cellPort("w1", "out"));

    sim::SimProgram sp(ctx, "main");
    for (const sim::EngineInfo &info : sim::engineInfos()) {
        if (info.engine == sim::Engine::Compiled &&
            !sim::compiledEngineUnavailableReason().empty())
            continue;
        sim::SimState st(sp, info.engine);
        st.reset();
        st.beginCycle();
        st.activate(sp.root().continuous);
        st.comb();
        EXPECT_EQ(st.value(Symbol("w2.out")), 5u) << info.name;
        EXPECT_EQ(st.value(Symbol("w1.out")), 5u) << info.name;
    }
}

/** Engines that diagnose combinational loops by port name at
 * schedule-build time (the Jacobi oracle can only time out). */
std::vector<sim::Engine>
diagnosingEngines()
{
    return comparisonEngines();
}

TEST(EngineEquivalence, CombinationalLoopNamesPorts)
{
    // w1.in -> w1.out -> w2.in -> w2.out -> w1.in: an unconditional
    // combinational cycle. Both the levelized engine and the compiled
    // engine (whose codegen consumes the same schedule) must reject it
    // naming every port on the cycle.
    for (sim::Engine engine : diagnosingEngines()) {
        Context ctx;
        Component &comp = ctx.addComponent("main");
        comp.addCell("w1", "std_wire", {8}, ctx);
        comp.addCell("w2", "std_wire", {8}, ctx);
        comp.continuousAssignments().emplace_back(cellPort("w2", "in"),
                                                  cellPort("w1", "out"));
        comp.continuousAssignments().emplace_back(cellPort("w1", "in"),
                                                  cellPort("w2", "out"));
        sim::SimProgram sp(ctx, "main");
        sim::SimState st(sp, engine);
        st.reset();
        st.beginCycle();
        st.activate(sp.root().continuous);
        try {
            st.comb();
            FAIL() << "combinational loop was not rejected by "
                   << sim::engineName(engine);
        } catch (const Error &e) {
            std::string msg = e.what();
            EXPECT_NE(msg.find("combinational loop"), std::string::npos)
                << msg;
            for (const char *port : {"w1.in", "w1.out", "w2.in", "w2.out"})
                EXPECT_NE(msg.find(port), std::string::npos)
                    << sim::engineName(engine) << " diagnostic misses "
                    << port << ": " << msg;
        }
    }
}

TEST(EngineEquivalence, SelfLoopNamesPort)
{
    // n.in = n.out through an inverter: the classic ring oscillator.
    for (sim::Engine engine : diagnosingEngines()) {
        Context ctx;
        Component &comp = ctx.addComponent("main");
        comp.addCell("n", "std_not", {1}, ctx);
        comp.continuousAssignments().emplace_back(cellPort("n", "in"),
                                                  cellPort("n", "out"));
        sim::SimProgram sp(ctx, "main");
        sim::SimState st(sp, engine);
        st.reset();
        st.beginCycle();
        st.activate(sp.root().continuous);
        try {
            st.comb();
            FAIL() << "ring oscillator was not rejected by "
                   << sim::engineName(engine);
        } catch (const Error &e) {
            std::string msg = e.what();
            EXPECT_NE(msg.find("n.in"), std::string::npos) << msg;
            EXPECT_NE(msg.find("n.out"), std::string::npos) << msg;
        }
    }
}

} // namespace
} // namespace calyx
