/**
 * Cross-engine equivalence suite (ISSUE 3): the levelized event-driven
 * engine must be observationally identical to the Jacobi fixed-point
 * oracle — same cycle counts, same final memory contents, same register
 * state — on every example program, PolyBench kernels, and a systolic
 * configuration; and true combinational loops must be rejected with the
 * offending port names instead of a convergence timeout.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "frontends/dahlia/parser.h"
#include "frontends/systolic/systolic.h"
#include "helpers.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "sim/cycle_sim.h"
#include "sim/interp.h"
#include "support/error.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

namespace calyx {
namespace {

/** Cycle-simulate a compiled context with one engine. */
uint64_t
simulate(const Context &ctx, sim::Engine engine,
         std::vector<std::vector<uint64_t>> *state)
{
    sim::SimProgram sp(ctx, ctx.entrypoint());
    sim::CycleSim cs(sp, engine);
    uint64_t cycles = cs.run();
    *state = sim::archState(sp);
    return cycles;
}

void
expectEnginesAgree(const Context &ctx, const std::string &label)
{
    std::vector<std::vector<uint64_t>> jacobi_state, level_state;
    uint64_t jacobi = simulate(ctx, sim::Engine::Jacobi, &jacobi_state);
    uint64_t level = simulate(ctx, sim::Engine::Levelized, &level_state);
    EXPECT_EQ(jacobi, level) << label << ": cycle count mismatch";
    EXPECT_EQ(jacobi_state, level_state)
        << label << ": architectural state mismatch";
}

TEST(EngineEquivalence, AllExamplePrograms)
{
    namespace fs = std::filesystem;
    int found = 0;
    for (const auto &entry : fs::directory_iterator(CALYX_EXAMPLES_DIR)) {
        if (entry.path().extension() != ".futil")
            continue;
        ++found;
        std::ifstream in(entry.path());
        ASSERT_TRUE(in) << entry.path();
        std::stringstream buffer;
        buffer << in.rdbuf();
        Context ctx = Parser::parseProgram(buffer.str());
        passes::runPipeline(ctx, "all");
        expectEnginesAgree(ctx, entry.path().filename().string());
    }
    EXPECT_GE(found, 2) << "expected at least two examples/*.futil";
}

TEST(EngineEquivalence, PolybenchKernels)
{
    for (const std::string &name : {"gemm", "atax"}) {
        const workloads::Kernel &k = workloads::kernel(name);
        dahlia::Program prog = dahlia::parse(k.source);
        workloads::MemState inputs = workloads::makeInputs(name, prog);
        passes::PipelineSpec spec = passes::parsePipelineSpec("all");

        workloads::MemState jacobi_mems, level_mems;
        auto hj = workloads::runOnHardware(prog, spec, inputs,
                                           &jacobi_mems, {},
                                           sim::Engine::Jacobi);
        auto hl = workloads::runOnHardware(prog, spec, inputs,
                                           &level_mems, {},
                                           sim::Engine::Levelized);
        EXPECT_EQ(hj.cycles, hl.cycles) << name;
        EXPECT_EQ(jacobi_mems, level_mems) << name;
    }
}

TEST(EngineEquivalence, SystolicConfiguration)
{
    const int dim = 3;
    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = dim;
    systolic::generate(ctx, cfg);
    passes::runPipeline(ctx, "all,-resource-sharing,-register-sharing");

    std::vector<std::vector<uint64_t>> states[2];
    uint64_t cycles[2];
    int i = 0;
    for (sim::Engine engine :
         {sim::Engine::Jacobi, sim::Engine::Levelized}) {
        sim::SimProgram sp(ctx, "main");
        for (int r = 0; r < dim; ++r) {
            auto *l = sp.findModel(systolic::leftMemName(r))->memory();
            auto *t = sp.findModel(systolic::topMemName(r))->memory();
            for (int k = 0; k < dim; ++k) {
                (*l)[k] = r + k + 1;
                (*t)[k] = 2 * r + k + 1;
            }
        }
        sim::CycleSim cs(sp, engine);
        cycles[i] = cs.run();
        states[i] = sim::archState(sp);
        ++i;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(states[0], states[1]);
}

TEST(EngineEquivalence, InterpreterCrossEngine)
{
    uint64_t cycles[2], regs[2];
    int i = 0;
    for (sim::Engine engine :
         {sim::Engine::Jacobi, sim::Engine::Levelized}) {
        Context ctx = testing::counterProgram(5, 3);
        sim::SimProgram sp(ctx, "main");
        sim::Interp interp(sp, engine);
        cycles[i] = interp.run();
        regs[i] = *sp.findModel("x")->registerValue();
        EXPECT_EQ(regs[i], 15u) << sim::engineName(engine);
        ++i;
    }
    // The ideal interpreter schedule is engine-independent.
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(regs[0], regs[1]);
}

TEST(EngineEquivalence, CombinationalLoopNamesPorts)
{
    // w1.in -> w1.out -> w2.in -> w2.out -> w1.in: an unconditional
    // combinational cycle. The levelized engine diagnoses it by name at
    // schedule-build time; the Jacobi oracle can only time out.
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("w1", "std_wire", {8}, ctx);
    comp.addCell("w2", "std_wire", {8}, ctx);
    comp.continuousAssignments().emplace_back(cellPort("w2", "in"),
                                              cellPort("w1", "out"));
    comp.continuousAssignments().emplace_back(cellPort("w1", "in"),
                                              cellPort("w2", "out"));
    sim::SimProgram sp(ctx, "main");
    sim::SimState st(sp, sim::Engine::Levelized);
    st.reset();
    st.beginCycle();
    st.activate(sp.root().continuous);
    try {
        st.comb();
        FAIL() << "combinational loop was not rejected";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("combinational loop"), std::string::npos)
            << msg;
        for (const char *port : {"w1.in", "w1.out", "w2.in", "w2.out"})
            EXPECT_NE(msg.find(port), std::string::npos)
                << "diagnostic misses " << port << ": " << msg;
    }
}

TEST(EngineEquivalence, SelfLoopNamesPort)
{
    // n.in = n.out through an inverter: the classic ring oscillator.
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("n", "std_not", {1}, ctx);
    comp.continuousAssignments().emplace_back(cellPort("n", "in"),
                                              cellPort("n", "out"));
    sim::SimProgram sp(ctx, "main");
    sim::SimState st(sp, sim::Engine::Levelized);
    st.reset();
    st.beginCycle();
    st.activate(sp.root().continuous);
    try {
        st.comb();
        FAIL() << "ring oscillator was not rejected";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("n.in"), std::string::npos) << msg;
        EXPECT_NE(msg.find("n.out"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace calyx
