#include <gtest/gtest.h>

#include "helpers.h"
#include "passes/compile_control.h"
#include "passes/go_insertion.h"
#include "passes/remove_groups.h"

namespace calyx {
namespace {

using testing::counterProgram;

TEST(RemoveGroups, PostConditions)
{
    Context ctx = counterProgram(3, 2);
    passes::PassManager pm;
    pm.add<passes::GoInsertion>();
    pm.add<passes::CompileControl>();
    pm.add<passes::RemoveGroups>();
    pm.run(ctx);

    const Component &main = ctx.component("main");
    EXPECT_TRUE(main.groups().empty());
    EXPECT_EQ(main.control().kind(), Control::Kind::Empty);
    // No residual holes anywhere.
    for (const auto &a : main.continuousAssignments()) {
        EXPECT_FALSE(a.dst.isHole()) << a.str();
        EXPECT_FALSE(a.src.isHole()) << a.str();
        a.guard->ports([](const PortRef &p) {
            EXPECT_FALSE(p.isHole()) << p.str();
        });
    }
}

TEST(RemoveGroups, InterfaceWiring)
{
    // After the full pipeline the component's done port must be driven.
    Context ctx = counterProgram(2, 1);
    passes::runPipeline(ctx, "default");
    const Component &main = ctx.component("main");
    bool drives_done = false;
    for (const auto &a : main.continuousAssignments()) {
        if (a.dst.isThis() && a.dst.port == "done")
            drives_done = true;
    }
    EXPECT_TRUE(drives_done);
}

TEST(RemoveGroups, SingleGroupProgram)
{
    // A single enable wires this.go/done straight through; the design
    // must not re-execute while go stays high during the done cycle.
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.add("a", 8);
    Group &g = b.group("bump");
    g.add(cellPort("a", "left"), cellPort("x", "out"));
    g.add(cellPort("a", "right"), constant(1, 8));
    g.add(cellPort("x", "in"), cellPort("a", "out"));
    g.add(cellPort("x", "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort("x", "done"));
    b.component().setControl(ComponentBuilder::enable("bump"));

    passes::runPipeline(ctx, "default");
    sim::SimProgram sp(ctx, "main");
    sim::CycleSim cs(sp);
    cs.run();
    EXPECT_EQ(*sp.findModel("x")->registerValue(), 1u);
}

TEST(RemoveGroups, EmptyComponentUntouched)
{
    Context ctx;
    Component &main = ctx.addComponent("main");
    main.continuousAssignments().emplace_back(
        thisPort("done"), constant(1, 1),
        Guard::fromPort(thisPort("go")));
    passes::PassManager pm;
    pm.add<passes::RemoveGroups>();
    pm.run(ctx);
    EXPECT_EQ(main.continuousAssignments().size(), 1u);
}

} // namespace
} // namespace calyx
