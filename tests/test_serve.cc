/**
 * The `futil --serve` stimulus-stream service (ISSUE 8): wire framing,
 * request parsing, the serve loop end to end over in-memory streams —
 * run round-trips with per-lane results, malformed-request rejection
 * that leaves the session serving, stats as the report envelope — and
 * the acceptance gate: a session sustaining 100+ stimulus-batch
 * requests against one resident compiled module without recompiling
 * (module_loads stays 1, modules_from_cache asserted on a warm
 * cache). Also the --trace/--serve flag-conflict rejection.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "emit/backend.h"
#include "ir/parser.h"
#include "passes/pipeline.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/compiled.h"
#include "sim/cycle_sim.h"
#include "sim/env.h"
#include "support/error.h"
#include "support/json.h"

namespace calyx {
namespace {

/** Same data-bounded loop as tests/test_batch_sim.cc: the `bound`
 * memory sets the trip count, so stimuli drive divergent control and
 * `x` retires at 3 * bound. */
const char *kDataBoundedLoop = R"(
component main() -> () {
  cells {
    bound = std_mem_d1(8, 1, 1);
    out = std_mem_d1(32, 1, 1);
    x = std_reg(32);
    i = std_reg(8);
    lt = std_lt(8);
    addx = std_add(32);
    addi = std_add(8);
  }
  wires {
    group cond {
      bound.addr0 = 1'd0;
      lt.left = i.out;
      lt.right = bound.read_data;
      cond[done] = 1'd1;
    }
    group bump_x {
      addx.left = x.out; addx.right = 32'd3;
      x.in = addx.out; x.write_en = 1'd1;
      bump_x[done] = x.done;
    }
    group bump_i {
      addi.left = i.out; addi.right = 8'd1;
      i.in = addi.out; i.write_en = 1'd1;
      bump_i[done] = i.done;
    }
    group store {
      out.addr0 = 1'd0;
      out.write_data = x.out; out.write_en = 1'd1;
      store[done] = out.done;
    }
  }
  control {
    seq {
      while lt.out with cond { seq { bump_x; bump_i; } }
      store;
    }
  }
}
)";

Context
loweredLoop()
{
    Context ctx = Parser::parseProgram(kDataBoundedLoop);
    passes::runPipeline(ctx, "all");
    return ctx;
}

std::string
frame(const std::string &payload)
{
    return std::to_string(payload.size()) + "\n" + payload;
}

/** A run request over `bounds`, one stimulus per bound value. */
std::string
runRequest(const std::vector<uint64_t> &bounds)
{
    std::string batch;
    for (uint64_t b : bounds) {
        if (!batch.empty())
            batch += ", ";
        batch += "{\"mems\": {\"bound\": [" + std::to_string(b) + "]}}";
    }
    return "{\"type\": \"run\", \"batch\": [" + batch + "]}";
}

/** Every response frame in `out`, parsed. */
std::vector<json::Value>
responses(const std::string &out)
{
    std::istringstream in(out);
    std::vector<json::Value> docs;
    std::string payload, err;
    for (;;) {
        serve::FrameStatus fs = serve::readFrame(in, payload, err);
        if (fs == serve::FrameStatus::Eof)
            break;
        EXPECT_EQ(fs, serve::FrameStatus::Ok) << err;
        if (fs != serve::FrameStatus::Ok)
            break;
        docs.push_back(json::parse(payload));
    }
    return docs;
}

TEST(ServeProtocol, FrameRoundTrip)
{
    std::ostringstream os;
    serve::writeFrame(os, "hello");
    serve::writeFrame(os, ""); // Empty payloads are legal frames.
    serve::writeFrame(os, std::string(100'000, 'x'));
    std::istringstream is(os.str());
    std::string payload, err;
    ASSERT_EQ(serve::readFrame(is, payload, err), serve::FrameStatus::Ok);
    EXPECT_EQ(payload, "hello");
    ASSERT_EQ(serve::readFrame(is, payload, err), serve::FrameStatus::Ok);
    EXPECT_EQ(payload, "");
    ASSERT_EQ(serve::readFrame(is, payload, err), serve::FrameStatus::Ok);
    EXPECT_EQ(payload.size(), 100'000u);
    EXPECT_EQ(serve::readFrame(is, payload, err), serve::FrameStatus::Eof);
}

TEST(ServeProtocol, FramingErrors)
{
    std::string payload, err;
    {
        std::istringstream is("nope\n{}");
        EXPECT_EQ(serve::readFrame(is, payload, err),
                  serve::FrameStatus::Bad);
        EXPECT_NE(err.find("non-digit"), std::string::npos) << err;
    }
    {
        std::istringstream is("10\nshort"); // Payload cut off.
        EXPECT_EQ(serve::readFrame(is, payload, err),
                  serve::FrameStatus::Bad);
        EXPECT_NE(err.find("5 of 10"), std::string::npos) << err;
    }
    {
        std::istringstream is("999999999999999\nx"); // Garbage length.
        EXPECT_EQ(serve::readFrame(is, payload, err),
                  serve::FrameStatus::Bad);
        EXPECT_NE(err.find("limit"), std::string::npos) << err;
    }
    {
        std::istringstream is("12"); // EOF inside the length line.
        EXPECT_EQ(serve::readFrame(is, payload, err),
                  serve::FrameStatus::Bad);
    }
}

TEST(ServeProtocol, ParseStimuliShapes)
{
    json::Value good = json::parse(
        R"([{"mems": {"a": [1, 2]}}, {}, {"mems": {}}])");
    auto stimuli = serve::parseStimuli(good);
    ASSERT_EQ(stimuli.size(), 3u);
    ASSERT_EQ(stimuli[0].mems.size(), 1u);
    EXPECT_EQ(stimuli[0].mems[0].first, "a");
    EXPECT_EQ(stimuli[0].mems[0].second,
              (std::vector<uint64_t>{1, 2}));
    EXPECT_TRUE(stimuli[1].mems.empty());

    EXPECT_THROW(serve::parseStimuli(json::parse("{}")), Error);
    EXPECT_THROW(serve::parseStimuli(json::parse("[42]")), Error);
    EXPECT_THROW(serve::parseStimuli(json::parse(
                     R"([{"mems": {"a": 7}}])")),
                 Error);
}

TEST(Serve, RoundTripWithMalformedRejection)
{
    Context ctx = loweredLoop();
    sim::SimProgram sp(ctx, ctx.entrypoint());

    std::istringstream in(
        frame("{\"type\": \"ping\"}") + frame(runRequest({2, 0, 5})) +
        frame("this is not json") +   // Well-framed, bad payload.
        frame("{\"type\": \"what\"}") + // Unknown request type.
        frame(runRequest({1})) +       // Still serving after rejects.
        frame("{\"type\": \"stats\"}") +
        frame("{\"type\": \"shutdown\"}"));
    std::ostringstream out;
    serve::ServeOptions opts;
    opts.engine = sim::Engine::Levelized;
    opts.file = "loop.futil";
    serve::ServeStats st = serve::serve(sp, in, out, opts);

    EXPECT_EQ(st.requests, 7u);
    EXPECT_EQ(st.runs, 2u);
    EXPECT_EQ(st.stimuli, 4u);
    EXPECT_EQ(st.errors, 2u);

    auto docs = responses(out.str());
    ASSERT_EQ(docs.size(), 7u);
    EXPECT_TRUE(docs[0].at("ok").asBool());
    EXPECT_EQ(docs[0].at("result").asStr(), "pong");

    // Per-lane results in batch order: x retires at 3 * bound.
    ASSERT_TRUE(docs[1].at("ok").asBool());
    const auto &lanes = docs[1].at("result").at("lanes").items();
    ASSERT_EQ(lanes.size(), 3u);
    std::vector<uint64_t> bounds{2, 0, 5};
    for (size_t l = 0; l < lanes.size(); ++l) {
        EXPECT_EQ(lanes[l].at("regs").at("x").asNum(), 3 * bounds[l])
            << "lane " << l;
        EXPECT_EQ(lanes[l].at("mems").at("out").items()[0].asNum(),
                  3 * bounds[l])
            << "lane " << l;
        EXPECT_GT(lanes[l].at("cycles").asNum(), 0u);
    }
    // Divergent control: different bounds, different cycle counts.
    EXPECT_NE(lanes[0].at("cycles").asNum(), lanes[1].at("cycles").asNum());

    EXPECT_FALSE(docs[2].at("ok").asBool()); // Malformed JSON.
    EXPECT_FALSE(docs[3].at("ok").asBool()); // Unknown type.
    EXPECT_NE(docs[3].at("error").asStr().find("what"),
              std::string::npos);
    EXPECT_TRUE(docs[4].at("ok").asBool()); // Session kept serving.

    const json::Value &stats = docs[5].at("result");
    EXPECT_EQ(stats.at("version").asNum(), 1u); // Report envelope.
    EXPECT_EQ(stats.at("file").asStr(), "loop.futil");
    EXPECT_EQ(stats.at("serve").at("runs").asNum(), 2u);
    EXPECT_EQ(stats.at("serve").at("errors").asNum(), 2u);

    EXPECT_TRUE(docs[6].at("ok").asBool()); // Shutdown ack.
}

TEST(Serve, BrokenFramingEndsSessionWithError)
{
    Context ctx = loweredLoop();
    sim::SimProgram sp(ctx, ctx.entrypoint());
    std::istringstream in(frame("{\"type\": \"ping\"}") +
                          "BOOM\n" + // Unrecoverable: no frame bound.
                          frame("{\"type\": \"ping\"}"));
    std::ostringstream out;
    serve::ServeOptions opts;
    opts.engine = sim::Engine::Levelized;
    serve::ServeStats st = serve::serve(sp, in, out, opts);
    EXPECT_EQ(st.requests, 1u);
    EXPECT_EQ(st.errors, 1u);
    auto docs = responses(out.str());
    ASSERT_EQ(docs.size(), 2u); // Ping ack + final framing error.
    EXPECT_FALSE(docs[1].at("ok").asBool());
    EXPECT_NE(docs[1].at("error").asStr().find("bad frame"),
              std::string::npos);
}

/** The acceptance gate: 100+ stimulus-batch requests against one
 * resident compiled module, no recompilation, cache hit asserted. */
TEST(Serve, SustainsHundredRequestsOnResidentCompiledModule)
{
    if (!sim::compiledEngineUnavailableReason().empty())
        GTEST_SKIP() << sim::compiledEngineUnavailableReason();
    Context ctx = loweredLoop();
    sim::SimProgram sp(ctx, ctx.entrypoint());

    serve::ServeOptions opts;
    opts.engine = sim::Engine::Compiled;
    opts.laneTile = 4;

    // First session warms the on-disk object cache so the second can
    // assert a pure cache hit (no host-compiler invocation at all).
    {
        std::istringstream in(frame(runRequest({1})) +
                              frame("{\"type\": \"shutdown\"}"));
        std::ostringstream out;
        serve::serve(sp, in, out, opts);
    }

    std::string input;
    for (uint64_t i = 0; i < 100; ++i)
        input += frame(runRequest({i % 17, (i * 7) % 17}));
    input += frame("{\"type\": \"stats\"}");
    input += frame("{\"type\": \"shutdown\"}");
    std::istringstream in(input);
    std::ostringstream out;
    serve::ServeStats st = serve::serve(sp, in, out, opts);

    EXPECT_EQ(st.requests, 102u);
    EXPECT_EQ(st.runs, 100u);
    EXPECT_EQ(st.stimuli, 200u);
    EXPECT_EQ(st.errors, 0u);

    auto docs = responses(out.str());
    ASSERT_EQ(docs.size(), 102u);
    for (uint64_t i = 0; i < 100; ++i) {
        ASSERT_TRUE(docs[i].at("ok").asBool()) << "request " << i;
        const auto &lanes = docs[i].at("result").at("lanes").items();
        ASSERT_EQ(lanes.size(), 2u);
        EXPECT_EQ(lanes[0].at("regs").at("x").asNum(), 3 * (i % 17));
        EXPECT_EQ(lanes[1].at("regs").at("x").asNum(),
                  3 * ((i * 7) % 17));
    }
    const json::Value &serve_stats = docs[100].at("result").at("serve");
    // Resident module: 100 runs, exactly one JIT load, served from
    // the object cache without recompiling.
    EXPECT_EQ(serve_stats.at("module_loads").asNum(), 1u);
    EXPECT_TRUE(serve_stats.at("modules_from_cache").asBool());
}

TEST(Serve, CompileRequestRoundTrip)
{
    Context ctx = loweredLoop();
    sim::SimProgram sp(ctx, ctx.entrypoint());

    // A compile request carrying its own source: the serve loop is a
    // compiler service too, independent of the design it simulates.
    json::Value creq = json::Value::object();
    creq.set("type", json::Value::str("compile"));
    creq.set("source", json::Value::str(kDataBoundedLoop));
    creq.set("pipeline", json::Value::str("all"));
    std::string creq_text;
    {
        std::ostringstream os;
        creq.write(os);
        creq_text = os.str();
    }

    std::istringstream in(
        frame(creq_text) + frame(creq_text) + // Second one is warm.
        frame("{\"type\": \"compile\"}") +     // Missing source.
        frame("{\"type\": \"stat\"}") +        // Typo: did-you-mean.
        frame("{\"type\": \"stats\"}") + frame("{\"type\": \"shutdown\"}"));
    std::ostringstream out;
    serve::ServeOptions opts;
    opts.engine = sim::Engine::Levelized;
    serve::ServeStats st = serve::serve(sp, in, out, opts);
    EXPECT_EQ(st.compiles, 2u);
    EXPECT_EQ(st.errors, 2u);

    auto docs = responses(out.str());
    ASSERT_EQ(docs.size(), 6u);

    // Cold compile: the artifact equals futil's own output for the
    // same source and pipeline, byte for byte.
    ASSERT_TRUE(docs[0].at("ok").asBool());
    const json::Value &cold = docs[0].at("result");
    Context ref = loweredLoop();
    std::string expected =
        emit::BackendRegistry::instance().create("calyx")->emitString(
            ref);
    EXPECT_EQ(cold.at("artifact").asStr(), expected);
    EXPECT_EQ(cold.at("backend").asStr(), "calyx");
    EXPECT_FALSE(cold.at("artifact_from_cache").asBool());
    EXPECT_GT(cold.at("passes_run").asNum(), 0u);
    // The normalized pipeline names passes, not the alias.
    EXPECT_EQ(cold.at("pipeline").asStr().find("all"),
              std::string::npos);

    // Warm compile: same bytes, served from the raw-text tier.
    ASSERT_TRUE(docs[1].at("ok").asBool());
    const json::Value &warm = docs[1].at("result");
    EXPECT_EQ(warm.at("artifact").asStr(), expected);
    EXPECT_TRUE(warm.at("artifact_from_cache").asBool());
    EXPECT_TRUE(warm.at("raw_text_hit").asBool());
    EXPECT_EQ(warm.at("passes_run").asNum(), 0u);

    EXPECT_FALSE(docs[2].at("ok").asBool()); // No source.
    EXPECT_NE(docs[2].at("error").asStr().find("source"),
              std::string::npos);

    // Unknown request type with a near-miss name: did-you-mean.
    EXPECT_FALSE(docs[3].at("ok").asBool());
    EXPECT_NE(docs[3].at("error").asStr().find("did you mean 'stats'"),
              std::string::npos)
        << docs[3].at("error").asStr();

    // Stats mirror the compile-cache counters.
    const json::Value &cstats =
        docs[4].at("result").at("serve").at("compile");
    EXPECT_EQ(cstats.at("requests").asNum(), 2u);
    EXPECT_EQ(cstats.at("artifacts_from_cache").asNum(), 1u);
    EXPECT_EQ(cstats.at("artifacts_from_raw_text").asNum(), 1u);
    EXPECT_GT(cstats.at("cache_entries").asNum(), 0u);
}

TEST(Serve, RejectsObserverFlagsNamingBoth)
{
    try {
        serve::rejectObserverFlag("--trace", "--serve");
        FAIL() << "conflict was not rejected";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("--trace"), std::string::npos) << msg;
        EXPECT_NE(msg.find("--serve"), std::string::npos) << msg;
    }
    try {
        serve::rejectObserverFlag("--profile", "--batch");
        FAIL() << "conflict was not rejected";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("--profile"), std::string::npos) << msg;
        EXPECT_NE(msg.find("--batch"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace calyx
