/**
 * @file
 * Lowering-equivalence suite (ISSUE 5 satellite): every textual example
 * plus randomized control trees (nested seq/par/if/while over mixed
 * static and dynamic groups) go through the FSM lowering and must end
 * in the same architectural state as the simulator's interpreter path,
 * under both combinational engines, with identical cycle counts across
 * the engines — in every lowering configuration (default, all,
 * one-hot encoding, fuse-static).
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <random>
#include <sstream>
#include <vector>

#include "helpers.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "sim/cycle_sim.h"
#include "sim/interp.h"

namespace calyx {
namespace {

/** Lowering configurations exercised for every design. */
const char *const kConfigs[] = {
    "default",
    "all",
    "well-formed,collapse-control,infer-latency,go-insertion,"
    "compile-control[encoding=one-hot],remove-groups,dead-cell-removal",
    "well-formed,collapse-control,infer-latency,go-insertion,"
    "compile-control[fuse-static=true],remove-groups,dead-cell-removal",
};

/** Names of the architectural cells of the source design. */
std::vector<Symbol>
archCells(const Context &ctx)
{
    std::vector<Symbol> cells;
    for (const auto &cell : ctx.component(ctx.entrypoint()).cells()) {
        const std::string &type = cell->type().str();
        if (type == "std_reg" || type.rfind("std_mem", 0) == 0)
            cells.push_back(cell->name());
    }
    return cells;
}

/** Snapshot registers and memory contents of the named cells. */
std::map<Symbol, std::vector<uint64_t>>
snapshot(const sim::SimProgram &sp, const std::vector<Symbol> &cells)
{
    std::map<Symbol, std::vector<uint64_t>> state;
    for (Symbol name : cells) {
        sim::PrimModel *model = sp.findModel(name);
        if (auto reg = model->registerValue()) {
            state[name] = {*reg};
        } else if (auto *mem = model->memory()) {
            state[name] = *mem;
        }
    }
    return state;
}

/**
 * Core equivalence check: interpreter on the source program vs the
 * lowered design under both engines, for every configuration.
 * `preserves_cells` should be false for configurations that may rename
 * or remove architectural cells (register sharing, dead-cell removal
 * of written-but-unread registers under "all").
 */
void
expectLoweringEquivalent(const std::function<Context()> &build,
                         const std::string &label)
{
    Context source = build();
    std::vector<Symbol> cells = archCells(source);
    sim::SimProgram sp(source, source.entrypoint());
    sim::Interp interp(sp);
    interp.run(2'000'000);
    auto want = snapshot(sp, cells);

    for (const char *config : kConfigs) {
        bool preserves_cells =
            std::string(config).find("all") != 0; // "all" may share regs
        Context lowered = build();
        passes::runPipeline(lowered, config);

        // Dead-cell removal may drop write-only registers; compare the
        // cells that survived lowering (every surviving architectural
        // cell must hold the interpreter's value for it).
        std::vector<Symbol> surviving;
        for (Symbol name : cells) {
            if (lowered.component(lowered.entrypoint()).findCell(name))
                surviving.push_back(name);
        }
        std::map<Symbol, std::vector<uint64_t>> want_surviving;
        for (Symbol name : surviving)
            want_surviving[name] = want.at(name);

        uint64_t cycles[2] = {0, 0};
        std::vector<std::vector<uint64_t>> engine_state[2];
        int idx = 0;
        for (sim::Engine engine :
             {sim::Engine::Jacobi, sim::Engine::Levelized}) {
            sim::SimProgram spc(lowered, lowered.entrypoint());
            sim::CycleSim cs(spc, engine);
            cycles[idx] = cs.run(2'000'000);
            engine_state[idx] = sim::archState(spc);
            if (preserves_cells) {
                EXPECT_EQ(snapshot(spc, surviving), want_surviving)
                    << label << " [" << config << "] engine " << idx
                    << ": architectural state diverged from the "
                       "interpreter";
            }
            ++idx;
        }
        EXPECT_EQ(cycles[0], cycles[1])
            << label << " [" << config << "]: engines disagree on cycles";
        EXPECT_EQ(engine_state[0], engine_state[1])
            << label << " [" << config << "]: engines disagree on state";
    }
}

TEST(LoweringEquivalence, AllExamplePrograms)
{
    namespace fs = std::filesystem;
    int found = 0;
    for (const auto &entry : fs::directory_iterator(CALYX_EXAMPLES_DIR)) {
        if (entry.path().extension() != ".futil")
            continue;
        ++found;
        std::ifstream in(entry.path());
        ASSERT_TRUE(in) << entry.path();
        std::stringstream buffer;
        buffer << in.rdbuf();
        std::string text = buffer.str();
        expectLoweringEquivalent(
            [&text] { return Parser::parseProgram(text); },
            entry.path().filename().string());
    }
    EXPECT_GE(found, 2) << "expected at least two examples/*.futil";
}

/**
 * Random control trees over a pool of registers: static register
 * writes (annotated "static"=1 by regWriteGroup), dynamic increments
 * (inferable), data-dependent sqrt groups (genuinely dynamic), nested
 * seq/par/if/while. Every while loop owns a dedicated trip counter so
 * nesting always terminates; par arms write disjoint registers.
 */
class RandomControl
{
  public:
    explicit RandomControl(uint32_t seed) : rng(seed) {}

    Context
    build()
    {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        comp = &b.component();
        builder = &b;
        groupCount = 0;
        loopCount = 0;

        numRegs = 2 + rng() % 3;
        for (int r = 0; r < numRegs; ++r) {
            b.reg(reg(r), 8);
            b.cell("add" + std::to_string(r), "std_add", {8});
        }
        b.cell("sq", "std_sqrt", {8});

        comp->setControl(gen(3, allRegs()));
        return ctx;
    }

  private:
    std::string
    reg(int r) const
    {
        return "r" + std::to_string(r);
    }

    std::vector<int>
    allRegs() const
    {
        std::vector<int> v(numRegs);
        for (int i = 0; i < numRegs; ++i)
            v[i] = i;
        return v;
    }

    /** Static leaf: a constant register write ("static"=1). */
    std::string
    staticGroup(const std::vector<int> &allowed)
    {
        int dst = allowed[rng() % allowed.size()];
        std::string name = "s" + std::to_string(groupCount++);
        builder->regWriteGroup(name, reg(dst),
                               constant(1 + rng() % 30, 8));
        return name;
    }

    /** Dynamic-but-inferable leaf: r_dst += k reading r_src. */
    std::string
    incrGroup(const std::vector<int> &allowed)
    {
        int dst = allowed[rng() % allowed.size()];
        int src = static_cast<int>(rng() % numRegs);
        std::string name = "g" + std::to_string(groupCount++);
        Group &g = comp->addGroup(name);
        std::string adder = "add" + std::to_string(dst);
        g.add(cellPort(adder, "left"), cellPort(reg(src), "out"));
        g.add(cellPort(adder, "right"), constant(rng() % 16, 8));
        g.add(cellPort(reg(dst), "in"), cellPort(adder, "out"));
        g.add(cellPort(reg(dst), "write_en"), constant(1, 1));
        g.add(g.doneHole(), cellPort(reg(dst), "done"));
        return name;
    }

    /** Genuinely dynamic leaf: r_dst = sqrt(r_src), variable latency. */
    std::string
    sqrtGroup(const std::vector<int> &allowed)
    {
        int dst = allowed[rng() % allowed.size()];
        int src = static_cast<int>(rng() % numRegs);
        std::string name = "q" + std::to_string(groupCount++);
        Group &g = comp->addGroup(name);
        GuardPtr done = Guard::fromPort(cellPort("sq", "done"));
        g.add(cellPort("sq", "in"), cellPort(reg(src), "out"));
        g.add(cellPort("sq", "go"), constant(1, 1), Guard::negate(done));
        g.add(cellPort(reg(dst), "in"), cellPort("sq", "out"), done);
        g.add(cellPort(reg(dst), "write_en"), constant(1, 1), done);
        g.add(g.doneHole(), cellPort(reg(dst), "done"));
        return name;
    }

    ControlPtr
    leaf(const std::vector<int> &allowed)
    {
        switch (rng() % 3) {
          case 0:
            return std::make_unique<Enable>(staticGroup(allowed));
          case 1:
            return std::make_unique<Enable>(incrGroup(allowed));
          default:
            return std::make_unique<Enable>(sqrtGroup(allowed));
        }
    }

    ControlPtr
    gen(int depth, const std::vector<int> &allowed)
    {
        int kind = depth == 0 ? 0 : static_cast<int>(rng() % 10);
        if (kind < 3 || allowed.empty())
            return leaf(allowed.empty() ? allRegs() : allowed);
        if (kind < 5) { // seq
            size_t n = 2 + rng() % 3;
            auto seq = std::make_unique<Seq>();
            for (size_t i = 0; i < n; ++i)
                seq->add(gen(depth - 1, allowed));
            return seq;
        }
        if (kind < 7 && allowed.size() >= 2) { // par, disjoint arms
            size_t split = 1 + rng() % (allowed.size() - 1);
            std::vector<int> left(allowed.begin(),
                                  allowed.begin() + split);
            std::vector<int> right(allowed.begin() + split,
                                   allowed.end());
            auto par = std::make_unique<Par>();
            par->add(gen(depth - 1, left));
            // The sqrt unit is shared; keep it out of one arm so
            // parallel arms never contend for it.
            par->add(genNoSqrt(depth - 1, right));
            return par;
        }
        if (kind < 8) { // if on a comparison of a register
            int r = allowed[rng() % allowed.size()];
            std::string cname = "c" + std::to_string(groupCount++);
            std::string lt = "lt" + cname;
            comp->addCell(lt, "std_lt", {8}, builder->context());
            Group &cond = comp->addGroup(cname);
            cond.add(cellPort(lt, "left"), cellPort(reg(r), "out"));
            cond.add(cellPort(lt, "right"),
                     constant(1 + rng() % 40, 8));
            cond.add(cond.doneHole(), constant(1, 1));
            return std::make_unique<If>(cellPort(lt, "out"), cname,
                                        gen(depth - 1, allowed),
                                        gen(depth - 1, allowed));
        }
        // Bounded while with a dedicated trip counter.
        int id = loopCount++;
        std::string cnt = "cnt" + std::to_string(id);
        builder->reg(cnt, 8);
        comp->addCell("ca" + std::to_string(id), "std_add", {8},
                      builder->context());
        comp->addCell("cl" + std::to_string(id), "std_lt", {8},
                      builder->context());
        Group &tick = comp->addGroup("tick" + std::to_string(id));
        tick.add(cellPort("ca" + std::to_string(id), "left"),
                 cellPort(cnt, "out"));
        tick.add(cellPort("ca" + std::to_string(id), "right"),
                 constant(1, 8));
        tick.add(cellPort(cnt, "in"),
                 cellPort("ca" + std::to_string(id), "out"));
        tick.add(cellPort(cnt, "write_en"), constant(1, 1));
        tick.add(tick.doneHole(), cellPort(cnt, "done"));
        Group &cond = comp->addGroup("lc" + std::to_string(id));
        cond.add(cellPort("cl" + std::to_string(id), "left"),
                 cellPort(cnt, "out"));
        cond.add(cellPort("cl" + std::to_string(id), "right"),
                 constant(1 + rng() % 3, 8));
        cond.add(cond.doneHole(), constant(1, 1));
        auto body = std::make_unique<Seq>();
        body->add(gen(depth - 1, allowed));
        body->add(
            std::make_unique<Enable>("tick" + std::to_string(id)));
        return std::make_unique<While>(
            cellPort("cl" + std::to_string(id), "out"),
            "lc" + std::to_string(id), std::move(body));
    }

    /** Like gen() but never emits a sqrt leaf (for one par arm). */
    ControlPtr
    genNoSqrt(int depth, const std::vector<int> &allowed)
    {
        if (depth == 0 || allowed.empty()) {
            return std::make_unique<Enable>(
                rng() % 2 ? staticGroup(allowed.empty() ? allRegs()
                                                        : allowed)
                          : incrGroup(allowed.empty() ? allRegs()
                                                      : allowed));
        }
        if (rng() % 3 == 0) {
            size_t n = 2 + rng() % 2;
            auto seq = std::make_unique<Seq>();
            for (size_t i = 0; i < n; ++i)
                seq->add(genNoSqrt(depth - 1, allowed));
            return seq;
        }
        return std::make_unique<Enable>(
            rng() % 2 ? staticGroup(allowed) : incrGroup(allowed));
    }

    std::mt19937 rng;
    Component *comp = nullptr;
    ComponentBuilder *builder = nullptr;
    int numRegs = 0;
    int groupCount = 0;
    int loopCount = 0;
};

class LoweringSeed : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(LoweringSeed, RandomControlTreeMatchesInterpreter)
{
    uint32_t seed = GetParam();
    expectLoweringEquivalent(
        [seed] {
            RandomControl gen(seed);
            return gen.build();
        },
        "seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoweringSeed, ::testing::Range(0u, 25u));

} // namespace
} // namespace calyx
