#include <gtest/gtest.h>

#include "frontends/dahlia/checker.h"
#include "frontends/dahlia/lexer.h"
#include "frontends/dahlia/lowering.h"
#include "frontends/dahlia/parser.h"
#include "support/error.h"

namespace calyx::dahlia {
namespace {

TEST(DahliaLexer, Tokens)
{
    auto toks = tokenize("let x := 5; --- a[i] <= 3 // comment\nfoo");
    std::vector<std::string> texts;
    for (const auto &t : toks)
        texts.push_back(t.text);
    std::vector<std::string> expect = {"let", "x",  ":=", "5", ";",
                                       "---", "a",  "[",  "i", "]",
                                       "<=",  "3",  "foo", "<eof>"};
    EXPECT_EQ(texts, expect);
}

TEST(DahliaParser, TypesAndDecls)
{
    Program p = parse(R"(
decl a: ubit<32>[8 bank 2][4];
a[0][0] := 1
)");
    ASSERT_EQ(p.decls.size(), 1u);
    EXPECT_EQ(p.decls[0].type.width, 32u);
    EXPECT_EQ(p.decls[0].type.dims, (std::vector<uint64_t>{8, 4}));
    EXPECT_EQ(p.decls[0].type.banks, (std::vector<uint64_t>{2, 1}));
}

TEST(DahliaParser, CompositionPrecedence)
{
    // `a; b --- c` = Seq(Par(a, b), c).
    Program p = parse(R"(
decl m: ubit<8>[4];
m[0] := 1; m[1] := 2 --- m[2] := 3
)");
    ASSERT_EQ(p.body->kind, Stmt::Kind::SeqComp);
    ASSERT_EQ(p.body->stmts.size(), 2u);
    EXPECT_EQ(p.body->stmts[0]->kind, Stmt::Kind::ParComp);
    EXPECT_EQ(p.body->stmts[0]->stmts.size(), 2u);
    EXPECT_EQ(p.body->stmts[1]->kind, Stmt::Kind::Assign);
}

TEST(DahliaParser, ExpressionPrecedence)
{
    Program p = parse(R"(
decl m: ubit<8>[4];
m[0] := 1 + 2 * 3
)");
    const Expr &rhs = *p.body->rhs;
    ASSERT_EQ(rhs.kind, Expr::Kind::Bin);
    EXPECT_EQ(rhs.op, BinOp::Add);
    EXPECT_EQ(rhs.rhs->op, BinOp::Mul);
}

TEST(DahliaParser, ForWithUnrollAndCombine)
{
    Program p = parse(R"(
decl a: ubit<32>[8 bank 2];
let acc: ubit<32> = 0;
---
for (let i: ubit<4> = 0..8) unroll 2 {
  let v: ubit<32> = a[i];
} combine {
  acc := acc + v;
}
)");
    const Stmt &f = *p.body->stmts[1];
    ASSERT_EQ(f.kind, Stmt::Kind::For);
    EXPECT_EQ(f.unroll, 2u);
    EXPECT_EQ(f.lo, 0u);
    EXPECT_EQ(f.hi, 8u);
    ASSERT_NE(f.combine, nullptr);
}

TEST(DahliaChecker, AcceptsAllPaperKernels)
{
    // The checker must accept what we claim Dahlia accepts; exercised
    // heavily by test_polybench, but keep one direct case here.
    Program p = parse(R"(
decl A: ubit<32>[8][8 bank 2];
for (let i: ubit<4> = 0..8) {
  for (let j: ubit<4> = 0..8) unroll 2 {
    A[i][j] := A[i][j] + 1;
  }
}
)");
    EXPECT_NO_THROW(check(p));
}

TEST(DahliaChecker, RejectsUnrollWithoutBanking)
{
    Program p = parse(R"(
decl A: ubit<32>[8][8];
for (let i: ubit<4> = 0..8) {
  for (let j: ubit<4> = 0..8) unroll 2 {
    A[i][j] := A[i][j] + 1;
  }
}
)");
    EXPECT_THROW(check(p), Error);
}

TEST(DahliaChecker, RejectsCrossLaneScalarWrite)
{
    Program p = parse(R"(
decl A: ubit<32>[8 bank 2];
let acc: ubit<32> = 0;
---
for (let i: ubit<4> = 0..8) unroll 2 {
  acc := acc + A[i];
}
)");
    EXPECT_THROW(check(p), Error);
}

TEST(DahliaChecker, AcceptsCrossLaneReductionViaCombine)
{
    Program p = parse(R"(
decl A: ubit<32>[8 bank 2];
let acc: ubit<32> = 0;
---
for (let i: ubit<4> = 0..8) unroll 2 {
  let v: ubit<32> = A[i];
} combine {
  acc := acc + v;
}
)");
    EXPECT_NO_THROW(check(p));
}

TEST(DahliaChecker, RejectsAliasingLaneWrites)
{
    Program p = parse(R"(
decl A: ubit<32>[8 bank 2];
decl B: ubit<32>[8];
for (let i: ubit<4> = 0..8) unroll 2 {
  B[0] := A[i];
}
)");
    EXPECT_THROW(check(p), Error);
}

TEST(DahliaChecker, RejectsNonDividingUnroll)
{
    Program p = parse(R"(
decl A: ubit<32>[8 bank 2];
for (let i: ubit<4> = 0..6) unroll 4 {
  A[i] := 1;
}
)");
    EXPECT_THROW(check(p), Error);
}

TEST(DahliaChecker, RejectsUnknownNames)
{
    EXPECT_THROW(check(parse("ghost := 1")), Error);
    EXPECT_THROW(check(parse("decl a: ubit<8>[4];\na[0] := nope")),
                 Error);
}

TEST(DahliaChecker, RejectsBadBankCounts)
{
    EXPECT_THROW(check(parse("decl a: ubit<8>[8 bank 3];\na[0] := 1")),
                 Error);
    EXPECT_THROW(check(parse("decl a: ubit<8>[6 bank 4];\na[0] := 1")),
                 Error);
}

TEST(DahliaLowering, UnrollProducesParallelLanes)
{
    Program p = parse(R"(
decl A: ubit<32>[8 bank 2];
for (let i: ubit<4> = 0..8) unroll 2 {
  A[i] := A[i] + 1;
}
)");
    check(p);
    Program low = lower(p);
    // Banked memory split into two decls.
    ASSERT_EQ(low.decls.size(), 2u);
    EXPECT_EQ(low.decls[0].name, "A_b0");
    EXPECT_EQ(low.decls[1].name, "A_b1");
    EXPECT_EQ(low.decls[0].type.dims[0], 4u);

    // Structure: seq{ let it; while(it < 8){ par{lane0, lane1} --- ... }}.
    ASSERT_EQ(low.body->kind, Stmt::Kind::SeqComp);
    const Stmt &loop = *low.body->stmts[1];
    ASSERT_EQ(loop.kind, Stmt::Kind::While);
    const Stmt &body = *loop.body;
    ASSERT_EQ(body.kind, Stmt::Kind::SeqComp);
    EXPECT_EQ(body.stmts[0]->kind, Stmt::Kind::ParComp);
    EXPECT_EQ(body.stmts[0]->stmts.size(), 2u);
}

TEST(DahliaLowering, BankResolution)
{
    Program p = parse(R"(
decl A: ubit<32>[8 bank 2];
for (let i: ubit<4> = 0..8) unroll 2 {
  A[i] := 1;
}
)");
    check(p);
    Program low = lower(p);
    // Lane 0 writes A_b0, lane 1 writes A_b1 (i = 0 mod 2).
    const Stmt &par = *low.body->stmts[1]->body->stmts[0];
    const Stmt &lane0 = *par.stmts[0];
    const Stmt &lane1 = *par.stmts[1];
    EXPECT_EQ(lane0.lval->name, "A_b0");
    EXPECT_EQ(lane1.lval->name, "A_b1");
}

TEST(DahliaLowering, AffineAnalysis)
{
    Program p = parse(R"(
decl m: ubit<8>[4];
m[0] := 1
)");
    (void)p;
    auto a1 = affineOf(*Expr::bin(BinOp::Add, Expr::var("i"),
                                  Expr::num(3)));
    ASSERT_TRUE(a1.has_value());
    EXPECT_EQ(a1->constant, 3);
    EXPECT_EQ(a1->coeffs.at("i"), 1);

    auto a2 = affineOf(*Expr::bin(
        BinOp::Add,
        Expr::bin(BinOp::Mul, Expr::var("r"), Expr::num(4)),
        Expr::var("q")));
    ASSERT_TRUE(a2.has_value());
    EXPECT_EQ(a2->coeffs.at("r"), 4);

    auto a3 =
        affineOf(*Expr::bin(BinOp::Mul, Expr::var("i"), Expr::var("j")));
    EXPECT_FALSE(a3.has_value());
}

} // namespace
} // namespace calyx::dahlia
