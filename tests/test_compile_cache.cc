/**
 * The content-addressed compile cache and CompileService (ISSUE 9):
 * pipeline-spec normalization (alias vs expansion, exclusions, option
 * order) hashing equal; transitive digest invalidation; and the
 * acceptance gates — a mutated-component request stream whose cached
 * (and parallel-pass) artifacts are byte-identical to cold serial
 * compiles for both the calyx and verilog backends, with a dependency
 * edit invalidating dependents transitively and sparing unrelated
 * components. Plus the LRU/disk-tier mechanics of CompileCache itself.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "cache/compile_cache.h"
#include "emit/backend.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/pipeline.h"
#include "passes/pipeline_spec.h"
#include "support/error.h"
#include "support/hash.h"

namespace calyx {
namespace {

/** A three-level dependency chain (main -> mid -> leaf) plus a
 * component nothing depends on, so a leaf edit must invalidate exactly
 * {leaf, mid, main} and spare `island`. The `@CONST@` markers let
 * tests mint mutated variants of individual components. */
std::string
chainProgram(const std::string &leaf_const,
             const std::string &island_const)
{
    return R"(
component leaf() -> () {
  cells { r = std_reg(8); a = std_add(8); }
  wires {
    group bump {
      a.left = r.out; a.right = 8'd)" +
           leaf_const + R"(;
      r.in = a.out; r.write_en = 1'd1;
      bump[done] = r.done;
    }
  }
  control { bump; }
}
component mid() -> () {
  cells { l = leaf(); t = std_reg(8); }
  wires {
    group call_leaf { l.go = 1'd1; call_leaf[done] = l.done; }
    group grab {
      t.in = 8'd2; t.write_en = 1'd1; grab[done] = t.done;
    }
  }
  control { seq { call_leaf; grab; } }
}
component island() -> () {
  cells { r = std_reg(8); a = std_add(8); }
  wires {
    group bump {
      a.left = r.out; a.right = 8'd)" +
           island_const + R"(;
      r.in = a.out; r.write_en = 1'd1;
      bump[done] = r.done;
    }
  }
  control { bump; }
}
component main() -> () {
  cells { m = mid(); o = island(); }
  wires {
    group call_mid { m.go = 1'd1; call_mid[done] = m.done; }
    group call_island { o.go = 1'd1; call_island[done] = o.done; }
  }
  control { seq { call_mid; call_island; } }
}
)";
}

/** Cold reference: a fresh pipeline + emit with no cache involved. */
std::string
coldCompile(const std::string &src, const std::string &spec,
            const std::string &backend)
{
    Context ctx = Parser::parseProgram(src);
    passes::runPipeline(ctx, spec);
    return emit::BackendRegistry::instance().create(backend)->emitString(
        ctx);
}

TEST(PipelineSpecNormalization, AliasEqualsExpansion)
{
    // "all" and its hand-expanded member list normalize to the same
    // string, so both hash to the same cache key.
    std::string expansion = passes::parsePipelineSpec("all").str();
    EXPECT_EQ(cache::normalizePipelineSpec("all"),
              cache::normalizePipelineSpec(expansion));
    // Aliases really expand: the normalized form names passes, not
    // the alias.
    EXPECT_EQ(cache::normalizePipelineSpec("all").find("all,"),
              std::string::npos);
}

TEST(PipelineSpecNormalization, ExclusionsApply)
{
    std::string with = cache::normalizePipelineSpec("all");
    std::string without =
        cache::normalizePipelineSpec("all,-collapse-control");
    EXPECT_NE(with, without);
    EXPECT_EQ(without.find("collapse-control"), std::string::npos);
    // Excluding then re-adding at the end is a *different* pipeline
    // (position matters) — but excluding twice is idempotent.
    EXPECT_EQ(without, cache::normalizePipelineSpec(
                           "all,-collapse-control,-collapse-control"));
}

TEST(PipelineSpecNormalization, OptionOrderIsCanonical)
{
    // Same options in any order: same normal form, same digest.
    std::string a = cache::normalizePipelineSpec(
        "compile-control[encoding=one-hot,optimize=false]");
    std::string b = cache::normalizePipelineSpec(
        "compile-control[optimize=false,encoding=one-hot]");
    EXPECT_EQ(a, b);
    EXPECT_EQ(contentDigest(a), contentDigest(b));
    // Any option *value* change changes the key.
    std::string c = cache::normalizePipelineSpec(
        "compile-control[optimize=true,encoding=one-hot]");
    EXPECT_NE(a, c);
    // Duplicate keys: the last occurrence wins, matching the order
    // Pass::option calls are applied.
    EXPECT_EQ(cache::normalizePipelineSpec(
                  "compile-control[encoding=binary,encoding=one-hot]"),
              cache::normalizePipelineSpec(
                  "compile-control[encoding=one-hot]"));
    // Unknown pass names still fail loudly with the registry's
    // did-you-mean.
    try {
        cache::normalizePipelineSpec("colapse-control");
        FAIL() << "expected Error";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("collapse-control"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ProgramDigests, TransitiveInvalidation)
{
    Context base = Parser::parseProgram(chainProgram("3", "7"));
    Context edit = Parser::parseProgram(chainProgram("4", "7"));
    cache::ProgramDigests db = cache::digestProgram(base);
    cache::ProgramDigests de = cache::digestProgram(edit);
    ASSERT_EQ(db.transitive.size(), 4u);
    ASSERT_EQ(de.transitive.size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
        const std::string name = db.transitive[i].first.str();
        ASSERT_EQ(name, de.transitive[i].first.str());
        if (name == "island")
            EXPECT_EQ(db.transitive[i].second, de.transitive[i].second);
        else // leaf changed; mid and main depend on it transitively.
            EXPECT_NE(db.transitive[i].second, de.transitive[i].second)
                << name;
    }
    EXPECT_NE(db.program, de.program);
}

TEST(ProgramDigests, WhitespaceInsensitive)
{
    // Digests come from the *printed* canonical text, so reformatting
    // the source does not split cache keys.
    std::string src = chainProgram("3", "7");
    std::string squeezed;
    for (char c : src) // Collapse the indentation runs.
        if (c != ' ' || (squeezed.size() && squeezed.back() != ' '))
            squeezed += c;
    Context a = Parser::parseProgram(src);
    Context b = Parser::parseProgram(squeezed);
    EXPECT_EQ(cache::digestProgram(a).program,
              cache::digestProgram(b).program);
}

TEST(CompileCache, LruEvictionAndDisable)
{
    cache::CompileCache::Config cfg;
    cfg.maxEntries = 2;
    cache::CompileCache cc(cfg);
    cc.put("a", "1");
    cc.put("b", "2");
    cc.put("c", "3"); // Evicts "a", the least recently used.
    EXPECT_FALSE(cc.get("a").has_value());
    EXPECT_EQ(cc.get("b").value_or(""), "2");
    EXPECT_EQ(cc.get("c").value_or(""), "3");
    cache::CompileCache::Stats st = cc.stats();
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.entries, 2u);
    // get() refreshes recency: touch "b", insert "d", "c" goes.
    cc.get("b");
    cc.put("d", "4");
    EXPECT_TRUE(cc.get("b").has_value());
    EXPECT_FALSE(cc.get("c").has_value());

    cache::CompileCache::Config off;
    off.enabled = false;
    cache::CompileCache disabled(off);
    disabled.put("k", "v");
    EXPECT_FALSE(disabled.get("k").has_value());
}

TEST(CompileService, RawTextFastPath)
{
    cache::CompileService svc((cache::CompileCache::Config()));
    cache::CompileRequest req;
    req.source = chainProgram("3", "7");
    req.pipeline = "all";
    cache::CompileResult first = svc.compile(req);
    EXPECT_FALSE(first.artifactFromCache);
    EXPECT_FALSE(first.passInfos.empty());
    cache::CompileResult second = svc.compile(req);
    EXPECT_TRUE(second.rawTextHit);
    EXPECT_TRUE(second.artifactFromCache);
    EXPECT_TRUE(second.passInfos.empty()); // No parse, no passes.
    EXPECT_EQ(second.artifact, first.artifact);
    EXPECT_EQ(svc.counters().rawHits, 1u);

    // Reformatted source misses tier 1 but hits the canonical
    // artifact tier: same digests, same artifact, still no passes.
    cache::CompileRequest spaced = req;
    spaced.source = "\n\n" + req.source + "\n";
    cache::CompileResult third = svc.compile(spaced);
    EXPECT_FALSE(third.rawTextHit);
    EXPECT_TRUE(third.artifactFromCache);
    EXPECT_TRUE(third.passInfos.empty());
    EXPECT_EQ(third.artifact, first.artifact);
    EXPECT_EQ(svc.counters().artifactHits, 1u);
}

TEST(CompileService, MutatedStreamByteIdenticalBothBackends)
{
    // The acceptance gate: a warm service answering a stream of
    // mutated programs emits byte-identical artifacts to a cold serial
    // compile of each variant — for the calyx form *and* the verilog
    // backend.
    for (const std::string backend : {"calyx", "verilog"}) {
        const std::string spec =
            backend == "verilog" ? "all" : "default";
        cache::CompileService svc((cache::CompileCache::Config()));
        for (int v = 0; v < 6; ++v) {
            std::string src = chainProgram(
                std::to_string(3 + (v % 3)), std::to_string(7 + v / 3));
            cache::CompileRequest req;
            req.source = src;
            req.pipeline = spec;
            req.backend = backend;
            cache::CompileResult res = svc.compile(req);
            EXPECT_EQ(res.artifact, coldCompile(src, spec, backend))
                << backend << " variant " << v;
        }
        // The stream revisits constants, so later variants reuse
        // cached components instead of re-running passes on all four.
        EXPECT_GT(svc.counters().componentHits, 0u);
    }
}

TEST(CompileService, DependencyEditInvalidatesTransitively)
{
    cache::CompileService svc((cache::CompileCache::Config()));
    cache::CompileRequest req;
    req.pipeline = "all";
    req.source = chainProgram("3", "7");
    svc.compile(req);
    EXPECT_EQ(svc.counters().componentMisses, 4u);

    // Edit the leaf: main and mid are invalidated through the
    // dependency chain; only the island's cached text is reusable.
    req.source = chainProgram("4", "7");
    cache::CompileResult res = svc.compile(req);
    EXPECT_EQ(res.componentsFromCache, 1u);
    EXPECT_EQ(svc.counters().componentHits, 1u);
    EXPECT_EQ(svc.counters().componentMisses, 7u);
    EXPECT_EQ(res.artifact, coldCompile(req.source, "all", "calyx"));

    // Edit the island: leaf and mid are untouched and reused; main
    // instantiates the island, so it is invalidated along with it.
    req.source = chainProgram("4", "9");
    res = svc.compile(req);
    EXPECT_EQ(res.componentsFromCache, 2u);
    EXPECT_EQ(res.artifact, coldCompile(req.source, "all", "calyx"));
}

TEST(CompileService, ParallelPassesByteIdentical)
{
    // Wavefront-parallel pass execution (threads > 1) must produce the
    // same artifact as a serial compile, byte for byte.
    std::string src = chainProgram("3", "7");
    cache::CompileRequest req;
    req.source = src;
    req.pipeline = "all";
    req.threads = 4;
    cache::CompileService svc((cache::CompileCache::Config()));
    cache::CompileResult res = svc.compile(req);
    EXPECT_EQ(res.artifact, coldCompile(src, "all", "calyx"));

    // And directly through the pass manager, without the cache.
    Context serial = Parser::parseProgram(src);
    passes::runPipeline(serial, "all");
    Context parallel = Parser::parseProgram(src);
    passes::RunOptions opts;
    opts.threads = 4;
    passes::runPipeline(parallel, "all", opts);
    EXPECT_EQ(Printer::toString(parallel), Printer::toString(serial));
}

TEST(CompileService, ParallelRunInfoAggregatesDeterministically)
{
    // PassRunInfo must not depend on the dispatch interleaving: same
    // pass sequence, and per-pass stats deltas equal to a serial run.
    std::string src = chainProgram("3", "7");
    Context a = Parser::parseProgram(src);
    passes::RunOptions sa;
    sa.collectStats = true;
    std::vector<passes::PassRunInfo> serial =
        passes::runPipeline(a, "all", sa);
    Context b = Parser::parseProgram(src);
    passes::RunOptions pa;
    pa.collectStats = true;
    pa.threads = 4;
    std::vector<passes::PassRunInfo> parallel =
        passes::runPipeline(b, "all", pa);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].pass, parallel[i].pass);
        EXPECT_EQ(serial[i].after.cells, parallel[i].after.cells);
        EXPECT_EQ(serial[i].after.groups, parallel[i].after.groups);
        EXPECT_EQ(serial[i].after.controlStatements,
                  parallel[i].after.controlStatements);
    }
}

TEST(CompileService, DiskTierSurvivesRestart)
{
    char tmpl[] = "/tmp/calyx-compile-test-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;

    cache::CompileCache::Config cfg;
    cfg.diskDir = dir;
    std::string artifact;
    {
        cache::CompileService svc(cfg);
        cache::CompileRequest req;
        req.source = chainProgram("3", "7");
        req.pipeline = "all";
        artifact = svc.compile(req).artifact;
    }
    // A fresh service — a "restarted" process — warms from disk: the
    // artifact comes back without running any pass.
    cache::CompileService svc(cfg);
    cache::CompileRequest req;
    req.source = chainProgram("3", "7");
    req.pipeline = "all";
    cache::CompileResult res = svc.compile(req);
    EXPECT_TRUE(res.artifactFromCache);
    EXPECT_TRUE(res.passInfos.empty());
    EXPECT_EQ(res.artifact, artifact);
    EXPECT_GT(svc.cacheStats().diskHits, 0u);

    std::string cmd = "rm -rf " + dir;
    (void)std::system(cmd.c_str());
}

TEST(CompileService, ErrorsDoNotPoisonTheCache)
{
    cache::CompileService svc((cache::CompileCache::Config()));
    cache::CompileRequest bad;
    bad.source = "component main() -> () {"; // Truncated program.
    EXPECT_THROW(svc.compile(bad), Error);
    cache::CompileRequest worse;
    worse.source = chainProgram("3", "7");
    worse.backend = "verilgo"; // Unknown backend, did-you-mean.
    try {
        svc.compile(worse);
        FAIL() << "expected Error";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("verilog"),
                  std::string::npos)
            << e.what();
    }
    // The failed requests left nothing behind; a good compile still
    // runs cold.
    cache::CompileRequest good;
    good.source = chainProgram("3", "7");
    cache::CompileResult res = svc.compile(good);
    EXPECT_FALSE(res.artifactFromCache);
    EXPECT_EQ(res.artifact,
              coldCompile(good.source, "default", "calyx"));
}

} // namespace
} // namespace calyx
