#include <gtest/gtest.h>

#include "frontends/systolic/systolic.h"
#include "helpers.h"
#include "passes/infer_latency.h"
#include "support/error.h"

namespace calyx {
namespace {

using MatrixU64 = std::vector<std::vector<uint64_t>>;

MatrixU64
matmul(const MatrixU64 &a, const MatrixU64 &b)
{
    size_t rows = a.size(), inner = b.size(), cols = b[0].size();
    MatrixU64 c(rows, std::vector<uint64_t>(cols, 0));
    for (size_t i = 0; i < rows; ++i)
        for (size_t j = 0; j < cols; ++j)
            for (size_t k = 0; k < inner; ++k)
                c[i][j] =
                    truncate(c[i][j] + a[i][k] * b[k][j], 32);
    return c;
}

MatrixU64
makeMatrix(size_t rows, size_t cols, uint64_t seed)
{
    MatrixU64 m(rows, std::vector<uint64_t>(cols));
    for (size_t i = 0; i < rows; ++i)
        for (size_t j = 0; j < cols; ++j)
            m[i][j] = (seed + 3 * i + 7 * j) % 23 + 1;
    return m;
}

uint64_t
runArray(int rows, int cols, int inner, bool sensitive,
         const MatrixU64 &a, const MatrixU64 &b, MatrixU64 *result)
{
    Context ctx;
    systolic::Config cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.inner = inner;
    systolic::generate(ctx, cfg);
    passes::CompileOptions options;
    options.sensitive = sensitive;
    passes::compile(ctx, options);

    sim::SimProgram sp(ctx, "main");
    for (int i = 0; i < rows; ++i) {
        auto *l = sp.findModel(systolic::leftMemName(i))->memory();
        for (int k = 0; k < inner; ++k)
            (*l)[k] = a[i][k];
    }
    for (int j = 0; j < cols; ++j) {
        auto *t = sp.findModel(systolic::topMemName(j))->memory();
        for (int k = 0; k < inner; ++k)
            (*t)[k] = b[k][j];
    }
    sim::CycleSim cs(sp);
    uint64_t cycles = cs.run();
    auto *out = sp.findModel(systolic::outMemName)->memory();
    result->assign(rows, std::vector<uint64_t>(cols));
    for (int i = 0; i < rows; ++i)
        for (int j = 0; j < cols; ++j)
            (*result)[i][j] = (*out)[i * cols + j];
    return cycles;
}

class SystolicSize : public ::testing::TestWithParam<int>
{};

TEST_P(SystolicSize, ComputesMatmulBothModes)
{
    int dim = GetParam();
    MatrixU64 a = makeMatrix(dim, dim, 5);
    MatrixU64 b = makeMatrix(dim, dim, 11);
    MatrixU64 expect = matmul(a, b);

    MatrixU64 got;
    uint64_t insensitive = runArray(dim, dim, dim, false, a, b, &got);
    EXPECT_EQ(got, expect) << "insensitive " << dim;

    MatrixU64 got2;
    uint64_t sensitive = runArray(dim, dim, dim, true, a, b, &got2);
    EXPECT_EQ(got2, expect) << "sensitive " << dim;

    // Latency-sensitive compilation must be faster (paper §7.1: 1.9x).
    EXPECT_LT(sensitive, insensitive);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SystolicSize,
                         ::testing::Values(1, 2, 3, 4));

TEST(Systolic, RectangularArray)
{
    MatrixU64 a = makeMatrix(2, 4, 3);
    MatrixU64 b = makeMatrix(4, 3, 9);
    MatrixU64 expect = matmul(a, b);
    MatrixU64 got;
    runArray(2, 3, 4, false, a, b, &got);
    EXPECT_EQ(got, expect);
}

TEST(Systolic, LatencyFullyInferred)
{
    // The generator emits no "static" attributes, yet after
    // InferLatency the whole design is static (paper §6.1).
    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = 2;
    systolic::generate(ctx, cfg);

    for (const auto &g : ctx.component("main").groups())
        EXPECT_EQ(g->staticLatency(), std::nullopt) << g->name();

    passes::PassManager pm;
    pm.add<passes::InferLatency>();
    pm.run(ctx);
    EXPECT_NE(ctx.component("mac_pe").staticLatency(), std::nullopt);
    EXPECT_NE(ctx.component("main").staticLatency(), std::nullopt);
}

TEST(Systolic, DesignStatsMatchPaperScale)
{
    // Paper §7.4: the 8x8 array has 241 cells, 224 groups, and 1,744
    // control statements. Exact equality is not expected from an
    // independent reimplementation; same order of magnitude is.
    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = 8;
    systolic::generate(ctx, cfg);
    auto stats = passes::gatherStats(ctx);
    EXPECT_GE(stats.cells, 150);
    EXPECT_LE(stats.cells, 400);
    EXPECT_GE(stats.groups, 150);
    EXPECT_LE(stats.groups, 400);
    EXPECT_GE(stats.controlStatements, 1000);
    EXPECT_LE(stats.controlStatements, 3000);
}

TEST(Systolic, RejectsBadConfig)
{
    Context ctx;
    systolic::Config cfg;
    cfg.rows = 0;
    EXPECT_THROW(systolic::generate(ctx, cfg), Error);
}

} // namespace
} // namespace calyx
