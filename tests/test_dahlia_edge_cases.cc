#include <gtest/gtest.h>

#include "frontends/dahlia/checker.h"
#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/lowering.h"
#include "frontends/dahlia/parser.h"
#include "support/error.h"
#include "workloads/harness.h"

namespace calyx {
namespace {

void
expectMatchesInterp(const std::string &src,
                    const passes::CompileOptions &options = {})
{
    dahlia::Program prog = dahlia::parse(src);
    workloads::MemState inputs = workloads::makeInputs("edge", prog);
    workloads::MemState golden = workloads::runOnInterp(prog, inputs);
    workloads::MemState hw;
    workloads::runOnHardware(prog, options, inputs, &hw);
    for (const auto &[name, data] : golden)
        EXPECT_EQ(hw.at(name), data) << "memory " << name;
}

TEST(DahliaEdge, EmptyLoopRange)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
for (let i: ubit<3> = 2..2) { a[i] := 99; }
)");
}

TEST(DahliaEdge, SingleIterationLoop)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
for (let i: ubit<3> = 3..4) { a[i] := a[i] + 1; }
)");
}

TEST(DahliaEdge, IfWithoutElse)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[8];
for (let i: ubit<4> = 0..8) {
  if (a[i] >= 7) { a[i] := 0; }
}
)");
}

TEST(DahliaEdge, NestedIfs)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[8];
decl o: ubit<32>[8];
for (let i: ubit<4> = 0..8) {
  if (a[i] > 3) {
    if (a[i] > 9) { o[i] := 2; } else { o[i] := 1; }
  } else {
    o[i] := 0;
  }
}
)");
}

TEST(DahliaEdge, WidthMixing)
{
    // 8-bit memory values combined with a 32-bit accumulator force pad
    // cells; a narrow store forces a slice.
    expectMatchesInterp(R"(
decl small: ubit<8>[4];
decl wide: ubit<32>[4];
decl out8: ubit<8>[4];
for (let i: ubit<3> = 0..4) {
  wide[i] := small[i] * 3 + wide[i];
  ---
  out8[i] := wide[i] + small[i];
}
)");
}

TEST(DahliaEdge, WrapAroundArithmetic)
{
    expectMatchesInterp(R"(
decl a: ubit<8>[4];
for (let i: ubit<3> = 0..4) {
  a[i] := a[i] * 97 + 201;
}
)");
}

TEST(DahliaEdge, SubtractionUnderflowWraps)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
decl o: ubit<32>[4];
for (let i: ubit<3> = 0..4) {
  o[i] := a[i] - 1000;
}
)");
}

TEST(DahliaEdge, DivisionByZeroConvention)
{
    // b contains a zero: all three implementations must agree on the
    // all-ones quotient convention.
    const char *src = R"(
decl a: ubit<32>[4];
decl b: ubit<32>[4];
decl q: ubit<32>[4];
decl r: ubit<32>[4];
b[2] := 0;
---
for (let i: ubit<3> = 0..4) {
  q[i] := a[i] / b[i];
  ---
  r[i] := a[i] % b[i];
}
)";
    expectMatchesInterp(src);
}

TEST(DahliaEdge, ShiftOperators)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
decl o: ubit<32>[4];
for (let i: ubit<3> = 0..4) {
  o[i] := (a[i] << 3) + (a[i] >> 1) + (a[i] << i);
}
)");
}

TEST(DahliaEdge, BitwiseOperators)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[4];
decl b: ubit<32>[4];
decl o: ubit<32>[4];
for (let i: ubit<3> = 0..4) {
  o[i] := (a[i] & b[i]) + (a[i] | b[i]) + (a[i] ^ b[i]);
}
)");
}

TEST(DahliaEdge, LogicalConditionCombination)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[8];
decl o: ubit<32>[8];
for (let i: ubit<4> = 0..8) {
  if (a[i] > 2 && a[i] < 11 || a[i] == 13) {
    o[i] := 1;
  } else {
    o[i] := 0;
  }
}
)");
}

TEST(DahliaEdge, Unroll4WithBank4)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[16 bank 4];
decl b: ubit<32>[16 bank 4];
for (let i: ubit<5> = 0..16) unroll 4 {
  b[i] := a[i] * 2 + 1;
}
)");
}

TEST(DahliaEdge, Unroll4Combine)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[16 bank 4];
decl out: ubit<32>[1];
let acc: ubit<32> = 0;
---
for (let i: ubit<5> = 0..16) unroll 4 {
  let v: ubit<32> = a[i] * a[i];
} combine {
  acc := acc + v;
}
---
out[0] := acc;
)");
}

TEST(DahliaEdge, BankedTwoDimensionalSecondDim)
{
    expectMatchesInterp(R"(
decl A: ubit<32>[4][8 bank 2];
for (let i: ubit<3> = 0..4) {
  for (let j: ubit<4> = 0..8) unroll 2 {
    A[i][j] := A[i][j] + i + j;
  }
}
)");
}

TEST(DahliaEdge, BankedFirstDimension)
{
    expectMatchesInterp(R"(
decl A: ubit<32>[8 bank 2][4];
for (let i: ubit<4> = 0..8) unroll 2 {
  for (let j: ubit<3> = 0..4) {
    A[i][j] := A[i][j] * 2;
  }
}
)");
}

TEST(DahliaEdge, SharedReadOnlyMemoryInParallelArms)
{
    // Both arms read memory `a` (through the two BRAM ports) while
    // writing disjoint outputs: the backend may parallelize.
    const char *src = R"(
decl a: ubit<32>[4];
decl x: ubit<32>[4];
decl y: ubit<32>[4];
for (let i: ubit<3> = 0..4) {
  x[i] := a[i] + 1; y[i] := a[i] + 2
}
)";
    dahlia::Program prog = dahlia::parse(src);
    Context ctx = dahlia::compileDahlia(prog);
    bool has_par = false;
    ctx.component("main").control().walk([&](const Control &c) {
        if (c.kind() == Control::Kind::Par)
            has_par = true;
    });
    EXPECT_TRUE(has_par);
    expectMatchesInterp(src);
}

TEST(DahliaEdge, ThreeArmsSharingOneMemorySerialize)
{
    const char *src = R"(
decl a: ubit<32>[4];
decl x: ubit<32>[4];
decl y: ubit<32>[4];
decl z: ubit<32>[4];
for (let i: ubit<3> = 0..4) {
  x[i] := a[i] + 1; y[i] := a[i] + 2; z[i] := a[i] + 3
}
)";
    dahlia::Program prog = dahlia::parse(src);
    Context ctx = dahlia::compileDahlia(prog);
    bool has_par = false;
    ctx.component("main").control().walk([&](const Control &c) {
        if (c.kind() == Control::Kind::Par)
            has_par = true;
    });
    EXPECT_FALSE(has_par); // only two read ports exist
    expectMatchesInterp(src);
}

TEST(DahliaEdge, ReadAndWriteSameMemoryInOneGroupUsesSecondPort)
{
    // `a[i] := a[i] + 1` can read through port 1 while writing through
    // port 0 in a single group: no materialization register needed.
    dahlia::Program prog = dahlia::parse(R"(
decl a: ubit<32>[4];
for (let i: ubit<3> = 0..4) { a[i] := a[i] + 1; }
)");
    Context ctx = dahlia::compileDahlia(prog);
    int rd_groups = 0;
    for (const auto &g : ctx.component("main").groups()) {
        if (g->name().str().rfind("rd", 0) == 0)
            ++rd_groups;
    }
    EXPECT_EQ(rd_groups, 0);
}

TEST(DahliaEdge, TripleReadOfOneMemoryMaterializes)
{
    expectMatchesInterp(R"(
decl a: ubit<32>[8];
decl o: ubit<32>[8];
for (let i: ubit<4> = 0..4) {
  o[i] := a[i] + a[i + 1] + a[i + 2];
}
)");
}

TEST(DahliaEdge, ConstantFoldingMatches)
{
    expectMatchesInterp(R"(
decl o: ubit<32>[2];
o[0] := 3 * 4 + 100 / 7 - (2 << 3);
---
o[1] := (1000000 * 1000000) + 1;
)");
}

TEST(DahliaEdge, SqrtOfZeroAndLarge)
{
    expectMatchesInterp(R"(
decl o: ubit<32>[3];
o[0] := sqrt(0);
---
o[1] := sqrt(2);
---
o[2] := sqrt(4294967295);
)");
}

TEST(DahliaEdge, CheckerRejectsDoitgenStyleBanking)
{
    // The pattern that makes doitgen non-unrollable: reduce along a
    // banked dimension with a non-unrolled iterator.
    dahlia::Program p = dahlia::parse(R"(
decl A: ubit<32>[4][4 bank 2];
decl s: ubit<32>[4 bank 2];
for (let p: ubit<3> = 0..4) unroll 2 {
  let acc: ubit<32> = 0;
  ---
  for (let k: ubit<3> = 0..4) {
    acc := acc + A[k][k];
  }
  ---
  s[p] := acc;
}
)");
    dahlia::check(p);
    // The checker passes (the banked access does not involve the
    // unrolled iterator) but bank resolution must fail in lowering.
    EXPECT_THROW(dahlia::lower(p), Error);
}

TEST(DahliaEdge, AllPassesOnBankedKernel)
{
    passes::CompileOptions opts;
    opts.resourceSharing = true;
    opts.registerSharing = true;
    opts.sensitive = true;
    expectMatchesInterp(R"(
decl a: ubit<32>[8 bank 2];
decl b: ubit<32>[8 bank 2];
decl out: ubit<32>[1];
let acc: ubit<32> = 0;
---
for (let i: ubit<4> = 0..8) unroll 2 {
  let v: ubit<32> = a[i] * b[i];
} combine {
  acc := acc + v;
}
---
out[0] := acc;
)",
                        opts);
}

} // namespace
} // namespace calyx
