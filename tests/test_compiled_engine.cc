/**
 * Compiled-engine unit tests (ISSUE 6): the cppsim backend and the JIT
 * driver behind `--sim-engine=compiled`. Covers engine-name parsing
 * with did-you-mean, backend registration, end-to-end equivalence on
 * the canonical counter program, the content-addressed disk cache
 * (second load must not recompile or add files), rejection of forces
 * on computed ports, and rejection of unlowered programs.
 *
 * Everything that invokes the host toolchain is skipped — not failed —
 * when compiledEngineUnavailableReason() reports no compiler.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <unistd.h>

#include "emit/backend.h"
#include "emit/cppsim.h"
#include "helpers.h"
#include "ir/builder.h"
#include "sim/compiled.h"
#include "sim/cycle_sim.h"
#include "sim/env.h"
#include "support/error.h"

namespace calyx {
namespace {

namespace fs = std::filesystem;

#define SKIP_WITHOUT_TOOLCHAIN()                                          \
    do {                                                                  \
        std::string reason = sim::compiledEngineUnavailableReason();      \
        if (!reason.empty())                                              \
            GTEST_SKIP() << reason;                                       \
    } while (0)

/** Point $CALYX_CPPSIM_CACHE at a fresh directory for one test. */
class ScopedCacheDir
{
  public:
    ScopedCacheDir()
    {
        const char *old = std::getenv("CALYX_CPPSIM_CACHE");
        hadOld = old != nullptr;
        if (hadOld)
            oldVal = old;
        dir = (fs::temp_directory_path() /
               ("calyx-cppsim-test-" + std::to_string(::getpid())))
                  .string();
        fs::remove_all(dir);
        ::setenv("CALYX_CPPSIM_CACHE", dir.c_str(), 1);
    }

    ~ScopedCacheDir()
    {
        if (hadOld)
            ::setenv("CALYX_CPPSIM_CACHE", oldVal.c_str(), 1);
        else
            ::unsetenv("CALYX_CPPSIM_CACHE");
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    const std::string &path() const { return dir; }

    size_t
    entryCount() const
    {
        size_t n = 0;
        std::error_code ec;
        for (auto it = fs::directory_iterator(dir, ec);
             !ec && it != fs::directory_iterator(); ++it)
            ++n;
        return n;
    }

  private:
    std::string dir, oldVal;
    bool hadOld = false;
};

TEST(CompiledEngine, ParseEngineDidYouMean)
{
    EXPECT_EQ(sim::parseEngine("compiled"), sim::Engine::Compiled);
    EXPECT_EQ(sim::parseEngine("levelized"), sim::Engine::Levelized);
    try {
        sim::parseEngine("levelised");
        FAIL() << "unknown engine name was accepted";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("levelized"), std::string::npos)
            << "no did-you-mean suggestion: " << msg;
    }
    // The registry names every engine exactly once.
    std::vector<std::string> names = sim::engineNames();
    EXPECT_EQ(names.size(), sim::engineInfos().size());
    for (const std::string &n : names)
        EXPECT_EQ(sim::engineName(sim::parseEngine(n)), n);
}

TEST(CompiledEngine, BackendRegistered)
{
    auto &reg = emit::BackendRegistry::instance();
    ASSERT_TRUE(reg.has("cppsim"));
    const auto *entry = reg.find("cppsim");
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->requiresLowered);
    EXPECT_EQ(entry->fileExtension, ".cc");

    // Emitting a lowered program produces the C ABI the driver loads.
    Context ctx = testing::counterProgram(3, 2);
    passes::runPipeline(ctx, "all");
    std::string src = reg.create("cppsim")->emitString(ctx);
    for (const char *sym :
         {"cppsim_abi", "cppsim_new", "cppsim_bind", "cppsim_reset",
          "cppsim_eval", "cppsim_clk", "cppsim_error"})
        EXPECT_NE(src.find(sym), std::string::npos)
            << "generated module misses " << sym;
}

TEST(CompiledEngine, RejectsUnloweredProgram)
{
    // Programs that still have groups and control cannot be compiled;
    // the backend names the problem instead of emitting garbage.
    Context ctx = testing::counterProgram(3, 2);
    std::ostringstream os;
    sim::SimProgram sp(ctx, "main");
    EXPECT_THROW(emit::emitCppSim(sp, os), Error);
}

TEST(CompiledEngine, CounterMatchesInterpretedEngines)
{
    SKIP_WITHOUT_TOOLCHAIN();
    ScopedCacheDir cache;

    Context ctx = testing::counterProgram(5, 3);
    passes::runPipeline(ctx, "all");

    uint64_t cycles[2], regs[2];
    int i = 0;
    for (sim::Engine engine :
         {sim::Engine::Levelized, sim::Engine::Compiled}) {
        sim::SimProgram sp(ctx, "main");
        sim::CycleSim cs(sp, engine);
        cycles[i] = cs.run();
        regs[i] = *sp.findModel("x")->registerValue();
        ++i;
    }
    EXPECT_EQ(regs[0], 15u);
    EXPECT_EQ(regs[1], 15u);
    EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(CompiledEngine, DiskCacheSkipsRecompilation)
{
    SKIP_WITHOUT_TOOLCHAIN();
    ScopedCacheDir cache;

    Context ctx = testing::counterProgram(4, 2);
    passes::runPipeline(ctx, "all");

    std::string so_path;
    size_t entries_after_first;
    {
        sim::SimProgram sp(ctx, "main");
        auto mod = sp.compiledModule();
        ASSERT_NE(mod, nullptr);
        EXPECT_FALSE(mod->fromCache()) << "first load found a stale cache";
        so_path = mod->objectPath();
        EXPECT_TRUE(fs::exists(so_path));
        entries_after_first = cache.entryCount();
    } // Release the module so the process-wide registry entry expires.

    {
        sim::SimProgram sp(ctx, "main");
        auto mod = sp.compiledModule();
        ASSERT_NE(mod, nullptr);
        EXPECT_TRUE(mod->fromCache()) << "second load recompiled";
        EXPECT_EQ(mod->objectPath(), so_path);
        // A cache hit must not leave new files behind (no temporary
        // sources, no duplicate objects).
        EXPECT_EQ(cache.entryCount(), entries_after_first);

        // The module still runs from cache.
        sim::CycleSim cs(sp, sim::Engine::Compiled);
        cs.run();
        EXPECT_EQ(*sp.findModel("x")->registerValue(), 8u);
    }
}

TEST(CompiledEngine, SharedModuleAcrossStates)
{
    SKIP_WITHOUT_TOOLCHAIN();
    ScopedCacheDir cache;

    // Two SimStates over one SimProgram share a single compiled module
    // (one codegen, one dlopen) but keep independent port values.
    Context ctx = testing::counterProgram(3, 1);
    passes::runPipeline(ctx, "all");
    sim::SimProgram sp(ctx, "main");

    sim::CycleSim a(sp, sim::Engine::Compiled);
    uint64_t cycles_a = a.run();
    sim::CycleSim b(sp, sim::Engine::Compiled);
    uint64_t cycles_b = b.run();
    EXPECT_EQ(cycles_a, cycles_b);
    EXPECT_EQ(*sp.findModel("x")->registerValue(), 3u);
}

TEST(CompiledEngine, RejectsForceOnComputedPort)
{
    SKIP_WITHOUT_TOOLCHAIN();
    ScopedCacheDir cache;

    // The generated eval() owns every driven port; forcing one would
    // silently diverge from the interpreted engines, so it is fatal
    // and names the port.
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("w", "std_wire", {8}, ctx);
    comp.continuousAssignments().emplace_back(cellPort("w", "in"),
                                              constant(9, 8));

    sim::SimProgram sp(ctx, "main");
    sim::SimState st(sp, sim::Engine::Compiled);
    st.reset();
    st.beginCycle();
    st.activate(sp.root().continuous);
    st.force(sp.portId(Symbol("w.in")), 7);
    try {
        st.comb();
        FAIL() << "force on a computed port was not rejected";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("w.in"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace calyx
