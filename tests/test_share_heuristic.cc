#include <gtest/gtest.h>

#include "estimate/area.h"
#include "helpers.h"
#include "passes/resource_sharing.h"

namespace calyx {
namespace {

using passes::ResourceSharing;

/** Two sequential groups using separate adders of the given width. */
Context
twoAdderProgram(Width width)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("r0", width);
    b.reg("r1", width);
    b.cell("a0", "std_add", {width});
    b.cell("a1", "std_add", {width});
    auto incr = [&](const std::string &name, const std::string &reg,
                    const std::string &adder) {
        Group &g = b.group(name);
        g.add(cellPort(adder, "left"), cellPort(reg, "out"));
        g.add(cellPort(adder, "right"), constant(1, width));
        g.add(cellPort(reg, "in"), cellPort(adder, "out"));
        g.add(cellPort(reg, "write_en"), constant(1, 1));
        g.add(g.doneHole(), cellPort(reg, "done"));
    };
    incr("g0", "r0", "a0");
    incr("g1", "r1", "a1");
    std::vector<ControlPtr> s;
    s.push_back(ComponentBuilder::enable("g0"));
    s.push_back(ComponentBuilder::enable("g1"));
    ctx.component("main").setControl(ComponentBuilder::seq(std::move(s)));
    return ctx;
}

TEST(ShareHeuristic, ZeroThresholdSharesEverything)
{
    Context ctx = twoAdderProgram(4);
    ResourceSharing pass(0);
    pass.runOnContext(ctx);
    EXPECT_EQ(pass.merged(), 1);
}

TEST(ShareHeuristic, ThresholdSkipsNarrowUnits)
{
    Context ctx = twoAdderProgram(4);
    ResourceSharing pass(16);
    pass.runOnContext(ctx);
    EXPECT_EQ(pass.merged(), 0);
}

TEST(ShareHeuristic, ThresholdStillSharesWideUnits)
{
    Context ctx = twoAdderProgram(32);
    ResourceSharing pass(16);
    pass.runOnContext(ctx);
    EXPECT_EQ(pass.merged(), 1);
}

TEST(ShareHeuristic, PipelineOptionPreservesSemantics)
{
    passes::CompileOptions opts;
    opts.resourceSharing = true;
    opts.resourceSharingMinWidth = 16;
    Context ctx = twoAdderProgram(8);
    EXPECT_EQ(testing::compiledReg(ctx, "r0", opts), 1u);
    Context ctx2 = twoAdderProgram(8);
    EXPECT_EQ(testing::compiledReg(ctx2, "r1", opts), 1u);
}

TEST(ShareHeuristic, ThresholdNeverIncreasesLutsVsFullSharing)
{
    // The point of the heuristic: on a design full of narrow adders,
    // thresholded sharing should use no more LUTs than full sharing.
    auto luts = [](Width threshold) {
        Context ctx = twoAdderProgram(4);
        passes::CompileOptions opts;
        opts.resourceSharing = true;
        opts.resourceSharingMinWidth = threshold;
        passes::compile(ctx, opts);
        estimate::AreaEstimator est(ctx);
        return est.estimateProgram().luts;
    };
    EXPECT_LE(luts(16), luts(0));
}

} // namespace
} // namespace calyx
