#include <gtest/gtest.h>

#include "ir/builder.h"
#include "sim/env.h"
#include "sim/models.h"
#include "support/error.h"

namespace calyx {
namespace {

using sim::SimProgram;
using sim::SimState;

/** Fixture driving a single primitive through continuous assignments. */
class ModelTest : public ::testing::Test
{
  protected:
    Context ctx;
    Component *comp = nullptr;

    void
    make(const std::string &type, const std::vector<uint64_t> &params)
    {
        comp = &ctx.addComponent("main");
        comp->addCell("c", type, params, ctx);
    }

    /** Run one cycle with the given port forces; returns the state. */
    void
    step(SimState &st, const std::vector<std::pair<std::string, uint64_t>>
                           &forces)
    {
        st.beginCycle();
        for (const auto &[port, value] : forces)
            st.force(st.program().portId(port), value);
        st.comb();
        st.clock();
    }
};

TEST_F(ModelTest, RegisterTiming)
{
    make("std_reg", {8});
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();

    // Cycle 1: write 42.
    step(st, {{"c.in", 42}, {"c.write_en", 1}});
    // Cycle 2: done pulses exactly one cycle after the write.
    st.beginCycle();
    st.comb();
    EXPECT_EQ(st.value("c.out"), 42u);
    EXPECT_EQ(st.value("c.done"), 1u);
    st.clock();
    // Cycle 3: done drops, value persists.
    st.beginCycle();
    st.comb();
    EXPECT_EQ(st.value("c.out"), 42u);
    EXPECT_EQ(st.value("c.done"), 0u);
}

TEST_F(ModelTest, RegisterWidthMasking)
{
    make("std_reg", {4});
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    step(st, {{"c.in", 0x1F}, {"c.write_en", 1}});
    st.beginCycle();
    st.comb();
    EXPECT_EQ(st.value("c.out"), 0xFu);
}

TEST_F(ModelTest, Adder)
{
    make("std_add", {8});
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    st.beginCycle();
    st.force(sp.portId("c.left"), 200);
    st.force(sp.portId("c.right"), 100);
    st.comb();
    EXPECT_EQ(st.value("c.out"), 44u); // 300 mod 256
}

TEST_F(ModelTest, Comparators)
{
    make("std_lt", {8});
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    st.beginCycle();
    st.force(sp.portId("c.left"), 3);
    st.force(sp.portId("c.right"), 7);
    st.comb();
    EXPECT_EQ(st.value("c.out"), 1u);
}

TEST_F(ModelTest, MemoryReadWrite)
{
    make("std_mem_d1", {16, 8, 3});
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    // Write 99 to address 5.
    step(st, {{"c.addr0", 5}, {"c.write_data", 99}, {"c.write_en", 1}});
    // Combinational read at the same address; done pulses.
    st.beginCycle();
    st.force(sp.portId("c.addr0"), 5);
    st.comb();
    EXPECT_EQ(st.value("c.read_data"), 99u);
    EXPECT_EQ(st.value("c.done"), 1u);
    st.clock();

    auto *mem = sp.findModel("c")->memory();
    ASSERT_NE(mem, nullptr);
    EXPECT_EQ((*mem)[5], 99u);
}

TEST_F(ModelTest, Memory2D)
{
    make("std_mem_d2", {8, 3, 4, 2, 2});
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    step(st, {{"c.addr0", 2},
              {"c.addr1", 3},
              {"c.write_data", 7},
              {"c.write_en", 1}});
    auto *mem = sp.findModel("c")->memory();
    EXPECT_EQ((*mem)[2 * 4 + 3], 7u);
}

TEST_F(ModelTest, MultiplierLatency)
{
    make("std_mult_pipe", {16});
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    // Assert go with operands during cycle 1 only.
    step(st, {{"c.left", 6}, {"c.right", 7}, {"c.go", 1}});
    // Done must pulse exactly at cycle 1 + multLatency.
    for (int cycle = 2; cycle <= multLatency + 2; ++cycle) {
        st.beginCycle();
        st.comb();
        bool expect_done = cycle == multLatency + 1;
        EXPECT_EQ(st.value("c.done"), expect_done ? 1u : 0u)
            << "cycle " << cycle;
        if (expect_done) {
            EXPECT_EQ(st.value("c.out"), 42u);
        }
        st.clock();
    }
    // Result persists after done.
    st.beginCycle();
    st.comb();
    EXPECT_EQ(st.value("c.out"), 42u);
}

TEST_F(ModelTest, DividerQuotientRemainder)
{
    make("std_div_pipe", {16});
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    step(st, {{"c.left", 47}, {"c.right", 5}, {"c.go", 1}});
    for (int cycle = 2; cycle <= divLatency; ++cycle) {
        st.beginCycle();
        st.comb();
        st.clock();
    }
    st.beginCycle();
    st.comb();
    EXPECT_EQ(st.value("c.done"), 1u);
    EXPECT_EQ(st.value("c.out_quotient"), 9u);
    EXPECT_EQ(st.value("c.out_remainder"), 2u);
}

TEST_F(ModelTest, DivideByZeroConvention)
{
    make("std_div_pipe", {8});
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    step(st, {{"c.left", 13}, {"c.right", 0}, {"c.go", 1}});
    for (int cycle = 2; cycle <= divLatency; ++cycle) {
        st.beginCycle();
        st.comb();
        st.clock();
    }
    st.beginCycle();
    st.comb();
    EXPECT_EQ(st.value("c.out_quotient"), 255u);
    EXPECT_EQ(st.value("c.out_remainder"), 13u);
}

TEST_F(ModelTest, SqrtDataDependentLatency)
{
    make("std_sqrt", {32});
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    step(st, {{"c.in", 144}, {"c.go", 1}});
    int cycles_until_done = 0;
    for (int i = 0; i < 40; ++i) {
        st.beginCycle();
        st.comb();
        ++cycles_until_done;
        if (st.value("c.done")) {
            EXPECT_EQ(st.value("c.out"), 12u);
            break;
        }
        st.clock();
    }
    EXPECT_GT(cycles_until_done, 1);
    EXPECT_LT(cycles_until_done, 40);
}

TEST(Isqrt, Values)
{
    EXPECT_EQ(sim::isqrt(0), 0u);
    EXPECT_EQ(sim::isqrt(1), 1u);
    EXPECT_EQ(sim::isqrt(3), 1u);
    EXPECT_EQ(sim::isqrt(4), 2u);
    EXPECT_EQ(sim::isqrt(99), 9u);
    EXPECT_EQ(sim::isqrt(100), 10u);
    EXPECT_EQ(sim::isqrt(0xFFFFFFFFull), 65535u);
}

TEST(SimEngine, MultiDriverDetection)
{
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("r", "std_reg", {8}, ctx);
    comp.continuousAssignments().emplace_back(cellPort("r", "in"),
                                              constant(1, 8));
    comp.continuousAssignments().emplace_back(cellPort("r", "in"),
                                              constant(2, 8));
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    st.beginCycle();
    st.activate(sp.root().continuous);
    EXPECT_THROW(st.comb(), Error);
}

TEST(SimEngine, CombinationalLoopDetection)
{
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("n", "std_not", {1}, ctx);
    // n.in = n.out: a ring oscillator that never settles.
    comp.continuousAssignments().emplace_back(cellPort("n", "in"),
                                              cellPort("n", "out"));
    SimProgram sp(ctx, "main");
    SimState st(sp);
    st.reset();
    st.beginCycle();
    st.activate(sp.root().continuous);
    EXPECT_THROW(st.comb(), Error);
}

} // namespace
} // namespace calyx
