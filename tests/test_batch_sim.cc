/**
 * Batched lane-parallel simulation (ISSUE 8): a batch of N stimuli run
 * through sim::BatchRunner must be bit-identical — cycle counts,
 * register state, memory images, per lane — to N scalar CycleSim runs,
 * on both the levelized and compiled engines, including batches whose
 * lanes take divergent control paths (a while loop bounded by a value
 * loaded from memory) and batches cut into tiles with a padded tail.
 * Also covers the work-stealing pool the tiles are spread over, and
 * the construction-time rejections (groups, the Jacobi oracle).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "helpers.h"
#include "ir/parser.h"
#include "sim/batch.h"
#include "sim/compiled.h"
#include "sim/cycle_sim.h"
#include "support/pool.h"
#include "support/error.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

namespace calyx {
namespace {

/** Engines batching supports in this environment. */
std::vector<sim::Engine>
batchEngines()
{
    std::vector<sim::Engine> out{sim::Engine::Levelized};
    if (sim::compiledEngineUnavailableReason().empty())
        out.push_back(sim::Engine::Compiled);
    return out;
}

/** One scalar run's observable outcome, in BatchRunner slot order. */
struct ScalarRef
{
    uint64_t cycles = 0;
    std::vector<uint64_t> regs;
    std::vector<std::vector<uint64_t>> mems;
};

ScalarRef
runScalar(const Context &ctx, const sim::Stimulus &stim, sim::Engine engine)
{
    sim::SimProgram sp(ctx, ctx.entrypoint());
    for (const auto &[path, data] : stim.mems) {
        std::vector<uint64_t> *mem = sp.findModel(path)->memory();
        EXPECT_NE(mem, nullptr) << path;
        std::copy(data.begin(), data.end(), mem->begin());
    }
    sim::CycleSim cs(sp, engine);
    ScalarRef r;
    r.cycles = cs.run();
    for (const auto &m : sp.models()) {
        if (auto rv = m->registerValue())
            r.regs.push_back(*rv);
        else if (const std::vector<uint64_t> *mm = m->memory())
            r.mems.push_back(*mm);
    }
    return r;
}

void
expectBatchMatchesScalar(const Context &ctx,
                         const std::vector<sim::Stimulus> &batch,
                         const sim::BatchOptions &opts,
                         const std::string &label)
{
    sim::SimProgram sp(ctx, ctx.entrypoint());
    sim::BatchRunner runner(sp, opts);
    auto results = runner.run(batch);
    ASSERT_EQ(results.size(), batch.size()) << label;
    for (size_t l = 0; l < batch.size(); ++l) {
        ScalarRef ref = runScalar(ctx, batch[l], opts.engine);
        EXPECT_EQ(ref.cycles, results[l].cycles)
            << label << ": cycle count diverges in lane " << l << " ("
            << sim::engineName(opts.engine) << ")";
        EXPECT_EQ(ref.regs, results[l].regs)
            << label << ": register state diverges in lane " << l << " ("
            << sim::engineName(opts.engine) << ")";
        EXPECT_EQ(ref.mems, results[l].mems)
            << label << ": memory state diverges in lane " << l << " ("
            << sim::engineName(opts.engine) << ")";
    }
}

/**
 * While loop whose trip count is loaded combinationally from a 1-entry
 * memory in the condition group: per-lane stimuli drive genuinely
 * divergent control — different iteration counts, cycle counts, and
 * final state per lane.
 */
const char *kDataBoundedLoop = R"(
component main() -> () {
  cells {
    bound = std_mem_d1(8, 1, 1);
    out = std_mem_d1(32, 1, 1);
    x = std_reg(32);
    i = std_reg(8);
    lt = std_lt(8);
    addx = std_add(32);
    addi = std_add(8);
  }
  wires {
    group cond {
      bound.addr0 = 1'd0;
      lt.left = i.out;
      lt.right = bound.read_data;
      cond[done] = 1'd1;
    }
    group bump_x {
      addx.left = x.out; addx.right = 32'd3;
      x.in = addx.out; x.write_en = 1'd1;
      bump_x[done] = x.done;
    }
    group bump_i {
      addi.left = i.out; addi.right = 8'd1;
      i.in = addi.out; i.write_en = 1'd1;
      bump_i[done] = i.done;
    }
    group store {
      out.addr0 = 1'd0;
      out.write_data = x.out; out.write_en = 1'd1;
      store[done] = out.done;
    }
  }
  control {
    seq {
      while lt.out with cond { seq { bump_x; bump_i; } }
      store;
    }
  }
}
)";

TEST(BatchSim, Batch64MatchesScalarOnExamples)
{
    namespace fs = std::filesystem;
    int found = 0;
    for (const auto &entry : fs::directory_iterator(CALYX_EXAMPLES_DIR)) {
        if (entry.path().extension() != ".futil")
            continue;
        ++found;
        std::ifstream in(entry.path());
        ASSERT_TRUE(in) << entry.path();
        std::stringstream buffer;
        buffer << in.rdbuf();
        Context ctx = Parser::parseProgram(buffer.str());
        passes::runPipeline(ctx, "all");
        // 64 lanes (four default-width tiles) with default-zero
        // stimuli: every lane must retire exactly like one scalar run.
        std::vector<sim::Stimulus> batch(64);
        for (sim::Engine engine : batchEngines()) {
            sim::BatchOptions opts;
            opts.engine = engine;
            expectBatchMatchesScalar(
                ctx, batch, opts, entry.path().filename().string());
        }
    }
    EXPECT_GE(found, 2) << "expected at least two examples/*.futil";
}

TEST(BatchSim, DivergentControlPathsPerLane)
{
    Context ctx = Parser::parseProgram(kDataBoundedLoop);
    passes::runPipeline(ctx, "all");
    // Divergent trip counts, deliberately out of order, including the
    // zero-trip edge and lanes that straddle tile boundaries.
    std::vector<uint64_t> bounds = {5, 0, 13, 1, 7, 2, 9, 0, 4, 11};
    std::vector<sim::Stimulus> batch;
    for (uint64_t b : bounds) {
        sim::Stimulus s;
        s.mems.emplace_back("bound", std::vector<uint64_t>{b});
        batch.push_back(std::move(s));
    }
    for (sim::Engine engine : batchEngines()) {
        sim::BatchOptions opts;
        opts.engine = engine;
        opts.laneTile = 4; // 10 lanes -> tiles of 4, 4, and a 2-lane tail.
        opts.threads = 3;
        expectBatchMatchesScalar(ctx, batch, opts, "data-bounded loop");
    }

    // Sanity: the lanes really did diverge (distinct cycle counts).
    sim::SimProgram sp(ctx, ctx.entrypoint());
    sim::BatchOptions opts;
    opts.engine = sim::Engine::Levelized;
    auto results = sim::runBatch(sp, batch, opts);
    EXPECT_NE(results[0].cycles, results[1].cycles);
    EXPECT_NE(results[0].cycles, results[2].cycles);
    EXPECT_EQ(results[1].cycles, results[7].cycles); // Both zero-trip.
}

TEST(BatchSim, PolybenchDivergentDataPerLane)
{
    const workloads::Kernel &k = workloads::kernel("gemm");
    dahlia::Program prog = dahlia::parse(k.source);
    Context ctx = dahlia::compileDahlia(prog);
    passes::runPipeline(ctx, "all");

    workloads::MemState base = workloads::makeInputs("gemm", prog);
    std::vector<sim::Stimulus> batch;
    for (uint64_t lane = 0; lane < 6; ++lane) {
        workloads::MemState inputs = base;
        for (auto &[name, data] : inputs)
            for (size_t i = 0; i < data.size(); ++i)
                data[i] += lane * (i % 7);
        batch.push_back(workloads::makeStimulus(prog, inputs));
    }
    for (sim::Engine engine : batchEngines()) {
        sim::BatchOptions opts;
        opts.engine = engine;
        opts.laneTile = 4; // Padded 2-lane tail tile.
        opts.threads = 2;
        expectBatchMatchesScalar(ctx, batch, opts, "gemm");
    }
}

TEST(BatchSim, ResidentRunnerReusesOneModule)
{
    if (!sim::compiledEngineUnavailableReason().empty())
        GTEST_SKIP() << sim::compiledEngineUnavailableReason();
    Context ctx = Parser::parseProgram(kDataBoundedLoop);
    passes::runPipeline(ctx, "all");
    sim::SimProgram sp(ctx, ctx.entrypoint());
    sim::BatchOptions opts;
    opts.engine = sim::Engine::Compiled;
    opts.laneTile = 8;
    sim::BatchRunner runner(sp, opts);
    std::vector<sim::Stimulus> batch(8);
    for (uint64_t b = 0; b < 8; ++b)
        batch[b].mems.emplace_back("bound", std::vector<uint64_t>{b});
    for (int round = 0; round < 5; ++round) {
        auto results = runner.run(batch);
        for (uint64_t b = 1; b < 8; ++b)
            EXPECT_EQ(results[b].regs[0], 3 * b)
                << "round " << round << " lane " << b;
    }
    // The JIT module is resident: one load serves every batch.
    EXPECT_EQ(runner.moduleLoads(), 1u);
}

TEST(BatchSim, RejectsJacobiAndGroups)
{
    Context lowered = Parser::parseProgram(kDataBoundedLoop);
    passes::runPipeline(lowered, "all");
    sim::SimProgram sp(lowered, lowered.entrypoint());
    sim::BatchOptions opts;
    opts.engine = sim::Engine::Jacobi;
    try {
        sim::BatchRunner runner(sp, opts);
        FAIL() << "batched runner accepted the jacobi oracle";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("jacobi"), std::string::npos)
            << e.what();
    }

    Context grouped = Parser::parseProgram(kDataBoundedLoop);
    sim::SimProgram spg(grouped, grouped.entrypoint());
    sim::BatchOptions lopts;
    lopts.engine = sim::Engine::Levelized;
    try {
        sim::BatchRunner runner(spg, lopts);
        FAIL() << "batched runner accepted a program with groups";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("lowered"), std::string::npos)
            << e.what();
    }
}

TEST(BatchSim, RejectsUnknownStimulusMemory)
{
    Context ctx = Parser::parseProgram(kDataBoundedLoop);
    passes::runPipeline(ctx, "all");
    sim::SimProgram sp(ctx, ctx.entrypoint());
    sim::BatchOptions opts;
    opts.engine = sim::Engine::Levelized;
    std::vector<sim::Stimulus> batch(1);
    batch[0].mems.emplace_back("no_such_mem", std::vector<uint64_t>{1});
    try {
        sim::runBatch(sp, batch, opts);
        FAIL() << "unknown stimulus memory was not rejected";
    } catch (const Error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no_such_mem"), std::string::npos) << msg;
        EXPECT_NE(msg.find("bound"), std::string::npos)
            << "diagnostic should list the known memories: " << msg;
    }
}

TEST(WorkPool, ParallelForCoversEveryIndexOnce)
{
    const size_t n = 10'000;
    std::vector<std::atomic<uint32_t>> hits(n);
    for (auto &h : hits)
        h.store(0);
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        for (auto &h : hits)
            h.store(0);
        WorkPool::global().parallelFor(n, threads, [&](size_t i) {
            hits[i].fetch_add(1);
        });
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1u)
                << "index " << i << " with " << threads << " threads";
    }
}

TEST(WorkPool, PropagatesFirstException)
{
    try {
        WorkPool::global().parallelFor(64, 4, [&](size_t i) {
            if (i == 13)
                fatal("boom at 13");
        });
        FAIL() << "exception was swallowed by the pool";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    }
    // The pool stays usable after a failed job.
    std::atomic<size_t> count{0};
    WorkPool::global().parallelFor(32, 4,
                                        [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 32u);
}

} // namespace
} // namespace calyx
