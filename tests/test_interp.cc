#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"
#include "sim/interp.h"
#include "support/error.h"

namespace calyx {
namespace {

using testing::counterProgram;
using testing::interpReg;

TEST(Interp, SequentialWrites)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.regWriteGroup("one", "x", constant(1, 8));
    b.regWriteGroup("two", "x", constant(2, 8));
    std::vector<ControlPtr> stmts;
    stmts.push_back(ComponentBuilder::enable("one"));
    stmts.push_back(ComponentBuilder::enable("two"));
    b.component().setControl(ComponentBuilder::seq(std::move(stmts)));

    uint64_t cycles = 0;
    EXPECT_EQ(interpReg(ctx, "x", &cycles), 2u);
    // Each register-write group occupies two cycles (write + done).
    EXPECT_EQ(cycles, 4u);
}

TEST(Interp, ParallelWritesToDistinctRegisters)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    b.regWriteGroup("wx", "x", constant(5, 8));
    b.regWriteGroup("wy", "y", constant(6, 8));
    std::vector<ControlPtr> stmts;
    stmts.push_back(ComponentBuilder::enable("wx"));
    stmts.push_back(ComponentBuilder::enable("wy"));
    b.component().setControl(ComponentBuilder::par(std::move(stmts)));

    sim::SimProgram sp(ctx, "main");
    sim::Interp interp(sp);
    uint64_t cycles = interp.run();
    EXPECT_EQ(*sp.findModel("x")->registerValue(), 5u);
    EXPECT_EQ(*sp.findModel("y")->registerValue(), 6u);
    // Parallel groups share cycles.
    EXPECT_EQ(cycles, 2u);
}

TEST(Interp, ParallelConflictIsAnError)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.regWriteGroup("w1", "x", constant(1, 8));
    b.regWriteGroup("w2", "x", constant(2, 8));
    std::vector<ControlPtr> stmts;
    stmts.push_back(ComponentBuilder::enable("w1"));
    stmts.push_back(ComponentBuilder::enable("w2"));
    b.component().setControl(ComponentBuilder::par(std::move(stmts)));

    sim::SimProgram sp(ctx, "main");
    sim::Interp interp(sp);
    EXPECT_THROW(interp.run(), Error);
}

TEST(Interp, WhileLoopAccumulates)
{
    Context ctx = counterProgram(5, 3);
    EXPECT_EQ(interpReg(ctx, "x"), 15u);
}

TEST(Interp, ZeroTripLoop)
{
    Context ctx = counterProgram(0, 3);
    EXPECT_EQ(interpReg(ctx, "x"), 0u);
}

TEST(Interp, IfTakesCorrectBranch)
{
    for (uint64_t flag : {0, 1}) {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("f", 1);
        b.reg("x", 8);
        b.regWriteGroup("set_f", "f", constant(flag, 1));
        b.regWriteGroup("then_g", "x", constant(10, 8));
        b.regWriteGroup("else_g", "x", constant(20, 8));
        std::vector<ControlPtr> stmts;
        stmts.push_back(ComponentBuilder::enable("set_f"));
        stmts.push_back(ComponentBuilder::ifStmt(
            cellPort("f", "out"), "",
            ComponentBuilder::enable("then_g"),
            ComponentBuilder::enable("else_g")));
        b.component().setControl(
            ComponentBuilder::seq(std::move(stmts)));
        EXPECT_EQ(interpReg(ctx, "x"), flag ? 10u : 20u);
    }
}

TEST(Interp, SubComponentInvocation)
{
    // A sub-component that doubles its input; main invokes it twice.
    Context ctx;
    auto pb = ComponentBuilder::create(ctx, "doubler");
    Component &pe = pb.component();
    pe.addInput("v", 16);
    pe.addOutput("out", 16);
    pb.add("a", 16);
    pb.reg("r", 16);
    Group &work = pb.group("work");
    work.add(cellPort("a", "left"), thisPort("v"));
    work.add(cellPort("a", "right"), thisPort("v"));
    work.add(cellPort("r", "in"), cellPort("a", "out"));
    work.add(cellPort("r", "write_en"), constant(1, 1));
    work.add(work.doneHole(), cellPort("r", "done"));
    pe.continuousAssignments().emplace_back(thisPort("out"),
                                            cellPort("r", "out"));
    pe.setControl(ComponentBuilder::enable("work"));

    auto mb = ComponentBuilder::create(ctx, "main");
    mb.cell("d", "doubler", {});
    mb.reg("y", 16);
    Group &invoke = mb.group("invoke");
    invoke.add(cellPort("d", "v"), constant(21, 16));
    invoke.add(cellPort("d", "go"), constant(1, 1));
    invoke.add(invoke.doneHole(), cellPort("d", "done"));
    Group &grab = mb.group("grab");
    grab.add(cellPort("y", "in"), cellPort("d", "out"));
    grab.add(cellPort("y", "write_en"), constant(1, 1));
    grab.add(grab.doneHole(), cellPort("y", "done"));
    std::vector<ControlPtr> stmts;
    stmts.push_back(ComponentBuilder::enable("invoke"));
    stmts.push_back(ComponentBuilder::enable("grab"));
    stmts.push_back(ComponentBuilder::enable("invoke"));
    stmts.push_back(ComponentBuilder::enable("grab"));
    mb.component().setControl(ComponentBuilder::seq(std::move(stmts)));

    sim::SimProgram sp(ctx, "main");
    sim::Interp interp(sp);
    interp.run();
    EXPECT_EQ(*sp.findModel("y")->registerValue(), 42u);
    EXPECT_EQ(*sp.findModel("d/r")->registerValue(), 42u);
}

TEST(Interp, CycleLimit)
{
    // while (1) {} must hit the cycle cap.
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.cell("one", "std_const", {1, 1});
    Group &cond = b.group("cond");
    cond.add(cond.doneHole(), constant(1, 1));
    b.regWriteGroup("body", "x", constant(1, 8));
    b.component().setControl(ComponentBuilder::whileStmt(
        cellPort("one", "out"), "cond",
        ComponentBuilder::enable("body")));
    sim::SimProgram sp(ctx, "main");
    sim::Interp interp(sp);
    EXPECT_THROW(interp.run(1000), Error);
}

} // namespace
} // namespace calyx
