#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/pipeline_spec.h"

namespace calyx {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path>
exampleFiles()
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(CALYX_EXAMPLES_DIR)) {
        if (entry.path().extension() == ".futil")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * print(parse(text)) must be a fixed point: parsing the printed form
 * and printing again reproduces it byte for byte. This pins the
 * Symbol-based printer/parser to the textual IL across every shipped
 * example.
 */
TEST(RoundTrip, PrintParsePrintIdempotentOnExamples)
{
    auto files = exampleFiles();
    ASSERT_FALSE(files.empty())
        << "no .futil examples found in " << CALYX_EXAMPLES_DIR;
    for (const auto &file : files) {
        SCOPED_TRACE(file.string());
        Context first = Parser::parseProgram(slurp(file));
        std::string printed = Printer::toString(first);
        Context second = Parser::parseProgram(printed);
        EXPECT_EQ(Printer::toString(second), printed);
    }
}

/** The fixed point must also hold for fully lowered programs. */
TEST(RoundTrip, IdempotentAfterCompilation)
{
    for (const auto &file : exampleFiles()) {
        SCOPED_TRACE(file.string());
        Context ctx = Parser::parseProgram(slurp(file));
        passes::runPipeline(ctx, "all");
        std::string printed = Printer::toString(ctx);
        Context reparsed = Parser::parseProgram(printed);
        EXPECT_EQ(Printer::toString(reparsed), printed);
    }
}

} // namespace
} // namespace calyx
