#include <gtest/gtest.h>

#include "emit/json_netlist.h"
#include "helpers.h"
#include "ir/builder.h"
#include "support/error.h"
#include "support/json.h"

namespace calyx {
namespace {

using emit::JsonNetlistBackend;
using emit::loadJsonNetlist;
using testing::counterProgram;

/** Program with a memory: while (i < 4) { m[i] = 9; i += 1 }. */
Context
memProgram()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.mem1d("m", 32, 4);
    b.reg("i", 3);
    b.add("addi", 3);
    b.cell("lt", "std_lt", {3});
    b.cell("ia", "std_slice", {3, 2});
    Component &comp = b.component();
    comp.continuousAssignments().emplace_back(cellPort("ia", "in"),
                                              cellPort("i", "out"));

    Group &store = b.group("store");
    store.add(cellPort("m", "addr0"), cellPort("ia", "out"));
    store.add(cellPort("m", "write_data"), constant(9, 32));
    store.add(cellPort("m", "write_en"), constant(1, 1));
    store.add(store.doneHole(), cellPort("m", "done"));

    Group &incr = b.group("incr");
    incr.add(cellPort("addi", "left"), cellPort("i", "out"));
    incr.add(cellPort("addi", "right"), constant(1, 3));
    incr.add(cellPort("i", "in"), cellPort("addi", "out"));
    incr.add(cellPort("i", "write_en"), constant(1, 1));
    incr.add(incr.doneHole(), cellPort("i", "done"));

    Group &cond = b.group("cond");
    cond.add(cellPort("lt", "left"), cellPort("i", "out"));
    cond.add(cellPort("lt", "right"), constant(4, 3));
    cond.add(cond.doneHole(), constant(1, 1));

    std::vector<ControlPtr> body;
    body.push_back(ComponentBuilder::enable("store"));
    body.push_back(ComponentBuilder::enable("incr"));
    comp.setControl(ComponentBuilder::whileStmt(
        cellPort("lt", "out"), "cond",
        ComponentBuilder::seq(std::move(body))));
    return ctx;
}

TEST(JsonNetlist, RefusesUncompiledComponents)
{
    Context ctx = counterProgram(2, 1);
    EXPECT_THROW(JsonNetlistBackend().emitString(ctx), Error);
}

TEST(JsonNetlist, EmitsWellFormedDocument)
{
    Context ctx = counterProgram(2, 1);
    passes::runPipeline(ctx, "default");
    std::string text = JsonNetlistBackend().emitString(ctx);

    json::Value doc = json::parse(text);
    EXPECT_EQ(doc.at("format").asStr(), "calyx-netlist");
    EXPECT_EQ(doc.at("version").asNum(), 1u);
    EXPECT_EQ(doc.at("entrypoint").asStr(), "main");
    ASSERT_EQ(doc.at("components").items().size(), 1u);
    const json::Value &main = doc.at("components").items()[0];
    EXPECT_EQ(main.at("name").asStr(), "main");
    EXPECT_FALSE(main.at("cells").items().empty());
    EXPECT_FALSE(main.at("assignments").items().empty());
}

TEST(JsonNetlist, RoundTripPreservesCyclesAndRegisters)
{
    // In-memory compile + simulate.
    Context ctx = counterProgram(5, 3);
    passes::runPipeline(ctx, "all");
    sim::SimProgram sp(ctx, "main");
    sim::CycleSim cs(sp);
    uint64_t cycles = cs.run();
    uint64_t x = *sp.findModel("x")->registerValue();
    EXPECT_EQ(x, 15u); // 5 iterations adding 3

    // Emit -> load -> simulate the reloaded netlist.
    std::string text = JsonNetlistBackend().emitString(ctx);
    Context loaded = loadJsonNetlist(text);
    sim::SimProgram sp2(loaded, "main");
    sim::CycleSim cs2(sp2);
    uint64_t cycles2 = cs2.run();

    EXPECT_EQ(cycles2, cycles);
    EXPECT_EQ(*sp2.findModel("x")->registerValue(), x);
    EXPECT_EQ(*sp2.findModel("i")->registerValue(),
              *sp.findModel("i")->registerValue());
}

TEST(JsonNetlist, RoundTripPreservesMemoryState)
{
    Context ctx = memProgram();
    passes::runPipeline(ctx, "default");
    sim::SimProgram sp(ctx, "main");
    sim::CycleSim cs(sp);
    uint64_t cycles = cs.run();

    std::string text = JsonNetlistBackend().emitString(ctx);
    Context loaded = loadJsonNetlist(text);
    sim::SimProgram sp2(loaded, "main");
    sim::CycleSim cs2(sp2);
    uint64_t cycles2 = cs2.run();

    EXPECT_EQ(cycles2, cycles);
    EXPECT_EQ(*sp.findModel("m")->memory(),
              *sp2.findModel("m")->memory());
    EXPECT_EQ((*sp2.findModel("m")->memory())[0], 9u);
}

TEST(JsonNetlist, EmitLoadEmitIsAFixpoint)
{
    Context ctx = counterProgram(3, 2);
    passes::runPipeline(ctx, "all");
    std::string first = JsonNetlistBackend().emitString(ctx);
    Context loaded = loadJsonNetlist(first);
    EXPECT_EQ(JsonNetlistBackend().emitString(loaded), first);
}

TEST(JsonNetlist, HierarchicalDesignRoundTrips)
{
    Context ctx;
    auto pb = ComponentBuilder::create(ctx, "pe");
    pb.reg("r", 8);
    pb.regWriteGroup("w", "r", constant(3, 8));
    pb.component().setControl(ComponentBuilder::enable("w"));
    auto mb = ComponentBuilder::create(ctx, "main");
    mb.cell("p0", "pe", {});
    Group &inv = mb.group("invoke");
    inv.add(cellPort("p0", "go"), constant(1, 1));
    inv.add(inv.doneHole(), cellPort("p0", "done"));
    mb.component().setControl(ComponentBuilder::enable("invoke"));
    passes::runPipeline(ctx, "default");

    sim::SimProgram sp(ctx, "main");
    sim::CycleSim cs(sp);
    uint64_t cycles = cs.run();

    Context loaded =
        loadJsonNetlist(JsonNetlistBackend().emitString(ctx));
    sim::SimProgram sp2(loaded, "main");
    sim::CycleSim cs2(sp2);
    EXPECT_EQ(cs2.run(), cycles);
    EXPECT_EQ(*sp2.findModel("p0/r")->registerValue(), 3u);
}

TEST(JsonNetlist, LoaderRejectsMalformedDocuments)
{
    EXPECT_THROW(loadJsonNetlist("not json"), Error);
    EXPECT_THROW(loadJsonNetlist("{}"), Error);
    EXPECT_THROW(
        loadJsonNetlist(R"({"format": "something-else", "version": 1})"),
        Error);
    EXPECT_THROW(
        loadJsonNetlist(
            R"({"format": "calyx-netlist", "version": 999,
                "entrypoint": "main", "components": []})"),
        Error);
    // Port directions are validated, not defaulted.
    EXPECT_THROW(
        loadJsonNetlist(
            R"({"format": "calyx-netlist", "version": 1,
                "entrypoint": "main", "extern_primitives": [],
                "components": [{"name": "main",
                  "signature": [{"name": "x", "width": 8, "dir": "in"}],
                  "cells": [], "assignments": []}]})"),
        Error);
}

} // namespace
} // namespace calyx
