#ifndef CALYX_TESTS_HELPERS_H
#define CALYX_TESTS_HELPERS_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "passes/pipeline.h"
#include "sim/cycle_sim.h"
#include "sim/interp.h"

namespace calyx::testing {

/**
 * Canonical test program: while (i < trip) { x += delta; i += 1 }
 * with a combinational condition group. Final x = trip * delta.
 */
inline Context
counterProgram(uint64_t trip, uint64_t delta)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 32);
    b.reg("i", 8);
    b.cell("lt", "std_lt", {8});
    b.add("addx", 32);
    b.add("addi", 8);

    Group &init = b.regWriteGroup("init", "i", constant(0, 8));
    (void)init;

    Group &cond = b.group("cond");
    cond.add(cellPort("lt", "left"), cellPort("i", "out"));
    cond.add(cellPort("lt", "right"), constant(trip, 8));
    cond.add(cond.doneHole(), constant(1, 1));

    Group &bump_x = b.group("bump_x");
    bump_x.add(cellPort("addx", "left"), cellPort("x", "out"));
    bump_x.add(cellPort("addx", "right"), constant(delta, 32));
    bump_x.add(cellPort("x", "in"), cellPort("addx", "out"));
    bump_x.add(cellPort("x", "write_en"), constant(1, 1));
    bump_x.add(bump_x.doneHole(), cellPort("x", "done"));

    Group &bump_i = b.group("bump_i");
    bump_i.add(cellPort("addi", "left"), cellPort("i", "out"));
    bump_i.add(cellPort("addi", "right"), constant(1, 8));
    bump_i.add(cellPort("i", "in"), cellPort("addi", "out"));
    bump_i.add(cellPort("i", "write_en"), constant(1, 1));
    bump_i.add(bump_i.doneHole(), cellPort("i", "done"));

    std::vector<ControlPtr> body;
    body.push_back(ComponentBuilder::enable("bump_x"));
    body.push_back(ComponentBuilder::enable("bump_i"));
    std::vector<ControlPtr> top;
    top.push_back(ComponentBuilder::enable("init"));
    top.push_back(ComponentBuilder::whileStmt(
        cellPort("lt", "out"), "cond",
        ComponentBuilder::seq(std::move(body))));
    b.component().setControl(ComponentBuilder::seq(std::move(top)));
    return ctx;
}

/** Register values after interpreting a source program. */
inline uint64_t
interpReg(Context &ctx, const std::string &reg, uint64_t *cycles = nullptr)
{
    sim::SimProgram sp(ctx, "main");
    sim::Interp interp(sp);
    uint64_t c = interp.run();
    if (cycles)
        *cycles = c;
    return *sp.findModel(reg)->registerValue();
}

/** Register value after cycle-simulating an already-compiled program. */
inline uint64_t
simulatedReg(Context &ctx, const std::string &reg, uint64_t *cycles)
{
    sim::SimProgram sp(ctx, "main");
    sim::CycleSim cs(sp);
    uint64_t c = cs.run();
    if (cycles)
        *cycles = c;
    return *sp.findModel(reg)->registerValue();
}

/** Register value after compiling and cycle-simulating a program. */
inline uint64_t
compiledReg(Context &ctx, const std::string &reg,
            const passes::CompileOptions &options = {},
            uint64_t *cycles = nullptr)
{
    passes::compile(ctx, options);
    return simulatedReg(ctx, reg, cycles);
}

/** Same, but the pipeline is given as a pipeline-spec string. */
inline uint64_t
compiledReg(Context &ctx, const std::string &reg, const std::string &spec,
            uint64_t *cycles = nullptr)
{
    passes::runPipeline(ctx, spec);
    return simulatedReg(ctx, reg, cycles);
}

} // namespace calyx::testing

#endif // CALYX_TESTS_HELPERS_H
