#include <gtest/gtest.h>

#include <algorithm>

#include "emit/backend.h"
#include "emit/verilog.h"
#include "helpers.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "support/error.h"

namespace calyx {
namespace {

using emit::BackendRegistry;
using testing::counterProgram;

TEST(BackendRegistry, AllStandardBackendsRegistered)
{
    auto names = BackendRegistry::instance().names();
    EXPECT_GE(names.size(), 5u);
    for (const char *required :
         {"calyx", "verilog", "firrtl", "dot", "json-netlist"}) {
        EXPECT_TRUE(std::find(names.begin(), names.end(), required) !=
                    names.end())
            << "missing backend: " << required;
    }
    // names() is sorted (it drives --list-backends).
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(BackendRegistry, EntriesCarryMetadata)
{
    const auto *verilog = BackendRegistry::instance().find("verilog");
    ASSERT_NE(verilog, nullptr);
    EXPECT_EQ(verilog->fileExtension, ".sv");
    EXPECT_TRUE(verilog->requiresLowered);
    EXPECT_FALSE(verilog->description.empty());

    const auto *dot = BackendRegistry::instance().find("dot");
    ASSERT_NE(dot, nullptr);
    EXPECT_EQ(dot->fileExtension, ".dot");
    EXPECT_FALSE(dot->requiresLowered);

    EXPECT_EQ(BackendRegistry::instance().find("nope"), nullptr);
}

TEST(BackendRegistry, CreateMatchesDirectUse)
{
    Context ctx = counterProgram(2, 1);
    passes::runPipeline(ctx, "default");
    auto backend = BackendRegistry::instance().create("verilog");
    EXPECT_EQ(backend->emitString(ctx),
              emit::VerilogBackend().emitString(ctx));
}

TEST(BackendRegistry, UnknownBackendIsFatalWithSuggestion)
{
    EXPECT_THROW(BackendRegistry::instance().create("nonsense"), Error);
    try {
        BackendRegistry::instance().create("verilig");
        FAIL() << "expected Error";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("did you mean 'verilog'"),
                  std::string::npos)
            << e.what();
    }
    // Far-off typos get no suggestion but still fail hard.
    try {
        BackendRegistry::instance().create("zzzzzzzzzz");
        FAIL() << "expected Error";
    } catch (const Error &e) {
        EXPECT_EQ(std::string(e.what()).find("did you mean"),
                  std::string::npos);
    }
}

TEST(BackendRegistry, DuplicateRegistrationIsFatal)
{
    BackendRegistry::Entry entry;
    entry.name = "calyx";
    entry.description = "imposter";
    entry.factory = [] {
        return std::unique_ptr<emit::Backend>(nullptr);
    };
    EXPECT_THROW(BackendRegistry::instance().registerBackend(entry), Error);
}

TEST(BackendRegistry, CalyxBackendRoundTripsThroughParser)
{
    Context ctx = counterProgram(3, 2);
    std::string text =
        BackendRegistry::instance().create("calyx")->emitString(ctx);
    Context reparsed = Parser::parseProgram(text);
    EXPECT_EQ(Printer::toString(reparsed), text);
}

TEST(BackendRegistry, LoweredBackendsRejectUncompiledPrograms)
{
    for (const char *name : {"verilog", "firrtl", "json-netlist"}) {
        Context ctx = counterProgram(2, 1);
        auto backend = BackendRegistry::instance().create(name);
        EXPECT_THROW(backend->emitString(ctx), Error)
            << name << " accepted a program with groups";
        EXPECT_TRUE(BackendRegistry::instance().find(name)->requiresLowered);
    }
}

TEST(BackendRegistry, AnyStageBackendsAcceptUncompiledPrograms)
{
    for (const char *name : {"calyx", "dot"}) {
        Context ctx = counterProgram(2, 1);
        auto backend = BackendRegistry::instance().create(name);
        EXPECT_FALSE(backend->emitString(ctx).empty());
    }
}

} // namespace
} // namespace calyx
