#include <gtest/gtest.h>

#include "frontends/dahlia/parser.h"
#include "hls/cdfg.h"
#include "hls/scheduler.h"

namespace calyx::hls {
namespace {

TEST(HlsCdfg, ExpressionSummary)
{
    dahlia::Program p = dahlia::parse(R"(
decl a: ubit<32>[4];
decl b: ubit<32>[4];
a[0] := a[1] * b[2] + 3;
)");
    OpSummary s = summarizeExpr(*p.body->rhs);
    EXPECT_EQ(s.mults, 1);
    EXPECT_EQ(s.adds, 1);
    EXPECT_EQ(s.memReads.at("a"), 1);
    EXPECT_EQ(s.memReads.at("b"), 1);
    // Chain: memory read (1) then multiply (3).
    EXPECT_EQ(s.chain, 4);
}

TEST(HlsCdfg, RecurrenceDetection)
{
    dahlia::Program p = dahlia::parse(R"(
decl a: ubit<32>[4];
let acc: ubit<32> = 0;
---
acc := acc + a[0] * 3;
)");
    const dahlia::Stmt &assign = *p.body->stmts[1];
    // acc feeds only the adder, not the multiplier.
    EXPECT_FALSE(underSequentialOp(*assign.rhs, "acc"));

    dahlia::Program q = dahlia::parse(R"(
decl a: ubit<32>[4];
let acc: ubit<32> = 1;
---
acc := acc * a[0];
)");
    EXPECT_TRUE(underSequentialOp(*q.body->stmts[1]->rhs, "acc"));
}

TEST(HlsScheduler, LoopCyclesScaleWithTrips)
{
    auto cycles = [](int n) {
        std::string src = "decl a: ubit<32>[64];\n"
                          "for (let i: ubit<8> = 0.." +
                          std::to_string(n) + ") { a[i] := a[i] + 1; }";
        return scheduleProgram(dahlia::parse(src)).cycles;
    };
    uint64_t c8 = cycles(8), c32 = cycles(32);
    EXPECT_GT(c32, c8);
    // The innermost loop pipelines at II = 1 (one read + one write per
    // iteration against a dual-ported memory), so 24 extra trips cost
    // exactly 24 cycles.
    EXPECT_EQ(c32 - c8, 24u);
}

TEST(HlsScheduler, UnrollSpeedsUp)
{
    const char *base = R"(
decl a: ubit<32>[16];
for (let i: ubit<5> = 0..16) { a[i] := a[i] + 1; }
)";
    const char *unrolled = R"(
decl a: ubit<32>[16 bank 4];
for (let i: ubit<5> = 0..16) unroll 4 { a[i] := a[i] + 1; }
)";
    uint64_t b = scheduleProgram(dahlia::parse(base)).cycles;
    uint64_t u = scheduleProgram(dahlia::parse(unrolled)).cycles;
    EXPECT_LT(u, b);
}

TEST(HlsScheduler, UnrollIncreasesArea)
{
    const char *base = R"(
decl a: ubit<32>[16];
decl b: ubit<32>[16];
for (let i: ubit<5> = 0..16) { a[i] := a[i] * b[i] + 1; }
)";
    const char *unrolled = R"(
decl a: ubit<32>[16 bank 4];
decl b: ubit<32>[16 bank 4];
for (let i: ubit<5> = 0..16) unroll 4 { a[i] := a[i] * b[i] + 1; }
)";
    HlsReport rb = scheduleProgram(dahlia::parse(base));
    HlsReport ru = scheduleProgram(dahlia::parse(unrolled));
    EXPECT_GT(ru.dsps, rb.dsps);
}

TEST(HlsScheduler, DivisionCostsMoreThanAddition)
{
    const char *with_add = R"(
decl a: ubit<32>[8];
for (let i: ubit<4> = 0..8) { a[i] := a[i] + 3; }
)";
    const char *with_div = R"(
decl a: ubit<32>[8];
for (let i: ubit<4> = 0..8) { a[i] := a[i] / 3; }
)";
    EXPECT_GT(scheduleProgram(dahlia::parse(with_div)).cycles,
              scheduleProgram(dahlia::parse(with_add)).cycles);
}

TEST(HlsScheduler, SameMemoryPortSerialization)
{
    // Three reads of one dual-port memory in a single statement cost
    // more than reads spread over three memories.
    const char *one_mem = R"(
decl a: ubit<32>[8];
decl o: ubit<32>[8];
for (let i: ubit<4> = 0..4) { o[i] := a[i] + a[i + 1] + a[i + 2]; }
)";
    const char *three_mems = R"(
decl a: ubit<32>[8];
decl b: ubit<32>[8];
decl c: ubit<32>[8];
decl o: ubit<32>[8];
for (let i: ubit<4> = 0..4) { o[i] := a[i] + b[i + 1] + c[i + 2]; }
)";
    EXPECT_GT(scheduleProgram(dahlia::parse(one_mem)).cycles,
              scheduleProgram(dahlia::parse(three_mems)).cycles);
}

TEST(HlsScheduler, IndependentStatementsOverlap)
{
    const char *dependent = R"(
decl a: ubit<32>[8];
let x: ubit<32> = 0;
---
x := a[0] * 2
---
a[1] := x * 3
)";
    const char *independent = R"(
decl a: ubit<32>[8];
decl b: ubit<32>[8];
a[0] := a[1] * 2; b[0] := b[1] * 3
)";
    EXPECT_GT(scheduleProgram(dahlia::parse(dependent)).cycles,
              scheduleProgram(dahlia::parse(independent)).cycles);
}

} // namespace
} // namespace calyx::hls
