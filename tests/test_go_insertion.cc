#include <gtest/gtest.h>

#include "ir/builder.h"
#include "passes/go_insertion.h"

namespace calyx {
namespace {

using passes::GoInsertion;

TEST(GoInsertion, GatesBodyButNotDone)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.regWriteGroup("w", "x", constant(1, 8));
    b.component().setControl(ComponentBuilder::enable("w"));

    GoInsertion().runOnContext(ctx);

    // x.in and x.write_en are now guarded by w[go]; the done write is
    // untouched (Figure 2b).
    bool saw_done = false;
    for (const auto &a : g.assignments()) {
        if (a.dst == g.doneHole()) {
            saw_done = true;
            EXPECT_TRUE(a.guard->isTrue());
        } else {
            bool mentions_go = false;
            a.guard->ports([&](const PortRef &p) {
                if (p == g.goHole())
                    mentions_go = true;
            });
            EXPECT_TRUE(mentions_go) << a.str();
        }
    }
    EXPECT_TRUE(saw_done);
}

TEST(GoInsertion, ComposesWithExistingGuards)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("f", 1);
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 8),
          Guard::fromPort(cellPort("f", "out")));
    g.add(cellPort("x", "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort("x", "done"));

    GoInsertion().runOnContext(ctx);
    const auto &a = g.assignments()[0];
    // Both the original f.out and the go hole appear.
    int leaves = 0;
    a.guard->ports([&leaves](const PortRef &) { ++leaves; });
    EXPECT_EQ(leaves, 2);
}

} // namespace
} // namespace calyx
