/**
 * @file
 * Unit tests for the FSM/schedule IR (ir/fsm.h) and the three control
 * lowering stages (src/lowering/): build, optimize, realize — plus the
 * ISSUE 5 acceptance criteria: a >=3-level nested seq lowers to
 * strictly fewer FSM registers than the seed's one-per-seq-node
 * expansion, the flat lowering never mints more control registers than
 * the seed overall, and par completion bits re-arm inside loops.
 */
#include <gtest/gtest.h>

#include <utility>

#include "emit/dot.h"
#include "helpers.h"
#include "ir/defuse.h"
#include "ir/fsm.h"
#include "lowering/lower.h"
#include "support/error.h"

namespace calyx {
namespace {

using testing::compiledReg;
using testing::counterProgram;
using testing::interpReg;

// --- FSM IR basics ------------------------------------------------------

TEST(FsmIr, MachineBasics)
{
    FsmMachine m("m");
    uint32_t a = m.addState("a");
    uint32_t b = m.addState("b", 3);
    uint32_t fin = m.addState("done");
    m.state(fin).accepting = true;
    m.state(a).transitions.push_back({Guard::trueGuard(), b});
    m.state(b).transitions.push_back({Guard::trueGuard(), fin});
    m.setEntry(a);

    EXPECT_EQ(m.states().size(), 3u);
    EXPECT_EQ(m.totalCodes(), 5);
    EXPECT_EQ(m.transitionCount(), 2);
    EXPECT_EQ(m.counterStates(), 1);
    EXPECT_FALSE(m.realized());

    std::string text = m.str();
    EXPECT_NE(text.find("fsm m {"), std::string::npos);
    EXPECT_NE(text.find("entry"), std::string::npos);
    EXPECT_NE(text.find("accepting"), std::string::npos);
    EXPECT_NE(text.find("span=3"), std::string::npos);
}

TEST(FsmIr, CompactRemapsTargetsAndEntry)
{
    FsmMachine m("m");
    uint32_t dead = m.addState("dead");
    uint32_t a = m.addState("a");
    uint32_t fin = m.addState("done");
    m.state(fin).accepting = true;
    m.state(a).transitions.push_back({Guard::trueGuard(), fin});
    m.state(dead).transitions.push_back({Guard::trueGuard(), dead});
    m.setEntry(a);

    m.compact({false, true, true});
    ASSERT_EQ(m.states().size(), 2u);
    EXPECT_EQ(m.entry(), 0u);
    EXPECT_EQ(m.state(0).transitions[0].target, 1u);
    EXPECT_TRUE(m.state(1).accepting);
}

// --- Optimize stage -----------------------------------------------------

TEST(FsmOptimize, SimplifyGuard)
{
    GuardPtr p = Guard::fromPort(cellPort("r", "out"));
    GuardPtr q = Guard::fromPort(cellPort("s", "out"));

    // a & a -> a
    EXPECT_TRUE(Guard::equal(
        lowering::simplifyGuard(Guard::conj(p, p)), p));
    // a | a -> a
    EXPECT_TRUE(Guard::equal(
        lowering::simplifyGuard(Guard::disj(p, p)), p));
    // a & !a -> false
    EXPECT_TRUE(lowering::isFalseGuard(
        lowering::simplifyGuard(Guard::conj(p, Guard::negate(p)))));
    // a | !a -> true
    EXPECT_TRUE(
        lowering::simplifyGuard(Guard::disj(p, Guard::negate(p)))
            ->isTrue());
    // false & q -> false, false | q -> q
    GuardPtr f = Guard::negate(Guard::trueGuard());
    EXPECT_TRUE(lowering::isFalseGuard(
        lowering::simplifyGuard(Guard::conj(f, q))));
    EXPECT_TRUE(
        Guard::equal(lowering::simplifyGuard(Guard::disj(f, q)), q));
    // Nested: (p & p) | (q & !q) -> p
    EXPECT_TRUE(Guard::equal(
        lowering::simplifyGuard(Guard::disj(
            Guard::conj(p, p), Guard::conj(q, Guard::negate(q)))),
        p));
}

TEST(FsmOptimize, RemovesUnreachableStates)
{
    FsmMachine m("m");
    GuardPtr done = Guard::fromPort(holePort("g", "done"));
    uint32_t a = m.addState("a");
    uint32_t fin = m.addState("done");
    uint32_t orphan = m.addState("orphan");
    m.state(fin).accepting = true;
    m.state(a).actions.push_back(
        {holePort("g", "go"), constant(1, 1), Guard::negate(done)});
    m.state(a).transitions.push_back({done, fin});
    m.state(orphan).transitions.push_back({Guard::trueGuard(), a});
    m.setEntry(a);

    lowering::OptimizeResult r = lowering::optimize(m);
    EXPECT_EQ(r.unreachableRemoved, 1);
    EXPECT_EQ(m.states().size(), 2u);
}

TEST(FsmOptimize, MergesDuplicateStates)
{
    // Two identical enable states targeting the same continuation.
    FsmMachine m("m");
    GuardPtr done = Guard::fromPort(holePort("g", "done"));
    uint32_t fin = m.addState("done");
    m.state(fin).accepting = true;
    uint32_t s1 = m.addState("g");
    uint32_t s2 = m.addState("g");
    for (uint32_t s : {s1, s2}) {
        m.state(s).actions.push_back(
            {holePort("g", "go"), constant(1, 1), Guard::negate(done)});
        m.state(s).transitions.push_back({done, fin});
    }
    uint32_t head = m.addState("if");
    GuardPtr p = Guard::fromPort(cellPort("c", "out"));
    m.state(head).transitions.push_back({p, s1});
    m.state(head).transitions.push_back({Guard::negate(p), s2});
    m.setEntry(head);

    lowering::OptimizeResult r = lowering::optimize(m);
    EXPECT_EQ(r.statesMerged, 1);
    EXPECT_EQ(m.states().size(), 3u);
    // Both branches now share one state.
    const FsmState &h = m.state(m.entry());
    ASSERT_EQ(h.transitions.size(), 2u);
    EXPECT_EQ(h.transitions[0].target, h.transitions[1].target);
}

TEST(FsmOptimize, ForwardsEmptyPassThroughStates)
{
    FsmMachine m("m");
    uint32_t fin = m.addState("done");
    m.state(fin).accepting = true;
    uint32_t hop = m.addState("hop"); // no actions, unconditional exit
    m.state(hop).transitions.push_back({Guard::trueGuard(), fin});
    uint32_t a = m.addState("a");
    GuardPtr done = Guard::fromPort(holePort("g", "done"));
    m.state(a).actions.push_back(
        {holePort("g", "go"), constant(1, 1), Guard::negate(done)});
    m.state(a).transitions.push_back({done, hop});
    m.setEntry(a);

    lowering::OptimizeResult r = lowering::optimize(m);
    EXPECT_EQ(r.statesForwarded, 1);
    EXPECT_EQ(m.states().size(), 2u);
    EXPECT_EQ(m.state(m.entry()).transitions[0].target,
              m.entry() == 0u ? 1u : 0u);
}

// --- Realize stage ------------------------------------------------------

/** seq { a; b; c } over three register writes. */
Context
seq3Program()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    b.reg("z", 8);
    b.regWriteGroup("wa", "x", constant(1, 8));
    b.regWriteGroup("wb", "y", constant(2, 8));
    b.regWriteGroup("wc", "z", constant(3, 8));
    std::vector<ControlPtr> s;
    s.push_back(ComponentBuilder::enable("wa"));
    s.push_back(ComponentBuilder::enable("wb"));
    s.push_back(ComponentBuilder::enable("wc"));
    b.component().setControl(ComponentBuilder::seq(std::move(s)));
    return ctx;
}

TEST(FsmRealize, MachineRecordedOnComponent)
{
    Context ctx = seq3Program();
    passes::runPipeline(ctx, "default");
    const Component &main = ctx.component("main");
    ASSERT_EQ(main.fsms().size(), 1u);
    const FsmMachine &m = *main.fsms()[0];
    EXPECT_TRUE(m.realized());
    EXPECT_EQ(m.encoding(), FsmEncoding::Binary);
    EXPECT_EQ(m.registerCell(), Symbol("fsm0"));
    EXPECT_EQ(m.states().size(), 4u); // wa, wb, wc, done
    FsmStats stats = fsmStats(main);
    EXPECT_EQ(stats.machines, 1);
    EXPECT_EQ(stats.registers, 1);
    EXPECT_EQ(stats.seedRegisters, 1);
    EXPECT_GT(stats.loweringSeconds, 0.0);
}

TEST(FsmRealize, OneHotMatchesBinary)
{
    auto run = [](const std::string &enc, uint64_t *cycles) {
        Context ctx = counterProgram(4, 3);
        return compiledReg(
            ctx, "x",
            "well-formed,collapse-control,infer-latency,go-insertion,"
            "compile-control[encoding=" + enc + "],remove-groups,"
            "dead-cell-removal",
            cycles);
    };
    uint64_t bin_cycles = 0, hot_cycles = 0;
    EXPECT_EQ(run("binary", &bin_cycles), 12u);
    EXPECT_EQ(run("one-hot", &hot_cycles), 12u);
    EXPECT_EQ(bin_cycles, hot_cycles);

    Context ctx = counterProgram(4, 3);
    passes::runPipeline(
        ctx, "well-formed,collapse-control,infer-latency,go-insertion,"
             "compile-control[encoding=one-hot]");
    ASSERT_EQ(ctx.component("main").fsms().size(), 1u);
    EXPECT_EQ(ctx.component("main").fsms()[0]->encoding(),
              FsmEncoding::OneHot);
}

TEST(FsmRealize, OneHotFallsBackToBinaryPastWidthLimit)
{
    // 70 states + accepting exceed the 64-slot one-hot budget.
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    std::vector<ControlPtr> s;
    for (int k = 0; k < 70; ++k) {
        std::string name = "w" + std::to_string(k);
        b.regWriteGroup(name, "x", constant(k % 200, 8));
        s.push_back(ComponentBuilder::enable(name));
    }
    b.component().setControl(ComponentBuilder::seq(std::move(s)));
    passes::runPipeline(
        ctx, "well-formed,go-insertion,"
             "compile-control[encoding=one-hot],remove-groups");
    const Component &main = ctx.component("main");
    ASSERT_EQ(main.fsms().size(), 1u);
    EXPECT_EQ(main.fsms()[0]->encoding(), FsmEncoding::Binary);
    sim::SimProgram sp(ctx, "main");
    sim::CycleSim cs(sp);
    cs.run();
    EXPECT_EQ(*sp.findModel("x")->registerValue(), 69u);
}

TEST(FsmRealize, DefUseStaysMaintainedThroughLowering)
{
    // Satellite: lowering goes through the DefUse-maintaining mutators,
    // so a materialized index must survive build+realize intact.
    Context ctx = seq3Program();
    passes::runPipeline(
        ctx, "well-formed,collapse-control,infer-latency,go-insertion");
    Component &main = ctx.component("main");
    (void)main.defUse(); // materialize
    std::set<Symbol> inlined;
    lowering::LowerOptions opts;
    // Const access: non-const control() would invalidate the index by
    // contract before lowering even starts.
    const Control &ctrl = std::as_const(main).control();
    Symbol top = lowering::lowerControl(main, ctx, ctrl, opts, inlined);
    EXPECT_FALSE(top.empty());
    ASSERT_NE(main.maintainedDefUse(), nullptr)
        << "lowering invalidated the def-use index";
    verifyDefUse(main); // fatal()s on divergence
}

// --- Acceptance: register counts ---------------------------------------

/** seq{ w0; seq{ w1; seq{ w2; w3 } } }: three levels of nesting. */
Context
nestedSeqProgram()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    for (int k = 0; k < 4; ++k)
        b.regWriteGroup("w" + std::to_string(k), "x",
                        constant(k + 1, 8));
    std::vector<ControlPtr> inner2;
    inner2.push_back(ComponentBuilder::enable("w2"));
    inner2.push_back(ComponentBuilder::enable("w3"));
    std::vector<ControlPtr> inner1;
    inner1.push_back(ComponentBuilder::enable("w1"));
    inner1.push_back(ComponentBuilder::seq(std::move(inner2)));
    std::vector<ControlPtr> top;
    top.push_back(ComponentBuilder::enable("w0"));
    top.push_back(ComponentBuilder::seq(std::move(inner1)));
    b.component().setControl(ComponentBuilder::seq(std::move(top)));
    return ctx;
}

TEST(FsmAcceptance, NestedSeqUsesStrictlyFewerFsmRegisters)
{
    // Keep the nesting (no collapse-control) so the seed comparison is
    // against one register per seq node.
    Context ctx = nestedSeqProgram();
    passes::runPipeline(ctx,
                        "well-formed,infer-latency,go-insertion,"
                        "compile-control,remove-groups");
    const Component &main = ctx.component("main");
    FsmStats stats = fsmStats(main);
    EXPECT_EQ(stats.seedRegisters, 3); // one per nested seq node
    EXPECT_EQ(stats.registers, 1);     // one flat machine
    EXPECT_LT(stats.registers, stats.seedRegisters);
    // Cross-check against the actual cells, not just the bookkeeping.
    int fsm_cells = 0;
    for (const auto &cell : main.cells()) {
        if (cell->type() == Symbol("std_reg") &&
            cell->name().str().rfind("fsm", 0) == 0)
            ++fsm_cells;
    }
    EXPECT_EQ(fsm_cells, 1);

    // And the flat machine still computes the same result.
    Context check = nestedSeqProgram();
    EXPECT_EQ(compiledReg(check, "x", "default"), 4u);
}

TEST(FsmAcceptance, FlatNeverMintsMoreControlRegistersThanSeed)
{
    auto shapes = std::vector<std::function<Context()>>{
        [] { return counterProgram(3, 2); },
        [] { return seq3Program(); },
        [] { return nestedSeqProgram(); },
    };
    for (const auto &spec : {std::string("default"), std::string("all")}) {
        for (const auto &build : shapes) {
            Context ctx = build();
            passes::runPipeline(ctx, spec);
            for (const auto &comp : ctx.components()) {
                FsmStats stats = fsmStats(*comp);
                EXPECT_LE(stats.controlRegisters, stats.seedRegisters)
                    << comp->name().str() << " with " << spec;
            }
        }
    }
}

// --- Satellite: par completion-bit lifecycle ---------------------------

/**
 * while (i < 2) { par { slow mult; fast write }; i += 1 }
 * The completion bits must clear when the par exits so the second
 * iteration waits for both children again; a stale bit would let the
 * par complete instantly and skip the multiply.
 */
Context
parInWhileProgram()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 16);
    b.reg("y", 16);
    b.reg("i", 8);
    b.cell("lt", "std_lt", {8});
    b.cell("mul", "std_mult_pipe", {16});
    b.add("ax", 16);
    b.add("ai", 8);
    b.regWriteGroup("init", "i", constant(0, 8));
    Group &cond = b.group("cond");
    cond.add(cellPort("lt", "left"), cellPort("i", "out"));
    cond.add(cellPort("lt", "right"), constant(2, 8));
    cond.add(cond.doneHole(), constant(1, 1));
    Group &slow = b.group("slow");
    // y = 3 * i: observably different per iteration (i bumps after the
    // par), so a skipped second iteration leaves y at 3*0 = 0.
    b.cell("pad", "std_pad", {8, 16});
    slow.add(cellPort("pad", "in"), cellPort("i", "out"));
    slow.add(cellPort("mul", "left"), cellPort("pad", "out"));
    slow.add(cellPort("mul", "right"), constant(3, 16));
    slow.add(cellPort("mul", "go"), constant(1, 1),
             Guard::negate(Guard::fromPort(cellPort("mul", "done"))));
    slow.add(cellPort("y", "in"), cellPort("mul", "out"),
             Guard::fromPort(cellPort("mul", "done")));
    slow.add(cellPort("y", "write_en"), constant(1, 1),
             Guard::fromPort(cellPort("mul", "done")));
    slow.add(slow.doneHole(), cellPort("y", "done"));
    Group &fast = b.group("fast");
    fast.add(cellPort("ax", "left"), cellPort("x", "out"));
    fast.add(cellPort("ax", "right"), constant(5, 16));
    fast.add(cellPort("x", "in"), cellPort("ax", "out"));
    fast.add(cellPort("x", "write_en"), constant(1, 1));
    fast.add(fast.doneHole(), cellPort("x", "done"));
    Group &bump = b.group("bump");
    bump.add(cellPort("ai", "left"), cellPort("i", "out"));
    bump.add(cellPort("ai", "right"), constant(1, 8));
    bump.add(cellPort("i", "in"), cellPort("ai", "out"));
    bump.add(cellPort("i", "write_en"), constant(1, 1));
    bump.add(bump.doneHole(), cellPort("i", "done"));

    std::vector<ControlPtr> arms;
    arms.push_back(ComponentBuilder::enable("slow"));
    arms.push_back(ComponentBuilder::enable("fast"));
    std::vector<ControlPtr> body;
    body.push_back(ComponentBuilder::par(std::move(arms)));
    body.push_back(ComponentBuilder::enable("bump"));
    std::vector<ControlPtr> top;
    top.push_back(ComponentBuilder::enable("init"));
    top.push_back(ComponentBuilder::whileStmt(
        cellPort("lt", "out"), "cond",
        ComponentBuilder::seq(std::move(body))));
    b.component().setControl(ComponentBuilder::seq(std::move(top)));
    return ctx;
}

TEST(FsmParReset, ParInsideWhileRearmsOnSecondIteration)
{
    // Interpreter oracle.
    Context src = parInWhileProgram();
    sim::SimProgram sp(src, "main");
    sim::Interp interp(sp);
    interp.run();
    uint64_t want_x = *sp.findModel("x")->registerValue();
    uint64_t want_y = *sp.findModel("y")->registerValue();
    uint64_t want_i = *sp.findModel("i")->registerValue();
    EXPECT_EQ(want_x, 10u); // two iterations of +5
    EXPECT_EQ(want_y, 3u);  // second iteration's multiply: 3 * 1
    EXPECT_EQ(want_i, 2u);

    // Both engines on the compiled design (satellite: exactly this
    // shape, through both engines).
    for (sim::Engine engine :
         {sim::Engine::Jacobi, sim::Engine::Levelized}) {
        Context ctx = parInWhileProgram();
        passes::runPipeline(ctx, "default");
        sim::SimProgram spc(ctx, "main");
        sim::CycleSim cs(spc, engine);
        cs.run();
        EXPECT_EQ(*spc.findModel("x")->registerValue(), want_x);
        EXPECT_EQ(*spc.findModel("y")->registerValue(), want_y);
        EXPECT_EQ(*spc.findModel("i")->registerValue(), want_i);
    }
}

// --- dot FSM view -------------------------------------------------------

TEST(FsmDot, EmitsMachineClusters)
{
    Context ctx = seq3Program();
    passes::runPipeline(ctx, "default");
    std::string dot = emit::DotBackend().emitString(ctx);
    EXPECT_NE(dot.find("cluster_main/fsm_control0"), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos) // accepting
        << dot;
    EXPECT_NE(dot.find("label=\"wa\""), std::string::npos); // state name
    EXPECT_NE(dot.find("wa[done]"), std::string::npos); // transition guard
}

// --- fuse-static --------------------------------------------------------

TEST(FsmFuseStatic, FusesStaticSubtreesIntoCounterStates)
{
    auto run = [](const std::string &cc_opts, uint64_t *cycles,
                  Context *out) {
        Context ctx = counterProgram(5, 2);
        uint64_t x = compiledReg(
            ctx, "x",
            "well-formed,collapse-control,infer-latency,go-insertion,"
            "compile-control" + cc_opts + ",remove-groups",
            cycles);
        if (out)
            *out = std::move(ctx);
        return x;
    };
    uint64_t plain = 0, fused = 0;
    Context fused_ctx;
    EXPECT_EQ(run("", &plain, nullptr), 10u);
    EXPECT_EQ(run("[fuse-static=true]", &fused, &fused_ctx), 10u);
    EXPECT_LT(fused, plain);
    FsmStats stats = fsmStats(fused_ctx.component("main"));
    EXPECT_GT(stats.counterStates, 0)
        << "static body should fuse into a counter state";
}

TEST(FsmFuseStatic, CounterStateAtEndOfPowerOfTwoCodeSpace)
{
    // Regression: a fused counter state laid out at the end of the code
    // space needs its exclusive window bound (`fsm < base+span`) to fit
    // the register width. Shape: done(1) + if(1) + sqrt(1) + fused
    // seq of latency 5 -> 8 codes, window bound 8.
    auto build = [] {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        b.reg("f", 1);
        b.reg("x", 8);
        b.reg("r", 8);
        b.cell("sq", "std_sqrt", {8});
        b.regWriteGroup("w1", "x", constant(9, 8));
        Group &w4 = b.regWriteGroup("w4", "r", constant(25, 8));
        w4.attrs().set(Attributes::staticAttr, 4);
        Group &q = b.group("q");
        GuardPtr done = Guard::fromPort(cellPort("sq", "done"));
        q.add(cellPort("sq", "in"), cellPort("x", "out"));
        q.add(cellPort("sq", "go"), constant(1, 1), Guard::negate(done));
        q.add(cellPort("r", "in"), cellPort("sq", "out"), done);
        q.add(cellPort("r", "write_en"), constant(1, 1), done);
        q.add(q.doneHole(), cellPort("r", "done"));
        Group &cond = b.group("c");
        cond.add(cond.doneHole(), constant(1, 1));
        std::vector<ControlPtr> stat;
        stat.push_back(ComponentBuilder::enable("w1"));
        stat.push_back(ComponentBuilder::enable("w4"));
        b.component().setControl(ComponentBuilder::ifStmt(
            cellPort("f", "out"), "c", ComponentBuilder::enable("q"),
            ComponentBuilder::seq(std::move(stat))));
        return ctx;
    };
    // f resets to 0, so the fused static else-branch runs: r = 25.
    Context ctx = build();
    EXPECT_EQ(compiledReg(
                  ctx, "r",
                  "well-formed,infer-latency,go-insertion,"
                  "compile-control[fuse-static=true],remove-groups"),
              25u);
}

} // namespace
} // namespace calyx
