#include <gtest/gtest.h>

#include "estimate/area.h"
#include "helpers.h"

namespace calyx {
namespace {

using estimate::Area;
using estimate::AreaEstimator;
using testing::counterProgram;

TEST(Area, PrimitiveCosts)
{
    Context ctx;
    Component &main = ctx.addComponent("main");
    main.addCell("a", "std_add", {32}, ctx);
    AreaEstimator est(ctx);
    Area area = est.estimate(main);
    EXPECT_DOUBLE_EQ(area.luts, 32.0);
    EXPECT_EQ(area.registers, 0);
}

TEST(Area, RegisterCountsFfs)
{
    Context ctx;
    Component &main = ctx.addComponent("main");
    main.addCell("r", "std_reg", {16}, ctx);
    AreaEstimator est(ctx);
    Area area = est.estimate(main);
    EXPECT_EQ(area.registers, 1);
    EXPECT_DOUBLE_EQ(area.ffs, 17.0); // payload + done bit
}

TEST(Area, MuxCostForMultipleDrivers)
{
    Context ctx;
    Component &a = ctx.addComponent("a");
    a.addCell("r", "std_reg", {8}, ctx);
    a.continuousAssignments().emplace_back(
        cellPort("r", "in"), constant(1, 8),
        Guard::fromPort(thisPort("go")));

    Context ctx2;
    Component &b = ctx2.addComponent("b");
    b.addCell("r", "std_reg", {8}, ctx2);
    b.continuousAssignments().emplace_back(
        cellPort("r", "in"), constant(1, 8),
        Guard::fromPort(thisPort("go")));
    b.continuousAssignments().emplace_back(
        cellPort("r", "in"), constant(2, 8),
        Guard::negate(Guard::fromPort(thisPort("go"))));

    AreaEstimator ea(ctx);
    AreaEstimator eb(ctx2);
    EXPECT_GT(eb.estimate(b).luts, ea.estimate(a).luts);
}

TEST(Area, HierarchicalComposition)
{
    Context ctx;
    Component &pe = ctx.addComponent("pe");
    pe.addCell("a", "std_add", {32}, ctx);
    Component &main = ctx.addComponent("main");
    main.addCell("p0", "pe", {}, ctx);
    main.addCell("p1", "pe", {}, ctx);
    ctx.setEntrypoint("main");
    AreaEstimator est(ctx);
    EXPECT_DOUBLE_EQ(est.estimateProgram().luts, 64.0);
}

TEST(Area, DspForMultipliers)
{
    Context ctx;
    Component &main = ctx.addComponent("main");
    main.addCell("m", "std_mult_pipe", {32}, ctx);
    AreaEstimator est(ctx);
    EXPECT_GT(est.estimate(main).dsps, 0.0);
}

TEST(Area, CompiledDesignsHaveGuardCosts)
{
    // A compiled design carries FSM guard logic: LUTs must exceed the
    // bare functional units.
    Context ctx = counterProgram(3, 2);
    AreaEstimator before(ctx);
    double base = before.estimate(ctx.component("main")).luts;

    Context ctx2 = counterProgram(3, 2);
    passes::runPipeline(ctx2, "default");
    AreaEstimator after(ctx2);
    double compiled = after.estimate(ctx2.component("main")).luts;
    EXPECT_GT(compiled, base);
}

} // namespace
} // namespace calyx
