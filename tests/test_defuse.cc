#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/defuse.h"
#include "support/error.h"

namespace calyx {
namespace {

/** Maintained index must match a fresh recompute; returns the reason
 * when it does not. */
testing::AssertionResult
indexInSync(const Component &comp)
{
    const DefUse *maintained = comp.maintainedDefUse();
    if (!maintained)
        return testing::AssertionFailure() << "no maintained index";
    std::string why;
    DefUse fresh = DefUse::compute(comp);
    if (!maintained->equivalent(fresh, &why))
        return testing::AssertionFailure() << why;
    return testing::AssertionSuccess();
}

Context
baseProgram()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("r0", 8);
    b.reg("r1", 8);
    b.cell("add0", "std_add", {8});
    Group &g = b.group("upd");
    g.add(cellPort("add0", "left"), cellPort("r0", "out"));
    g.add(cellPort("add0", "right"), constant(1, 8));
    g.add(cellPort("r0", "in"), cellPort("add0", "out"));
    g.add(cellPort("r0", "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort("r0", "done"));
    b.component().setControl(ComponentBuilder::enable("upd"));
    return ctx;
}

TEST(DefUse, ComputeFindsAssignGuardAndControlUses)
{
    Context ctx = baseProgram();
    const Component &main = ctx.main();
    const DefUse &du = main.defUse();

    const DefUse::Uses *r0 = du.find(Symbol("r0"));
    ASSERT_NE(r0, nullptr);
    EXPECT_TRUE(r0->anyAssign(DefUse::kSrcCell));
    EXPECT_TRUE(r0->anyAssign(DefUse::kDstCell));

    const DefUse::Uses *upd = du.find(Symbol("upd"));
    ASSERT_NE(upd, nullptr);
    // done-hole write + the Enable control node.
    EXPECT_TRUE(upd->anyAssign(DefUse::kDstHole));
    ASSERT_EQ(upd->control.size(), 1u);
    EXPECT_TRUE(upd->control[0].asGroup);

    EXPECT_EQ(du.find(Symbol("never_mentioned")), nullptr);
}

TEST(DefUse, GuardUsesAreTracked)
{
    Context ctx = baseProgram();
    Component &main = ctx.main();
    Group &g = main.group("upd");
    g.add(cellPort("r1", "in"), constant(7, 8),
          Guard::fromPort(cellPort("r0", "done")));
    const DefUse::Uses *r0 = main.defUse().find(Symbol("r0"));
    ASSERT_NE(r0, nullptr);
    EXPECT_TRUE(r0->anyAssign(DefUse::kGuardCell));
}

TEST(DefUse, IncrementalAddStaysInSync)
{
    Context ctx = baseProgram();
    Component &main = ctx.main();
    main.defUse(); // materialize

    // Group::add on an owned group maintains the index.
    Group &g = main.group("upd");
    g.add(cellPort("r1", "in"), cellPort("r0", "out"));
    g.add(cellPort("r1", "write_en"), constant(1, 1));
    EXPECT_TRUE(indexInSync(main));

    // addContinuous maintains too.
    main.addContinuous(
        Assignment(thisPort("done"), cellPort("r0", "done")));
    EXPECT_TRUE(indexInSync(main));

    // A brand-new group filled through add().
    Group &g2 = main.addGroup("fresh");
    g2.add(cellPort("r1", "write_en"), constant(1, 1));
    g2.add(g2.doneHole(), cellPort("r1", "done"));
    EXPECT_TRUE(indexInSync(main));
}

TEST(DefUse, RemoveGroupDropsItsSitesKeepsDanglingUses)
{
    Context ctx = baseProgram();
    Component &main = ctx.main();
    Group &g2 = main.addGroup("aux");
    g2.add(cellPort("r1", "in"), constant(3, 8));
    g2.add(cellPort("r1", "write_en"), constant(1, 1));
    g2.add(g2.doneHole(), cellPort("r1", "done"));
    main.defUse(); // materialize

    main.removeGroup("aux");
    EXPECT_TRUE(indexInSync(main));
    // r1 was only referenced inside aux: no surviving uses.
    EXPECT_EQ(main.defUse().find(Symbol("r1")), nullptr);

    // Removing a group that is still enabled keeps the control use —
    // that is exactly what the WellFormed dangling check reports.
    main.removeGroup("upd");
    EXPECT_TRUE(indexInSync(main));
    const DefUse::Uses *upd = main.defUse().find(Symbol("upd"));
    ASSERT_NE(upd, nullptr);
    EXPECT_TRUE(upd->assigns.empty());
    ASSERT_EQ(upd->control.size(), 1u);
    EXPECT_TRUE(upd->control[0].asGroup);
}

TEST(DefUse, RemoveAndRenameCellKeepIndexValid)
{
    Context ctx = baseProgram();
    Component &main = ctx.main();
    main.defUse();

    // Cells define no use sites, so removal must not disturb the index.
    main.removeCell("r1");
    EXPECT_TRUE(indexInSync(main));

    // renameCell moves the definition; uses keep naming the old symbol
    // until a pass rewrites them (and stay indexed under it).
    main.renameCell("add0", "adder");
    EXPECT_TRUE(indexInSync(main));
    EXPECT_NE(main.defUse().find(Symbol("add0")), nullptr);
    EXPECT_EQ(main.findCell("add0"), nullptr);
    EXPECT_NE(main.findCell("adder"), nullptr);
    EXPECT_EQ(main.cell("adder").name(), "adder");
}

TEST(DefUse, RawMutationInvalidatesInsteadOfLying)
{
    Context ctx = baseProgram();
    Component &main = ctx.main();
    main.defUse();
    ASSERT_NE(main.maintainedDefUse(), nullptr);

    // Grabbing the mutable assignment vector conservatively drops the
    // cache; the next defUse() recomputes.
    main.group("upd").assignments().clear();
    EXPECT_EQ(main.maintainedDefUse(), nullptr);
    EXPECT_EQ(main.defUse().find(Symbol("add0")), nullptr);
}

TEST(DefUse, ControlMutatorsInvalidate)
{
    Context ctx = baseProgram();
    Component &main = ctx.main();
    main.defUse();
    ASSERT_NE(main.maintainedDefUse(), nullptr);
    main.setControl(std::make_unique<Empty>());
    EXPECT_EQ(main.maintainedDefUse(), nullptr);
    const DefUse::Uses *upd = main.defUse().find(Symbol("upd"));
    ASSERT_NE(upd, nullptr);
    EXPECT_TRUE(upd->control.empty()); // enable is gone
}

TEST(DefUse, DenseIdsTrackPositionsAcrossRemoval)
{
    Context ctx = baseProgram();
    Component &main = ctx.main();
    EXPECT_EQ(main.cell("r0").id(), 0u);
    EXPECT_EQ(main.cell("r1").id(), 1u);
    EXPECT_EQ(main.cell("add0").id(), 2u);
    main.removeCell("r1");
    EXPECT_EQ(main.cell("r0").id(), 0u);
    EXPECT_EQ(main.cell("add0").id(), 1u);
    ASSERT_EQ(main.cells().size(), 2u);
    for (uint32_t i = 0; i < main.cells().size(); ++i)
        EXPECT_EQ(main.cells()[i]->id(), i);
}

TEST(DefUse, UniqueNameStaysFreshAndCheap)
{
    Context ctx = baseProgram();
    Component &main = ctx.main();
    // Take a name the counter would otherwise mint.
    main.addCell("fsm0", "std_reg", {1}, ctx);
    std::set<Symbol> minted;
    for (int i = 0; i < 100; ++i) {
        Symbol fresh = main.uniqueName("fsm");
        EXPECT_TRUE(minted.insert(fresh).second) << fresh.str();
        EXPECT_EQ(main.findCell(fresh), nullptr);
        EXPECT_EQ(main.findGroup(fresh), nullptr);
        main.addCell(fresh, "std_reg", {1}, ctx);
    }
    EXPECT_FALSE(minted.count(Symbol("fsm0")));
}

TEST(DefUse, VerifyDefUseNamesComponentOnCorruption)
{
    Context ctx = baseProgram();
    Component &main = ctx.main();
    main.defUse();
    // Forge divergence: mutate through a path the index cannot see.
    // (const_cast stands in for a buggy pass writing around the API.)
    auto &assigns = const_cast<std::vector<Assignment> &>(
        std::as_const(main).group("upd").assignments());
    ASSERT_NE(main.maintainedDefUse(), nullptr); // const access kept it
    assigns.pop_back();
    try {
        verifyDefUse(main);
        FAIL() << "expected verifyDefUse to throw";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("main"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("DefUse"), std::string::npos);
    }
}

TEST(DefUse, RegisterAccessMatchesDirectScan)
{
    // The batch path over the index must agree with first principles on
    // a mixed conditional/unconditional write pattern.
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    b.reg("f", 1);
    Group &g = b.group("g");
    g.add(cellPort("x", "in"), constant(1, 8));
    g.add(cellPort("x", "write_en"), constant(1, 1));
    GuardPtr f = Guard::fromPort(cellPort("f", "out"));
    g.add(cellPort("y", "in"), constant(2, 8), f);
    g.add(cellPort("y", "write_en"), constant(1, 1), f);
    g.add(g.doneHole(), cellPort("x", "done"));

    auto access = analysis::registerAccess(ctx.main());
    const auto &acc = access.at(Symbol("g"));
    EXPECT_TRUE(acc.mustWrites.count(Symbol("x")));
    EXPECT_FALSE(acc.mustWrites.count(Symbol("y")));
    EXPECT_TRUE(acc.reads.count(Symbol("y")));
    EXPECT_TRUE(acc.reads.count(Symbol("f")));
    EXPECT_TRUE(acc.anyWrites.count(Symbol("y")));
}

} // namespace
} // namespace calyx
