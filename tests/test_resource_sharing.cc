#include <gtest/gtest.h>

#include "helpers.h"
#include "passes/resource_sharing.h"

namespace calyx {
namespace {

using passes::ResourceSharing;
using testing::compiledReg;

/**
 * Figure 3's example: par{let_r0, let_r1} then incr_r0; incr_r1 with
 * separate adders a0/a1 that can be shared.
 */
Context
figure3Program()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("r0", 8);
    b.reg("r1", 8);
    b.add("a0", 8);
    b.add("a1", 8);
    b.regWriteGroup("let_r0", "r0", constant(0, 8));
    b.regWriteGroup("let_r1", "r1", constant(0, 8));
    auto incr = [&b](const std::string &name, const std::string &reg,
                     const std::string &adder) {
        Group &g = b.group(name);
        g.add(cellPort(adder, "left"), cellPort(reg, "out"));
        g.add(cellPort(adder, "right"), constant(1, 8));
        g.add(cellPort(reg, "in"), cellPort(adder, "out"));
        g.add(cellPort(reg, "write_en"), constant(1, 1));
        g.add(g.doneHole(), cellPort(reg, "done"));
    };
    incr("incr_r0", "r0", "a0");
    incr("incr_r1", "r1", "a1");

    std::vector<ControlPtr> lets;
    lets.push_back(ComponentBuilder::enable("let_r0"));
    lets.push_back(ComponentBuilder::enable("let_r1"));
    std::vector<ControlPtr> top;
    top.push_back(ComponentBuilder::par(std::move(lets)));
    top.push_back(ComponentBuilder::enable("incr_r0"));
    top.push_back(ComponentBuilder::enable("incr_r1"));
    ctx.component("main").setControl(
        ComponentBuilder::seq(std::move(top)));
    return ctx;
}

TEST(ResourceSharing, SharesSequentialAdders)
{
    Context ctx = figure3Program();
    ResourceSharing pass;
    pass.runOnContext(ctx);
    EXPECT_EQ(pass.merged(), 1);

    // incr_r1 now uses a0 (the paper's mapping a1 -> a0).
    const Group &g = ctx.component("main").group("incr_r1");
    bool uses_a0 = false, uses_a1 = false;
    for (const auto &a : g.assignments()) {
        if (a.dst.parent == "a0")
            uses_a0 = true;
        if (a.dst.parent == "a1")
            uses_a1 = true;
    }
    EXPECT_TRUE(uses_a0);
    EXPECT_FALSE(uses_a1);
}

TEST(ResourceSharing, DoesNotShareParallelAdders)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("r0", 8);
    b.reg("r1", 8);
    b.add("a0", 8);
    b.add("a1", 8);
    auto incr = [&b](const std::string &name, const std::string &reg,
                     const std::string &adder) {
        Group &g = b.group(name);
        g.add(cellPort(adder, "left"), cellPort(reg, "out"));
        g.add(cellPort(adder, "right"), constant(1, 8));
        g.add(cellPort(reg, "in"), cellPort(adder, "out"));
        g.add(cellPort(reg, "write_en"), constant(1, 1));
        g.add(g.doneHole(), cellPort(reg, "done"));
    };
    incr("incr_r0", "r0", "a0");
    incr("incr_r1", "r1", "a1");
    std::vector<ControlPtr> pars;
    pars.push_back(ComponentBuilder::enable("incr_r0"));
    pars.push_back(ComponentBuilder::enable("incr_r1"));
    ctx.component("main").setControl(
        ComponentBuilder::par(std::move(pars)));

    ResourceSharing pass;
    pass.runOnContext(ctx);
    EXPECT_EQ(pass.merged(), 0);
}

TEST(ResourceSharing, DifferentWidthsNeverMerge)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("r0", 8);
    b.reg("r1", 16);
    b.add("a0", 8);
    b.add("a1", 16);
    auto incr = [&b](const std::string &name, const std::string &reg,
                     const std::string &adder, Width w) {
        Group &g = b.group(name);
        g.add(cellPort(adder, "left"), cellPort(reg, "out"));
        g.add(cellPort(adder, "right"), constant(1, w));
        g.add(cellPort(reg, "in"), cellPort(adder, "out"));
        g.add(cellPort(reg, "write_en"), constant(1, 1));
        g.add(g.doneHole(), cellPort(reg, "done"));
    };
    incr("g0", "r0", "a0", 8);
    incr("g1", "r1", "a1", 16);
    std::vector<ControlPtr> s;
    s.push_back(ComponentBuilder::enable("g0"));
    s.push_back(ComponentBuilder::enable("g1"));
    ctx.component("main").setControl(ComponentBuilder::seq(std::move(s)));

    ResourceSharing pass;
    pass.runOnContext(ctx);
    EXPECT_EQ(pass.merged(), 0);
}

TEST(ResourceSharing, StatefulCellsNeverShared)
{
    // Registers carry the "stateful" attribute; even in disjoint groups
    // they must not merge (that is RegisterSharing's job, with liveness).
    Context ctx = figure3Program();
    ResourceSharing pass;
    pass.runOnContext(ctx);
    const Component &main = ctx.component("main");
    EXPECT_NE(main.findCell("r0"), nullptr);
    EXPECT_NE(main.findCell("r1"), nullptr);
}

TEST(ResourceSharing, PreservesSemantics)
{
    // Figure 3 with sharing enabled must compute the same values.
    Context plain = figure3Program();
    EXPECT_EQ(compiledReg(plain, "r0"), 1u);

    Context shared = figure3Program();
    passes::CompileOptions opts;
    opts.resourceSharing = true;
    EXPECT_EQ(compiledReg(shared, "r0", opts), 1u);
    Context shared2 = figure3Program();
    EXPECT_EQ(compiledReg(shared2, "r1", opts), 1u);
}

TEST(ResourceSharing, CondComparatorRewrittenInControl)
{
    // The comparator read by a while's condition port is shareable; if
    // the pass merges it the control's port reference must follow.
    Context ctx = calyx::testing::counterProgram(3, 2);
    // Add a second comparator used sequentially before the loop.
    Component &main = ctx.component("main");
    main.addCell("lt2", "std_lt", {8}, ctx);
    Group &pre = main.addGroup("precheck");
    pre.add(cellPort("lt2", "left"), constant(1, 8));
    pre.add(cellPort("lt2", "right"), constant(2, 8));
    pre.add(pre.doneHole(), constant(1, 1));
    // Prepend to the existing seq control.
    auto seq = std::make_unique<Seq>();
    seq->add(ComponentBuilder::enable("precheck"));
    seq->add(main.takeControl());
    main.setControl(std::move(seq));

    passes::CompileOptions opts;
    opts.resourceSharing = true;
    EXPECT_EQ(compiledReg(ctx, "x", opts), 6u);
}

} // namespace
} // namespace calyx
