#include <gtest/gtest.h>

#include "analysis/coloring.h"
#include "analysis/liveness.h"
#include "analysis/pcfg.h"
#include "ir/defuse.h"
#include "analysis/schedule.h"
#include "ir/builder.h"

namespace calyx {
namespace {

namespace an = analysis;

ControlPtr
en(const std::string &g)
{
    return std::make_unique<Enable>(g);
}

TEST(Schedule, GroupsInControlIncludesCondGroups)
{
    auto w = std::make_unique<While>(cellPort("lt", "out"), "cond",
                                     en("body"));
    auto groups = an::groupsInControl(*w);
    EXPECT_TRUE(groups.count("cond"));
    EXPECT_TRUE(groups.count("body"));
}

TEST(Schedule, ParallelConflictsAcrossParChildren)
{
    std::vector<ControlPtr> children;
    children.push_back(en("a"));
    {
        std::vector<ControlPtr> seq_items;
        seq_items.push_back(en("b"));
        seq_items.push_back(en("c"));
        children.push_back(
            std::make_unique<Seq>(std::move(seq_items)));
    }
    Par par(std::move(children));
    auto conflicts = an::parallelConflicts(par);
    EXPECT_TRUE(conflicts.count(an::makePair("a", "b")));
    EXPECT_TRUE(conflicts.count(an::makePair("a", "c")));
    // b and c are sequential within one child: no conflict.
    EXPECT_FALSE(conflicts.count(an::makePair("b", "c")));
}

TEST(Schedule, SequentialGroupsDoNotConflict)
{
    std::vector<ControlPtr> s;
    s.push_back(en("a"));
    s.push_back(en("b"));
    Seq seq(std::move(s));
    EXPECT_TRUE(an::parallelConflicts(seq).empty());
}

TEST(Pcfg, StraightLineShape)
{
    std::vector<ControlPtr> s;
    s.push_back(en("a"));
    s.push_back(en("b"));
    Seq seq(std::move(s));
    auto g = an::buildPcfg(seq);
    int group_nodes = 0;
    for (const auto &n : g->nodes) {
        if (n.kind == an::PcfgNode::Kind::Group)
            ++group_nodes;
    }
    EXPECT_EQ(group_nodes, 2);
    EXPECT_GE(g->entry, 0);
    EXPECT_GE(g->exit, 0);
}

TEST(Pcfg, WhileHasBackEdge)
{
    While w(cellPort("lt", "out"), "cond", en("body"));
    auto g = an::buildPcfg(w);
    // Find the cond node; the body's node must have an edge back to it.
    int cond = -1, body = -1;
    for (size_t i = 0; i < g->nodes.size(); ++i) {
        if (g->nodes[i].kind == an::PcfgNode::Kind::Group) {
            if (g->nodes[i].group == "cond")
                cond = static_cast<int>(i);
            if (g->nodes[i].group == "body")
                body = static_cast<int>(i);
        }
    }
    ASSERT_GE(cond, 0);
    ASSERT_GE(body, 0);
    bool back_edge = false;
    for (int s : g->nodes[body].succs) {
        if (s == cond)
            back_edge = true;
    }
    EXPECT_TRUE(back_edge);
}

TEST(Pcfg, ParBecomesPNode)
{
    std::vector<ControlPtr> children;
    children.push_back(en("a"));
    children.push_back(en("b"));
    Par par(std::move(children));
    auto g = an::buildPcfg(par);
    int pnodes = 0;
    for (const auto &n : g->nodes) {
        if (n.kind == an::PcfgNode::Kind::ParNode) {
            ++pnodes;
            EXPECT_EQ(n.children.size(), 2u);
        }
    }
    EXPECT_EQ(pnodes, 1);
}

TEST(ReadWriteSets, MustAndMayWrites)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    b.reg("y", 8);
    b.reg("f", 1);
    Group &g = b.group("g");
    // Unconditional write of x, conditional write of y, read of f.
    g.add(cellPort("x", "in"), constant(1, 8));
    g.add(cellPort("x", "write_en"), constant(1, 1));
    GuardPtr f = Guard::fromPort(cellPort("f", "out"));
    g.add(cellPort("y", "in"), constant(2, 8), f);
    g.add(cellPort("y", "write_en"), constant(1, 1), f);
    g.add(g.doneHole(), cellPort("x", "done"));

    auto access = an::registerAccess(ctx.component("main"));
    const auto &acc = access.at("g");
    EXPECT_TRUE(acc.mustWrites.count("x"));
    EXPECT_FALSE(acc.mustWrites.count("y"));
    // Conditional writes keep the register live (treated as read).
    EXPECT_TRUE(acc.reads.count("y"));
    EXPECT_TRUE(acc.reads.count("f"));
    EXPECT_TRUE(acc.anyWrites.count("y"));
}

TEST(Liveness, DefAfterLastUseAllowsSharing)
{
    // Groups: w0 writes t0; rx reads t0 writes x; w1 writes t1;
    // ry reads t1 writes y. t0 dies before t1 is born.
    std::map<Symbol, an::RegAccess> access;
    access["w0"].mustWrites = {"t0"};
    access["w0"].anyWrites = {"t0"};
    access["rx"].reads = {"t0"};
    access["rx"].mustWrites = {"x"};
    access["rx"].anyWrites = {"x"};
    access["w1"].mustWrites = {"t1"};
    access["w1"].anyWrites = {"t1"};
    access["ry"].reads = {"t1"};
    access["ry"].mustWrites = {"y"};
    access["ry"].anyWrites = {"y"};

    std::vector<ControlPtr> s;
    s.push_back(en("w0"));
    s.push_back(en("rx"));
    s.push_back(en("w1"));
    s.push_back(en("ry"));
    Seq seq(std::move(s));
    auto g = an::buildPcfg(seq);
    an::Liveness liveness(*g, access, {});
    EXPECT_FALSE(liveness.interference().count({"t0", "t1"}));
}

TEST(Liveness, SimultaneouslyLiveInterfere)
{
    std::map<Symbol, an::RegAccess> access;
    access["w0"].mustWrites = {"t0"};
    access["w0"].anyWrites = {"t0"};
    access["w1"].mustWrites = {"t1"};
    access["w1"].anyWrites = {"t1"};
    access["sum"].reads = {"t0", "t1"};

    std::vector<ControlPtr> s;
    s.push_back(en("w0"));
    s.push_back(en("w1"));
    s.push_back(en("sum"));
    Seq seq(std::move(s));
    auto g = an::buildPcfg(seq);
    an::Liveness liveness(*g, access, {});
    EXPECT_TRUE(liveness.interference().count({"t0", "t1"}));
}

TEST(Liveness, ParChildrenSeeLiveOut)
{
    // par { write t0; write t1 } then read both: interference must be
    // discovered inside the p-node handling.
    std::map<Symbol, an::RegAccess> access;
    access["w0"].mustWrites = {"t0"};
    access["w0"].anyWrites = {"t0"};
    access["w1"].mustWrites = {"t1"};
    access["w1"].anyWrites = {"t1"};
    access["sum"].reads = {"t0", "t1"};

    std::vector<ControlPtr> children;
    children.push_back(en("w0"));
    children.push_back(en("w1"));
    std::vector<ControlPtr> s;
    s.push_back(std::make_unique<Par>(std::move(children)));
    s.push_back(en("sum"));
    Seq seq(std::move(s));
    auto g = an::buildPcfg(seq);
    an::Liveness liveness(*g, access, {});
    EXPECT_TRUE(liveness.interference().count({"t0", "t1"}));
}

TEST(Coloring, GreedyMergesIndependent)
{
    std::vector<Symbol> nodes = {"a", "b", "c"};
    std::set<std::pair<Symbol, Symbol>> conflicts = {
        {"a", "b"}};
    auto mapping = an::greedyColor(nodes, conflicts);
    EXPECT_EQ(mapping.at("a"), "a");
    EXPECT_NE(mapping.at("b"), "a");
    // c conflicts with nothing: merged onto the first color.
    EXPECT_EQ(mapping.at("c"), "a");
}

TEST(Coloring, CliqueNeedsDistinctColors)
{
    std::vector<Symbol> nodes = {"a", "b", "c"};
    std::set<std::pair<Symbol, Symbol>> conflicts = {
        {"a", "b"}, {"a", "c"}, {"b", "c"}};
    auto mapping = an::greedyColor(nodes, conflicts);
    EXPECT_EQ(mapping.at("a"), "a");
    EXPECT_EQ(mapping.at("b"), "b");
    EXPECT_EQ(mapping.at("c"), "c");
}

TEST(AlwaysLive, ControlAndContinuousUses)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("flag", 1);
    b.reg("other", 8);
    b.reg("ext", 8).attrs().set(Attributes::externalAttr, 1);
    Component &main = ctx.component("main");
    main.continuousAssignments().emplace_back(
        thisPort("done"), cellPort("flag", "out"));
    b.regWriteGroup("body", "other", constant(1, 8));
    Group &cond = b.group("cond");
    cond.add(cond.doneHole(), constant(1, 1));
    main.setControl(ComponentBuilder::whileStmt(
        cellPort("flag", "out"), "cond",
        ComponentBuilder::enable("body")));

    auto always = an::alwaysLiveRegisters(main);
    EXPECT_TRUE(always.count("flag"));
    EXPECT_TRUE(always.count("ext"));
    EXPECT_FALSE(always.count("other"));
}

} // namespace
} // namespace calyx
