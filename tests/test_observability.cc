/**
 * Observability suite (ISSUE 7): the SimObserver probe interface, the
 * VCD trace writer, and the cycle-accurate activity profiler.
 *
 * The load-bearing property is engine independence: a VCD trace of the
 * same design must be byte-identical whether the cycle values came
 * from the jacobi oracle, the levelized scheduler, or the compiled
 * engine's generated probe callback. Profiler counts are pinned
 * against hand-computed activity on the canonical counter programs,
 * and the gemm kernel checks the ISSUE acceptance bar of >= 95% cycle
 * attribution on a real workload.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "helpers.h"
#include "ir/parser.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/vcd.h"
#include "sim/compiled.h"
#include "sim/cycle_sim.h"
#include "sim/interp.h"
#include "support/error.h"
#include "support/json.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

namespace calyx {
namespace {

namespace fs = std::filesystem;

#define SKIP_WITHOUT_TOOLCHAIN()                                          \
    do {                                                                  \
        std::string reason = sim::compiledEngineUnavailableReason();      \
        if (!reason.empty())                                              \
            GTEST_SKIP() << reason;                                       \
    } while (0)

/** Point $CALYX_CPPSIM_CACHE at a fresh directory for one test. */
class ScopedCacheDir
{
  public:
    ScopedCacheDir()
    {
        const char *old = std::getenv("CALYX_CPPSIM_CACHE");
        hadOld = old != nullptr;
        if (hadOld)
            oldVal = old;
        dir = (fs::temp_directory_path() /
               ("calyx-obs-test-" + std::to_string(::getpid())))
                  .string();
        fs::remove_all(dir);
        ::setenv("CALYX_CPPSIM_CACHE", dir.c_str(), 1);
    }

    ~ScopedCacheDir()
    {
        if (hadOld)
            ::setenv("CALYX_CPPSIM_CACHE", oldVal.c_str(), 1);
        else
            ::unsetenv("CALYX_CPPSIM_CACHE");
        fs::remove_all(dir);
    }

  private:
    std::string dir, oldVal;
    bool hadOld = false;
};

std::string
readExample(const std::string &name)
{
    fs::path path = fs::path(CALYX_EXAMPLES_DIR) / name;
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Lowered counter example, freshly compiled per call. */
Context
loweredCounterExample()
{
    Context ctx = Parser::parseProgram(readExample("counter.futil"));
    passes::runPipeline(ctx, "all");
    return ctx;
}

/** Trace a lowered context under one engine into a string. */
std::string
traceWith(Context &ctx, sim::Engine engine,
          obs::VcdScope scope = obs::VcdScope::All)
{
    sim::SimProgram sp(ctx, "main");
    std::ostringstream os;
    obs::VcdWriter vcd(sp, os, scope);
    sim::CycleSim cs(sp, engine);
    cs.state().addObserver(&vcd);
    cs.run();
    return os.str();
}

// --- Cross-engine VCD identity ------------------------------------------

TEST(ObsVcd, ByteIdenticalAcrossInterpretedEngines)
{
    Context cj = loweredCounterExample();
    Context cl = loweredCounterExample();
    std::string jacobi = traceWith(cj, sim::Engine::Jacobi);
    std::string levelized = traceWith(cl, sim::Engine::Levelized);
    ASSERT_FALSE(jacobi.empty());
    EXPECT_NE(jacobi.find("$enddefinitions"), std::string::npos);
    EXPECT_EQ(jacobi, levelized);
}

TEST(ObsVcd, ByteIdenticalCompiledEngine)
{
    SKIP_WITHOUT_TOOLCHAIN();
    ScopedCacheDir cache;
    Context cl = loweredCounterExample();
    Context cc = loweredCounterExample();
    std::string levelized = traceWith(cl, sim::Engine::Levelized);
    std::string compiled = traceWith(cc, sim::Engine::Compiled);
    EXPECT_EQ(levelized, compiled);
}

TEST(ObsVcd, ScopesNest)
{
    Context c_all = loweredCounterExample();
    Context c_state = loweredCounterExample();
    Context c_top = loweredCounterExample();
    std::string all = traceWith(c_all, sim::Engine::Levelized,
                                obs::VcdScope::All);
    std::string state = traceWith(c_state, sim::Engine::Levelized,
                                  obs::VcdScope::State);
    std::string top = traceWith(c_top, sim::Engine::Levelized,
                                obs::VcdScope::Top);

    auto vars = [](const std::string &vcd) {
        size_t n = 0, pos = 0;
        while ((pos = vcd.find("$var ", pos)) != std::string::npos) {
            ++n;
            pos += 5;
        }
        return n;
    };
    EXPECT_GT(vars(all), vars(state));
    EXPECT_GT(vars(state), vars(top));
    EXPECT_GT(vars(top), 0u);
    // Top scope records only the signature; no primitive sub-scopes.
    EXPECT_EQ(top.find("$scope module r "), std::string::npos);
    EXPECT_NE(all.find("$scope module r "), std::string::npos);
}

TEST(ObsVcd, ScopeNameParsing)
{
    EXPECT_EQ(obs::parseVcdScope("top"), obs::VcdScope::Top);
    EXPECT_EQ(obs::parseVcdScope("state"), obs::VcdScope::State);
    EXPECT_EQ(obs::parseVcdScope("all"), obs::VcdScope::All);
    EXPECT_THROW(obs::parseVcdScope("everything"), Error);
    EXPECT_STREQ(obs::vcdScopeName(obs::VcdScope::State), "state");
}

// --- Profiler: lowered counter example ----------------------------------

/**
 * examples/counter.futil lowered through "all" static-schedules the
 * two back-to-back register writes: machine "static0" spends 2 cycles
 * in its "schedule" state and 1 in "done", 3 cycles total. The
 * "default" pipeline keeps the dynamic FSM ("control0"): one 2-cycle
 * write state per enable plus "done", 5 cycles total.
 */
TEST(ObsProfile, LoweredCounterStateOccupancy)
{
    Context ctx = loweredCounterExample();
    sim::SimProgram sp(ctx, "main");
    obs::Profiler prof(sp);
    sim::CycleSim cs(sp);
    cs.state().addObserver(&prof);
    uint64_t cycles = cs.run();

    EXPECT_EQ(cycles, 3u);
    EXPECT_EQ(prof.cycles(), 3u);
    EXPECT_EQ(prof.stateCycles("static0", "schedule"), 2u);
    EXPECT_EQ(prof.stateCycles("static0", "done"), 1u);
    EXPECT_DOUBLE_EQ(prof.attributedPct(), 100.0);
}

TEST(ObsProfile, DefaultPipelineCounterStateOccupancy)
{
    Context ctx = Parser::parseProgram(readExample("counter.futil"));
    passes::runPipeline(ctx, "default");
    sim::SimProgram sp(ctx, "main");
    obs::Profiler prof(sp);
    sim::CycleSim cs(sp);
    cs.state().addObserver(&prof);
    uint64_t cycles = cs.run();

    EXPECT_EQ(cycles, 5u);
    EXPECT_EQ(prof.stateCycles("control0", "write"), 2u);
    EXPECT_EQ(prof.stateCycles("control0", "done"), 1u);
    EXPECT_DOUBLE_EQ(prof.attributedPct(), 100.0);
}

/**
 * The same design, un-lowered, runs under the control interpreter in 4
 * cycles, all of them inside the "write" group (two 2-cycle register
 * writes back to back).
 */
TEST(ObsProfile, GroupModeCounterExample)
{
    Context ctx = Parser::parseProgram(readExample("counter.futil"));
    sim::SimProgram sp(ctx, "main");
    obs::Profiler prof(sp);
    sim::Interp interp(sp);
    interp.state().addObserver(&prof);
    uint64_t cycles = interp.run();

    EXPECT_EQ(cycles, 4u);
    EXPECT_EQ(prof.cycles(), 4u);
    EXPECT_EQ(prof.groupCycles("write"), 4u);
    EXPECT_DOUBLE_EQ(prof.attributedPct(), 100.0);
}

// --- Profiler: nested-control workload ----------------------------------

/**
 * counterProgram(3, 2) = init; while (i < 3) with comb cond { bump_x;
 * bump_i }. Under the control interpreter each register-write group
 * takes 2 cycles (write + done) and the combinational cond check takes
 * 1; the while condition is evaluated 4 times (i = 0..3):
 *
 *   init               2
 *   cond   4 checks    4
 *   bump_x 3 trips     6
 *   bump_i 3 trips     6
 *                     18 total, every cycle inside some group.
 */
TEST(ObsProfile, NestedControlGroupCycles)
{
    Context ctx = testing::counterProgram(3, 2);
    sim::SimProgram sp(ctx, "main");
    obs::Profiler prof(sp);
    sim::Interp interp(sp);
    interp.state().addObserver(&prof);
    uint64_t cycles = interp.run();

    EXPECT_EQ(cycles, 18u);
    EXPECT_EQ(prof.groupCycles("init"), 2u);
    EXPECT_EQ(prof.groupCycles("cond"), 4u);
    EXPECT_EQ(prof.groupCycles("bump_x"), 6u);
    EXPECT_EQ(prof.groupCycles("bump_i"), 6u);
    EXPECT_DOUBLE_EQ(prof.attributedPct(), 100.0);
}

/** Lowered, the same program's FSM occupancy covers every cycle. */
TEST(ObsProfile, NestedControlLoweredFullyAttributed)
{
    Context ctx = testing::counterProgram(3, 2);
    passes::runPipeline(ctx, "all");
    sim::SimProgram sp(ctx, "main");
    obs::Profiler prof(sp);
    sim::CycleSim cs(sp);
    cs.state().addObserver(&prof);
    uint64_t cycles = cs.run();

    EXPECT_GT(cycles, 0u);
    EXPECT_DOUBLE_EQ(prof.attributedPct(), 100.0);

    json::Value report = prof.report();
    EXPECT_EQ(report.at("cycles").asNum(), cycles);
    EXPECT_EQ(report.at("attributed_cycles").asNum(), cycles);
    // Occupancy of every machine sums to the cycles it was observed.
    for (const auto &m : report.at("machines").items()) {
        uint64_t sum = m.at("unattributed_cycles").asNum();
        for (const auto &s : m.at("states").items())
            sum += s.at("cycles").asNum();
        EXPECT_EQ(sum, cycles) << m.at("name").asStr();
    }
}

// --- Profiler: real workload attribution (ISSUE acceptance bar) ---------

TEST(ObsProfile, GemmAttributionAtLeast95Pct)
{
    const workloads::Kernel &k = workloads::kernel("gemm");
    dahlia::Program prog = dahlia::parse(k.source);
    workloads::MemState inputs = workloads::makeInputs(k.name, prog);

    // The profiler needs the SimProgram, which runOnHardware builds
    // internally — replicate its compile step, then attach.
    Context ctx = dahlia::compileDahlia(prog);
    passes::runPipeline(ctx, "all");
    sim::SimProgram sp(ctx, "main");
    obs::Profiler prof(sp);
    sim::CycleSim cs(sp);
    cs.state().addObserver(&prof);
    workloads::pokeInputs(sp, prog, inputs);
    uint64_t cycles = cs.run();

    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(prof.cycles(), cycles);
    EXPECT_GE(prof.attributedPct(), 95.0) << "gemm attribution";

    // Memory traffic is observed: gemm reads A, B, and C.
    json::Value report = prof.report();
    bool saw_reads = false;
    for (const auto &m : report.at("memories").items())
        saw_reads |= m.at("read_cycles").asNum() > 0;
    EXPECT_TRUE(saw_reads);
}

// --- Profiler consistency across engines --------------------------------

TEST(ObsProfile, SameCountsUnderJacobiAndLevelized)
{
    auto profileJson = [](sim::Engine engine) {
        Context ctx = loweredCounterExample();
        sim::SimProgram sp(ctx, "main");
        obs::Profiler prof(sp);
        sim::CycleSim cs(sp, engine);
        cs.state().addObserver(&prof);
        cs.run();
        json::Value report = prof.report();
        // The engine-effort section legitimately differs per engine.
        std::ostringstream os;
        report.at("cycles").write(os);
        report.at("attributed_cycles").write(os);
        report.at("groups").write(os);
        report.at("machines").write(os);
        report.at("memories").write(os);
        return os.str();
    };
    EXPECT_EQ(profileJson(sim::Engine::Jacobi),
              profileJson(sim::Engine::Levelized));
}

// --- Report envelope & JSON reals ---------------------------------------

TEST(ObsReport, EnvelopeShape)
{
    json::Value env = obs::reportEnvelope("foo.futil");
    EXPECT_EQ(env.at("version").asNum(), 1u);
    EXPECT_EQ(env.at("file").asStr(), "foo.futil");
}

TEST(JsonReal, WriteAlwaysReadsBackAsReal)
{
    json::Value v = json::Value::real(2.5);
    std::ostringstream os;
    v.write(os);
    EXPECT_EQ(os.str(), "2.5");

    // Whole-number reals keep a decimal marker so they round-trip as
    // Real, not Num.
    std::ostringstream os2;
    json::Value::real(100.0).write(os2);
    EXPECT_EQ(os2.str(), "100.0");

    json::Value parsed = json::parse(os2.str());
    EXPECT_EQ(parsed.kind(), json::Value::Kind::Real);
    EXPECT_DOUBLE_EQ(parsed.asReal(), 100.0);
}

TEST(JsonReal, ParsesSignsFractionsExponents)
{
    EXPECT_DOUBLE_EQ(json::parse("-3.25").asReal(), -3.25);
    EXPECT_DOUBLE_EQ(json::parse("1e3").asReal(), 1000.0);
    EXPECT_DOUBLE_EQ(json::parse("2.5e-1").asReal(), 0.25);
    // Plain unsigned integers still land as exact Num.
    json::Value n = json::parse("18446744073709551615");
    EXPECT_EQ(n.kind(), json::Value::Kind::Num);
    EXPECT_EQ(n.asNum(), 18446744073709551615ull);
    // asReal coerces Num for consumers that only care about magnitude.
    EXPECT_DOUBLE_EQ(json::parse("42").asReal(), 42.0);
}

} // namespace
} // namespace calyx
