#include <gtest/gtest.h>

#include "support/bits.h"
#include "support/error.h"

namespace calyx {
namespace {

TEST(Bits, BitMask)
{
    EXPECT_EQ(bitMask(0), 0u);
    EXPECT_EQ(bitMask(1), 1u);
    EXPECT_EQ(bitMask(2), 3u);
    EXPECT_EQ(bitMask(8), 255u);
    EXPECT_EQ(bitMask(32), 0xFFFFFFFFu);
    EXPECT_EQ(bitMask(64), ~uint64_t(0));
    EXPECT_EQ(bitMask(100), ~uint64_t(0));
}

TEST(Bits, Truncate)
{
    EXPECT_EQ(truncate(0xFF, 4), 0xFu);
    EXPECT_EQ(truncate(0x100, 8), 0u);
    EXPECT_EQ(truncate(5, 32), 5u);
    EXPECT_EQ(truncate(~uint64_t(0), 1), 1u);
}

TEST(Bits, BitsNeeded)
{
    EXPECT_EQ(bitsNeeded(0), 1u);
    EXPECT_EQ(bitsNeeded(1), 1u);
    EXPECT_EQ(bitsNeeded(2), 2u);
    EXPECT_EQ(bitsNeeded(3), 2u);
    EXPECT_EQ(bitsNeeded(4), 3u);
    EXPECT_EQ(bitsNeeded(7), 3u);
    EXPECT_EQ(bitsNeeded(8), 4u);
    EXPECT_EQ(bitsNeeded(255), 8u);
    EXPECT_EQ(bitsNeeded(256), 9u);
}

TEST(Bits, FsmWidth)
{
    // A seq with n children needs states 0..n.
    EXPECT_EQ(fsmWidth(2), 2u);
    EXPECT_EQ(fsmWidth(3), 2u);
    EXPECT_EQ(fsmWidth(4), 3u);
}

TEST(Errors, FatalThrows)
{
    EXPECT_THROW(fatal("boom: ", 42), Error);
    try {
        fatal("value is ", 7);
    } catch (const Error &e) {
        EXPECT_STREQ(e.what(), "value is 7");
    }
}

} // namespace
} // namespace calyx
