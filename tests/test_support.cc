#include <gtest/gtest.h>

#include "support/bits.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/json.h"
#include "support/subprocess.h"
#include "support/text.h"

namespace calyx {
namespace {

TEST(Bits, BitMask)
{
    EXPECT_EQ(bitMask(0), 0u);
    EXPECT_EQ(bitMask(1), 1u);
    EXPECT_EQ(bitMask(2), 3u);
    EXPECT_EQ(bitMask(8), 255u);
    EXPECT_EQ(bitMask(32), 0xFFFFFFFFu);
    EXPECT_EQ(bitMask(64), ~uint64_t(0));
    EXPECT_EQ(bitMask(100), ~uint64_t(0));
}

TEST(Bits, Truncate)
{
    EXPECT_EQ(truncate(0xFF, 4), 0xFu);
    EXPECT_EQ(truncate(0x100, 8), 0u);
    EXPECT_EQ(truncate(5, 32), 5u);
    EXPECT_EQ(truncate(~uint64_t(0), 1), 1u);
}

TEST(Bits, BitsNeeded)
{
    EXPECT_EQ(bitsNeeded(0), 1u);
    EXPECT_EQ(bitsNeeded(1), 1u);
    EXPECT_EQ(bitsNeeded(2), 2u);
    EXPECT_EQ(bitsNeeded(3), 2u);
    EXPECT_EQ(bitsNeeded(4), 3u);
    EXPECT_EQ(bitsNeeded(7), 3u);
    EXPECT_EQ(bitsNeeded(8), 4u);
    EXPECT_EQ(bitsNeeded(255), 8u);
    EXPECT_EQ(bitsNeeded(256), 9u);
}

TEST(Bits, FsmWidth)
{
    // A seq with n children needs states 0..n.
    EXPECT_EQ(fsmWidth(2), 2u);
    EXPECT_EQ(fsmWidth(3), 2u);
    EXPECT_EQ(fsmWidth(4), 3u);
}

TEST(Errors, FatalThrows)
{
    EXPECT_THROW(fatal("boom: ", 42), Error);
    try {
        fatal("value is ", 7);
    } catch (const Error &e) {
        EXPECT_STREQ(e.what(), "value is 7");
    }
}

TEST(Text, CountLines)
{
    EXPECT_EQ(countLines(""), 0);
    EXPECT_EQ(countLines("no newline"), 0);
    EXPECT_EQ(countLines("a\nb\n"), 2);
    EXPECT_EQ(countLines("a\nb"), 1);
}

TEST(Text, EditDistance)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", "abc"), 0u);
    EXPECT_EQ(editDistance("abc", ""), 3u);
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("verilog", "verilig"), 1u);
}

TEST(Text, SuggestClosest)
{
    std::vector<std::string> names = {"verilog", "firrtl", "dot"};
    EXPECT_EQ(suggestClosest("verilig", names), "verilog");
    EXPECT_EQ(suggestClosest("frrtl", names), "firrtl");
    EXPECT_EQ(suggestClosest("zzzzzzzz", names), "");
    EXPECT_EQ(suggestClosest("x", {}), "");
}

TEST(Hash, ContentDigest)
{
    // Deterministic, 32 hex chars, and distinct across tiny edits —
    // the properties the compiled-module cache keys on.
    std::string d = contentDigest("cppsim module body");
    EXPECT_EQ(d.size(), 32u);
    EXPECT_EQ(d.find_first_not_of("0123456789abcdef"), std::string::npos);
    EXPECT_EQ(d, contentDigest("cppsim module body"));
    EXPECT_NE(d, contentDigest("cppsim module body "));
    EXPECT_NE(d, contentDigest(""));
    EXPECT_FALSE(contentHash("a") == contentHash("b"));
}

TEST(Subprocess, RunAndFind)
{
    // `sh` exists on any host this suite runs on.
    std::string sh = findProgram("sh");
    ASSERT_FALSE(sh.empty());
    EXPECT_EQ(sh[0], '/');
    EXPECT_EQ(findProgram("no-such-program-zzz"), "");

    ProcessResult ok = runProcess({sh, "-c", "echo out; echo err >&2"});
    EXPECT_TRUE(ok.ok());
    // stdout and stderr are both captured (interleaved).
    EXPECT_NE(ok.output.find("out"), std::string::npos);
    EXPECT_NE(ok.output.find("err"), std::string::npos);

    ProcessResult bad = runProcess({sh, "-c", "exit 3"});
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.exitCode, 3);
}

TEST(Json, BuildAndWrite)
{
    json::Value obj = json::Value::object();
    obj.set("name", json::Value::str("r0"));
    obj.set("width", json::Value::number(32));
    obj.set("memory", json::Value::boolean(false));
    json::Value arr = json::Value::array();
    arr.push(json::Value::number(1));
    arr.push(json::Value::number(2));
    obj.set("params", std::move(arr));

    json::Value parsed = json::parse(obj.str());
    EXPECT_EQ(parsed.at("name").asStr(), "r0");
    EXPECT_EQ(parsed.at("width").asNum(), 32u);
    EXPECT_FALSE(parsed.at("memory").asBool());
    EXPECT_EQ(parsed.at("params").items().size(), 2u);
    EXPECT_EQ(parsed.at("params").items()[1].asNum(), 2u);
    EXPECT_EQ(parsed.find("missing"), nullptr);
    EXPECT_THROW(parsed.at("missing"), Error);
}

TEST(Json, StringEscaping)
{
    json::Value v = json::Value::str("a\"b\\c\nd\te");
    json::Value parsed = json::parse(v.str());
    EXPECT_EQ(parsed.asStr(), "a\"b\\c\nd\te");
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(json::parse(""), Error);
    EXPECT_THROW(json::parse("{"), Error);
    EXPECT_THROW(json::parse("[1, 2,]"), Error);
    EXPECT_THROW(json::parse("{\"a\": 1} trailing"), Error);
    EXPECT_THROW(json::parse("18446744073709551616"), Error); // 2^64
    EXPECT_THROW(json::parse("1."), Error);
    EXPECT_THROW(json::parse("1e"), Error);
    EXPECT_THROW(json::Value::number(1).asStr(), Error);
    // Reals and negatives parse since the profiler's report envelope
    // (obs/report.h) started carrying them.
    EXPECT_DOUBLE_EQ(json::parse("1.5").asReal(), 1.5);
    EXPECT_DOUBLE_EQ(json::parse("-3").asReal(), -3.0);
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    json::Value obj = json::Value::object();
    obj.set("z", json::Value::number(1));
    obj.set("a", json::Value::number(2));
    EXPECT_EQ(obj.str(), "{\n  \"z\": 1,\n  \"a\": 2\n}");
}

} // namespace
} // namespace calyx
