/**
 * Partitioned multi-threaded single-stimulus simulation (ISSUE 10):
 * running the macro-task partition plan (sim/partition.h) with
 * SimState::setThreads(N) must be bit-identical to the single-thread
 * walk — same cycle counts, same registers, same memories — on every
 * example program, PolyBench kernels, and a systolic configuration, in
 * both the levelized and compiled engines, and across arbitrary
 * partition-count targets ($CALYX_SIM_PARTITIONS). Serialized designs
 * must degrade to a single task instead of a task-per-level plan, VCD
 * traces must stay byte-identical under threads (observer delivery is
 * a single host-side drain point), and the process-wide WorkPool must
 * cap combined occupancy instead of stacking thread counts
 * (oversubscription satellite). The whole suite also runs under TSan
 * in CI, which is what actually holds the dependency-stamp memory
 * model to its claims.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/parser.h"
#include "frontends/systolic/systolic.h"
#include "helpers.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "obs/vcd.h"
#include "sim/compiled.h"
#include "sim/cycle_sim.h"
#include "sim/partition.h"
#include "sim/schedule.h"
#include "support/error.h"
#include "support/pool.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

namespace calyx {
namespace {

namespace fs = std::filesystem;

#define SKIP_WITHOUT_TOOLCHAIN()                                          \
    do {                                                                  \
        std::string reason = sim::compiledEngineUnavailableReason();      \
        if (!reason.empty())                                              \
            GTEST_SKIP() << reason;                                       \
    } while (0)

/** Engines the partitioned path covers on this host. */
std::vector<sim::Engine>
partitionedEngines()
{
    std::vector<sim::Engine> out{sim::Engine::Levelized};
    if (sim::compiledEngineUnavailableReason().empty())
        out.push_back(sim::Engine::Compiled);
    return out;
}

struct RunResult
{
    uint64_t cycles = 0;
    std::vector<std::vector<uint64_t>> state;

    bool
    operator==(const RunResult &o) const
    {
        return cycles == o.cycles && state == o.state;
    }
};

/** One full run of a lowered context at a given thread count. */
RunResult
runContext(const Context &ctx, sim::Engine engine, unsigned threads)
{
    sim::SimProgram sp(ctx, ctx.entrypoint());
    sim::CycleSim cs(sp, engine);
    cs.state().setThreads(threads);
    RunResult r;
    r.cycles = cs.run();
    r.state = sim::archState(sp);
    return r;
}

std::string
readExample(const fs::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Temporarily set (or clear) one environment variable. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value) : name(name)
    {
        const char *old = std::getenv(name);
        hadOld = old != nullptr;
        if (hadOld)
            oldVal = old;
        ::setenv(name, value.c_str(), 1);
    }

    ~ScopedEnv()
    {
        if (hadOld)
            ::setenv(name, oldVal.c_str(), 1);
        else
            ::unsetenv(name);
    }

  private:
    const char *name;
    bool hadOld = false;
    std::string oldVal;
};

// --- Bit identity: every example, both engines, threads 1 vs 2 vs 4 ----

TEST(PartitionedSim, BitIdenticalOnAllExamples)
{
    int found = 0;
    for (const auto &entry : fs::directory_iterator(CALYX_EXAMPLES_DIR)) {
        if (entry.path().extension() != ".futil")
            continue;
        ++found;
        std::string source = readExample(entry.path());
        std::string label = entry.path().filename().string();
        for (sim::Engine engine : partitionedEngines()) {
            Context base = Parser::parseProgram(source);
            passes::runPipeline(base, "all");
            RunResult scalar = runContext(base, engine, 1);
            for (unsigned threads : {2u, 4u}) {
                Context ctx = Parser::parseProgram(source);
                passes::runPipeline(ctx, "all");
                RunResult part = runContext(ctx, engine, threads);
                EXPECT_EQ(scalar.cycles, part.cycles)
                    << label << " (" << sim::engineName(engine) << " x"
                    << threads << ")";
                EXPECT_EQ(scalar.state, part.state)
                    << label << " (" << sim::engineName(engine) << " x"
                    << threads << ")";
            }
        }
    }
    EXPECT_GE(found, 2) << "expected at least two examples/*.futil";
}

// --- Bit identity: PolyBench kernels ------------------------------------

/** Compile, seed, and run one PolyBench kernel at a thread count. */
RunResult
runKernel(const std::string &name, sim::Engine engine, unsigned threads)
{
    const workloads::Kernel &k = workloads::kernel(name);
    dahlia::Program prog = dahlia::parse(k.source);
    workloads::MemState inputs = workloads::makeInputs(name, prog);
    Context ctx = dahlia::compileDahlia(prog);
    passes::runPipeline(ctx, "all");
    sim::SimProgram sp(ctx, "main");
    workloads::pokeInputs(sp, prog, inputs);
    sim::CycleSim cs(sp, engine);
    cs.state().setThreads(threads);
    RunResult r;
    r.cycles = cs.run();
    for (auto &[mem, data] : workloads::readMemories(sp, prog))
        r.state.push_back(data);
    return r;
}

TEST(PartitionedSim, BitIdenticalOnPolybenchKernels)
{
    for (const std::string &name : {"gemm", "atax"}) {
        for (sim::Engine engine : partitionedEngines()) {
            RunResult scalar = runKernel(name, engine, 1);
            RunResult part = runKernel(name, engine, 4);
            EXPECT_EQ(scalar.cycles, part.cycles)
                << name << " (" << sim::engineName(engine) << ")";
            EXPECT_EQ(scalar.state, part.state)
                << name << " (" << sim::engineName(engine) << ")";
        }
    }
}

// --- Bit identity: systolic array ---------------------------------------

RunResult
runSystolic(int dim, sim::Engine engine, unsigned threads)
{
    Context ctx;
    systolic::Config cfg;
    cfg.rows = cfg.cols = cfg.inner = dim;
    systolic::generate(ctx, cfg);
    passes::runPipeline(ctx, "all,-resource-sharing,-register-sharing");
    sim::SimProgram sp(ctx, "main");
    for (int r = 0; r < dim; ++r) {
        auto *l = sp.findModel(systolic::leftMemName(r))->memory();
        auto *t = sp.findModel(systolic::topMemName(r))->memory();
        for (int k = 0; k < dim; ++k) {
            (*l)[k] = r + k + 1;
            (*t)[k] = 2 * r + k + 1;
        }
    }
    sim::CycleSim cs(sp, engine);
    cs.state().setThreads(threads);
    RunResult out;
    out.cycles = cs.run();
    out.state = sim::archState(sp);
    return out;
}

TEST(PartitionedSim, BitIdenticalOnSystolicArray)
{
    const int dim = 4;
    for (sim::Engine engine : partitionedEngines()) {
        RunResult scalar = runSystolic(dim, engine, 1);
        for (unsigned threads : {2u, 4u}) {
            RunResult part = runSystolic(dim, engine, threads);
            EXPECT_EQ(scalar, part)
                << sim::engineName(engine) << " x" << threads;
        }
    }
}

// --- Randomized partition-count targets ---------------------------------

TEST(PartitionedSim, RandomizedPartitionCountsLevelized)
{
    std::string source = readExample(
        fs::path(CALYX_EXAMPLES_DIR) / "counter.futil");
    Context base = Parser::parseProgram(source);
    passes::runPipeline(base, "all");
    RunResult scalar = runContext(base, sim::Engine::Levelized, 1);

    // Fixed seed: the values vary across the full clamp range but the
    // test is reproducible.
    std::mt19937 rng(0xCA1F'1234);
    std::uniform_int_distribution<uint32_t> dist(1, 300);
    for (int i = 0; i < 6; ++i) {
        uint32_t target = dist(rng);
        ScopedEnv env("CALYX_SIM_PARTITIONS", std::to_string(target));
        Context ctx = Parser::parseProgram(source);
        passes::runPipeline(ctx, "all");
        RunResult part = runContext(ctx, sim::Engine::Levelized, 4);
        EXPECT_EQ(scalar, part) << "CALYX_SIM_PARTITIONS=" << target;
    }
}

TEST(PartitionedSim, NonDefaultPartitionCountCompiled)
{
    SKIP_WITHOUT_TOOLCHAIN();
    std::string source = readExample(
        fs::path(CALYX_EXAMPLES_DIR) / "counter.futil");
    Context base = Parser::parseProgram(source);
    passes::runPipeline(base, "all");
    RunResult scalar = runContext(base, sim::Engine::Compiled, 1);

    ScopedEnv env("CALYX_SIM_PARTITIONS", "5");
    Context ctx = Parser::parseProgram(source);
    passes::runPipeline(ctx, "all");
    RunResult part = runContext(ctx, sim::Engine::Compiled, 3);
    EXPECT_EQ(scalar, part);
}

// --- Plan shape ----------------------------------------------------------

/** Structural invariants every plan must satisfy (sim/partition.h). */
void
expectPlanWellFormed(const sim::PartitionPlan &plan, size_t num_nodes)
{
    size_t covered = 0;
    for (size_t t = 0; t < plan.tasks.size(); ++t) {
        const auto &task = plan.tasks[t];
        covered += task.nodes.size();
        for (size_t i = 0; i < task.nodes.size(); ++i) {
            ASSERT_LT(task.nodes[i], num_nodes);
            EXPECT_EQ(plan.taskOfNode[task.nodes[i]], t);
            if (i)
                EXPECT_LT(task.nodes[i - 1], task.nodes[i]);
        }
        for (size_t i = 0; i < task.deps.size(); ++i) {
            EXPECT_LT(task.deps[i], t) << "dep must be an earlier task";
            if (i)
                EXPECT_LT(task.deps[i - 1], task.deps[i]);
        }
        EXPECT_GE(task.cost, 1u);
        EXPECT_LT(task.thread, plan.threads);
    }
    EXPECT_EQ(covered, num_nodes) << "every node in exactly one task";
    size_t placed = 0;
    for (const auto &list : plan.threadTasks) {
        placed += list.size();
        for (size_t i = 1; i < list.size(); ++i)
            EXPECT_LT(list[i - 1], list[i]) << "threadTasks ascending";
    }
    EXPECT_EQ(placed, plan.tasks.size());
}

TEST(PartitionPlan, WellFormedAcrossTargetsAndThreads)
{
    Context ctx = testing::counterProgram(7, 2);
    passes::runPipeline(ctx, "all");
    sim::SimProgram sp(ctx, "main");
    const sim::SimSchedule &sched = sp.schedule();
    for (uint32_t target : {1u, 2u, 3u, 8u, 16u, 64u}) {
        for (unsigned threads : {1u, 2u, 4u}) {
            sim::PartitionPlan plan =
                sim::buildPartitionPlan(sp, sched, target, threads);
            expectPlanWellFormed(plan, sched.nodes().size());
        }
    }
}

TEST(PartitionPlan, SerialChainDegradesToOneTask)
{
    // A pure dependency chain has one node per level; the chain-merge
    // must collapse it to a single task (not a task per level), so a
    // serialized design runs exactly like the scalar engine instead of
    // ping-ponging between threads.
    Context ctx;
    Component &comp = ctx.addComponent("main");
    auto &assigns = comp.continuousAssignments();
    const int len = 12;
    for (int i = 0; i < len; ++i)
        comp.addCell("w" + std::to_string(i), "std_wire", {8}, ctx);
    assigns.emplace_back(cellPort("w0", "in"), constant(7, 8));
    for (int i = 1; i < len; ++i) {
        assigns.emplace_back(cellPort("w" + std::to_string(i), "in"),
                             cellPort("w" + std::to_string(i - 1), "out"));
    }
    sim::SimProgram sp(ctx, "main");
    const sim::SimSchedule &sched = sp.schedule();
    sim::PartitionPlan plan = sim::buildPartitionPlan(sp, sched, 16, 4);
    expectPlanWellFormed(plan, sched.nodes().size());
    EXPECT_EQ(plan.tasks.size(), 1u);
    EXPECT_FALSE(plan.parallel());
}

TEST(PartitionedSim, GuardedSccSettlesUnderThreads)
{
    // The guarded combinational cycle from the engine-equivalence
    // suite: the SCC is one condensed schedule node, so it lands in one
    // task and its Gauss-Seidel fixed point runs single-threaded inside
    // the partitioned walk.
    Context ctx;
    Component &comp = ctx.addComponent("main");
    comp.addCell("sel", "std_wire", {1}, ctx);
    comp.addCell("w1", "std_wire", {8}, ctx);
    comp.addCell("w2", "std_wire", {8}, ctx);
    auto &assigns = comp.continuousAssignments();
    assigns.emplace_back(cellPort("sel", "in"), constant(0, 1));
    GuardPtr on = Guard::fromPort(cellPort("sel", "out"));
    assigns.emplace_back(cellPort("w1", "in"), cellPort("w2", "out"), on);
    assigns.emplace_back(cellPort("w1", "in"), constant(5, 8),
                         Guard::negate(on));
    assigns.emplace_back(cellPort("w2", "in"), cellPort("w1", "out"));

    sim::SimProgram sp(ctx, "main");
    sim::SimState st(sp, sim::Engine::Levelized);
    st.setThreads(4);
    st.reset();
    st.beginCycle();
    st.activate(sp.root().continuous);
    st.comb();
    EXPECT_EQ(st.value(Symbol("w2.out")), 5u);
    EXPECT_EQ(st.value(Symbol("w1.out")), 5u);
}

// --- Observer determinism under threads (satellite 2) -------------------

/** Trace a freshly-lowered counter example into a VCD string. */
std::string
traceCounter(sim::Engine engine, unsigned threads)
{
    Context ctx = Parser::parseProgram(readExample(
        fs::path(CALYX_EXAMPLES_DIR) / "counter.futil"));
    passes::runPipeline(ctx, "all");
    sim::SimProgram sp(ctx, "main");
    std::ostringstream os;
    obs::VcdWriter vcd(sp, os, obs::VcdScope::All);
    sim::CycleSim cs(sp, engine);
    cs.state().setThreads(threads);
    cs.state().addObserver(&vcd);
    cs.run();
    return os.str();
}

TEST(PartitionedSim, VcdByteIdenticalUnderThreadsLevelized)
{
    std::string scalar = traceCounter(sim::Engine::Levelized, 1);
    std::string part = traceCounter(sim::Engine::Levelized, 4);
    ASSERT_FALSE(scalar.empty());
    EXPECT_NE(scalar.find("$enddefinitions"), std::string::npos);
    EXPECT_EQ(scalar, part);
}

TEST(PartitionedSim, VcdByteIdenticalUnderThreadsCompiled)
{
    SKIP_WITHOUT_TOOLCHAIN();
    std::string scalar = traceCounter(sim::Engine::Compiled, 1);
    std::string part = traceCounter(sim::Engine::Compiled, 4);
    ASSERT_FALSE(scalar.empty());
    EXPECT_EQ(scalar, part);
}

// --- WorkPool occupancy (satellite 1) -----------------------------------

TEST(PartitionedPool, ConcurrentCallersDoNotStackThreads)
{
    // Two threads each request a 2-wide parallelFor at once. The pool
    // serializes jobs, so the combined participant high-water mark must
    // stay at one job's width (2) — not the 4 a per-caller thread pool
    // would spike to (the 2N oversubscription the serve host hit when
    // compile shards and sim partitions each brought their own pool).
    WorkPool::global().resetPeakParticipants();
    auto burst = [] {
        WorkPool::global().parallelFor(8, 2, [](size_t) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        });
    };
    std::thread a(burst), b(burst);
    a.join();
    b.join();
    EXPECT_GE(WorkPool::peakParticipants(), 1u);
    EXPECT_LE(WorkPool::peakParticipants(), 2u);
}

TEST(PartitionedPool, NestedParallelismIsCappedNotStacked)
{
    // parallelFor from inside a pool worker must run serially on that
    // worker: a partitioned clock() inside a batch tile, or a compile
    // dispatched from a worker, must not multiply the thread count.
    WorkPool::global().resetPeakParticipants();
    WorkPool::global().runConcurrent(2, [](size_t) {
        WorkPool::global().parallelFor(8, 4, [](size_t) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        });
    });
    EXPECT_LE(WorkPool::peakParticipants(), 2u);
}

} // namespace
} // namespace calyx
