#include <gtest/gtest.h>

#include "ir/builder.h"
#include "passes/infer_latency.h"

namespace calyx {
namespace {

using passes::InferLatency;

TEST(InferLatency, RegisterWriteGroup)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("w");
    g.add(cellPort("x", "in"), constant(1, 8));
    g.add(cellPort("x", "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort("x", "done"));
    b.component().setControl(ComponentBuilder::enable("w"));

    InferLatency().runOnContext(ctx);
    EXPECT_EQ(g.staticLatency(), regLatency);
}

TEST(InferLatency, CombinationalGroup)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.cell("lt", "std_lt", {8});
    Group &g = b.group("cond");
    g.add(cellPort("lt", "left"), constant(1, 8));
    g.add(cellPort("lt", "right"), constant(2, 8));
    g.add(g.doneHole(), constant(1, 1));

    InferLatency().runOnContext(ctx);
    EXPECT_EQ(g.staticLatency(), 1);
}

TEST(InferLatency, MultiplierInvokeGroup)
{
    // Paper §5.3's exact rule: done = f.done, f.go = 1 inside the group.
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.cell("mul", "std_mult_pipe", {16});
    Group &g = b.group("run_mul");
    g.add(cellPort("mul", "left"), constant(3, 16));
    g.add(cellPort("mul", "right"), constant(4, 16));
    g.add(cellPort("mul", "go"), constant(1, 1));
    g.add(g.doneHole(), cellPort("mul", "done"));

    InferLatency().runOnContext(ctx);
    EXPECT_EQ(g.staticLatency(), multLatency);
}

TEST(InferLatency, GuardedGoIdiomAccepted)
{
    // `f.go = !f.done ? 1` is the common idiom and also inferable.
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.cell("mul", "std_mult_pipe", {16});
    Group &g = b.group("run_mul");
    g.add(cellPort("mul", "left"), constant(3, 16));
    g.add(cellPort("mul", "right"), constant(4, 16));
    g.add(cellPort("mul", "go"), constant(1, 1),
          Guard::negate(Guard::fromPort(cellPort("mul", "done"))));
    g.add(g.doneHole(), cellPort("mul", "done"));

    InferLatency().runOnContext(ctx);
    EXPECT_EQ(g.staticLatency(), multLatency);
}

TEST(InferLatency, ConservativeOnComplexGroups)
{
    // done comes from a register whose write-enable is data-dependent:
    // the rule must NOT fire (paper: "only works for simple groups").
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 16);
    b.cell("mul", "std_mult_pipe", {16});
    Group &g = b.group("mul_into_reg");
    g.add(cellPort("mul", "left"), constant(3, 16));
    g.add(cellPort("mul", "right"), constant(4, 16));
    g.add(cellPort("mul", "go"), constant(1, 1),
          Guard::negate(Guard::fromPort(cellPort("mul", "done"))));
    g.add(cellPort("x", "in"), cellPort("mul", "out"),
          Guard::fromPort(cellPort("mul", "done")));
    g.add(cellPort("x", "write_en"), constant(1, 1),
          Guard::fromPort(cellPort("mul", "done")));
    g.add(g.doneHole(), cellPort("x", "done"));

    InferLatency().runOnContext(ctx);
    EXPECT_EQ(g.staticLatency(), std::nullopt);
}

TEST(InferLatency, FrontendAnnotationWins)
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("x", 8);
    Group &g = b.group("w");
    g.attrs().set(Attributes::staticAttr, 99);
    g.add(cellPort("x", "in"), constant(1, 8));
    g.add(cellPort("x", "write_en"), constant(1, 1));
    g.add(g.doneHole(), cellPort("x", "done"));

    InferLatency().runOnContext(ctx);
    EXPECT_EQ(g.staticLatency(), 99);
}

TEST(InferLatency, ComponentLatencyFlowsToInstances)
{
    // A sub-component with fully static control gets a latency, and a
    // group invoking it infers that latency — the mechanism behind the
    // fully-inferred systolic arrays (paper §6.1).
    Context ctx;
    auto pb = ComponentBuilder::create(ctx, "pe");
    pb.reg("r", 8);
    pb.regWriteGroup("w1", "r", constant(1, 8));
    pb.regWriteGroup("w2", "r", constant(2, 8));
    std::vector<ControlPtr> s;
    s.push_back(ComponentBuilder::enable("w1"));
    s.push_back(ComponentBuilder::enable("w2"));
    pb.component().setControl(ComponentBuilder::seq(std::move(s)));

    auto mb = ComponentBuilder::create(ctx, "main");
    mb.cell("p", "pe", {});
    Group &inv = mb.group("invoke");
    inv.add(cellPort("p", "go"), constant(1, 1));
    inv.add(inv.doneHole(), cellPort("p", "done"));
    mb.component().setControl(ComponentBuilder::enable("invoke"));

    InferLatency().runOnContext(ctx);
    EXPECT_EQ(ctx.component("pe").staticLatency(), 2);
    EXPECT_EQ(inv.staticLatency(), 2);
    // The whole main program is now static too.
    EXPECT_EQ(ctx.component("main").staticLatency(), 2);
}

} // namespace
} // namespace calyx
