#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "helpers.h"
#include "ir/printer.h"
#include "passes/pipeline.h"
#include "passes/registry.h"
#include "support/error.h"

namespace calyx::passes {
namespace {

std::vector<std::string>
names(const PipelineSpec &spec)
{
    std::vector<std::string> out;
    for (const auto &inv : spec.passes)
        out.push_back(inv.name);
    return out;
}

/** Expect `fn` to throw an Error whose message contains every needle. */
template <typename Fn>
void
expectError(Fn fn, std::initializer_list<const char *> needles)
{
    try {
        fn();
        FAIL() << "expected an Error";
    } catch (const Error &e) {
        std::string msg = e.what();
        for (const char *needle : needles)
            EXPECT_NE(msg.find(needle), std::string::npos)
                << "message '" << msg << "' lacks '" << needle << "'";
    }
}

TEST(PassRegistry, EnumeratesAllPasses)
{
    auto &registry = PassRegistry::instance();
    std::vector<std::string> expected = {
        "collapse-control", "compile-control", "dead-cell-removal",
        "go-insertion",     "infer-latency",   "register-sharing",
        "remove-groups",    "resource-sharing", "static",
        "well-formed"};
    EXPECT_EQ(registry.passNames(), expected);
    for (const std::string &name : expected) {
        const auto *entry = registry.findPass(name);
        ASSERT_NE(entry, nullptr) << name;
        EXPECT_FALSE(entry->description.empty()) << name;
        auto pass = registry.create(name);
        EXPECT_EQ(pass->name(), name);
    }
}

TEST(PassRegistry, GroupAliasExpansionIsOrdered)
{
    auto &registry = PassRegistry::instance();
    EXPECT_EQ(registry.aliasExpansion("pre-opt"),
              "collapse-control,infer-latency,resource-sharing,"
              "register-sharing");
    EXPECT_EQ(registry.aliasExpansion("compile"),
              "static,go-insertion,compile-control,remove-groups");
    EXPECT_EQ(registry.aliasExpansion("post-opt"), "dead-cell-removal");
    EXPECT_EQ(registry.aliasesOf("resource-sharing"),
              std::vector<std::string>{"pre-opt"});
}

TEST(PipelineSpec, AliasExpansionAndOrdering)
{
    PipelineSpec spec = parsePipelineSpec("all");
    EXPECT_EQ(names(spec),
              (std::vector<std::string>{
                  "well-formed", "collapse-control", "infer-latency",
                  "resource-sharing", "register-sharing", "static",
                  "go-insertion", "compile-control", "remove-groups",
                  "dead-cell-removal"}));

    // Explicit ordering is preserved verbatim, duplicates allowed.
    spec = parsePipelineSpec(
        "dead-cell-removal,collapse-control,dead-cell-removal");
    EXPECT_EQ(names(spec),
              (std::vector<std::string>{"dead-cell-removal",
                                        "collapse-control",
                                        "dead-cell-removal"}));
}

TEST(PipelineSpec, DisablingRemovesPasses)
{
    PipelineSpec spec = parsePipelineSpec("all,-collapse-control");
    std::vector<std::string> got = names(spec);
    EXPECT_EQ(std::count(got.begin(), got.end(), "collapse-control"), 0);
    EXPECT_EQ(got.size(), 9u);

    // Disabling an alias removes every member.
    spec = parsePipelineSpec("all,-pre-opt");
    got = names(spec);
    EXPECT_EQ(names(spec),
              (std::vector<std::string>{"well-formed", "static",
                                        "go-insertion", "compile-control",
                                        "remove-groups",
                                        "dead-cell-removal"}));
}

TEST(PipelineSpec, PerPassOptions)
{
    PipelineSpec spec =
        parsePipelineSpec("resource-sharing[min-width=8],remove-groups");
    ASSERT_EQ(spec.passes.size(), 2u);
    ASSERT_EQ(spec.passes[0].options.size(), 1u);
    EXPECT_EQ(spec.passes[0].options[0].first, "min-width");
    EXPECT_EQ(spec.passes[0].options[0].second, "8");
    // Round-trips through str().
    EXPECT_EQ(spec.str(), "resource-sharing[min-width=8],remove-groups");

    // Commas inside brackets do not split items.
    spec = parsePipelineSpec("resource-sharing[min-width=8,foo=bar]");
    ASSERT_EQ(spec.passes.size(), 1u);
    EXPECT_EQ(spec.passes[0].options.size(), 2u);
}

TEST(PipelineSpec, ErrorsAndSuggestions)
{
    expectError([] { parsePipelineSpec("colapse-control"); },
                {"unknown pass or alias 'colapse-control'",
                 "did you mean 'collapse-control'?"});
    expectError([] { parsePipelineSpec("all,-ressource-sharing"); },
                {"cannot disable unknown pass",
                 "did you mean 'resource-sharing'?"});
    expectError([] { parsePipelineSpec("pre-opt[min-width=8]"); },
                {"alias 'pre-opt' cannot take options"});
    expectError([] { parsePipelineSpec("resource-sharing[min-width"); },
                {"unbalanced"});
    expectError([] { parsePipelineSpec("resource-sharing[minwidth8]"); },
                {"expected key=value"});
    // Unknown option keys are rejected when the pipeline is built.
    expectError(
        [] {
            buildPassManager(
                parsePipelineSpec("resource-sharing[max-width=8]"));
        },
        {"pass 'resource-sharing' has no option 'max-width'"});
    expectError(
        [] {
            buildPassManager(
                parsePipelineSpec("resource-sharing[min-width=wide]"));
        },
        {"min-width", "non-negative integer"});
}

TEST(PipelineSpec, ApplyPassOptions)
{
    PipelineSpec spec = parsePipelineSpec("all");
    applyPassOptions(spec, "resource-sharing[min-width=8]");
    bool found = false;
    for (const auto &inv : spec.passes) {
        if (inv.name != "resource-sharing")
            continue;
        found = true;
        ASSERT_EQ(inv.options.size(), 1u);
        EXPECT_EQ(inv.options[0].first, "min-width");
        EXPECT_EQ(inv.options[0].second, "8");
    }
    EXPECT_TRUE(found);

    // Later overrides replace earlier values for the same key.
    applyPassOptions(spec, "resource-sharing[min-width=16]");
    for (const auto &inv : spec.passes)
        if (inv.name == "resource-sharing")
            EXPECT_EQ(inv.options[0].second, "16");

    // The pass must be in the pipeline.
    PipelineSpec bare = parsePipelineSpec("default");
    expectError(
        [&bare] {
            applyPassOptions(bare, "resource-sharing[min-width=8]");
        },
        {"'resource-sharing' is not in the pipeline"});
}

TEST(PipelineSpec, CompileOptionsShimMatchesSpec)
{
    CompileOptions options;
    options.resourceSharing = true;
    options.resourceSharingMinWidth = 8;
    options.registerSharing = true;
    options.sensitive = true;

    EXPECT_EQ(compileOptionsToSpec(options),
              "well-formed,collapse-control,infer-latency,"
              "resource-sharing[min-width=8],register-sharing,static,"
              "go-insertion,compile-control,remove-groups,"
              "dead-cell-removal");

    // compile(ctx, options) must produce IR identical to running the
    // equivalent spec through the registry.
    Context via_shim = testing::counterProgram(5, 7);
    compile(via_shim, options);
    Context via_spec = testing::counterProgram(5, 7);
    runPipeline(via_spec, compileOptionsToSpec(options));
    EXPECT_EQ(Printer::toString(via_shim), Printer::toString(via_spec));

    // And the default-constructed options equal the `default` alias.
    Context shim_default = testing::counterProgram(3, 2);
    compile(shim_default, CompileOptions{});
    Context spec_default = testing::counterProgram(3, 2);
    runPipeline(spec_default, "default");
    EXPECT_EQ(Printer::toString(shim_default),
              Printer::toString(spec_default));
}

TEST(PassManager, InstrumentationRecordsTimingAndStats)
{
    Context ctx = testing::counterProgram(4, 3);
    RunOptions opts;
    opts.collectStats = true;
    std::vector<PassRunInfo> infos = runPipeline(ctx, "default", opts);

    ASSERT_EQ(infos.size(), 7u);
    EXPECT_EQ(infos.front().pass, "well-formed");
    EXPECT_EQ(infos.back().pass, "dead-cell-removal");
    for (const auto &info : infos)
        EXPECT_GE(info.seconds, 0.0) << info.pass;

    // remove-groups erases every group; the deltas must show it.
    auto rg = std::find_if(infos.begin(), infos.end(), [](const auto &i) {
        return i.pass == "remove-groups";
    });
    ASSERT_NE(rg, infos.end());
    EXPECT_GT(rg->before.groups, 0);
    EXPECT_EQ(rg->after.groups, 0);
}

TEST(PassManager, DumpIrAfterNamedPass)
{
    Context ctx = testing::counterProgram(2, 2);
    std::ostringstream dump;
    RunOptions opts;
    opts.dumpIrAfter = "collapse-control";
    opts.dumpTo = &dump;
    runPipeline(ctx, "default", opts);
    EXPECT_NE(dump.str().find("// IR after pass 'collapse-control'"),
              std::string::npos);
    EXPECT_NE(dump.str().find("component main"), std::string::npos);
    // Dumped mid-pipeline: groups still exist at that point.
    EXPECT_NE(dump.str().find("group "), std::string::npos);
}

/** A deliberately broken pass for the verify-failure regression test. */
class BreakerPass final : public Pass
{
  public:
    std::string name() const override { return "breaker"; }
    void
    runOnComponent(Component &comp, Context &) override
    {
        // Width-mismatched assignment: 32-bit register input driven by
        // a 1-bit constant.
        comp.group("bump_x").add(cellPort("x", "in"), constant(1, 1));
    }
};

TEST(PassManager, VerifyFailureNamesPassAndComponent)
{
    Context ctx = testing::counterProgram(2, 2);
    PassManager pm;
    pm.add<BreakerPass>();
    expectError([&ctx, &pm] { pm.run(ctx, /*verify=*/true); },
                {"verification failed after pass 'breaker'",
                 "in component 'main'"});
}

} // namespace
} // namespace calyx::passes
