#include <gtest/gtest.h>

#include <random>

#include "helpers.h"
#include "ir/parser.h"
#include "ir/printer.h"

namespace calyx {
namespace {

/**
 * Random well-formed Calyx programs: a pool of registers, adders and
 * comparators; random simple groups (register writes, increments); and
 * a random control tree of seq/par/if/while. Writes in parallel arms
 * use disjoint registers so programs stay conflict-free.
 */
class RandomProgram
{
  public:
    explicit RandomProgram(uint32_t seed) : rng(seed) {}

    Context
    build()
    {
        Context ctx;
        auto b = ComponentBuilder::create(ctx, "main");
        comp = &b.component();
        context_ = &ctx;

        num_regs = 2 + rng() % 4;
        for (int r = 0; r < num_regs; ++r) {
            b.reg(reg(r), 8);
            b.cell("add" + std::to_string(r), "std_add", {8});
        }
        // A bounded loop counter so while loops always terminate.
        b.reg("cnt", 8);
        b.cell("cnt_add", "std_add", {8});
        b.cell("cnt_lt", "std_lt", {8});
        Group &tick = comp->addGroup("tick");
        tick.add(cellPort("cnt_add", "left"), cellPort("cnt", "out"));
        tick.add(cellPort("cnt_add", "right"), constant(1, 8));
        tick.add(cellPort("cnt", "in"), cellPort("cnt_add", "out"));
        tick.add(cellPort("cnt", "write_en"), constant(1, 1));
        tick.add(tick.doneHole(), cellPort("cnt", "done"));
        Group &cond = comp->addGroup("loop_cond");
        cond.add(cellPort("cnt_lt", "left"), cellPort("cnt", "out"));
        cond.add(cellPort("cnt_lt", "right"),
                 constant(3 + rng() % 5, 8));
        cond.add(cond.doneHole(), constant(1, 1));

        ControlPtr ctrl = genControl(2, allRegs());
        comp->setControl(std::move(ctrl));
        return std::move(ctx);
    }

    static std::string
    reg(int r)
    {
        return "r" + std::to_string(r);
    }

  private:
    std::vector<int>
    allRegs() const
    {
        std::vector<int> v(num_regs);
        for (int i = 0; i < num_regs; ++i)
            v[i] = i;
        return v;
    }

    /** A group writing `value + r_src` into r_dst. */
    std::string
    genGroup(const std::vector<int> &allowed)
    {
        int dst = allowed[rng() % allowed.size()];
        int src = static_cast<int>(rng() % num_regs);
        std::string name = "g" + std::to_string(group_count++);
        Group &g = comp->addGroup(name);
        std::string adder = "add" + std::to_string(dst);
        g.add(cellPort(adder, "left"),
              cellPort(reg(src), "out"));
        g.add(cellPort(adder, "right"),
              constant(rng() % 16, 8));
        g.add(cellPort(reg(dst), "in"), cellPort(adder, "out"));
        g.add(cellPort(reg(dst), "write_en"), constant(1, 1));
        g.add(g.doneHole(), cellPort(reg(dst), "done"));
        return name;
    }

    ControlPtr
    genControl(int depth, const std::vector<int> &allowed)
    {
        int kind = depth == 0 ? 0 : static_cast<int>(rng() % 10);
        if (kind < 4 || allowed.empty()) {
            return std::make_unique<Enable>(genGroup(
                allowed.empty() ? allRegs() : allowed));
        }
        if (kind < 6) { // seq
            size_t n = 2 + rng() % 3;
            auto seq = std::make_unique<Seq>();
            for (size_t i = 0; i < n; ++i)
                seq->add(genControl(depth - 1, allowed));
            return seq;
        }
        if (kind < 8 && allowed.size() >= 2) { // par, disjoint registers
            size_t split = 1 + rng() % (allowed.size() - 1);
            std::vector<int> left(allowed.begin(),
                                  allowed.begin() + split);
            std::vector<int> right(allowed.begin() + split,
                                   allowed.end());
            auto par = std::make_unique<Par>();
            par->add(genControl(depth - 1, left));
            par->add(genControl(depth - 1, right));
            return par;
        }
        if (kind < 9) { // if on a register's low bit
            int r = static_cast<int>(rng() % num_regs);
            std::string cname =
                "ifc" + std::to_string(group_count++);
            Group &cond = comp->addGroup(cname);
            std::string eq = "eq" + cname;
            comp->addCell(eq, "std_eq", {8}, *context_);
            cond.add(cellPort(eq, "left"), cellPort(reg(r), "out"));
            cond.add(cellPort(eq, "right"), constant(0, 8));
            cond.add(cond.doneHole(), constant(1, 1));
            return std::make_unique<If>(
                cellPort(eq, "out"), cname,
                genControl(depth - 1, allowed),
                genControl(depth - 1, allowed));
        }
        // Bounded while: reset cnt, loop while cnt < limit,
        // incrementing cnt once per iteration.
        std::string init = "wi" + std::to_string(group_count++);
        Group &gi = comp->addGroup(init);
        gi.add(cellPort("cnt", "in"), constant(0, 8));
        gi.add(cellPort("cnt", "write_en"), constant(1, 1));
        gi.add(gi.doneHole(), cellPort("cnt", "done"));
        auto body = std::make_unique<Seq>();
        body->add(genControl(depth - 1, allowed));
        body->add(std::make_unique<Enable>("tick"));
        auto seq = std::make_unique<Seq>();
        seq->add(std::make_unique<Enable>(init));
        seq->add(std::make_unique<While>(cellPort("cnt_lt", "out"),
                                         "loop_cond", std::move(body)));
        return seq;
    }

    std::mt19937 rng;
    Component *comp = nullptr;
    Context *context_ = nullptr;
    int num_regs = 0;
    int group_count = 0;
};

class PropertySeed : public ::testing::TestWithParam<uint32_t>
{};

/** Printer output parses back to an identical program. */
TEST_P(PropertySeed, PrinterParserRoundTrip)
{
    RandomProgram gen(GetParam());
    Context ctx = gen.build();
    std::string once = Printer::toString(ctx);
    Context reparsed = Parser::parseProgram(once);
    EXPECT_EQ(Printer::toString(reparsed), once);
}

/** Compiled designs end in the same architectural state as the
 *  interpreter, in every optimization configuration. */
TEST_P(PropertySeed, CompilationPreservesSemantics)
{
    uint32_t seed = GetParam();
    // Interpreter oracle.
    RandomProgram gen(seed);
    Context source = gen.build();
    sim::SimProgram sp(source, "main");
    sim::Interp interp(sp);
    interp.run(2'000'000);
    std::vector<uint64_t> expect;
    for (const auto &cell : source.component("main").cells()) {
        if (cell->type() == "std_reg" && cell->name() != "cnt")
            expect.push_back(
                *sp.findModel(cell->name())->registerValue());
    }

    struct ConfigCase
    {
        bool resource, registers, sensitive;
    };
    const ConfigCase configs[] = {
        {false, false, false},
        {true, false, false},
        {false, false, true},
        {true, false, true},
    };
    for (const auto &c : configs) {
        RandomProgram gen2(seed);
        Context ctx = gen2.build();
        passes::CompileOptions opts;
        opts.resourceSharing = c.resource;
        opts.registerSharing = c.registers;
        opts.sensitive = c.sensitive;
        opts.verify = true;
        // Keep unused registers so every register can be compared.
        opts.deadCellRemoval = false;
        passes::compile(ctx, opts);
        sim::SimProgram sp2(ctx, "main");
        sim::CycleSim cs(sp2);
        cs.run(2'000'000);
        std::vector<uint64_t> got;
        for (const auto &cell : source.component("main").cells()) {
            if (cell->type() == "std_reg" && cell->name() != "cnt")
                got.push_back(
                    *sp2.findModel(cell->name())->registerValue());
        }
        EXPECT_EQ(got, expect)
            << "seed " << seed << " config{rs=" << c.resource
            << ",st=" << c.sensitive << "}";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed,
                         ::testing::Range(0u, 40u));

} // namespace
} // namespace calyx
