#include <gtest/gtest.h>

#include "frontends/dahlia/parser.h"
#include "workloads/harness.h"
#include "workloads/polybench.h"

namespace calyx {
namespace {

using workloads::Kernel;
using workloads::MemState;

/**
 * The heavyweight end-to-end matrix: every PolyBench kernel must agree
 * across three independent implementations —
 *   1. the native C++ golden reference,
 *   2. the Dahlia AST interpreter,
 *   3. the compiled Calyx design under cycle simulation —
 * in each compilation configuration.
 */
class PolybenchKernel
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    static constexpr int configInsensitive = 0;
    static constexpr int configSensitive = 1;
    static constexpr int configAllOpts = 2;
    static constexpr int configUnrolled = 3;

    static passes::CompileOptions
    optionsFor(int config)
    {
        passes::CompileOptions o;
        if (config == configSensitive)
            o.sensitive = true;
        if (config == configAllOpts) {
            o.resourceSharing = true;
            o.registerSharing = true;
            o.sensitive = true;
        }
        return o;
    }
};

TEST_P(PolybenchKernel, HardwareMatchesReferenceAndInterp)
{
    auto [name, config] = GetParam();
    const Kernel &k = workloads::kernel(name);
    const std::string &src =
        config == configUnrolled ? k.unrolledSource : k.source;
    if (src.empty())
        GTEST_SKIP() << name << " is not unrollable in Dahlia";

    dahlia::Program prog = dahlia::parse(src);
    MemState inputs = workloads::makeInputs(k.name, prog);

    // Native golden reference (uses original memory names; the
    // unrolled variant has identical decl names and shapes).
    MemState golden = inputs;
    workloads::runReference(k.name, golden);

    // AST interpreter.
    MemState interp = workloads::runOnInterp(prog, inputs);
    for (const auto &[mem, data] : golden)
        ASSERT_EQ(interp.at(mem), data)
            << k.name << ": interpreter disagrees with reference on "
            << mem;

    // Compiled hardware.
    MemState hw;
    auto result = workloads::runOnHardware(
        prog, optionsFor(config), inputs, &hw);
    EXPECT_GT(result.cycles, 0u);
    for (const auto &[mem, data] : golden)
        EXPECT_EQ(hw.at(mem), data)
            << k.name << ": hardware disagrees with reference on "
            << mem;
}

std::vector<std::tuple<std::string, int>>
allCases()
{
    std::vector<std::tuple<std::string, int>> cases;
    for (const auto &k : workloads::kernels()) {
        cases.emplace_back(k.name, 0);
        cases.emplace_back(k.name, 1);
        cases.emplace_back(k.name, 2);
        if (!k.unrolledSource.empty())
            cases.emplace_back(k.name, 3);
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<std::tuple<std::string, int>>
             &info)
{
    static const char *config_names[] = {"insensitive", "sensitive",
                                         "allopts", "unrolled"};
    std::string name = std::get<0>(info.param);
    for (auto &c : name) {
        if (c == '-')
            c = '_';
    }
    return name + "_" + config_names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(AllKernels, PolybenchKernel,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(Polybench, ExactlyElevenUnrollable)
{
    int unrollable = 0;
    for (const auto &k : workloads::kernels()) {
        if (!k.unrolledSource.empty())
            ++unrollable;
    }
    EXPECT_EQ(unrollable, 11); // paper §7.2
}

TEST(Polybench, InputDataIsDeterministicAndNonzero)
{
    auto a = workloads::inputData("gemm", "A", 64);
    auto b = workloads::inputData("gemm", "A", 64);
    EXPECT_EQ(a, b);
    auto c = workloads::inputData("gemm", "B", 64);
    EXPECT_NE(a, c);
    for (uint64_t v : a) {
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 13u);
    }
}

TEST(Polybench, SensitiveNeverSlower)
{
    // Spot-check the Sensitive pass's speedup direction on a few
    // kernels (Figure 9c's property).
    for (const char *name : {"gemm", "mvt", "trisolv"}) {
        const Kernel &k = workloads::kernel(name);
        dahlia::Program prog = dahlia::parse(k.source);
        MemState inputs = workloads::makeInputs(k.name, prog);
        auto slow =
            workloads::runOnHardware(prog, "default", inputs);
        passes::CompileOptions fast_opts;
        fast_opts.sensitive = true;
        auto fast = workloads::runOnHardware(prog, fast_opts, inputs);
        EXPECT_LT(fast.cycles, slow.cycles) << name;
    }
}

} // namespace
} // namespace calyx
