#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <unordered_set>
#include <vector>

#include "support/symbol.h"

namespace calyx {
namespace {

TEST(Symbol, InterningIdentity)
{
    Symbol a("quokka_cell");
    Symbol b(std::string("quokka_cell"));
    Symbol c(std::string_view("quokka_cell"));
    EXPECT_EQ(a, b);
    EXPECT_EQ(b, c);
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.id(), c.id());

    Symbol d("quokka_cell2");
    EXPECT_NE(a, d);
    EXPECT_NE(a.id(), d.id());
}

TEST(Symbol, StrRoundTrip)
{
    const char *names[] = {"r0", "pe00/acc.out", "a[go]", "", "x y z"};
    for (const char *n : names) {
        Symbol s(n);
        EXPECT_EQ(s.str(), n);
        // Re-interning the spelling returns the same id.
        EXPECT_EQ(Symbol(s.str()).id(), s.id());
        EXPECT_EQ(Symbol::fromId(s.id()), s);
    }
}

TEST(Symbol, EmptyIsDefaultAndIdZero)
{
    Symbol def;
    EXPECT_TRUE(def.empty());
    EXPECT_EQ(def.id(), 0u);
    EXPECT_EQ(def.str(), "");
    EXPECT_EQ(def, Symbol(""));
    EXPECT_FALSE(Symbol("x").empty());
}

TEST(Symbol, MixedComparisons)
{
    Symbol s("adder");
    EXPECT_TRUE(s == "adder");
    EXPECT_TRUE("adder" == s);
    EXPECT_TRUE(s == std::string("adder"));
    EXPECT_TRUE(s != "subber");
    EXPECT_TRUE(std::string("zz") != s);
}

TEST(Symbol, OrderingIsLexicographic)
{
    // Intern out of alphabetical order on purpose: ordered containers
    // must still iterate alphabetically (matching the string-keyed IR
    // this type replaced), not in interning order.
    Symbol z("zzz_order_test");
    Symbol a("aaa_order_test");
    Symbol m("mmm_order_test");
    std::set<Symbol> ordered{z, a, m};
    std::vector<std::string> seen;
    for (Symbol s : ordered)
        seen.push_back(s.str());
    EXPECT_EQ(seen, (std::vector<std::string>{
                        "aaa_order_test", "mmm_order_test",
                        "zzz_order_test"}));
    EXPECT_TRUE(a < m);
    EXPECT_TRUE(m < z);
    EXPECT_FALSE(z < a);
    EXPECT_FALSE(a < a);
}

TEST(Symbol, HashIsUsableAndIdBased)
{
    std::unordered_set<Symbol> set;
    set.insert(Symbol("h1"));
    set.insert(Symbol("h2"));
    set.insert(Symbol("h1"));
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.count(Symbol("h1")));
    EXPECT_FALSE(set.count(Symbol("h3")));
}

TEST(Symbol, ThreadSafetyOfInterning)
{
    // Many threads intern a mix of one shared spelling and per-thread
    // spellings. The shared spelling must resolve to one id everywhere
    // and every str() round-trip must hold. Run under TSan to make this
    // a real data-race check; without it, it still exercises the
    // concurrent insert path against the table invariants.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 200;
    std::vector<std::thread> threads;
    std::vector<uint32_t> sharedIds(kThreads, 0);
    std::vector<bool> ok(kThreads, false);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &sharedIds, &ok]() {
            bool all = true;
            for (int i = 0; i < kPerThread; ++i) {
                std::string mine = "thr" + std::to_string(t) + "_" +
                                   std::to_string(i);
                Symbol s(mine);
                all = all && s.str() == mine;
                Symbol shared("shared_across_threads");
                sharedIds[t] = shared.id();
                all = all && shared.str() == "shared_across_threads";
            }
            ok[t] = all;
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_TRUE(ok[t]);
        EXPECT_EQ(sharedIds[t], sharedIds[0]);
    }
    // And the table survived: every per-thread symbol resolves.
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPerThread; ++i) {
            std::string mine =
                "thr" + std::to_string(t) + "_" + std::to_string(i);
            EXPECT_EQ(Symbol(mine).str(), mine);
        }
    }
}

TEST(Symbol, TableGrowsMonotonically)
{
    size_t before = Symbol::tableSize();
    Symbol fresh("definitely_fresh_symbol_for_table_size_test");
    EXPECT_GE(Symbol::tableSize(), before + 1);
    size_t after = Symbol::tableSize();
    // Re-interning allocates nothing.
    Symbol again("definitely_fresh_symbol_for_table_size_test");
    EXPECT_EQ(Symbol::tableSize(), after);
    EXPECT_EQ(fresh, again);
}

} // namespace
} // namespace calyx
