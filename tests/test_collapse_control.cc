#include <gtest/gtest.h>

#include "ir/control.h"
#include "passes/collapse_control.h"

namespace calyx {
namespace {

using passes::CollapseControl;

ControlPtr
en(const std::string &g)
{
    return std::make_unique<Enable>(g);
}

TEST(CollapseControl, RemovesEmptyFromSeq)
{
    std::vector<ControlPtr> stmts;
    stmts.push_back(std::make_unique<Empty>());
    stmts.push_back(en("a"));
    stmts.push_back(std::make_unique<Empty>());
    ControlPtr c =
        CollapseControl::collapse(std::make_unique<Seq>(std::move(stmts)));
    EXPECT_EQ(c->kind(), Control::Kind::Enable);
}

TEST(CollapseControl, EmptySeqBecomesEmpty)
{
    ControlPtr c = CollapseControl::collapse(std::make_unique<Seq>());
    EXPECT_EQ(c->kind(), Control::Kind::Empty);
}

TEST(CollapseControl, FlattensNestedSeq)
{
    std::vector<ControlPtr> inner;
    inner.push_back(en("b"));
    inner.push_back(en("c"));
    std::vector<ControlPtr> outer;
    outer.push_back(en("a"));
    outer.push_back(std::make_unique<Seq>(std::move(inner)));
    ControlPtr c =
        CollapseControl::collapse(std::make_unique<Seq>(std::move(outer)));
    ASSERT_EQ(c->kind(), Control::Kind::Seq);
    EXPECT_EQ(cast<Seq>(*c).stmts().size(), 3u);
}

TEST(CollapseControl, DoesNotFlattenParIntoSeq)
{
    std::vector<ControlPtr> inner;
    inner.push_back(en("b"));
    inner.push_back(en("c"));
    std::vector<ControlPtr> outer;
    outer.push_back(en("a"));
    outer.push_back(std::make_unique<Par>(std::move(inner)));
    ControlPtr c =
        CollapseControl::collapse(std::make_unique<Seq>(std::move(outer)));
    ASSERT_EQ(c->kind(), Control::Kind::Seq);
    ASSERT_EQ(cast<Seq>(*c).stmts().size(), 2u);
    EXPECT_EQ(cast<Seq>(*c).stmts()[1]->kind(), Control::Kind::Par);
}

TEST(CollapseControl, IfWithTwoEmptyBranchesDisappears)
{
    ControlPtr c = CollapseControl::collapse(std::make_unique<If>(
        cellPort("c", "out"), "cond", std::make_unique<Empty>(),
        std::make_unique<Empty>()));
    EXPECT_EQ(c->kind(), Control::Kind::Empty);
}

TEST(CollapseControl, IfWithOneBranchSurvives)
{
    ControlPtr c = CollapseControl::collapse(std::make_unique<If>(
        cellPort("c", "out"), "cond", en("t"),
        std::make_unique<Empty>()));
    ASSERT_EQ(c->kind(), Control::Kind::If);
    EXPECT_EQ(cast<If>(*c).falseBranch().kind(), Control::Kind::Empty);
}

TEST(CollapseControl, WhileBodyCollapses)
{
    std::vector<ControlPtr> body;
    body.push_back(std::make_unique<Empty>());
    body.push_back(en("g"));
    ControlPtr c = CollapseControl::collapse(std::make_unique<While>(
        cellPort("c", "out"), "cond",
        std::make_unique<Seq>(std::move(body))));
    ASSERT_EQ(c->kind(), Control::Kind::While);
    EXPECT_EQ(cast<While>(*c).body().kind(), Control::Kind::Enable);
}

} // namespace
} // namespace calyx
