#include <gtest/gtest.h>

#include "emit/dot.h"
#include "helpers.h"
#include "ir/builder.h"

namespace calyx {
namespace {

using emit::DotBackend;
using testing::counterProgram;

/** Single-group design small enough to pin the full dot output. */
Context
tinyProgram()
{
    Context ctx;
    auto b = ComponentBuilder::create(ctx, "main");
    b.reg("r", 8);
    b.regWriteGroup("w", "r", constant(5, 8));
    b.component().setControl(ComponentBuilder::enable("w"));
    return ctx;
}

TEST(Dot, GoldenTinyProgram)
{
    Context ctx = tinyProgram();
    const char *golden = R"dot(digraph "main" {
  rankdir=LR;
  subgraph "cluster_main" {
    label="component main";
    "main/r" [shape=box, label="r: std_reg(8)"];
    "main/group/w" [shape=ellipse, style=filled, fillcolor=lightgrey, label="group w"];
    "main/r" -> "main/group/w" [label="w"];
    "main/ctrl/0" [shape=diamond, label="enable"];
    "main/ctrl/0" -> "main/group/w" [style=dashed];
  }
}
)dot";
    EXPECT_EQ(DotBackend().emitString(ctx), golden);
}

TEST(Dot, SourceProgramShowsGroupsAndControl)
{
    Context ctx = counterProgram(2, 1);
    std::string dot = DotBackend().emitString(ctx);

    // Cells, groups, and the control tree are all present.
    EXPECT_NE(dot.find("\"main/x\" [shape=box, label=\"x: std_reg(32)\"]"),
              std::string::npos);
    EXPECT_NE(dot.find("label=\"group bump_x\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"seq\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"while lt.out\""), std::string::npos);
    // The while's condition group is linked with a labelled dashed edge.
    EXPECT_NE(dot.find("-> \"main/group/cond\" [style=dashed, "
                       "label=\"cond\"]"),
              std::string::npos);
    // Dataflow: the adder feeds the register inside group bump_x.
    EXPECT_NE(dot.find("\"main/addx\" -> \"main/x\" [label=\"bump_x\"]"),
              std::string::npos);
}

TEST(Dot, LoweredProgramHasNoGroupsOrControl)
{
    Context ctx = counterProgram(2, 1);
    passes::runPipeline(ctx, "default");
    std::string dot = DotBackend().emitString(ctx);

    EXPECT_EQ(dot.find("group/"), std::string::npos);
    EXPECT_EQ(dot.find("ctrl/"), std::string::npos);
    // Still a well-formed digraph with dataflow edges.
    EXPECT_NE(dot.find("digraph \"main\" {"), std::string::npos);
    EXPECT_NE(dot.find("\"main/addx\" -> \"main/x\""), std::string::npos);
}

TEST(Dot, DuplicateEdgesAreCollapsed)
{
    Context ctx = tinyProgram();
    // Two assignments with the same endpoints inside one group produce
    // one edge.
    Group &w = ctx.component("main").group("w");
    w.add(cellPort("r", "in"), cellPort("r", "out"));
    w.add(cellPort("r", "in"), cellPort("r", "out"));
    std::string dot = DotBackend().emitString(ctx);

    std::string edge = "\"main/r\" -> \"main/r\" [label=\"w\"]";
    size_t first = dot.find(edge);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(dot.find(edge, first + 1), std::string::npos);
}

TEST(Dot, MultiComponentProgramGetsOneClusterEach)
{
    Context ctx;
    auto pb = ComponentBuilder::create(ctx, "pe");
    pb.reg("r", 8);
    auto mb = ComponentBuilder::create(ctx, "main");
    mb.cell("p0", "pe", {});
    std::string dot = DotBackend().emitString(ctx);

    EXPECT_NE(dot.find("subgraph \"cluster_pe\""), std::string::npos);
    EXPECT_NE(dot.find("subgraph \"cluster_main\""), std::string::npos);
    EXPECT_NE(dot.find("\"main/p0\" [shape=box, label=\"p0: pe\"]"),
              std::string::npos);
}

} // namespace
} // namespace calyx
