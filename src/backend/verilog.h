#ifndef CALYX_BACKEND_VERILOG_H
#define CALYX_BACKEND_VERILOG_H

#include <ostream>
#include <string>

#include "ir/context.h"

namespace calyx::backend {

/**
 * The Lower pass' code generator (paper §4.2): translates control-free
 * Calyx (flat guarded assignments) into synthesizable SystemVerilog.
 * Each component maps to a module; each cell to a primitive instance or
 * submodule instantiation; each driven port to a mux tree over its
 * guarded assignments. A clock is threaded through the design.
 */
class VerilogBackend
{
  public:
    /** Emit the whole program plus the primitive library. */
    static void emit(const Context &ctx, std::ostream &os);
    static std::string emitString(const Context &ctx);

    /** Emit a single component as a module. */
    static void emitComponent(const Component &comp, const Context &ctx,
                              std::ostream &os);

    /** Emit the std_* primitive library. */
    static void emitPrimitives(const Context &ctx, std::ostream &os);

    /** Number of lines in `text` (for §7.4 statistics). */
    static int countLines(const std::string &text);
};

} // namespace calyx::backend

#endif // CALYX_BACKEND_VERILOG_H
