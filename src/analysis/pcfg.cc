#include "analysis/pcfg.h"

#include "support/error.h"

namespace calyx::analysis {

int
Pcfg::addNode(PcfgNode node)
{
    nodes.push_back(std::move(node));
    return static_cast<int>(nodes.size()) - 1;
}

void
Pcfg::addEdge(int from, int to)
{
    nodes[from].succs.push_back(to);
    nodes[to].preds.push_back(from);
}

namespace {

/**
 * Lower `ctrl` into `g`, returning the (first, last) node pair of the
 * emitted subgraph. Both may be the same node.
 */
std::pair<int, int>
build(Pcfg &g, const Control &ctrl)
{
    switch (ctrl.kind()) {
      case Control::Kind::Empty: {
        int n = g.addNode(PcfgNode{});
        return {n, n};
      }
      case Control::Kind::Enable: {
        PcfgNode node;
        node.kind = PcfgNode::Kind::Group;
        node.group = cast<Enable>(ctrl).group();
        int n = g.addNode(std::move(node));
        return {n, n};
      }
      case Control::Kind::Seq: {
        const auto &stmts = cast<Seq>(ctrl).stmts();
        if (stmts.empty()) {
            int n = g.addNode(PcfgNode{});
            return {n, n};
        }
        int first = -1, last = -1;
        for (const auto &c : stmts) {
            auto [f, l] = build(g, *c);
            if (first < 0)
                first = f;
            else
                g.addEdge(last, f);
            last = l;
        }
        return {first, last};
      }
      case Control::Kind::Par: {
        PcfgNode node;
        node.kind = PcfgNode::Kind::ParNode;
        for (const auto &c : cast<Par>(ctrl).stmts())
            node.children.push_back(buildPcfg(*c));
        int n = g.addNode(std::move(node));
        return {n, n};
      }
      case Control::Kind::If: {
        const auto &i = cast<If>(ctrl);
        int cond;
        if (i.condGroup().empty()) {
            cond = g.addNode(PcfgNode{});
        } else {
            PcfgNode node;
            node.kind = PcfgNode::Kind::Group;
            node.group = i.condGroup();
            cond = g.addNode(std::move(node));
        }
        auto [tf, tl] = build(g, i.trueBranch());
        auto [ff, fl] = build(g, i.falseBranch());
        int join = g.addNode(PcfgNode{});
        g.addEdge(cond, tf);
        g.addEdge(cond, ff);
        g.addEdge(tl, join);
        g.addEdge(fl, join);
        return {cond, join};
      }
      case Control::Kind::While: {
        const auto &w = cast<While>(ctrl);
        int cond;
        if (w.condGroup().empty()) {
            cond = g.addNode(PcfgNode{});
        } else {
            PcfgNode node;
            node.kind = PcfgNode::Kind::Group;
            node.group = w.condGroup();
            cond = g.addNode(std::move(node));
        }
        auto [bf, bl] = build(g, w.body());
        int exit = g.addNode(PcfgNode{});
        g.addEdge(cond, bf);
        g.addEdge(bl, cond); // back edge
        g.addEdge(cond, exit);
        return {cond, exit};
      }
    }
    panic("bad control kind");
}

} // namespace

std::unique_ptr<Pcfg>
buildPcfg(const Control &ctrl)
{
    auto g = std::make_unique<Pcfg>();
    g->entry = g->addNode(PcfgNode{});
    auto [f, l] = build(*g, ctrl);
    g->exit = g->addNode(PcfgNode{});
    g->addEdge(g->entry, f);
    g->addEdge(l, g->exit);
    return g;
}

} // namespace calyx::analysis
