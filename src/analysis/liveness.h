#ifndef CALYX_ANALYSIS_LIVENESS_H
#define CALYX_ANALYSIS_LIVENESS_H

#include <map>
#include <set>
#include <string>

#include "analysis/pcfg.h"
#include "analysis/read_write_sets.h"

namespace calyx::analysis {

/**
 * Live-range analysis over a parallel CFG (paper §5.2). Computes, for
 * every register, where it is live, and derives the interference graph
 * used for register sharing.
 */
class Liveness
{
  public:
    /**
     * @param g          the pCFG of the component's control program
     * @param access     per-group register read/write sets
     * @param always_live registers live at every program point
     */
    Liveness(const Pcfg &g, const std::map<std::string, RegAccess> &access,
             const std::set<std::string> &always_live);

    /**
     * Pairs of registers whose live ranges overlap (or that are written
     * by the same group), i.e. the edges of the interference graph.
     */
    const std::set<std::pair<std::string, std::string>> &
    interference() const
    {
        return interferenceEdges;
    }

  private:
    /**
     * Run the backward dataflow on `g` with `boundary` as the live-out
     * set at the exit node; records interference edges as it goes.
     * Returns the live-in set at the entry node.
     */
    std::set<std::string> analyze(const Pcfg &g,
                                  const std::set<std::string> &boundary);

    const RegAccess &nodeAccess(const PcfgNode &node);
    void interfere(const std::set<std::string> &defs,
                   const std::set<std::string> &live_out);

    const std::map<std::string, RegAccess> *access;
    std::set<std::string> alwaysLive;
    std::map<const PcfgNode *, RegAccess> parAccessCache;
    std::set<std::pair<std::string, std::string>> interferenceEdges;
    RegAccess emptyAccess;
};

} // namespace calyx::analysis

#endif // CALYX_ANALYSIS_LIVENESS_H
