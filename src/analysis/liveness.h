#ifndef CALYX_ANALYSIS_LIVENESS_H
#define CALYX_ANALYSIS_LIVENESS_H

#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/pcfg.h"
#include "ir/defuse.h"
#include "support/bitset.h"
#include "support/symbol.h"

namespace calyx::analysis {

/**
 * Live-range analysis over a parallel CFG (paper §5.2). Computes, for
 * every register, where it is live, and derives the interference graph
 * used for register sharing.
 *
 * Internally registers are mapped to dense indices and every live set
 * is a DenseBits word vector; the interference graph is a bit matrix.
 * The register-sharing pass queries conflict() in O(1) instead of
 * ordering string pairs in a tree set.
 */
class Liveness
{
  public:
    /**
     * @param g          the pCFG of the component's control program
     * @param access     per-group register read/write sets
     * @param always_live registers live at every program point
     */
    Liveness(const Pcfg &g, const std::map<Symbol, RegAccess> &access,
             const std::set<Symbol> &always_live);

    /** Whether the live ranges of `a` and `b` overlap (or the two are
     * written by the same group). O(1) matrix probe. */
    bool conflict(Symbol a, Symbol b) const;

    /**
     * Materialized interference edges (canonical lexicographic pairs).
     * For tests and diagnostics; passes should use conflict().
     */
    std::set<std::pair<Symbol, Symbol>> interference() const;

  private:
    struct NodeBits
    {
        DenseBits reads, mustWrites, anyWrites;
    };

    const NodeBits &nodeAccess(const PcfgNode &node);
    void mergeGraph(const Pcfg &g, NodeBits &merged);

    /**
     * Run the backward dataflow on `g` with `boundary` as the live-out
     * set at the exit node; records interference edges as it goes.
     * Returns the live-in set at the entry node.
     */
    DenseBits analyze(const Pcfg &g, const DenseBits &boundary);

    /** row(d) |= live_out for every d in defs. */
    void interfere(const DenseBits &defs, const DenseBits &live_out);

    DenseBits toBits(const std::set<Symbol> &set) const;

    const std::map<Symbol, RegAccess> *access;
    std::unordered_map<Symbol, uint32_t> regIndex;
    std::vector<Symbol> regNames; ///< index -> name, lexicographic
    size_t words = 0;             ///< words per DenseBits row
    DenseBits alwaysLiveBits;
    std::unordered_map<Symbol, NodeBits> groupBits;
    std::map<const PcfgNode *, NodeBits> parAccessCache;
    std::vector<uint64_t> matrix; ///< regNames.size() rows x words
    NodeBits emptyAccess;
};

} // namespace calyx::analysis

#endif // CALYX_ANALYSIS_LIVENESS_H
