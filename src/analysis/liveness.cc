#include "analysis/liveness.h"

#include <deque>

#include "analysis/schedule.h"

namespace calyx::analysis {

Liveness::Liveness(const Pcfg &g,
                   const std::map<std::string, RegAccess> &access,
                   const std::set<std::string> &always_live)
    : access(&access), alwaysLive(always_live)
{
    // Registers written by the same group can never be merged: the merged
    // register would have two drivers in one group.
    for (const auto &[name, acc] : access) {
        (void)name;
        for (const auto &a : acc.anyWrites) {
            for (const auto &b : acc.anyWrites) {
                if (a < b)
                    interferenceEdges.insert({a, b});
            }
        }
    }
    analyze(g, alwaysLive);
}

const RegAccess &
Liveness::nodeAccess(const PcfgNode &node)
{
    if (node.kind == PcfgNode::Kind::Nop)
        return emptyAccess;
    if (node.kind == PcfgNode::Kind::Group) {
        auto it = access->find(node.group);
        return it == access->end() ? emptyAccess : it->second;
    }
    // ParNode: union over children, cached. All children execute, so the
    // union of must-writes is itself a must-write set (paper §5.2).
    auto it = parAccessCache.find(&node);
    if (it != parAccessCache.end())
        return it->second;
    RegAccess merged;
    std::function<void(const Pcfg &)> merge_graph = [&](const Pcfg &g) {
        for (const auto &n : g.nodes) {
            if (n.kind == PcfgNode::Kind::Group) {
                auto ait = access->find(n.group);
                if (ait == access->end())
                    continue;
                merged.reads.insert(ait->second.reads.begin(),
                                    ait->second.reads.end());
                merged.mustWrites.insert(ait->second.mustWrites.begin(),
                                         ait->second.mustWrites.end());
                merged.anyWrites.insert(ait->second.anyWrites.begin(),
                                        ait->second.anyWrites.end());
            } else if (n.kind == PcfgNode::Kind::ParNode) {
                for (const auto &c : n.children)
                    merge_graph(*c);
            }
        }
    };
    for (const auto &c : node.children)
        merge_graph(*c);
    return parAccessCache.emplace(&node, std::move(merged)).first->second;
}

void
Liveness::interfere(const std::set<std::string> &defs,
                    const std::set<std::string> &live_out)
{
    for (const auto &d : defs) {
        for (const auto &l : live_out) {
            if (d != l)
                interferenceEdges.insert(d < l ? std::pair{d, l}
                                               : std::pair{l, d});
        }
    }
}

std::set<std::string>
Liveness::analyze(const Pcfg &g, const std::set<std::string> &boundary)
{
    size_t n = g.nodes.size();
    std::vector<std::set<std::string>> live_in(n), live_out(n);

    // Backward worklist to fixpoint.
    std::deque<int> worklist;
    std::vector<bool> queued(n, false);
    for (size_t i = 0; i < n; ++i) {
        worklist.push_back(static_cast<int>(i));
        queued[i] = true;
    }
    while (!worklist.empty()) {
        int idx = worklist.front();
        worklist.pop_front();
        queued[idx] = false;
        const PcfgNode &node = g.nodes[idx];

        std::set<std::string> out = idx == g.exit ? boundary
                                                  : std::set<std::string>{};
        for (int s : node.succs)
            out.insert(live_in[s].begin(), live_in[s].end());
        out.insert(alwaysLive.begin(), alwaysLive.end());

        const RegAccess &acc = nodeAccess(node);
        std::set<std::string> in = out;
        for (const auto &w : acc.mustWrites)
            in.erase(w);
        in.insert(acc.reads.begin(), acc.reads.end());

        if (out != live_out[idx] || in != live_in[idx]) {
            live_out[idx] = std::move(out);
            live_in[idx] = std::move(in);
            for (int p : node.preds) {
                if (!queued[p]) {
                    worklist.push_back(p);
                    queued[p] = true;
                }
            }
        }
    }

    // Record interference and recurse into p-nodes with the converged
    // boundary (paper: live sets at the end of each child equal the live
    // registers coming out of the p-node).
    for (size_t i = 0; i < n; ++i) {
        const PcfgNode &node = g.nodes[i];
        const RegAccess &acc = nodeAccess(node);
        interfere(acc.mustWrites, live_out[i]);
        interfere(acc.anyWrites, live_out[i]);
        if (node.kind == PcfgNode::Kind::ParNode) {
            for (const auto &c : node.children)
                analyze(*c, live_out[i]);
        }
    }
    // Registers live on entry hold values we do not understand; treat
    // them as mutually interfering.
    interfere(live_in[g.entry], live_in[g.entry]);
    return live_in[g.entry];
}

} // namespace calyx::analysis
