#include "analysis/liveness.h"

#include <deque>

namespace calyx::analysis {

Liveness::Liveness(const Pcfg &g, const std::map<Symbol, RegAccess> &access,
                   const std::set<Symbol> &always_live)
    : access(&access)
{
    // Dense register universe: everything the access sets or the
    // always-live boundary mention, indexed in lexicographic order for
    // determinism.
    std::set<Symbol> universe(always_live.begin(), always_live.end());
    for (const auto &[group, acc] : access) {
        (void)group;
        universe.insert(acc.reads.begin(), acc.reads.end());
        universe.insert(acc.mustWrites.begin(), acc.mustWrites.end());
        universe.insert(acc.anyWrites.begin(), acc.anyWrites.end());
    }
    regNames.assign(universe.begin(), universe.end());
    regIndex.reserve(regNames.size());
    for (uint32_t i = 0; i < regNames.size(); ++i)
        regIndex.emplace(regNames[i], i);
    words = (regNames.size() + 63) / 64;
    matrix.assign(regNames.size() * words, 0);

    alwaysLiveBits = toBits(always_live);

    // Registers written by the same group can never be merged: the merged
    // register would have two drivers in one group.
    for (const auto &[group, acc] : access) {
        (void)group;
        if (acc.anyWrites.size() < 2)
            continue;
        DenseBits any = toBits(acc.anyWrites);
        interfere(any, any);
    }

    analyze(g, alwaysLiveBits);
}

DenseBits
Liveness::toBits(const std::set<Symbol> &set) const
{
    DenseBits bits(regNames.size());
    for (Symbol s : set) {
        auto it = regIndex.find(s);
        if (it != regIndex.end())
            bits.set(it->second);
    }
    return bits;
}

void
Liveness::mergeGraph(const Pcfg &g, NodeBits &merged)
{
    for (const auto &n : g.nodes) {
        if (n.kind == PcfgNode::Kind::Group) {
            const NodeBits &bits = nodeAccess(n);
            merged.reads |= bits.reads;
            merged.mustWrites |= bits.mustWrites;
            merged.anyWrites |= bits.anyWrites;
        } else if (n.kind == PcfgNode::Kind::ParNode) {
            for (const auto &c : n.children)
                mergeGraph(*c, merged);
        }
    }
}

const Liveness::NodeBits &
Liveness::nodeAccess(const PcfgNode &node)
{
    if (node.kind == PcfgNode::Kind::Nop) {
        if (emptyAccess.reads.words().empty()) {
            emptyAccess.reads.resize(regNames.size());
            emptyAccess.mustWrites.resize(regNames.size());
            emptyAccess.anyWrites.resize(regNames.size());
        }
        return emptyAccess;
    }
    if (node.kind == PcfgNode::Kind::Group) {
        auto cached = groupBits.find(node.group);
        if (cached != groupBits.end())
            return cached->second;
        NodeBits bits;
        auto it = access->find(node.group);
        if (it == access->end()) {
            bits.reads.resize(regNames.size());
            bits.mustWrites.resize(regNames.size());
            bits.anyWrites.resize(regNames.size());
        } else {
            bits.reads = toBits(it->second.reads);
            bits.mustWrites = toBits(it->second.mustWrites);
            bits.anyWrites = toBits(it->second.anyWrites);
        }
        return groupBits.emplace(node.group, std::move(bits)).first->second;
    }
    // ParNode: union over children, cached. All children execute, so the
    // union of must-writes is itself a must-write set (paper §5.2).
    auto it = parAccessCache.find(&node);
    if (it != parAccessCache.end())
        return it->second;
    NodeBits merged;
    merged.reads.resize(regNames.size());
    merged.mustWrites.resize(regNames.size());
    merged.anyWrites.resize(regNames.size());
    for (const auto &c : node.children)
        mergeGraph(*c, merged);
    return parAccessCache.emplace(&node, std::move(merged)).first->second;
}

void
Liveness::interfere(const DenseBits &defs, const DenseBits &live_out)
{
    const auto &lw = live_out.words();
    defs.forEach([this, &lw](size_t d) {
        uint64_t *row = matrix.data() + d * words;
        for (size_t i = 0; i < words; ++i)
            row[i] |= lw[i];
    });
}

DenseBits
Liveness::analyze(const Pcfg &g, const DenseBits &boundary)
{
    size_t n = g.nodes.size();
    std::vector<DenseBits> live_in(n, DenseBits(regNames.size()));
    std::vector<DenseBits> live_out(n, DenseBits(regNames.size()));

    // Backward worklist to fixpoint.
    std::deque<int> worklist;
    std::vector<bool> queued(n, false);
    for (size_t i = 0; i < n; ++i) {
        worklist.push_back(static_cast<int>(i));
        queued[i] = true;
    }
    while (!worklist.empty()) {
        int idx = worklist.front();
        worklist.pop_front();
        queued[idx] = false;
        const PcfgNode &node = g.nodes[idx];

        DenseBits out = idx == g.exit ? boundary
                                      : DenseBits(regNames.size());
        for (int s : node.succs)
            out |= live_in[s];
        out |= alwaysLiveBits;

        const NodeBits &acc = nodeAccess(node);
        DenseBits in = out;
        in.subtract(acc.mustWrites);
        in |= acc.reads;

        if (out != live_out[idx] || in != live_in[idx]) {
            live_out[idx] = std::move(out);
            live_in[idx] = std::move(in);
            for (int p : node.preds) {
                if (!queued[p]) {
                    worklist.push_back(p);
                    queued[p] = true;
                }
            }
        }
    }

    // Record interference and recurse into p-nodes with the converged
    // boundary (paper: live sets at the end of each child equal the live
    // registers coming out of the p-node).
    for (size_t i = 0; i < n; ++i) {
        const PcfgNode &node = g.nodes[i];
        const NodeBits &acc = nodeAccess(node);
        interfere(acc.mustWrites, live_out[i]);
        interfere(acc.anyWrites, live_out[i]);
        if (node.kind == PcfgNode::Kind::ParNode) {
            for (const auto &c : node.children)
                analyze(*c, live_out[i]);
            // Registers written in *different* children execute their
            // writes simultaneously: merging two of them would create
            // two active drivers on one physical register, so they
            // interfere even when both are dead (write-only) and the
            // live ranges alone would never overlap.
            std::vector<NodeBits> childAccess(node.children.size());
            for (size_t c = 0; c < node.children.size(); ++c) {
                childAccess[c].reads.resize(regNames.size());
                childAccess[c].mustWrites.resize(regNames.size());
                childAccess[c].anyWrites.resize(regNames.size());
                mergeGraph(*node.children[c], childAccess[c]);
            }
            for (size_t a = 0; a < childAccess.size(); ++a) {
                for (size_t b = a + 1; b < childAccess.size(); ++b) {
                    interfere(childAccess[a].anyWrites,
                              childAccess[b].anyWrites);
                    interfere(childAccess[b].anyWrites,
                              childAccess[a].anyWrites);
                }
            }
        }
    }
    // Registers live on entry hold values we do not understand; treat
    // them as mutually interfering.
    interfere(live_in[g.entry], live_in[g.entry]);
    return live_in[g.entry];
}

bool
Liveness::conflict(Symbol a, Symbol b) const
{
    if (a == b)
        return false;
    auto ia = regIndex.find(a);
    auto ib = regIndex.find(b);
    if (ia == regIndex.end() || ib == regIndex.end())
        return false;
    uint32_t x = ia->second, y = ib->second;
    // interfere() fills only the def's row, so probe both directions.
    return ((matrix[x * words + y / 64] >> (y % 64)) & 1) ||
           ((matrix[y * words + x / 64] >> (x % 64)) & 1);
}

std::set<std::pair<Symbol, Symbol>>
Liveness::interference() const
{
    std::set<std::pair<Symbol, Symbol>> edges;
    for (uint32_t x = 0; x < regNames.size(); ++x) {
        for (uint32_t y = x + 1; y < regNames.size(); ++y) {
            if (((matrix[x * words + y / 64] >> (y % 64)) & 1) ||
                ((matrix[y * words + x / 64] >> (x % 64)) & 1)) {
                // regNames is lexicographic, so (x, y) is canonical.
                edges.insert({regNames[x], regNames[y]});
            }
        }
    }
    return edges;
}

} // namespace calyx::analysis
