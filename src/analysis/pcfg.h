#ifndef CALYX_ANALYSIS_PCFG_H
#define CALYX_ANALYSIS_PCFG_H

#include <memory>
#include <vector>

#include "ir/control.h"
#include "support/symbol.h"

namespace calyx::analysis {

struct Pcfg;

/**
 * A node in a parallel control flow graph (paper §5.2, after Srinivasan
 * and Wolfe). Group nodes correspond to group enables (including if/while
 * condition groups); p-nodes represent entire `par` blocks and
 * recursively contain one pCFG per child.
 */
struct PcfgNode
{
    enum class Kind { Nop, Group, ParNode };

    Kind kind = Kind::Nop;
    Symbol group;                             ///< Kind::Group only.
    std::vector<std::unique_ptr<Pcfg>> children; ///< Kind::ParNode only.

    std::vector<int> succs;
    std::vector<int> preds;
};

/**
 * A parallel control flow graph: nodes with distinguished entry/exit
 * nop nodes. While loops introduce back edges.
 */
struct Pcfg
{
    std::vector<PcfgNode> nodes;
    int entry = -1;
    int exit = -1;

    int addNode(PcfgNode node);
    void addEdge(int from, int to);
};

/** Build the pCFG of a control program. */
std::unique_ptr<Pcfg> buildPcfg(const Control &ctrl);

} // namespace calyx::analysis

#endif // CALYX_ANALYSIS_PCFG_H
