#include "analysis/schedule.h"

#include <functional>
#include <vector>

namespace calyx::analysis {

GroupPair
makePair(Symbol a, Symbol b)
{
    return a < b ? GroupPair{a, b} : GroupPair{b, a};
}

std::set<Symbol>
groupsInControl(const Control &ctrl)
{
    std::set<Symbol> out;
    ctrl.walk([&out](const Control &node) {
        switch (node.kind()) {
          case Control::Kind::Enable:
            out.insert(cast<Enable>(node).group());
            break;
          case Control::Kind::If:
            if (!cast<If>(node).condGroup().empty())
                out.insert(cast<If>(node).condGroup());
            break;
          case Control::Kind::While:
            if (!cast<While>(node).condGroup().empty())
                out.insert(cast<While>(node).condGroup());
            break;
          default:
            break;
        }
    });
    return out;
}

namespace {

void
collectConflicts(const Control &ctrl,
                 const std::function<void(Symbol, Symbol)> &add)
{
    switch (ctrl.kind()) {
      case Control::Kind::Empty:
      case Control::Kind::Enable:
        return;
      case Control::Kind::Seq:
        for (const auto &c : cast<Seq>(ctrl).stmts())
            collectConflicts(*c, add);
        return;
      case Control::Kind::If: {
        const auto &i = cast<If>(ctrl);
        collectConflicts(i.trueBranch(), add);
        collectConflicts(i.falseBranch(), add);
        return;
      }
      case Control::Kind::While:
        collectConflicts(cast<While>(ctrl).body(), add);
        return;
      case Control::Kind::Par: {
        const auto &children = cast<Par>(ctrl).stmts();
        std::vector<std::set<Symbol>> sets;
        for (const auto &c : children) {
            collectConflicts(*c, add);
            sets.push_back(groupsInControl(*c));
        }
        for (size_t i = 0; i < sets.size(); ++i) {
            for (size_t j = i + 1; j < sets.size(); ++j) {
                for (Symbol a : sets[i]) {
                    for (Symbol b : sets[j]) {
                        if (a != b)
                            add(a, b);
                    }
                }
            }
        }
        return;
      }
    }
}

} // namespace

std::unordered_set<uint64_t>
parallelConflictKeys(const Control &ctrl)
{
    std::unordered_set<uint64_t> keys;
    collectConflicts(ctrl, [&keys](Symbol a, Symbol b) {
        keys.insert(symbolPairKey(a, b));
    });
    return keys;
}

std::set<GroupPair>
parallelConflicts(const Control &ctrl)
{
    std::set<GroupPair> conflicts;
    collectConflicts(ctrl, [&conflicts](Symbol a, Symbol b) {
        conflicts.insert(makePair(a, b));
    });
    return conflicts;
}

} // namespace calyx::analysis
