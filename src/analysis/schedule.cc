#include "analysis/schedule.h"

namespace calyx::analysis {

GroupPair
makePair(const std::string &a, const std::string &b)
{
    return a < b ? GroupPair{a, b} : GroupPair{b, a};
}

std::set<std::string>
groupsInControl(const Control &ctrl)
{
    std::set<std::string> out;
    ctrl.walk([&out](const Control &node) {
        switch (node.kind()) {
          case Control::Kind::Enable:
            out.insert(cast<Enable>(node).group());
            break;
          case Control::Kind::If:
            if (!cast<If>(node).condGroup().empty())
                out.insert(cast<If>(node).condGroup());
            break;
          case Control::Kind::While:
            if (!cast<While>(node).condGroup().empty())
                out.insert(cast<While>(node).condGroup());
            break;
          default:
            break;
        }
    });
    return out;
}

namespace {

void
collectConflicts(const Control &ctrl, std::set<GroupPair> &conflicts)
{
    switch (ctrl.kind()) {
      case Control::Kind::Empty:
      case Control::Kind::Enable:
        return;
      case Control::Kind::Seq:
        for (const auto &c : cast<Seq>(ctrl).stmts())
            collectConflicts(*c, conflicts);
        return;
      case Control::Kind::If: {
        const auto &i = cast<If>(ctrl);
        collectConflicts(i.trueBranch(), conflicts);
        collectConflicts(i.falseBranch(), conflicts);
        return;
      }
      case Control::Kind::While:
        collectConflicts(cast<While>(ctrl).body(), conflicts);
        return;
      case Control::Kind::Par: {
        const auto &children = cast<Par>(ctrl).stmts();
        std::vector<std::set<std::string>> sets;
        for (const auto &c : children) {
            collectConflicts(*c, conflicts);
            sets.push_back(groupsInControl(*c));
        }
        for (size_t i = 0; i < sets.size(); ++i) {
            for (size_t j = i + 1; j < sets.size(); ++j) {
                for (const auto &a : sets[i]) {
                    for (const auto &b : sets[j]) {
                        if (a != b)
                            conflicts.insert(makePair(a, b));
                    }
                }
            }
        }
        return;
      }
    }
}

} // namespace

std::set<GroupPair>
parallelConflicts(const Control &ctrl)
{
    std::set<GroupPair> conflicts;
    collectConflicts(ctrl, conflicts);
    return conflicts;
}

} // namespace calyx::analysis
