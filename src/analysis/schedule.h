#ifndef CALYX_ANALYSIS_SCHEDULE_H
#define CALYX_ANALYSIS_SCHEDULE_H

#include <set>
#include <string>
#include <utility>

#include "ir/component.h"

namespace calyx::analysis {

/** Unordered pair of group names (canonicalized). */
using GroupPair = std::pair<std::string, std::string>;

/** Canonicalize an unordered pair. */
GroupPair makePair(const std::string &a, const std::string &b);

/**
 * Groups enabled anywhere in a control subtree, including `with` condition
 * groups of if/while statements.
 */
std::set<std::string> groupsInControl(const Control &ctrl);

/**
 * May-run-in-parallel analysis (paper §5.1): the set of group pairs that
 * can be active simultaneously, derived from `par` blocks. Groups in
 * different children of a `par` conflict; groups within one child only
 * conflict through nested `par` blocks.
 */
std::set<GroupPair> parallelConflicts(const Control &ctrl);

} // namespace calyx::analysis

#endif // CALYX_ANALYSIS_SCHEDULE_H
