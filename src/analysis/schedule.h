#ifndef CALYX_ANALYSIS_SCHEDULE_H
#define CALYX_ANALYSIS_SCHEDULE_H

#include <cstdint>
#include <set>
#include <unordered_set>
#include <utility>

#include "ir/component.h"
#include "support/symbol.h"

namespace calyx::analysis {

/** Unordered pair of group names (canonicalized lexicographically). */
using GroupPair = std::pair<Symbol, Symbol>;

/** Canonicalize an unordered pair. */
GroupPair makePair(Symbol a, Symbol b);

/**
 * Canonical O(1) key for an unordered symbol pair: the two ids packed
 * smaller-first. This is what the hot paths hash instead of ordering
 * string pairs.
 */
inline uint64_t
symbolPairKey(Symbol a, Symbol b)
{
    uint32_t x = a.id(), y = b.id();
    if (x > y)
        std::swap(x, y);
    return (static_cast<uint64_t>(x) << 32) | y;
}

/**
 * Groups enabled anywhere in a control subtree, including `with` condition
 * groups of if/while statements.
 */
std::set<Symbol> groupsInControl(const Control &ctrl);

/**
 * May-run-in-parallel analysis (paper §5.1): the set of group pairs that
 * can be active simultaneously, derived from `par` blocks. Groups in
 * different children of a `par` conflict; groups within one child only
 * conflict through nested `par` blocks.
 *
 * The key-set form is the one passes consume (hashing two u32 ids);
 * the ordered-pair form exists for tests and diagnostics.
 */
std::unordered_set<uint64_t> parallelConflictKeys(const Control &ctrl);
std::set<GroupPair> parallelConflicts(const Control &ctrl);

} // namespace calyx::analysis

#endif // CALYX_ANALYSIS_SCHEDULE_H
