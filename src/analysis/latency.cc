#include "analysis/latency.h"

#include <algorithm>

#include "ir/component.h"
#include "support/error.h"

namespace calyx::analysis {

std::optional<int64_t>
controlLatency(const Control &ctrl, const Component &comp)
{
    switch (ctrl.kind()) {
      case Control::Kind::Empty:
        return 0;
      case Control::Kind::Enable: {
        const Group *g = comp.findGroup(cast<Enable>(ctrl).group());
        if (!g)
            return std::nullopt;
        return g->staticLatency();
      }
      case Control::Kind::Seq: {
        int64_t total = 0;
        for (const auto &c : cast<Seq>(ctrl).stmts()) {
            auto l = controlLatency(*c, comp);
            if (!l)
                return std::nullopt;
            total += *l;
        }
        return total;
      }
      case Control::Kind::Par: {
        int64_t total = 0;
        for (const auto &c : cast<Par>(ctrl).stmts()) {
            auto l = controlLatency(*c, comp);
            if (!l)
                return std::nullopt;
            total = std::max(total, *l);
        }
        return total;
      }
      case Control::Kind::If: {
        const auto &i = cast<If>(ctrl);
        int64_t cond = 1;
        if (!i.condGroup().empty()) {
            const Group *g = comp.findGroup(i.condGroup());
            if (!g || !g->staticLatency())
                return std::nullopt;
            cond = *g->staticLatency();
        }
        auto t = controlLatency(i.trueBranch(), comp);
        auto f = controlLatency(i.falseBranch(), comp);
        if (!t || !f)
            return std::nullopt;
        int64_t hi = std::max(*t, *f);
        int64_t lo = std::min(*t, *f);
        // Profitability: a static if always pays the longer branch.
        // When the branches are very asymmetric (e.g. a guarded update
        // inside a triangular loop), dynamic compilation of the short
        // path is cheaper, so stay best-effort and bail out.
        if (hi > 2 * (lo + 2))
            return std::nullopt;
        return cond + hi;
      }
      case Control::Kind::While:
        // Trip counts are data-dependent; loops stay dynamic.
        return std::nullopt;
    }
    panic("bad control kind");
}

} // namespace calyx::analysis
