#ifndef CALYX_ANALYSIS_COLORING_H
#define CALYX_ANALYSIS_COLORING_H

#include <map>
#include <set>
#include <string>
#include <vector>

namespace calyx::analysis {

/**
 * Greedy graph coloring used by both sharing passes (paper §5.1, §5.2).
 * Nodes are cell names; edges are conflicts. Nodes are processed in the
 * given order and each receives the lowest color not used by an already
 * colored neighbor. The returned map sends every node to the
 * representative (first) node of its color, so applying it as a renaming
 * merges each color class onto one cell.
 */
std::map<std::string, std::string>
greedyColor(const std::vector<std::string> &nodes,
            const std::set<std::pair<std::string, std::string>> &conflicts);

} // namespace calyx::analysis

#endif // CALYX_ANALYSIS_COLORING_H
