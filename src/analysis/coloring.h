#ifndef CALYX_ANALYSIS_COLORING_H
#define CALYX_ANALYSIS_COLORING_H

#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "support/symbol.h"

namespace calyx::analysis {

/**
 * Greedy graph coloring used by both sharing passes (paper §5.1, §5.2).
 * Nodes are cell names; `conflict` answers whether two nodes may not
 * share. Nodes are processed in the given order and each receives the
 * lowest color not used by an already colored neighbor. The returned
 * map sends every node to the representative (first) node of its color,
 * so applying it as a renaming merges each color class onto one cell.
 *
 * The conflict oracle form is the hot path (passes back it with an O(1)
 * interference-matrix or hashed-pair-key lookup); the edge-set overload
 * is a convenience for tests and small callers.
 */
std::map<Symbol, Symbol>
greedyColor(const std::vector<Symbol> &nodes,
            const std::function<bool(Symbol, Symbol)> &conflict);

std::map<Symbol, Symbol>
greedyColor(const std::vector<Symbol> &nodes,
            const std::set<std::pair<Symbol, Symbol>> &conflicts);

} // namespace calyx::analysis

#endif // CALYX_ANALYSIS_COLORING_H
