#include "analysis/coloring.h"

#include <algorithm>

namespace calyx::analysis {

std::map<std::string, std::string>
greedyColor(const std::vector<std::string> &nodes,
            const std::set<std::pair<std::string, std::string>> &conflicts)
{
    auto conflict = [&conflicts](const std::string &a,
                                 const std::string &b) {
        return conflicts.count(a < b ? std::pair{a, b}
                                     : std::pair{b, a}) > 0;
    };

    std::map<std::string, int> color;
    std::vector<std::string> representative;

    for (const auto &node : nodes) {
        std::set<int> used;
        for (const auto &[other, c] : color) {
            if (conflict(node, other))
                used.insert(c);
        }
        int c = 0;
        while (used.count(c))
            ++c;
        color[node] = c;
        if (c == static_cast<int>(representative.size()))
            representative.push_back(node);
    }

    std::map<std::string, std::string> mapping;
    for (const auto &[node, c] : color)
        mapping[node] = representative[c];
    return mapping;
}

} // namespace calyx::analysis
