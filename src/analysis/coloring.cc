#include "analysis/coloring.h"

#include <algorithm>

namespace calyx::analysis {

std::map<Symbol, Symbol>
greedyColor(const std::vector<Symbol> &nodes,
            const std::function<bool(Symbol, Symbol)> &conflict)
{
    // (node, color) in processing order; scanned per node. The scan
    // order does not affect the result (only membership in `used`).
    std::vector<std::pair<Symbol, int>> color;
    color.reserve(nodes.size());
    std::vector<Symbol> representative;

    for (Symbol node : nodes) {
        std::vector<char> used(representative.size() + 1, 0);
        for (const auto &[other, c] : color) {
            if (conflict(node, other))
                used[c] = 1;
        }
        int c = 0;
        while (used[c])
            ++c;
        color.emplace_back(node, c);
        if (c == static_cast<int>(representative.size()))
            representative.push_back(node);
    }

    std::map<Symbol, Symbol> mapping;
    for (const auto &[node, c] : color)
        mapping[node] = representative[c];
    return mapping;
}

std::map<Symbol, Symbol>
greedyColor(const std::vector<Symbol> &nodes,
            const std::set<std::pair<Symbol, Symbol>> &conflicts)
{
    return greedyColor(nodes, [&conflicts](Symbol a, Symbol b) {
        return conflicts.count(a < b ? std::pair{a, b}
                                     : std::pair{b, a}) > 0;
    });
}

} // namespace calyx::analysis
