#include "analysis/read_write_sets.h"

namespace calyx::analysis {

std::set<std::string>
registerCells(const Component &comp)
{
    std::set<std::string> regs;
    for (const auto &cell : comp.cells()) {
        if (cell->type() == "std_reg")
            regs.insert(cell->name());
    }
    return regs;
}

std::map<std::string, RegAccess>
registerAccess(const Component &comp)
{
    std::set<std::string> regs = registerCells(comp);
    std::map<std::string, RegAccess> out;

    for (const auto &group : comp.groups()) {
        RegAccess acc;
        // Which registers have an unconditional write_en = 1 and an
        // unconditional data write? Those are must-writes.
        std::set<std::string> unconditional_en, unconditional_in;
        std::set<std::string> any_write;
        // A register whose done pulse *is* the group's done signal is
        // always committed before the group can finish, even when its
        // write enable is guarded (the multi-cycle operator idiom
        // `r.write_en = f.done ? 1; g[done] = r.done`).
        std::set<std::string> done_backed;

        for (const auto &a : group->assignments()) {
            a.reads([&](const PortRef &p) {
                // Only data reads matter: observing a register's done
                // pulse does not read its value.
                if (p.isCell() && regs.count(p.parent) &&
                    p.port == "out") {
                    acc.reads.insert(p.parent);
                }
            });
            if (a.dst == group->doneHole() && a.guard->isTrue() &&
                a.src.isCell() && a.src.port == "done" &&
                regs.count(a.src.parent)) {
                done_backed.insert(a.src.parent);
            }
            if (a.dst.isCell() && regs.count(a.dst.parent)) {
                any_write.insert(a.dst.parent);
                if (a.guard->isTrue()) {
                    if (a.dst.port == "write_en" && a.src.isConst() &&
                        a.src.value == 1) {
                        unconditional_en.insert(a.dst.parent);
                    }
                    if (a.dst.port == "in")
                        unconditional_in.insert(a.dst.parent);
                }
            }
        }
        acc.anyWrites = any_write;
        for (const auto &r : any_write) {
            if ((unconditional_en.count(r) && unconditional_in.count(r)) ||
                done_backed.count(r)) {
                acc.mustWrites.insert(r);
            } else {
                // Conditional write: value may survive, keep it live.
                acc.reads.insert(r);
            }
        }
        out[group->name()] = std::move(acc);
    }
    return out;
}

std::set<std::string>
alwaysLiveRegisters(const Component &comp)
{
    std::set<std::string> regs = registerCells(comp);
    std::set<std::string> out;

    for (const auto &a : comp.continuousAssignments()) {
        a.reads([&](const PortRef &p) {
            if (p.isCell() && regs.count(p.parent))
                out.insert(p.parent);
        });
        if (a.dst.isCell() && regs.count(a.dst.parent))
            out.insert(a.dst.parent);
    }

    comp.control().walk([&](const Control &node) {
        const PortRef *port = nullptr;
        if (node.kind() == Control::Kind::If)
            port = &cast<If>(node).condPort();
        else if (node.kind() == Control::Kind::While)
            port = &cast<While>(node).condPort();
        if (port && port->isCell() && regs.count(port->parent))
            out.insert(port->parent);
    });

    for (const auto &cell : comp.cells()) {
        if (cell->type() == "std_reg" &&
            cell->attrs().has(Attributes::externalAttr)) {
            out.insert(cell->name());
        }
    }
    return out;
}

} // namespace calyx::analysis
