#ifndef CALYX_ANALYSIS_LATENCY_H
#define CALYX_ANALYSIS_LATENCY_H

#include <cstdint>
#include <optional>

namespace calyx {
class Component;
class Control;
} // namespace calyx

namespace calyx::analysis {

/**
 * Static latency of a control subtree in cycles, or nullopt when any
 * part is dynamic (paper §4.4). Groups contribute their "static"
 * attribute (frontend-annotated or inferred by the infer-latency
 * pass); seq sums, par takes the max, if pays the condition plus the
 * longer branch, while is always dynamic.
 *
 * `if` applies a profitability cutoff: when the branches are very
 * asymmetric, a static schedule always pays the longer branch, so the
 * subtree is reported dynamic and the short path keeps its handshake.
 *
 * This is the latency feed of the FSM lowering layer (src/lowering/):
 * the builder fuses subtrees with known latency into counter states,
 * and StaticPass uses the same computation to pick maximal static
 * islands.
 */
std::optional<int64_t> controlLatency(const Control &ctrl,
                                      const Component &comp);

} // namespace calyx::analysis

#endif // CALYX_ANALYSIS_LATENCY_H
