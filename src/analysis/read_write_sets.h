#ifndef CALYX_ANALYSIS_READ_WRITE_SETS_H
#define CALYX_ANALYSIS_READ_WRITE_SETS_H

#include <map>
#include <set>
#include <string>

#include "ir/component.h"

namespace calyx::analysis {

/**
 * Conservative register access summary for one group (paper §5.2):
 * `reads` is the set of registers the group may read, `mustWrites` the
 * set it always writes. Guarded (conditional) register writes are
 * treated as both a read and a may-write, which keeps the register live
 * across the group.
 */
struct RegAccess
{
    std::set<std::string> reads;
    std::set<std::string> mustWrites;
    /** Every register with any (conditional or not) write in the group. */
    std::set<std::string> anyWrites;
};

/**
 * Compute register read/write sets for every group of a component.
 * Only `std_reg` cells participate; memories and other stateful cells
 * are never shared by the register-sharing pass.
 */
std::map<std::string, RegAccess> registerAccess(const Component &comp);

/** Names of all std_reg cells in the component. */
std::set<std::string> registerCells(const Component &comp);

/**
 * Registers that must be treated as live everywhere: referenced by
 * continuous assignments, by control condition ports, or carrying the
 * "external" attribute.
 */
std::set<std::string> alwaysLiveRegisters(const Component &comp);

} // namespace calyx::analysis

#endif // CALYX_ANALYSIS_READ_WRITE_SETS_H
