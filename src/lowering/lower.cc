#include "lowering/lower.h"

#include "support/error.h"

namespace calyx::lowering {

Symbol
lowerControl(Component &comp, Context &ctx, const Control &ctrl,
             const LowerOptions &opts, std::set<Symbol> &inlined)
{
    FsmBuilder builder(comp, ctx, opts.build,
                       [&](const Control &island) {
                           return lowerControl(comp, ctx, island, opts,
                                               inlined);
                       });
    FsmMachinePtr machine =
        builder.build(ctrl, comp.uniqueName("control"));
    inlined.insert(builder.inlinedCondGroups().begin(),
                   builder.inlinedCondGroups().end());
    if (opts.optimize)
        optimize(*machine);
    Symbol group = realize(*machine, comp, ctx, opts.realize);
    comp.addFsm(std::move(machine));
    return group;
}

Symbol
lowerStatic(Component &comp, Context &ctx, const Control &ctrl,
            int64_t latency, const LowerOptions &opts)
{
    FsmBuilder builder(comp, ctx, opts.build, [](const Control &) {
        panic("static islands cannot fork sub-islands");
        return Symbol();
    });
    FsmMachinePtr machine =
        builder.buildStatic(ctrl, latency, comp.uniqueName("static"));
    if (opts.optimize)
        optimize(*machine);
    Symbol group = realize(*machine, comp, ctx, opts.realize);
    comp.addFsm(std::move(machine));
    return group;
}

int
seedControlRegisters(const Control &ctrl)
{
    int count = 0;
    ctrl.walk([&count](const Control &node) {
        switch (node.kind()) {
          case Control::Kind::Seq:
            if (cast<Seq>(node).stmts().size() >= 2)
                ++count; // fsm state counter
            break;
          case Control::Kind::If:
          case Control::Kind::While:
            count += 2; // cc ("condition computed") + cs (saved value)
            break;
          case Control::Kind::Par: {
            size_t n = cast<Par>(node).stmts().size();
            if (n >= 2)
                count += static_cast<int>(n); // pd completion bits
            break;
          }
          default:
            break;
        }
    });
    return count;
}

} // namespace calyx::lowering
