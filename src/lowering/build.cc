#include "lowering/build.h"

#include <utility>

#include "analysis/latency.h"
#include "support/error.h"

namespace calyx::lowering {

namespace {

const PortRef one1 = constant(1, 1);
const PortRef zero1 = constant(0, 1);

/**
 * A group is combinational when its done hole is the constant 1 and it
 * only feeds combinational cells. Such groups (the `with` condition
 * groups of Dahlia-style frontends) are inlined into the evaluation
 * state rather than handshaken, mirroring Calyx's comb groups.
 */
bool
isCombGroup(const Group &g)
{
    for (const auto &a : g.assignments()) {
        if (a.dst == g.doneHole()) {
            if (!(a.guard->isTrue() && a.src.isConst() && a.src.value == 1))
                return false;
        }
    }
    return g.hasDoneWrite();
}

GuardPtr
doneOf(Symbol group)
{
    return Guard::fromPort(holePort(group, "done"));
}

} // namespace

FsmBuilder::FsmBuilder(Component &comp, Context &ctx,
                       const BuildOptions &opts, LowerIsland lower_island)
    : comp(comp), ctx(ctx), opts(opts), lowerIsland(std::move(lower_island))
{}

FsmMachinePtr
FsmBuilder::build(const Control &ctrl, Symbol name)
{
    auto machine = std::make_unique<FsmMachine>(name);
    m = machine.get();
    uint32_t final = m->addState("done");
    m->state(final).accepting = true;
    m->setEntry(compile(ctrl, final));
    m = nullptr;
    return machine;
}

FsmMachinePtr
FsmBuilder::buildStatic(const Control &ctrl, int64_t latency, Symbol name)
{
    if (latency < 1)
        fatal("static island ", name, ": latency ", latency);
    auto machine = std::make_unique<FsmMachine>(name);
    m = machine.get();
    uint32_t counter = m->addState("schedule", latency);
    scheduleStatic(ctrl, m->state(counter), 0, Guard::trueGuard());
    uint32_t final = m->addState("done");
    m->state(final).accepting = true;
    m->state(counter).transitions.push_back({Guard::trueGuard(), final});
    m->setEntry(counter);
    m = nullptr;
    return machine;
}

uint32_t
FsmBuilder::compile(const Control &ctrl, uint32_t cont)
{
    // Latency-sensitive fusion (paper §4.4): a subtree with known total
    // latency collapses into one counter state — no handshakes inside.
    // Bare enables keep their handshake (a single group gains nothing
    // from a counter wrapper), matching the static pass's maximality.
    if (opts.fuseStatic && ctrl.kind() != Control::Kind::Enable &&
        ctrl.kind() != Control::Kind::Empty) {
        if (auto latency = analysis::controlLatency(ctrl, comp)) {
            if (*latency == 0)
                return cont;
            uint32_t s = m->addState("static", *latency);
            scheduleStatic(ctrl, m->state(s), 0, Guard::trueGuard());
            m->state(s).transitions.push_back({Guard::trueGuard(), cont});
            return s;
        }
    }

    switch (ctrl.kind()) {
      case Control::Kind::Empty:
        return cont;
      case Control::Kind::Enable:
        return compileEnable(cast<Enable>(ctrl).group(), cont);
      case Control::Kind::Seq: {
        const auto &stmts = cast<Seq>(ctrl).stmts();
        uint32_t cur = cont;
        for (auto it = stmts.rbegin(); it != stmts.rend(); ++it)
            cur = compile(**it, cur);
        return cur;
      }
      case Control::Kind::Par:
        return compilePar(cast<Par>(ctrl), cont);
      case Control::Kind::If:
        return compileIf(cast<If>(ctrl), cont);
      case Control::Kind::While:
        return compileWhile(cast<While>(ctrl), cont);
    }
    panic("bad control kind");
}

void
FsmBuilder::addEnable(FsmState &state, Symbol group, GuardPtr extra)
{
    // Deasserting go during the child's done cycle keeps state elements
    // from committing twice (the write enable would otherwise still be
    // high while the parent observes done).
    state.actions.push_back({holePort(group, "go"), one1,
                             Guard::conj(std::move(extra),
                                         Guard::negate(doneOf(group)))});
}

uint32_t
FsmBuilder::compileEnable(Symbol group, uint32_t cont)
{
    uint32_t s = m->addState(group);
    addEnable(m->state(s), group, Guard::trueGuard());
    m->state(s).transitions.push_back({doneOf(group), cont});
    m->state(s).combExit = true; // exits on the child's done
    return s;
}

uint32_t
FsmBuilder::compilePar(const Par &par, uint32_t cont)
{
    std::vector<const Control *> children;
    for (const auto &c : par.stmts()) {
        if (c->kind() != Control::Kind::Empty)
            children.push_back(c.get());
    }
    if (children.empty())
        return cont;
    if (children.size() == 1)
        return compile(*children[0], cont);

    uint32_t s = m->addState("par");
    FsmState &state = m->state(s);
    GuardPtr all_done = Guard::trueGuard();
    std::vector<Symbol> pds;
    for (const Control *child : children) {
        // A plain enable runs its group directly; anything else forks a
        // sub-island with its own machine (a flat FSM cannot track
        // independently-timed parallel children).
        Symbol g = child->kind() == Control::Kind::Enable
                       ? cast<Enable>(*child).group()
                       : lowerIsland(*child);
        Cell &pd = comp.addCell(comp.uniqueName("pd"), "std_reg", {1}, ctx);
        m->addHelperRegister(pd.name());
        pds.push_back(pd.name());
        GuardPtr pd_out = Guard::fromPort(cellPort(pd.name(), "out"));
        // Run the child until its completion has been recorded.
        addEnable(state, g, Guard::negate(pd_out));
        // Latch the child's done pulse. The !pd guard keeps the latch
        // disjoint from the clear below even for children whose done is
        // constantly high (e.g. empty islands).
        GuardPtr latch = Guard::conj(doneOf(g), Guard::negate(pd_out));
        state.actions.push_back({cellPort(pd.name(), "in"), one1, latch});
        state.actions.push_back(
            {cellPort(pd.name(), "write_en"), one1, latch});
        all_done = Guard::conj(all_done, pd_out);
    }
    // Clear the completion bits in the exit cycle so a par nested in a
    // loop re-arms with fresh bits on re-entry. The clears must be
    // continuous (ungated, no state decode): when the par state is the
    // whole island, the parent deasserts go in the very cycle all bits
    // are set, so a gated clear would never fire and the second
    // iteration would complete instantly. All-bits-set is transient and
    // unique to this state's exit, so an always-armed clear is safe.
    for (Symbol pd : pds) {
        state.actions.push_back(
            {cellPort(pd, "in"), zero1, all_done, 0,
             FsmAction::kWholeSpan, /*continuous=*/true});
        state.actions.push_back(
            {cellPort(pd, "write_en"), one1, all_done, 0,
             FsmAction::kWholeSpan, /*continuous=*/true});
    }
    state.transitions.push_back({all_done, cont});
    state.combExit = true; // exits on the latched completion bits
    return s;
}

GuardPtr
FsmBuilder::buildCond(FsmState &state, Symbol cond_group)
{
    if (cond_group.empty()) {
        // The port is continuously driven; it is valid right away.
        return Guard::trueGuard();
    }
    // Const access keeps a materialized DefUse index alive.
    const Group &cond = std::as_const(comp).group(cond_group);
    if (isCombGroup(cond)) {
        // Inline the combinational condition into the evaluation state;
        // it completes in the same cycle. GoInsertion already gated
        // these with cond[go], which will never be driven once inlined;
        // drop that gate (the state window gates them instead).
        for (const auto &a : cond.assignments()) {
            if (a.dst == cond.doneHole())
                continue;
            GuardPtr guard = Guard::substPort(a.guard, cond.goHole(),
                                              Guard::trueGuard());
            state.actions.push_back({a.dst, a.src, guard});
        }
        inlinedGroups.insert(cond_group);
        return Guard::trueGuard();
    }
    // Handshaken condition: enable the group, decide when it is done.
    // The transition reads the condition port in the done cycle, so the
    // port must be register-backed to survive the group's deassertion —
    // the same contract the seed's cs-latch imposed.
    addEnable(state, cond_group, Guard::trueGuard());
    return doneOf(cond_group);
}

uint32_t
FsmBuilder::compileIf(const If &stmt, uint32_t cont)
{
    uint32_t s = m->addState("if");
    GuardPtr ready = buildCond(m->state(s), stmt.condGroup());
    GuardPtr port = Guard::fromPort(stmt.condPort());
    uint32_t t = stmt.trueBranch().kind() == Control::Kind::Empty
                     ? cont
                     : compile(stmt.trueBranch(), cont);
    uint32_t f = stmt.falseBranch().kind() == Control::Kind::Empty
                     ? cont
                     : compile(stmt.falseBranch(), cont);
    FsmState &state = m->state(s);
    state.transitions.push_back({Guard::conj(ready, port), t});
    state.transitions.push_back(
        {Guard::conj(ready, Guard::negate(port)), f});
    // A handshaken condition's exit is its group's done; an inlined
    // condition decides in its first cycle, which is not a completion
    // signal (the inlined assignments still need the cycle to run).
    state.combExit = !ready->isTrue();
    return s;
}

uint32_t
FsmBuilder::compileWhile(const While &stmt, uint32_t cont)
{
    // The evaluation state is both the loop entry and the back-edge
    // target, so it must exist before the body is compiled.
    uint32_t s = m->addState("while");
    GuardPtr ready = buildCond(m->state(s), stmt.condGroup());
    GuardPtr port = Guard::fromPort(stmt.condPort());
    uint32_t body = stmt.body().kind() == Control::Kind::Empty
                        ? s // empty body: re-evaluate next cycle
                        : compile(stmt.body(), s);
    FsmState &state = m->state(s);
    state.transitions.push_back({Guard::conj(ready, port), body});
    state.transitions.push_back(
        {Guard::conj(ready, Guard::negate(port)), cont});
    return s;
}

void
FsmBuilder::scheduleStatic(const Control &ctrl, FsmState &state,
                           int64_t off, const GuardPtr &path)
{
    switch (ctrl.kind()) {
      case Control::Kind::Empty:
        return;
      case Control::Kind::Enable: {
        Symbol name = cast<Enable>(ctrl).group();
        int64_t latency = *comp.group(name).staticLatency();
        if (latency == 0)
            return;
        state.actions.push_back(
            {holePort(name, "go"), one1, path, off, latency});
        return;
      }
      case Control::Kind::Seq: {
        for (const auto &c : cast<Seq>(ctrl).stmts()) {
            scheduleStatic(*c, state, off, path);
            off += *analysis::controlLatency(*c, comp);
        }
        return;
      }
      case Control::Kind::Par:
        for (const auto &c : cast<Par>(ctrl).stmts())
            scheduleStatic(*c, state, off, path);
        return;
      case Control::Kind::If: {
        const auto &i = cast<If>(ctrl);
        int64_t cond_latency = 1;
        if (!i.condGroup().empty()) {
            cond_latency = *comp.group(i.condGroup()).staticLatency();
            state.actions.push_back({holePort(i.condGroup(), "go"), one1,
                                     path, off, cond_latency});
        }
        // Latch the condition on the last cycle of its window; the
        // saved bit gates both branch schedules for their whole span.
        Cell &cs =
            comp.addCell(comp.uniqueName("cs"), "std_reg", {1}, ctx);
        m->addHelperRegister(cs.name());
        state.actions.push_back({cellPort(cs.name(), "in"), i.condPort(),
                                 path, off + cond_latency - 1, 1});
        state.actions.push_back({cellPort(cs.name(), "write_en"), one1,
                                 path, off + cond_latency - 1, 1});
        GuardPtr cs_out = Guard::fromPort(cellPort(cs.name(), "out"));
        scheduleStatic(i.trueBranch(), state, off + cond_latency,
                       Guard::conj(path, cs_out));
        scheduleStatic(i.falseBranch(), state, off + cond_latency,
                       Guard::conj(path, Guard::negate(cs_out)));
        return;
      }
      case Control::Kind::While:
        panic("while inside a static region");
    }
}

} // namespace calyx::lowering
