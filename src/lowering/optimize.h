#ifndef CALYX_LOWERING_OPTIMIZE_H
#define CALYX_LOWERING_OPTIMIZE_H

#include "ir/fsm.h"

namespace calyx::lowering {

/** What the optimize stage did to one machine (for stats/tests). */
struct OptimizeResult
{
    int unreachableRemoved = 0;
    int statesMerged = 0;
    int statesForwarded = 0;
    int guardsSimplified = 0;
};

/**
 * Boolean simplification over the existing Guard machinery: folds
 * double negation, idempotent conjunction/disjunction (a & a, a | a),
 * contradiction (a & !a -> false, encoded as !true), absorption of the
 * false guard, and complement disjunction (a | !a -> true). Structural
 * (Guard::equal) only — no SAT, no reassociation.
 */
GuardPtr simplifyGuard(const GuardPtr &g);

/** Whether `g` is the canonical false guard (!true). */
bool isFalseGuard(const GuardPtr &g);

/**
 * Optimize stage of control lowering, run between build and realize:
 *
 *  1. guard simplification on every action and transition (dropping
 *     actions and transitions whose guard folded to false),
 *  2. forwarding: a non-accepting, span-1 state with no actions and a
 *     single unconditional transition is skipped by retargeting its
 *     predecessors (and the entry) past it,
 *  3. duplicate-state merging: states with identical span, accepting
 *     flag, actions, and transitions collapse to one (iterated to a
 *     fixpoint so chains of duplicates fold),
 *  4. unreachable-state elimination from the entry.
 *
 * All four preserve the machine's observable schedule except
 * forwarding, which removes a do-nothing stall cycle.
 */
OptimizeResult optimize(FsmMachine &m);

} // namespace calyx::lowering

#endif // CALYX_LOWERING_OPTIMIZE_H
