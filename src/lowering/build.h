#ifndef CALYX_LOWERING_BUILD_H
#define CALYX_LOWERING_BUILD_H

#include <functional>
#include <set>

#include "ir/component.h"
#include "ir/context.h"
#include "ir/fsm.h"

namespace calyx::lowering {

/** Configuration of the build stage. */
struct BuildOptions
{
    /**
     * Fuse statically-timed subtrees (known latency via the "static"
     * attributes the infer-latency pass populates) into single counter
     * states instead of handshaking every enable (paper §4.4 applied
     * inside the flat machine). Off by default: the standard pipeline
     * reserves latency-sensitive compilation for the `static` pass so
     * `compile-control` alone stays latency-insensitive.
     */
    bool fuseStatic = false;
};

/**
 * Build stage of control lowering: top-down compilation of a control
 * tree into one flat FsmMachine per dynamic island.
 *
 * Unlike the seed's bottom-up expansion (one `std_reg` state counter
 * per `seq` node, `cc`/`cs` latch registers per `if`/`while`), the
 * builder walks the whole tree with an explicit continuation: every
 * dynamic leaf becomes one state, `seq` concatenates fragments, and
 * `if`/`while` become condition-evaluation states whose *transitions*
 * read the condition port at the decision edge — no latch registers at
 * all. Only `par` forks new islands: each non-trivial parallel child is
 * lowered into its own group (via the lowerIsland callback) and
 * coordinated through per-child completion bits, because a single flat
 * machine cannot track independently-timed parallel children.
 *
 * The machine is behavioral at this point: actions drive group holes
 * and helper cells, but no state register exists until
 * lowering::realize materializes one.
 */
class FsmBuilder
{
  public:
    /**
     * Callback that lowers a par-child subtree into its own island
     * group (recursively running build/optimize/realize) and returns
     * the realized group's name.
     */
    using LowerIsland = std::function<Symbol(const Control &)>;

    FsmBuilder(Component &comp, Context &ctx, const BuildOptions &opts,
               LowerIsland lower_island);

    /**
     * Build the machine for a dynamic control tree: entry fragment
     * chained to a single accepting state.
     */
    FsmMachinePtr build(const Control &ctrl, Symbol name);

    /**
     * Build the machine for a fully static subtree with total latency
     * `latency`: one counter state carrying the windowed schedule,
     * followed by the accepting state (the `static` pass's island
     * shape, paper §4.4).
     */
    FsmMachinePtr buildStatic(const Control &ctrl, int64_t latency,
                              Symbol name);

    /** Combinational condition groups inlined into evaluation states;
     * the driver deletes the originals when nothing else uses them. */
    const std::set<Symbol> &inlinedCondGroups() const
    {
        return inlinedGroups;
    }

  private:
    uint32_t compile(const Control &ctrl, uint32_t cont);
    uint32_t compileEnable(Symbol group, uint32_t cont);
    uint32_t compilePar(const Par &par, uint32_t cont);
    uint32_t compileIf(const If &stmt, uint32_t cont);
    uint32_t compileWhile(const While &stmt, uint32_t cont);

    /** Add `group[go] = !group[done] ? 1` (plus `extra`) to `state`. */
    void addEnable(FsmState &state, Symbol group, GuardPtr extra);

    /**
     * Install condition machinery for if/while on an evaluation state:
     * inline a combinational condition group, or enable a handshaken
     * one. Returns the guard under which the condition port is valid
     * this cycle (true for inlined/portless conditions, `cond[done]`
     * for handshaken ones).
     */
    GuardPtr buildCond(FsmState &state, Symbol cond_group);

    /** Emit windowed actions realizing a static schedule into `state`
     * (a counter state), starting at cycle `off` under `path`. */
    void scheduleStatic(const Control &ctrl, FsmState &state, int64_t off,
                        const GuardPtr &path);

    Component &comp;
    Context &ctx;
    BuildOptions opts;
    LowerIsland lowerIsland;
    FsmMachine *m = nullptr;
    std::set<Symbol> inlinedGroups;
};

} // namespace calyx::lowering

#endif // CALYX_LOWERING_BUILD_H
