#include "lowering/optimize.h"

#include <vector>

#include "support/error.h"

namespace calyx::lowering {

bool
isFalseGuard(const GuardPtr &g)
{
    return g->kind() == Guard::Kind::Not && g->left()->isTrue();
}

GuardPtr
simplifyGuard(const GuardPtr &g)
{
    switch (g->kind()) {
      case Guard::Kind::True:
      case Guard::Kind::Port:
      case Guard::Kind::Cmp:
        return g;
      case Guard::Kind::Not:
        // negate() folds double negation itself.
        return Guard::negate(simplifyGuard(g->left()));
      case Guard::Kind::And: {
        GuardPtr l = simplifyGuard(g->left());
        GuardPtr r = simplifyGuard(g->right());
        if (isFalseGuard(l) || isFalseGuard(r))
            return Guard::negate(Guard::trueGuard());
        if (Guard::equal(l, r))
            return l;
        if (Guard::equal(l, Guard::negate(r)))
            return Guard::negate(Guard::trueGuard());
        return Guard::conj(std::move(l), std::move(r));
      }
      case Guard::Kind::Or: {
        GuardPtr l = simplifyGuard(g->left());
        GuardPtr r = simplifyGuard(g->right());
        if (isFalseGuard(l))
            return r;
        if (isFalseGuard(r))
            return l;
        if (Guard::equal(l, r))
            return l;
        if (Guard::equal(l, Guard::negate(r)))
            return Guard::trueGuard();
        return Guard::disj(std::move(l), std::move(r));
      }
    }
    panic("bad guard kind");
}

namespace {

bool
sameAction(const FsmAction &a, const FsmAction &b)
{
    return a.dst == b.dst && a.src == b.src && a.offset == b.offset &&
           a.length == b.length && a.continuous == b.continuous &&
           Guard::equal(a.guard, b.guard);
}

bool
sameState(const FsmState &a, const FsmState &b)
{
    if (a.span != b.span || a.accepting != b.accepting ||
        a.combExit != b.combExit ||
        a.actions.size() != b.actions.size() ||
        a.transitions.size() != b.transitions.size())
        return false;
    for (size_t i = 0; i < a.actions.size(); ++i) {
        if (!sameAction(a.actions[i], b.actions[i]))
            return false;
    }
    for (size_t i = 0; i < a.transitions.size(); ++i) {
        if (a.transitions[i].target != b.transitions[i].target ||
            !Guard::equal(a.transitions[i].guard, b.transitions[i].guard))
            return false;
    }
    return true;
}

void
retarget(FsmMachine &m, const std::vector<uint32_t> &to)
{
    for (auto &s : m.states())
        for (auto &t : s.transitions)
            t.target = to[t.target];
    m.setEntry(to[m.entry()]);
}

} // namespace

OptimizeResult
optimize(FsmMachine &m)
{
    OptimizeResult result;
    uint32_t n = static_cast<uint32_t>(m.states().size());

    // 1. Guard simplification; false guards kill their site.
    for (auto &s : m.states()) {
        for (auto &a : s.actions) {
            GuardPtr simple = simplifyGuard(a.guard);
            if (!Guard::equal(simple, a.guard))
                ++result.guardsSimplified;
            a.guard = std::move(simple);
        }
        std::erase_if(s.actions, [](const FsmAction &a) {
            return isFalseGuard(a.guard);
        });
        for (auto &t : s.transitions) {
            GuardPtr simple = simplifyGuard(t.guard);
            if (!Guard::equal(simple, t.guard))
                ++result.guardsSimplified;
            t.guard = std::move(simple);
        }
        std::erase_if(s.transitions, [](const FsmTransition &t) {
            return isFalseGuard(t.guard);
        });
    }

    // 2. Forwarding: skip do-nothing pass-through states.
    std::vector<uint32_t> forward(n);
    for (uint32_t id = 0; id < n; ++id)
        forward[id] = id;
    for (uint32_t id = 0; id < n; ++id) {
        const FsmState &s = m.state(id);
        if (s.span == 1 && !s.accepting && s.actions.empty() &&
            s.transitions.size() == 1 &&
            s.transitions[0].guard->isTrue() &&
            s.transitions[0].target != id) {
            forward[id] = s.transitions[0].target;
            ++result.statesForwarded;
        }
    }
    // Resolve chains; a forwarding cycle (all-empty loop) is left alone.
    for (uint32_t id = 0; id < n; ++id) {
        uint32_t cur = id;
        for (uint32_t hops = 0; forward[cur] != cur; ++hops) {
            if (hops > n) { // cycle: undo this chain
                forward[id] = id;
                --result.statesForwarded;
                break;
            }
            cur = forward[cur];
        }
        if (forward[id] != id)
            forward[id] = cur;
    }
    retarget(m, forward);

    // 3. Duplicate merging, to a fixpoint (folding one pair can make
    // its predecessors identical in turn).
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t a = 0; a < n && !changed; ++a) {
            for (uint32_t b = a + 1; b < n && !changed; ++b) {
                if (!sameState(m.state(a), m.state(b)))
                    continue;
                std::vector<uint32_t> to(n);
                for (uint32_t id = 0; id < n; ++id)
                    to[id] = id == b ? a : id;
                retarget(m, to);
                // Unlink b: nothing targets it now, so the reachability
                // sweep below removes it.
                m.state(b).actions.clear();
                m.state(b).transitions.clear();
                m.state(b).accepting = false;
                ++result.statesMerged;
                changed = true;
            }
        }
    }

    // 4. Unreachable elimination.
    std::vector<bool> reachable(n, false);
    std::vector<uint32_t> work{m.entry()};
    reachable[m.entry()] = true;
    while (!work.empty()) {
        uint32_t id = work.back();
        work.pop_back();
        for (const auto &t : m.state(id).transitions) {
            if (!reachable[t.target]) {
                reachable[t.target] = true;
                work.push_back(t.target);
            }
        }
    }
    for (uint32_t id = 0; id < n; ++id)
        result.unreachableRemoved += reachable[id] ? 0 : 1;
    if (result.unreachableRemoved > 0)
        m.compact(reachable);

    return result;
}

} // namespace calyx::lowering
