#include "lowering/realize.h"

#include <algorithm>
#include <vector>

#include "support/error.h"

namespace calyx::lowering {

namespace {

const PortRef one1 = constant(1, 1);

/** Per-state code layout: binary packs spans into code ranges. */
struct Layout
{
    std::vector<int64_t> base; ///< first code of each state
    int64_t totalCodes = 0;
};

Layout
layoutStates(const FsmMachine &m)
{
    // The entry state must own code 0: the register resets to zero and
    // the accepting state's continuous self-reset loads zero.
    Layout layout;
    layout.base.resize(m.states().size(), 0);
    int64_t next = m.state(m.entry()).span;
    for (uint32_t id = 0; id < m.states().size(); ++id) {
        if (id == m.entry())
            continue;
        layout.base[id] = next;
        next += m.state(id).span;
    }
    layout.totalCodes = next;
    return layout;
}

/** Realizes one machine; holds the shared pieces (register, widths). */
class Realizer
{
  public:
    Realizer(FsmMachine &m, Component &comp, Context &ctx,
             const RealizeOptions &opts)
        : m(m), comp(comp), ctx(ctx), opts(opts), layout(layoutStates(m))
    {}

    Symbol
    run()
    {
        Group &g = comp.addGroup(m.name());
        group = &g;
        // Gate at creation time (instead of a gateGroup sweep after the
        // fact) so the component's DefUse index stays incrementally
        // maintained: Group::add records sites, raw mutation would
        // invalidate. The done write stays ungated as always.
        if (opts.gate)
            goGate = Guard::fromPort(g.goHole());

        if (layout.totalCodes == 1) {
            // Register-free machine: a single always-active state.
            const FsmState &s = m.state(m.entry());
            for (const auto &a : s.actions)
                addAction(a, Guard::trueGuard());
            if (s.accepting)
                g.add(g.doneHole(), one1);
            m.setEncoding(FsmEncoding::Binary);
        } else if (GuardPtr done = combinationalDone()) {
            // Two-state machine whose entry only ever steps to the
            // accepting state: completion is combinational (done = the
            // disjunction of the exit guards), so no state register is
            // needed — the seed's single-par/single-if group shape.
            const FsmState &s = m.state(m.entry());
            for (const auto &a : s.actions)
                addAction(a, Guard::trueGuard());
            g.add(g.doneHole(), one1, std::move(done));
            m.setEncoding(FsmEncoding::Binary);
        } else {
            encoding = opts.encoding;
            if (encoding == FsmEncoding::OneHot &&
                layout.totalCodes > 64)
                encoding = FsmEncoding::Binary; // would overflow u64
            // Counter spans decode through exclusive upper-bound
            // windows (`fsm < off+len`), whose bound can reach one
            // past the state's last code — size the register for the
            // largest comparison constant actually emitted, not just
            // the largest stored code.
            uint64_t max_const =
                static_cast<uint64_t>(layout.totalCodes - 1);
            for (uint32_t id = 0; id < m.states().size(); ++id) {
                const FsmState &s = m.state(id);
                if (s.span > 1)
                    max_const = std::max(
                        max_const, static_cast<uint64_t>(
                                       layout.base[id] + s.span));
            }
            width = encoding == FsmEncoding::Binary
                        ? fsmWidth(max_const)
                        : static_cast<Width>(layout.totalCodes - 1);
            if (width < 1)
                width = 1;
            Cell &fsm =
                comp.addCell(comp.uniqueName("fsm"), "std_reg", {width},
                             ctx);
            fsmCell = fsm.name();
            fsmOut = cellPort(fsmCell, "out");
            fsmIn = cellPort(fsmCell, "in");
            fsmEn = cellPort(fsmCell, "write_en");

            for (uint32_t id = 0; id < m.states().size(); ++id)
                realizeState(id);
            m.setEncoding(encoding);
        }

        // Continuous self-reset in the accepting state (ungated: the
        // parent deasserts go during the done cycle, and the accepting
        // state is transient, so an always-armed reset is safe).
        if (!fsmCell.empty()) {
            for (uint32_t id = 0; id < m.states().size(); ++id) {
                const FsmState &s = m.state(id);
                if (!s.accepting)
                    continue;
                GuardPtr at = window(layout.base[id], s.span);
                comp.addContinuous(
                    {fsmIn, constant(0, width), at});
                comp.addContinuous({fsmEn, one1, at});
            }
        }

        m.setGroup(g.name());
        m.setRegisterCell(fsmCell);
        return g.name();
    }

  private:
    /**
     * Done guard for the register-free two-state shape: entry (span 1)
     * whose transitions all lead to an empty accepting state. Null when
     * the machine does not have that shape.
     */
    GuardPtr
    combinationalDone() const
    {
        if (m.states().size() != 2)
            return nullptr;
        uint32_t other = m.entry() == 0 ? 1 : 0;
        const FsmState &entry = m.state(m.entry());
        const FsmState &final = m.state(other);
        if (!final.accepting || !final.actions.empty() ||
            !final.transitions.empty() || final.span != 1)
            return nullptr;
        if (entry.span != 1 || !entry.combExit ||
            entry.transitions.empty())
            return nullptr;
        GuardPtr done = nullptr;
        for (const auto &t : entry.transitions) {
            if (t.target != other)
                return nullptr;
            done = done ? Guard::disj(std::move(done), t.guard) : t.guard;
        }
        return done;
    }

    /** Register word encoding a code slot. */
    uint64_t
    encode(int64_t code) const
    {
        if (encoding == FsmEncoding::Binary)
            return static_cast<uint64_t>(code);
        // One-hot with an all-zeros entry slot (the register resets to
        // zero): slot 0 -> 0, slot k -> 1 << (k-1).
        return code == 0 ? 0 : uint64_t(1) << (code - 1);
    }

    /** Guard: the machine is inside code window [off, off+len). */
    GuardPtr
    window(int64_t off, int64_t len) const
    {
        if (encoding == FsmEncoding::OneHot) {
            GuardPtr any = nullptr;
            for (int64_t c = off; c < off + len; ++c) {
                GuardPtr at = Guard::cmp(Guard::CmpOp::Eq, fsmOut,
                                         constant(encode(c), width));
                any = any ? Guard::disj(std::move(any), std::move(at))
                          : std::move(at);
            }
            return any;
        }
        if (len == 1)
            return Guard::cmp(Guard::CmpOp::Eq, fsmOut,
                              constant(off, width));
        GuardPtr hi = Guard::cmp(Guard::CmpOp::Lt, fsmOut,
                                 constant(off + len, width));
        if (off == 0)
            return hi;
        GuardPtr lo = Guard::cmp(Guard::CmpOp::Geq, fsmOut,
                                 constant(off, width));
        return Guard::conj(std::move(lo), std::move(hi));
    }

    /** Write the register: `fsm.in = value; fsm.write_en = 1` under `when`. */
    void
    writeState(uint64_t value, const GuardPtr &when)
    {
        group->add(fsmIn, constant(value, width), gated(when));
        group->add(fsmEn, one1, gated(when));
    }

    void
    realizeState(uint32_t id)
    {
        const FsmState &s = m.state(id);
        int64_t base = layout.base[id];

        for (const auto &a : s.actions) {
            int64_t len = a.length == FsmAction::kWholeSpan
                              ? s.span - a.offset
                              : a.length;
            if (len <= 0)
                continue;
            addAction(a, window(base + a.offset, len));
        }

        // Advance through a counter span.
        if (s.span > 1) {
            if (encoding == FsmEncoding::Binary) {
                ensureIncrementer();
                GuardPtr running = window(base, s.span - 1);
                group->add(fsmIn, cellPort(incrCell, "out"),
                           gated(running));
                group->add(fsmEn, one1, gated(running));
            } else {
                // One-hot: next-slot constants instead of an adder.
                for (int64_t c = base; c < base + s.span - 1; ++c)
                    writeState(encode(c + 1), window(c, 1));
            }
        }

        // Transitions fire on the last cycle of the span. Their guards
        // are pairwise disjoint by construction (see ir/fsm.h).
        GuardPtr at_last = window(base + s.span - 1, 1);
        for (const auto &t : s.transitions) {
            writeState(encode(layout.base[t.target]),
                       Guard::conj(at_last, t.guard));
        }

        if (s.accepting)
            group->add(group->doneHole(), one1, window(base, s.span));
    }

    /**
     * Emit one action: continuous actions bypass the group (ungated,
     * guard only — see ir/fsm.h); ordinary ones join the group under
     * the state-decode guard `active`.
     */
    /** Conjoin the group's go gate (a fold-away True when ungated). */
    GuardPtr
    gated(GuardPtr g) const
    {
        return Guard::conj(std::move(g), goGate);
    }

    void
    addAction(const FsmAction &a, GuardPtr active)
    {
        if (a.continuous)
            comp.addContinuous({a.dst, a.src, a.guard});
        else
            group->add(a.dst, a.src,
                       gated(Guard::conj(std::move(active), a.guard)));
    }

    void
    ensureIncrementer()
    {
        if (!incrCell.empty())
            return;
        Cell &incr = comp.addCell(comp.uniqueName("incr"), "std_add",
                                  {width}, ctx);
        incrCell = incr.name();
        group->add(cellPort(incrCell, "left"), fsmOut,
                   gated(Guard::trueGuard()));
        group->add(cellPort(incrCell, "right"), constant(1, width),
                   gated(Guard::trueGuard()));
    }

    FsmMachine &m;
    Component &comp;
    Context &ctx;
    const RealizeOptions &opts;
    Layout layout;
    Group *group = nullptr;
    GuardPtr goGate = Guard::trueGuard();
    FsmEncoding encoding = FsmEncoding::Binary;
    Width width = 0;
    Symbol fsmCell, incrCell;
    PortRef fsmOut, fsmIn, fsmEn;
};

} // namespace

Symbol
realize(FsmMachine &m, Component &comp, Context &ctx,
        const RealizeOptions &opts)
{
    if (m.states().empty())
        fatal("fsm ", m.name(), ": cannot realize an empty machine");
    if (m.realized())
        fatal("fsm ", m.name(), ": already realized as group ",
              m.group());
    return Realizer(m, comp, ctx, opts).run();
}

} // namespace calyx::lowering
