#ifndef CALYX_LOWERING_LOWER_H
#define CALYX_LOWERING_LOWER_H

#include <set>

#include "lowering/build.h"
#include "lowering/optimize.h"
#include "lowering/realize.h"

namespace calyx::lowering {

/** Composed configuration of the three lowering stages. */
struct LowerOptions
{
    BuildOptions build;
    /** Run the FSM optimize stage between build and realize. */
    bool optimize = true;
    RealizeOptions realize;
};

/**
 * Lower a dynamic control tree into a realized island group on `comp`,
 * running build -> optimize -> realize and recursing into par-child
 * islands. Every machine is registered on the component
 * (Component::addFsm) for later inspection. Inlined combinational
 * condition groups are accumulated into `inlined`; the caller decides
 * whether the originals can be deleted.
 *
 * Returns the top island's realized group.
 */
Symbol lowerControl(Component &comp, Context &ctx, const Control &ctrl,
                    const LowerOptions &opts, std::set<Symbol> &inlined);

/**
 * Lower a fully static subtree of known `latency` into a counter-state
 * island (the `static` pass's shape). The realized group carries no
 * "static" attribute; the caller sets it (it owns the latency claim).
 */
Symbol lowerStatic(Component &comp, Context &ctx, const Control &ctrl,
                   int64_t latency, const LowerOptions &opts);

/**
 * Control-state registers the seed's bottom-up lowering would mint for
 * `ctrl`: one `std_reg` state counter per multi-child `seq` node, a
 * `cc`+`cs` latch pair per `if`/`while`, and one completion bit per
 * `par` child. (The `static` pass adds one counter per static island
 * on top.) Recorded via Component::noteFsmLowering so --emit-stats and
 * the compile benchmark can report the flat lowering's saving; the CI
 * smoke step asserts the flat lowering never mints more.
 */
int seedControlRegisters(const Control &ctrl);

} // namespace calyx::lowering

#endif // CALYX_LOWERING_LOWER_H
