#ifndef CALYX_LOWERING_REALIZE_H
#define CALYX_LOWERING_REALIZE_H

#include "ir/component.h"
#include "ir/context.h"
#include "ir/fsm.h"

namespace calyx::lowering {

/** Configuration of the realize stage. */
struct RealizeOptions
{
    /**
     * State-register encoding. Binary packs states (and the cycles of
     * counter states) into consecutive codes of one ceil(log2(N))-bit
     * register, stepping counter spans with a shared incrementer.
     * One-hot gives every cycle-slot its own bit (the entry slot is the
     * all-zeros word so the register's reset value is the entry state):
     * next-state logic becomes constant loads instead of an adder, at
     * the cost of a wider register. Machines whose code space exceeds
     * 64 slots fall back to binary (the register value would overflow
     * the simulator's 64-bit words); the machine records the encoding
     * actually used.
     */
    FsmEncoding encoding = FsmEncoding::Binary;

    /**
     * Gate the realized group's assignments with its own go hole.
     * CompileControl runs after the GoInsertion pass and gates here;
     * the `static` pass runs before it and leaves gating to the pass.
     */
    bool gate = true;
};

/**
 * Realize stage of control lowering: materialize a machine as
 * structure on its component — one group whose assignments express the
 * state actions under state-decode guards, a state register (none for
 * single-state machines), transition writes, a done write in the
 * accepting state, and a continuous self-reset armed in the accepting
 * state so the machine re-runs inside loops (the parent deasserts go
 * during the done cycle, so a gated reset would never fire).
 *
 * All structure is created through the DefUse-maintaining mutators
 * (Group::add, Component::addCell/addContinuous), so a materialized
 * def-use index stays incrementally correct through lowering.
 *
 * Fills the machine's realization record (group, register cell,
 * encoding actually used) and returns the realizing group's name.
 */
Symbol realize(FsmMachine &m, Component &comp, Context &ctx,
               const RealizeOptions &opts = {});

} // namespace calyx::lowering

#endif // CALYX_LOWERING_REALIZE_H
