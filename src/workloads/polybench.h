#ifndef CALYX_WORKLOADS_POLYBENCH_H
#define CALYX_WORKLOADS_POLYBENCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "frontends/dahlia/ast.h"

namespace calyx::workloads {

/**
 * One PolyBench linear-algebra kernel written in mini-Dahlia
 * (paper §7.2: all 19 kernels; the 11 benchmarks Dahlia's type system
 * permits also have an unrolled variant with matching memory banking).
 * Integer (`ubit<32>`) arithmetic replaces PolyBench floats so
 * functional equivalence with the golden reference is exact.
 */
struct Kernel
{
    std::string name;           ///< e.g. "gemm"
    std::string label;          ///< figure label, e.g. "gmm"
    std::string source;         ///< base Dahlia source
    std::string unrolledSource; ///< empty when not unrollable
    bool usesSqrtOrDiv = false; ///< contains latency-insensitive ops
};

/** All 19 kernels, in the order of the paper's figures. */
const std::vector<Kernel> &kernels();

/** Lookup by name; fatal() if unknown. */
const Kernel &kernel(const std::string &name);

/**
 * Deterministic input data for a kernel's memory: small positive values
 * derived from the kernel and memory names.
 */
std::vector<uint64_t> inputData(const std::string &kernel_name,
                                const std::string &mem_name, size_t size);

} // namespace calyx::workloads

#endif // CALYX_WORKLOADS_POLYBENCH_H
