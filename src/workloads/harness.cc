#include "workloads/harness.h"

#include <chrono>

#include "emit/backend.h"
#include "frontends/dahlia/codegen.h"
#include "frontends/dahlia/interp.h"
#include "sim/cycle_sim.h"
#include "support/error.h"
#include "workloads/polybench.h"

namespace calyx::workloads {

namespace {

uint64_t
log2u(uint64_t v)
{
    uint64_t l = 0;
    while ((uint64_t(1) << l) < v)
        ++l;
    return l;
}

/** Banked layout of one original memory. */
struct Layout
{
    dahlia::Type type;
    uint64_t banks = 1;
    size_t bankedDim = 0;

    std::string
    cellName(const std::string &base, uint64_t bank) const
    {
        if (banks == 1)
            return base;
        return base + "_b" + std::to_string(bank);
    }

    /** (bank, in-bank flat index) of a row-major element. */
    std::pair<uint64_t, uint64_t>
    place(uint64_t flat) const
    {
        if (banks == 1)
            return {0, flat};
        uint64_t lg = log2u(banks);
        if (type.dims.size() == 1) {
            return {flat % banks, flat >> lg};
        }
        uint64_t r = flat / type.dims[1];
        uint64_t c = flat % type.dims[1];
        if (bankedDim == 0)
            return {r % banks, (r >> lg) * type.dims[1] + c};
        return {c % banks, r * (type.dims[1] >> lg) + (c >> lg)};
    }
};

Layout
layoutOf(const dahlia::Decl &d)
{
    Layout l;
    l.type = d.type;
    for (size_t i = 0; i < d.type.banks.size(); ++i) {
        if (d.type.banks[i] > 1) {
            l.banks = d.type.banks[i];
            l.bankedDim = i;
        }
    }
    return l;
}

} // namespace

MemState
makeInputs(const std::string &kernel_name, const dahlia::Program &program)
{
    MemState mems;
    for (const auto &d : program.decls)
        mems[d.name] = inputData(kernel_name, d.name, d.type.totalSize());
    return mems;
}

void
pokeInputs(sim::SimProgram &sim, const dahlia::Program &program,
           const MemState &inputs)
{
    for (const auto &d : program.decls) {
        Layout layout = layoutOf(d);
        const auto &data = inputs.at(d.name);
        for (uint64_t flat = 0; flat < data.size(); ++flat) {
            auto [bank, pos] = layout.place(flat);
            auto *mem =
                sim.findModel(layout.cellName(d.name, bank))->memory();
            if (!mem)
                fatal("harness: cell is not a memory: ", d.name);
            (*mem)[pos] = truncate(data[flat], d.type.width);
        }
    }
}

sim::Stimulus
makeStimulus(const dahlia::Program &program, const MemState &inputs)
{
    sim::Stimulus s;
    for (const auto &d : program.decls) {
        Layout layout = layoutOf(d);
        const auto &data = inputs.at(d.name);
        std::vector<std::vector<uint64_t>> banks(
            layout.banks, std::vector<uint64_t>(data.size() / layout.banks));
        for (uint64_t flat = 0; flat < data.size(); ++flat) {
            auto [bank, pos] = layout.place(flat);
            banks[bank][pos] = truncate(data[flat], d.type.width);
        }
        for (uint64_t b = 0; b < layout.banks; ++b)
            s.mems.emplace_back(layout.cellName(d.name, b),
                                std::move(banks[b]));
    }
    return s;
}

MemState
readMemories(const sim::SimProgram &sim, const dahlia::Program &program)
{
    MemState state;
    for (const auto &d : program.decls) {
        Layout layout = layoutOf(d);
        std::vector<uint64_t> data(d.type.totalSize());
        for (uint64_t flat = 0; flat < data.size(); ++flat) {
            auto [bank, pos] = layout.place(flat);
            auto *mem =
                sim.findModel(layout.cellName(d.name, bank))->memory();
            data[flat] = (*mem)[pos];
        }
        state[d.name] = std::move(data);
    }
    return state;
}

MemState
runOnInterp(const dahlia::Program &program, const MemState &inputs)
{
    dahlia::AstInterp interp(program);
    for (const auto &[name, data] : inputs)
        interp.pokeMemory(name, data);
    interp.run();
    MemState out;
    for (const auto &d : program.decls)
        out[d.name] = interp.memory(d.name);
    return out;
}

HardwareResult
runOnHardware(const dahlia::Program &program,
              const passes::PipelineSpec &spec, const MemState &inputs,
              MemState *final_state, const passes::RunOptions &run_options,
              sim::Engine engine,
              const std::vector<obs::SimObserver *> &observers)
{
    using clock = std::chrono::steady_clock;
    auto start = clock::now();

    Context ctx = dahlia::compileDahlia(program);

    HardwareResult result;
    result.stats = passes::gatherStats(ctx);

    passes::runPipeline(ctx, spec, run_options);
    result.compileSeconds =
        std::chrono::duration<double>(clock::now() - start).count();

    estimate::AreaEstimator estimator(ctx);
    result.area = estimator.estimateProgram();

    sim::SimProgram sp(ctx, "main");
    sim::CycleSim cs(sp, engine);
    for (obs::SimObserver *o : observers)
        cs.state().addObserver(o);

    pokeInputs(sp, program, inputs);

    auto sim_start = clock::now();
    result.cycles = cs.run();
    result.simSeconds =
        std::chrono::duration<double>(clock::now() - sim_start).count();

    if (final_state)
        *final_state = readMemories(sp, program);
    return result;
}

HardwareResult
runOnHardware(const dahlia::Program &program, const std::string &spec,
              const MemState &inputs, MemState *final_state)
{
    return runOnHardware(program, passes::parsePipelineSpec(spec), inputs,
                         final_state);
}

std::string
emitDesign(const dahlia::Program &program, const passes::PipelineSpec &spec,
           const std::string &backend)
{
    auto emitter = emit::BackendRegistry::instance().create(backend);
    Context ctx = dahlia::compileDahlia(program);
    passes::runPipeline(ctx, spec);
    return emitter->emitString(ctx);
}

std::string
emitDesign(const dahlia::Program &program, const std::string &spec,
           const std::string &backend)
{
    return emitDesign(program, passes::parsePipelineSpec(spec), backend);
}

HardwareResult
runOnHardware(const dahlia::Program &program,
              const passes::CompileOptions &options, const MemState &inputs,
              MemState *final_state)
{
    passes::RunOptions run_options;
    run_options.verify = options.verify;
    return runOnHardware(
        program, passes::parsePipelineSpec(passes::compileOptionsToSpec(options)),
        inputs, final_state, run_options);
}

} // namespace calyx::workloads
