#include "workloads/polybench.h"

#include "support/error.h"

namespace calyx::workloads {

namespace {

// All kernels use N = 8 (doitgen uses 4x4x4x4) and the PolyBench
// constants alpha = 3, beta = 2 as integer literals.

const char *gemm_src = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8];
decl C: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    let acc: ubit<32> = 2 * C[i][j];
    ---
    for (let k: ubit<6> = 0..8) {
      acc := acc + 3 * A[i][k] * B[k][j];
    }
    ---
    C[i][j] := acc;
  }
}
)";

const char *gemm_unrolled = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8 bank 2];
decl C: ubit<32>[8][8 bank 2];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) unroll 2 {
    let acc: ubit<32> = 2 * C[i][j];
    ---
    for (let k: ubit<6> = 0..8) {
      acc := acc + 3 * A[i][k] * B[k][j];
    }
    ---
    C[i][j] := acc;
  }
}
)";

const char *two_mm_src = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8];
decl C: ubit<32>[8][8];
decl D: ubit<32>[8][8];
decl tmp: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    let acc: ubit<32> = 0;
    ---
    for (let k: ubit<6> = 0..8) {
      acc := acc + 3 * A[i][k] * B[k][j];
    }
    ---
    tmp[i][j] := acc;
  }
}
---
for (let i2: ubit<6> = 0..8) {
  for (let j2: ubit<6> = 0..8) {
    let acc2: ubit<32> = 2 * D[i2][j2];
    ---
    for (let k2: ubit<6> = 0..8) {
      acc2 := acc2 + tmp[i2][k2] * C[k2][j2];
    }
    ---
    D[i2][j2] := acc2;
  }
}
)";

// tmp is produced with j unrolled (dim 1) and consumed along k (dim 1):
// both loops must be unrolled on tmp's banked dimension, so the second
// loop unrolls the reduction with a combine block.
const char *two_mm_unrolled = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8 bank 2];
decl C: ubit<32>[8 bank 2][8];
decl D: ubit<32>[8][8];
decl tmp: ubit<32>[8][8 bank 2];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) unroll 2 {
    let acc: ubit<32> = 0;
    ---
    for (let k: ubit<6> = 0..8) {
      acc := acc + 3 * A[i][k] * B[k][j];
    }
    ---
    tmp[i][j] := acc;
  }
}
---
for (let i2: ubit<6> = 0..8) {
  for (let j2: ubit<6> = 0..8) {
    let acc2: ubit<32> = 2 * D[i2][j2];
    ---
    for (let k2: ubit<6> = 0..8) unroll 2 {
      let v: ubit<32> = tmp[i2][k2] * C[k2][j2];
    } combine {
      acc2 := acc2 + v;
    }
    ---
    D[i2][j2] := acc2;
  }
}
)";

const char *three_mm_src = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8];
decl C: ubit<32>[8][8];
decl D: ubit<32>[8][8];
decl E: ubit<32>[8][8];
decl F: ubit<32>[8][8];
decl G: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    let acc: ubit<32> = 0;
    ---
    for (let k: ubit<6> = 0..8) { acc := acc + A[i][k] * B[k][j]; }
    ---
    E[i][j] := acc;
  }
}
---
for (let i2: ubit<6> = 0..8) {
  for (let j2: ubit<6> = 0..8) {
    let acc2: ubit<32> = 0;
    ---
    for (let k2: ubit<6> = 0..8) { acc2 := acc2 + C[i2][k2] * D[k2][j2]; }
    ---
    F[i2][j2] := acc2;
  }
}
---
for (let i3: ubit<6> = 0..8) {
  for (let j3: ubit<6> = 0..8) {
    let acc3: ubit<32> = 0;
    ---
    for (let k3: ubit<6> = 0..8) { acc3 := acc3 + E[i3][k3] * F[k3][j3]; }
    ---
    G[i3][j3] := acc3;
  }
}
)";

// E is banked on its second dimension (produced j-unrolled, consumed
// k-unrolled); F on its first (produced i-unrolled, consumed k-unrolled).
const char *three_mm_unrolled = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8 bank 2];
decl C: ubit<32>[8 bank 2][8];
decl D: ubit<32>[8][8];
decl E: ubit<32>[8][8 bank 2];
decl F: ubit<32>[8 bank 2][8];
decl G: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) unroll 2 {
    let acc: ubit<32> = 0;
    ---
    for (let k: ubit<6> = 0..8) { acc := acc + A[i][k] * B[k][j]; }
    ---
    E[i][j] := acc;
  }
}
---
for (let i2: ubit<6> = 0..8) unroll 2 {
  for (let j2: ubit<6> = 0..8) {
    let acc2: ubit<32> = 0;
    ---
    for (let k2: ubit<6> = 0..8) { acc2 := acc2 + C[i2][k2] * D[k2][j2]; }
    ---
    F[i2][j2] := acc2;
  }
}
---
for (let i3: ubit<6> = 0..8) {
  for (let j3: ubit<6> = 0..8) {
    let acc3: ubit<32> = 0;
    ---
    for (let k3: ubit<6> = 0..8) unroll 2 {
      let v: ubit<32> = E[i3][k3] * F[k3][j3];
    } combine {
      acc3 := acc3 + v;
    }
    ---
    G[i3][j3] := acc3;
  }
}
)";

const char *atax_src = R"(
decl A: ubit<32>[8][8];
decl x: ubit<32>[8];
decl y: ubit<32>[8];
decl tmp: ubit<32>[8];
for (let i: ubit<6> = 0..8) {
  let acc: ubit<32> = 0;
  ---
  for (let j: ubit<6> = 0..8) { acc := acc + A[i][j] * x[j]; }
  ---
  tmp[i] := acc;
}
---
for (let j2: ubit<6> = 0..8) { y[j2] := 0; }
---
for (let i2: ubit<6> = 0..8) {
  for (let j3: ubit<6> = 0..8) {
    y[j3] := y[j3] + A[i2][j3] * tmp[i2];
  }
}
)";

const char *atax_unrolled = R"(
decl A: ubit<32>[8][8 bank 2];
decl x: ubit<32>[8 bank 2];
decl y: ubit<32>[8 bank 2];
decl tmp: ubit<32>[8];
for (let i: ubit<6> = 0..8) {
  let acc: ubit<32> = 0;
  ---
  for (let j: ubit<6> = 0..8) unroll 2 {
    let v: ubit<32> = A[i][j] * x[j];
  } combine {
    acc := acc + v;
  }
  ---
  tmp[i] := acc;
}
---
for (let j2: ubit<6> = 0..8) unroll 2 { y[j2] := 0; }
---
for (let i2: ubit<6> = 0..8) {
  for (let j3: ubit<6> = 0..8) unroll 2 {
    y[j3] := y[j3] + A[i2][j3] * tmp[i2];
  }
}
)";

const char *bicg_src = R"(
decl A: ubit<32>[8][8];
decl s: ubit<32>[8];
decl q: ubit<32>[8];
decl p: ubit<32>[8];
decl r: ubit<32>[8];
for (let j: ubit<6> = 0..8) { s[j] := 0; }
---
for (let i: ubit<6> = 0..8) {
  let acc: ubit<32> = 0;
  ---
  for (let j2: ubit<6> = 0..8) {
    s[j2] := s[j2] + r[i] * A[i][j2];
    acc := acc + A[i][j2] * p[j2];
  }
  ---
  q[i] := acc;
}
)";

const char *bicg_unrolled = R"(
decl A: ubit<32>[8][8 bank 2];
decl s: ubit<32>[8 bank 2];
decl q: ubit<32>[8];
decl p: ubit<32>[8 bank 2];
decl r: ubit<32>[8];
for (let j: ubit<6> = 0..8) unroll 2 { s[j] := 0; }
---
for (let i: ubit<6> = 0..8) {
  let acc: ubit<32> = 0;
  ---
  for (let j2: ubit<6> = 0..8) unroll 2 {
    s[j2] := s[j2] + r[i] * A[i][j2];
    ---
    let v: ubit<32> = A[i][j2] * p[j2];
  } combine {
    acc := acc + v;
  }
  ---
  q[i] := acc;
}
)";

const char *doitgen_src = R"(
decl A: ubit<32>[16][4];
decl C4: ubit<32>[4][4];
decl sum: ubit<32>[4];
for (let r: ubit<6> = 0..4) {
  for (let q: ubit<6> = 0..4) {
    for (let p: ubit<6> = 0..4) {
      let acc: ubit<32> = 0;
      ---
      for (let ss: ubit<6> = 0..4) {
        acc := acc + A[r * 4 + q][ss] * C4[ss][p];
      }
      ---
      sum[p] := acc;
    }
    ---
    for (let p2: ubit<6> = 0..4) {
      A[r * 4 + q][p2] := sum[p2];
    }
  }
}
)";

// doitgen is NOT unrollable: A is both reduced along its second
// dimension (s) and written back along it (p) within one q-iteration,
// so no single banking satisfies the affine bank-resolution rules —
// the same class of rejection Dahlia's type system produces.

const char *trmm_unrolled = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8 bank 2];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) unroll 2 {
    let acc: ubit<32> = B[i][j];
    ---
    for (let k: ubit<6> = 0..8) {
      if (k > i) { acc := acc + A[k][i] * B[k][j]; }
    }
    ---
    B[i][j] := 3 * acc;
  }
}
)";

const char *gemver_src = R"(
decl A: ubit<32>[8][8];
decl u1: ubit<32>[8];
decl v1: ubit<32>[8];
decl u2: ubit<32>[8];
decl v2: ubit<32>[8];
decl x: ubit<32>[8];
decl y: ubit<32>[8];
decl z: ubit<32>[8];
decl w: ubit<32>[8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    A[i][j] := A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  }
}
---
for (let j2: ubit<6> = 0..8) {
  for (let i2: ubit<6> = 0..8) {
    x[i2] := x[i2] + 2 * A[j2][i2] * y[j2];
  }
}
---
for (let i3: ubit<6> = 0..8) { x[i3] := x[i3] + z[i3]; }
---
for (let i4: ubit<6> = 0..8) {
  let acc: ubit<32> = 0;
  ---
  for (let j4: ubit<6> = 0..8) { acc := acc + 3 * A[i4][j4] * x[j4]; }
  ---
  w[i4] := acc;
}
)";

const char *gemver_unrolled = R"(
decl A: ubit<32>[8][8 bank 2];
decl u1: ubit<32>[8];
decl v1: ubit<32>[8 bank 2];
decl u2: ubit<32>[8];
decl v2: ubit<32>[8 bank 2];
decl x: ubit<32>[8 bank 2];
decl y: ubit<32>[8];
decl z: ubit<32>[8 bank 2];
decl w: ubit<32>[8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) unroll 2 {
    A[i][j] := A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  }
}
---
for (let j2: ubit<6> = 0..8) {
  for (let i2: ubit<6> = 0..8) unroll 2 {
    x[i2] := x[i2] + 2 * A[j2][i2] * y[j2];
  }
}
---
for (let i3: ubit<6> = 0..8) unroll 2 { x[i3] := x[i3] + z[i3]; }
---
for (let i4: ubit<6> = 0..8) {
  let acc: ubit<32> = 0;
  ---
  for (let j4: ubit<6> = 0..8) unroll 2 {
    let v: ubit<32> = 3 * A[i4][j4] * x[j4];
  } combine {
    acc := acc + v;
  }
  ---
  w[i4] := acc;
}
)";

const char *gesummv_src = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8];
decl x: ubit<32>[8];
decl y: ubit<32>[8];
for (let i: ubit<6> = 0..8) {
  let acca: ubit<32> = 0;
  let accb: ubit<32> = 0;
  ---
  for (let j: ubit<6> = 0..8) {
    acca := acca + A[i][j] * x[j];
    accb := accb + B[i][j] * x[j];
  }
  ---
  y[i] := 3 * acca + 2 * accb;
}
)";

const char *gesummv_unrolled = R"(
decl A: ubit<32>[8][8 bank 2];
decl B: ubit<32>[8][8 bank 2];
decl x: ubit<32>[8 bank 2];
decl y: ubit<32>[8];
for (let i: ubit<6> = 0..8) {
  let acca: ubit<32> = 0;
  let accb: ubit<32> = 0;
  ---
  for (let j: ubit<6> = 0..8) unroll 2 {
    let va: ubit<32> = A[i][j] * x[j];
    ---
    let vb: ubit<32> = B[i][j] * x[j];
  } combine {
    acca := acca + va;
    ---
    accb := accb + vb;
  }
  ---
  y[i] := 3 * acca + 2 * accb;
}
)";

const char *mvt_src = R"(
decl A: ubit<32>[8][8];
decl x1: ubit<32>[8];
decl x2: ubit<32>[8];
decl y1: ubit<32>[8];
decl y2: ubit<32>[8];
for (let i: ubit<6> = 0..8) {
  let acc: ubit<32> = x1[i];
  ---
  for (let j: ubit<6> = 0..8) { acc := acc + A[i][j] * y1[j]; }
  ---
  x1[i] := acc;
}
---
for (let j2: ubit<6> = 0..8) {
  for (let i2: ubit<6> = 0..8) {
    x2[i2] := x2[i2] + A[j2][i2] * y2[j2];
  }
}
)";

const char *mvt_unrolled = R"(
decl A: ubit<32>[8][8 bank 2];
decl x1: ubit<32>[8];
decl x2: ubit<32>[8 bank 2];
decl y1: ubit<32>[8 bank 2];
decl y2: ubit<32>[8];
for (let i: ubit<6> = 0..8) {
  let acc: ubit<32> = x1[i];
  ---
  for (let j: ubit<6> = 0..8) unroll 2 {
    let v: ubit<32> = A[i][j] * y1[j];
  } combine {
    acc := acc + v;
  }
  ---
  x1[i] := acc;
}
---
for (let j2: ubit<6> = 0..8) {
  for (let i2: ubit<6> = 0..8) unroll 2 {
    x2[i2] := x2[i2] + A[j2][i2] * y2[j2];
  }
}
)";

const char *syrk_src = R"(
decl A: ubit<32>[8][8];
decl C: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    let acc: ubit<32> = 2 * C[i][j];
    ---
    for (let k: ubit<6> = 0..8) {
      acc := acc + 3 * A[i][k] * A[j][k];
    }
    ---
    C[i][j] := acc;
  }
}
)";

const char *syrk_unrolled = R"(
decl A: ubit<32>[8][8 bank 2];
decl C: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    let acc: ubit<32> = 2 * C[i][j];
    ---
    for (let k: ubit<6> = 0..8) unroll 2 {
      let v: ubit<32> = 3 * A[i][k] * A[j][k];
    } combine {
      acc := acc + v;
    }
    ---
    C[i][j] := acc;
  }
}
)";

const char *syr2k_src = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8];
decl C: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    let acc: ubit<32> = 2 * C[i][j];
    ---
    for (let k: ubit<6> = 0..8) {
      acc := acc + 3 * A[i][k] * B[j][k] + 3 * B[i][k] * A[j][k];
    }
    ---
    C[i][j] := acc;
  }
}
)";

const char *syr2k_unrolled = R"(
decl A: ubit<32>[8][8 bank 2];
decl B: ubit<32>[8][8 bank 2];
decl C: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    let acc: ubit<32> = 2 * C[i][j];
    ---
    for (let k: ubit<6> = 0..8) unroll 2 {
      let v: ubit<32> = 3 * A[i][k] * B[j][k] + 3 * B[i][k] * A[j][k];
    } combine {
      acc := acc + v;
    }
    ---
    C[i][j] := acc;
  }
}
)";

// --- Kernels with dependences / triangular loops: not unrollable -------

const char *cholesky_src = R"(
decl A: ubit<32>[8][8];
decl L: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    if (j <= i) {
      let acc: ubit<32> = A[i][j];
      ---
      for (let k: ubit<6> = 0..8) {
        if (k < j) { acc := acc - L[i][k] * L[j][k]; }
      }
      ---
      if (i == j) {
        L[i][j] := sqrt(acc);
      } else {
        L[i][j] := acc / L[j][j];
      }
    }
  }
}
)";

const char *durbin_src = R"(
decl r: ubit<32>[8];
decl y: ubit<32>[8];
decl z: ubit<32>[8];
let alpha: ubit<32> = 0 - r[0];
let beta: ubit<32> = 1;
---
y[0] := 0 - r[0];
---
for (let k: ubit<6> = 1..8) {
  beta := (1 - alpha * alpha) * beta;
  ---
  let acc: ubit<32> = 0;
  ---
  for (let i: ubit<6> = 0..8) {
    if (i < k) { acc := acc + r[k - 1 - i] * y[i]; }
  }
  ---
  alpha := 0 - (r[k] + acc) / beta;
  ---
  for (let i2: ubit<6> = 0..8) {
    if (i2 < k) { z[i2] := y[i2] + alpha * y[k - 1 - i2]; }
  }
  ---
  for (let i3: ubit<6> = 0..8) {
    if (i3 < k) { y[i3] := z[i3]; }
  }
  ---
  y[k] := alpha;
}
)";

const char *gramschmidt_src = R"(
decl A: ubit<32>[8][8];
decl Q: ubit<32>[8][8];
decl R: ubit<32>[8][8];
for (let k: ubit<6> = 0..8) {
  let nrm: ubit<32> = 0;
  ---
  for (let i: ubit<6> = 0..8) {
    nrm := nrm + A[i][k] * A[i][k];
  }
  ---
  R[k][k] := sqrt(nrm);
  ---
  for (let i2: ubit<6> = 0..8) {
    Q[i2][k] := A[i2][k] / R[k][k];
  }
  ---
  for (let j: ubit<6> = 0..8) {
    if (j > k) {
      let acc: ubit<32> = 0;
      ---
      for (let i3: ubit<6> = 0..8) {
        acc := acc + Q[i3][k] * A[i3][j];
      }
      ---
      R[k][j] := acc;
      ---
      for (let i4: ubit<6> = 0..8) {
        A[i4][j] := A[i4][j] - Q[i4][k] * acc;
      }
    }
  }
}
)";

const char *lu_src = R"(
decl A: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    if (j < i) {
      let acc: ubit<32> = A[i][j];
      ---
      for (let k: ubit<6> = 0..8) {
        if (k < j) { acc := acc - A[i][k] * A[k][j]; }
      }
      ---
      A[i][j] := acc / A[j][j];
    }
  }
  ---
  for (let j2: ubit<6> = 0..8) {
    if (j2 >= i) {
      let acc2: ubit<32> = A[i][j2];
      ---
      for (let k2: ubit<6> = 0..8) {
        if (k2 < i) { acc2 := acc2 - A[i][k2] * A[k2][j2]; }
      }
      ---
      A[i][j2] := acc2;
    }
  }
}
)";

const char *ludcmp_src = R"(
decl A: ubit<32>[8][8];
decl b: ubit<32>[8];
decl y: ubit<32>[8];
decl x: ubit<32>[8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    if (j < i) {
      let acc: ubit<32> = A[i][j];
      ---
      for (let k: ubit<6> = 0..8) {
        if (k < j) { acc := acc - A[i][k] * A[k][j]; }
      }
      ---
      A[i][j] := acc / A[j][j];
    }
  }
  ---
  for (let j2: ubit<6> = 0..8) {
    if (j2 >= i) {
      let acc2: ubit<32> = A[i][j2];
      ---
      for (let k2: ubit<6> = 0..8) {
        if (k2 < i) { acc2 := acc2 - A[i][k2] * A[k2][j2]; }
      }
      ---
      A[i][j2] := acc2;
    }
  }
}
---
for (let i2: ubit<6> = 0..8) {
  let acc3: ubit<32> = b[i2];
  ---
  for (let j3: ubit<6> = 0..8) {
    if (j3 < i2) { acc3 := acc3 - A[i2][j3] * y[j3]; }
  }
  ---
  y[i2] := acc3;
}
---
for (let ii: ubit<6> = 0..8) {
  let acc4: ubit<32> = y[7 - ii];
  ---
  for (let j4: ubit<6> = 0..8) {
    if (j4 > 7 - ii) { acc4 := acc4 - A[7 - ii][j4] * x[j4]; }
  }
  ---
  x[7 - ii] := acc4 / A[7 - ii][7 - ii];
}
)";

const char *symm_src = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8];
decl C: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    let temp2: ubit<32> = 0;
    ---
    for (let k: ubit<6> = 0..8) {
      if (k < i) {
        C[k][j] := C[k][j] + 3 * B[i][j] * A[i][k];
        ---
        temp2 := temp2 + B[k][j] * A[i][k];
      }
    }
    ---
    C[i][j] := 2 * C[i][j] + 3 * B[i][j] * A[i][i] + 3 * temp2;
  }
}
)";

const char *trisolv_src = R"(
decl L: ubit<32>[8][8];
decl b: ubit<32>[8];
decl x: ubit<32>[8];
for (let i: ubit<6> = 0..8) {
  let acc: ubit<32> = b[i];
  ---
  for (let j: ubit<6> = 0..8) {
    if (j < i) { acc := acc - L[i][j] * x[j]; }
  }
  ---
  x[i] := acc / L[i][i];
}
)";

const char *trmm_src = R"(
decl A: ubit<32>[8][8];
decl B: ubit<32>[8][8];
for (let i: ubit<6> = 0..8) {
  for (let j: ubit<6> = 0..8) {
    let acc: ubit<32> = B[i][j];
    ---
    for (let k: ubit<6> = 0..8) {
      if (k > i) { acc := acc + A[k][i] * B[k][j]; }
    }
    ---
    B[i][j] := 3 * acc;
  }
}
)";

std::vector<Kernel>
makeKernels()
{
    std::vector<Kernel> out;
    auto add = [&out](const std::string &name, const std::string &label,
                      const char *src, const char *unrolled,
                      bool sqrt_div) {
        Kernel k;
        k.name = name;
        k.label = label;
        k.source = src;
        k.unrolledSource = unrolled ? unrolled : "";
        k.usesSqrtOrDiv = sqrt_div;
        out.push_back(std::move(k));
    };
    // Order matches the paper's figure axes.
    add("2mm", "2mm", two_mm_src, two_mm_unrolled, false);
    add("3mm", "3mm", three_mm_src, three_mm_unrolled, false);
    add("atax", "ata", atax_src, atax_unrolled, false);
    add("doitgen", "dtg", doitgen_src, nullptr, false);
    add("gemm", "gmm", gemm_src, gemm_unrolled, false);
    add("gesummv", "gmv", gesummv_src, gesummv_unrolled, false);
    add("gemver", "gev", gemver_src, gemver_unrolled, false);
    add("gramschmidt", "gmt", gramschmidt_src, nullptr, true);
    add("mvt", "mvt", mvt_src, mvt_unrolled, false);
    add("syr2k", "s2k", syr2k_src, syr2k_unrolled, false);
    add("syrk", "sk", syrk_src, syrk_unrolled, false);
    add("bicg", "bcg", bicg_src, bicg_unrolled, false);
    add("cholesky", "cky", cholesky_src, nullptr, true);
    add("durbin", "dbn", durbin_src, nullptr, true);
    add("lu", "lu", lu_src, nullptr, true);
    add("ludcmp", "lcp", ludcmp_src, nullptr, true);
    add("symm", "sym", symm_src, nullptr, false);
    add("trisolv", "tsv", trisolv_src, nullptr, true);
    add("trmm", "trm", trmm_src, trmm_unrolled, false);
    return out;
}

} // namespace

const std::vector<Kernel> &
kernels()
{
    static const std::vector<Kernel> all = makeKernels();
    return all;
}

const Kernel &
kernel(const std::string &name)
{
    for (const auto &k : kernels()) {
        if (k.name == name)
            return k;
    }
    fatal("unknown PolyBench kernel: ", name);
}

std::vector<uint64_t>
inputData(const std::string &kernel_name, const std::string &mem_name,
          size_t size)
{
    // FNV-style hash of the names seeds a tiny LCG; values in [1, 13]
    // keep divisors nonzero and products small.
    uint64_t seed = 1469598103934665603ull;
    for (char c : kernel_name + "/" + mem_name)
        seed = (seed ^ static_cast<uint64_t>(c)) * 1099511628211ull;
    std::vector<uint64_t> data(size);
    for (size_t i = 0; i < size; ++i) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        data[i] = 1 + ((seed >> 33) % 13);
    }
    return data;
}

} // namespace calyx::workloads
