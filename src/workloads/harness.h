#ifndef CALYX_WORKLOADS_HARNESS_H
#define CALYX_WORKLOADS_HARNESS_H

#include <string>
#include <vector>

#include "estimate/area.h"
#include "frontends/dahlia/ast.h"
#include "passes/pipeline.h"
#include "sim/batch.h"
#include "sim/env.h"
#include "workloads/reference.h"

namespace calyx::obs {
class SimObserver;
}

namespace calyx::workloads {

/** Everything measured for one compiled-and-simulated design. */
struct HardwareResult
{
    uint64_t cycles = 0;
    estimate::Area area;
    passes::DesignStats stats; ///< Pre-compilation IL statistics.
    double compileSeconds = 0.0;
    double simSeconds = 0.0; ///< Wall-clock time inside CycleSim::run().

    /** Simulator throughput (0 when the run was too fast to time). */
    double
    cyclesPerSecond() const
    {
        return simSeconds > 0 ? static_cast<double>(cycles) / simSeconds
                              : 0.0;
    }
};

/** Deterministic inputs for every memory a program declares. */
MemState makeInputs(const std::string &kernel_name,
                    const dahlia::Program &program);

/**
 * Scatter `inputs` into the simulation program's (possibly banked)
 * memory cells, translating the row-major layout of each declared
 * memory to the banked cells the pipeline created. Exposed so callers
 * that re-run one SimProgram (the engine benches) can re-seed
 * memories without recompiling the design.
 */
void pokeInputs(sim::SimProgram &sim, const dahlia::Program &program,
                const MemState &inputs);

/** Gather final memory contents back into the original layout. */
MemState readMemories(const sim::SimProgram &sim,
                      const dahlia::Program &program);

/**
 * Translate row-major `inputs` into a batched-simulation stimulus
 * (sim/batch.h): one image per banked memory cell, elements truncated
 * to the declared width — the same scatter pokeInputs performs on a
 * scalar SimProgram.
 */
sim::Stimulus makeStimulus(const dahlia::Program &program,
                           const MemState &inputs);

/** Execute on the AST reference interpreter. */
MemState runOnInterp(const dahlia::Program &program,
                     const MemState &inputs);

/**
 * Compile a Dahlia program through a Calyx pass pipeline, simulate it
 * with the given inputs, and report cycles/area/compile time. The final
 * memory state (translated back from banked cells to the original
 * layout) is stored in `final_state` when non-null.
 *
 * The pipeline is a parsed PipelineSpec (or a spec string such as
 * `"all,-register-sharing"`); the CompileOptions overload is a
 * compatibility shim over compileOptionsToSpec.
 *
 * `observers` (obs/observer.h; not owned) are attached to the run's
 * SimState before the simulation starts, so a workload can be traced
 * or profiled through the same entry point the benches use.
 */
HardwareResult runOnHardware(const dahlia::Program &program,
                             const passes::PipelineSpec &spec,
                             const MemState &inputs,
                             MemState *final_state = nullptr,
                             const passes::RunOptions &run_options = {},
                             sim::Engine engine = sim::Engine::Levelized,
                             const std::vector<obs::SimObserver *>
                                 &observers = {});
HardwareResult runOnHardware(const dahlia::Program &program,
                             const std::string &spec,
                             const MemState &inputs,
                             MemState *final_state = nullptr);
HardwareResult runOnHardware(const dahlia::Program &program,
                             const passes::CompileOptions &options,
                             const MemState &inputs,
                             MemState *final_state = nullptr);

/**
 * Compile a Dahlia program through a pass pipeline and emit it with a
 * registered backend (src/emit/backend.h): "verilog", "firrtl", "dot",
 * "json-netlist", or "calyx". Unknown backend names are a fatal error
 * with a did-you-mean suggestion.
 */
std::string emitDesign(const dahlia::Program &program,
                       const passes::PipelineSpec &spec,
                       const std::string &backend);
std::string emitDesign(const dahlia::Program &program,
                       const std::string &spec,
                       const std::string &backend);

} // namespace calyx::workloads

#endif // CALYX_WORKLOADS_HARNESS_H
