#ifndef CALYX_WORKLOADS_REFERENCE_H
#define CALYX_WORKLOADS_REFERENCE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace calyx::workloads {

/** Memory state: original (pre-banking) memory name -> row-major data. */
using MemState = std::map<std::string, std::vector<uint64_t>>;

/**
 * Golden native implementation of each PolyBench kernel, independent of
 * the Dahlia frontend. `mems` holds the pre-filled inputs and is updated
 * in place to the expected final state of every memory. Arithmetic is
 * 32-bit unsigned with the same division/sqrt conventions as the
 * hardware primitives.
 */
void runReference(const std::string &kernel_name, MemState &mems);

/** Hardware division convention: all-ones quotient on divide-by-zero. */
uint32_t udiv(uint32_t a, uint32_t b);
/** Hardware integer square root. */
uint32_t usqrt(uint32_t v);

} // namespace calyx::workloads

#endif // CALYX_WORKLOADS_REFERENCE_H
