#include "workloads/reference.h"

#include "sim/models.h"
#include "support/error.h"

namespace calyx::workloads {

uint32_t
udiv(uint32_t a, uint32_t b)
{
    return b == 0 ? 0xFFFFFFFFu : a / b;
}

uint32_t
usqrt(uint32_t v)
{
    return static_cast<uint32_t>(sim::isqrt(v));
}

namespace {

constexpr int N = 8;
constexpr uint32_t ALPHA = 3;
constexpr uint32_t BETA = 2;

/** 2-D accessor over a row-major buffer. */
class M2
{
  public:
    M2(std::vector<uint64_t> &data, int cols) : data(&data), cols(cols) {}
    uint32_t
    get(int r, int c) const
    {
        return static_cast<uint32_t>((*data)[r * cols + c]);
    }
    void
    set(int r, int c, uint32_t v)
    {
        (*data)[r * cols + c] = v;
    }

  private:
    std::vector<uint64_t> *data;
    int cols;
};

uint32_t
get1(const std::vector<uint64_t> &v, int i)
{
    return static_cast<uint32_t>(v[i]);
}

void
refGemm(MemState &m)
{
    M2 A(m.at("A"), N), B(m.at("B"), N), C(m.at("C"), N);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t acc = BETA * C.get(i, j);
            for (int k = 0; k < N; ++k)
                acc += ALPHA * A.get(i, k) * B.get(k, j);
            C.set(i, j, acc);
        }
    }
}

void
ref2mm(MemState &m)
{
    M2 A(m.at("A"), N), B(m.at("B"), N), C(m.at("C"), N), D(m.at("D"), N),
        tmp(m.at("tmp"), N);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t acc = 0;
            for (int k = 0; k < N; ++k)
                acc += ALPHA * A.get(i, k) * B.get(k, j);
            tmp.set(i, j, acc);
        }
    }
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t acc = BETA * D.get(i, j);
            for (int k = 0; k < N; ++k)
                acc += tmp.get(i, k) * C.get(k, j);
            D.set(i, j, acc);
        }
    }
}

void
ref3mm(MemState &m)
{
    M2 A(m.at("A"), N), B(m.at("B"), N), C(m.at("C"), N), D(m.at("D"), N);
    M2 E(m.at("E"), N), F(m.at("F"), N), G(m.at("G"), N);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t acc = 0;
            for (int k = 0; k < N; ++k)
                acc += A.get(i, k) * B.get(k, j);
            E.set(i, j, acc);
        }
    }
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t acc = 0;
            for (int k = 0; k < N; ++k)
                acc += C.get(i, k) * D.get(k, j);
            F.set(i, j, acc);
        }
    }
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t acc = 0;
            for (int k = 0; k < N; ++k)
                acc += E.get(i, k) * F.get(k, j);
            G.set(i, j, acc);
        }
    }
}

void
refAtax(MemState &m)
{
    M2 A(m.at("A"), N);
    auto &x = m.at("x");
    auto &y = m.at("y");
    auto &tmp = m.at("tmp");
    for (int i = 0; i < N; ++i) {
        uint32_t acc = 0;
        for (int j = 0; j < N; ++j)
            acc += A.get(i, j) * get1(x, j);
        tmp[i] = acc;
    }
    for (int j = 0; j < N; ++j)
        y[j] = 0;
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            y[j] = static_cast<uint32_t>(y[j]) +
                   A.get(i, j) * static_cast<uint32_t>(tmp[i]);
        }
    }
    for (auto &v : y)
        v = static_cast<uint32_t>(v);
}

void
refBicg(MemState &m)
{
    M2 A(m.at("A"), N);
    auto &s = m.at("s");
    auto &q = m.at("q");
    auto &p = m.at("p");
    auto &r = m.at("r");
    for (int j = 0; j < N; ++j)
        s[j] = 0;
    for (int i = 0; i < N; ++i) {
        uint32_t acc = 0;
        for (int j = 0; j < N; ++j) {
            s[j] = static_cast<uint32_t>(
                static_cast<uint32_t>(s[j]) +
                get1(r, i) * A.get(i, j));
            acc += A.get(i, j) * get1(p, j);
        }
        q[i] = acc;
    }
}

void
refDoitgen(MemState &m)
{
    constexpr int R = 4, Q = 4, P = 4, S = 4;
    M2 A(m.at("A"), P);
    M2 C4(m.at("C4"), P);
    auto &sum = m.at("sum");
    for (int r = 0; r < R; ++r) {
        for (int q = 0; q < Q; ++q) {
            for (int p = 0; p < P; ++p) {
                uint32_t acc = 0;
                for (int s = 0; s < S; ++s)
                    acc += A.get(r * 4 + q, s) * C4.get(s, p);
                sum[p] = acc;
            }
            for (int p = 0; p < P; ++p)
                A.set(r * 4 + q, p, static_cast<uint32_t>(sum[p]));
        }
    }
}

void
refGemver(MemState &m)
{
    M2 A(m.at("A"), N);
    auto &u1 = m.at("u1");
    auto &v1 = m.at("v1");
    auto &u2 = m.at("u2");
    auto &v2 = m.at("v2");
    auto &x = m.at("x");
    auto &y = m.at("y");
    auto &z = m.at("z");
    auto &w = m.at("w");
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            A.set(i, j, A.get(i, j) + get1(u1, i) * get1(v1, j) +
                            get1(u2, i) * get1(v2, j));
    for (int j = 0; j < N; ++j)
        for (int i = 0; i < N; ++i)
            x[i] = static_cast<uint32_t>(
                static_cast<uint32_t>(x[i]) +
                BETA * A.get(j, i) * get1(y, j));
    for (int i = 0; i < N; ++i)
        x[i] = static_cast<uint32_t>(static_cast<uint32_t>(x[i]) +
                                     get1(z, i));
    for (int i = 0; i < N; ++i) {
        uint32_t acc = 0;
        for (int j = 0; j < N; ++j)
            acc += ALPHA * A.get(i, j) * get1(x, j);
        w[i] = acc;
    }
}

void
refGesummv(MemState &m)
{
    M2 A(m.at("A"), N), B(m.at("B"), N);
    auto &x = m.at("x");
    auto &y = m.at("y");
    for (int i = 0; i < N; ++i) {
        uint32_t acca = 0, accb = 0;
        for (int j = 0; j < N; ++j) {
            acca += A.get(i, j) * get1(x, j);
            accb += B.get(i, j) * get1(x, j);
        }
        y[i] = ALPHA * acca + BETA * accb;
    }
}

void
refMvt(MemState &m)
{
    M2 A(m.at("A"), N);
    auto &x1 = m.at("x1");
    auto &x2 = m.at("x2");
    auto &y1 = m.at("y1");
    auto &y2 = m.at("y2");
    for (int i = 0; i < N; ++i) {
        uint32_t acc = get1(x1, i);
        for (int j = 0; j < N; ++j)
            acc += A.get(i, j) * get1(y1, j);
        x1[i] = acc;
    }
    for (int j = 0; j < N; ++j)
        for (int i = 0; i < N; ++i)
            x2[i] = static_cast<uint32_t>(
                static_cast<uint32_t>(x2[i]) +
                A.get(j, i) * get1(y2, j));
}

void
refSyrk(MemState &m)
{
    M2 A(m.at("A"), N), C(m.at("C"), N);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t acc = BETA * C.get(i, j);
            for (int k = 0; k < N; ++k)
                acc += ALPHA * A.get(i, k) * A.get(j, k);
            C.set(i, j, acc);
        }
    }
}

void
refSyr2k(MemState &m)
{
    M2 A(m.at("A"), N), B(m.at("B"), N), C(m.at("C"), N);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t acc = BETA * C.get(i, j);
            for (int k = 0; k < N; ++k) {
                acc += ALPHA * A.get(i, k) * B.get(j, k) +
                       ALPHA * B.get(i, k) * A.get(j, k);
            }
            C.set(i, j, acc);
        }
    }
}

void
refCholesky(MemState &m)
{
    M2 A(m.at("A"), N), L(m.at("L"), N);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            if (j > i)
                continue;
            uint32_t acc = A.get(i, j);
            for (int k = 0; k < j; ++k)
                acc -= L.get(i, k) * L.get(j, k);
            if (i == j)
                L.set(i, j, usqrt(acc));
            else
                L.set(i, j, udiv(acc, L.get(j, j)));
        }
    }
}

void
refDurbin(MemState &m)
{
    auto &r = m.at("r");
    auto &y = m.at("y");
    auto &z = m.at("z");
    uint32_t alpha = 0 - get1(r, 0);
    uint32_t beta = 1;
    y[0] = 0 - get1(r, 0);
    for (int k = 1; k < N; ++k) {
        beta = (1 - alpha * alpha) * beta;
        uint32_t acc = 0;
        for (int i = 0; i < k; ++i)
            acc += get1(r, k - 1 - i) * get1(y, i);
        alpha = 0 - udiv(get1(r, k) + acc, beta);
        for (int i = 0; i < k; ++i)
            z[i] = get1(y, i) + alpha * get1(y, k - 1 - i);
        for (int i = 0; i < k; ++i)
            y[i] = get1(z, i);
        y[k] = alpha;
    }
}

void
refGramschmidt(MemState &m)
{
    M2 A(m.at("A"), N), Q(m.at("Q"), N), R(m.at("R"), N);
    for (int k = 0; k < N; ++k) {
        uint32_t nrm = 0;
        for (int i = 0; i < N; ++i)
            nrm += A.get(i, k) * A.get(i, k);
        R.set(k, k, usqrt(nrm));
        for (int i = 0; i < N; ++i)
            Q.set(i, k, udiv(A.get(i, k), R.get(k, k)));
        for (int j = k + 1; j < N; ++j) {
            uint32_t acc = 0;
            for (int i = 0; i < N; ++i)
                acc += Q.get(i, k) * A.get(i, j);
            R.set(k, j, acc);
            for (int i = 0; i < N; ++i)
                A.set(i, j, A.get(i, j) - Q.get(i, k) * acc);
        }
    }
}

void
refLuCore(M2 &A)
{
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < i; ++j) {
            uint32_t acc = A.get(i, j);
            for (int k = 0; k < j; ++k)
                acc -= A.get(i, k) * A.get(k, j);
            A.set(i, j, udiv(acc, A.get(j, j)));
        }
        for (int j = i; j < N; ++j) {
            uint32_t acc = A.get(i, j);
            for (int k = 0; k < i; ++k)
                acc -= A.get(i, k) * A.get(k, j);
            A.set(i, j, acc);
        }
    }
}

void
refLu(MemState &m)
{
    M2 A(m.at("A"), N);
    refLuCore(A);
}

void
refLudcmp(MemState &m)
{
    M2 A(m.at("A"), N);
    auto &b = m.at("b");
    auto &y = m.at("y");
    auto &x = m.at("x");
    refLuCore(A);
    for (int i = 0; i < N; ++i) {
        uint32_t acc = get1(b, i);
        for (int j = 0; j < i; ++j)
            acc -= A.get(i, j) * get1(y, j);
        y[i] = acc;
    }
    for (int ii = 0; ii < N; ++ii) {
        int i = N - 1 - ii;
        uint32_t acc = get1(y, i);
        for (int j = i + 1; j < N; ++j)
            acc -= A.get(i, j) * get1(x, j);
        x[i] = udiv(acc, A.get(i, i));
    }
}

void
refSymm(MemState &m)
{
    M2 A(m.at("A"), N), B(m.at("B"), N), C(m.at("C"), N);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t temp2 = 0;
            for (int k = 0; k < i; ++k) {
                C.set(k, j,
                      C.get(k, j) + ALPHA * B.get(i, j) * A.get(i, k));
                temp2 += B.get(k, j) * A.get(i, k);
            }
            C.set(i, j, BETA * C.get(i, j) +
                            ALPHA * B.get(i, j) * A.get(i, i) +
                            ALPHA * temp2);
        }
    }
}

void
refTrisolv(MemState &m)
{
    M2 L(m.at("L"), N);
    auto &b = m.at("b");
    auto &x = m.at("x");
    for (int i = 0; i < N; ++i) {
        uint32_t acc = get1(b, i);
        for (int j = 0; j < i; ++j)
            acc -= L.get(i, j) * get1(x, j);
        x[i] = udiv(acc, L.get(i, i));
    }
}

void
refTrmm(MemState &m)
{
    M2 A(m.at("A"), N), B(m.at("B"), N);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t acc = B.get(i, j);
            for (int k = i + 1; k < N; ++k)
                acc += A.get(k, i) * B.get(k, j);
            B.set(i, j, ALPHA * acc);
        }
    }
}

} // namespace

void
runReference(const std::string &kernel_name, MemState &mems)
{
    if (kernel_name == "gemm")
        return refGemm(mems);
    if (kernel_name == "2mm")
        return ref2mm(mems);
    if (kernel_name == "3mm")
        return ref3mm(mems);
    if (kernel_name == "atax")
        return refAtax(mems);
    if (kernel_name == "bicg")
        return refBicg(mems);
    if (kernel_name == "doitgen")
        return refDoitgen(mems);
    if (kernel_name == "gemver")
        return refGemver(mems);
    if (kernel_name == "gesummv")
        return refGesummv(mems);
    if (kernel_name == "mvt")
        return refMvt(mems);
    if (kernel_name == "syrk")
        return refSyrk(mems);
    if (kernel_name == "syr2k")
        return refSyr2k(mems);
    if (kernel_name == "cholesky")
        return refCholesky(mems);
    if (kernel_name == "durbin")
        return refDurbin(mems);
    if (kernel_name == "gramschmidt")
        return refGramschmidt(mems);
    if (kernel_name == "lu")
        return refLu(mems);
    if (kernel_name == "ludcmp")
        return refLudcmp(mems);
    if (kernel_name == "symm")
        return refSymm(mems);
    if (kernel_name == "trisolv")
        return refTrisolv(mems);
    if (kernel_name == "trmm")
        return refTrmm(mems);
    fatal("no reference for kernel ", kernel_name);
}

} // namespace calyx::workloads
