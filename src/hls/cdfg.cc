#include "hls/cdfg.h"

#include <algorithm>

namespace calyx::hls {

using dahlia::BinOp;
using dahlia::Expr;
using dahlia::Stmt;

namespace {

// Chained-latency contributions (see scheduler.h for the model).
constexpr int memReadLat = 1;
constexpr int multLat = 3;
constexpr int divLat = 16;
constexpr int sqrtLat = 16;

} // namespace

OpSummary &
OpSummary::merge(const OpSummary &other, bool sequential_chain)
{
    adds += other.adds;
    cmps += other.cmps;
    mults += other.mults;
    divs += other.divs;
    sqrts += other.sqrts;
    for (const auto &[m, n] : other.memReads)
        memReads[m] += n;
    for (const auto &[m, n] : other.memWrites)
        memWrites[m] += n;
    if (sequential_chain) {
        chain += other.chain;
        combOnChain += other.combOnChain;
    } else {
        chain = std::max(chain, other.chain);
        combOnChain = std::max(combOnChain, other.combOnChain);
    }
    return *this;
}

OpSummary
summarizeExpr(const Expr &e)
{
    OpSummary s;
    switch (e.kind) {
      case Expr::Kind::Num:
      case Expr::Kind::Var:
        return s;
      case Expr::Kind::Access: {
        for (const auto &i : e.indices)
            s.merge(summarizeExpr(*i), false);
        s.memReads[e.name] += 1;
        s.chain += memReadLat;
        return s;
      }
      case Expr::Kind::Bin: {
        OpSummary l = summarizeExpr(*e.lhs);
        OpSummary r = summarizeExpr(*e.rhs);
        s.merge(l, false);
        s.merge(r, false);
        s.chain = std::max(l.chain, r.chain);
        s.combOnChain = std::max(l.combOnChain, r.combOnChain);
        if (e.op == BinOp::Mul) {
            s.mults += 1;
            s.chain += multLat;
        } else if (e.op == BinOp::Div || e.op == BinOp::Mod) {
            s.divs += 1;
            s.chain += divLat;
        } else if (dahlia::isComparison(e.op)) {
            s.cmps += 1;
            s.combOnChain += 1;
        } else {
            s.adds += 1;
            s.combOnChain += 1;
        }
        return s;
      }
      case Expr::Kind::Sqrt: {
        s = summarizeExpr(*e.lhs);
        s.sqrts += 1;
        s.chain += sqrtLat;
        return s;
      }
    }
    return s;
}

namespace {

void
scalarUseExpr(const Expr &e, std::set<std::string> &reads)
{
    switch (e.kind) {
      case Expr::Kind::Num:
        return;
      case Expr::Kind::Var:
        reads.insert(e.name);
        return;
      case Expr::Kind::Access:
        for (const auto &i : e.indices)
            scalarUseExpr(*i, reads);
        return;
      case Expr::Kind::Bin:
        scalarUseExpr(*e.lhs, reads);
        scalarUseExpr(*e.rhs, reads);
        return;
      case Expr::Kind::Sqrt:
        scalarUseExpr(*e.lhs, reads);
        return;
    }
}

} // namespace

ScalarUse
scalarUse(const Stmt &s)
{
    ScalarUse use;
    switch (s.kind) {
      case Stmt::Kind::Let:
        if (s.init)
            scalarUseExpr(*s.init, use.reads);
        use.writes.insert(s.name);
        return use;
      case Stmt::Kind::Assign:
        scalarUseExpr(*s.rhs, use.reads);
        if (s.lval->kind == Expr::Kind::Var) {
            use.writes.insert(s.lval->name);
        } else {
            for (const auto &i : s.lval->indices)
                scalarUseExpr(*i, use.reads);
        }
        return use;
      case Stmt::Kind::If: {
        scalarUseExpr(*s.cond, use.reads);
        ScalarUse t = scalarUse(*s.body);
        use.reads.insert(t.reads.begin(), t.reads.end());
        use.writes.insert(t.writes.begin(), t.writes.end());
        if (s.elseBody) {
            ScalarUse f = scalarUse(*s.elseBody);
            use.reads.insert(f.reads.begin(), f.reads.end());
            use.writes.insert(f.writes.begin(), f.writes.end());
        }
        return use;
      }
      case Stmt::Kind::While:
      case Stmt::Kind::For: {
        if (s.cond)
            scalarUseExpr(*s.cond, use.reads);
        ScalarUse b = scalarUse(*s.body);
        use.reads.insert(b.reads.begin(), b.reads.end());
        use.writes.insert(b.writes.begin(), b.writes.end());
        if (s.combine) {
            ScalarUse c = scalarUse(*s.combine);
            use.reads.insert(c.reads.begin(), c.reads.end());
            use.writes.insert(c.writes.begin(), c.writes.end());
        }
        return use;
      }
      case Stmt::Kind::SeqComp:
      case Stmt::Kind::ParComp:
        for (const auto &c : s.stmts) {
            ScalarUse u = scalarUse(*c);
            use.reads.insert(u.reads.begin(), u.reads.end());
            use.writes.insert(u.writes.begin(), u.writes.end());
        }
        return use;
    }
    return use;
}

bool
underSequentialOp(const Expr &e, const std::string &name)
{
    switch (e.kind) {
      case Expr::Kind::Num:
      case Expr::Kind::Var:
        return false;
      case Expr::Kind::Access:
        for (const auto &i : e.indices) {
            if (underSequentialOp(*i, name))
                return true;
        }
        return false;
      case Expr::Kind::Bin: {
        if (dahlia::isSequentialOp(e.op)) {
            std::set<std::string> reads;
            scalarUseExpr(*e.lhs, reads);
            scalarUseExpr(*e.rhs, reads);
            if (reads.count(name))
                return true;
        }
        return underSequentialOp(*e.lhs, name) ||
               underSequentialOp(*e.rhs, name);
      }
      case Expr::Kind::Sqrt: {
        std::set<std::string> reads;
        scalarUseExpr(*e.lhs, reads);
        return reads.count(name) > 0 || underSequentialOp(*e.lhs, name);
      }
    }
    return false;
}

} // namespace calyx::hls
