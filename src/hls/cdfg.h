#ifndef CALYX_HLS_CDFG_H
#define CALYX_HLS_CDFG_H

#include <map>
#include <set>
#include <string>

#include "frontends/dahlia/ast.h"

namespace calyx::hls {

/**
 * Per-expression/statement operation summary used by the HLS scheduler:
 * functional-unit demand, chained-path latency contributions, and memory
 * port usage.
 */
struct OpSummary
{
    int adds = 0;     ///< add/sub/logic/shift (one LUT-mapped op each)
    int cmps = 0;
    int mults = 0;
    int divs = 0;
    int sqrts = 0;
    /** Reads per memory (port pressure). */
    std::map<std::string, int> memReads;
    std::map<std::string, int> memWrites;
    /**
     * Latency of the critical dependency chain in cycles, using the
     * model constants in scheduler.h (memory read 1, mult 3, div 16,
     * sqrt 16; combinational ops chain for free in groups of 8).
     */
    int chain = 0;
    int combOnChain = 0; ///< comb ops along the critical chain

    OpSummary &merge(const OpSummary &other, bool sequential_chain);
};

/** Summarize one expression. */
OpSummary summarizeExpr(const dahlia::Expr &e);

/** Registers read and written by a statement (recurrence detection). */
struct ScalarUse
{
    std::set<std::string> reads, writes;
};

ScalarUse scalarUse(const dahlia::Stmt &s);

/**
 * Whether `name` appears inside a multiply/divide operand anywhere in
 * the expression (a loop-carried recurrence through a multi-cycle unit
 * constrains the initiation interval).
 */
bool underSequentialOp(const dahlia::Expr &e, const std::string &name);

} // namespace calyx::hls

#endif // CALYX_HLS_CDFG_H
