#include "hls/scheduler.h"

#include <algorithm>

#include "hls/cdfg.h"
#include "support/error.h"

namespace calyx::hls {

using dahlia::Expr;
using dahlia::Program;
using dahlia::Stmt;

namespace {

// Area constants (32-bit datapath).
constexpr double addLuts = 32.0;
constexpr double cmpLuts = 32.0;
constexpr double divLuts = 160.0;
constexpr double sqrtLuts = 96.0;
constexpr double multDsps = 4.0;
constexpr double multGlueLuts = 24.0; // DSP48 wrapper / alignment logic
constexpr double loopCtrlLuts = 40.0; // pipelined loop controller
constexpr double loopCtrlFfs = 24.0;
constexpr double interfaceLuts = 100.0; // block-level control interface
constexpr int combChainPerCycle = 8;
constexpr int memPorts = 2;
constexpr int multRecurrenceIi = 3;
constexpr int divRecurrenceIi = 16;

/** Peak concurrent functional-unit demand. */
struct FuDemand
{
    double adds = 0, cmps = 0, mults = 0, divs = 0, sqrts = 0;
    int loops = 0;

    void
    peak(const FuDemand &other)
    {
        adds = std::max(adds, other.adds);
        cmps = std::max(cmps, other.cmps);
        mults = std::max(mults, other.mults);
        divs = std::max(divs, other.divs);
        sqrts = std::max(sqrts, other.sqrts);
        loops += other.loops;
    }

    void
    scale(double f)
    {
        adds *= f;
        cmps *= f;
        mults *= f;
        divs *= f;
        sqrts *= f;
    }
};

struct SchedResult
{
    uint64_t cycles = 0;
    FuDemand fu;
};

/** Cycles for one straight-line statement's expression work. */
uint64_t
stmtChainCycles(const OpSummary &s, bool is_mem_write)
{
    int cycles = s.chain + (s.combOnChain + combChainPerCycle - 1) /
                               combChainPerCycle;
    // Same-memory port serialization beyond the dual ports.
    for (const auto &[mem, n] : s.memReads) {
        int writes = 0;
        auto it = s.memWrites.find(mem);
        if (it != s.memWrites.end())
            writes = it->second;
        int accesses = n + writes;
        if (accesses > memPorts)
            cycles += accesses - memPorts;
    }
    if (is_mem_write)
        cycles += 1;
    return std::max(cycles, 1);
}

FuDemand
fuOf(const OpSummary &s)
{
    FuDemand d;
    d.adds = s.adds;
    d.cmps = s.cmps;
    d.mults = s.mults;
    d.divs = s.divs;
    d.sqrts = s.sqrts;
    return d;
}

bool
independentStmts(const Stmt &a, const Stmt &b)
{
    ScalarUse ua = scalarUse(a), ub = scalarUse(b);
    auto inter = [](const std::set<std::string> &x,
                    const std::set<std::string> &y) {
        for (const auto &v : x)
            if (y.count(v))
                return true;
        return false;
    };
    return !inter(ua.writes, ub.writes) && !inter(ua.writes, ub.reads) &&
           !inter(ua.reads, ub.writes);
}

SchedResult schedule(const Stmt &s);

/** Bank counts per memory, set by scheduleProgram for portPressure. */
thread_local const std::map<std::string, uint64_t> *g_banks = nullptr;

/** True when the statement tree contains no further loops. */
bool
isInnermost(const Stmt &s)
{
    switch (s.kind) {
      case Stmt::Kind::For:
      case Stmt::Kind::While:
        return false;
      case Stmt::Kind::If:
        return isInnermost(*s.body) &&
               (!s.elseBody || isInnermost(*s.elseBody));
      case Stmt::Kind::SeqComp:
      case Stmt::Kind::ParComp:
        for (const auto &c : s.stmts) {
            if (!isInnermost(*c))
                return false;
        }
        return true;
      default:
        return true;
    }
}

void
collectAccesses(const Stmt &s, std::map<std::string, int> &acc)
{
    auto add_expr = [&acc](const Expr &e) {
        OpSummary sum = summarizeExpr(e);
        for (const auto &[m, n] : sum.memReads)
            acc[m] += n;
    };
    switch (s.kind) {
      case Stmt::Kind::Let:
        if (s.init)
            add_expr(*s.init);
        return;
      case Stmt::Kind::Assign:
        add_expr(*s.rhs);
        if (s.lval->kind == Expr::Kind::Access) {
            acc[s.lval->name] += 1;
            for (const auto &i : s.lval->indices)
                add_expr(*i);
        }
        return;
      case Stmt::Kind::If:
        add_expr(*s.cond);
        collectAccesses(*s.body, acc);
        if (s.elseBody)
            collectAccesses(*s.elseBody, acc);
        return;
      case Stmt::Kind::While:
      case Stmt::Kind::For:
        if (s.cond)
            add_expr(*s.cond);
        collectAccesses(*s.body, acc);
        return;
      case Stmt::Kind::SeqComp:
      case Stmt::Kind::ParComp:
        for (const auto &c : s.stmts)
            collectAccesses(*c, acc);
        return;
    }
}

/**
 * Initiation-interval bound from memory ports: accesses per iteration
 * group (all unrolled lanes) against dual-ported, bank-partitioned
 * memories.
 */
uint64_t
portPressure(const Stmt &loop)
{
    std::map<std::string, int> acc;
    collectAccesses(*loop.body, acc);
    if (loop.combine)
        collectAccesses(*loop.combine, acc);
    uint64_t unroll = std::max<uint64_t>(1, loop.unroll);
    uint64_t ii = 1;
    for (const auto &[mem, n] : acc) {
        uint64_t banks = 1;
        if (g_banks) {
            auto it = g_banks->find(mem);
            if (it != g_banks->end())
                banks = it->second;
        }
        uint64_t ports = memPorts * banks;
        uint64_t need = static_cast<uint64_t>(n) * unroll;
        ii = std::max(ii, (need + ports - 1) / ports);
    }
    return ii;
}

/** Initiation-interval bound from loop-carried scalar recurrences. */
uint64_t
recurrenceIi(const Stmt &s)
{
    switch (s.kind) {
      case Stmt::Kind::Assign: {
        if (s.lval->kind != Expr::Kind::Var)
            return 1;
        if (!underSequentialOp(*s.rhs, s.lval->name))
            return 1; // accumulation through an adder pipelines at II=1
        OpSummary sum = summarizeExpr(*s.rhs);
        return sum.divs > 0 ? divRecurrenceIi : multRecurrenceIi;
      }
      case Stmt::Kind::If: {
        uint64_t ii = recurrenceIi(*s.body);
        if (s.elseBody)
            ii = std::max(ii, recurrenceIi(*s.elseBody));
        return ii;
      }
      case Stmt::Kind::SeqComp:
      case Stmt::Kind::ParComp: {
        uint64_t ii = 1;
        for (const auto &c : s.stmts)
            ii = std::max(ii, recurrenceIi(*c));
        return ii;
      }
      default:
        return 1;
    }
}

SchedResult
scheduleAssignLike(const Stmt &s)
{
    OpSummary sum;
    bool mem_write = false;
    if (s.kind == Stmt::Kind::Let) {
        if (s.init)
            sum = summarizeExpr(*s.init);
    } else {
        sum = summarizeExpr(*s.rhs);
        if (s.lval->kind == Expr::Kind::Access) {
            mem_write = true;
            sum.memWrites[s.lval->name] += 1;
            for (const auto &i : s.lval->indices)
                sum.merge(summarizeExpr(*i), false);
        }
    }
    SchedResult r;
    r.cycles = stmtChainCycles(sum, mem_write);
    r.fu = fuOf(sum);
    return r;
}

SchedResult
schedule(const Stmt &s)
{
    switch (s.kind) {
      case Stmt::Kind::Let:
      case Stmt::Kind::Assign:
        return scheduleAssignLike(s);
      case Stmt::Kind::If: {
        OpSummary cond = summarizeExpr(*s.cond);
        SchedResult t = schedule(*s.body);
        SchedResult f;
        if (s.elseBody)
            f = schedule(*s.elseBody);
        SchedResult r;
        r.cycles = stmtChainCycles(cond, false) +
                   std::max(t.cycles, f.cycles);
        r.fu = fuOf(cond);
        r.fu.peak(t.fu);
        r.fu.peak(f.fu);
        return r;
      }
      case Stmt::Kind::While: {
        // Source-level while loops have unknown trip counts; assume a
        // nominal 8 iterations (PolyBench kernels use `for`).
        OpSummary cond = summarizeExpr(*s.cond);
        SchedResult body = schedule(*s.body);
        SchedResult r;
        r.cycles = 2 + 8 * (stmtChainCycles(cond, false) + body.cycles +
                            1);
        r.fu = fuOf(cond);
        r.fu.peak(body.fu);
        r.fu.loops += 1;
        return r;
      }
      case Stmt::Kind::For: {
        uint64_t trip = s.hi - s.lo;
        uint64_t unroll = std::max<uint64_t>(1, s.unroll);
        SchedResult body = schedule(*s.body);
        uint64_t iters = trip / unroll;
        SchedResult r;
        // U lanes run in parallel against U-way partitioned memories.
        r.fu = body.fu;
        r.fu.scale(static_cast<double>(unroll));
        uint64_t combine_cycles = 0;
        if (s.combine) {
            SchedResult c = schedule(*s.combine);
            combine_cycles = c.cycles;
            r.fu.peak(c.fu);
        }
        if (isInnermost(*s.body)) {
            // Dahlia's HLS backend pipelines innermost loops; the
            // initiation interval is bound by memory-port pressure and
            // loop-carried recurrences through multi-cycle units.
            uint64_t ii = std::max<uint64_t>(
                {1, portPressure(s), recurrenceIi(*s.body)});
            uint64_t depth = body.cycles + combine_cycles;
            r.cycles = 2 + depth + ii * (iters > 0 ? iters - 1 : 0);
        } else {
            r.cycles = 2 + iters * (body.cycles + combine_cycles + 1);
        }
        r.fu.loops += 1;
        return r;
      }
      case Stmt::Kind::SeqComp: {
        SchedResult r;
        for (const auto &c : s.stmts) {
            SchedResult cr = schedule(*c);
            r.cycles += cr.cycles;
            r.fu.peak(cr.fu);
        }
        return r;
      }
      case Stmt::Kind::ParComp: {
        // Independent unordered statements overlap.
        bool all_independent = true;
        for (size_t i = 0; i < s.stmts.size() && all_independent; ++i) {
            for (size_t j = i + 1; j < s.stmts.size(); ++j) {
                if (!independentStmts(*s.stmts[i], *s.stmts[j])) {
                    all_independent = false;
                    break;
                }
            }
        }
        SchedResult r;
        for (const auto &c : s.stmts) {
            SchedResult cr = schedule(*c);
            if (all_independent) {
                r.cycles = std::max(r.cycles, cr.cycles);
                // Overlapping statements need their own units.
                r.fu.adds += cr.fu.adds;
                r.fu.cmps += cr.fu.cmps;
                r.fu.mults += cr.fu.mults;
                r.fu.divs += cr.fu.divs;
                r.fu.sqrts += cr.fu.sqrts;
                r.fu.loops += cr.fu.loops;
            } else {
                r.cycles += cr.cycles;
                r.fu.peak(cr.fu);
            }
        }
        return r;
      }
    }
    panic("bad stmt kind");
}

} // namespace

HlsReport
scheduleProgram(const Program &program)
{
    std::map<std::string, uint64_t> banks;
    for (const auto &d : program.decls) {
        uint64_t b = 1;
        for (uint64_t bank : d.type.banks)
            b = std::max(b, bank);
        banks[d.name] = b;
    }
    g_banks = &banks;
    SchedResult r = schedule(*program.body);
    g_banks = nullptr;

    HlsReport report;
    report.cycles = r.cycles + 2; // interface handshake
    report.luts = r.fu.adds * addLuts + r.fu.cmps * cmpLuts +
                  r.fu.divs * divLuts + r.fu.sqrts * sqrtLuts +
                  r.fu.mults * multGlueLuts + r.fu.loops * loopCtrlLuts +
                  interfaceLuts;
    report.ffs = r.fu.loops * loopCtrlFfs + 64.0;
    report.dsps = r.fu.mults * multDsps;
    return report;
}

} // namespace calyx::hls
