#ifndef CALYX_HLS_SCHEDULER_H
#define CALYX_HLS_SCHEDULER_H

#include <cstdint>

#include "frontends/dahlia/ast.h"

namespace calyx::hls {

/**
 * Cycle count and resource estimate for an HLS implementation of a
 * mini-Dahlia program.
 */
struct HlsReport
{
    uint64_t cycles = 0;
    double luts = 0.0;
    double ffs = 0.0;
    double dsps = 0.0;
};

/**
 * Analytical model of a commercial HLS scheduler over the same source
 * program — the repository's substitute for Vivado HLS (DESIGN.md §1).
 *
 * Schedule model (calibrated to Vivado HLS 2019.2-era behaviour on the
 * paper's kernels):
 *  - statements execute sequentially; a statement costs its critical
 *    dependency chain (memory read 1 cycle, multiply 3, divide and
 *    square root 16, combinational ops chain in groups of 8 per cycle,
 *    minimum 1);
 *  - reads of distinct memories proceed in parallel; extra same-cycle
 *    accesses to one dual-port memory serialize;
 *  - unordered (`;`) statements overlap when independent;
 *  - an unrolled loop (factor U, with matching cyclic partitioning)
 *    runs U lanes in parallel over trip/U iterations;
 *  - loops pay 2 cycles of entry/exit control and 1 cycle of
 *    per-iteration control like the paper era toolchain.
 *
 * Resource model: functional units are reused across sequential code
 * (the maximum concurrent demand is instantiated), multipliers map to
 * DSPs, and each loop adds a small control cost. Constants are in
 * scheduler.cc; only ratios against the Calyx area model are
 * meaningful.
 */
HlsReport scheduleProgram(const dahlia::Program &program);

} // namespace calyx::hls

#endif // CALYX_HLS_SCHEDULER_H
