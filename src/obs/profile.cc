#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <unordered_map>

#include "ir/fsm.h"
#include "sim/env.h"
#include "support/error.h"

namespace calyx::obs {

using sim::SimProgram;

namespace {

constexpr uint32_t kNoGate = ~0u;

} // namespace

Profiler::Profiler(const SimProgram &prog) : prog(&prog)
{
    groupMode = prog.hasGroups();

    // Which memory (by index into `mems`) each read_data port belongs
    // to, for resolving read assignments below.
    std::unordered_map<uint32_t, uint32_t> read_port_mem;

    std::function<void(const SimProgram::Instance &)> walk =
        [&](const SimProgram::Instance &inst) {
            for (size_t g = 0; g < inst.groupNames.size(); ++g) {
                groups.push_back({inst.path + inst.groupNames[g].str(),
                                  inst.groupHoles[g].first, 0});
            }

            for (const auto &mp : inst.comp->fsms()) {
                const FsmMachine &fm = *mp;
                if (!fm.realized())
                    continue;
                MachineWatch w;
                w.name = inst.path + fm.name().str();
                w.root = inst.path.empty();
                w.encoding = fsmEncodingName(fm.encoding());
                for (const FsmState &s : fm.states())
                    w.states.push_back({s.name.str(), 0});
                if (!fm.registerCell().empty()) {
                    w.registerCell = fm.registerCell().str();
                    w.regPort = prog.portId(
                        Symbol(inst.path + w.registerCell + ".out"));
                    w.oneHot = fm.encoding() == FsmEncoding::OneHot;
                    // Replicate the realized code layout
                    // (lowering/realize.cc layoutStates): the entry
                    // state owns [0, span), the rest follow in id
                    // order, each owning `span` consecutive codes.
                    std::vector<int64_t> base(fm.states().size(), 0);
                    int64_t next = fm.state(fm.entry()).span;
                    for (uint32_t id = 0; id < fm.states().size();
                         ++id) {
                        if (id == fm.entry())
                            continue;
                        base[id] = next;
                        next += fm.state(id).span;
                    }
                    w.codeToState.assign(static_cast<size_t>(next), 0);
                    for (uint32_t id = 0; id < fm.states().size();
                         ++id) {
                        for (int64_t c = base[id];
                             c < base[id] + fm.state(id).span; ++c)
                            w.codeToState[static_cast<size_t>(c)] = id;
                    }
                }
                machines.push_back(std::move(w));
            }

            for (const auto &cell : inst.comp->cells()) {
                if (!cell->isPrimitive())
                    continue;
                std::string path = inst.path + cell->name().str();
                sim::PrimModel *model = prog.findModel(Symbol(path));
                if (!model->memory())
                    continue;
                MemWatch mw;
                mw.name = path;
                mw.writeEn = prog.portId(Symbol(path + ".write_en"));
                for (const auto &p : cell->portDefs()) {
                    if (p.name.str().rfind("read_data", 0) == 0) {
                        read_port_mem[prog.portId(
                            Symbol(path + "." + p.name.str()))] =
                            static_cast<uint32_t>(mems.size());
                    }
                }
                mems.push_back(std::move(mw));
            }

            for (const auto &sub : inst.subs)
                walk(*sub);
        };
    walk(prog.root());

    // A memory read happens on a cycle where some assignment sourcing
    // one of its read_data ports is live: guard true, and — for group
    // assignments — the group's go hole high.
    auto scan = [&](const std::vector<sim::SAssign> &assigns,
                    uint32_t gate) {
        for (const sim::SAssign &a : assigns) {
            if (a.srcConst)
                continue;
            auto it = read_port_mem.find(a.srcPort);
            if (it == read_port_mem.end())
                continue;
            mems[it->second].readAssigns.push_back(
                static_cast<uint32_t>(reads.size()));
            reads.push_back({&a.guard, gate});
        }
    };
    std::function<void(const SimProgram::Instance &)> scanInst =
        [&](const SimProgram::Instance &inst) {
            scan(inst.continuous, kNoGate);
            for (size_t g = 0; g < inst.groupAssigns.size(); ++g)
                scan(inst.groupAssigns[g], inst.groupHoles[g].first);
            for (const auto &sub : inst.subs)
                scanInst(*sub);
        };
    scanInst(prog.root());
}

void
Profiler::cycleSettled(uint64_t cycle, const uint64_t *vals)
{
    (void)cycle;
    ++settled;
    bool attributed = false;
    bool any_watch = false;

    for (GroupWatch &g : groups) {
        any_watch = true;
        if (vals[g.goHole] & 1) {
            ++g.cycles;
            attributed = true;
        }
    }

    bool have_root = false;
    for (const MachineWatch &m : machines)
        have_root |= m.root && !m.codeToState.empty();
    for (MachineWatch &m : machines) {
        if (m.codeToState.empty())
            continue; // register-free: nothing to decode
        any_watch = true;
        uint64_t v = vals[m.regPort];
        int64_t code = -1;
        if (!m.oneHot) {
            if (v < m.codeToState.size())
                code = static_cast<int64_t>(v);
        } else {
            // One-hot per realize.cc: slot 0 is all-zeros, slot k is
            // 1 << (k-1).
            if (v == 0)
                code = 0;
            else if ((v & (v - 1)) == 0)
                code = __builtin_ctzll(v) + 1;
            if (code >= static_cast<int64_t>(m.codeToState.size()))
                code = -1;
        }
        if (code < 0) {
            ++m.unattributed;
            continue;
        }
        ++m.states[m.codeToState[static_cast<size_t>(code)]].cycles;
        if (m.root || !have_root)
            attributed = true;
    }

    if (!any_watch || attributed)
        ++attributedCycles;

    for (MemWatch &mw : mems) {
        if (vals[mw.writeEn] & 1)
            ++mw.writeCycles;
        for (uint32_t ri : mw.readAssigns) {
            const ReadWatch &r = reads[ri];
            if (r.gateHole != kNoGate && !(vals[r.gateHole] & 1))
                continue;
            if (!r.guard->eval(vals))
                continue;
            ++mw.readCycles;
            break;
        }
    }
}

void
Profiler::combStats(uint64_t cycle, int evals)
{
    (void)cycle;
    evalsTotal += static_cast<uint64_t>(evals > 0 ? evals : 0);
    evalsMax = std::max(evalsMax, evals);
}

void
Profiler::finish(uint64_t cycles)
{
    totalCycles = cycles;
}

double
Profiler::attributedPct() const
{
    uint64_t denom = settled ? settled : 1;
    return 100.0 * static_cast<double>(attributedCycles) /
           static_cast<double>(denom);
}

uint64_t
Profiler::groupCycles(const std::string &path) const
{
    for (const GroupWatch &g : groups) {
        if (g.name == path)
            return g.cycles;
    }
    fatal("profiler: no group watch named '", path, "'");
}

uint64_t
Profiler::stateCycles(const std::string &machine_path,
                      const std::string &state) const
{
    for (const MachineWatch &m : machines) {
        if (m.name != machine_path)
            continue;
        for (const StateCount &s : m.states) {
            if (s.name == state)
                return s.cycles;
        }
        fatal("profiler: machine '", machine_path, "' has no state '",
              state, "'");
    }
    fatal("profiler: no machine watch named '", machine_path, "'");
}

json::Value
Profiler::report() const
{
    uint64_t cycles = totalCycles ? totalCycles : settled;
    json::Value p = json::Value::object();
    p.set("cycles", json::Value::number(cycles));
    p.set("attributed_cycles", json::Value::number(attributedCycles));
    p.set("attributed_pct", json::Value::real(attributedPct()));

    json::Value garr = json::Value::array();
    for (const GroupWatch &g : groups) {
        json::Value o = json::Value::object();
        o.set("name", json::Value::str(g.name));
        o.set("cycles", json::Value::number(g.cycles));
        garr.push(std::move(o));
    }
    p.set("groups", std::move(garr));

    json::Value marr = json::Value::array();
    for (const MachineWatch &m : machines) {
        json::Value o = json::Value::object();
        o.set("name", json::Value::str(m.name));
        o.set("register", json::Value::str(m.registerCell));
        o.set("encoding", json::Value::str(m.encoding));
        json::Value sarr = json::Value::array();
        for (const StateCount &s : m.states) {
            json::Value so = json::Value::object();
            so.set("name", json::Value::str(s.name));
            so.set("cycles", json::Value::number(s.cycles));
            sarr.push(std::move(so));
        }
        o.set("states", std::move(sarr));
        o.set("unattributed_cycles", json::Value::number(m.unattributed));
        marr.push(std::move(o));
    }
    p.set("machines", std::move(marr));

    json::Value mem = json::Value::array();
    for (const MemWatch &mw : mems) {
        json::Value o = json::Value::object();
        o.set("name", json::Value::str(mw.name));
        o.set("read_cycles", json::Value::number(mw.readCycles));
        o.set("write_cycles", json::Value::number(mw.writeCycles));
        mem.push(std::move(o));
    }
    p.set("memories", std::move(mem));

    json::Value eng = json::Value::object();
    eng.set("comb_evals_total", json::Value::number(evalsTotal));
    eng.set("comb_evals_max",
            json::Value::number(static_cast<uint64_t>(
                evalsMax > 0 ? evalsMax : 0)));
    eng.set("comb_evals_avg",
            json::Value::real(settled ? static_cast<double>(evalsTotal) /
                                            static_cast<double>(settled)
                                      : 0.0));
    p.set("engine", std::move(eng));
    return p;
}

void
Profiler::printSummary(std::ostream &os) const
{
    uint64_t cycles = totalCycles ? totalCycles : settled;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "profile: %llu cycles, %.1f%% attributed\n",
                  static_cast<unsigned long long>(cycles),
                  attributedPct());
    os << buf;

    struct Row
    {
        std::string label;
        uint64_t cycles;
    };
    std::vector<Row> rows;
    for (const GroupWatch &g : groups)
        rows.push_back({"group " + g.name, g.cycles});
    for (const MachineWatch &m : machines) {
        for (const StateCount &s : m.states)
            rows.push_back({"state " + m.name + "/" + s.name, s.cycles});
        if (m.unattributed)
            rows.push_back({"state " + m.name + "/<unattributed>",
                            m.unattributed});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        if (a.cycles != b.cycles)
            return a.cycles > b.cycles;
        return a.label < b.label;
    });

    if (!rows.empty())
        os << "    cycles       %  location\n";
    for (const Row &r : rows) {
        double pct = cycles ? 100.0 * static_cast<double>(r.cycles) /
                                  static_cast<double>(cycles)
                            : 0.0;
        std::snprintf(buf, sizeof(buf), "  %8llu  %5.1f%%  %s\n",
                      static_cast<unsigned long long>(r.cycles), pct,
                      r.label.c_str());
        os << buf;
    }

    for (const MemWatch &mw : mems) {
        std::snprintf(
            buf, sizeof(buf),
            "  memory %s: %llu read cycles, %llu write cycles\n",
            mw.name.c_str(),
            static_cast<unsigned long long>(mw.readCycles),
            static_cast<unsigned long long>(mw.writeCycles));
        os << buf;
    }
    if (settled) {
        std::snprintf(buf, sizeof(buf),
                      "  engine: %llu comb evals (max %d/cycle, avg "
                      "%.1f/cycle)\n",
                      static_cast<unsigned long long>(evalsTotal),
                      evalsMax,
                      static_cast<double>(evalsTotal) /
                          static_cast<double>(settled));
        os << buf;
    }
}

} // namespace calyx::obs
