#include "obs/vcd.h"

#include <functional>
#include <sstream>

#include "sim/env.h"
#include "support/error.h"

namespace calyx::obs {

using sim::SimProgram;

const char *
vcdScopeName(VcdScope scope)
{
    switch (scope) {
      case VcdScope::Top:   return "top";
      case VcdScope::State: return "state";
      case VcdScope::All:   return "all";
    }
    return "?";
}

VcdScope
parseVcdScope(const std::string &name)
{
    if (name == "top")
        return VcdScope::Top;
    if (name == "state")
        return VcdScope::State;
    if (name == "all")
        return VcdScope::All;
    fatal("--trace-scope: unknown scope '", name,
          "' (options: top, state, all)");
}

namespace {

uint64_t
maskTo(uint64_t value, uint32_t width)
{
    if (width >= 64)
        return value;
    return value & ((uint64_t(1) << width) - 1);
}

} // namespace

VcdWriter::VcdWriter(const SimProgram &prog, std::ostream &os,
                     VcdScope scope)
    : os(os)
{
    // A constant $date (instead of the wall clock) keeps traces of the
    // same design byte-identical across engines and runs — the property
    // the cross-engine tests diff on.
    os << "$date\n    (constant: see docs/observability.md)\n$end\n";
    os << "$version\n    calyx futil --trace\n$end\n";
    os << "$timescale\n    1 ns\n$end\n";

    // One var per traced port, laid out as a scope tree mirroring the
    // flattened instance hierarchy. Each scope body is rendered into a
    // string first so empty scopes (a sub-instance with no state cells
    // under --trace-scope=state) are dropped entirely.
    auto addVar = [&](std::ostream &out, const std::string &name,
                      uint32_t width, uint32_t port) {
        Var v;
        v.port = port;
        v.width = width ? width : 1;
        v.code = nextCode();
        out << "$var wire " << v.width << " " << v.code << " " << name;
        if (v.width > 1)
            out << " [" << v.width - 1 << ":0]";
        out << " $end\n";
        vars.push_back(std::move(v));
    };

    std::function<bool(const SimProgram::Instance &, const std::string &,
                       bool, std::ostream &)>
        emitInstance = [&](const SimProgram::Instance &inst,
                           const std::string &sig_prefix, bool top,
                           std::ostream &out) -> bool {
        bool any = false;

        // Signature ports. The top instance's paths are the bare port
        // names; a sub-instance's alias the parent's cell ports
        // ("pe00.go"), which is also why they are emitted here and not
        // in the parent's scope — same ids, one var.
        if (scope != VcdScope::State || top) {
            for (const auto &p : inst.comp->signature()) {
                addVar(out, p.name.str(), p.width,
                       prog.portId(Symbol(sig_prefix +
                                                  p.name.str())));
                any = true;
            }
        }
        if (scope == VcdScope::Top)
            return any;

        for (const auto &cell : inst.comp->cells()) {
            std::string cell_path = inst.path + cell->name().str();
            if (cell->isPrimitive()) {
                if (scope == VcdScope::State) {
                    sim::PrimModel *m =
                        prog.findModel(Symbol(cell_path));
                    if (!m->registerStorage() && !m->memory())
                        continue;
                }
                out << "$scope module " << cell->name() << " $end\n";
                for (const auto &p : cell->portDefs()) {
                    addVar(out, p.name.str(), p.width,
                           prog.portId(Symbol(cell_path + "." +
                                                      p.name.str())));
                }
                out << "$upscope $end\n";
                any = true;
                continue;
            }
            // Component instance: recurse into the matching sub.
            for (const auto &sub : inst.subs) {
                if (sub->path != cell_path + "/")
                    continue;
                std::ostringstream body;
                if (emitInstance(*sub, cell_path + ".", false, body)) {
                    out << "$scope module " << cell->name() << " $end\n"
                        << body.str() << "$upscope $end\n";
                    any = true;
                }
                break;
            }
        }

        if (scope == VcdScope::All) {
            for (size_t g = 0; g < inst.groupNames.size(); ++g) {
                out << "$scope module " << inst.groupNames[g]
                    << " $end\n";
                addVar(out, "go", 1, inst.groupHoles[g].first);
                addVar(out, "done", 1, inst.groupHoles[g].second);
                out << "$upscope $end\n";
                any = true;
            }
        }
        return any;
    };

    std::ostringstream body;
    emitInstance(prog.root(), "", true, body);
    os << "$scope module " << prog.root().comp->name() << " $end\n"
       << body.str() << "$upscope $end\n";
    os << "$enddefinitions $end\n";
}

std::string
VcdWriter::nextCode()
{
    // Identifier codes per the VCD grammar: printable ASCII 33..126,
    // shortest-first ("!", "\"", ..., "!!", ...).
    uint32_t n = codeCounter++;
    std::string code;
    do {
        code += static_cast<char>(33 + n % 94);
        n /= 94;
    } while (n > 0);
    return code;
}

void
VcdWriter::writeValue(const Var &v, uint64_t value)
{
    if (v.width == 1) {
        os << ((value & 1) ? '1' : '0') << v.code << "\n";
        return;
    }
    os << 'b';
    if (value == 0) {
        os << '0';
    } else {
        int hi = 63 - __builtin_clzll(value);
        for (int b = hi; b >= 0; --b)
            os << (((value >> b) & 1) ? '1' : '0');
    }
    os << ' ' << v.code << "\n";
}

void
VcdWriter::cycleSettled(uint64_t cycle, const uint64_t *vals)
{
    if (!dumpedInitial) {
        os << "#" << cycle << "\n$dumpvars\n";
        for (Var &v : vars) {
            v.last = maskTo(vals[v.port], v.width);
            writeValue(v, v.last);
        }
        os << "$end\n";
        dumpedInitial = true;
        return;
    }
    bool stamped = false;
    for (Var &v : vars) {
        uint64_t cur = maskTo(vals[v.port], v.width);
        if (cur == v.last)
            continue;
        if (!stamped) {
            os << "#" << cycle << "\n";
            stamped = true;
        }
        v.last = cur;
        writeValue(v, cur);
    }
}

void
VcdWriter::finish(uint64_t cycles)
{
    os << "#" << cycles << "\n";
    os.flush();
}

} // namespace calyx::obs
