#include "obs/report.h"

namespace calyx::obs {

json::Value
reportEnvelope(const std::string &file)
{
    json::Value v = json::Value::object();
    v.set("version", json::Value::number(1));
    v.set("file", json::Value::str(file));
    return v;
}

namespace {

json::Value
signedDelta(int delta)
{
    // The Num kind is unsigned; deltas can go negative (passes remove
    // cells/groups), so emit them as reals.
    return json::Value::real(static_cast<double>(delta));
}

} // namespace

json::Value
passTimingsJson(const std::string &pipeline,
                const std::vector<passes::PassRunInfo> &infos)
{
    json::Value c = json::Value::object();
    c.set("pipeline", json::Value::str(pipeline));
    json::Value arr = json::Value::array();
    double total = 0;
    for (const passes::PassRunInfo &info : infos) {
        total += info.seconds;
        json::Value p = json::Value::object();
        p.set("pass", json::Value::str(info.pass));
        p.set("ms", json::Value::real(info.seconds * 1e3));
        p.set("delta_cells",
              signedDelta(info.after.cells - info.before.cells));
        p.set("delta_groups",
              signedDelta(info.after.groups - info.before.groups));
        p.set("delta_control", signedDelta(info.after.controlStatements -
                                           info.before.controlStatements));
        arr.push(std::move(p));
    }
    c.set("passes", std::move(arr));
    c.set("total_ms", json::Value::real(total * 1e3));
    return c;
}

} // namespace calyx::obs
