#ifndef CALYX_OBS_VCD_H
#define CALYX_OBS_VCD_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/observer.h"

namespace calyx::sim {
class SimProgram;
}

namespace calyx::obs {

/**
 * Which signals a VCD trace records (futil --trace-scope=...).
 *
 *  - Top:   only the top component's signature ports.
 *  - State: signature ports plus the ports of every register and
 *           memory primitive — the architectural state, cheap enough
 *           to leave on for big designs.
 *  - All:   every port in the flattened design, including group
 *           go/done holes on pre-lowering programs.
 */
enum class VcdScope { Top, State, All };

const char *vcdScopeName(VcdScope scope);

/** Parse a scope name; fatal() with the valid options on a miss. */
VcdScope parseVcdScope(const std::string &name);

/**
 * SimObserver that streams a Value Change Dump (IEEE 1364 §18) of the
 * observed run. The header — including a constant $date, so the same
 * design traced under different engines or on different days produces
 * byte-identical files — is written at construction; one timestamp per
 * settled cycle follows, with only changed signals re-dumped. Scopes
 * mirror the flattened instance tree: the top component is the root
 * module, each primitive cell and each sub-component instance is a
 * child module, and (on pre-lowering programs) each group is a module
 * holding its go/done holes. See docs/observability.md.
 *
 * Timestamps are in cycles (`$timescale 1 ns` with one ns per cycle);
 * values are sampled post-settle, pre-clock-edge.
 */
class VcdWriter : public SimObserver
{
  public:
    VcdWriter(const sim::SimProgram &prog, std::ostream &os,
              VcdScope scope = VcdScope::All);

    void cycleSettled(uint64_t cycle, const uint64_t *vals) override;
    void finish(uint64_t cycles) override;

  private:
    struct Var
    {
        uint32_t port = 0;  ///< Flat SimProgram port id.
        uint32_t width = 1;
        std::string code;   ///< VCD identifier code.
        uint64_t last = 0;  ///< Value at the previous dump.
    };

    std::string nextCode();
    void writeValue(const Var &v, uint64_t value);

    std::ostream &os;
    std::vector<Var> vars;
    uint32_t codeCounter = 0;
    bool dumpedInitial = false;
};

} // namespace calyx::obs

#endif // CALYX_OBS_VCD_H
