#ifndef CALYX_OBS_PROFILE_H
#define CALYX_OBS_PROFILE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "support/json.h"

namespace calyx::sim {
class SimProgram;
struct SExpr;
}

namespace calyx::obs {

/**
 * Cycle-accurate activity profiler (futil --profile). Attributes every
 * simulated cycle back to source-level control constructs, on both
 * sides of the lowering pipeline:
 *
 *  - Pre-lowering programs (groups still present, run under the control
 *    interpreter): per-group active cycles, counted from the group's
 *    go hole.
 *  - Lowered programs: per-FSM-state occupancy, decoded each cycle
 *    from the surviving FsmMachine realization records (ir/fsm.h) —
 *    the machine's state register value is mapped back through the
 *    realized code layout to the named state, so a profile reads
 *    "2140 cycles in state body of machine control", not "register
 *    fsm0 held 3".
 *
 * Also counts per-memory read/write cycles and accumulates the
 * engine's comb() effort statistics (schedule-node evaluations for
 * levelized, fixed-point passes for jacobi). Results render as a JSON
 * object (report(), schema in docs/observability.md) and a terminal
 * table sorted by cycles (printSummary()).
 */
class Profiler : public SimObserver
{
  public:
    explicit Profiler(const sim::SimProgram &prog);

    void cycleSettled(uint64_t cycle, const uint64_t *vals) override;
    void combStats(uint64_t cycle, int evals) override;
    void finish(uint64_t cycles) override;

    /** The `profile` JSON object (docs/observability.md schema). */
    json::Value report() const;

    /** Human table sorted by cycles, descending. */
    void printSummary(std::ostream &os) const;

    // --- Test accessors ---------------------------------------------
    uint64_t cycles() const { return totalCycles; }
    double attributedPct() const;
    /** Active cycles of group `path` (e.g. "write"); fatal() on miss. */
    uint64_t groupCycles(const std::string &path) const;
    /** Occupancy of `state` in machine `path`; fatal() on miss. */
    uint64_t stateCycles(const std::string &machine_path,
                         const std::string &state) const;

  private:
    struct GroupWatch
    {
        std::string name;   ///< Instance-path-qualified group name.
        uint32_t goHole = 0;
        uint64_t cycles = 0;
    };

    struct StateCount
    {
        std::string name;
        uint64_t cycles = 0;
    };

    struct MachineWatch
    {
        std::string name;     ///< Instance-path-qualified machine name.
        std::string registerCell; ///< "" for register-free machines.
        const char *encoding = "binary";
        bool root = false;    ///< Lives in the top instance.
        uint32_t regPort = 0; ///< State register's `out` port id.
        bool oneHot = false;
        std::vector<StateCount> states;
        /// code -> index into `states` (replicates the realized
        /// layout: entry first, the rest in id order, spans widening).
        std::vector<uint32_t> codeToState;
        uint64_t unattributed = 0;
    };

    struct MemWatch
    {
        std::string name;
        uint32_t writeEn = 0;
        uint64_t readCycles = 0, writeCycles = 0;
        /// Indices into `reads` of the assignments sourcing this
        /// memory's read_data ports.
        std::vector<uint32_t> readAssigns;
    };

    struct ReadWatch
    {
        const sim::SExpr *guard = nullptr;
        uint32_t gateHole = 0; ///< Group go hole, or ~0u (ungated).
    };

    const sim::SimProgram *prog;
    bool groupMode = false;
    std::vector<GroupWatch> groups;
    std::vector<MachineWatch> machines;
    std::vector<MemWatch> mems;
    std::vector<ReadWatch> reads;

    uint64_t totalCycles = 0;       ///< Set by finish().
    uint64_t settled = 0;           ///< cycleSettled() count.
    uint64_t attributedCycles = 0;
    uint64_t evalsTotal = 0;
    int evalsMax = 0;
};

} // namespace calyx::obs

#endif // CALYX_OBS_PROFILE_H
