#ifndef CALYX_OBS_REPORT_H
#define CALYX_OBS_REPORT_H

#include <string>
#include <vector>

#include "passes/pass_manager.h"
#include "support/json.h"

namespace calyx::obs {

/**
 * The unified machine-readable report envelope (docs/observability.md):
 * one JSON document that can carry compile-side instrumentation (pass
 * timings and stats deltas) and sim-side observability (the profiler's
 * output) from a single futil invocation. `futil --pass-timings=json`
 * prints a compile-only envelope; `futil --profile out.json` writes
 * the full one. The future `--serve` metrics endpoint returns this
 * same document.
 *
 * Top-level shape:
 *   { "version": 1,
 *     "file": "<input path>",
 *     "compile": { "pipeline": "...", "passes": [...],
 *                  "total_ms": R },      // when timings were collected
 *     "sim":     { "engine": "...",
 *                  "profile": {...} } }  // when a profiled run happened
 */

/** Start an envelope: {version, file}. */
json::Value reportEnvelope(const std::string &file);

/** The `compile` object for a pipeline run (pass names, per-pass wall
 * milliseconds, cells/groups/control deltas, total). */
json::Value passTimingsJson(const std::string &pipeline,
                            const std::vector<passes::PassRunInfo> &infos);

} // namespace calyx::obs

#endif // CALYX_OBS_REPORT_H
