#ifndef CALYX_OBS_OBSERVER_H
#define CALYX_OBS_OBSERVER_H

#include <cstdint>

namespace calyx::obs {

/**
 * Simulation probe interface (docs/observability.md). Observers attach
 * to a sim::SimState (SimState::addObserver) and are fed by every
 * combinational engine:
 *
 *  - jacobi / levelized: SimState::comb() notifies directly after the
 *    network settles.
 *  - compiled: the generated module is built with a probe callback
 *    (emit/cppsim.h, CppSimOptions::probe) that fires at the end of
 *    its eval(); SimState routes it back here. The probe is emitted
 *    only when observers are attached, so an unobserved compiled run
 *    executes the exact branch-free module it always did.
 *
 * All hooks observe the same dense `vals[]` port array the engines
 * share (ids from SimProgram::portId), so an observer written against
 * one engine behaves identically under the others — the property the
 * cross-engine VCD tests pin down byte-for-byte.
 *
 * Hooks fire once per simulated cycle, after the cycle's values have
 * settled and before the clock edge: register outputs still hold their
 * pre-edge values, and a memory/register write whose enable is high in
 * `vals` commits on the edge that follows the hook.
 */
class SimObserver
{
  public:
    virtual ~SimObserver();

    /**
     * The cycle's combinational network has settled. `cycle` counts
     * from 0; `vals` is the engine's port array, valid only for the
     * duration of the call.
     */
    virtual void cycleSettled(uint64_t cycle, const uint64_t *vals) = 0;

    /**
     * Engine statistics for the same cycle: the value comb() returns —
     * schedule-node evaluations (levelized), fixed-point passes
     * (jacobi), or 1 (compiled). Default: ignore.
     */
    virtual void combStats(uint64_t cycle, int evals);

    /** The run completed after `cycles` cycles. Default: ignore. */
    virtual void finish(uint64_t cycles);
};

} // namespace calyx::obs

#endif // CALYX_OBS_OBSERVER_H
