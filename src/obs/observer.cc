#include "obs/observer.h"

namespace calyx::obs {

// Out-of-line virtuals anchor the vtable in this translation unit.
SimObserver::~SimObserver() = default;

void
SimObserver::combStats(uint64_t, int)
{}

void
SimObserver::finish(uint64_t)
{}

} // namespace calyx::obs
