#include "serve/server.h"

#include <vector>

#include "obs/report.h"
#include "serve/protocol.h"
#include "sim/env.h"
#include "support/error.h"
#include "support/text.h"

namespace calyx::serve {

namespace {

json::Value
statsJson(const ServeOptions &opts, const ServeStats &stats,
          const sim::BatchRunner &runner,
          const cache::CompileService &compiler)
{
    json::Value env = obs::reportEnvelope(opts.file);
    json::Value s = json::Value::object();
    s.set("engine",
          json::Value::str(sim::engineName(runner.options().engine)));
    s.set("lane_tile", json::Value::number(runner.options().laneTile));
    s.set("threads", json::Value::number(runner.options().threads));
    s.set("requests", json::Value::number(stats.requests));
    s.set("runs", json::Value::number(stats.runs));
    s.set("stimuli", json::Value::number(stats.stimuli));
    s.set("compiles", json::Value::number(stats.compiles));
    s.set("errors", json::Value::number(stats.errors));
    s.set("module_loads", json::Value::number(runner.moduleLoads()));
    s.set("modules_from_cache",
          json::Value::boolean(runner.modulesFromCache()));
    // Compile-cache counters, mirroring the module_loads/
    // modules_from_cache proof for the simulation side: a warm stream
    // shows artifacts_from_cache/components_from_cache climbing while
    // passes_run stays put.
    const cache::CompileService::Counters &c = compiler.counters();
    cache::CompileCache::Stats cs = compiler.cacheStats();
    json::Value cj = json::Value::object();
    cj.set("requests", json::Value::number(c.requests));
    cj.set("artifacts_from_raw_text", json::Value::number(c.rawHits));
    cj.set("artifacts_from_cache",
           json::Value::number(c.rawHits + c.artifactHits));
    cj.set("components_from_cache", json::Value::number(c.componentHits));
    cj.set("component_misses", json::Value::number(c.componentMisses));
    cj.set("cache_entries", json::Value::number(cs.entries));
    cj.set("cache_bytes", json::Value::number(cs.bytes));
    cj.set("cache_evictions", json::Value::number(cs.evictions));
    cj.set("disk_hits", json::Value::number(cs.diskHits));
    s.set("compile", std::move(cj));
    env.set("serve", std::move(s));
    return env;
}

json::Value
compileJson(const cache::CompileResult &res, const std::string &backend)
{
    json::Value r = json::Value::object();
    r.set("artifact", json::Value::str(res.artifact));
    r.set("backend", json::Value::str(backend));
    r.set("pipeline", json::Value::str(res.pipeline));
    r.set("components", json::Value::number(res.components));
    r.set("components_from_cache",
          json::Value::number(res.componentsFromCache));
    r.set("artifact_from_cache",
          json::Value::boolean(res.artifactFromCache));
    r.set("raw_text_hit", json::Value::boolean(res.rawTextHit));
    r.set("compile_ms", json::Value::real(res.seconds * 1e3));
    r.set("passes_run", json::Value::number(res.passInfos.size()));
    return r;
}

} // namespace

ServeStats
serve(const sim::SimProgram &prog, std::istream &in, std::ostream &out,
      const ServeOptions &opts)
{
    sim::BatchOptions bo;
    bo.engine = opts.engine;
    bo.threads = opts.threads;
    if (opts.laneTile)
        bo.laneTile = opts.laneTile;
    bo.maxCycles = opts.maxCycles;
    // Resident runner: schedule walk tables and the JIT module are
    // built here, once, before the first request is even read.
    sim::BatchRunner runner(prog, bo);
    // Resident compiler: the compile cache lives for the session, so a
    // stream of mutated programs pays the pass pipeline only for the
    // components that actually changed.
    cache::CompileService compiler(opts.compileCache);

    ServeStats stats;
    std::string payload, frameErr;
    for (;;) {
        FrameStatus fs = readFrame(in, payload, frameErr);
        if (fs == FrameStatus::Eof)
            break;
        if (fs == FrameStatus::Bad) {
            ++stats.errors;
            writeFrame(out, errorResponse("bad frame: " + frameErr));
            break; // Frame boundaries are gone; session over.
        }
        ++stats.requests;
        try {
            json::Value req = json::parse(payload);
            if (req.kind() != json::Value::Kind::Obj)
                fatal("request must be a JSON object");
            const json::Value *type = req.find("type");
            if (!type)
                fatal("request has no 'type'");
            const std::string &t = type->asStr();
            if (t == "ping") {
                writeFrame(out,
                           okResponse("ping", json::Value::str("pong")));
            } else if (t == "run") {
                const json::Value *batch = req.find("batch");
                if (!batch)
                    fatal("run request has no 'batch'");
                std::vector<sim::Stimulus> stimuli =
                    parseStimuli(*batch);
                if (stimuli.empty())
                    fatal("run request batch is empty");
                std::vector<sim::LaneResult> lanes = runner.run(stimuli);
                ++stats.runs;
                stats.stimuli += stimuli.size();
                writeFrame(out, okResponse(
                                    "run", lanesJson(lanes,
                                                     runner.regPaths(),
                                                     runner.memPaths())));
            } else if (t == "compile") {
                const json::Value *src = req.find("source");
                if (!src)
                    fatal("compile request has no 'source'");
                cache::CompileRequest creq;
                creq.source = src->asStr();
                if (const json::Value *p = req.find("pipeline"))
                    creq.pipeline = p->asStr();
                if (const json::Value *b = req.find("backend"))
                    creq.backend = b->asStr();
                creq.threads = opts.threads;
                cache::CompileResult cres = compiler.compile(creq);
                ++stats.compiles;
                writeFrame(out, okResponse(
                                    "compile",
                                    compileJson(cres, creq.backend)));
            } else if (t == "stats") {
                writeFrame(out,
                           okResponse("stats", statsJson(opts, stats,
                                                         runner,
                                                         compiler)));
            } else if (t == "shutdown") {
                writeFrame(out, okResponse("shutdown",
                                           json::Value::str("bye")));
                break;
            } else {
                // Mirror the pass/backend registry UX: name the
                // closest known request type when this looks like a
                // typo.
                static const std::vector<std::string> known = {
                    "ping", "run", "compile", "stats", "shutdown"};
                std::string hint = suggestClosest(t, known);
                fatal("unknown request type '", t, "'",
                      hint.empty() ? ""
                                   : " (did you mean '" + hint + "'?)",
                      "; want ping, run, compile, stats, or shutdown");
            }
        } catch (const Error &e) {
            // Bad request, good framing: reject and keep serving.
            ++stats.errors;
            writeFrame(out, errorResponse(e.what()));
        }
    }
    return stats;
}

void
rejectObserverFlag(const std::string &observer_flag,
                   const std::string &mode_flag)
{
    fatal(observer_flag, " cannot be combined with ", mode_flag, ": ",
          observer_flag == "--trace" ? "a VCD trace observes one scalar "
                                       "stimulus trajectory"
                                     : "the profiler observes one scalar "
                                       "stimulus trajectory",
          ", but ", mode_flag,
          " advances many lanes per pass and has no per-lane probe "
          "hookup (docs/observability.md). Drop ", observer_flag,
          " or run a scalar --sim instead.");
}

} // namespace calyx::serve
