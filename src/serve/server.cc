#include "serve/server.h"

#include "obs/report.h"
#include "serve/protocol.h"
#include "sim/env.h"
#include "support/error.h"

namespace calyx::serve {

namespace {

json::Value
statsJson(const ServeOptions &opts, const ServeStats &stats,
          const sim::BatchRunner &runner)
{
    json::Value env = obs::reportEnvelope(opts.file);
    json::Value s = json::Value::object();
    s.set("engine",
          json::Value::str(sim::engineName(runner.options().engine)));
    s.set("lane_tile", json::Value::number(runner.options().laneTile));
    s.set("threads", json::Value::number(runner.options().threads));
    s.set("requests", json::Value::number(stats.requests));
    s.set("runs", json::Value::number(stats.runs));
    s.set("stimuli", json::Value::number(stats.stimuli));
    s.set("errors", json::Value::number(stats.errors));
    s.set("module_loads", json::Value::number(runner.moduleLoads()));
    s.set("modules_from_cache",
          json::Value::boolean(runner.modulesFromCache()));
    env.set("serve", std::move(s));
    return env;
}

} // namespace

ServeStats
serve(const sim::SimProgram &prog, std::istream &in, std::ostream &out,
      const ServeOptions &opts)
{
    sim::BatchOptions bo;
    bo.engine = opts.engine;
    bo.threads = opts.threads;
    if (opts.laneTile)
        bo.laneTile = opts.laneTile;
    bo.maxCycles = opts.maxCycles;
    // Resident runner: schedule walk tables and the JIT module are
    // built here, once, before the first request is even read.
    sim::BatchRunner runner(prog, bo);

    ServeStats stats;
    std::string payload, frameErr;
    for (;;) {
        FrameStatus fs = readFrame(in, payload, frameErr);
        if (fs == FrameStatus::Eof)
            break;
        if (fs == FrameStatus::Bad) {
            ++stats.errors;
            writeFrame(out, errorResponse("bad frame: " + frameErr));
            break; // Frame boundaries are gone; session over.
        }
        ++stats.requests;
        try {
            json::Value req = json::parse(payload);
            if (req.kind() != json::Value::Kind::Obj)
                fatal("request must be a JSON object");
            const json::Value *type = req.find("type");
            if (!type)
                fatal("request has no 'type'");
            const std::string &t = type->asStr();
            if (t == "ping") {
                writeFrame(out,
                           okResponse("ping", json::Value::str("pong")));
            } else if (t == "run") {
                const json::Value *batch = req.find("batch");
                if (!batch)
                    fatal("run request has no 'batch'");
                std::vector<sim::Stimulus> stimuli =
                    parseStimuli(*batch);
                if (stimuli.empty())
                    fatal("run request batch is empty");
                std::vector<sim::LaneResult> lanes = runner.run(stimuli);
                ++stats.runs;
                stats.stimuli += stimuli.size();
                writeFrame(out, okResponse(
                                    "run", lanesJson(lanes,
                                                     runner.regPaths(),
                                                     runner.memPaths())));
            } else if (t == "stats") {
                writeFrame(out, okResponse(
                                    "stats",
                                    statsJson(opts, stats, runner)));
            } else if (t == "shutdown") {
                writeFrame(out, okResponse("shutdown",
                                           json::Value::str("bye")));
                break;
            } else {
                fatal("unknown request type '", t,
                      "' (want ping, run, stats, or shutdown)");
            }
        } catch (const Error &e) {
            // Bad request, good framing: reject and keep serving.
            ++stats.errors;
            writeFrame(out, errorResponse(e.what()));
        }
    }
    return stats;
}

void
rejectObserverFlag(const std::string &observer_flag,
                   const std::string &mode_flag)
{
    fatal(observer_flag, " cannot be combined with ", mode_flag, ": ",
          observer_flag == "--trace" ? "a VCD trace observes one scalar "
                                       "stimulus trajectory"
                                     : "the profiler observes one scalar "
                                       "stimulus trajectory",
          ", but ", mode_flag,
          " advances many lanes per pass and has no per-lane probe "
          "hookup (docs/observability.md). Drop ", observer_flag,
          " or run a scalar --sim instead.");
}

} // namespace calyx::serve
