#include "serve/protocol.h"

#include "support/error.h"

namespace calyx::serve {

FrameStatus
readFrame(std::istream &in, std::string &payload, std::string &err)
{
    // Length line: ASCII decimal digits terminated by '\n'. Read
    // byte-wise so a bad byte is diagnosed exactly and nothing past
    // the frame is consumed.
    uint64_t len = 0;
    size_t digits = 0;
    int c;
    while ((c = in.get()) != std::istream::traits_type::eof()) {
        if (c == '\n')
            break;
        if (c == '\r')
            continue; // Tolerate CRLF clients.
        if (c < '0' || c > '9') {
            err = std::string("frame length line holds non-digit byte "
                              "0x") +
                  "0123456789abcdef"[(c >> 4) & 0xf] +
                  "0123456789abcdef"[c & 0xf] +
                  " (expected '<decimal length>\\n<payload>')";
            return FrameStatus::Bad;
        }
        len = len * 10 + uint64_t(c - '0');
        if (++digits > 12 || len > maxFrameBytes) {
            err = "frame length exceeds the " +
                  std::to_string(maxFrameBytes) + "-byte limit";
            return FrameStatus::Bad;
        }
    }
    if (c == std::istream::traits_type::eof()) {
        if (digits == 0) {
            err.clear();
            return FrameStatus::Eof;
        }
        err = "stream ended inside a frame length line";
        return FrameStatus::Bad;
    }
    if (digits == 0) {
        err = "empty frame length line";
        return FrameStatus::Bad;
    }
    payload.resize(len);
    in.read(payload.data(), static_cast<std::streamsize>(len));
    if (static_cast<uint64_t>(in.gcount()) != len) {
        err = "stream ended after " + std::to_string(in.gcount()) +
              " of " + std::to_string(len) + " payload bytes";
        return FrameStatus::Bad;
    }
    err.clear();
    return FrameStatus::Ok;
}

void
writeFrame(std::ostream &out, const std::string &payload)
{
    out << payload.size() << '\n' << payload;
    out.flush();
}

std::vector<sim::Stimulus>
parseStimuli(const json::Value &batch)
{
    if (batch.kind() != json::Value::Kind::Arr)
        fatal("serve: 'batch' must be an array of stimulus objects");
    std::vector<sim::Stimulus> out;
    out.reserve(batch.items().size());
    for (const json::Value &item : batch.items()) {
        if (item.kind() != json::Value::Kind::Obj) {
            fatal("serve: stimulus ", out.size(),
                  " is not an object (want {\"mems\": {...}})");
        }
        sim::Stimulus s;
        if (const json::Value *mems = item.find("mems")) {
            if (mems->kind() != json::Value::Kind::Obj)
                fatal("serve: stimulus ", out.size(),
                      ": 'mems' must map cell paths to word arrays");
            for (const auto &[path, words] : mems->members()) {
                if (words.kind() != json::Value::Kind::Arr)
                    fatal("serve: stimulus ", out.size(), ": memory '",
                          path, "' must be an array of words");
                std::vector<uint64_t> image;
                image.reserve(words.items().size());
                for (const json::Value &w : words.items())
                    image.push_back(w.asNum());
                s.mems.emplace_back(path, std::move(image));
            }
        }
        out.push_back(std::move(s));
    }
    return out;
}

json::Value
lanesJson(const std::vector<sim::LaneResult> &lanes,
          const std::vector<std::string> &regPaths,
          const std::vector<std::string> &memPaths)
{
    json::Value arr = json::Value::array();
    for (const sim::LaneResult &lane : lanes) {
        json::Value obj = json::Value::object();
        obj.set("cycles", json::Value::number(lane.cycles));
        json::Value regs = json::Value::object();
        for (size_t r = 0; r < lane.regs.size(); ++r)
            regs.set(regPaths[r], json::Value::number(lane.regs[r]));
        obj.set("regs", std::move(regs));
        json::Value mems = json::Value::object();
        for (size_t m = 0; m < lane.mems.size(); ++m) {
            json::Value words = json::Value::array();
            for (uint64_t w : lane.mems[m])
                words.push(json::Value::number(w));
            mems.set(memPaths[m], std::move(words));
        }
        obj.set("mems", std::move(mems));
        arr.push(std::move(obj));
    }
    json::Value result = json::Value::object();
    result.set("lanes", std::move(arr));
    return result;
}

std::string
errorResponse(const std::string &msg)
{
    json::Value v = json::Value::object();
    v.set("ok", json::Value::boolean(false));
    v.set("error", json::Value::str(msg));
    return v.str();
}

std::string
okResponse(const std::string &type, json::Value result)
{
    json::Value v = json::Value::object();
    v.set("ok", json::Value::boolean(true));
    v.set("type", json::Value::str(type));
    v.set("result", std::move(result));
    return v.str();
}

} // namespace calyx::serve
