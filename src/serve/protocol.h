#ifndef CALYX_SERVE_PROTOCOL_H
#define CALYX_SERVE_PROTOCOL_H

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "sim/batch.h"
#include "support/json.h"

namespace calyx::serve {

/**
 * Wire framing for `futil --serve` (docs/simulation.md): every message
 * in either direction is one frame — the payload's byte length in
 * ASCII decimal, a single '\n', then exactly that many payload bytes.
 * Length-prefixing keeps the reader trivial (no JSON-boundary
 * scanning) and lets a client stream requests back to back over the
 * same pipe. Payloads are JSON documents:
 *
 *   request  := { "type": "ping" }
 *             | { "type": "run", "batch": [ stimulus, ... ] }
 *             | { "type": "compile", "source": "<calyx program>",
 *                 "pipeline"?: "<spec>", "backend"?: "<name>" }
 *             | { "type": "stats" }
 *             | { "type": "shutdown" }
 *   stimulus := { "mems": { "<cell path>": [ <word>, ... ], ... } }
 *
 *   response := { "ok": true,  "type": "<request type>",
 *                 "result": ... }
 *             | { "ok": false, "error": "<message>" }
 *
 * A run response's result is { "lanes": [ lane, ... ] } in batch
 * order, lane := { "cycles": N, "regs": { "<cell path>": value },
 * "mems": { "<cell path>": [ <word>, ... ] } } — the same
 * architectural snapshot a scalar CycleSim::run() leaves behind.
 *
 * A compile response's result is { "artifact": "<emitted text>",
 * "backend", "pipeline" (normalized spec), "components",
 * "components_from_cache", "artifact_from_cache", "raw_text_hit",
 * "compile_ms", "passes_run" } — the artifact is byte-identical to
 * what `futil -b <backend> -p <spec>` emits for the same source
 * (docs/service.md has the cache-key contract). Unknown request types
 * are rejected with a did-you-mean suggestion.
 */

/// 64 MiB: a frame length above this is framing garbage, not a batch.
constexpr uint64_t maxFrameBytes = 64ull << 20;

enum class FrameStatus
{
    Ok,  ///< `payload` holds one complete frame.
    Eof, ///< Clean end of stream before any length byte.
    Bad, ///< Malformed framing (see `err`); the stream is unusable.
};

/** Read one length-prefixed frame. Framing errors are unrecoverable
 * by design: after a bad length line there is no way to find the next
 * frame boundary, so the server answers once and closes. */
FrameStatus readFrame(std::istream &in, std::string &payload,
                      std::string &err);

/** Write one frame and flush (clients block on whole responses). */
void writeFrame(std::ostream &out, const std::string &payload);

/** Decode a request's `batch` array into runner stimuli. fatal()s on
 * shape errors (non-array batch, non-object stimulus, bad word). The
 * memory paths are validated later by the runner itself, which knows
 * the design's memories. */
std::vector<sim::Stimulus> parseStimuli(const json::Value &batch);

/** Lane results as the response `result` object (batch order). */
json::Value lanesJson(const std::vector<sim::LaneResult> &lanes,
                      const std::vector<std::string> &regPaths,
                      const std::vector<std::string> &memPaths);

/** { "ok": false, "error": msg } serialized. */
std::string errorResponse(const std::string &msg);

/** { "ok": true, "type": type, "result": result } serialized. */
std::string okResponse(const std::string &type, json::Value result);

} // namespace calyx::serve

#endif // CALYX_SERVE_PROTOCOL_H
