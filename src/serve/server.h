#ifndef CALYX_SERVE_SERVER_H
#define CALYX_SERVE_SERVER_H

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "cache/compile_cache.h"
#include "sim/batch.h"

namespace calyx::sim {
class SimProgram;
}

namespace calyx::serve {

struct ServeOptions
{
    sim::Engine engine = sim::Engine::Compiled;
    unsigned threads = 1;
    /// 0 keeps the BatchOptions default (fixed compiled lane width).
    uint32_t laneTile = 0;
    uint64_t maxCycles = 50'000'000;
    /// Input path, echoed in the stats report envelope.
    std::string file;
    /// Compile-cache configuration for `compile` requests (the default
    /// is memory-only; set diskDir for a persistent tier).
    cache::CompileCache::Config compileCache;
};

/** Request counters, returned when the serve loop ends and reported
 * live by a `stats` request. */
struct ServeStats
{
    uint64_t requests = 0; ///< Well-framed requests (any outcome).
    uint64_t runs = 0;     ///< Completed run requests.
    uint64_t stimuli = 0;  ///< Stimuli across completed runs.
    uint64_t compiles = 0; ///< Completed compile requests.
    uint64_t errors = 0;   ///< Rejected requests (framing, JSON, shape).
};

/**
 * The `futil --serve` loop: a resident compile + stimulus-stream
 * service. One BatchRunner — schedule, driver tables, and JIT-compiled
 * lane module — is built up front and reused for every `run` request,
 * so a stream of stimulus batches pays compilation exactly once (the
 * `stats` request reports module_loads/modules_from_cache to prove
 * it), and one cache::CompileService answers `compile` requests
 * (source + pipeline spec + backend in, emitted artifact out) with
 * content-addressed caching and incremental per-component reuse, so a
 * stream of mutated programs is served from memory (`stats` mirrors
 * the cache-hit counters under "compile"). Requests and responses are
 * length-prefixed JSON frames (serve/protocol.h) over plain streams:
 * stdin/stdout under futil, stringstreams under test, a socketpair
 * behind inetd-style supervision — the loop does not care.
 *
 * Error handling is two-tier: a frame that parses but holds a bad
 * request (malformed JSON, unknown type, bad stimulus shape, unknown
 * memory path) gets an {"ok": false} response and the loop continues
 * serving; broken framing gets one final error response and ends the
 * session, since frame boundaries are unrecoverable. A `shutdown`
 * request or clean EOF ends the loop normally.
 */
ServeStats serve(const sim::SimProgram &prog, std::istream &in,
                 std::ostream &out, const ServeOptions &opts);

/**
 * Reject an observer flag combined with batched execution. VCD
 * tracing (and the profiler) observe one scalar trajectory; a batched
 * or serve run advances many lanes at once and has no probe hookup
 * (docs/observability.md), so the combination fatal()s with both flag
 * names instead of silently observing lane 0.
 */
[[noreturn]] void rejectObserverFlag(const std::string &observer_flag,
                                     const std::string &mode_flag);

} // namespace calyx::serve

#endif // CALYX_SERVE_SERVER_H
