#include "emit/backend.h"

#include <sstream>

#include "support/error.h"
#include "support/text.h"

namespace calyx::emit {

std::vector<std::pair<PortRef, std::vector<const Assignment *>>>
groupAssignmentsByDst(const std::vector<Assignment> &assigns)
{
    std::vector<std::pair<PortRef, std::vector<const Assignment *>>> groups;
    std::map<PortRef, size_t> index;
    for (const auto &a : assigns) {
        auto [it, inserted] = index.try_emplace(a.dst, groups.size());
        if (inserted)
            groups.emplace_back(a.dst,
                                std::vector<const Assignment *>{});
        groups[it->second].second.push_back(&a);
    }
    return groups;
}

std::string
Backend::emitString(const Context &ctx) const
{
    std::ostringstream os;
    emit(ctx, os);
    return os.str();
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::registerBackend(Entry entry)
{
    if (entries.count(entry.name))
        fatal("backend '", entry.name, "' registered twice");
    std::string name = entry.name;
    entries.emplace(std::move(name), std::move(entry));
}

bool
BackendRegistry::has(const std::string &name) const
{
    return entries.count(name) > 0;
}

const BackendRegistry::Entry *
BackendRegistry::find(const std::string &name) const
{
    auto it = entries.find(name);
    return it == entries.end() ? nullptr : &it->second;
}

std::unique_ptr<Backend>
BackendRegistry::create(const std::string &name) const
{
    const Entry *e = find(name);
    if (!e) {
        std::string hint = suggest(name);
        fatal("unknown backend '", name, "'",
              hint.empty() ? "" : " (did you mean '" + hint + "'?)",
              "; run with --list-backends for the full list");
    }
    return e->factory();
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::vector<std::string> result;
    for (const auto &[name, _] : entries)
        result.push_back(name);
    return result; // std::map iteration is already sorted
}

std::string
BackendRegistry::suggest(const std::string &unknown) const
{
    return suggestClosest(unknown, names());
}

} // namespace calyx::emit
