#ifndef CALYX_EMIT_FIRRTL_H
#define CALYX_EMIT_FIRRTL_H

#include <ostream>
#include <string>

#include "emit/backend.h"
#include "ir/context.h"

namespace calyx::emit {

/**
 * FIRRTL backend: translates control-free Calyx (flat guarded
 * assignments) into a FIRRTL circuit, mirroring the Verilog backend's
 * structure. Each component maps to a module; each cell to an instance
 * of a per-(primitive, parameters) specialized module; each driven port
 * to a `mux` tree over its guarded assignments.
 *
 * Combinational primitives and std_reg are expressed directly in
 * FIRRTL; the remaining stateful primitives (memories, pipelined
 * multiplier/divider, sqrt) and extern primitives become `extmodule`
 * black boxes whose `defname` points at the SystemVerilog library the
 * verilog backend emits. Registered as `firrtl`.
 */
class FirrtlBackend : public Backend
{
  public:
    /** Emit the whole circuit (primitive specializations + components). */
    void emit(const Context &ctx, std::ostream &os) const override;

    /** Emit a single component as a FIRRTL module. */
    static void emitComponent(const Component &comp, const Context &ctx,
                              std::ostream &os);
};

} // namespace calyx::emit

#endif // CALYX_EMIT_FIRRTL_H
