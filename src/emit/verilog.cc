#include "emit/verilog.h"

#include "support/error.h"

namespace calyx::emit {

namespace {

std::string
wireName(const PortRef &p)
{
    switch (p.kind) {
      case PortRef::Kind::This:
        return p.port;
      case PortRef::Kind::Cell:
        return p.parent + "_" + p.port;
      case PortRef::Kind::Const:
        return std::to_string(p.width) + "'d" + std::to_string(p.value);
      case PortRef::Kind::Hole:
        fatal("verilog backend: residual hole ", p.str(),
              " (run RemoveGroups first)");
    }
    panic("bad PortRef kind");
}

std::string
guardExpr(const GuardPtr &g)
{
    switch (g->kind()) {
      case Guard::Kind::True:
        return "1'd1";
      case Guard::Kind::Port:
        return wireName(g->port());
      case Guard::Kind::Not:
        return "~(" + guardExpr(g->left()) + ")";
      case Guard::Kind::And:
        return "(" + guardExpr(g->left()) + " & " +
               guardExpr(g->right()) + ")";
      case Guard::Kind::Or:
        return "(" + guardExpr(g->left()) + " | " +
               guardExpr(g->right()) + ")";
      case Guard::Kind::Cmp:
        return "(" + wireName(g->lhs()) + " " +
               Guard::cmpOpStr(g->cmpOp()) + " " + wireName(g->rhs()) +
               ")";
    }
    panic("bad guard kind");
}

} // namespace

void
VerilogBackend::emitComponent(const Component &comp, const Context &ctx,
                              std::ostream &os)
{
    if (!comp.groups().empty())
        fatal("verilog backend: component ", comp.name(),
              " still has groups (run the compilation pipeline first)");

    // Module header.
    os << "module " << comp.name() << "(\n";
    os << "  input logic clk";
    for (const auto &p : comp.signature()) {
        os << ",\n  "
           << (p.dir == Direction::Input ? "input" : "output")
           << " logic [" << p.width - 1 << ":0] " << p.name;
    }
    os << "\n);\n";

    // Wire declarations for every cell port.
    for (const auto &cell : comp.cells()) {
        for (const auto &p : cell->portDefs()) {
            os << "  logic [" << p.width - 1 << ":0] " << cell->name()
               << "_" << p.name << ";\n";
        }
    }

    // Cell instantiations.
    for (const auto &cell : comp.cells()) {
        if (cell->isPrimitive()) {
            const PrimitiveDef &def = ctx.primitives().get(cell->type());
            os << "  " << cell->type() << " #(";
            for (size_t i = 0; i < def.params.size(); ++i) {
                if (i)
                    os << ", ";
                os << "." << def.params[i] << "(" << cell->params()[i]
                   << ")";
            }
            os << ") " << cell->name() << "(.clk(clk)";
        } else {
            os << "  " << cell->type() << " " << cell->name()
               << "(.clk(clk)";
        }
        for (const auto &p : cell->portDefs())
            os << ", ." << p.name << "(" << cell->name() << "_" << p.name
               << ")";
        os << ");\n";
    }

    // Guarded assignments become mux trees per destination.
    for (const auto &[dst, assigns] :
         groupAssignmentsByDst(comp.continuousAssignments())) {
        os << "  assign " << wireName(dst) << " =\n";
        for (const auto *a : assigns) {
            os << "    " << guardExpr(a->guard) << " ? "
               << wireName(a->src) << " :\n";
        }
        os << "    '0;\n";
    }
    os << "endmodule\n";
}

void
VerilogBackend::emitPrimitives(const Context &ctx, std::ostream &os)
{
    os << R"(// Calyx standard primitive library.
module std_const #(parameter WIDTH = 32, parameter VALUE = 0)
  (input logic clk, output logic [WIDTH-1:0] out);
  assign out = VALUE;
endmodule

module std_wire #(parameter WIDTH = 32)
  (input logic clk, input logic [WIDTH-1:0] in,
   output logic [WIDTH-1:0] out);
  assign out = in;
endmodule

module std_slice #(parameter IN_WIDTH = 32, parameter OUT_WIDTH = 32)
  (input logic clk, input logic [IN_WIDTH-1:0] in,
   output logic [OUT_WIDTH-1:0] out);
  assign out = in[OUT_WIDTH-1:0];
endmodule

module std_pad #(parameter IN_WIDTH = 32, parameter OUT_WIDTH = 32)
  (input logic clk, input logic [IN_WIDTH-1:0] in,
   output logic [OUT_WIDTH-1:0] out);
  assign out = {{(OUT_WIDTH-IN_WIDTH){1'b0}}, in};
endmodule

module std_not #(parameter WIDTH = 32)
  (input logic clk, input logic [WIDTH-1:0] in,
   output logic [WIDTH-1:0] out);
  assign out = ~in;
endmodule

module std_reg #(parameter WIDTH = 32)
  (input logic clk, input logic [WIDTH-1:0] in, input logic write_en,
   output logic [WIDTH-1:0] out, output logic done);
  always_ff @(posedge clk) begin
    if (write_en) begin out <= in; done <= 1'd1; end
    else done <= 1'd0;
  end
endmodule

module std_mem_d1 #(parameter WIDTH = 32, parameter SIZE = 16,
                    parameter IDX_SIZE = 4)
  (input logic clk, input logic [IDX_SIZE-1:0] addr0,
   input logic [WIDTH-1:0] write_data, input logic write_en,
   output logic [WIDTH-1:0] read_data, output logic done,
   input logic [IDX_SIZE-1:0] addr0_1,
   output logic [WIDTH-1:0] read_data_1);
  logic [WIDTH-1:0] mem[SIZE-1:0];
  assign read_data = mem[addr0];
  assign read_data_1 = mem[addr0_1];
  always_ff @(posedge clk) begin
    if (write_en) begin mem[addr0] <= write_data; done <= 1'd1; end
    else done <= 1'd0;
  end
endmodule

module std_mem_d2 #(parameter WIDTH = 32, parameter D0_SIZE = 4,
                    parameter D1_SIZE = 4, parameter D0_IDX_SIZE = 2,
                    parameter D1_IDX_SIZE = 2)
  (input logic clk, input logic [D0_IDX_SIZE-1:0] addr0,
   input logic [D1_IDX_SIZE-1:0] addr1,
   input logic [WIDTH-1:0] write_data, input logic write_en,
   output logic [WIDTH-1:0] read_data, output logic done,
   input logic [D0_IDX_SIZE-1:0] addr0_1,
   input logic [D1_IDX_SIZE-1:0] addr1_1,
   output logic [WIDTH-1:0] read_data_1);
  logic [WIDTH-1:0] mem[D0_SIZE*D1_SIZE-1:0];
  assign read_data = mem[addr0 * D1_SIZE + addr1];
  assign read_data_1 = mem[addr0_1 * D1_SIZE + addr1_1];
  always_ff @(posedge clk) begin
    if (write_en) begin
      mem[addr0 * D1_SIZE + addr1] <= write_data; done <= 1'd1;
    end else done <= 1'd0;
  end
endmodule

module std_mult_pipe #(parameter WIDTH = 32)
  (input logic clk, input logic [WIDTH-1:0] left,
   input logic [WIDTH-1:0] right, input logic go,
   output logic [WIDTH-1:0] out, output logic done);
  logic [WIDTH-1:0] a, b;
  logic [2:0] count;
  logic busy;
  always_ff @(posedge clk) begin
    done <= 1'd0;
    if (busy) begin
      count <= count - 3'd1;
      if (count == 3'd1) begin
        out <= a * b; busy <= 1'd0; done <= 1'd1;
      end
    end else if (go) begin
      a <= left; b <= right; busy <= 1'd1; count <= 3'd3;
    end
  end
endmodule

module std_div_pipe #(parameter WIDTH = 32)
  (input logic clk, input logic [WIDTH-1:0] left,
   input logic [WIDTH-1:0] right, input logic go,
   output logic [WIDTH-1:0] out_quotient,
   output logic [WIDTH-1:0] out_remainder, output logic done);
  logic [WIDTH-1:0] a, b;
  logic [3:0] count;
  logic busy;
  always_ff @(posedge clk) begin
    done <= 1'd0;
    if (busy) begin
      count <= count - 4'd1;
      if (count == 4'd1) begin
        out_quotient <= (b == 0) ? '1 : a / b;
        out_remainder <= (b == 0) ? a : a % b;
        busy <= 1'd0; done <= 1'd1;
      end
    end else if (go) begin
      a <= left; b <= right; busy <= 1'd1; count <= 4'd7;
    end
  end
endmodule

)";
    // Binary / comparison primitives share a template.
    struct Entry
    {
        const char *name;
        const char *expr;
        bool cmp;
    };
    static const Entry entries[] = {
        {"std_add", "left + right", false},
        {"std_sub", "left - right", false},
        {"std_and", "left & right", false},
        {"std_or", "left | right", false},
        {"std_xor", "left ^ right", false},
        {"std_lsh", "left << right", false},
        {"std_rsh", "left >> right", false},
        {"std_eq", "left == right", true},
        {"std_neq", "left != right", true},
        {"std_lt", "left < right", true},
        {"std_gt", "left > right", true},
        {"std_le", "left <= right", true},
        {"std_ge", "left >= right", true},
    };
    for (const auto &e : entries) {
        os << "module " << e.name << " #(parameter WIDTH = 32)\n"
           << "  (input logic clk, input logic [WIDTH-1:0] left,\n"
           << "   input logic [WIDTH-1:0] right,\n"
           << "   output logic " << (e.cmp ? "" : "[WIDTH-1:0] ")
           << "out);\n"
           << "  assign out = " << e.expr << ";\n"
           << "endmodule\n\n";
    }
    // Extern primitives: reference their implementation file.
    for (const auto &[name, def] : ctx.primitives().all()) {
        if (!def.externFile.empty())
            os << "// extern primitive " << name << " provided by "
               << def.externFile << "\n";
    }
}

void
VerilogBackend::emit(const Context &ctx, std::ostream &os) const
{
    emitPrimitives(ctx, os);
    for (const auto &comp : ctx.components()) {
        emitComponent(*comp, ctx, os);
        os << "\n";
    }
}

namespace {
BackendRegistration<VerilogBackend> registration{
    "verilog", "Synthesizable SystemVerilog (lowered programs only)",
    ".sv", /*requires_lowered=*/true};
} // namespace

} // namespace calyx::emit
