#ifndef CALYX_EMIT_BACKEND_H
#define CALYX_EMIT_BACKEND_H

#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "ir/context.h"

namespace calyx::emit {

/**
 * Group continuous assignments by destination port, preserving
 * first-seen program order. This is the shape HDL backends need: each
 * entry becomes one mux tree over the destination's guarded
 * assignments (the unique-driver requirement makes in-group order
 * irrelevant).
 */
std::vector<std::pair<PortRef, std::vector<const Assignment *>>>
groupAssignmentsByDst(const std::vector<Assignment> &assigns);

/**
 * A code-generation backend (paper §6: Calyx is *infrastructure* — the
 * IL is the stable middle and emitters plug in around it). A backend
 * turns a Context into one textual artifact: SystemVerilog, FIRRTL, a
 * Graphviz structure graph, a JSON netlist, or the Calyx IL itself.
 *
 * Backends mirror the pass registry (src/passes/registry.h): every
 * backend self-registers at static-initialization time with a
 * kebab-case name, a description, and a preferred file extension, so
 * drivers discover emitters by name (`futil -b <name>`) instead of
 * hard-coding an if/else per format.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Emit the whole program to `os`. */
    virtual void emit(const Context &ctx, std::ostream &os) const = 0;

    /** Convenience: emit into a string. */
    std::string emitString(const Context &ctx) const;
};

/** Global registry of named backends. */
class BackendRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Backend>()>;

    struct Entry
    {
        std::string name;
        std::string description;
        /** Preferred output file extension, e.g. ".sv". */
        std::string fileExtension;
        /**
         * Whether the backend only accepts fully-lowered programs
         * (flat guarded assignments: no groups, no control).
         */
        bool requiresLowered = false;
        Factory factory;
    };

    /** The process-wide registry. */
    static BackendRegistry &instance();

    /** Register a backend; duplicate names are a fatal error. */
    void registerBackend(Entry entry);

    bool has(const std::string &name) const;

    /** Entry for a registered backend, or nullptr. */
    const Entry *find(const std::string &name) const;

    /**
     * Instantiate a registered backend. Unknown names are a fatal
     * error with a did-you-mean suggestion.
     */
    std::unique_ptr<Backend> create(const std::string &name) const;

    /** All registered backend names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Closest registered backend name by edit distance, or "" when
     * nothing is near enough to be a plausible typo.
     */
    std::string suggest(const std::string &unknown) const;

  private:
    BackendRegistry() = default;

    std::map<std::string, Entry> entries;
};

/**
 * Static self-registration helper: a backend translation unit declares
 *
 *   namespace { BackendRegistration<DotBackend> reg{
 *       "dot", "Graphviz structure graph", ".dot"}; }
 *
 * and the backend becomes available to every driver by name.
 */
template <typename B> struct BackendRegistration
{
    BackendRegistration(std::string name, std::string description,
                        std::string file_extension,
                        bool requires_lowered = false)
    {
        BackendRegistry::Entry e;
        e.name = std::move(name);
        e.description = std::move(description);
        e.fileExtension = std::move(file_extension);
        e.requiresLowered = requires_lowered;
        e.factory = [] { return std::make_unique<B>(); };
        BackendRegistry::instance().registerBackend(std::move(e));
    }
};

} // namespace calyx::emit

#endif // CALYX_EMIT_BACKEND_H
