#include "emit/json_netlist.h"


#include "support/error.h"
#include "support/json.h"

namespace calyx::emit {

namespace {

constexpr const char *formatName = "calyx-netlist";
constexpr uint64_t formatVersion = 1;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

json::Value
attrsToJson(const Attributes &attrs)
{
    json::Value obj = json::Value::object();
    for (const auto &[name, value] : attrs.all()) {
        if (value < 0)
            fatal("json-netlist: negative attribute value for '", name,
                  "' is not representable");
        obj.set(name, json::Value::number(static_cast<uint64_t>(value)));
    }
    return obj;
}

json::Value
refToJson(const PortRef &ref)
{
    json::Value obj = json::Value::object();
    switch (ref.kind) {
      case PortRef::Kind::This:
        obj.set("kind", json::Value::str("this"));
        obj.set("port", json::Value::str(ref.port));
        break;
      case PortRef::Kind::Cell:
        obj.set("kind", json::Value::str("cell"));
        obj.set("cell", json::Value::str(ref.parent));
        obj.set("port", json::Value::str(ref.port));
        break;
      case PortRef::Kind::Const:
        obj.set("kind", json::Value::str("const"));
        obj.set("width", json::Value::number(ref.width));
        obj.set("value", json::Value::number(ref.value));
        break;
      case PortRef::Kind::Hole:
        fatal("json-netlist: residual hole ", ref.str(),
              " (run RemoveGroups first)");
    }
    return obj;
}

const char *
cmpOpName(Guard::CmpOp op)
{
    switch (op) {
      case Guard::CmpOp::Eq:  return "eq";
      case Guard::CmpOp::Neq: return "neq";
      case Guard::CmpOp::Lt:  return "lt";
      case Guard::CmpOp::Gt:  return "gt";
      case Guard::CmpOp::Leq: return "leq";
      case Guard::CmpOp::Geq: return "geq";
    }
    panic("bad cmp op");
}

json::Value
guardToJson(const GuardPtr &g)
{
    json::Value obj = json::Value::object();
    switch (g->kind()) {
      case Guard::Kind::True:
        obj.set("kind", json::Value::str("true"));
        break;
      case Guard::Kind::Port:
        obj.set("kind", json::Value::str("port"));
        obj.set("port", refToJson(g->port()));
        break;
      case Guard::Kind::Not:
        obj.set("kind", json::Value::str("not"));
        obj.set("arg", guardToJson(g->left()));
        break;
      case Guard::Kind::And:
        obj.set("kind", json::Value::str("and"));
        obj.set("left", guardToJson(g->left()));
        obj.set("right", guardToJson(g->right()));
        break;
      case Guard::Kind::Or:
        obj.set("kind", json::Value::str("or"));
        obj.set("left", guardToJson(g->left()));
        obj.set("right", guardToJson(g->right()));
        break;
      case Guard::Kind::Cmp:
        obj.set("kind", json::Value::str("cmp"));
        obj.set("op", json::Value::str(cmpOpName(g->cmpOp())));
        obj.set("lhs", refToJson(g->lhs()));
        obj.set("rhs", refToJson(g->rhs()));
        break;
    }
    return obj;
}

json::Value
componentToJson(const Component &comp)
{
    if (!comp.groups().empty())
        fatal("json-netlist: component ", comp.name(),
              " still has groups (run the compilation pipeline first)");

    json::Value obj = json::Value::object();
    obj.set("name", json::Value::str(comp.name()));
    if (!comp.attrs().empty())
        obj.set("attributes", attrsToJson(comp.attrs()));

    json::Value sig = json::Value::array();
    for (const auto &p : comp.signature()) {
        // go/done are implicit in every component.
        if (p.name == "go" || p.name == "done")
            continue;
        json::Value port = json::Value::object();
        port.set("name", json::Value::str(p.name));
        port.set("width", json::Value::number(p.width));
        port.set("dir", json::Value::str(
                            p.dir == Direction::Input ? "input" : "output"));
        sig.push(std::move(port));
    }
    obj.set("signature", std::move(sig));

    json::Value cells = json::Value::array();
    for (const auto &cell : comp.cells()) {
        json::Value c = json::Value::object();
        c.set("name", json::Value::str(cell->name()));
        c.set("type", json::Value::str(cell->type()));
        json::Value params = json::Value::array();
        for (uint64_t p : cell->params())
            params.push(json::Value::number(p));
        c.set("params", std::move(params));
        if (!cell->attrs().empty())
            c.set("attributes", attrsToJson(cell->attrs()));
        cells.push(std::move(c));
    }
    obj.set("cells", std::move(cells));

    json::Value assigns = json::Value::array();
    for (const auto &a : comp.continuousAssignments()) {
        json::Value j = json::Value::object();
        j.set("dst", refToJson(a.dst));
        j.set("src", refToJson(a.src));
        if (!a.guard->isTrue())
            j.set("guard", guardToJson(a.guard));
        assigns.push(std::move(j));
    }
    obj.set("assignments", std::move(assigns));
    return obj;
}

json::Value
primDefToJson(const PrimitiveDef &def)
{
    json::Value obj = json::Value::object();
    obj.set("name", json::Value::str(def.name));
    obj.set("file", json::Value::str(def.externFile));
    json::Value params = json::Value::array();
    for (const auto &p : def.params)
        params.push(json::Value::str(p));
    obj.set("params", std::move(params));
    json::Value ports = json::Value::array();
    for (const auto &spec : def.ports) {
        json::Value p = json::Value::object();
        p.set("name", json::Value::str(spec.name));
        p.set("dir", json::Value::str(spec.dir == Direction::Input
                                          ? "input"
                                          : "output"));
        if (spec.widthParam.empty())
            p.set("width", json::Value::number(spec.fixedWidth));
        else
            p.set("width_param", json::Value::str(spec.widthParam));
        ports.push(std::move(p));
    }
    obj.set("ports", std::move(ports));
    if (!def.goPort.empty())
        obj.set("go_port", json::Value::str(def.goPort));
    if (!def.donePort.empty())
        obj.set("done_port", json::Value::str(def.donePort));
    if (def.isMemory)
        obj.set("is_memory", json::Value::boolean(true));
    if (!def.attrs.empty())
        obj.set("attributes", attrsToJson(def.attrs));
    return obj;
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

Attributes
attrsFromJson(const json::Value &obj)
{
    Attributes attrs;
    for (const auto &[name, value] : obj.members())
        attrs.set(name, static_cast<int64_t>(value.asNum()));
    return attrs;
}

PortRef
refFromJson(const json::Value &obj)
{
    const std::string &kind = obj.at("kind").asStr();
    if (kind == "this")
        return thisPort(obj.at("port").asStr());
    if (kind == "cell")
        return cellPort(obj.at("cell").asStr(), obj.at("port").asStr());
    if (kind == "const")
        return constant(obj.at("value").asNum(),
                        static_cast<Width>(obj.at("width").asNum()));
    fatal("json-netlist: bad port reference kind '", kind, "'");
}

Direction
dirFromJson(const json::Value &v)
{
    const std::string &dir = v.asStr();
    if (dir == "input")
        return Direction::Input;
    if (dir == "output")
        return Direction::Output;
    fatal("json-netlist: bad port direction '", dir, "'");
}

Guard::CmpOp
cmpOpFromName(const std::string &name)
{
    if (name == "eq")  return Guard::CmpOp::Eq;
    if (name == "neq") return Guard::CmpOp::Neq;
    if (name == "lt")  return Guard::CmpOp::Lt;
    if (name == "gt")  return Guard::CmpOp::Gt;
    if (name == "leq") return Guard::CmpOp::Leq;
    if (name == "geq") return Guard::CmpOp::Geq;
    fatal("json-netlist: bad comparison operator '", name, "'");
}

GuardPtr
guardFromJson(const json::Value &obj)
{
    const std::string &kind = obj.at("kind").asStr();
    if (kind == "true")
        return Guard::trueGuard();
    if (kind == "port")
        return Guard::fromPort(refFromJson(obj.at("port")));
    if (kind == "not")
        return Guard::negate(guardFromJson(obj.at("arg")));
    if (kind == "and")
        return Guard::conj(guardFromJson(obj.at("left")),
                           guardFromJson(obj.at("right")));
    if (kind == "or")
        return Guard::disj(guardFromJson(obj.at("left")),
                           guardFromJson(obj.at("right")));
    if (kind == "cmp")
        return Guard::cmp(cmpOpFromName(obj.at("op").asStr()),
                          refFromJson(obj.at("lhs")),
                          refFromJson(obj.at("rhs")));
    fatal("json-netlist: bad guard kind '", kind, "'");
}

PrimitiveDef
primDefFromJson(const json::Value &obj)
{
    PrimitiveDef def;
    def.name = obj.at("name").asStr();
    def.externFile = obj.at("file").asStr();
    for (const auto &p : obj.at("params").items())
        def.params.push_back(p.asStr());
    for (const auto &p : obj.at("ports").items()) {
        PrimPortSpec spec;
        spec.name = p.at("name").asStr();
        spec.dir = dirFromJson(p.at("dir"));
        if (const json::Value *wp = p.find("width_param"))
            spec.widthParam = wp->asStr();
        else
            spec.fixedWidth = static_cast<Width>(p.at("width").asNum());
        def.ports.push_back(std::move(spec));
    }
    if (const json::Value *go = obj.find("go_port"))
        def.goPort = go->asStr();
    if (const json::Value *done = obj.find("done_port"))
        def.donePort = done->asStr();
    if (const json::Value *mem = obj.find("is_memory"))
        def.isMemory = mem->asBool();
    if (const json::Value *attrs = obj.find("attributes"))
        def.attrs = attrsFromJson(*attrs);
    return def;
}

} // namespace

void
JsonNetlistBackend::emit(const Context &ctx, std::ostream &os) const
{
    json::Value doc = json::Value::object();
    doc.set("format", json::Value::str(formatName));
    doc.set("version", json::Value::number(formatVersion));
    doc.set("entrypoint", json::Value::str(ctx.entrypoint()));

    json::Value externs = json::Value::array();
    for (const auto &[name, def] : ctx.primitives().all()) {
        if (!def.externFile.empty())
            externs.push(primDefToJson(def));
    }
    doc.set("extern_primitives", std::move(externs));

    json::Value comps = json::Value::array();
    for (const auto &comp : ctx.components())
        comps.push(componentToJson(*comp));
    doc.set("components", std::move(comps));

    doc.write(os);
    os << "\n";
}

Context
loadJsonNetlist(const std::string &text)
{
    json::Value doc = json::parse(text);
    if (doc.at("format").asStr() != formatName)
        fatal("json-netlist: not a ", formatName, " document");
    if (doc.at("version").asNum() != formatVersion)
        fatal("json-netlist: unsupported version ",
              doc.at("version").asNum(), " (expected ", formatVersion, ")");

    Context ctx;
    for (const auto &e : doc.at("extern_primitives").items())
        ctx.primitives().add(primDefFromJson(e));

    // Pass 1: declare every component with its signature, so cells can
    // instantiate sibling components regardless of serialization order.
    const json::Value &comps = doc.at("components");
    for (const auto &c : comps.items()) {
        Component &comp = ctx.addComponent(c.at("name").asStr());
        for (const auto &p : c.at("signature").items()) {
            const std::string &pname = p.at("name").asStr();
            // go/done already exist implicitly.
            if (pname == "go" || pname == "done")
                continue;
            Width w = static_cast<Width>(p.at("width").asNum());
            if (dirFromJson(p.at("dir")) == Direction::Input)
                comp.addInput(pname, w);
            else
                comp.addOutput(pname, w);
        }
        if (const json::Value *attrs = c.find("attributes"))
            comp.attrs() = attrsFromJson(*attrs);
    }

    // Pass 2: cells and assignments.
    for (const auto &c : comps.items()) {
        Component &comp = ctx.component(c.at("name").asStr());
        for (const auto &cell : c.at("cells").items()) {
            std::vector<uint64_t> params;
            for (const auto &p : cell.at("params").items())
                params.push_back(p.asNum());
            Cell &built = comp.addCell(cell.at("name").asStr(),
                                       cell.at("type").asStr(), params, ctx);
            if (const json::Value *attrs = cell.find("attributes"))
                built.attrs() = attrsFromJson(*attrs);
        }
        for (const auto &a : c.at("assignments").items()) {
            GuardPtr guard = Guard::trueGuard();
            if (const json::Value *g = a.find("guard"))
                guard = guardFromJson(*g);
            comp.continuousAssignments().emplace_back(
                refFromJson(a.at("dst")), refFromJson(a.at("src")),
                std::move(guard));
        }
    }

    ctx.setEntrypoint(doc.at("entrypoint").asStr());
    return ctx;
}

namespace {
BackendRegistration<JsonNetlistBackend> registration{
    "json-netlist",
    "JSON netlist of the flat guarded-assignment form (lowered programs "
    "only); reloadable via loadJsonNetlist",
    ".json", /*requires_lowered=*/true};
} // namespace

} // namespace calyx::emit
