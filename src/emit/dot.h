#ifndef CALYX_EMIT_DOT_H
#define CALYX_EMIT_DOT_H

#include <ostream>
#include <string>

#include "emit/backend.h"
#include "ir/context.h"

namespace calyx::emit {

/**
 * Graphviz backend: renders the cell/group/control structure of a
 * program as a `dot` digraph, one cluster per component. Works at any
 * pipeline stage (pair it with `--dump-ir-after` to visualize how a
 * pass reshapes a design):
 *
 *  - cells are boxes, groups are ellipses, control statements are
 *    diamonds;
 *  - solid edges are dataflow (assignment src cell -> dst cell,
 *    labelled with the group that contains the assignment);
 *  - dashed edges are the control tree (enables point at the group
 *    they run, while/if point at their condition group).
 *
 * Registered as `dot`.
 */
class DotBackend : public Backend
{
  public:
    void emit(const Context &ctx, std::ostream &os) const override;
};

} // namespace calyx::emit

#endif // CALYX_EMIT_DOT_H
