#ifndef CALYX_EMIT_CALYX_H
#define CALYX_EMIT_CALYX_H

#include "emit/backend.h"

namespace calyx::emit {

/**
 * The identity backend: pretty-prints the textual Calyx IL at whatever
 * pipeline stage the program is in (the output parses back with
 * Parser). Registered as `calyx`.
 */
class CalyxBackend : public Backend
{
  public:
    void emit(const Context &ctx, std::ostream &os) const override;
};

} // namespace calyx::emit

#endif // CALYX_EMIT_CALYX_H
