#ifndef CALYX_EMIT_VERILOG_H
#define CALYX_EMIT_VERILOG_H

#include <ostream>
#include <string>

#include "emit/backend.h"
#include "ir/context.h"

namespace calyx::emit {

/**
 * The Lower pass' code generator (paper §4.2): translates control-free
 * Calyx (flat guarded assignments) into synthesizable SystemVerilog.
 * Each component maps to a module; each cell to a primitive instance or
 * submodule instantiation; each driven port to a mux tree over its
 * guarded assignments. A clock is threaded through the design.
 * Registered as `verilog`.
 */
class VerilogBackend : public Backend
{
  public:
    /** Emit the whole program plus the primitive library. */
    void emit(const Context &ctx, std::ostream &os) const override;

    /** Emit a single component as a module. */
    static void emitComponent(const Component &comp, const Context &ctx,
                              std::ostream &os);

    /** Emit the std_* primitive library. */
    static void emitPrimitives(const Context &ctx, std::ostream &os);
};

} // namespace calyx::emit

#endif // CALYX_EMIT_VERILOG_H
