#include "emit/cppsim.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/primitives.h"
#include "sim/env.h"
#include "sim/partition.h"
#include "sim/schedule.h"
#include "support/bits.h"
#include "support/error.h"

namespace calyx::emit {

namespace {

using sim::SAssign;
using sim::SExpr;
using sim::SimProgram;
using sim::SimSchedule;

std::string
hexLit(uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v << "ull";
    return os.str();
}

/** Escape a port/cell name for use inside a C++ string literal. */
std::string
escapeLit(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** One primitive cell paired with its model index and state slots. */
struct Prim
{
    const Cell *cell = nullptr;
    std::string path;
    size_t model = 0; ///< Index into SimProgram::models().
    int reg = -1;     ///< Register slot, or -1.
    int mem = -1;     ///< Memory slot, or -1.
    uint64_t memSize = 0;
    std::vector<uint64_t> memDims;
};

/**
 * Everything the codegen needs, resolved once: drivers per port,
 * primitive cells in model order, and constant-folded port values.
 */
struct Codegen
{
    const SimProgram &prog;
    const SimSchedule &sched;
    uint32_t numPorts;
    uint32_t L = 1; ///< Stimulus lanes (CppSimOptions::lanes).

    std::vector<std::vector<const SAssign *>> drivers;
    std::vector<Prim> prims;
    std::unordered_map<const sim::PrimModel *, const Prim *> primOfModel;

    std::vector<uint8_t> computed; ///< eval() (or reset()) writes it.
    std::vector<uint8_t> folded;   ///< Compile-time constant.
    std::vector<uint64_t> foldedVal;

    /// Shared guard value pool (see buildGuardPool): assignment → guard
    /// id, pool entry → its guard and the acyclic port whose statement
    /// computes the pooled value at first use.
    std::unordered_map<const SAssign *, uint32_t> guardIdOf;
    std::vector<const SExpr *> guardPool;
    std::vector<uint32_t> guardHome;

    /// Partitioned module (CppSimOptions::partitions > 1): schedule
    /// node → macro-task, and the task whose statements are currently
    /// being emitted. Each partition gets private guard-pool entries
    /// and a private error slot, so concurrent evals share nothing.
    bool parted = false;
    std::vector<uint32_t> taskOf;
    uint32_t curPart = 0;

    /// Sticky-error slot for the statement being emitted: the current
    /// partition's private slot in a partitioned module (clock code
    /// runs sequentially and uses slot 0), the single `err` otherwise.
    std::string errRef() const
    {
        if (parted)
            return "s->perr[" + std::to_string(curPart) + "]";
        return "s->err";
    }

    std::string errbufRef() const
    {
        if (parted)
            return "s->errbuf[" + std::to_string(curPart) + "]";
        return "s->errbuf";
    }

    int numRegs = 0, numMems = 0;

    explicit Codegen(const SimProgram &p)
        : prog(p), sched(p.schedule()),
          numPorts(static_cast<uint32_t>(p.numPorts()))
    {}

    uint32_t
    pid(const Prim &prim, const char *port) const
    {
        return prog.portId(prim.path + "." + port);
    }

    /**
     * vals[] element for `port`. Scalar modules index by port id; lane
     * modules index the SoA plane at `port * kLanes + l`, with the
     * plane base folded to a literal and `l` the enclosing lane-loop
     * variable (every emitted statement runs inside one).
     */
    std::string
    vref(uint32_t port) const
    {
        if (L == 1)
            return "vals[" + std::to_string(port) + "]";
        return "vals[" + std::to_string(uint64_t(port) * L) + " + l]";
    }

    /** Value reference: folded constant literal or vals[] load. */
    std::string
    val(uint32_t port) const
    {
        if (folded[port])
            return hexLit(foldedVal[port]);
        return vref(port);
    }

    /** Current value of register slot `r` (per-lane array for L > 1). */
    std::string
    regRef(int r) const
    {
        if (L == 1)
            return "*s->regs[" + std::to_string(r) + "]";
        return "s->regs[" + std::to_string(r) + "][l]";
    }

    std::string
    rdoneRef(int r) const
    {
        if (L == 1)
            return "s->rdone[" + std::to_string(r) + "]";
        return "s->rdone[" + std::to_string(uint64_t(r) * L) + " + l]";
    }

    std::string
    mdoneRef(int m) const
    {
        if (L == 1)
            return "s->mdone[" + std::to_string(m) + "]";
        return "s->mdone[" + std::to_string(uint64_t(m) * L) + " + l]";
    }

    /** Memory element `idx` of slot `m`; lane-major for L > 1 so each
     * lane's image is one contiguous run (cheap snapshot/seed). */
    std::string
    memRef(const Prim &p, const std::string &idx) const
    {
        std::string mem = "s->mems[" + std::to_string(p.mem) + "]";
        if (L == 1)
            return mem + "[" + idx + "]";
        return mem + "[l * " + std::to_string(p.memSize) + "ull + " + idx +
               "]";
    }

    std::string
    gvRef(uint32_t gid) const
    {
        if (L == 1)
            return "s->gv[" + std::to_string(gid) + "]";
        return "s->gv[" + std::to_string(uint64_t(gid) * L) + " + l]";
    }
};

void
rejectGroups(const SimProgram::Instance &inst)
{
    if (inst.hasGroups()) {
        fatal("cppsim: component ", inst.comp->name(),
              " still has groups; the compiled-simulation backend "
              "requires a fully-lowered program (run the default "
              "pipeline first)");
    }
    for (const auto &sub : inst.subs)
        rejectGroups(*sub);
}

/**
 * Visit primitive cells in exactly the order SimProgram::buildInstance
 * creates their models: component cell order, recursing into
 * sub-instances in place.
 */
void
walkPrims(const SimProgram::Instance &inst,
          const std::function<void(const Cell &, const std::string &)> &fn)
{
    size_t sub = 0;
    for (const auto &cell : inst.comp->cells()) {
        if (cell->isPrimitive())
            fn(*cell, inst.path + cell->name().str());
        else
            walkPrims(*inst.subs[sub++], fn);
    }
}

void
collectPrims(Codegen &cg)
{
    walkPrims(cg.prog.root(), [&](const Cell &cell, const std::string &path) {
        Prim p;
        p.cell = &cell;
        p.path = path;
        p.model = cg.prims.size();
        const std::string &t = cell.type().str();
        if (t == "std_reg") {
            p.reg = cg.numRegs++;
        } else if (t == "std_mem_d1" || t == "std_mem_d2") {
            p.mem = cg.numMems++;
            p.memDims.assign({cell.params()[1]});
            if (t == "std_mem_d2")
                p.memDims.push_back(cell.params()[2]);
            p.memSize = 1;
            for (uint64_t d : p.memDims)
                p.memSize *= d;
        }
        cg.prims.push_back(std::move(p));
    });
    const auto &models = cg.prog.models();
    if (models.size() != cg.prims.size())
        panic("cppsim: primitive walk does not match model list");
    for (const Prim &p : cg.prims) {
        if (cg.prog.findModel(p.path) != models[p.model].get())
            panic("cppsim: model order mismatch at " + p.path);
        cg.primOfModel[models[p.model].get()] = &p;
    }
}

/** Guard expression as branchless 0/1 integer arithmetic. */
std::string
guardExpr(const Codegen &cg, const SExpr &g)
{
    if (g.nodes.empty())
        return "1";
    std::vector<std::string> stack;
    for (const SExpr::Node &n : g.nodes) {
        switch (n.op) {
          case SExpr::Op::True:
            stack.push_back("1");
            break;
          case SExpr::Op::Port:
            if (cg.folded[n.a])
                stack.push_back((cg.foldedVal[n.a] & 1) ? "1" : "0");
            else
                stack.push_back("(" + cg.vref(n.a) + " & 1)");
            break;
          case SExpr::Op::Not: {
            std::string x = std::move(stack.back());
            stack.back() = "(" + x + " ^ 1)";
            break;
          }
          case SExpr::Op::And:
          case SExpr::Op::Or: {
            std::string b = std::move(stack.back());
            stack.pop_back();
            std::string a = std::move(stack.back());
            stack.back() = "(" + a + (n.op == SExpr::Op::And ? " & " : " | ") +
                           b + ")";
            break;
          }
          default: {
            std::string a = n.aImm ? hexLit(n.immA) : cg.val(n.a);
            std::string b = n.bImm ? hexLit(n.immB) : cg.val(n.b);
            const char *op = nullptr;
            switch (n.op) {
              case SExpr::Op::Eq:
                op = "==";
                break;
              case SExpr::Op::Neq:
                op = "!=";
                break;
              case SExpr::Op::Lt:
                op = "<";
                break;
              case SExpr::Op::Gt:
                op = ">";
                break;
              case SExpr::Op::Leq:
                op = "<=";
                break;
              case SExpr::Op::Geq:
                op = ">=";
                break;
              default:
                panic("cppsim: bad SExpr op");
            }
            // Lane form avoids a bool-typed intermediate: GCC refuses
            // to vectorize `(uint64_t)(a == b)` when the result feeds
            // integer arithmetic ("bit-precision conversion"), but the
            // select form if-converts to a mask cleanly.
            if (cg.L > 1)
                stack.push_back("(" + a + " " + op + " " + b +
                                " ? 1ull : 0ull)");
            else
                stack.push_back("(uint64_t)(" + a + " " + op + " " + b +
                                ")");
            break;
          }
        }
    }
    return stack.back();
}

/**
 * Text-keyed common-subexpression pool for one emitted port. Large
 * guards (FSM range checks repeat `go & !done` in every disjunct, and
 * whole disjuncts recur across drivers) compile each SExpr node to a
 * numbered local exactly once: identical subtrees produce identical
 * operand names, so their key collides and the local is reused.
 */
struct GuardCSE
{
    std::string ind;   ///< Indentation for emitted locals.
    std::string stmts; ///< Accumulated "uint64_t tN = ...;" lines.
    std::unordered_map<std::string, std::string> memo;
    int next = 0;

    std::string local(const std::string &expr)
    {
        auto it = memo.find(expr);
        if (it != memo.end())
            return it->second;
        std::string name = "t" + std::to_string(next++);
        stmts += ind + "uint64_t " + name + " = " + expr + ";\n";
        memo.emplace(expr, name);
        return name;
    }
};

/** Guard nodes above which guardVar() is used instead of guardExpr().
 * Below this, inline composition is both smaller and faster; above it
 * (FSM range-check chains reach hundreds of nodes) expression nesting
 * depth and repeated subtrees dominate. */
constexpr size_t guardInlineNodes = 64;

/** Guard compiled through the CSE pool: returns the local holding the
 * 0/1 result. Same stack walk as guardExpr(), one local per node. */
std::string
guardVar(const Codegen &cg, const SExpr &g, GuardCSE &cse)
{
    if (g.nodes.empty())
        return "1";
    std::vector<std::string> stack;
    for (const SExpr::Node &n : g.nodes) {
        switch (n.op) {
          case SExpr::Op::True:
            stack.push_back("1");
            break;
          case SExpr::Op::Port:
            if (cg.folded[n.a])
                stack.push_back((cg.foldedVal[n.a] & 1) ? "1" : "0");
            else
                stack.push_back(cse.local(cg.vref(n.a) + " & 1"));
            break;
          case SExpr::Op::Not: {
            std::string x = std::move(stack.back());
            stack.back() = cse.local(x + " ^ 1");
            break;
          }
          case SExpr::Op::And:
          case SExpr::Op::Or: {
            std::string b = std::move(stack.back());
            stack.pop_back();
            std::string a = std::move(stack.back());
            stack.back() = cse.local(
                a + (n.op == SExpr::Op::And ? " & " : " | ") + b);
            break;
          }
          default: {
            std::string a = n.aImm ? hexLit(n.immA) : cg.val(n.a);
            std::string b = n.bImm ? hexLit(n.immB) : cg.val(n.b);
            const char *op = nullptr;
            switch (n.op) {
              case SExpr::Op::Eq:
                op = "==";
                break;
              case SExpr::Op::Neq:
                op = "!=";
                break;
              case SExpr::Op::Lt:
                op = "<";
                break;
              case SExpr::Op::Gt:
                op = ">";
                break;
              case SExpr::Op::Leq:
                op = "<=";
                break;
              case SExpr::Op::Geq:
                op = ">=";
                break;
              default:
                panic("cppsim: bad SExpr op");
            }
            stack.push_back(cse.local(a + " " + op + " " + b));
            break;
          }
        }
    }
    return stack.back();
}

std::string
srcExpr(const Codegen &cg, const SAssign &a)
{
    return a.srcConst ? hexLit(a.srcValue) : cg.val(a.srcPort);
}

/** Truncation of `e` to `w` bits, elided for full-width values. */
std::string
trunc(const std::string &e, Width w)
{
    if (w >= 64)
        return e;
    return "(" + e + " & " + hexLit(bitMask(w)) + ")";
}

std::string
memberRef(const Codegen &cg, const Prim &p, const char *field)
{
    std::string m = "s->p" + std::to_string(p.model) + "_" + field;
    return cg.L == 1 ? m : m + "[l]";
}

/** Flattened memory address expression (mirrors MemModel::flatAddr). */
std::string
memAddrExpr(const Codegen &cg, const Prim &p, const char *a0,
            const char *a1)
{
    std::string addr = cg.val(cg.pid(p, a0));
    if (p.memDims.size() == 2) {
        addr = "(" + addr + " * " + std::to_string(p.memDims[1]) + "ull + " +
               cg.val(cg.pid(p, a1)) + ")";
    }
    return addr;
}

/**
 * The inlined combinational expression a primitive drives onto `port`
 * (mirrors the PrimModel::evalComb semantics in sim/models.cc).
 */
std::string
modelOutExpr(const Codegen &cg, const Prim &p, uint32_t port)
{
    const std::string &t = p.cell->type().str();
    const auto &params = p.cell->params();
    auto w = [&params](size_t i) { return static_cast<Width>(params[i]); };

    if (t == "std_const")
        return hexLit(truncate(params[1], w(0)));
    if (t == "std_wire" || t == "std_pad")
        return trunc(cg.val(cg.pid(p, "in")), t == "std_wire" ? w(0) : w(1));
    if (t == "std_slice")
        return trunc(cg.val(cg.pid(p, "in")), w(1));
    if (t == "std_not")
        return trunc("~" + cg.val(cg.pid(p, "in")), w(0));

    static const std::unordered_map<std::string, const char *> bin_ops = {
        {"std_add", "+"}, {"std_sub", "-"}, {"std_and", "&"},
        {"std_or", "|"},  {"std_xor", "^"},
    };
    if (auto it = bin_ops.find(t); it != bin_ops.end()) {
        return trunc("(" + cg.val(cg.pid(p, "left")) + " " + it->second +
                         " " + cg.val(cg.pid(p, "right")) + ")",
                     w(0));
    }
    if (t == "std_lsh" || t == "std_rsh") {
        std::string l = cg.val(cg.pid(p, "left"));
        std::string r = cg.val(cg.pid(p, "right"));
        const char *op = t == "std_lsh" ? "<<" : ">>";
        return "(" + r + " >= 64 ? 0ull : " +
               trunc("(" + l + " " + op + " " + r + ")", w(0)) + ")";
    }
    static const std::unordered_map<std::string, const char *> cmp_ops = {
        {"std_eq", "=="}, {"std_neq", "!="}, {"std_lt", "<"},
        {"std_gt", ">"},  {"std_le", "<="},  {"std_ge", ">="},
    };
    if (auto it = cmp_ops.find(t); it != cmp_ops.end()) {
        std::string l = cg.val(cg.pid(p, "left"));
        std::string r = cg.val(cg.pid(p, "right"));
        if (cg.L > 1) // select form vectorizes; the bool cast does not
            return "(" + l + " " + it->second + " " + r + " ? 1ull : 0ull)";
        return "(uint64_t)(" + l + " " + it->second + " " + r + ")";
    }
    if (t == "std_reg") {
        if (port == cg.pid(p, "done"))
            return "(uint64_t)" + cg.rdoneRef(p.reg);
        return cg.regRef(p.reg);
    }
    if (t == "std_mem_d1" || t == "std_mem_d2") {
        std::string size = std::to_string(p.memSize) + "ull";
        if (port == cg.pid(p, "done"))
            return "(uint64_t)" + cg.mdoneRef(p.mem);
        if (port == cg.pid(p, "read_data")) {
            std::string a = memAddrExpr(cg, p, "addr0", "addr1");
            return "(" + a + " < " + size + " ? " + cg.memRef(p, a) +
                   " : 0ull)";
        }
        std::string a = memAddrExpr(cg, p, "addr0_1", "addr1_1");
        return "(" + a + " < " + size + " ? " + cg.memRef(p, a) +
               " : 0ull)";
    }
    if (t == "std_mult_pipe" || t == "std_div_pipe" || t == "std_sqrt") {
        if (port == cg.pid(p, "done"))
            return "(uint64_t)" + memberRef(cg, p, "done");
        if (t == "std_div_pipe" && port == cg.pid(p, "out_remainder"))
            return memberRef(cg, p, "r1");
        return memberRef(cg, p, "r0");
    }
    fatal("cppsim: no codegen for primitive ", t);
}

/**
 * Settled-value expression for one computed port under the
 * interpreter's driver priority: the ternary chain walks drivers
 * last-to-first (SimState::evalPort keeps the last active assignment)
 * and falls back to the inlined model output, then zero.
 */
std::string
portExpr(const Codegen &cg, uint32_t port)
{
    std::string expr;
    if (const sim::PrimModel *m = cg.sched.modelOf(port))
        expr = modelOutExpr(cg, *cg.primOfModel.at(m), port);
    else
        expr = "0ull";
    const auto &ds = cg.drivers[port];
    for (auto it = ds.begin(); it != ds.end(); ++it) {
        const SAssign *a = *it;
        if (a->guard.nodes.empty()) {
            // Unconditional driver: earlier drivers can never win.
            expr = srcExpr(cg, *a);
        } else {
            expr = "(" + guardExpr(cg, a->guard) + " ? " + srcExpr(cg, *a) +
                   " : " + expr + ")";
        }
    }
    return expr;
}

/** Fan-in above which a port is emitted as a flat if-chain. */
constexpr size_t selectChainMax = 8;

/** True when the port needs the statement-block form: deep fan-in or a
 * guard big enough for the CSE pool. The inline portExpr() form would
 * hand the host compiler a pathologically nested expression. */
bool
needsBlock(const Codegen &cg, uint32_t port)
{
    const auto &ds = cg.drivers[port];
    if (ds.size() > selectChainMax)
        return true;
    for (const SAssign *a : ds) {
        if (a->guard.nodes.size() > guardInlineNodes)
            return true;
    }
    return false;
}

/**
 * Statements computing the settled value of `port` into local `var`.
 * Small fan-in with small guards inlines the nested-select portExpr();
 * big fan-in ports (a lowered memory write mux can have thousands of
 * drivers) become a flat if-chain instead — identical last-active-wins
 * order, but linear work for the host compiler where a 1000-deep
 * nested conditional expression makes it crawl. Guards above
 * guardInlineNodes compile through a shared per-port CSE pool.
 */
std::string
portValueStmts(const Codegen &cg, uint32_t port, const std::string &var,
               const std::string &ind, bool in_scc)
{
    const auto &ds = cg.drivers[port];
    if (!needsBlock(cg, port)) {
        return ind + "uint64_t " + var + " = " + portExpr(cg, port) + ";\n";
    }

    GuardCSE cse{ind};
    std::string pool; ///< `s->gv[k] = ...;` writes this port owns.
    std::vector<uint32_t> homed;
    std::vector<std::string> guards(ds.size());
    for (size_t i = 0; i < ds.size(); ++i) {
        const SExpr &g = ds[i]->guard;
        if (g.nodes.empty())
            continue; // Unconditional; no guard text needed.
        uint32_t gid = UINT32_MAX;
        if (!in_scc) {
            if (auto it = cg.guardIdOf.find(ds[i]);
                it != cg.guardIdOf.end())
                gid = it->second;
        }
        if (gid != UINT32_MAX) {
            guards[i] = cg.gvRef(gid);
            if (cg.guardHome[gid] == port &&
                std::find(homed.begin(), homed.end(), gid) ==
                    homed.end()) {
                homed.push_back(gid);
                pool += ind + guards[i] + " = " + guardVar(cg, g, cse) +
                        ";\n";
            }
        } else {
            guards[i] = g.nodes.size() > guardInlineNodes
                            ? guardVar(cg, g, cse)
                            : guardExpr(cg, g);
        }
    }

    std::string base;
    if (const sim::PrimModel *m = cg.sched.modelOf(port))
        base = modelOutExpr(cg, *cg.primOfModel.at(m), port);
    else
        base = "0ull";

    std::string s = cse.stmts + pool;
    if (ds.size() <= selectChainMax) {
        // Few drivers: keep the branchless select, just with pooled
        // guard locals instead of inline guard expressions.
        std::string expr = base;
        for (size_t i = 0; i < ds.size(); ++i) {
            if (guards[i].empty())
                expr = srcExpr(cg, *ds[i]);
            else
                expr = "(" + guards[i] + " ? " + srcExpr(cg, *ds[i]) +
                       " : " + expr + ")";
        }
        s += ind + "uint64_t " + var + " = " + expr + ";\n";
        return s;
    }
    s += ind + "uint64_t " + var + " = " + base + ";\n";
    for (size_t i = 0; i < ds.size(); ++i) {
        if (guards[i].empty())
            s += ind + var + " = " + srcExpr(cg, *ds[i]) + ";\n";
        else if (cg.L > 1)
            // Lane modules keep deep fan-in branchless: sequential
            // selects are the same last-active-wins fold as the
            // if-chain, stay linear for the host compiler, and
            // if-convert into vector blends instead of defeating the
            // lane loop's vectorization with control flow.
            s += ind + var + " = " + guards[i] + " ? " +
                 srcExpr(cg, *ds[i]) + " : " + var + ";\n";
        else
            s += ind + "if (" + guards[i] + ") " + var + " = " +
                 srcExpr(cg, *ds[i]) + ";\n";
    }
    return s;
}

/**
 * Fold constant-only ports: std_const outputs and single unguarded
 * assignments from constants, propagated transitively in topological
 * order. Folded ports are written once at reset and disappear from
 * eval(); expressions reading them get literals the host compiler
 * folds further.
 */
void
foldConstants(Codegen &cg)
{
    cg.folded.assign(cg.numPorts, 0);
    cg.foldedVal.assign(cg.numPorts, 0);
    for (const SimSchedule::Node &node : cg.sched.nodes()) {
        if (node.cyclic || node.count != 1)
            continue;
        uint32_t p = cg.sched.memberPorts()[node.first];
        const auto &ds = cg.drivers[p];
        if (ds.size() == 1 && ds[0]->guard.nodes.empty()) {
            const SAssign *a = ds[0];
            if (a->srcConst) {
                cg.folded[p] = 1;
                cg.foldedVal[p] = a->srcValue;
            } else if (cg.folded[a->srcPort]) {
                cg.folded[p] = 1;
                cg.foldedVal[p] = cg.foldedVal[a->srcPort];
            }
        } else if (ds.empty()) {
            const sim::PrimModel *m = cg.sched.modelOf(p);
            if (!m)
                continue;
            const Prim &prim = *cg.primOfModel.at(m);
            if (prim.cell->type() == "std_const") {
                cg.folded[p] = 1;
                cg.foldedVal[p] = truncate(prim.cell->params()[1],
                                           static_cast<Width>(
                                               prim.cell->params()[0]));
            }
        }
    }
}

/**
 * Dedupe big guards into a per-eval value pool. A lowered group's
 * enable guard (hundreds of SExpr nodes of FSM range checks) is
 * attached to every assignment in the group, so the identical
 * expression would be re-emitted — and re-evaluated — for every port
 * the group drives. Instead, each distinct big guard gets a slot in
 * the generated instance's `gv[]` array, computed once per eval by the
 * statement of the first acyclic port that reads it; every later
 * reader loads the slot. Topological order makes this sound: every
 * reader's node is scheduled after all of the guard's input ports, so
 * by first use the inputs are settled and cannot change for the rest
 * of the eval. Cyclic (SCC) members keep inline re-evaluation — their
 * inputs do change mid-loop, and the interpreter's fixed-point
 * trajectory must be reproduced exactly.
 */
void
buildGuardPool(Codegen &cg)
{
    std::unordered_map<std::string, uint32_t> by_text;
    const auto &nodes = cg.sched.nodes();
    for (uint32_t ni = 0; ni < nodes.size(); ++ni) {
        const SimSchedule::Node &node = nodes[ni];
        if (node.cyclic)
            continue;
        uint32_t p = cg.sched.memberPorts()[node.first];
        if (cg.folded[p] || !cg.computed[p])
            continue;
        for (const SAssign *a : cg.drivers[p]) {
            if (a->guard.nodes.size() <= guardInlineNodes)
                continue;
            std::string key = guardExpr(cg, a->guard);
            // Partitioned modules scope pool entries to one partition:
            // readers in different partitions run concurrently, so a
            // shared slot's home-write would race. Within a partition
            // the home (first reader in ascending node order, which is
            // task execution order) still settles before every reuse.
            if (cg.parted)
                key = std::to_string(cg.taskOf[ni]) + "|" + key;
            auto [it, fresh] = by_text.emplace(
                key, static_cast<uint32_t>(cg.guardPool.size()));
            if (fresh) {
                cg.guardPool.push_back(&a->guard);
                cg.guardHome.push_back(p);
            }
            cg.guardIdOf.emplace(a, it->second);
        }
    }
}

/** Statements for one schedule node (one port, or one SCC loop).
 * `fusable` (may be null) is set when the statement is a single
 * expression-form line that a lane module may fuse with its neighbors
 * into one shared lane loop. */
std::string
nodeStmt(const Codegen &cg, const SimSchedule::Node &node,
         bool *fusable = nullptr)
{
    if (fusable)
        *fusable = false;
    const uint32_t *mem = cg.sched.memberPorts().data() + node.first;
    if (!node.cyclic) {
        uint32_t p = mem[0];
        if (cg.folded[p] || !cg.computed[p])
            return "";
        if (!needsBlock(cg, p)) {
            std::string stmt =
                "  " + cg.vref(p) + " = " + portExpr(cg, p) + ";\n";
            // Memory reads are indexed (gather) loads the vectorizer
            // refuses; fusing one into a lane loop of otherwise clean
            // selects makes the whole loop scalar. Isolate them.
            if (fusable)
                *fusable = cg.L == 1 ||
                           stmt.find("s->mems[") == std::string::npos;
            return stmt;
        }
        return "  {\n" + portValueStmts(cg, p, "v", "    ", false) +
               "    " + cg.vref(p) + " = v;\n  }\n";
    }

    // Non-trivial SCC: bounded Gauss–Seidel fixed point over the
    // members in schedule order, mirroring SimState::evalNode — same
    // sweep order, same iteration bound, same diagnostic.
    std::string ports;
    for (uint32_t i = 0; i < node.count; ++i) {
        if (!ports.empty())
            ports += ", ";
        ports += cg.prog.portName(mem[i]);
    }
    std::string s;
    s += "  { // combinational SCC: " + ports + "\n";
    s += "    bool ch = true;\n    int it = 0;\n";
    s += "    while (ch) {\n";
    s += "      if (++it > kMaxIters) {\n";
    s += "        " + cg.errRef() +
         " = \"combinational cycle did not settle after 256 "
         "iterations; ports on the cycle: " +
         escapeLit(ports) + "\";\n        return;\n      }\n";
    s += "      ch = false;\n";
    for (uint32_t i = 0; i < node.count; ++i) {
        uint32_t p = mem[i];
        if (!cg.computed[p])
            continue;
        std::string pv = cg.vref(p);
        s += "      {\n" + portValueStmts(cg, p, "nv", "        ", true);
        s += "        if (nv != " + pv + ") { " + pv +
             " = nv; ch = true; }\n      }\n";
    }
    s += "    }\n  }\n";
    return s;
}

/** Clock-edge statements for one primitive (empty for comb cells).
 * `fusable` as in nodeStmt(): register clocks are single lines a lane
 * module may share a lane loop across. */
std::string
clockStmt(const Codegen &cg, const Prim &p, bool *fusable = nullptr)
{
    const std::string &t = p.cell->type().str();
    const auto &params = p.cell->params();
    auto w = [&params](size_t i) { return static_cast<Width>(params[i]); };
    std::string s;
    if (fusable)
        *fusable = false;

    if (t == "std_reg") {
        if (fusable)
            *fusable = true;
        if (cg.L > 1) {
            // Branchless for the lane loop: a select on the held value
            // if-converts to a vector blend where the scalar form's
            // branch would stop vectorization of the whole fused loop.
            s += "  { uint64_t en = " + cg.vref(cg.pid(p, "write_en")) +
                 " & 1; " + cg.regRef(p.reg) + " = en ? " +
                 trunc(cg.val(cg.pid(p, "in")), w(0)) + " : " +
                 cg.regRef(p.reg) + "; " + cg.rdoneRef(p.reg) +
                 " = (unsigned char)en; }\n";
            return s;
        }
        s += "  if (" + cg.vref(cg.pid(p, "write_en")) + " & 1) { " +
             cg.regRef(p.reg) + " = " +
             trunc(cg.val(cg.pid(p, "in")), w(0)) + "; " +
             cg.rdoneRef(p.reg) + " = 1; } else " + cg.rdoneRef(p.reg) +
             " = 0;\n";
        return s;
    }
    if (t == "std_mem_d1" || t == "std_mem_d2") {
        std::string size = std::to_string(p.memSize) + "ull";
        s += "  if (" + cg.vref(cg.pid(p, "write_en")) + " & 1) {\n";
        s += "    uint64_t a = " + memAddrExpr(cg, p, "addr0", "addr1") +
             ";\n";
        s += "    if (a >= " + size + ") {\n";
        s += "      snprintf(" + cg.errbufRef() + ", sizeof " +
             cg.errbufRef() + ", \"memory " +
             escapeLit(p.cell->name().str()) +
             ": write to out-of-bounds address %llu (size " +
             std::to_string(p.memSize) +
             ")\", (unsigned long long)a);\n"
             "      " + cg.errRef() + " = " + cg.errbufRef() +
             ";\n      return;\n    }\n";
        s += "    " + cg.memRef(p, "a") + " = " +
             trunc(cg.val(cg.pid(p, "write_data")), w(0)) + ";\n";
        s += "    " + cg.mdoneRef(p.mem) + " = 1;\n  } else " +
             cg.mdoneRef(p.mem) + " = 0;\n";
        return s;
    }
    if (t == "std_mult_pipe" || t == "std_div_pipe") {
        int64_t latency = t == "std_mult_pipe" ? multLatency : divLatency;
        std::string busy = memberRef(cg, p, "busy"),
                    done = memberRef(cg, p, "done");
        std::string rem = memberRef(cg, p, "rem"), a = memberRef(cg, p, "a");
        std::string b = memberRef(cg, p, "b"), r0 = memberRef(cg, p, "r0");
        std::string finish;
        if (t == "std_mult_pipe") {
            if (cg.L > 1 && latency > 1) {
                // Branchless lane form: `fin`/`start` are mutually
                // exclusive (fin implies busy, start implies idle), so
                // the selects below replay the scalar branches exactly
                // and the whole pipe clock if-converts to blends.
                if (fusable)
                    *fusable = true;
                s += "  { uint64_t busy = " + busy + ", fin = busy & "
                     "(" + rem + " == 1 ? 1ull : 0ull), start = (busy ^ 1) & "
                     "(" + cg.vref(cg.pid(p, "go")) + " & 1); " +
                     rem + " -= (int64_t)busy; " +
                     a + " = start ? " + cg.val(cg.pid(p, "left")) +
                     " : " + a + "; " +
                     b + " = start ? " + cg.val(cg.pid(p, "right")) +
                     " : " + b + "; " +
                     r0 + " = fin ? " +
                     trunc("(" + a + " * " + b + ")", w(0)) + " : " + r0 +
                     "; " + rem + " = start ? " +
                     std::to_string(latency - 1) + " : " + rem + "; " +
                     busy + " = (unsigned char)((busy & (fin ^ 1)) | "
                     "start); " + done + " = (unsigned char)fin; }\n";
                return s;
            }
            finish = r0 + " = " + trunc("(" + a + " * " + b + ")", w(0)) +
                     ";";
        } else {
            std::string r1 = memberRef(cg, p, "r1");
            finish = "if (" + b + " == 0) { " + r0 + " = " +
                     hexLit(bitMask(w(0))) + "; " + r1 + " = " +
                     trunc(a, w(0)) + "; } else { " + r0 + " = " +
                     trunc("(" + a + " / " + b + ")", w(0)) + "; " + r1 +
                     " = " + trunc("(" + a + " % " + b + ")", w(0)) + "; }";
        }
        s += "  " + done + " = 0;\n";
        s += "  if (" + busy + ") {\n";
        s += "    if (--" + rem + " == 0) { " + finish + " " + busy +
             " = 0; " + done + " = 1; }\n";
        s += "  } else if (" + cg.vref(cg.pid(p, "go")) + " & 1) {\n";
        s += "    " + a + " = " + cg.val(cg.pid(p, "left")) + "; " + b +
             " = " + cg.val(cg.pid(p, "right")) + ";\n";
        if (latency <= 1)
            s += "    " + finish + " " + done + " = 1;\n";
        else
            s += "    " + busy + " = 1; " + rem + " = " +
                 std::to_string(latency - 1) + ";\n";
        s += "  }\n";
        return s;
    }
    if (t == "std_sqrt") {
        std::string busy = memberRef(cg, p, "busy"),
                    done = memberRef(cg, p, "done");
        std::string rem = memberRef(cg, p, "rem"), op = memberRef(cg, p, "a");
        std::string r0 = memberRef(cg, p, "r0");
        s += "  " + done + " = 0;\n";
        s += "  if (" + busy + ") {\n";
        s += "    if (--" + rem + " == 0) { " + r0 + " = " +
             trunc("cppsim_isqrt(" + op + ")", w(0)) + "; " + busy +
             " = 0; " + done + " = 1; }\n";
        s += "  } else if (" + cg.vref(cg.pid(p, "go")) + " & 1) {\n";
        s += "    " + op + " = " + cg.val(cg.pid(p, "in")) + ";\n";
        s += "    " + busy + " = 1; " + rem + " = 1 + cppsim_bits_needed(" +
             op + ") / 2;\n";
        s += "  }\n";
        return s;
    }
    return "";
}

/** Per-primitive members of the generated instance struct. Lane
 * modules hold one slot per lane (`[kLanes]` arrays). */
std::string
stateMembers(const Codegen &cg)
{
    // "" for scalar modules, "[kLanes]" appended to every member name
    // for lane modules so memberRef()'s `[l]` indexing lands on the
    // lane's slot.
    const std::string d = cg.L == 1 ? "" : "[kLanes]";
    std::string s;
    for (const Prim &p : cg.prims) {
        const std::string &t = p.cell->type().str();
        std::string pre = "p" + std::to_string(p.model) + "_";
        if (t == "std_mult_pipe" || t == "std_div_pipe") {
            s += "  uint64_t " + pre + "a" + d + ", " + pre + "b" + d +
                 ", " + pre + "r0" + d;
            if (t == "std_div_pipe")
                s += ", " + pre + "r1" + d;
            s += ";\n  int64_t " + pre + "rem" + d + ";\n";
            s += "  unsigned char " + pre + "busy" + d + ", " + pre +
                 "done" + d + ";\n";
        } else if (t == "std_sqrt") {
            s += "  uint64_t " + pre + "a" + d + ", " + pre + "r0" + d +
                 ";\n";
            s += "  int64_t " + pre + "rem" + d + ";\n";
            s += "  unsigned char " + pre + "busy" + d + ", " + pre +
                 "done" + d + ";\n";
        }
    }
    return s;
}

/** Cap on fusable statements sharing one lane loop. Small bodies keep
 * the host compiler's loop vectorizer effective (it gives up on huge
 * loop bodies), while amortizing the loop overhead across statements
 * whose vector registers it can then keep live. */
constexpr size_t laneFuseStatements = 256;

/** Byte cap per fused lane-loop body, same rationale. */
constexpr size_t laneFuseBytes = 256 * 1024;

/**
 * Lane modules: wrap every statement in a per-lane loop. Runs of
 * fusable single-line statements (trivial acyclic ports, register
 * clocks) share one loop; block statements (if-chains, SCC fixed
 * points, memory/pipe clocks) each get their own. Statement order is
 * preserved inside a fused body, so each lane still sees the exact
 * scalar schedule order; lanes are independent, so the changed
 * statement-vs-lane interleaving is unobservable.
 */
std::vector<std::string>
wrapLaneLoops(std::vector<std::string> stmts,
              const std::vector<char> &fusable)
{
    // `ivdep` is sound by construction: every access in a lane loop is
    // either a plane element at offset +l or a lane-private slice at
    // base l*size, so no dependence ever crosses iterations. It spares
    // the vectorizer the quadratic runtime alias checks between the
    // many distinct plane pointers a fused body touches (past its
    // versioning limit the vectorizer silently gives up).
    static const char *open = "#pragma GCC ivdep\n"
                              "  for (uint32_t l = 0; l < kLanes; ++l) {\n";
    std::vector<std::string> out;
    size_t i = 0;
    while (i < stmts.size()) {
        std::string body = std::move(stmts[i]);
        size_t n = 1;
        if (fusable[i]) {
            while (i + n < stmts.size() && fusable[i + n] &&
                   n < laneFuseStatements &&
                   body.size() + stmts[i + n].size() < laneFuseBytes) {
                body += stmts[i + n];
                ++n;
            }
        }
        out.push_back(open + body + "  }\n");
        i += n;
    }
    return out;
}

/**
 * Group statements into `void cppsim_<stem>_chunk<i>(...)` function
 * definitions of at most `chunk` statements each (one schedule node or
 * one primitive's clock block never splits). Chunking keeps any single
 * function small enough that the host compiler's optimizer stays
 * roughly linear on six-figure-statement designs, and gives the JIT
 * driver natural seams for splitting the module into shards it can
 * compile in parallel (the functions have external linkage; every
 * shard sees the declarations in the common prologue).
 */
std::vector<std::string>
buildChunks(const std::string &stem, const std::vector<std::string> &stmts,
            size_t chunk, bool restrict_args)
{
    // `__restrict` on lane chunks: `vals` is a dedicated plane buffer
    // that never overlaps the instance state, but the vectorizer can't
    // prove that and drops several lane loops to scalar without it.
    const char *sig = restrict_args
                          ? "(CppsimInst *__restrict s, uint64_t *__restrict "
                            "vals) {\n"
                          : "(CppsimInst *s, uint64_t *vals) {\n";
    std::vector<std::string> fns;
    size_t i = 0;
    while (i < stmts.size()) {
        std::string fn = "void cppsim_" + stem + "_chunk" +
                         std::to_string(fns.size()) + sig +
                         "  (void)s; (void)vals;\n";
        size_t end = std::min(stmts.size(), i + chunk);
        size_t body = 0;
        for (; i < end; ++i) {
            // Byte cap too: several compiler passes are superlinear in
            // function size, and one statement can be a multi-KB mux
            // block — a count-only cap still produced functions the
            // host compiler took minutes on. A lone oversized
            // statement still becomes its own chunk.
            if (body > 0 && body + stmts[i].size() > cppsimChunkBytes)
                break;
            body += stmts[i].size();
            fn += stmts[i];
        }
        fn += "}\n";
        fns.push_back(std::move(fn));
    }
    return fns;
}

std::string
chunkDecls(const std::string &stem, size_t count, bool restrict_args)
{
    std::string s;
    for (size_t i = 0; i < count; ++i) {
        s += "void cppsim_" + stem + "_chunk" + std::to_string(i) +
             (restrict_args
                  ? "(CppsimInst *__restrict s, uint64_t *__restrict vals);\n"
                  : "(CppsimInst *s, uint64_t *vals);\n");
    }
    return s;
}

void
emitDispatcher(std::ostream &os, const std::string &stem, size_t count,
               const std::string &errRef = "s->err")
{
    os << "static void cppsim_" << stem
       << "_all(CppsimInst *s, uint64_t *vals) {\n";
    if (count == 0)
        os << "  (void)s; (void)vals;\n";
    for (size_t c = 0; c < count; ++c) {
        os << "  cppsim_" << stem << "_chunk" << c << "(s, vals);\n";
        os << "  if (" << errRef << ") return;\n";
    }
    os << "}\n";
}

} // namespace

void
emitCppSim(const SimProgram &prog, std::ostream &os,
           const CppSimOptions &opts)
{
    rejectGroups(prog.root());
    if (opts.lanes == 0)
        fatal("cppsim: lanes must be >= 1");
    if (opts.probe && opts.lanes > 1) {
        fatal("cppsim: probe observers are single-stimulus; a lane "
              "module (lanes=", opts.lanes,
              ") cannot carry one (see docs/simulation.md)");
    }
    if (opts.probe && opts.partitions > 1) {
        fatal("cppsim: a partitioned module (partitions=",
              opts.partitions,
              ") cannot carry a probe; partitioned runs notify "
              "observers host-side after the partitions join (see "
              "docs/simulation.md)");
    }

    Codegen cg(prog);
    cg.L = opts.lanes;

    cg.drivers.assign(cg.numPorts, {});
    prog.forEachAssignment([&](const SAssign &a, bool continuous) {
        if (continuous)
            cg.drivers[a.dst].push_back(&a);
    });

    collectPrims(cg);

    cg.computed.assign(cg.numPorts, 0);
    for (uint32_t p = 0; p < cg.numPorts; ++p) {
        if (!cg.drivers[p].empty() || cg.sched.modelOf(p))
            cg.computed[p] = 1;
    }
    foldConstants(cg);

    // Macro-task partition (the host rebuilds the same plan shape from
    // the emitted dependency tables). Built before the guard pool so
    // pool entries can be scoped per partition.
    sim::PartitionPlan plan;
    if (opts.partitions > 1) {
        plan = sim::buildPartitionPlan(prog, cg.sched, opts.partitions,
                                       1);
        if (plan.tasks.empty())
            plan.tasks.emplace_back(); // degenerate empty schedule
        cg.parted = true;
        cg.taskOf = plan.taskOfNode;
    }
    const size_t nTasks = plan.tasks.size();

    buildGuardPool(cg);

    // Statement lists come first: the prologue declares every chunk
    // function, so their count must be known before anything is
    // written. eval walks the whole netlist in topological schedule
    // order — grouped per macro-task for a partitioned module, whose
    // in-order task concatenation is that same walk; clock visits
    // every stateful primitive in model order (always sequential, so
    // its errors use partition slot 0).
    std::vector<std::string> evalStmts;
    std::vector<char> evalFusable;
    std::vector<std::vector<std::string>> partFns(nTasks);
    if (cg.parted) {
        for (uint32_t t = 0; t < nTasks; ++t) {
            cg.curPart = t;
            std::vector<std::string> stmts;
            std::vector<char> fusable;
            for (uint32_t n : plan.tasks[t].nodes) {
                bool fus = false;
                std::string s =
                    nodeStmt(cg, cg.sched.nodes()[n], &fus);
                if (!s.empty()) {
                    stmts.push_back(std::move(s));
                    fusable.push_back(fus);
                }
            }
            // Lane wrapping per task: fusion never crosses a partition
            // boundary, so each task stays independently dispatchable.
            if (cg.L > 1)
                stmts = wrapLaneLoops(std::move(stmts), fusable);
            partFns[t] = buildChunks("evalp" + std::to_string(t), stmts,
                                     cppsimChunkStatements, cg.L > 1);
        }
        cg.curPart = 0;
    } else {
        for (const SimSchedule::Node &node : cg.sched.nodes()) {
            bool fus = false;
            std::string s = nodeStmt(cg, node, &fus);
            if (!s.empty()) {
                evalStmts.push_back(std::move(s));
                evalFusable.push_back(fus);
            }
        }
    }
    std::vector<std::string> clockStmts;
    std::vector<char> clockFusable;
    for (const Prim &p : cg.prims) {
        bool fus = false;
        std::string s = clockStmt(cg, p, &fus);
        if (!s.empty()) {
            clockStmts.push_back(std::move(s));
            clockFusable.push_back(fus);
        }
    }
    if (cg.L > 1) {
        if (!cg.parted)
            evalStmts = wrapLaneLoops(std::move(evalStmts), evalFusable);
        clockStmts = wrapLaneLoops(std::move(clockStmts), clockFusable);
    }
    std::vector<std::string> evalFns;
    if (!cg.parted)
        evalFns =
            buildChunks("eval", evalStmts, cppsimChunkStatements, cg.L > 1);
    std::vector<std::string> clkFns =
        buildChunks("clk", clockStmts, cppsimChunkStatements, cg.L > 1);

    bool has_sqrt = false;
    for (const Prim &p : cg.prims)
        has_sqrt |= p.cell->type() == "std_sqrt";

    // --- Common prologue. The JIT driver (sim/compiled.cc) replicates
    // everything above the first shard marker into each shard it
    // compiles in parallel, so the prologue holds only declarations
    // and the (internal-linkage) constants — single definitions live
    // in the tail segment.
    os << "// Generated by the calyx 'cppsim' backend: compiled-simulation "
          "module.\n";
    os << "// Top component: " << prog.root().comp->name().str() << " ("
       << cg.numPorts << " ports, " << cg.prims.size()
       << " primitives). Do not edit.\n";
    os << "// Lines matching '" << cppsimShardMarker
       << "' are seams where the JIT driver may\n"
          "// split this file into parallel-compiled shards; the file also "
          "compiles\n"
          "// as a single translation unit.\n";
    os << "#include <cstdint>\n#include <cstdio>\n#include <cstdlib>\n"
          "#include <cstring>\n\n";
    os << "constexpr uint32_t kNumPorts = " << cg.numPorts << ";\n";
    os << "constexpr uint32_t kNumRegs = " << cg.numRegs << ";\n";
    os << "constexpr uint32_t kNumMems = " << cg.numMems << ";\n";
    os << "constexpr uint32_t kNumGuards = " << cg.guardPool.size()
       << ";\n";
    os << "constexpr int kMaxIters = " << sim::maxCombPasses << ";\n";
    if (cg.L > 1)
        os << "constexpr uint32_t kLanes = " << cg.L << ";\n";
    if (cg.parted)
        os << "constexpr uint32_t kNumParts = " << nTasks << ";\n";
    os << "\n";

    os << "struct CppsimInst {\n";
    if (cg.L == 1) {
        os << "  uint64_t *regs[kNumRegs ? kNumRegs : 1];\n";
        os << "  uint64_t *mems[kNumMems ? kNumMems : 1];\n";
        os << "  unsigned char rdone[kNumRegs ? kNumRegs : 1];\n";
        os << "  unsigned char mdone[kNumMems ? kNumMems : 1];\n";
        os << "  uint64_t gv[kNumGuards ? kNumGuards : 1]; // guard pool\n";
    } else {
        os << "  uint64_t *regs[kNumRegs ? kNumRegs : 1]; "
              "// each -> uint64_t[kLanes]\n";
        os << "  uint64_t *mems[kNumMems ? kNumMems : 1]; "
              "// each -> uint64_t[kLanes * size], lane-major\n";
        os << "  unsigned char rdone[(kNumRegs ? kNumRegs : 1) * "
              "kLanes];\n";
        os << "  unsigned char mdone[(kNumMems ? kNumMems : 1) * "
              "kLanes];\n";
        os << "  uint64_t gv[(kNumGuards ? kNumGuards : 1) * kLanes]; "
              "// guard pool\n";
    }
    os << stateMembers(cg);
    if (cg.parted) {
        // One sticky-error slot per partition: concurrent partition
        // evals may each fail, and a shared slot would be a data race.
        // The host aggregates via cppsim_error() after the join.
        os << "  const char *perr[kNumParts];\n"
              "  char errbuf[kNumParts][192];\n";
    } else {
        os << "  const char *err;\n  char errbuf[192];\n";
    }
    if (opts.probe) {
        os << "  void (*probe)(void *, const uint64_t *);\n"
              "  void *probeCtx;\n";
    }
    os << "};\n\n";

    if (has_sqrt) {
        os << "uint64_t cppsim_isqrt(uint64_t v);\n"
              "int64_t cppsim_bits_needed(uint64_t v);\n";
    }
    if (cg.parted) {
        for (size_t t = 0; t < nTasks; ++t)
            os << chunkDecls("evalp" + std::to_string(t),
                             partFns[t].size(), cg.L > 1);
    } else {
        os << chunkDecls("eval", evalFns.size(), cg.L > 1);
    }
    os << chunkDecls("clk", clkFns.size(), cg.L > 1);

    // --- Shards: one chunk function per marker-delimited segment.
    // Partitioned modules emit task by task, so the driver's shard
    // split keeps each partition's chunks contiguous and the parallel
    // JIT build works on roughly the same units the runtime dispatches.
    if (cg.parted) {
        for (const auto &fns : partFns) {
            for (const std::string &fn : fns)
                os << cppsimShardMarker << "\n" << fn;
        }
    } else {
        for (const std::string &fn : evalFns)
            os << cppsimShardMarker << "\n" << fn;
    }
    for (const std::string &fn : clkFns)
        os << cppsimShardMarker << "\n" << fn;

    // --- Tail: single definitions, dispatchers, and the C ABI.
    os << cppsimShardMarker << "\n";
    if (has_sqrt) {
        os << "uint64_t cppsim_isqrt(uint64_t v) {\n"
              "  if (v == 0) return 0;\n"
              "  uint64_t x = v, y = (x + 1) / 2;\n"
              "  while (y < x) { x = y; y = (x + v / x) / 2; }\n"
              "  return x;\n}\n";
        os << "int64_t cppsim_bits_needed(uint64_t v) {\n"
              "  int64_t n = 1;\n"
              "  while (v >>= 1) ++n;\n"
              "  return n;\n}\n\n";
    }

    os << "namespace {\n\n";

    // Ports eval()/reset() write; forces must stay off these.
    os << "const unsigned char kDriven[kNumPorts] = {\n";
    for (uint32_t p = 0; p < cg.numPorts; ++p) {
        os << (cg.computed[p] ? '1' : '0') << ',';
        if (p % 32 == 31)
            os << '\n';
    }
    os << "};\n\n";

    if (cg.numMems > 0) {
        os << "const uint64_t kMemSizes[kNumMems] = {";
        bool first = true;
        for (const Prim &p : cg.prims) {
            if (p.mem < 0)
                continue;
            os << (first ? "" : ", ") << p.memSize << "ull";
            first = false;
        }
        os << "};\n\n";
    }

    if (cg.parted) {
        for (size_t t = 0; t < nTasks; ++t)
            emitDispatcher(os, "evalp" + std::to_string(t),
                           partFns[t].size(),
                           "s->perr[" + std::to_string(t) + "]");
        emitDispatcher(os, "clk", clkFns.size(), "s->perr[0]");
        os << "\n";
        os << "void (*const kPartFns[kNumParts])"
              "(CppsimInst *, uint64_t *) = {\n";
        for (size_t t = 0; t < nTasks; ++t)
            os << "  cppsim_evalp" << t << "_all,\n";
        os << "};\n\n";

        // The static execution plan: dependency CSR + per-task cost,
        // re-read by the host (CompiledModule::partitionPlan) into the
        // same PartitionPlan shape the levelized engine builds.
        os << "const uint32_t kPartDepOff[kNumParts + 1] = {";
        size_t off = 0;
        for (size_t t = 0; t < nTasks; ++t) {
            os << off << ", ";
            off += plan.tasks[t].deps.size();
        }
        os << off << "};\n";
        os << "const uint32_t kPartDeps[" << (off ? off : 1) << "] = {";
        bool first = true;
        for (const auto &task : plan.tasks) {
            for (uint32_t d : task.deps) {
                os << (first ? "" : ", ") << d;
                first = false;
            }
        }
        if (first)
            os << "0";
        os << "};\n";
        os << "const uint64_t kPartCosts[kNumParts] = {";
        for (size_t t = 0; t < nTasks; ++t)
            os << (t ? ", " : "") << plan.tasks[t].cost << "ull";
        os << "};\n\n";

        os << "const char *cppsim_err_any(CppsimInst *s) {\n"
              "  for (uint32_t t = 0; t < kNumParts; ++t)\n"
              "    if (s->perr[t]) return s->perr[t];\n"
              "  return nullptr;\n}\n\n";
    } else {
        emitDispatcher(os, "eval", evalFns.size());
        emitDispatcher(os, "clk", clkFns.size());
        os << "\n";
    }

    os << "void cppsim_do_reset(CppsimInst *s, uint64_t *vals) {\n";
    os << "  uint64_t *regs[kNumRegs ? kNumRegs : 1];\n";
    os << "  uint64_t *mems[kNumMems ? kNumMems : 1];\n";
    os << "  memcpy(regs, s->regs, sizeof regs);\n";
    os << "  memcpy(mems, s->mems, sizeof mems);\n";
    if (opts.probe) {
        os << "  void (*probe)(void *, const uint64_t *) = s->probe;\n";
        os << "  void *probeCtx = s->probeCtx;\n";
    }
    os << "  memset(s, 0, sizeof *s);\n";
    os << "  memcpy(s->regs, regs, sizeof regs);\n";
    os << "  memcpy(s->mems, mems, sizeof mems);\n";
    if (opts.probe) {
        os << "  s->probe = probe;\n";
        os << "  s->probeCtx = probeCtx;\n";
    }
    os << "  // Constant-folded ports, written once instead of per eval.\n";
    if (cg.L == 1) {
        for (uint32_t p = 0; p < cg.numPorts; ++p) {
            if (cg.folded[p])
                os << "  vals[" << p << "] = " << hexLit(cg.foldedVal[p])
                   << ";\n";
        }
    } else {
        os << "  for (uint32_t l = 0; l < kLanes; ++l) {\n";
        for (uint32_t p = 0; p < cg.numPorts; ++p) {
            if (cg.folded[p])
                os << "    " << cg.vref(p) << " = "
                   << hexLit(cg.foldedVal[p]) << ";\n";
        }
        os << "  }\n";
    }
    os << "}\n\n";

    os << "} // namespace\n\n";

    os << "extern \"C\" {\n";
    os << "uint32_t cppsim_abi() { return " << cppsimAbiVersion << "; }\n";
    os << "uint32_t cppsim_num_ports() { return kNumPorts; }\n";
    if (cg.L > 1) {
        // Scalar modules omit the symbol entirely (sources, and hence
        // cache digests, predate lane support); the loader treats its
        // absence as lanes == 1.
        os << "uint32_t cppsim_num_lanes() { return kLanes; }\n";
    }
    if (cg.parted) {
        // Same pattern for partition support: plain modules omit every
        // partition symbol, and the loader treats absence as a single
        // implicit partition.
        os << "uint32_t cppsim_num_partitions() { return kNumParts; }\n";
        os << "const uint32_t *cppsim_part_dep_offsets() "
              "{ return kPartDepOff; }\n";
        os << "const uint32_t *cppsim_part_deps() "
              "{ return kPartDeps; }\n";
        os << "const uint64_t *cppsim_part_costs() "
              "{ return kPartCosts; }\n";
    }
    os << "uint32_t cppsim_num_regs() { return kNumRegs; }\n";
    os << "uint32_t cppsim_num_mems() { return kNumMems; }\n";
    os << "uint64_t cppsim_mem_size(uint32_t i) {\n";
    if (cg.numMems > 0)
        os << "  return i < kNumMems ? kMemSizes[i] : 0;\n";
    else
        os << "  (void)i;\n  return 0;\n";
    os << "}\n";
    os << "const unsigned char *cppsim_driven() { return kDriven; }\n";
    os << "const char *cppsim_top() { return \""
       << escapeLit(prog.root().comp->name().str()) << "\"; }\n";
    os << "void *cppsim_new() { return calloc(1, sizeof(CppsimInst)); }\n";
    os << "void cppsim_free(void *s) { free(s); }\n";
    os << "void cppsim_bind(void *vs, uint64_t **regs, uint64_t **mems) {\n"
          "  CppsimInst *s = (CppsimInst *)vs;\n"
          "  for (uint32_t i = 0; i < kNumRegs; ++i) s->regs[i] = regs[i];\n"
          "  for (uint32_t i = 0; i < kNumMems; ++i) s->mems[i] = mems[i];\n"
          "}\n";
    os << "void cppsim_reset(void *s, uint64_t *vals) {\n"
          "  cppsim_do_reset((CppsimInst *)s, vals);\n}\n";
    if (opts.probe) {
        os << "void cppsim_set_probe(void *vs, "
              "void (*fn)(void *, const uint64_t *), void *ctx) {\n"
              "  CppsimInst *s = (CppsimInst *)vs;\n"
              "  s->probe = fn;\n  s->probeCtx = ctx;\n}\n";
        os << "void cppsim_eval(void *vs, uint64_t *vals) {\n"
              "  CppsimInst *s = (CppsimInst *)vs;\n"
              "  if (s->err) return;\n"
              "  cppsim_eval_all(s, vals);\n"
              "  if (!s->err && s->probe) s->probe(s->probeCtx, vals);\n}\n";
    } else if (cg.parted) {
        // The in-order loop over every task is exactly the classic
        // full-schedule walk — the plan-free host entry point. The
        // per-task entry checks only its *own* error slot: peeking at
        // another partition's slot mid-run would itself be a race.
        os << "void cppsim_eval(void *vs, uint64_t *vals) {\n"
              "  CppsimInst *s = (CppsimInst *)vs;\n"
              "  if (cppsim_err_any(s)) return;\n"
              "  for (uint32_t t = 0; t < kNumParts; ++t) {\n"
              "    kPartFns[t](s, vals);\n"
              "    if (s->perr[t]) return;\n"
              "  }\n}\n";
        os << "void cppsim_eval_partition(void *vs, uint64_t *vals, "
              "uint32_t i) {\n"
              "  CppsimInst *s = (CppsimInst *)vs;\n"
              "  if (i >= kNumParts || s->perr[i]) return;\n"
              "  kPartFns[i](s, vals);\n}\n";
    } else {
        os << "void cppsim_eval(void *s, uint64_t *vals) {\n"
              "  if (((CppsimInst *)s)->err) return;\n"
              "  cppsim_eval_all((CppsimInst *)s, vals);\n}\n";
    }
    if (cg.parted) {
        os << "void cppsim_clock(void *vs, uint64_t *vals) {\n"
              "  CppsimInst *s = (CppsimInst *)vs;\n"
              "  if (cppsim_err_any(s)) return;\n"
              "  cppsim_clk_all(s, vals);\n}\n";
        os << "const char *cppsim_error(void *s) { "
              "return cppsim_err_any((CppsimInst *)s); }\n";
    } else {
        os << "void cppsim_clock(void *s, uint64_t *vals) {\n"
              "  if (((CppsimInst *)s)->err) return;\n"
              "  cppsim_clk_all((CppsimInst *)s, vals);\n}\n";
        os << "const char *cppsim_error(void *s) { "
              "return ((CppsimInst *)s)->err; }\n";
    }
    os << "} // extern \"C\"\n";
}

void
CppSimBackend::emit(const Context &ctx, std::ostream &os) const
{
    sim::SimProgram prog(ctx, ctx.entrypoint());
    emitCppSim(prog, os);
}

namespace {

BackendRegistration<CppSimBackend> reg{
    "cppsim",
    "compiled-simulation C++ module (JIT input for --sim-engine=compiled)",
    ".cc", true};

} // namespace

} // namespace calyx::emit
