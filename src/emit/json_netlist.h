#ifndef CALYX_EMIT_JSON_NETLIST_H
#define CALYX_EMIT_JSON_NETLIST_H

#include <ostream>
#include <string>

#include "emit/backend.h"
#include "ir/context.h"

namespace calyx::emit {

/**
 * JSON netlist backend: serializes the flat guarded-assignment form
 * that the cycle simulator consumes — extern primitive prototypes,
 * components with signatures, cells, and guarded continuous
 * assignments. Lowered programs only (no groups, no control).
 *
 * The format round-trips: `loadJsonNetlist` rebuilds a semantically
 * identical Context, so a netlist emitted here, reloaded, and wrapped
 * in `sim::SimProgram` simulates to the same architectural state and
 * cycle count as the in-memory design (tested in
 * tests/test_json_netlist.cc). Registered as `json-netlist`.
 */
class JsonNetlistBackend : public Backend
{
  public:
    void emit(const Context &ctx, std::ostream &os) const override;
};

/**
 * Rebuild a Context from a JSON netlist produced by JsonNetlistBackend.
 * Throws Error on malformed documents or unsupported versions.
 */
Context loadJsonNetlist(const std::string &text);

} // namespace calyx::emit

#endif // CALYX_EMIT_JSON_NETLIST_H
