#include "emit/dot.h"

#include <map>
#include <set>

#include "support/error.h"

namespace calyx::emit {

namespace {

/** Quote a string for use as a dot node id or label. */
std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += "\"";
    return out;
}

std::string
controlLabel(const Control &ctrl)
{
    switch (ctrl.kind()) {
      case Control::Kind::Empty:
        return "empty";
      case Control::Kind::Enable:
        return "enable";
      case Control::Kind::Seq:
        return "seq";
      case Control::Kind::Par:
        return "par";
      case Control::Kind::If:
        return "if " + cast<If>(ctrl).condPort().str();
      case Control::Kind::While:
        return "while " + cast<While>(ctrl).condPort().str();
    }
    panic("bad control kind");
}

/** Emits one component cluster; keeps node ids unique via a prefix. */
class ComponentGraph
{
  public:
    ComponentGraph(const Component &comp, std::ostream &os)
        : comp(comp), os(os), prefix(comp.name() + "/")
    {}

    void
    emit()
    {
        os << "  subgraph " << quoted("cluster_" + comp.name()) << " {\n";
        os << "    label=" << quoted("component " + comp.name()) << ";\n";

        for (const auto &cell : comp.cells()) {
            std::string label = cell->name() + ": " + cell->type();
            if (!cell->params().empty()) {
                label += "(";
                bool first = true;
                for (uint64_t p : cell->params()) {
                    if (!first)
                        label += ", ";
                    first = false;
                    label += std::to_string(p);
                }
                label += ")";
            }
            os << "    " << node(cell->name()) << " [shape=box, label="
               << quoted(label) << "];\n";
        }
        for (const auto &group : comp.groups()) {
            os << "    " << groupNode(group->name())
               << " [shape=ellipse, style=filled, fillcolor=lightgrey, "
                  "label=" << quoted("group " + group->name()) << "];\n";
        }

        for (const auto &group : comp.groups()) {
            for (const auto &a : group->assignments())
                dataEdge(a, group->name());
        }
        for (const auto &a : comp.continuousAssignments())
            dataEdge(a, "");

        if (comp.control().kind() != Control::Kind::Empty)
            controlNode(comp.control());

        // FSM view: one cluster per machine the control lowering built
        // (present after compile-control / static have run).
        for (const auto &m : comp.fsms())
            fsmCluster(*m);

        os << "  }\n";
    }

  private:
    std::string
    node(const std::string &cell)
    {
        return quoted(prefix + cell);
    }

    std::string
    groupNode(const std::string &group)
    {
        return quoted(prefix + "group/" + group);
    }

    /** Node for an assignment endpoint; "" when it has none (consts). */
    std::string
    endpoint(const PortRef &ref)
    {
        switch (ref.kind) {
          case PortRef::Kind::Cell:
            return node(ref.parent);
          case PortRef::Kind::Hole:
            return groupNode(ref.parent);
          case PortRef::Kind::This: {
            // Signature ports get lazily-created plaintext nodes.
            std::string id = prefix + "port/" + ref.port;
            if (ports.insert(id).second)
                os << "    " << quoted(id) << " [shape=plaintext, label="
                   << quoted(ref.port) << "];\n";
            return quoted(id);
          }
          case PortRef::Kind::Const:
            return "";
        }
        panic("bad PortRef kind");
    }

    void
    dataEdge(const Assignment &a, const std::string &group)
    {
        std::string dst = endpoint(a.dst);
        if (dst.empty())
            return;
        std::set<std::string> sources;
        std::string direct = endpoint(a.src);
        if (!direct.empty())
            sources.insert(direct);
        // Guard reads are dataflow too; they gate the destination.
        a.guard->ports([&](const PortRef &p) {
            std::string n = endpoint(p);
            if (!n.empty())
                sources.insert(n);
        });
        for (const std::string &src : sources) {
            std::string edge = "    " + src + " -> " + dst;
            if (!group.empty())
                edge += " [label=" + quoted(group) + "]";
            edge += ";\n";
            if (edges.insert(edge).second)
                os << edge;
        }
    }

    /** Emit a control-tree node, return its id. */
    std::string
    controlNode(const Control &ctrl)
    {
        std::string id = quoted(prefix + "ctrl/" +
                                std::to_string(ctrlCount++));
        os << "    " << id << " [shape=diamond, label="
           << quoted(controlLabel(ctrl)) << "];\n";

        auto child = [this, &id](const Control &c) {
            if (c.kind() == Control::Kind::Enable) {
                os << "    " << id << " -> "
                   << groupNode(cast<Enable>(c).group())
                   << " [style=dashed];\n";
            } else if (c.kind() != Control::Kind::Empty) {
                // Emit the child subtree first: controlNode writes the
                // child's node line, which must not split the edge line.
                std::string child_id = controlNode(c);
                os << "    " << id << " -> " << child_id
                   << " [style=dashed];\n";
            }
        };

        switch (ctrl.kind()) {
          case Control::Kind::Empty:
            break;
          case Control::Kind::Enable:
            os << "    " << id << " -> "
               << groupNode(cast<Enable>(ctrl).group())
               << " [style=dashed];\n";
            break;
          case Control::Kind::Seq:
            for (const auto &c : cast<Seq>(ctrl).stmts())
                child(*c);
            break;
          case Control::Kind::Par:
            for (const auto &c : cast<Par>(ctrl).stmts())
                child(*c);
            break;
          case Control::Kind::If: {
            const auto &i = cast<If>(ctrl);
            if (!i.condGroup().empty())
                os << "    " << id << " -> " << groupNode(i.condGroup())
                   << " [style=dashed, label=\"cond\"];\n";
            child(i.trueBranch());
            child(i.falseBranch());
            break;
          }
          case Control::Kind::While: {
            const auto &w = cast<While>(ctrl);
            if (!w.condGroup().empty())
                os << "    " << id << " -> " << groupNode(w.condGroup())
                   << " [style=dashed, label=\"cond\"];\n";
            child(w.body());
            break;
          }
        }
        return id;
    }

    /** One cluster per lowered machine: states as nodes (accepting =
     *  double circle, counter states annotated with their span),
     *  transitions as edges labeled with their guards. */
    void
    fsmCluster(const FsmMachine &m)
    {
        std::string mp = prefix + "fsm/" + m.name() + "/";
        os << "    subgraph "
           << quoted("cluster_" + prefix + "fsm_" + m.name()) << " {\n";
        std::string label = "fsm " + m.name();
        if (m.realized()) {
            label += " [" +
                     std::string(fsmEncodingName(m.encoding()));
            label += m.registerCell().empty()
                         ? ", no register]"
                         : ", " + m.registerCell() + "]";
        }
        os << "      label=" << quoted(label) << ";\n";
        for (uint32_t id = 0; id < m.states().size(); ++id) {
            const FsmState &s = m.state(id);
            std::string text = s.name.str();
            if (s.span != 1)
                text += " (" + std::to_string(s.span) + " cycles)";
            os << "      " << quoted(mp + std::to_string(id))
               << " [shape=" << (s.accepting ? "doublecircle" : "circle")
               << (id == m.entry() ? ", style=bold" : "")
               << ", label=" << quoted(text) << "];\n";
        }
        for (uint32_t id = 0; id < m.states().size(); ++id) {
            for (const auto &t : m.state(id).transitions) {
                os << "      " << quoted(mp + std::to_string(id)) << " -> "
                   << quoted(mp + std::to_string(t.target));
                if (!t.guard->isTrue())
                    os << " [label=" << quoted(t.guard->str()) << "]";
                os << ";\n";
            }
        }
        os << "    }\n";
    }

    const Component &comp;
    std::ostream &os;
    std::string prefix;
    std::set<std::string> ports;
    std::set<std::string> edges;
    int ctrlCount = 0;
};

} // namespace

void
DotBackend::emit(const Context &ctx, std::ostream &os) const
{
    os << "digraph " << quoted(ctx.entrypoint()) << " {\n";
    os << "  rankdir=LR;\n";
    for (const auto &comp : ctx.components())
        ComponentGraph(*comp, os).emit();
    os << "}\n";
}

namespace {
BackendRegistration<DotBackend> registration{
    "dot", "Graphviz cell/group/control structure graph (any stage)",
    ".dot"};
} // namespace

} // namespace calyx::emit
