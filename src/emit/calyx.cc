#include "emit/calyx.h"

#include "ir/printer.h"

namespace calyx::emit {

void
CalyxBackend::emit(const Context &ctx, std::ostream &os) const
{
    Printer::print(ctx, os);
}

namespace {
BackendRegistration<CalyxBackend> registration{
    "calyx", "Textual Calyx IL at the current pipeline stage", ".futil"};
} // namespace

} // namespace calyx::emit
