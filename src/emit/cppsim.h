#ifndef CALYX_EMIT_CPPSIM_H
#define CALYX_EMIT_CPPSIM_H

#include <ostream>

#include "emit/backend.h"

namespace calyx::sim {
class SimProgram;
}

namespace calyx::emit {

/**
 * Compiled-simulation backend ("cppsim"): codegen the levelized
 * evaluation schedule of a fully-lowered program as one straight-line
 * C++ translation unit — the verilator-style technique. The emitted
 * module walks the Tarjan-condensed topological order of the port
 * dependency graph (sim/schedule.h): one statement per port over a
 * dense `uint64_t vals[]` array indexed by the existing dense port
 * ids, guards folded to branchless integer selects, primitive
 * semantics inlined per cell, and non-trivial SCCs emitted as bounded
 * Gauss–Seidel fixed-point loops that set the same port-naming
 * diagnostic the interpreter raises.
 *
 * The module exposes a tiny C ABI (`cppsim_*` symbols) consumed by the
 * JIT driver in sim/compiled.h: instance construction, storage binding
 * (register/memory state stays inside the interpreter's PrimModel
 * objects, so archState() and harness pokes work unchanged), reset,
 * eval, clock, and an error slot. Constant-only ports (std_const
 * outputs and unguarded constant assignments, propagated transitively)
 * are folded out of eval() and written once at reset.
 */
class CppSimBackend : public Backend
{
  public:
    void emit(const Context &ctx, std::ostream &os) const override;
};

/** Codegen knobs for emitCppSim. */
struct CppSimOptions
{
    /**
     * Emit the observability variant: the instance carries a probe
     * callback slot (installed via `cppsim_set_probe`), and eval()
     * ends by invoking it with the settled port array. Off by default
     * so the hot path stays branch-free; the JIT driver keeps probed
     * and plain modules as distinct cache entries (different source,
     * different digest). See docs/observability.md.
     */
    bool probe = false;

    /**
     * Number of stimulus lanes the module advances per eval()/clock()
     * call. 1 (the default) emits exactly the classic scalar module.
     * For lanes > 1 every port value becomes a dense SoA plane —
     * `vals[port * kLanes + lane]` — and every statement is wrapped in
     * (or fused into) a lane loop the host compiler can vectorize, so
     * one walk of the schedule advances `lanes` independent stimulus
     * sets. Per-lane primitive state lives behind the same bind()
     * pointers: each register slot points at a `uint64_t[kLanes]`
     * array and each memory slot at a lane-major
     * `uint64_t[kLanes * size]` block. Lane modules reject `probe`
     * (observers are inherently single-stimulus; see
     * docs/simulation.md "Batched & parallel execution").
     */
    uint32_t lanes = 1;

    /**
     * Macro-task partition target (sim/partition.h). 0 or 1 (the
     * default) emits the classic single-eval module, byte-identical to
     * before partitioning existed. For partitions > 1 the schedule is
     * cut by buildPartitionPlan() and eval is emitted as one function
     * group per macro-task plus embedded dependency/cost tables:
     * `cppsim_eval_partition(s, vals, i)` runs task i alone (callers
     * follow the plan tables, sim/partition.h's PartitionRunner), and
     * `cppsim_eval` is kept as the in-order loop over every task for
     * plan-free hosts — same values either way. Each partition owns a
     * private guard-pool slice and a private error slot (`perr[i]`),
     * so concurrent partition evals never write shared state. The
     * probed variant is rejected with partitions (observers are
     * notified host-side after the partitions join). Composes with
     * lanes > 1 (batch inner parallelism): statements are lane-wrapped
     * per task, so lane fusion never crosses a partition boundary.
     */
    uint32_t partitions = 0;
};

/**
 * Emit the compiled-simulation C++ module for an already-flattened
 * program. fatal() when the program still has groups (the compiled
 * engine requires fully-lowered programs) or contains an unconditional
 * combinational cycle (the schedule build names the ports).
 */
void emitCppSim(const sim::SimProgram &prog, std::ostream &os,
                const CppSimOptions &opts = {});

/** Version of the generated C ABI; bumped on incompatible changes. */
constexpr uint32_t cppsimAbiVersion = 1;

/**
 * Shard seam marker in the generated source. The module is laid out as
 * a common prologue (declarations only), then marker-prefixed segments:
 * one per chunk function and a final tail holding single definitions
 * and the C ABI. The JIT driver (sim/compiled.cc) may split on these
 * lines, grouping contiguous segments into one [prologue + segments]
 * translation unit per hardware thread and compiling them in parallel;
 * the markers are comments, so the file also builds as one unit.
 */
constexpr const char *cppsimShardMarker = "//--cppsim-shard--";

/** Statements per generated chunk function. Bounds both the optimizer's
 * per-function cost on huge netlists and the shard granularity. */
constexpr size_t cppsimChunkStatements = 500;

/** Byte cap per chunk function body: statements vary from one line to
 * multi-KB mux blocks, and host-compiler passes are superlinear in
 * function size, so chunks are also split when they grow past this. */
constexpr size_t cppsimChunkBytes = 64 * 1024;

} // namespace calyx::emit

#endif // CALYX_EMIT_CPPSIM_H
