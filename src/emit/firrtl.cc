#include "emit/firrtl.h"

#include <map>
#include <vector>

#include "support/error.h"

namespace calyx::emit {

namespace {

/**
 * FIRRTL has no parameterized modules, so every (primitive, parameters)
 * pair used by the program becomes its own specialized module, e.g.
 * std_add(32) -> `std_add_32`.
 */
std::string
specializedName(const Cell &cell)
{
    std::string name = cell.type();
    for (uint64_t p : cell.params())
        name += "_" + std::to_string(p);
    return name;
}

std::string
uintLit(Width width, uint64_t value)
{
    return "UInt<" + std::to_string(width) + ">(" + std::to_string(value) +
           ")";
}

/** FIRRTL reference for a port operand inside a component body. */
std::string
refExpr(const PortRef &p)
{
    switch (p.kind) {
      case PortRef::Kind::This:
        return p.port;
      case PortRef::Kind::Cell:
        return p.parent + "." + p.port;
      case PortRef::Kind::Const:
        return uintLit(p.width, p.value);
      case PortRef::Kind::Hole:
        fatal("firrtl backend: residual hole ", p.str(),
              " (run RemoveGroups first)");
    }
    panic("bad PortRef kind");
}

std::string
guardExpr(const GuardPtr &g)
{
    switch (g->kind()) {
      case Guard::Kind::True:
        return "UInt<1>(1)";
      case Guard::Kind::Port:
        return refExpr(g->port());
      case Guard::Kind::Not:
        return "not(" + guardExpr(g->left()) + ")";
      case Guard::Kind::And:
        return "and(" + guardExpr(g->left()) + ", " +
               guardExpr(g->right()) + ")";
      case Guard::Kind::Or:
        return "or(" + guardExpr(g->left()) + ", " + guardExpr(g->right()) +
               ")";
      case Guard::Kind::Cmp: {
        const char *op = nullptr;
        switch (g->cmpOp()) {
          case Guard::CmpOp::Eq:  op = "eq";  break;
          case Guard::CmpOp::Neq: op = "neq"; break;
          case Guard::CmpOp::Lt:  op = "lt";  break;
          case Guard::CmpOp::Gt:  op = "gt";  break;
          case Guard::CmpOp::Leq: op = "leq"; break;
          case Guard::CmpOp::Geq: op = "geq"; break;
        }
        return std::string(op) + "(" + refExpr(g->lhs()) + ", " +
               refExpr(g->rhs()) + ")";
      }
    }
    panic("bad guard kind");
}

/** Combinational expression implementing a std_* primitive, or "". */
std::string
combBody(const std::string &type, const std::vector<uint64_t> &params)
{
    auto w = [&params](size_t i) { return params[i]; };
    if (type == "std_const")
        return uintLit(static_cast<Width>(w(0)), w(1));
    if (type == "std_wire")
        return "in";
    if (type == "std_slice")
        return "bits(in, " + std::to_string(w(1) - 1) + ", 0)";
    if (type == "std_pad")
        return "pad(in, " + std::to_string(w(1)) + ")";
    if (type == "std_not")
        return "not(in)";
    // Width-preserving arithmetic: FIRRTL add/sub/dshl grow the result,
    // so truncate back to WIDTH like the SystemVerilog semantics.
    if (type == "std_add")
        return "tail(add(left, right), 1)";
    if (type == "std_sub")
        return "tail(sub(left, right), 1)";
    if (type == "std_and")
        return "and(left, right)";
    if (type == "std_or")
        return "or(left, right)";
    if (type == "std_xor")
        return "xor(left, right)";
    if (type == "std_lsh")
        return "bits(dshl(left, right), " + std::to_string(w(0) - 1) +
               ", 0)";
    if (type == "std_rsh")
        return "dshr(left, right)";
    static const std::map<std::string, std::string> cmps = {
        {"std_eq", "eq"},   {"std_neq", "neq"}, {"std_lt", "lt"},
        {"std_gt", "gt"},   {"std_le", "leq"},  {"std_ge", "geq"},
    };
    auto it = cmps.find(type);
    if (it != cmps.end())
        return it->second + "(left, right)";
    return "";
}

void
emitPrimPorts(const Cell &cell, std::ostream &os, const std::string &indent)
{
    os << indent << "input clk : Clock\n";
    for (const auto &p : cell.portDefs()) {
        os << indent
           << (p.dir == Direction::Input ? "input " : "output ") << p.name
           << " : UInt<" << p.width << ">\n";
    }
}

/** One specialized module (or extmodule) per used primitive variant. */
void
emitPrimitiveModule(const Cell &cell, const Context &ctx, std::ostream &os)
{
    const PrimitiveDef &def = ctx.primitives().get(cell.type());
    const std::string name = specializedName(cell);

    if (cell.type() == "std_reg") {
        Width width = static_cast<Width>(cell.params()[0]);
        os << "  module " << name << " :\n";
        emitPrimPorts(cell, os, "    ");
        os << "    reg value : UInt<" << width << ">, clk\n"
           << "    reg done_reg : UInt<1>, clk\n"
           << "    done_reg <= UInt<1>(0)\n"
           << "    when write_en :\n"
           << "      value <= in\n"
           << "      done_reg <= UInt<1>(1)\n"
           << "    out <= value\n"
           << "    done <= done_reg\n";
        return;
    }

    std::string body = combBody(cell.type(), cell.params());
    if (!body.empty()) {
        os << "  module " << name << " :\n";
        emitPrimPorts(cell, os, "    ");
        os << "    out <= " << body << "\n";
        return;
    }

    // Stateful library primitives (memories, pipelined mult/div, sqrt)
    // and extern primitives: black-box onto the SystemVerilog library.
    os << "  extmodule " << name << " :\n";
    emitPrimPorts(cell, os, "    ");
    os << "    defname = " << cell.type() << "\n";
    for (size_t i = 0; i < def.params.size(); ++i)
        os << "    parameter " << def.params[i] << " = "
           << cell.params()[i] << "\n";
    if (!def.externFile.empty())
        os << "    ; implementation provided by " << def.externFile << "\n";
}

} // namespace

void
FirrtlBackend::emitComponent(const Component &comp, const Context &ctx,
                             std::ostream &os)
{
    if (!comp.groups().empty())
        fatal("firrtl backend: component ", comp.name(),
              " still has groups (run the compilation pipeline first)");

    os << "  module " << comp.name() << " :\n";
    os << "    input clk : Clock\n";
    for (const auto &p : comp.signature()) {
        os << "    " << (p.dir == Direction::Input ? "input " : "output ")
           << p.name << " : UInt<" << p.width << ">\n";
    }
    os << "\n";

    // Instances. Primitive cells instantiate their specialization;
    // component cells instantiate the component module directly.
    for (const auto &cell : comp.cells()) {
        std::string module = cell->isPrimitive() ? specializedName(*cell)
                                                 : cell->type().str();
        os << "    inst " << cell->name() << " of " << module << "\n";
        os << "    " << cell->name() << ".clk <= clk\n";
        // Inputs the program never drives stay explicitly invalid.
        for (const auto &p : cell->portDefs()) {
            if (p.dir == Direction::Input)
                os << "    " << cell->name() << "." << p.name
                   << " is invalid\n";
        }
    }
    for (const auto &p : comp.signature()) {
        if (p.dir == Direction::Output)
            os << "    " << p.name << " is invalid\n";
    }
    os << "\n";

    // Guarded assignments become mux trees per destination.
    for (const auto &[dst, assigns] :
         groupAssignmentsByDst(comp.continuousAssignments())) {
        Width width = comp.portWidth(dst);
        std::string expr = uintLit(width, 0);
        for (auto it = assigns.rbegin(); it != assigns.rend(); ++it) {
            expr = "mux(" + guardExpr((*it)->guard) + ", " +
                   refExpr((*it)->src) + ", " + expr + ")";
        }
        os << "    " << refExpr(dst) << " <= " << expr << "\n";
    }
}

void
FirrtlBackend::emit(const Context &ctx, std::ostream &os) const
{
    os << "circuit " << ctx.entrypoint() << " :\n";

    // Primitive specializations used anywhere in the program, deduped.
    std::map<std::string, const Cell *> variants;
    for (const auto &comp : ctx.components()) {
        for (const auto &cell : comp->cells()) {
            if (cell->isPrimitive())
                variants.try_emplace(specializedName(*cell), cell.get());
        }
    }
    for (const auto &[_, cell] : variants) {
        emitPrimitiveModule(*cell, ctx, os);
        os << "\n";
    }

    for (const auto &comp : ctx.components()) {
        emitComponent(*comp, ctx, os);
        os << "\n";
    }
}

namespace {
BackendRegistration<FirrtlBackend> registration{
    "firrtl", "FIRRTL circuit (lowered programs only)", ".fir",
    /*requires_lowered=*/true};
} // namespace

} // namespace calyx::emit
