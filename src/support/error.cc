#include "support/error.h"

#include <cstdlib>
#include <iostream>

namespace calyx {

void
panic(const std::string &msg)
{
    std::cerr << "calyx internal error: " << msg << std::endl;
    std::abort();
}

} // namespace calyx
