#ifndef CALYX_SUPPORT_JSON_H
#define CALYX_SUPPORT_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace calyx::json {

/**
 * Minimal JSON document model for the netlist interchange format
 * (src/emit/json_netlist.*) and the observability report envelope
 * (src/obs/report.h). Self-contained on purpose: the container image
 * bakes in no JSON library, and the subset we need — objects, arrays,
 * strings, unsigned integers, reals, booleans — is tiny.
 *
 * Objects preserve insertion order so emitted documents are
 * deterministic and diffable.
 */
class Value
{
  public:
    enum class Kind { Null, Bool, Num, Real, Str, Arr, Obj };

    Value() = default;

    static Value boolean(bool b);
    static Value number(uint64_t n);
    static Value real(double d);
    static Value str(std::string s);
    static Value array();
    static Value object();

    Kind kind() const { return kindVal; }
    bool isNull() const { return kindVal == Kind::Null; }

    /** Typed accessors; fatal() on a kind mismatch. */
    bool asBool() const;
    uint64_t asNum() const;
    /** Real value; integer Nums coerce (a profile field like 1.0 may
     * have been written and re-parsed as 1). */
    double asReal() const;
    const std::string &asStr() const;
    const std::vector<Value> &items() const;
    const std::vector<std::pair<std::string, Value>> &members() const;

    /** Append to an array; fatal() if this is not one. */
    void push(Value v);

    /** Set an object member (appends; later sets win on lookup). */
    void set(const std::string &key, Value v);

    /** Object member or nullptr; fatal() if this is not an object. */
    const Value *find(const std::string &key) const;

    /** Object member; fatal() when absent. */
    const Value &at(const std::string &key) const;

    /** Serialize with 2-space indentation. */
    void write(std::ostream &os, int indent = 0) const;
    std::string str() const;

  private:
    Kind kindVal = Kind::Null;
    bool boolVal = false;
    uint64_t numVal = 0;
    double realVal = 0;
    std::string strVal;
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj;
};

/**
 * Parse a JSON document. Throws Error with a line/column position on
 * malformed input. Plain unsigned integers parse as Num (preserving
 * full 64-bit precision for the netlist format); numbers with a sign,
 * fraction, or exponent parse as Real.
 */
Value parse(const std::string &text);

} // namespace calyx::json

#endif // CALYX_SUPPORT_JSON_H
