#ifndef CALYX_SUPPORT_BITSET_H
#define CALYX_SUPPORT_BITSET_H

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace calyx {

/**
 * A fixed-width bitset over dense indices (cell ids, register indices,
 * group ids). The analysis layer uses these for live sets and
 * interference rows: word-parallel union/subtract instead of
 * node-by-node tree-set splicing.
 */
class DenseBits
{
  public:
    DenseBits() = default;
    explicit DenseBits(size_t nbits) : w((nbits + 63) / 64, 0) {}

    void
    resize(size_t nbits)
    {
        w.assign((nbits + 63) / 64, 0);
    }

    void set(size_t i) { w[i / 64] |= uint64_t(1) << (i % 64); }
    void reset(size_t i) { w[i / 64] &= ~(uint64_t(1) << (i % 64)); }
    bool
    test(size_t i) const
    {
        return (w[i / 64] >> (i % 64)) & 1;
    }

    DenseBits &
    operator|=(const DenseBits &other)
    {
        // Clamp to the shorter operand: mixing widths is not a read
        // past the narrower vector, the missing words are zero.
        size_t n = std::min(w.size(), other.w.size());
        for (size_t i = 0; i < n; ++i)
            w[i] |= other.w[i];
        return *this;
    }

    /** this &= ~other. */
    void
    subtract(const DenseBits &other)
    {
        size_t n = std::min(w.size(), other.w.size());
        for (size_t i = 0; i < n; ++i)
            w[i] &= ~other.w[i];
    }

    bool
    any() const
    {
        for (uint64_t word : w) {
            if (word)
                return true;
        }
        return false;
    }

    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t word : w)
            n += static_cast<size_t>(std::popcount(word));
        return n;
    }

    bool operator==(const DenseBits &other) const = default;

    /** Call `fn(index)` for every set bit, ascending. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t wi = 0; wi < w.size(); ++wi) {
            uint64_t word = w[wi];
            while (word) {
                unsigned bit = std::countr_zero(word);
                fn(wi * 64 + bit);
                word &= word - 1;
            }
        }
    }

    const std::vector<uint64_t> &words() const { return w; }

  private:
    std::vector<uint64_t> w;
};

} // namespace calyx

#endif // CALYX_SUPPORT_BITSET_H
