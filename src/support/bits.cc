#include "support/bits.h"

namespace calyx {

uint64_t
bitMask(Width width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return ~uint64_t(0);
    return (uint64_t(1) << width) - 1;
}

uint64_t
truncate(uint64_t value, Width width)
{
    return value & bitMask(width);
}

Width
bitsNeeded(uint64_t value)
{
    Width w = 1;
    while (value > bitMask(w))
        ++w;
    return w;
}

Width
fsmWidth(uint64_t max_state)
{
    return bitsNeeded(max_state);
}

} // namespace calyx
