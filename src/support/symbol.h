#ifndef CALYX_SUPPORT_SYMBOL_H
#define CALYX_SUPPORT_SYMBOL_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace calyx {

/**
 * An interned identifier: a dense u32 index into a global, append-only
 * string table. Symbols are the name type of the IR core — component,
 * cell, group, port, and attribute names are all Symbols — so the hot
 * operations of every layer (map lookups in passes, port resolution in
 * the simulator, equality tests in read/write-set analyses) are integer
 * compares and integer hashes instead of heap-string walks.
 *
 * Properties:
 *  - Equality and hashing are O(1) on the id. Two Symbols are equal iff
 *    they intern the same spelling.
 *  - `operator<` is *lexicographic* on the spelling, NOT id order.
 *    Interning order depends on execution order (parse order, pass
 *    order), so id-ordered containers would iterate differently from
 *    the string-keyed containers they replace and perturb every
 *    printed artifact. Ordered containers (std::set<Symbol>,
 *    std::map<Symbol, V>) therefore iterate exactly like their
 *    std::string ancestors; use unordered containers (O(1) id hash)
 *    on hot paths where iteration order does not leak into output.
 *  - The table is global and append-only; symbols are never freed.
 *    Interning is thread-safe (shared mutex); `str()` returns a
 *    reference that remains valid for the life of the process.
 *  - The default Symbol is the empty string and has id 0.
 *
 * Symbol converts implicitly from and to strings so the IR API remains
 * source-compatible with string-based callers: `comp.cell("a0")` interns
 * at the call site, and a Symbol can be passed wherever a
 * `const std::string &` is expected. Code on a hot path should traffic
 * in Symbols end to end and convert only at I/O boundaries.
 */
class Symbol
{
  public:
    /** The empty symbol (id 0). */
    constexpr Symbol() = default;

    /** Intern `s` (implicit: string-typed call sites keep compiling). */
    Symbol(std::string_view s);
    Symbol(const std::string &s);
    Symbol(const char *s);

    /** Dense table index; stable for the life of the process. */
    uint32_t id() const { return idVal; }

    /** The interned spelling; valid for the life of the process. */
    const std::string &str() const;

    /** Implicit view as the interned spelling. */
    operator const std::string &() const { return str(); }

    bool empty() const { return idVal == 0; }

    /** O(1): same id iff same spelling. */
    bool operator==(const Symbol &other) const
    {
        return idVal == other.idVal;
    }
    bool operator!=(const Symbol &other) const
    {
        return idVal != other.idVal;
    }

    /** Deterministic lexicographic order (see class comment). */
    bool operator<(const Symbol &other) const
    {
        return idVal != other.idVal && str() < other.str();
    }

    /** Comparator ordering by id, for containers where order is free. */
    struct IdLess
    {
        bool
        operator()(const Symbol &a, const Symbol &b) const
        {
            return a.id() < b.id();
        }
    };

    /** Number of distinct symbols interned so far (tests, stats). */
    static size_t tableSize();

    /**
     * Rebuild a Symbol from an id previously obtained via id(). The id
     * must come from a live Symbol (ids are never recycled, so any
     * stored id stays valid); passing an arbitrary integer is UB.
     */
    static Symbol
    fromId(uint32_t id)
    {
        Symbol s;
        s.idVal = id;
        return s;
    }

  private:
    uint32_t idVal = 0;
};

/**
 * Mixed comparisons resolve the string side without interning it (an
 * exact-match overload also beats the ambiguity of the two implicit
 * conversion directions).
 */
bool operator==(const Symbol &a, std::string_view b);
inline bool
operator==(std::string_view a, const Symbol &b)
{
    return b == a;
}
inline bool
operator==(const Symbol &a, const char *b)
{
    return a == std::string_view(b);
}
inline bool
operator==(const char *a, const Symbol &b)
{
    return b == std::string_view(a);
}
inline bool
operator==(const Symbol &a, const std::string &b)
{
    return a == std::string_view(b);
}
inline bool
operator==(const std::string &a, const Symbol &b)
{
    return b == std::string_view(a);
}
template <typename T>
bool
operator!=(const Symbol &a, const T &b)
{
    return !(a == b);
}

/** Concatenation at diagnostic/printing boundaries. */
inline std::string
operator+(const Symbol &a, const char *b)
{
    return a.str() + b;
}
inline std::string
operator+(const char *a, const Symbol &b)
{
    return a + b.str();
}
inline std::string
operator+(const Symbol &a, const std::string &b)
{
    return a.str() + b;
}
inline std::string
operator+(const std::string &a, const Symbol &b)
{
    return a + b.str();
}

std::ostream &operator<<(std::ostream &os, const Symbol &s);

} // namespace calyx

template <>
struct std::hash<calyx::Symbol>
{
    size_t
    operator()(const calyx::Symbol &s) const noexcept
    {
        // Fibonacci scramble: dense sequential ids otherwise collide in
        // power-of-two bucket counts.
        return static_cast<size_t>(s.id()) * 0x9e3779b97f4a7c15ull;
    }
};

#endif // CALYX_SUPPORT_SYMBOL_H
