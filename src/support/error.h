#ifndef CALYX_SUPPORT_ERROR_H
#define CALYX_SUPPORT_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace calyx {

/**
 * Error raised for malformed user input: ill-formed IL programs,
 * unparsable source text, violated pass preconditions, and simulation
 * errors that correspond to undefined behaviour in the paper (e.g. two
 * active drivers on one port). Analogous to gem5's fatal().
 */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/** Raise an Error assembled from streamable pieces. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    throw Error(os.str());
}

/**
 * Internal invariant violation: a bug in this compiler rather than in the
 * input program. Analogous to gem5's panic().
 */
[[noreturn]] void panic(const std::string &msg);

} // namespace calyx

#endif // CALYX_SUPPORT_ERROR_H
