#include "support/symbol.h"

#include <deque>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace calyx {

namespace {

/**
 * The global string table. A deque gives stable addresses under
 * append, so `Symbol::str()` can hand out references without holding
 * the lock; the map resolves spellings to ids on intern.
 *
 * Meyers-singleton initialization makes first use from any thread safe
 * (C++11 magic statics); the shared mutex serializes appends against
 * concurrent lookups afterwards.
 */
struct Table
{
    std::shared_mutex mutex;
    std::deque<std::string> strings;
    std::unordered_map<std::string_view, uint32_t> ids;

    Table()
    {
        strings.emplace_back(); // id 0 = ""
        ids.emplace(strings.back(), 0);
    }

    uint32_t
    intern(std::string_view s)
    {
        {
            std::shared_lock lock(mutex);
            auto it = ids.find(s);
            if (it != ids.end())
                return it->second;
        }
        std::unique_lock lock(mutex);
        auto it = ids.find(s);
        if (it != ids.end())
            return it->second;
        uint32_t id = static_cast<uint32_t>(strings.size());
        strings.emplace_back(s);
        // Keyed by a view of the deque-owned copy, which never moves.
        ids.emplace(strings.back(), id);
        return id;
    }

    const std::string &
    get(uint32_t id)
    {
        std::shared_lock lock(mutex);
        return strings[id];
    }

    size_t
    size()
    {
        std::shared_lock lock(mutex);
        return strings.size();
    }
};

Table &
table()
{
    static Table t;
    return t;
}

} // namespace

Symbol::Symbol(std::string_view s) : idVal(s.empty() ? 0 : table().intern(s))
{}

Symbol::Symbol(const std::string &s) : Symbol(std::string_view(s)) {}

Symbol::Symbol(const char *s) : Symbol(std::string_view(s)) {}

const std::string &
Symbol::str() const
{
    return table().get(idVal);
}

size_t
Symbol::tableSize()
{
    return table().size();
}

bool
operator==(const Symbol &a, std::string_view b)
{
    return std::string_view(a.str()) == b;
}

std::ostream &
operator<<(std::ostream &os, const Symbol &s)
{
    return os << s.str();
}

} // namespace calyx
