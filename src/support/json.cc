#include "support/json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "support/error.h"

namespace calyx::json {

Value
Value::boolean(bool b)
{
    Value v;
    v.kindVal = Kind::Bool;
    v.boolVal = b;
    return v;
}

Value
Value::number(uint64_t n)
{
    Value v;
    v.kindVal = Kind::Num;
    v.numVal = n;
    return v;
}

Value
Value::real(double d)
{
    Value v;
    v.kindVal = Kind::Real;
    v.realVal = d;
    return v;
}

Value
Value::str(std::string s)
{
    Value v;
    v.kindVal = Kind::Str;
    v.strVal = std::move(s);
    return v;
}

Value
Value::array()
{
    Value v;
    v.kindVal = Kind::Arr;
    return v;
}

Value
Value::object()
{
    Value v;
    v.kindVal = Kind::Obj;
    return v;
}

namespace {

const char *
kindName(Value::Kind k)
{
    switch (k) {
      case Value::Kind::Null: return "null";
      case Value::Kind::Bool: return "bool";
      case Value::Kind::Num:  return "number";
      case Value::Kind::Real: return "real";
      case Value::Kind::Str:  return "string";
      case Value::Kind::Arr:  return "array";
      case Value::Kind::Obj:  return "object";
    }
    return "?";
}

[[noreturn]] void
wrongKind(Value::Kind want, Value::Kind got)
{
    fatal("json: expected ", kindName(want), ", got ", kindName(got));
}

} // namespace

bool
Value::asBool() const
{
    if (kindVal != Kind::Bool)
        wrongKind(Kind::Bool, kindVal);
    return boolVal;
}

uint64_t
Value::asNum() const
{
    if (kindVal != Kind::Num)
        wrongKind(Kind::Num, kindVal);
    return numVal;
}

double
Value::asReal() const
{
    if (kindVal == Kind::Num)
        return static_cast<double>(numVal);
    if (kindVal != Kind::Real)
        wrongKind(Kind::Real, kindVal);
    return realVal;
}

const std::string &
Value::asStr() const
{
    if (kindVal != Kind::Str)
        wrongKind(Kind::Str, kindVal);
    return strVal;
}

const std::vector<Value> &
Value::items() const
{
    if (kindVal != Kind::Arr)
        wrongKind(Kind::Arr, kindVal);
    return arr;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (kindVal != Kind::Obj)
        wrongKind(Kind::Obj, kindVal);
    return obj;
}

void
Value::push(Value v)
{
    if (kindVal != Kind::Arr)
        wrongKind(Kind::Arr, kindVal);
    arr.push_back(std::move(v));
}

void
Value::set(const std::string &key, Value v)
{
    if (kindVal != Kind::Obj)
        wrongKind(Kind::Obj, kindVal);
    obj.emplace_back(key, std::move(v));
}

const Value *
Value::find(const std::string &key) const
{
    if (kindVal != Kind::Obj)
        wrongKind(Kind::Obj, kindVal);
    const Value *found = nullptr;
    for (const auto &[k, v] : obj) {
        if (k == key)
            found = &v; // later sets win
    }
    return found;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        fatal("json: missing object member '", key, "'");
    return *v;
}

namespace {

void
writeEscaped(const std::string &s, std::ostream &os)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n";  break;
          case '\t': os << "\\t";  break;
          case '\r': os << "\\r";  break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
Value::write(std::ostream &os, int indent) const
{
    std::string pad(indent, ' ');
    std::string inner(indent + 2, ' ');
    switch (kindVal) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (boolVal ? "true" : "false");
        break;
      case Kind::Num:
        os << numVal;
        break;
      case Kind::Real: {
        // %.17g round-trips doubles but litters output with noise
        // digits; profile fields are percentages and milliseconds, so
        // six significant digits are plenty. Non-finite values have no
        // JSON spelling; emit 0.
        char buf[32];
        double d = realVal;
        if (!(d == d) || d > 1e308 || d < -1e308)
            d = 0;
        std::snprintf(buf, sizeof(buf), "%.6g", d);
        os << buf;
        // Keep a syntactic marker so the value re-parses as Real.
        if (!std::strpbrk(buf, ".eE"))
            os << ".0";
        break;
      }
      case Kind::Str:
        writeEscaped(strVal, os);
        break;
      case Kind::Arr: {
        if (arr.empty()) {
            os << "[]";
            break;
        }
        os << "[\n";
        for (size_t i = 0; i < arr.size(); ++i) {
            os << inner;
            arr[i].write(os, indent + 2);
            os << (i + 1 < arr.size() ? ",\n" : "\n");
        }
        os << pad << "]";
        break;
      }
      case Kind::Obj: {
        if (obj.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (size_t i = 0; i < obj.size(); ++i) {
            os << inner;
            writeEscaped(obj[i].first, os);
            os << ": ";
            obj[i].second.write(os, indent + 2);
            os << (i + 1 < obj.size() ? ",\n" : "\n");
        }
        os << pad << "}";
        break;
      }
    }
}

std::string
Value::str() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

namespace {

/** Recursive-descent JSON parser over the integer-only subset. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipWs();
        if (pos != text.size())
            err("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    err(const std::string &msg)
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos && i < text.size(); ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("json: ", msg, " at line ", line, ":", col);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            err("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            err(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeWord(const char *word)
    {
        size_t len = std::char_traits<char>::length(word);
        if (text.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    Value
    parseValue()
    {
        skipWs();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Value::str(parseString());
        if ((c >= '0' && c <= '9') || c == '-')
            return parseNumber();
        if (consumeWord("true"))
            return Value::boolean(true);
        if (consumeWord("false"))
            return Value::boolean(false);
        if (consumeWord("null"))
            return Value();
        err("unexpected character");
    }

    Value
    parseObject()
    {
        expect('{');
        Value v = Value::object();
        skipWs();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.set(key, parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value v = Value::array();
        skipWs();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.push(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                err("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                err("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'n':  out += '\n'; break;
              case 't':  out += '\t'; break;
              case 'r':  out += '\r'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    err("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        err("bad \\u escape digit");
                }
                if (code > 0x7f)
                    err("non-ASCII \\u escapes are not supported");
                out += static_cast<char>(code);
                break;
              }
              default:
                err("bad escape character");
            }
        }
    }

    Value
    parseNumber()
    {
        size_t start = pos;
        bool negative = false;
        if (pos < text.size() && text[pos] == '-') {
            negative = true;
            ++pos;
        }
        uint64_t n = 0;
        bool any = false, overflow = false;
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
            uint64_t digit = static_cast<uint64_t>(text[pos] - '0');
            if (n > (UINT64_MAX - digit) / 10)
                overflow = true;
            else
                n = n * 10 + digit;
            ++pos;
            any = true;
        }
        if (!any)
            err("expected digits");
        bool fractional = pos < text.size() &&
                          (text[pos] == '.' || text[pos] == 'e' ||
                           text[pos] == 'E');
        if (!negative && !fractional) {
            // Plain unsigned integer: keep full 64-bit precision (the
            // netlist format depends on exact round-trips).
            if (overflow)
                err("integer overflow");
            return Value::number(n);
        }
        if (fractional) {
            if (text[pos] == '.') {
                ++pos;
                if (pos >= text.size() || text[pos] < '0' ||
                    text[pos] > '9')
                    err("expected digits after '.'");
                while (pos < text.size() && text[pos] >= '0' &&
                       text[pos] <= '9')
                    ++pos;
            }
            if (pos < text.size() &&
                (text[pos] == 'e' || text[pos] == 'E')) {
                ++pos;
                if (pos < text.size() &&
                    (text[pos] == '+' || text[pos] == '-'))
                    ++pos;
                if (pos >= text.size() || text[pos] < '0' ||
                    text[pos] > '9')
                    err("expected exponent digits");
                while (pos < text.size() && text[pos] >= '0' &&
                       text[pos] <= '9')
                    ++pos;
            }
        }
        return Value::real(
            std::strtod(text.substr(start, pos - start).c_str(), nullptr));
    }

    const std::string &text;
    size_t pos = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

} // namespace calyx::json
