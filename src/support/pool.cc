#include "support/pool.h"

#include <exception>

namespace calyx {

namespace {

/** First exception thrown by any participant, rethrown on the caller. */
struct ErrSlot
{
    std::mutex mu;
    std::exception_ptr err;

    void capture()
    {
        std::lock_guard<std::mutex> lk(mu);
        if (!err)
            err = std::current_exception();
    }
};

ErrSlot &
errSlot()
{
    static ErrSlot e;
    return e;
}

} // namespace

WorkPool &
WorkPool::global()
{
    // Leaked singleton: worker threads block on the condvar for the
    // process lifetime, so the pool (and its synchronization objects)
    // must never be destroyed under them.
    static WorkPool *pool = new WorkPool;
    return *pool;
}

unsigned
WorkPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
WorkPool::ensureWorkers(unsigned count)
{
    while (spawned < count) {
        unsigned id = spawned++;
        std::thread t([this, id] { workerLoop(id); });
        t.detach();
    }
}

void
WorkPool::workerLoop(unsigned id)
{
    uint64_t lastGen = 0;
    for (;;) {
        Job *j = nullptr;
        size_t slot = 0;
        {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return job && generation != lastGen; });
            lastGen = generation;
            // Worker `id` owns participant slot id + 1 (the caller is
            // slot 0); workers beyond the job's width sit this one out.
            if (id + 1 < job->parts) {
                j = job;
                slot = id + 1;
            }
        }
        if (!j)
            continue;
        runAs(*j, slot);
        j->done.fetch_add(1);
        // Empty critical section orders the increment before the
        // notify so the caller's predicate re-check cannot miss it.
        { std::lock_guard<std::mutex> lk(mu); }
        doneCv.notify_all();
    }
}

void
WorkPool::runAs(Job &job, size_t self)
{
    const auto &fn = *job.fn;
    auto run = [&](size_t i) {
        try {
            fn(i);
        } catch (...) {
            errSlot().capture();
        }
    };

    // Drain the own range front-to-back: contiguous indices keep one
    // participant on one cache-neighborhood of tiles.
    Range &own = job.ranges[self];
    for (size_t i;
         (i = own.next.fetch_add(1, std::memory_order_relaxed)) < own.end;)
        run(i);

    // Steal, one index at a time, from whichever range has the most
    // left. The claim is the same fetch_add the owner uses, so every
    // index is executed exactly once.
    for (;;) {
        size_t best = SIZE_MAX, bestLeft = 0;
        for (size_t r = 0; r < job.parts; ++r) {
            size_t nx = job.ranges[r].next.load(std::memory_order_relaxed);
            if (nx < job.ranges[r].end && job.ranges[r].end - nx > bestLeft) {
                bestLeft = job.ranges[r].end - nx;
                best = r;
            }
        }
        if (best == SIZE_MAX)
            return;
        Range &victim = job.ranges[best];
        size_t i = victim.next.fetch_add(1, std::memory_order_relaxed);
        if (i < victim.end)
            run(i);
    }
}

void
WorkPool::parallelFor(size_t n, unsigned threads,
                      const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads > n)
        threads = static_cast<unsigned>(n);
    if (threads <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // One job at a time: the pool has a single publication slot.
    static std::mutex jobMu;
    std::lock_guard<std::mutex> serial(jobMu);

    {
        std::lock_guard<std::mutex> lk(errSlot().mu);
        errSlot().err = nullptr;
    }

    Job j;
    j.fn = &fn;
    j.parts = threads;
    j.ranges = std::vector<Range>(threads);
    size_t chunk = (n + threads - 1) / threads;
    for (size_t r = 0; r < threads; ++r) {
        size_t start = r * chunk;
        j.ranges[r].next.store(start, std::memory_order_relaxed);
        j.ranges[r].end = std::min(n, start + chunk);
    }

    {
        std::lock_guard<std::mutex> lk(mu);
        ensureWorkers(threads - 1);
        job = &j;
        ++generation;
    }
    cv.notify_all();

    runAs(j, 0);
    j.done.fetch_add(1);

    {
        std::unique_lock<std::mutex> lk(mu);
        doneCv.wait(lk, [&] { return j.done.load() == j.parts; });
        job = nullptr;
    }

    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lk(errSlot().mu);
        err = errSlot().err;
        errSlot().err = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace calyx
