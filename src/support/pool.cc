#include "support/pool.h"

#include <exception>

namespace calyx {

namespace {

/** First exception thrown by any participant, rethrown on the caller. */
struct ErrSlot
{
    std::mutex mu;
    std::exception_ptr err;

    void capture()
    {
        std::lock_guard<std::mutex> lk(mu);
        if (!err)
            err = std::current_exception();
    }
};

ErrSlot &
errSlot()
{
    static ErrSlot e;
    return e;
}

/** Set while this thread executes pool work (caller or worker). */
thread_local bool tlInPool = false;

/** Live participant count and its high-water mark. */
std::atomic<unsigned> activeParts{0};
std::atomic<unsigned> peakParts{0};

} // namespace

WorkPool &
WorkPool::global()
{
    // Leaked singleton: worker threads block on the condvar for the
    // process lifetime, so the pool (and its synchronization objects)
    // must never be destroyed under them.
    static WorkPool *pool = new WorkPool;
    return *pool;
}

unsigned
WorkPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

bool
WorkPool::insideWorker()
{
    return tlInPool;
}

unsigned
WorkPool::peakParticipants()
{
    return peakParts.load(std::memory_order_relaxed);
}

void
WorkPool::resetPeakParticipants()
{
    peakParts.store(0, std::memory_order_relaxed);
}

void
WorkPool::ensureWorkers(unsigned count)
{
    while (spawned < count) {
        unsigned id = spawned++;
        std::thread t([this, id] { workerLoop(id); });
        t.detach();
    }
}

void
WorkPool::workerLoop(unsigned id)
{
    uint64_t lastGen = 0;
    for (;;) {
        Job *j = nullptr;
        size_t slot = 0;
        {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return job && generation != lastGen; });
            lastGen = generation;
            // Worker `id` owns participant slot id + 1 (the caller is
            // slot 0); workers beyond the job's width sit this one out.
            if (id + 1 < job->parts) {
                j = job;
                slot = id + 1;
            }
        }
        if (!j)
            continue;
        runAs(*j, slot);
        j->done.fetch_add(1);
        // Empty critical section orders the increment before the
        // notify so the caller's predicate re-check cannot miss it.
        { std::lock_guard<std::mutex> lk(mu); }
        doneCv.notify_all();
    }
}

void
WorkPool::runAs(Job &job, size_t self)
{
    bool wasInPool = tlInPool;
    tlInPool = true;
    unsigned act = activeParts.fetch_add(1, std::memory_order_relaxed) + 1;
    unsigned peak = peakParts.load(std::memory_order_relaxed);
    while (act > peak &&
           !peakParts.compare_exchange_weak(peak, act,
                                            std::memory_order_relaxed))
        ;

    const auto &fn = *job.fn;
    auto run = [&](size_t i) {
        try {
            fn(i);
        } catch (...) {
            errSlot().capture();
        }
    };

    // Drain the own range front-to-back: contiguous indices keep one
    // participant on one cache-neighborhood of tiles.
    Range &own = job.ranges[self];
    for (size_t i;
         (i = own.next.fetch_add(1, std::memory_order_relaxed)) < own.end;)
        run(i);

    // Steal, one index at a time, from whichever range has the most
    // left. The claim is the same fetch_add the owner uses, so every
    // index is executed exactly once. Static-plan jobs (noSteal) skip
    // this: their items spin on each other, and a steal could park an
    // item behind the very item it waits on.
    while (!job.noSteal) {
        size_t best = SIZE_MAX, bestLeft = 0;
        for (size_t r = 0; r < job.parts; ++r) {
            size_t nx = job.ranges[r].next.load(std::memory_order_relaxed);
            if (nx < job.ranges[r].end && job.ranges[r].end - nx > bestLeft) {
                bestLeft = job.ranges[r].end - nx;
                best = r;
            }
        }
        if (best == SIZE_MAX)
            break;
        Range &victim = job.ranges[best];
        size_t i = victim.next.fetch_add(1, std::memory_order_relaxed);
        if (i < victim.end)
            run(i);
    }

    activeParts.fetch_sub(1, std::memory_order_relaxed);
    tlInPool = wasInPool;
}

void
WorkPool::dispatch(Job &j)
{
    // One job at a time: the pool has a single publication slot. This
    // is also the process-wide occupancy cap — concurrent callers
    // queue here instead of stacking their thread counts.
    static std::mutex jobMu;
    std::lock_guard<std::mutex> serial(jobMu);

    {
        std::lock_guard<std::mutex> lk(errSlot().mu);
        errSlot().err = nullptr;
    }

    {
        std::lock_guard<std::mutex> lk(mu);
        ensureWorkers(static_cast<unsigned>(j.parts) - 1);
        job = &j;
        ++generation;
    }
    cv.notify_all();

    runAs(j, 0);
    j.done.fetch_add(1);

    {
        std::unique_lock<std::mutex> lk(mu);
        doneCv.wait(lk, [&] { return j.done.load() == j.parts; });
        job = nullptr;
    }

    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lk(errSlot().mu);
        err = errSlot().err;
        errSlot().err = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
WorkPool::parallelFor(size_t n, unsigned threads,
                      const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads > n)
        threads = static_cast<unsigned>(n);
    if (threads <= 1 || insideWorker()) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Job j;
    j.fn = &fn;
    j.parts = threads;
    j.ranges = std::vector<Range>(threads);
    size_t chunk = (n + threads - 1) / threads;
    for (size_t r = 0; r < threads; ++r) {
        size_t start = r * chunk;
        j.ranges[r].next.store(start, std::memory_order_relaxed);
        j.ranges[r].end = std::min(n, start + chunk);
    }
    dispatch(j);
}

void
WorkPool::runConcurrent(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1 || insideWorker()) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Job j;
    j.fn = &fn;
    j.parts = n;
    j.noSteal = true;
    j.ranges = std::vector<Range>(n);
    for (size_t r = 0; r < n; ++r) {
        j.ranges[r].next.store(r, std::memory_order_relaxed);
        j.ranges[r].end = r + 1;
    }
    dispatch(j);
}

} // namespace calyx
