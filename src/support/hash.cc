#include "support/hash.h"

#include <cstdio>

namespace calyx {

Hash128
contentHash(const std::string &data)
{
    // Two FNV-1a streams with distinct offsets/primes; 128 combined
    // bits make accidental collisions between generated sources
    // astronomically unlikely.
    uint64_t a = 0xcbf29ce484222325ull;
    uint64_t b = 0x9e3779b97f4a7c15ull;
    for (unsigned char c : data) {
        a = (a ^ c) * 0x100000001b3ull;
        b = (b ^ c) * 0x00000100000001b5ull;
        b ^= b >> 29;
    }
    // Final avalanche so short inputs still spread across all bits.
    auto mix = [](uint64_t v) {
        v ^= v >> 33;
        v *= 0xff51afd7ed558ccdull;
        v ^= v >> 33;
        v *= 0xc4ceb9fe1a85ec53ull;
        v ^= v >> 33;
        return v;
    };
    return {mix(a), mix(b ^ a)};
}

std::string
hexDigest(const Hash128 &h)
{
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(h.hi),
                  static_cast<unsigned long long>(h.lo));
    return buf;
}

std::string
contentDigest(const std::string &data)
{
    return hexDigest(contentHash(data));
}

} // namespace calyx
