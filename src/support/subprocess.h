#ifndef CALYX_SUPPORT_SUBPROCESS_H
#define CALYX_SUPPORT_SUBPROCESS_H

#include <string>
#include <vector>

namespace calyx {

/** Outcome of one child process run to completion. */
struct ProcessResult
{
    /** Exit code; -1 when the child died on a signal or never spawned. */
    int exitCode = -1;

    /** Interleaved stdout + stderr of the child. */
    std::string output;

    bool ok() const { return exitCode == 0; }
};

/**
 * Run `argv` (argv[0] resolved through PATH) to completion, capturing
 * stdout and stderr. No shell is involved, so arguments need no
 * quoting. fatal() only on spawn-level failures (empty argv, pipe or
 * fork errors); a failing child is reported through the result.
 */
ProcessResult runProcess(const std::vector<std::string> &argv);

/**
 * Absolute path of an executable found on PATH (or `name` itself when
 * it already names an executable path), or "" when nothing matches.
 */
std::string findProgram(const std::string &name);

} // namespace calyx

#endif // CALYX_SUPPORT_SUBPROCESS_H
