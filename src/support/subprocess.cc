#include "support/subprocess.h"

#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/error.h"

namespace calyx {

ProcessResult
runProcess(const std::vector<std::string> &argv)
{
    if (argv.empty())
        fatal("runProcess: empty argv");

    int pipefd[2];
    if (pipe(pipefd) != 0)
        fatal("runProcess: pipe failed: ", std::strerror(errno));

    pid_t pid = fork();
    if (pid < 0) {
        close(pipefd[0]);
        close(pipefd[1]);
        fatal("runProcess: fork failed: ", std::strerror(errno));
    }

    if (pid == 0) {
        // Child: funnel stdout + stderr into the pipe and exec.
        dup2(pipefd[1], STDOUT_FILENO);
        dup2(pipefd[1], STDERR_FILENO);
        close(pipefd[0]);
        close(pipefd[1]);
        std::vector<char *> cargv;
        cargv.reserve(argv.size() + 1);
        for (const std::string &a : argv)
            cargv.push_back(const_cast<char *>(a.c_str()));
        cargv.push_back(nullptr);
        execvp(cargv[0], cargv.data());
        // Exec failed; report through the pipe and use the shell's
        // conventional "command not found" code.
        std::string msg = "exec " + argv[0] + ": " + std::strerror(errno) +
                          "\n";
        ssize_t ignored = write(STDERR_FILENO, msg.data(), msg.size());
        (void)ignored;
        _exit(127);
    }

    close(pipefd[1]);
    ProcessResult result;
    char buf[4096];
    ssize_t n;
    while ((n = read(pipefd[0], buf, sizeof buf)) > 0)
        result.output.append(buf, static_cast<size_t>(n));
    close(pipefd[0]);

    int status = 0;
    if (waitpid(pid, &status, 0) < 0)
        fatal("runProcess: waitpid failed: ", std::strerror(errno));
    if (WIFEXITED(status))
        result.exitCode = WEXITSTATUS(status);
    else
        result.exitCode = -1;
    return result;
}

namespace {

bool
isExecutableFile(const std::string &path)
{
    struct stat st;
    return stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode) &&
           access(path.c_str(), X_OK) == 0;
}

} // namespace

std::string
findProgram(const std::string &name)
{
    if (name.empty())
        return "";
    if (name.find('/') != std::string::npos)
        return isExecutableFile(name) ? name : "";

    const char *path = std::getenv("PATH");
    if (!path)
        return "";
    std::string dirs = path;
    size_t start = 0;
    while (start <= dirs.size()) {
        size_t end = dirs.find(':', start);
        if (end == std::string::npos)
            end = dirs.size();
        std::string dir = dirs.substr(start, end - start);
        if (dir.empty())
            dir = ".";
        std::string candidate = dir + "/" + name;
        if (isExecutableFile(candidate))
            return candidate;
        start = end + 1;
    }
    return "";
}

} // namespace calyx
