#ifndef CALYX_SUPPORT_HASH_H
#define CALYX_SUPPORT_HASH_H

#include <cstdint>
#include <string>

namespace calyx {

/**
 * 128-bit content hash (two independent FNV-1a variants), used to key
 * content-addressed caches such as the compiled-simulation module cache
 * (src/sim/compiled.h). Not cryptographic: the goal is that two
 * different generated sources virtually never share a cache slot, not
 * resistance to adversarial collisions.
 */
struct Hash128
{
    uint64_t lo = 0, hi = 0;

    bool operator==(const Hash128 &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

/** Hash an arbitrary byte string. */
Hash128 contentHash(const std::string &data);

/** 32 lowercase hex digits, suitable as a cache file stem. */
std::string hexDigest(const Hash128 &h);

/** contentHash + hexDigest in one step. */
std::string contentDigest(const std::string &data);

} // namespace calyx

#endif // CALYX_SUPPORT_HASH_H
