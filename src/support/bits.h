#ifndef CALYX_SUPPORT_BITS_H
#define CALYX_SUPPORT_BITS_H

#include <cstdint>

namespace calyx {

/** Bit width of a port or value. Widths are limited to 64 bits. */
using Width = uint32_t;

/** All-ones mask for a width (width 0 yields 0; width >= 64 yields ~0). */
uint64_t bitMask(Width width);

/** Truncate a value to a width. */
uint64_t truncate(uint64_t value, Width width);

/** Minimum width able to represent `value` (at least 1). */
Width bitsNeeded(uint64_t value);

/**
 * Width of a state register able to hold states 0..n inclusive, i.e.
 * bitsNeeded(n). Used by FSM-generating passes.
 */
Width fsmWidth(uint64_t max_state);

} // namespace calyx

#endif // CALYX_SUPPORT_BITS_H
