#ifndef CALYX_SUPPORT_TIME_H
#define CALYX_SUPPORT_TIME_H

#include <chrono>

namespace calyx {

/** Monotonic wall clock in seconds, for interval timing. */
inline double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace calyx

#endif // CALYX_SUPPORT_TIME_H
