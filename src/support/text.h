#ifndef CALYX_SUPPORT_TEXT_H
#define CALYX_SUPPORT_TEXT_H

#include <cstddef>
#include <string>
#include <vector>

namespace calyx {

/** Number of newline-terminated lines in `text` (§7.4 statistics). */
int countLines(const std::string &text);

/** Classic Levenshtein distance, for did-you-mean suggestions. */
size_t editDistance(const std::string &a, const std::string &b);

/**
 * Closest candidate to `unknown` by edit distance, or "" when nothing
 * is near enough to be a plausible typo (at most 2 edits, or one third
 * of the name for long names).
 */
std::string suggestClosest(const std::string &unknown,
                           const std::vector<std::string> &candidates);

} // namespace calyx

#endif // CALYX_SUPPORT_TEXT_H
