#include "support/text.h"

#include <algorithm>

namespace calyx {

int
countLines(const std::string &text)
{
    int lines = 0;
    for (char c : text) {
        if (c == '\n')
            ++lines;
    }
    return lines;
}

size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::string
suggestClosest(const std::string &unknown,
               const std::vector<std::string> &candidates)
{
    std::string best;
    size_t best_distance = std::string::npos;
    for (const auto &candidate : candidates) {
        size_t d = editDistance(unknown, candidate);
        if (d < best_distance) {
            best_distance = d;
            best = candidate;
        }
    }
    size_t budget = std::max<size_t>(2, unknown.size() / 3);
    return best_distance <= budget ? best : "";
}

} // namespace calyx
