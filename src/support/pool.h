#ifndef CALYX_SUPPORT_POOL_H
#define CALYX_SUPPORT_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace calyx {

/**
 * Persistent work-stealing thread pool shared by every engine-agnostic
 * parallel loop in the toolchain: batch simulation partitions lane
 * tiles over it (sim/batch.h), the pass manager dispatches independent
 * components of one dependency wavefront over it
 * (passes/pass_manager.h), compiled-module shard builds run over it
 * (sim/compiled.h), and partitioned single-stimulus simulation pins
 * its static per-thread plans onto it (sim/partition.h). In all cases
 * the work items' state is disjoint by construction, so the pool needs
 * no per-item locking — only job distribution is synchronized.
 *
 * Work distribution is index-range stealing: parallelFor(n, w, fn)
 * splits [0, n) into `w` contiguous ranges, one per participant, each
 * with an atomic cursor. A participant drains its own range first
 * (contiguous indices: lane tiles sharing cache lines stay on one
 * core), then steals from the range with the most work left. The
 * calling thread participates as worker 0, so `threads == 1` runs
 * entirely on the caller with no synchronization beyond the atomics,
 * and a 1-core machine never context-switches per item.
 *
 * The pool is the process-wide occupancy cap: jobs from concurrent
 * callers (e.g. `--serve` compiling one request while simulating
 * another) serialize on a single publication slot instead of stacking
 * thread counts, and a parallelFor issued from *inside* a worker runs
 * serially on that worker rather than deadlocking on the slot — so a
 * `--threads N` process never runs more than N items at once, however
 * the subsystems nest. peakParticipants() exposes the observed
 * high-water mark for tests asserting exactly that.
 *
 * Workers are spawned lazily up to the high-water request and persist
 * for the process lifetime (detached at exit), so a `futil --serve`
 * session pays thread startup once, not per request. Exceptions thrown
 * by `fn` are captured; the first one is rethrown on the caller after
 * every participant has drained.
 */
class WorkPool
{
  public:
    /** The process-wide pool. */
    static WorkPool &global();

    /**
     * Run `fn(i)` for every i in [0, n) across `threads` participants
     * (clamped to [1, n]; the caller is one of them). Returns when all
     * items are done. When called from inside a pool worker the loop
     * runs serially on that worker (nested parallelism is capped, not
     * stacked).
     */
    void parallelFor(size_t n, unsigned threads,
                     const std::function<void(size_t)> &fn);

    /**
     * Run `fn(i)` for every i in [0, n) with a *dedicated* participant
     * per index — no stealing, index i runs on participant i, the
     * caller is participant 0. This is the primitive for static
     * per-thread execution plans whose items block on each other
     * (sim/partition.h): stealing would let one OS thread sit inside
     * item A's spin-wait while item B — the one A waits on — is queued
     * behind it on the same thread. Dedicated participants make every
     * plan's progress assumption hold by construction. Runs serially
     * when n <= 1 or when called from inside a pool worker.
     */
    void runConcurrent(size_t n, const std::function<void(size_t)> &fn);

    /**
     * True on a thread currently executing pool work (including the
     * caller-as-participant). Used to demote nested parallel calls to
     * serial execution.
     */
    static bool insideWorker();

    /**
     * High-water mark of simultaneously active participants since the
     * last reset — the observable for "no 2N-thread spike" tests.
     */
    static unsigned peakParticipants();
    static void resetPeakParticipants();

    /** A sensible default worker count: hardware_concurrency, >= 1. */
    static unsigned defaultThreads();

  private:
    WorkPool() = default;

    struct Range
    {
        std::atomic<size_t> next{0};
        size_t end = 0;
        // Cursors are hammered by their owner and occasional thieves;
        // keep each range on its own cache line.
        char pad[64 - sizeof(std::atomic<size_t>) - sizeof(size_t)];
    };

    struct Job
    {
        const std::function<void(size_t)> *fn = nullptr;
        std::vector<Range> ranges;
        std::atomic<size_t> done{0}; ///< Participants finished.
        size_t parts = 0;
        bool noSteal = false; ///< Dedicated participant per range.
    };

    void ensureWorkers(unsigned count);
    void workerLoop(unsigned id);
    void runAs(Job &job, size_t self);
    void dispatch(Job &j);

    std::mutex mu;
    std::condition_variable cv;      ///< Wakes idle workers.
    std::condition_variable doneCv;  ///< Wakes the caller.
    Job *job = nullptr;              ///< Published under `mu`.
    uint64_t generation = 0;         ///< Bumped per job.
    unsigned spawned = 0;
    std::vector<std::thread> workers;
};

} // namespace calyx

#endif // CALYX_SUPPORT_POOL_H
