#ifndef CALYX_IR_BUILDER_H
#define CALYX_IR_BUILDER_H

#include <string>
#include <vector>

#include "ir/context.h"

namespace calyx {

/**
 * Fluent helper for constructing components, the way frontends in the
 * paper generate Calyx programs.
 */
class ComponentBuilder
{
  public:
    ComponentBuilder(Context &ctx, Component &comp) : ctx(&ctx), comp(&comp)
    {}

    /** Create the component in `ctx` and build into it. */
    static ComponentBuilder create(Context &ctx, Symbol name);

    Component &component() { return *comp; }
    Context &context() { return *ctx; }

    /** Instantiate a cell; returns a reference usable for ports. */
    Cell &cell(Symbol name, Symbol type,
               const std::vector<uint64_t> &params = {});

    /** Instantiate a W-bit register. */
    Cell &reg(Symbol name, Width width);

    /** Instantiate a W-bit adder. */
    Cell &add(Symbol name, Width width);

    /** Instantiate a 1-D memory. */
    Cell &mem1d(Symbol name, Width width, uint64_t size);

    /** Create a group. */
    Group &group(Symbol name);

    /**
     * Create a group writing `value` into register `reg_cell` with the
     * canonical done wiring; returns the group. Marked "static"=1.
     */
    Group &regWriteGroup(Symbol group_name, Symbol reg_cell,
                         const PortRef &value);

    // --- Control helpers --------------------------------------------------
    static ControlPtr enable(Symbol group);
    static ControlPtr seq(std::vector<ControlPtr> stmts);
    static ControlPtr par(std::vector<ControlPtr> stmts);
    static ControlPtr ifStmt(const PortRef &port, Symbol cond,
                             ControlPtr t, ControlPtr f);
    static ControlPtr whileStmt(const PortRef &port, Symbol cond,
                                ControlPtr body);

  private:
    Context *ctx;
    Component *comp;
};

} // namespace calyx

#endif // CALYX_IR_BUILDER_H
