#ifndef CALYX_IR_BUILDER_H
#define CALYX_IR_BUILDER_H

#include <string>
#include <vector>

#include "ir/context.h"

namespace calyx {

/**
 * Fluent helper for constructing components, the way frontends in the
 * paper generate Calyx programs.
 */
class ComponentBuilder
{
  public:
    ComponentBuilder(Context &ctx, Component &comp) : ctx(&ctx), comp(&comp)
    {}

    /** Create the component in `ctx` and build into it. */
    static ComponentBuilder create(Context &ctx, const std::string &name);

    Component &component() { return *comp; }
    Context &context() { return *ctx; }

    /** Instantiate a cell; returns a reference usable for ports. */
    Cell &cell(const std::string &name, const std::string &type,
               const std::vector<uint64_t> &params = {});

    /** Instantiate a W-bit register. */
    Cell &reg(const std::string &name, Width width);

    /** Instantiate a W-bit adder. */
    Cell &add(const std::string &name, Width width);

    /** Instantiate a 1-D memory. */
    Cell &mem1d(const std::string &name, Width width, uint64_t size);

    /** Create a group. */
    Group &group(const std::string &name);

    /**
     * Create a group writing `value` into register `reg_cell` with the
     * canonical done wiring; returns the group. Marked "static"=1.
     */
    Group &regWriteGroup(const std::string &group_name,
                         const std::string &reg_cell, const PortRef &value);

    // --- Control helpers --------------------------------------------------
    static ControlPtr enable(const std::string &group);
    static ControlPtr seq(std::vector<ControlPtr> stmts);
    static ControlPtr par(std::vector<ControlPtr> stmts);
    static ControlPtr ifStmt(const PortRef &port, const std::string &cond,
                             ControlPtr t, ControlPtr f);
    static ControlPtr whileStmt(const PortRef &port, const std::string &cond,
                                ControlPtr body);

  private:
    Context *ctx;
    Component *comp;
};

} // namespace calyx

#endif // CALYX_IR_BUILDER_H
