#include "ir/parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "support/error.h"

namespace calyx {

namespace {

enum class Tok {
    Ident,
    Number,     // plain decimal
    SizedConst, // W'dV
    String,     // "..."
    Symbol,     // one of the punctuation strings below
    End,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;   // identifier, symbol spelling, or string body
    uint64_t number = 0;
    Width width = 0;    // SizedConst only
    int line = 1;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src(src) { advance(); }

    const Token &peek() const { return tok; }

    Token next()
    {
        Token t = tok;
        advance();
        return t;
    }

    [[noreturn]] void error(const std::string &msg) const
    {
        fatal("parse error at line ", tok.line, ": ", msg, " (near '",
              tok.text, "')");
    }

  private:
    void
    skipSpace()
    {
        while (pos < src.size()) {
            char c = src[pos];
            if (c == '\n') {
                ++line;
                ++pos;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '/' && pos + 1 < src.size() &&
                       src[pos + 1] == '/') {
                while (pos < src.size() && src[pos] != '\n')
                    ++pos;
            } else if (c == '/' && pos + 1 < src.size() &&
                       src[pos + 1] == '*') {
                pos += 2;
                while (pos + 1 < src.size() &&
                       !(src[pos] == '*' && src[pos + 1] == '/')) {
                    if (src[pos] == '\n')
                        ++line;
                    ++pos;
                }
                pos += 2;
            } else {
                return;
            }
        }
    }

    void
    advance()
    {
        skipSpace();
        tok = Token{};
        tok.line = line;
        if (pos >= src.size()) {
            tok.kind = Tok::End;
            tok.text = "<eof>";
            return;
        }
        char c = src[pos];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = pos;
            while (pos < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[pos])) ||
                    src[pos] == '_')) {
                ++pos;
            }
            tok.kind = Tok::Ident;
            tok.text = src.substr(start, pos - start);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            uint64_t value = 0;
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos]))) {
                value = value * 10 + (src[pos] - '0');
                ++pos;
            }
            // W'dV sized constant.
            if (pos + 1 < src.size() && src[pos] == '\'' &&
                src[pos + 1] == 'd') {
                pos += 2;
                uint64_t v = 0;
                if (pos >= src.size() ||
                    !std::isdigit(static_cast<unsigned char>(src[pos]))) {
                    fatal("parse error at line ", line,
                          ": expected digits after 'd");
                }
                while (pos < src.size() &&
                       std::isdigit(static_cast<unsigned char>(src[pos]))) {
                    v = v * 10 + (src[pos] - '0');
                    ++pos;
                }
                tok.kind = Tok::SizedConst;
                tok.width = static_cast<Width>(value);
                tok.number = v;
                tok.text = std::to_string(value) + "'d" + std::to_string(v);
                return;
            }
            tok.kind = Tok::Number;
            tok.number = value;
            tok.text = std::to_string(value);
            return;
        }
        if (c == '"') {
            ++pos;
            size_t start = pos;
            while (pos < src.size() && src[pos] != '"')
                ++pos;
            if (pos >= src.size())
                fatal("parse error at line ", line, ": unterminated string");
            tok.kind = Tok::String;
            tok.text = src.substr(start, pos - start);
            ++pos;
            return;
        }
        // Multi-character symbols first.
        static const char *two_char[] = {"->", "==", "!=", "<=", ">=", "&&",
                                         "||"};
        for (const char *s : two_char) {
            if (src.compare(pos, 2, s) == 0) {
                tok.kind = Tok::Symbol;
                tok.text = s;
                pos += 2;
                return;
            }
        }
        tok.kind = Tok::Symbol;
        tok.text = std::string(1, c);
        ++pos;
    }

    const std::string &src;
    size_t pos = 0;
    int line = 1;
    Token tok;
};

class ProgramParser
{
  public:
    explicit ProgramParser(const std::string &src) : lex(src) {}

    Context
    parse()
    {
        Context ctx;
        while (lex.peek().kind != Tok::End) {
            if (isIdent("extern")) {
                parseExtern(ctx);
            } else if (isIdent("import")) {
                lex.next();
                expect(Tok::String);
                expectSymbol(";");
            } else if (isIdent("component")) {
                parseComponent(ctx);
            } else {
                lex.error("expected 'component', 'extern', or 'import'");
            }
        }
        return ctx;
    }

  private:
    Lexer lex;

    bool
    isIdent(const std::string &word) const
    {
        return lex.peek().kind == Tok::Ident && lex.peek().text == word;
    }

    bool
    isSymbol(const std::string &sym) const
    {
        return lex.peek().kind == Tok::Symbol && lex.peek().text == sym;
    }

    Token
    expect(Tok kind)
    {
        if (lex.peek().kind != kind)
            lex.error("unexpected token");
        return lex.next();
    }

    void
    expectSymbol(const std::string &sym)
    {
        if (!isSymbol(sym))
            lex.error("expected '" + sym + "'");
        lex.next();
    }

    void
    expectIdent(const std::string &word)
    {
        if (!isIdent(word))
            lex.error("expected '" + word + "'");
        lex.next();
    }

    std::string
    ident()
    {
        return expect(Tok::Ident).text;
    }

    /** Attribute list `<"name"=value, ...>`, or empty. */
    Attributes
    attributes()
    {
        Attributes attrs;
        if (!isSymbol("<"))
            return attrs;
        lex.next();
        while (true) {
            std::string name = expect(Tok::String).text;
            expectSymbol("=");
            Token v = expect(Tok::Number);
            attrs.set(name, static_cast<int64_t>(v.number));
            if (isSymbol(",")) {
                lex.next();
                continue;
            }
            break;
        }
        expectSymbol(">");
        return attrs;
    }

    void
    parseExtern(Context &ctx)
    {
        expectIdent("extern");
        std::string file = expect(Tok::String).text;
        expectSymbol("{");
        while (isIdent("primitive")) {
            lex.next();
            PrimitiveDef def;
            def.name = ident();
            def.attrs = attributes();
            def.externFile = file;
            expectSymbol("[");
            if (!isSymbol("]")) {
                while (true) {
                    def.params.push_back(ident());
                    if (isSymbol(",")) {
                        lex.next();
                        continue;
                    }
                    break;
                }
            }
            expectSymbol("]");
            parsePrimPorts(def, Direction::Input);
            expectSymbol("->");
            parsePrimPorts(def, Direction::Output);
            expectSymbol(";");
            if (def.attrs.has(Attributes::staticAttr) ||
                !def.donePort.empty()) {
                def.attrs.set(Attributes::statefulAttr, 1);
            }
            ctx.primitives().add(def);
        }
        expectSymbol("}");
    }

    void
    parsePrimPorts(PrimitiveDef &def, Direction dir)
    {
        expectSymbol("(");
        if (!isSymbol(")")) {
            while (true) {
                PrimPortSpec spec;
                spec.dir = dir;
                while (isSymbol("@")) {
                    lex.next();
                    std::string marker = ident();
                    if (marker == "go")
                        def.goPort = "<pending>";
                    else if (marker == "done")
                        def.donePort = "<pending>";
                    else
                        lex.error("unknown port marker @" + marker);
                }
                spec.name = ident();
                if (def.goPort == "<pending>")
                    def.goPort = spec.name;
                if (def.donePort == "<pending>")
                    def.donePort = spec.name;
                expectSymbol(":");
                if (lex.peek().kind == Tok::Number) {
                    spec.fixedWidth =
                        static_cast<Width>(lex.next().number);
                } else {
                    spec.widthParam = ident();
                }
                def.ports.push_back(spec);
                if (isSymbol(",")) {
                    lex.next();
                    continue;
                }
                break;
            }
        }
        expectSymbol(")");
    }

    void
    parseComponent(Context &ctx)
    {
        expectIdent("component");
        std::string name = ident();
        Attributes attrs = attributes();
        Component &comp = ctx.addComponent(name);
        comp.attrs() = attrs;

        expectSymbol("(");
        parseSignature(comp, Direction::Input);
        expectSymbol(")");
        expectSymbol("->");
        expectSymbol("(");
        parseSignature(comp, Direction::Output);
        expectSymbol(")");
        expectSymbol("{");

        if (isIdent("cells")) {
            lex.next();
            expectSymbol("{");
            while (!isSymbol("}"))
                parseCell(ctx, comp);
            expectSymbol("}");
        }
        if (isIdent("wires")) {
            lex.next();
            expectSymbol("{");
            while (!isSymbol("}")) {
                if (isIdent("group")) {
                    parseGroup(comp);
                } else {
                    comp.continuousAssignments().push_back(
                        parseAssignment());
                }
            }
            expectSymbol("}");
        }
        if (isIdent("control")) {
            lex.next();
            expectSymbol("{");
            std::vector<ControlPtr> stmts;
            while (!isSymbol("}"))
                stmts.push_back(parseControl());
            expectSymbol("}");
            if (stmts.empty())
                comp.setControl(std::make_unique<Empty>());
            else if (stmts.size() == 1)
                comp.setControl(std::move(stmts[0]));
            else
                comp.setControl(std::make_unique<Seq>(std::move(stmts)));
        }
        expectSymbol("}");
    }

    void
    parseSignature(Component &comp, Direction dir)
    {
        if (isSymbol(")"))
            return;
        while (true) {
            std::string pname = ident();
            expectSymbol(":");
            Width w = static_cast<Width>(expect(Tok::Number).number);
            // go/done already exist implicitly.
            if (!comp.hasPort(pname)) {
                if (dir == Direction::Input)
                    comp.addInput(pname, w);
                else
                    comp.addOutput(pname, w);
            }
            if (isSymbol(",")) {
                lex.next();
                continue;
            }
            break;
        }
    }

    void
    parseCell(Context &ctx, Component &comp)
    {
        std::string cname = ident();
        Attributes attrs = attributes();
        expectSymbol("=");
        std::string type = ident();
        expectSymbol("(");
        std::vector<uint64_t> params;
        if (!isSymbol(")")) {
            while (true) {
                params.push_back(expect(Tok::Number).number);
                if (isSymbol(",")) {
                    lex.next();
                    continue;
                }
                break;
            }
        }
        expectSymbol(")");
        expectSymbol(";");
        Cell &cell = comp.addCell(cname, type, params, ctx);
        for (const auto &[k, v] : attrs.all())
            cell.attrs().set(k, v);
    }

    void
    parseGroup(Component &comp)
    {
        expectIdent("group");
        std::string gname = ident();
        Attributes attrs = attributes();
        Group &g = comp.addGroup(gname);
        g.attrs() = attrs;
        expectSymbol("{");
        while (!isSymbol("}"))
            g.add(parseAssignment());
        expectSymbol("}");
    }

    /**
     * A port reference or sized constant: `name`, `name.port`,
     * `name[hole]`, or `W'dV`.
     */
    PortRef
    parsePortRef()
    {
        if (lex.peek().kind == Tok::SizedConst) {
            Token t = lex.next();
            return constant(t.number, t.width);
        }
        std::string base = ident();
        if (isSymbol(".")) {
            lex.next();
            return cellPort(base, ident());
        }
        if (isSymbol("[")) {
            lex.next();
            std::string hole = ident();
            expectSymbol("]");
            return holePort(base, hole);
        }
        return thisPort(base);
    }

    // Guard grammar: or := and ('|' and)*, and := cmp ('&' cmp)*,
    // cmp := unary (op unary)?, unary := '!' unary | '(' or ')' | atom.
    GuardPtr
    parseGuardOr()
    {
        GuardPtr g = parseGuardAnd();
        while (isSymbol("|") || isSymbol("||")) {
            lex.next();
            g = Guard::disj(g, parseGuardAnd());
        }
        return g;
    }

    GuardPtr
    parseGuardAnd()
    {
        GuardPtr g = parseGuardCmp();
        while (isSymbol("&") || isSymbol("&&")) {
            lex.next();
            g = Guard::conj(g, parseGuardCmp());
        }
        return g;
    }

    std::optional<Guard::CmpOp>
    peekCmpOp()
    {
        if (lex.peek().kind != Tok::Symbol)
            return std::nullopt;
        const std::string &s = lex.peek().text;
        if (s == "==")
            return Guard::CmpOp::Eq;
        if (s == "!=")
            return Guard::CmpOp::Neq;
        if (s == "<")
            return Guard::CmpOp::Lt;
        if (s == ">")
            return Guard::CmpOp::Gt;
        if (s == "<=")
            return Guard::CmpOp::Leq;
        if (s == ">=")
            return Guard::CmpOp::Geq;
        return std::nullopt;
    }

    GuardPtr
    parseGuardCmp()
    {
        if (isSymbol("!")) {
            lex.next();
            return Guard::negate(parseGuardCmp());
        }
        if (isSymbol("(")) {
            lex.next();
            GuardPtr g = parseGuardOr();
            expectSymbol(")");
            return g;
        }
        PortRef lhs = parsePortRef();
        if (auto op = peekCmpOp()) {
            lex.next();
            PortRef rhs;
            if (isSymbol("(")) {
                lex.error("parenthesized comparison operands unsupported");
            }
            rhs = parsePortRef();
            return Guard::cmp(*op, lhs, rhs);
        }
        if (lhs.isConst()) {
            if (lhs.width == 1 && lhs.value == 1)
                return Guard::trueGuard();
            return Guard::cmp(Guard::CmpOp::Eq, lhs, constant(1, 1));
        }
        return Guard::fromPort(lhs);
    }

    /** Try to view a parsed guard as an assignment source operand. */
    std::optional<PortRef>
    guardAsPort(const GuardPtr &g)
    {
        if (g->kind() == Guard::Kind::Port)
            return g->port();
        if (g->isTrue())
            return constant(1, 1);
        return std::nullopt;
    }

    Assignment
    parseAssignment()
    {
        PortRef dst = parsePortRef();
        expectSymbol("=");
        // Either `src ;` or `guard ? src ;`.
        if (lex.peek().kind == Tok::SizedConst) {
            Token t = lex.next();
            PortRef c = constant(t.number, t.width);
            if (isSymbol(";")) {
                lex.next();
                return Assignment(dst, c);
            }
            // The constant begins a guard (e.g. comparisons are illegal
            // with constant lhs in practice, but handle `1'd1 ? x`).
            GuardPtr g;
            if (auto op = peekCmpOp()) {
                lex.next();
                g = Guard::cmp(*op, c, parsePortRef());
            } else {
                g = c.width == 1 && c.value == 1 ? Guard::trueGuard()
                                                 : Guard::fromPort(c);
            }
            while (!isSymbol("?")) {
                if (isSymbol("&") || isSymbol("&&")) {
                    lex.next();
                    g = Guard::conj(g, parseGuardCmp());
                } else if (isSymbol("|") || isSymbol("||")) {
                    lex.next();
                    g = Guard::disj(g, parseGuardAnd());
                } else {
                    lex.error("expected '?' in guarded assignment");
                }
            }
            lex.next();
            PortRef src = parsePortRef();
            expectSymbol(";");
            return Assignment(dst, src, g);
        }
        GuardPtr g = parseGuardOr();
        if (isSymbol("?")) {
            lex.next();
            PortRef src = parsePortRef();
            expectSymbol(";");
            return Assignment(dst, src, g);
        }
        expectSymbol(";");
        auto src = guardAsPort(g);
        if (!src)
            lex.error("expected a port or constant on assignment rhs");
        return Assignment(dst, *src);
    }

    ControlPtr
    parseControl()
    {
        if (isIdent("seq") || isIdent("par")) {
            bool is_seq = lex.next().text == "seq";
            Attributes attrs = attributes();
            expectSymbol("{");
            std::vector<ControlPtr> stmts;
            while (!isSymbol("}"))
                stmts.push_back(parseControl());
            expectSymbol("}");
            ControlPtr node;
            if (is_seq)
                node = std::make_unique<Seq>(std::move(stmts));
            else
                node = std::make_unique<Par>(std::move(stmts));
            node->attrs() = attrs;
            return node;
        }
        if (isIdent("if")) {
            lex.next();
            PortRef port = parsePortRef();
            std::string cond;
            if (isIdent("with")) {
                lex.next();
                cond = ident();
            }
            expectSymbol("{");
            std::vector<ControlPtr> t;
            while (!isSymbol("}"))
                t.push_back(parseControl());
            expectSymbol("}");
            ControlPtr tb = wrap(std::move(t));
            ControlPtr fb = std::make_unique<Empty>();
            if (isIdent("else")) {
                lex.next();
                expectSymbol("{");
                std::vector<ControlPtr> f;
                while (!isSymbol("}"))
                    f.push_back(parseControl());
                expectSymbol("}");
                fb = wrap(std::move(f));
            }
            return std::make_unique<If>(port, cond, std::move(tb),
                                        std::move(fb));
        }
        if (isIdent("while")) {
            lex.next();
            PortRef port = parsePortRef();
            std::string cond;
            if (isIdent("with")) {
                lex.next();
                cond = ident();
            }
            expectSymbol("{");
            std::vector<ControlPtr> body;
            while (!isSymbol("}"))
                body.push_back(parseControl());
            expectSymbol("}");
            return std::make_unique<While>(port, cond,
                                           wrap(std::move(body)));
        }
        // Group enable; the trailing semicolon is optional before a
        // closing brace (the paper writes `seq { one; two }`).
        std::string gname = ident();
        if (isSymbol(";"))
            lex.next();
        else if (!isSymbol("}"))
            lex.error("expected ';' after group enable");
        return std::make_unique<Enable>(gname);
    }

    static ControlPtr
    wrap(std::vector<ControlPtr> stmts)
    {
        if (stmts.empty())
            return std::make_unique<Empty>();
        if (stmts.size() == 1)
            return std::move(stmts[0]);
        return std::make_unique<Seq>(std::move(stmts));
    }
};

} // namespace

Context
Parser::parseProgram(const std::string &source)
{
    return ProgramParser(source).parse();
}

} // namespace calyx
