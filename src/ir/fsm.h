#ifndef CALYX_IR_FSM_H
#define CALYX_IR_FSM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/guard.h"
#include "ir/port.h"
#include "support/symbol.h"

namespace calyx {

class Component;

/**
 * Explicit machine-level IR for compiled control (paper §4.2-4.4).
 *
 * CompileControl and StaticPass used to conjure guards, registers, and
 * group assignments directly out of the control tree, one register per
 * `seq` node, with nothing inspectable in between. An FsmMachine is the
 * missing middle: a schedule automaton with named states, guarded
 * transitions, per-state latency spans, and port-drive actions. The
 * lowering layer (src/lowering/) builds one machine per dynamic control
 * island, optimizes it at the state level, and only then realizes it as
 * structure (a state register, comparators, and group enables).
 *
 * Timing model. While the machine's realizing group is enabled, exactly
 * one state is active per cycle. A state with span() == 1 occupies one
 * cycle; a counter state with span() == L occupies L consecutive cycles
 * (a statically-timed subtree fused into one state, §4.4), advancing
 * implicitly through its span. On the last cycle of a state's span its
 * transitions are evaluated; the guards of a state's transitions must
 * be pairwise disjoint (hardware evaluates them simultaneously — there
 * is no first-match-wins priority encoder). Reaching the accepting
 * state asserts the group's done hole; realization arms a continuous
 * self-reset there so the machine re-runs inside loops.
 *
 * Machines are owned by their Component (Component::addFsm) and survive
 * realization as inspection metadata: `futil --dump-fsm`, the dot
 * backend's FSM view, and --emit-stats all read them back.
 */
struct FsmTransition
{
    GuardPtr guard = Guard::trueGuard();
    uint32_t target = 0;
};

/**
 * A guarded port drive, active while the owning state is active.
 * `offset`/`length` select a cycle window inside a counter state's
 * span: the action fires during span cycles [offset, offset+length).
 * kWholeSpan covers the state's entire span (the common case for
 * span-1 states).
 *
 * A `continuous` action is realized as an ungated continuous
 * assignment with no state decode: its guard alone describes when it
 * fires. This is how completion bits are cleared on exit — the parent
 * deasserts the island's go during its done cycle, so a go-gated clear
 * would never fire (paper §4.3's reset argument).
 */
struct FsmAction
{
    static constexpr int64_t kWholeSpan = -1;

    PortRef dst;
    PortRef src;
    GuardPtr guard = Guard::trueGuard();
    int64_t offset = 0;
    int64_t length = kWholeSpan;
    bool continuous = false;
};

struct FsmState
{
    Symbol name;
    /** Cycles this state occupies (> 1 for fused static subtrees). */
    int64_t span = 1;
    /** The accepting state drives the realizing group's done hole. */
    bool accepting = false;
    /**
     * Set by the builder when the state's transition guards are
     * completion signals — false until the state's work has finished
     * (a child's done hole, the conjunction of par completion bits).
     * Only such states may be realized with a combinational done (the
     * register-free two-state specialization): exposing a guard that
     * can be true before the work completes — e.g. the unconditional
     * exit of a counter state — as the island's done would gate the
     * island off before it ever ran.
     */
    bool combExit = false;
    std::vector<FsmAction> actions;
    std::vector<FsmTransition> transitions;
};

/** State-register encoding selected at realization. */
enum class FsmEncoding { Binary, OneHot };

const char *fsmEncodingName(FsmEncoding e);

class FsmMachine
{
  public:
    explicit FsmMachine(Symbol name) : nameVal(name) {}

    Symbol name() const { return nameVal; }

    /** Append a state; returns its id (index into states()). */
    uint32_t addState(Symbol name, int64_t span = 1);

    FsmState &state(uint32_t id) { return stateList[id]; }
    const FsmState &state(uint32_t id) const { return stateList[id]; }
    std::vector<FsmState> &states() { return stateList; }
    const std::vector<FsmState> &states() const { return stateList; }

    uint32_t entry() const { return entryVal; }
    void setEntry(uint32_t s) { entryVal = s; }

    /** Total code-space size: the sum of state spans. */
    int64_t totalCodes() const;
    int64_t transitionCount() const;
    /** Number of states with span > 1 (fused static subtrees). */
    int64_t counterStates() const;

    // --- Realization record (filled in by lowering::realize) -------------
    bool realized() const { return !groupVal.empty(); }
    Symbol group() const { return groupVal; }
    void setGroup(Symbol g) { groupVal = g; }
    /** The state register cell, or the empty symbol for register-free
     * (single-state or combinationally-completing) machines. */
    Symbol registerCell() const { return registerVal; }
    void setRegisterCell(Symbol c) { registerVal = c; }

    /** Helper state bits minted while building (par completion bits,
     * static-if condition latches). */
    const std::vector<Symbol> &helperRegisters() const
    {
        return helperVal;
    }
    void addHelperRegister(Symbol c) { helperVal.push_back(c); }
    FsmEncoding encoding() const { return encodingVal; }
    void setEncoding(FsmEncoding e) { encodingVal = e; }

    /**
     * Rebuild the state list keeping only states with keep[id] set,
     * remapping entry and transition targets. Dropping a state that is
     * still a transition target of a kept state is a programming error.
     */
    void compact(const std::vector<bool> &keep);

    /** Multi-line textual dump (futil --dump-fsm, tests). */
    std::string str() const;

  private:
    Symbol nameVal;
    std::vector<FsmState> stateList;
    uint32_t entryVal = 0;
    Symbol groupVal;
    Symbol registerVal;
    std::vector<Symbol> helperVal;
    FsmEncoding encodingVal = FsmEncoding::Binary;
};

using FsmMachinePtr = std::unique_ptr<FsmMachine>;

/**
 * Aggregate FSM statistics for one component's machines, reported by
 * `futil --emit-stats` and bench/compile_time.cc.
 */
struct FsmStats
{
    int machines = 0;
    int states = 0;
    int64_t codes = 0;
    int64_t transitions = 0;
    int64_t counterStates = 0;
    /** Machines realized with a state register. */
    int registers = 0;
    /** Helper state bits (par completion bits, static-if latches). */
    int helperRegisters = 0;
    /** registers + helperRegisters: everything control lowering minted
     * to hold schedule state. */
    int controlRegisters = 0;
    /** Control registers the seed's bottom-up lowering would have
     * allocated for the same control program: one FSM counter per
     * multi-child seq and static island, cc+cs latches per if/while,
     * one completion bit per par child. */
    int seedRegisters = 0;
    /** Wall time spent in build/optimize/realize for this component. */
    double loweringSeconds = 0;
};

FsmStats fsmStats(const Component &comp);

} // namespace calyx

#endif // CALYX_IR_FSM_H
