#ifndef CALYX_IR_COMPONENT_H
#define CALYX_IR_COMPONENT_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/attributes.h"
#include "ir/cell.h"
#include "ir/control.h"
#include "ir/fsm.h"
#include "ir/group.h"
#include "ir/port.h"
#include "support/symbol.h"

namespace calyx {

class Context;
class DefUse;

/**
 * A Calyx component (paper §3.1): a signature, a set of cells, wires
 * (continuous assignments and groups), and a control program.
 *
 * All names are interned Symbols. Cells and groups carry dense ids
 * (their positions in cells()/groups()); the name indices are
 * symbol-keyed hash maps, so lookup is O(1) instead of a string-keyed
 * tree walk. The component also caches a DefUse index over its wires
 * and control (see ir/defuse.h for the maintenance contract).
 */
class Component
{
  public:
    explicit Component(Symbol name);
    ~Component();

    Symbol name() const { return nameVal; }

    // --- Signature -------------------------------------------------------
    void addInput(Symbol name, Width width);
    void addOutput(Symbol name, Width width);
    const std::vector<PortDef> &signature() const { return sig; }
    bool hasPort(Symbol name) const;
    const PortDef &port(Symbol name) const;

    // --- Cells -----------------------------------------------------------
    /**
     * Instantiate `type` (primitive or component) with `params` as cell
     * `name`. Ports are resolved through `ctx`.
     */
    Cell &addCell(Symbol name, Symbol type,
                  const std::vector<uint64_t> &params, const Context &ctx);
    Cell *findCell(Symbol name);
    const Cell *findCell(Symbol name) const;
    Cell &cell(Symbol name);
    const Cell &cell(Symbol name) const;
    void removeCell(Symbol name);
    /**
     * Rename a cell, keeping the name index and the cell's dense id.
     * Port references to the old name are NOT rewritten; callers do
     * that themselves (and the dangling-reference check in WellFormed
     * reports any they miss).
     */
    void renameCell(Symbol old_name, Symbol new_name);
    const std::vector<std::unique_ptr<Cell>> &cells() const
    {
        return cellList;
    }

    // --- Groups ----------------------------------------------------------
    Group &addGroup(Symbol name);
    Group *findGroup(Symbol name);
    const Group *findGroup(Symbol name) const;
    Group &group(Symbol name);
    const Group &group(Symbol name) const;
    void removeGroup(Symbol name);
    const std::vector<std::unique_ptr<Group>> &groups() const
    {
        return groupList;
    }

    // --- Wires and control -----------------------------------------------
    /** Mutable wire access invalidates the DefUse cache (see defuse.h). */
    std::vector<Assignment> &
    continuousAssignments()
    {
        invalidateDefUse();
        return continuous;
    }
    const std::vector<Assignment> &continuousAssignments() const
    {
        return continuous;
    }
    /** Append a continuous assignment (DefUse-maintaining). */
    void addContinuous(Assignment a);

    Control &
    control()
    {
        invalidateDefUse();
        return *controlVal;
    }
    const Control &control() const { return *controlVal; }
    void setControl(ControlPtr c);
    ControlPtr takeControl();

    // --- FSM machines (control-lowering metadata) ------------------------
    /**
     * Machines built by the control-lowering layer (src/lowering/).
     * They persist after realization so --dump-fsm, the dot backend's
     * FSM view, and --emit-stats can inspect the compiled schedule.
     * Not serialized: the printer and parser ignore them.
     */
    const std::vector<FsmMachinePtr> &fsms() const { return fsmList; }
    FsmMachine &addFsm(FsmMachinePtr m);
    void clearFsms() { fsmList.clear(); }

    /** Accumulate control-lowering bookkeeping: how many FSM registers
     * the seed (one-per-seq-node) lowering would have minted for the
     * lowered control, and wall time spent in build/optimize/realize. */
    void noteFsmLowering(int seed_registers, double seconds);
    int fsmSeedRegisters() const { return fsmSeedRegs; }
    double fsmLoweringSeconds() const { return fsmSeconds; }

    // --- DefUse ----------------------------------------------------------
    /** The def-use index, computed on first use and cached. */
    const DefUse &defUse() const;
    /** The cached index, or nullptr when none is materialized. */
    const DefUse *maintainedDefUse() const { return defUseCache.get(); }
    void invalidateDefUse() const;

    // --- Utilities ---------------------------------------------------------
    /**
     * Fresh name with the given prefix, unused by cells/groups/ports.
     * O(1) amortized: a per-prefix counter survives across calls, so
     * minting the N-th `fsm` register does not rescan `fsm0..fsmN-1`.
     */
    Symbol uniqueName(Symbol prefix) const;

    /** Width of any port reference appearing in this component. */
    Width portWidth(const PortRef &ref) const;

    Attributes &attrs() { return attributes; }
    const Attributes &attrs() const { return attributes; }

    /** Latency attribute, if the component advertises one. */
    std::optional<int64_t> staticLatency() const
    {
        return attributes.find(Attributes::staticAttr);
    }

  private:
    friend class Group;

    /** Group::add hook: records the new assignment in the index. */
    void noteGroupAssign(Symbol group, uint32_t index,
                         const Assignment &a);

    /** Error path for cell(): fatal with a did-you-mean suggestion. */
    [[noreturn]] void noSuchCell(Symbol name) const;

    Symbol nameVal;
    std::vector<PortDef> sig;
    std::vector<std::unique_ptr<Cell>> cellList;
    std::unordered_map<Symbol, uint32_t> cellIndex; ///< name -> dense id
    std::vector<std::unique_ptr<Group>> groupList;
    std::unordered_map<Symbol, uint32_t> groupIndex; ///< name -> dense id
    std::vector<Assignment> continuous;
    ControlPtr controlVal;
    Attributes attributes;
    std::vector<FsmMachinePtr> fsmList;
    int fsmSeedRegs = 0;
    double fsmSeconds = 0;
    /** Next counter per uniqueName prefix (amortizes fresh names). */
    mutable std::unordered_map<Symbol, uint32_t> uniqueCounters;
    mutable std::unique_ptr<DefUse> defUseCache;
};

} // namespace calyx

#endif // CALYX_IR_COMPONENT_H
