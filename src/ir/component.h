#ifndef CALYX_IR_COMPONENT_H
#define CALYX_IR_COMPONENT_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/attributes.h"
#include "ir/cell.h"
#include "ir/control.h"
#include "ir/group.h"
#include "ir/port.h"

namespace calyx {

class Context;

/**
 * A Calyx component (paper §3.1): a signature, a set of cells, wires
 * (continuous assignments and groups), and a control program.
 */
class Component
{
  public:
    explicit Component(std::string name);

    const std::string &name() const { return nameVal; }

    // --- Signature -------------------------------------------------------
    void addInput(const std::string &name, Width width);
    void addOutput(const std::string &name, Width width);
    const std::vector<PortDef> &signature() const { return sig; }
    bool hasPort(const std::string &name) const;
    const PortDef &port(const std::string &name) const;

    // --- Cells -----------------------------------------------------------
    /**
     * Instantiate `type` (primitive or component) with `params` as cell
     * `name`. Ports are resolved through `ctx`.
     */
    Cell &addCell(const std::string &name, const std::string &type,
                  const std::vector<uint64_t> &params, const Context &ctx);
    Cell *findCell(const std::string &name);
    const Cell *findCell(const std::string &name) const;
    Cell &cell(const std::string &name);
    const Cell &cell(const std::string &name) const;
    void removeCell(const std::string &name);
    const std::vector<std::unique_ptr<Cell>> &cells() const
    {
        return cellList;
    }

    // --- Groups ----------------------------------------------------------
    Group &addGroup(const std::string &name);
    Group *findGroup(const std::string &name);
    const Group *findGroup(const std::string &name) const;
    Group &group(const std::string &name);
    const Group &group(const std::string &name) const;
    void removeGroup(const std::string &name);
    const std::vector<std::unique_ptr<Group>> &groups() const
    {
        return groupList;
    }

    // --- Wires and control -----------------------------------------------
    std::vector<Assignment> &continuousAssignments() { return continuous; }
    const std::vector<Assignment> &continuousAssignments() const
    {
        return continuous;
    }

    Control &control() { return *controlVal; }
    const Control &control() const { return *controlVal; }
    void setControl(ControlPtr c) { controlVal = std::move(c); }
    ControlPtr takeControl();

    // --- Utilities ---------------------------------------------------------
    /** Fresh name with the given prefix, unused by cells/groups/ports. */
    std::string uniqueName(const std::string &prefix) const;

    /** Width of any port reference appearing in this component. */
    Width portWidth(const PortRef &ref) const;

    Attributes &attrs() { return attributes; }
    const Attributes &attrs() const { return attributes; }

    /** Latency attribute, if the component advertises one. */
    std::optional<int64_t> staticLatency() const
    {
        return attributes.find(Attributes::staticAttr);
    }

  private:
    std::string nameVal;
    std::vector<PortDef> sig;
    std::vector<std::unique_ptr<Cell>> cellList;
    std::map<std::string, Cell *> cellIndex;
    std::vector<std::unique_ptr<Group>> groupList;
    std::map<std::string, Group *> groupIndex;
    std::vector<Assignment> continuous;
    ControlPtr controlVal;
    Attributes attributes;
};

} // namespace calyx

#endif // CALYX_IR_COMPONENT_H
