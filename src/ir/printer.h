#ifndef CALYX_IR_PRINTER_H
#define CALYX_IR_PRINTER_H

#include <ostream>
#include <string>

#include "ir/context.h"

namespace calyx {

/**
 * Pretty-printer for the textual Calyx IL. The output parses back with
 * Parser (round-trip property is tested).
 */
class Printer
{
  public:
    /** Print a whole program (externs + components). */
    static void print(const Context &ctx, std::ostream &os);
    static std::string toString(const Context &ctx);

    /**
     * Print only the extern primitive declarations. Used by the compile
     * cache (src/cache/) to assemble a parseable program out of cached
     * per-component texts; print(ctx) is printExterns + each component.
     */
    static void printExterns(const Context &ctx, std::ostream &os);

    /** Print one component. */
    static void print(const Component &comp, std::ostream &os);
    static std::string toString(const Component &comp);

    /** Print a control tree at the given indent. */
    static void print(const Control &ctrl, std::ostream &os, int indent = 0);
    static std::string toString(const Control &ctrl);
};

} // namespace calyx

#endif // CALYX_IR_PRINTER_H
