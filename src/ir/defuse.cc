#include "ir/defuse.h"

#include <algorithm>
#include <utility>

#include "ir/component.h"
#include "support/error.h"

namespace calyx {

namespace {

/** Role accumulator for one assignment: symbols appear a handful of
 * times per assignment, so a flat vector beats a map. */
struct RoleSet
{
    std::vector<std::pair<Symbol, uint8_t>> roles;

    void
    add(Symbol s, uint8_t role)
    {
        for (auto &[sym, mask] : roles) {
            if (sym == s) {
                mask |= role;
                return;
            }
        }
        roles.emplace_back(s, role);
    }

    void
    addRef(const PortRef &p, uint8_t cell_role, uint8_t hole_role)
    {
        if (p.isCell())
            add(p.parent, cell_role);
        else if (p.isHole())
            add(p.parent, hole_role);
    }
};

void
collectAssignment(const Assignment &a, RoleSet &out)
{
    out.addRef(a.dst, DefUse::kDstCell, DefUse::kDstHole);
    if (!a.src.isConst())
        out.addRef(a.src, DefUse::kSrcCell, DefUse::kSrcHole);
    a.guard->ports([&out](const PortRef &p) {
        out.addRef(p, DefUse::kGuardCell, DefUse::kGuardHole);
    });
}

} // namespace

bool
DefUse::Uses::anyAssign(uint8_t mask) const
{
    for (const auto &site : assigns) {
        if (site.roles & mask)
            return true;
    }
    return false;
}

void
DefUse::addAssignment(Symbol group, uint32_t index, const Assignment &a)
{
    RoleSet rs;
    collectAssignment(a, rs);
    for (const auto &[sym, roles] : rs.roles)
        map[sym].assigns.push_back(AssignSite{group, index, roles});
}

void
DefUse::addControlUse(Symbol s, const Control *node, bool as_group)
{
    auto &uses = map[s].control;
    // One node may reference the symbol twice (e.g. cond group == a
    // hole's group); keep sites unique per (node, kind).
    ControlUse use{node, as_group};
    if (std::find(uses.begin(), uses.end(), use) == uses.end())
        uses.push_back(use);
}

void
DefUse::collectControl(const Control &ctrl)
{
    ctrl.walk([this](const Control &node) {
        switch (node.kind()) {
          case Control::Kind::Enable:
            addControlUse(cast<Enable>(node).group(), &node, true);
            break;
          case Control::Kind::If: {
            const auto &i = cast<If>(node);
            if (!i.condGroup().empty())
                addControlUse(i.condGroup(), &node, true);
            if (i.condPort().isCell())
                addControlUse(i.condPort().parent, &node, false);
            else if (i.condPort().isHole())
                addControlUse(i.condPort().parent, &node, true);
            break;
          }
          case Control::Kind::While: {
            const auto &w = cast<While>(node);
            if (!w.condGroup().empty())
                addControlUse(w.condGroup(), &node, true);
            if (w.condPort().isCell())
                addControlUse(w.condPort().parent, &node, false);
            else if (w.condPort().isHole())
                addControlUse(w.condPort().parent, &node, true);
            break;
          }
          default:
            break;
        }
    });
}

DefUse
DefUse::compute(const Component &comp)
{
    DefUse du;
    const auto &continuous = comp.continuousAssignments();
    for (uint32_t i = 0; i < continuous.size(); ++i)
        du.addAssignment(Symbol(), i, continuous[i]);
    for (const auto &group : comp.groups()) {
        // as_const: the mutable assignments() overload would invalidate
        // the component's cached index mid-recompute (and under
        // verifyDefUse, free the index being verified).
        const auto &assigns = std::as_const(*group).assignments();
        for (uint32_t i = 0; i < assigns.size(); ++i)
            du.addAssignment(group->name(), i, assigns[i]);
    }
    du.collectControl(comp.control());
    return du;
}

const DefUse::Uses *
DefUse::find(Symbol s) const
{
    auto it = map.find(s);
    if (it == map.end() || it->second.empty())
        return nullptr;
    return &it->second;
}

void
DefUse::removeGroupSites(Symbol group)
{
    for (auto it = map.begin(); it != map.end();) {
        auto &assigns = it->second.assigns;
        std::erase_if(assigns, [group](const AssignSite &site) {
            return site.group == group;
        });
        if (it->second.empty())
            it = map.erase(it);
        else
            ++it;
    }
}

namespace {

std::string
describeSites(const DefUse::Uses &uses)
{
    std::string out = std::to_string(uses.assigns.size()) +
                      " assignment site(s), " +
                      std::to_string(uses.control.size()) +
                      " control site(s)";
    return out;
}

} // namespace

bool
DefUse::equivalent(const DefUse &other, std::string *why) const
{
    auto normalize = [](const Uses &u) {
        Uses out = u;
        std::sort(out.assigns.begin(), out.assigns.end(),
                  [](const AssignSite &a, const AssignSite &b) {
                      return std::tuple(a.group.id(), a.index, a.roles) <
                             std::tuple(b.group.id(), b.index, b.roles);
                  });
        std::sort(out.control.begin(), out.control.end(),
                  [](const ControlUse &a, const ControlUse &b) {
                      return std::tuple(a.node, a.asGroup) <
                             std::tuple(b.node, b.asGroup);
                  });
        return out;
    };

    auto compareDir = [&](const DefUse &a, const DefUse &b,
                          const char *label) {
        for (const auto &[sym, uses] : a.map) {
            if (uses.empty())
                continue;
            const Uses *match = b.find(sym);
            if (!match) {
                if (why) {
                    *why = std::string(label) + ": symbol '" + sym.str() +
                           "' has " + describeSites(uses) +
                           " on one side and none on the other";
                }
                return false;
            }
            Uses na = normalize(uses), nb = normalize(*match);
            if (!(na.assigns == nb.assigns && na.control == nb.control)) {
                if (why) {
                    *why = std::string(label) + ": symbol '" + sym.str() +
                           "' differs (" + describeSites(na) + " vs " +
                           describeSites(nb) + ")";
                }
                return false;
            }
        }
        return true;
    };

    return compareDir(*this, other, "maintained vs recomputed") &&
           compareDir(other, *this, "recomputed vs maintained");
}

void
verifyDefUse(const Component &comp)
{
    const DefUse *maintained = comp.maintainedDefUse();
    if (!maintained)
        return;
    DefUse fresh = DefUse::compute(comp);
    std::string why;
    if (!maintained->equivalent(fresh, &why)) {
        fatal("component ", comp.name(),
              ": maintained DefUse index out of sync with recompute: ",
              why);
    }
}

} // namespace calyx

namespace calyx::analysis {

namespace {

Symbol
stdRegSymbol()
{
    static const Symbol s("std_reg");
    return s;
}

Symbol
outSymbol()
{
    static const Symbol s("out");
    return s;
}

Symbol
inSymbol()
{
    static const Symbol s("in");
    return s;
}

Symbol
writeEnSymbol()
{
    static const Symbol s("write_en");
    return s;
}

} // namespace

std::set<Symbol>
registerCells(const Component &comp)
{
    std::set<Symbol> regs;
    for (const auto &cell : comp.cells()) {
        if (cell->type() == stdRegSymbol())
            regs.insert(cell->name());
    }
    return regs;
}

std::map<Symbol, RegAccess>
registerAccess(const Component &comp)
{
    std::set<Symbol> regs = registerCells(comp);
    std::map<Symbol, RegAccess> out;
    // Every group gets an entry, even when it touches no register, so
    // callers can index unconditionally (historical contract).
    for (const auto &group : comp.groups())
        out[group->name()];

    const DefUse &du = comp.defUse();

    // Per-(group, register) write classification bits.
    constexpr uint8_t kUncondEn = 1, kUncondIn = 2, kDoneBacked = 4;
    std::map<Symbol, std::map<Symbol, uint8_t>> writeFlags;

    for (Symbol reg : regs) {
        const DefUse::Uses *uses = du.find(reg);
        if (!uses)
            continue;
        for (const auto &site : uses->assigns) {
            if (site.group.empty())
                continue; // continuous: not a group access
            const Group &g = comp.group(site.group);
            const Assignment &a = g.assignments()[site.index];
            RegAccess &acc = out[site.group];

            // Data reads: only the value output counts; observing the
            // done pulse does not read the register.
            if (site.roles & (DefUse::kSrcCell | DefUse::kGuardCell)) {
                bool readsOut = a.src.isCell() && a.src.parent == reg &&
                                a.src.port == outSymbol();
                if (!readsOut) {
                    a.guard->ports([&](const PortRef &p) {
                        if (p.isCell() && p.parent == reg &&
                            p.port == outSymbol())
                            readsOut = true;
                    });
                }
                if (readsOut)
                    acc.reads.insert(reg);
            }
            // A register whose done pulse *is* the group's done signal
            // is always committed before the group can finish, even
            // when its write enable is guarded (the multi-cycle
            // operator idiom `r.write_en = f.done ? 1; g[done] =
            // r.done`).
            if (a.src.isCell() && a.src.parent == reg &&
                a.src.port == doneSymbol() && a.guard->isTrue() &&
                a.dst == g.doneHole()) {
                writeFlags[site.group][reg] |= kDoneBacked;
            }
            if ((site.roles & DefUse::kDstCell) && a.dst.isCell() &&
                a.dst.parent == reg) {
                acc.anyWrites.insert(reg);
                if (a.guard->isTrue()) {
                    if (a.dst.port == writeEnSymbol() && a.src.isConst() &&
                        a.src.value == 1)
                        writeFlags[site.group][reg] |= kUncondEn;
                    if (a.dst.port == inSymbol())
                        writeFlags[site.group][reg] |= kUncondIn;
                }
            }
        }
    }

    for (auto &[groupSym, acc] : out) {
        for (Symbol reg : acc.anyWrites) {
            uint8_t flags = writeFlags[groupSym][reg];
            if (((flags & kUncondEn) && (flags & kUncondIn)) ||
                (flags & kDoneBacked)) {
                acc.mustWrites.insert(reg);
            } else {
                // Conditional write: value may survive, keep it live.
                acc.reads.insert(reg);
            }
        }
    }
    return out;
}

std::set<Symbol>
alwaysLiveRegisters(const Component &comp)
{
    std::set<Symbol> regs = registerCells(comp);
    std::set<Symbol> out;
    const DefUse &du = comp.defUse();

    for (Symbol reg : regs) {
        if (comp.cell(reg).attrs().has(Attributes::externalAttr)) {
            out.insert(reg);
            continue;
        }
        const DefUse::Uses *uses = du.find(reg);
        if (!uses)
            continue;
        bool live = false;
        for (const auto &site : uses->assigns) {
            if (site.group.empty() && (site.roles & DefUse::kAnyCell)) {
                live = true;
                break;
            }
        }
        if (!live) {
            for (const auto &use : uses->control) {
                if (!use.asGroup) { // condition port reads the register
                    live = true;
                    break;
                }
            }
        }
        if (live)
            out.insert(reg);
    }
    return out;
}

} // namespace calyx::analysis
