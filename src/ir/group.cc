#include "ir/group.h"

namespace calyx {

void
Assignment::reads(const std::function<void(const PortRef &)> &fn) const
{
    if (!src.isConst())
        fn(src);
    guard->ports(fn);
}

std::string
Assignment::str() const
{
    if (guard->isTrue())
        return dst.str() + " = " + src.str() + ";";
    return dst.str() + " = " + guard->str() + " ? " + src.str() + ";";
}

bool
Group::hasDoneWrite() const
{
    for (const auto &a : assigns) {
        if (a.dst.isHole() && a.dst.parent == nameVal && a.dst.port == "done")
            return true;
    }
    return false;
}

} // namespace calyx
