#include "ir/group.h"

#include "ir/component.h"

namespace calyx {

Symbol
goSymbol()
{
    static const Symbol s("go");
    return s;
}

Symbol
doneSymbol()
{
    static const Symbol s("done");
    return s;
}

void
Assignment::reads(const std::function<void(const PortRef &)> &fn) const
{
    if (!src.isConst())
        fn(src);
    guard->ports(fn);
}

std::string
Assignment::str() const
{
    if (guard->isTrue())
        return dst.str() + " = " + src.str() + ";";
    return dst.str() + " = " + guard->str() + " ? " + src.str() + ";";
}

void
Group::add(Assignment a)
{
    assigns.push_back(std::move(a));
    if (owner) {
        owner->noteGroupAssign(nameVal,
                               static_cast<uint32_t>(assigns.size() - 1),
                               assigns.back());
    }
}

void
Group::touch()
{
    if (owner)
        owner->invalidateDefUse();
}

PortRef
Group::goHole() const
{
    return holePort(nameVal, goSymbol());
}

PortRef
Group::doneHole() const
{
    return holePort(nameVal, doneSymbol());
}

bool
Group::hasDoneWrite() const
{
    for (const auto &a : assigns) {
        if (a.dst.isHole() && a.dst.parent == nameVal &&
            a.dst.port == doneSymbol())
            return true;
    }
    return false;
}

} // namespace calyx
