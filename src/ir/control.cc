#include "ir/control.h"

#include "support/error.h"

namespace calyx {

void
Control::walk(const std::function<void(Control &)> &fn)
{
    fn(*this);
    switch (kindVal) {
      case Kind::Empty:
      case Kind::Enable:
        return;
      case Kind::Seq:
        for (auto &c : cast<Seq>(*this).stmts())
            c->walk(fn);
        return;
      case Kind::Par:
        for (auto &c : cast<Par>(*this).stmts())
            c->walk(fn);
        return;
      case Kind::If: {
        auto &i = cast<If>(*this);
        i.trueBranch().walk(fn);
        i.falseBranch().walk(fn);
        return;
      }
      case Kind::While:
        cast<While>(*this).body().walk(fn);
        return;
    }
}

void
Control::walk(const std::function<void(const Control &)> &fn) const
{
    const_cast<Control *>(this)->walk(
        [&fn](Control &c) { fn(static_cast<const Control &>(c)); });
}

ControlPtr
Empty::clone() const
{
    auto c = std::make_unique<Empty>();
    c->attrs() = attrs();
    return c;
}

ControlPtr
Enable::clone() const
{
    auto c = std::make_unique<Enable>(groupName);
    c->attrs() = attrs();
    return c;
}

ControlPtr
Seq::clone() const
{
    auto c = std::make_unique<Seq>();
    for (const auto &s : stmtsVal)
        c->add(s->clone());
    c->attrs() = attrs();
    return c;
}

ControlPtr
Par::clone() const
{
    auto c = std::make_unique<Par>();
    for (const auto &s : stmtsVal)
        c->add(s->clone());
    c->attrs() = attrs();
    return c;
}

ControlPtr
If::clone() const
{
    auto c = std::make_unique<If>(condPortVal, condGroupVal, tVal->clone(),
                                  fVal->clone());
    c->attrs() = attrs();
    return c;
}

ControlPtr
While::clone() const
{
    auto c =
        std::make_unique<While>(condPortVal, condGroupVal, bodyVal->clone());
    c->attrs() = attrs();
    return c;
}

int
countControlStatements(const Control &c)
{
    int n = 0;
    c.walk([&n](const Control &node) {
        if (node.kind() != Control::Kind::Empty)
            ++n;
    });
    return n;
}

} // namespace calyx
