#include "ir/cell.h"

#include "support/error.h"

namespace calyx {

bool
Cell::hasPort(const std::string &port) const
{
    for (const auto &p : ports) {
        if (p.name == port)
            return true;
    }
    return false;
}

Width
Cell::portWidth(const std::string &port) const
{
    for (const auto &p : ports) {
        if (p.name == port)
            return p.width;
    }
    fatal("cell ", nameVal, " (", typeVal, ") has no port ", port);
}

Direction
Cell::portDir(const std::string &port) const
{
    for (const auto &p : ports) {
        if (p.name == port)
            return p.dir;
    }
    fatal("cell ", nameVal, " (", typeVal, ") has no port ", port);
}

} // namespace calyx
