#include "ir/cell.h"

#include "support/error.h"
#include "support/text.h"

namespace calyx {

bool
Cell::hasPort(Symbol port) const
{
    for (const auto &p : ports) {
        if (p.name == port)
            return true;
    }
    return false;
}

Width
Cell::portWidth(Symbol port) const
{
    for (const auto &p : ports) {
        if (p.name == port)
            return p.width;
    }
    noSuchPort(port);
}

Direction
Cell::portDir(Symbol port) const
{
    for (const auto &p : ports) {
        if (p.name == port)
            return p.dir;
    }
    noSuchPort(port);
}

void
Cell::noSuchPort(Symbol port) const
{
    std::vector<std::string> known;
    for (const auto &p : ports)
        known.push_back(p.name.str());
    std::string close = suggestClosest(port.str(), known);
    if (close.empty())
        fatal("cell ", nameVal, " (", typeVal, ") has no port ", port);
    fatal("cell ", nameVal, " (", typeVal, ") has no port ", port,
          " (did you mean '", close, "'?)");
}

} // namespace calyx
