#include "ir/context.h"

#include <map>
#include <unordered_set>

#include "support/error.h"
#include "support/text.h"

namespace calyx {

Component &
Context::addComponent(Symbol name)
{
    if (findComponent(name) || prims.has(name))
        fatal("duplicate component definition: ", name);
    comps.push_back(std::make_unique<Component>(name));
    return *comps.back();
}

Component *
Context::findComponent(Symbol name)
{
    for (auto &c : comps) {
        if (c->name() == name)
            return c.get();
    }
    return nullptr;
}

const Component *
Context::findComponent(Symbol name) const
{
    for (const auto &c : comps) {
        if (c->name() == name)
            return c.get();
    }
    return nullptr;
}

Component &
Context::component(Symbol name)
{
    Component *c = findComponent(name);
    if (!c)
        fatal("unknown component: ", name);
    return *c;
}

const Component &
Context::component(Symbol name) const
{
    const Component *c = findComponent(name);
    if (!c)
        fatal("unknown component: ", name);
    return *c;
}

std::unique_ptr<Cell>
Context::instantiate(Symbol name, Symbol type,
                     const std::vector<uint64_t> &params) const
{
    if (prims.has(type)) {
        const PrimitiveDef &def = prims.get(type);
        if (params.size() != def.params.size()) {
            fatal("primitive ", type, " expects ", def.params.size(),
                  " parameters, got ", params.size());
        }
        std::map<Symbol, uint64_t> env;
        for (size_t i = 0; i < params.size(); ++i)
            env[def.params[i]] = params[i];
        std::vector<PortDef> ports;
        for (const auto &spec : def.ports) {
            Width w = spec.fixedWidth;
            if (!spec.widthParam.empty()) {
                auto it = env.find(spec.widthParam);
                if (it == env.end()) {
                    fatal("primitive ", type, ": port ", spec.name,
                          " references unknown parameter ", spec.widthParam);
                }
                w = static_cast<Width>(it->second);
            }
            if (w == 0 || w > 64)
                fatal("primitive ", type, ": port ", spec.name,
                      " has invalid width ", w);
            ports.push_back(PortDef{spec.name, w, spec.dir});
        }
        auto cell = std::make_unique<Cell>(name, type, params,
                                           std::move(ports), true);
        cell->attrs() = def.attrs;
        return cell;
    }

    const Component *def = findComponent(type);
    if (!def) {
        // Mirror the pass/backend registries' UX: name the closest
        // known primitive or component when the type looks like a typo.
        std::vector<std::string> candidates;
        for (const auto &[prim_name, unused] : prims.all())
            candidates.push_back(prim_name.str());
        for (const auto &c : comps)
            candidates.push_back(c->name().str());
        std::string close = suggestClosest(type.str(), candidates);
        if (close.empty())
            fatal("unknown cell type: ", type);
        fatal("unknown cell type: ", type, " (did you mean '", close,
              "'?)");
    }
    if (!params.empty())
        fatal("component instances take no parameters: ", type);
    std::vector<PortDef> ports = def->signature();
    auto cell =
        std::make_unique<Cell>(name, type, params, std::move(ports), false);
    // Propagate the component's latency so instantiating groups can infer
    // their own latency (paper §5.3, §6.1).
    if (auto lat = def->staticLatency())
        cell->attrs().set(Attributes::staticAttr, *lat);
    cell->attrs().set(Attributes::statefulAttr, 1);
    return cell;
}

std::vector<Component *>
Context::topologicalOrder()
{
    std::vector<Component *> order;
    std::unordered_set<Symbol> done;
    std::unordered_set<Symbol> visiting;

    std::function<void(Component *)> visit = [&](Component *c) {
        if (done.count(c->name()))
            return;
        if (visiting.count(c->name()))
            fatal("component instantiation cycle involving ", c->name());
        visiting.insert(c->name());
        for (const auto &cell : c->cells()) {
            if (!cell->isPrimitive())
                visit(&component(cell->type()));
        }
        visiting.erase(c->name());
        done.insert(c->name());
        order.push_back(c);
    };

    for (auto &c : comps)
        visit(c.get());
    return order;
}

} // namespace calyx
