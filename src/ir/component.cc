#include "ir/component.h"

#include "ir/context.h"
#include "ir/defuse.h"
#include "support/error.h"
#include "support/text.h"

namespace calyx {

Component::Component(Symbol name)
    : nameVal(name), controlVal(std::make_unique<Empty>())
{
    // Every component implicitly participates in the go/done calling
    // convention (paper §4.1).
    sig.push_back(PortDef{goSymbol(), 1, Direction::Input});
    sig.push_back(PortDef{doneSymbol(), 1, Direction::Output});
}

Component::~Component() = default;

void
Component::addInput(Symbol name, Width width)
{
    if (hasPort(name))
        fatal("component ", nameVal, ": duplicate port ", name);
    sig.push_back(PortDef{name, width, Direction::Input});
}

void
Component::addOutput(Symbol name, Width width)
{
    if (hasPort(name))
        fatal("component ", nameVal, ": duplicate port ", name);
    sig.push_back(PortDef{name, width, Direction::Output});
}

bool
Component::hasPort(Symbol name) const
{
    for (const auto &p : sig) {
        if (p.name == name)
            return true;
    }
    return false;
}

const PortDef &
Component::port(Symbol name) const
{
    for (const auto &p : sig) {
        if (p.name == name)
            return p;
    }
    std::vector<std::string> known;
    for (const auto &p : sig)
        known.push_back(p.name.str());
    std::string close = suggestClosest(name.str(), known);
    if (close.empty())
        fatal("component ", nameVal, " has no port ", name);
    fatal("component ", nameVal, " has no port ", name, " (did you mean '",
          close, "'?)");
}

Cell &
Component::addCell(Symbol name, Symbol type,
                   const std::vector<uint64_t> &params, const Context &ctx)
{
    if (cellIndex.count(name))
        fatal("component ", nameVal, ": duplicate cell ", name);
    auto cell = ctx.instantiate(name, type, params);
    Cell *raw = cell.get();
    raw->setId(static_cast<uint32_t>(cellList.size()));
    cellIndex.emplace(name, raw->id());
    cellList.push_back(std::move(cell));
    return *raw;
}

Cell *
Component::findCell(Symbol name)
{
    auto it = cellIndex.find(name);
    return it == cellIndex.end() ? nullptr : cellList[it->second].get();
}

const Cell *
Component::findCell(Symbol name) const
{
    auto it = cellIndex.find(name);
    return it == cellIndex.end() ? nullptr : cellList[it->second].get();
}

Cell &
Component::cell(Symbol name)
{
    Cell *c = findCell(name);
    if (!c)
        noSuchCell(name);
    return *c;
}

const Cell &
Component::cell(Symbol name) const
{
    const Cell *c = findCell(name);
    if (!c)
        noSuchCell(name);
    return *c;
}

void
Component::noSuchCell(Symbol name) const
{
    // Error path only: suggest the closest cell or group name, the UX
    // the pass/backend registries established for typos.
    std::vector<std::string> known;
    for (const auto &c : cellList)
        known.push_back(c->name().str());
    for (const auto &g : groupList)
        known.push_back(g->name().str());
    std::string close = suggestClosest(name.str(), known);
    if (close.empty())
        fatal("component ", nameVal, " has no cell ", name);
    fatal("component ", nameVal, " has no cell ", name, " (did you mean '",
          close, "'?)");
}

void
Component::removeCell(Symbol name)
{
    auto it = cellIndex.find(name);
    if (it == cellIndex.end())
        return;
    uint32_t id = it->second;
    cellIndex.erase(it);
    cellList.erase(cellList.begin() + id);
    // Dense ids are positions: everything after the removed cell
    // shifts down one slot.
    for (uint32_t i = id; i < cellList.size(); ++i) {
        cellList[i]->setId(i);
        cellIndex[cellList[i]->name()] = i;
    }
    // Uses of the removed name (if any remain) are now dangling; the
    // WellFormed dangling-reference check reports them with their
    // sites. The DefUse index itself records uses, not definitions,
    // so it stays valid.
}

void
Component::renameCell(Symbol old_name, Symbol new_name)
{
    if (old_name == new_name)
        return;
    auto it = cellIndex.find(old_name);
    if (it == cellIndex.end())
        fatal("component ", nameVal, " has no cell ", old_name);
    if (cellIndex.count(new_name) || groupIndex.count(new_name))
        fatal("component ", nameVal, ": rename target ", new_name,
              " already exists");
    uint32_t id = it->second;
    cellIndex.erase(it);
    cellIndex.emplace(new_name, id);
    cellList[id]->rename(new_name);
}

Group &
Component::addGroup(Symbol name)
{
    if (groupIndex.count(name))
        fatal("component ", nameVal, ": duplicate group ", name);
    auto group = std::make_unique<Group>(name);
    Group *raw = group.get();
    raw->idVal = static_cast<uint32_t>(groupList.size());
    raw->owner = this;
    groupIndex.emplace(name, raw->idVal);
    groupList.push_back(std::move(group));
    return *raw;
}

Group *
Component::findGroup(Symbol name)
{
    auto it = groupIndex.find(name);
    return it == groupIndex.end() ? nullptr : groupList[it->second].get();
}

const Group *
Component::findGroup(Symbol name) const
{
    auto it = groupIndex.find(name);
    return it == groupIndex.end() ? nullptr : groupList[it->second].get();
}

Group &
Component::group(Symbol name)
{
    Group *g = findGroup(name);
    if (!g)
        fatal("component ", nameVal, " has no group ", name);
    return *g;
}

const Group &
Component::group(Symbol name) const
{
    const Group *g = findGroup(name);
    if (!g)
        fatal("component ", nameVal, " has no group ", name);
    return *g;
}

void
Component::removeGroup(Symbol name)
{
    auto it = groupIndex.find(name);
    if (it == groupIndex.end())
        return;
    uint32_t id = it->second;
    groupIndex.erase(it);
    groupList.erase(groupList.begin() + id);
    for (uint32_t i = id; i < groupList.size(); ++i) {
        groupList[i]->idVal = i;
        groupIndex[groupList[i]->name()] = i;
    }
    // The group's assignments die with it: drop their use sites. Uses
    // *of* the group elsewhere (holes, enables) stay — they are now
    // dangling and WellFormed reports them.
    if (defUseCache)
        defUseCache->removeGroupSites(name);
}

void
Component::addContinuous(Assignment a)
{
    continuous.push_back(std::move(a));
    if (defUseCache) {
        defUseCache->addAssignment(
            Symbol(), static_cast<uint32_t>(continuous.size() - 1),
            continuous.back());
    }
}

FsmMachine &
Component::addFsm(FsmMachinePtr m)
{
    fsmList.push_back(std::move(m));
    return *fsmList.back();
}

void
Component::noteFsmLowering(int seed_registers, double seconds)
{
    fsmSeedRegs += seed_registers;
    fsmSeconds += seconds;
}

void
Component::setControl(ControlPtr c)
{
    invalidateDefUse();
    controlVal = std::move(c);
}

ControlPtr
Component::takeControl()
{
    invalidateDefUse();
    ControlPtr out = std::move(controlVal);
    controlVal = std::make_unique<Empty>();
    return out;
}

const DefUse &
Component::defUse() const
{
    if (!defUseCache)
        defUseCache = std::make_unique<DefUse>(DefUse::compute(*this));
    return *defUseCache;
}

void
Component::invalidateDefUse() const
{
    defUseCache.reset();
}

void
Component::noteGroupAssign(Symbol group, uint32_t index,
                           const Assignment &a)
{
    if (defUseCache)
        defUseCache->addAssignment(group, index, a);
}

Symbol
Component::uniqueName(Symbol prefix) const
{
    uint32_t &next = uniqueCounters[prefix];
    for (;;) {
        Symbol candidate(prefix.str() + std::to_string(next++));
        if (!cellIndex.count(candidate) && !groupIndex.count(candidate) &&
            !hasPort(candidate)) {
            return candidate;
        }
    }
}

Width
Component::portWidth(const PortRef &ref) const
{
    switch (ref.kind) {
      case PortRef::Kind::Const:
        return ref.width;
      case PortRef::Kind::This:
        return port(ref.port).width;
      case PortRef::Kind::Hole:
        if (!findGroup(ref.parent))
            fatal("component ", nameVal, ": hole for unknown group ",
                  ref.parent);
        return 1;
      case PortRef::Kind::Cell:
        return cell(ref.parent).portWidth(ref.port);
    }
    panic("bad PortRef kind");
}

} // namespace calyx
