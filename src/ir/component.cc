#include "ir/component.h"

#include "ir/context.h"
#include "support/error.h"

namespace calyx {

Component::Component(std::string name)
    : nameVal(std::move(name)), controlVal(std::make_unique<Empty>())
{
    // Every component implicitly participates in the go/done calling
    // convention (paper §4.1).
    sig.push_back(PortDef{"go", 1, Direction::Input});
    sig.push_back(PortDef{"done", 1, Direction::Output});
}

void
Component::addInput(const std::string &name, Width width)
{
    if (hasPort(name))
        fatal("component ", nameVal, ": duplicate port ", name);
    sig.push_back(PortDef{name, width, Direction::Input});
}

void
Component::addOutput(const std::string &name, Width width)
{
    if (hasPort(name))
        fatal("component ", nameVal, ": duplicate port ", name);
    sig.push_back(PortDef{name, width, Direction::Output});
}

bool
Component::hasPort(const std::string &name) const
{
    for (const auto &p : sig) {
        if (p.name == name)
            return true;
    }
    return false;
}

const PortDef &
Component::port(const std::string &name) const
{
    for (const auto &p : sig) {
        if (p.name == name)
            return p;
    }
    fatal("component ", nameVal, " has no port ", name);
}

Cell &
Component::addCell(const std::string &name, const std::string &type,
                   const std::vector<uint64_t> &params, const Context &ctx)
{
    if (cellIndex.count(name))
        fatal("component ", nameVal, ": duplicate cell ", name);
    auto cell = ctx.instantiate(name, type, params);
    Cell *raw = cell.get();
    cellList.push_back(std::move(cell));
    cellIndex[name] = raw;
    return *raw;
}

Cell *
Component::findCell(const std::string &name)
{
    auto it = cellIndex.find(name);
    return it == cellIndex.end() ? nullptr : it->second;
}

const Cell *
Component::findCell(const std::string &name) const
{
    auto it = cellIndex.find(name);
    return it == cellIndex.end() ? nullptr : it->second;
}

Cell &
Component::cell(const std::string &name)
{
    Cell *c = findCell(name);
    if (!c)
        fatal("component ", nameVal, " has no cell ", name);
    return *c;
}

const Cell &
Component::cell(const std::string &name) const
{
    const Cell *c = findCell(name);
    if (!c)
        fatal("component ", nameVal, " has no cell ", name);
    return *c;
}

void
Component::removeCell(const std::string &name)
{
    auto it = cellIndex.find(name);
    if (it == cellIndex.end())
        return;
    cellIndex.erase(it);
    for (auto lit = cellList.begin(); lit != cellList.end(); ++lit) {
        if ((*lit)->name() == name) {
            cellList.erase(lit);
            return;
        }
    }
}

Group &
Component::addGroup(const std::string &name)
{
    if (groupIndex.count(name))
        fatal("component ", nameVal, ": duplicate group ", name);
    auto group = std::make_unique<Group>(name);
    Group *raw = group.get();
    groupList.push_back(std::move(group));
    groupIndex[name] = raw;
    return *raw;
}

Group *
Component::findGroup(const std::string &name)
{
    auto it = groupIndex.find(name);
    return it == groupIndex.end() ? nullptr : it->second;
}

const Group *
Component::findGroup(const std::string &name) const
{
    auto it = groupIndex.find(name);
    return it == groupIndex.end() ? nullptr : it->second;
}

Group &
Component::group(const std::string &name)
{
    Group *g = findGroup(name);
    if (!g)
        fatal("component ", nameVal, " has no group ", name);
    return *g;
}

const Group &
Component::group(const std::string &name) const
{
    const Group *g = findGroup(name);
    if (!g)
        fatal("component ", nameVal, " has no group ", name);
    return *g;
}

void
Component::removeGroup(const std::string &name)
{
    auto it = groupIndex.find(name);
    if (it == groupIndex.end())
        return;
    groupIndex.erase(it);
    for (auto lit = groupList.begin(); lit != groupList.end(); ++lit) {
        if ((*lit)->name() == name) {
            groupList.erase(lit);
            return;
        }
    }
}

ControlPtr
Component::takeControl()
{
    ControlPtr out = std::move(controlVal);
    controlVal = std::make_unique<Empty>();
    return out;
}

std::string
Component::uniqueName(const std::string &prefix) const
{
    for (int i = 0;; ++i) {
        std::string candidate = prefix + std::to_string(i);
        if (!cellIndex.count(candidate) && !groupIndex.count(candidate) &&
            !hasPort(candidate)) {
            return candidate;
        }
    }
}

Width
Component::portWidth(const PortRef &ref) const
{
    switch (ref.kind) {
      case PortRef::Kind::Const:
        return ref.width;
      case PortRef::Kind::This:
        return port(ref.port).width;
      case PortRef::Kind::Hole:
        if (!findGroup(ref.parent))
            fatal("component ", nameVal, ": hole for unknown group ",
                  ref.parent);
        return 1;
      case PortRef::Kind::Cell:
        return cell(ref.parent).portWidth(ref.port);
    }
    panic("bad PortRef kind");
}

} // namespace calyx
